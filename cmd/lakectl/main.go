// Command lakectl drives a golake data lake from the shell. Each
// invocation assembles a lake over a data directory (every regular
// file under -data is ingested), runs the maintenance tier, then
// executes one command:
//
//	lakectl -data DIR profile                 per-file extraction summary
//	lakectl -data DIR catalog                 catalog entries
//	lakectl -data DIR discover TABLE [K]      related tables (populate mode)
//	lakectl -data DIR join TABLE COLUMN [K]   joinable tables on a column
//	lakectl -data DIR query 'SQL'             federated query, CSV streamed to stdout
//	lakectl -data DIR -order price:desc query 'SQL'   ORDER BY passthrough
//	lakectl -data DIR -explain query 'SQL'    typed plan, nothing executed
//	lakectl -data DIR swamp                   metadata-coverage audit
//	lakectl -data DIR lineage ENTITY          upstream provenance
//	lakectl -data DIR status                  maintenance + durability status
//	lakectl -data DIR -metrics status         + the Prometheus metrics dump
//	lakectl -data DIR serve [ADDR]            REST v1 API server
//	lakectl -data DIR -pprof :6060 serve      + net/http/pprof on a side port
//	lakectl registry                          the Table 1 function registry
//	lakectl demo                              synthetic end-to-end walkthrough
//
// With -auto-maintain INTERVAL, serve runs background maintenance:
// data ingested over POST /v1/datasets becomes explorable without an
// operator-triggered pass (status on GET /v1/maintenance).
//
// With -persist, the lake's logical state (users, derived tables,
// audit trails, index coverage) survives across invocations in
// DIR/.golake via WAL + snapshot: a rerun replays the previous state,
// ingests only files not already cataloged, and maintenance resumes
// incrementally instead of re-indexing the corpus. -fsync additionally
// fsyncs every WAL append.
//
// Federated queries fan in by default: member-store sources are
// drained in parallel (one puller per CPU) behind bounded per-source
// buffers, and an ORDER BY — in the SQL or via -order — keeps the
// output order deterministic at any width. -fanin pins the width
// (-fanin 1 forces the sequential union), -fanin-buffer sizes the
// per-source window, -batch-rows sizes the columnar batches the
// pipeline moves (0 = engine default), -explain prints the typed plan
// without running,
// and -stats prints per-source execution counters and the trace spans
// (plan, open-sources, execute, sort) to stderr after the query. The
// flags build one query.Request behind the scenes.
//
// Operability: the server exports Prometheus metrics at GET
// /v1/metrics (status -metrics prints the same dump locally), tags
// every response with an X-Request-ID, and -pprof ADDR serves the
// net/http/pprof profiling handlers on a separate listener so
// profiling stays off the data-plane port.
//
// Resilience: -timeout and -memory-budget bound one query's wall-clock
// time and buffered-row footprint (typed deadline_exceeded /
// resource_exhausted failures when exceeded). In serve mode,
// -max-concurrent and -rate put an admission controller in front of
// POST /v1/query — shed queries return HTTP 429 with a Retry-After
// header — and -shutdown-grace bounds how long a SIGINT/SIGTERM drain
// waits for in-flight requests before the process exits.
//
// Federation: each -remote NAME=URL (repeatable) registers another
// golake as a remote member store, so queries address its datasets as
// "NAME:dataset" and scatter-gather across members through the same
// fan-in that drains local scans. -remote-token forwards a bearer token
// on every remote hop, -remote-route resolves bare dataset names
// through a consistent-hash ring over the members, and -shards K
// range-partitions each local relational scan into K parallel cursors.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"golake"
	"golake/internal/bench"
	"golake/internal/core"
	"golake/internal/explore"
	"golake/internal/table"
	"golake/internal/workload"
)

func main() {
	dataDir := flag.String("data", "", "directory of raw files to ingest")
	user := flag.String("user", "cli", "acting user")
	autoMaintain := flag.Duration("auto-maintain", 0,
		"run background maintenance at this interval (serve mode; 0 disables)")
	persistFlag := flag.Bool("persist", false,
		"persist lake state across invocations in DATA/.golake (WAL + snapshot)")
	fsync := flag.Bool("fsync", false,
		"with -persist, fsync every WAL append (crash-durable, slower)")
	fanIn := flag.Int("fanin", 0,
		"federated-query fan-in width (0 = one puller per CPU, 1 = sequential)")
	fanInBuffer := flag.Int("fanin-buffer", 0,
		"per-source fan-in buffer in rows (0 = default)")
	batchRows := flag.Int("batch-rows", 0,
		"rows per columnar batch for federated queries (0 = engine default)")
	orderBy := flag.String("order", "",
		"ORDER BY passthrough for query: col[:desc][,col...]")
	explain := flag.Bool("explain", false,
		"print the typed query plan instead of executing")
	stats := flag.Bool("stats", false,
		"print per-source execution stats and trace spans to stderr after a query")
	metricsFlag := flag.Bool("metrics", false,
		"with status, also dump the lake's metrics in Prometheus text format")
	pprofAddr := flag.String("pprof", "",
		"with serve, expose net/http/pprof on this address (e.g. localhost:6060)")
	queryTimeout := flag.Duration("timeout", 0,
		"query deadline (0 = none); an exceeded deadline fails the query with a typed deadline_exceeded error")
	memBudget := flag.Int("memory-budget", 0,
		"per-query buffered-row budget (0 = unlimited); exceeding it fails with resource_exhausted")
	maxConcurrent := flag.Int("max-concurrent", 0,
		"serve: per-user concurrent-query quota (0 = off); over-quota queries shed with HTTP 429 + Retry-After")
	rateLimit := flag.Float64("rate", 0,
		"serve: per-user query rate limit in queries/sec (0 = off)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"serve: drain window for in-flight requests on SIGINT/SIGTERM")
	var remotes multiFlag
	flag.Var(&remotes, "remote",
		"federate a remote member lake as NAME=URL (repeatable); query its datasets as NAME:dataset")
	remoteToken := flag.String("remote-token", "",
		"bearer token forwarded on every remote member hop (Authorization: Bearer)")
	remoteRoute := flag.Bool("remote-route", false,
		"route bare dataset names to remote members via consistent hashing")
	shards := flag.Int("shards", 0,
		"range-partition each relational scan into N parallel shard cursors (0 = off)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd := args[0]
	switch cmd {
	case "registry":
		printRegistry()
		return
	case "demo":
		if err := demo(ctx); err != nil {
			fatal(err)
		}
		return
	}
	if *dataDir == "" {
		fatal(fmt.Errorf("command %q needs -data DIR", cmd))
	}
	remoteOpts, err := parseRemoteFlags(remotes, *remoteToken)
	if err != nil {
		fatal(err)
	}
	if *remoteRoute {
		remoteOpts = append(remoteOpts, golake.WithRemoteRouting(true))
	}
	lake, err := loadLake(ctx, *dataDir, *user, *autoMaintain, *fanIn, *fanInBuffer, *persistFlag, *fsync, *maxConcurrent, *rateLimit, remoteOpts)
	if err != nil {
		fatal(err)
	}
	defer lake.Close()
	qf := queryFlags{
		fanIn: *fanIn, bufferRows: *fanInBuffer, batchRows: *batchRows,
		shards: *shards,
		order:  *orderBy, explain: *explain, stats: *stats,
		metrics: *metricsFlag, pprofAddr: *pprofAddr,
		timeout: *queryTimeout, memoryRows: *memBudget,
		shutdownGrace: *shutdownGrace,
	}
	if err := dispatch(ctx, lake, *user, cmd, args[1:], qf); err != nil {
		fatal(err)
	}
}

// queryFlags bundles the per-command flags: the query knobs folded
// into one query.Request, plus the status/serve operability switches.
type queryFlags struct {
	fanIn, bufferRows int
	batchRows         int
	shards            int
	order             string
	explain, stats    bool
	metrics           bool
	pprofAddr         string
	timeout           time.Duration
	memoryRows        int
	shutdownGrace     time.Duration
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lakectl [-data DIR] [-user NAME] [-persist] [-fsync] [-auto-maintain 5s] [-fanin N] [-fanin-buffer ROWS] [-batch-rows ROWS] [-shards N] [-order COLS] [-timeout DUR] [-memory-budget ROWS] [-max-concurrent N] [-rate QPS] [-shutdown-grace DUR] [-remote NAME=URL] [-remote-token TOKEN] [-remote-route] [-explain] [-stats] [-metrics] [-pprof ADDR] COMMAND [ARGS]")
	fmt.Fprintln(os.Stderr, "commands: profile catalog discover join query swamp lineage status serve registry demo")
	os.Exit(2)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// parseRemoteFlags turns -remote NAME=URL registrations into lake
// options; the shared -remote-token rides along on every member.
func parseRemoteFlags(remotes []string, token string) ([]golake.Option, error) {
	var opts []golake.Option
	for _, spec := range remotes {
		name, url, ok := strings.Cut(spec, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("-remote: want NAME=URL, got %q", spec)
		}
		opts = append(opts, golake.WithRemoteStore(name, url, golake.RemoteOptions{Token: token}))
	}
	return opts, nil
}

// loadLake bulk-ingests every regular file under dir and brings the
// lake up to date. With persist, durability files live in dir/.golake:
// a rerun replays the previous invocation's state, files already
// cataloged are skipped, and the maintenance pass resumes
// incrementally over just the new data.
func loadLake(ctx context.Context, dir, user string, autoMaintain time.Duration, fanIn, fanInBuffer int, persistLake, fsync bool, maxConcurrent int, rateLimit float64, extra []golake.Option) (*golake.Lake, error) {
	workdir, err := os.MkdirTemp("", "golake-lakectl-*")
	if err != nil {
		return nil, err
	}
	opts := []golake.Option{
		golake.WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))),
	}
	opts = append(opts, extra...)
	if autoMaintain > 0 {
		opts = append(opts, golake.WithAutoMaintain(autoMaintain))
	}
	if maxConcurrent > 0 || rateLimit > 0 {
		opts = append(opts, golake.WithAdmission(golake.AdmissionConfig{
			MaxConcurrentPerUser: maxConcurrent,
			RatePerSec:           rateLimit,
			MaxQueueWait:         2 * time.Second,
		}))
	}
	if fanIn > 0 || fanInBuffer > 0 {
		// Pins the lake-level default (what serve-mode HTTP queries
		// inherit); the query command threads the same flags through
		// its per-request query.Request instead.
		opts = append(opts, golake.WithFanIn(fanIn, fanInBuffer))
	}
	if persistLake {
		sync := golake.SyncNone
		if fsync {
			sync = golake.SyncAlways
		}
		backend, err := golake.NewLocalBackend(filepath.Join(dir, ".golake"), golake.WithSync(sync))
		if err != nil {
			return nil, err
		}
		opts = append(opts, golake.WithPersistence(backend))
	}
	lake, err := golake.Open(workdir, opts...)
	if err != nil {
		return nil, err
	}
	lake.AddUser(user, golake.RoleDataScientist)
	lake.AddUser(user+"-gov", golake.RoleGovernance)
	var items []golake.IngestItem
	err = filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// The lake's own durability files are not data.
			if d.Name() == ".golake" {
				return fs.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		path := filepath.ToSlash(rel)
		// A persistent lake already restored earlier invocations'
		// ingests; re-ingesting them would conflict.
		if _, err := lake.Catalog.Entry(path); err == nil {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		items = append(items, golake.IngestItem{
			Path: path, Data: data, Source: "filesystem",
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if _, err := lake.IngestBatch(ctx, user, items); err != nil {
		return nil, err
	}
	// Incremental when the restored coverage allows it (a fresh lake's
	// first pass still plans full); an up-to-date restored lake skips
	// the pass entirely.
	if lake.Stale() {
		if _, err := lake.MaintainIncremental(ctx); err != nil {
			return nil, err
		}
	}
	return lake, nil
}

func dispatch(ctx context.Context, lake *golake.Lake, user, cmd string, args []string, qf queryFlags) error {
	switch cmd {
	case "profile":
		return profile(lake)
	case "catalog":
		return catalog(lake)
	case "discover":
		if len(args) < 1 {
			return fmt.Errorf("discover needs TABLE")
		}
		return discover(ctx, lake, user, args[0], argK(args, 1))
	case "join":
		if len(args) < 2 {
			return fmt.Errorf("join needs TABLE COLUMN")
		}
		return joinSearch(ctx, lake, user, args[0], args[1], argK(args, 2))
	case "query":
		if len(args) < 1 {
			return fmt.Errorf("query needs SQL")
		}
		return streamQuery(ctx, lake, user, strings.Join(args, " "), qf)
	case "swamp":
		rep, err := lake.SwampAudit(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("datasets=%d with-metadata=%d healthy=%v\n", rep.Datasets, rep.WithMetadata, rep.Healthy())
		for _, s := range rep.Swamp {
			fmt.Println("swamp:", s)
		}
		return nil
	case "lineage":
		if len(args) < 1 {
			return fmt.Errorf("lineage needs ENTITY")
		}
		up, err := lake.Lineage(ctx, args[0])
		if err != nil {
			return err
		}
		for _, e := range up {
			fmt.Println(e)
		}
		return nil
	case "status":
		return status(lake, qf.metrics)
	case "serve":
		addr := ":8080"
		if len(args) > 0 {
			addr = args[0]
		}
		if st := lake.MaintenanceStatus(); st.Auto {
			fmt.Println("background maintenance on: ingested data becomes explorable without a manual pass (GET /v1/maintenance for status)")
		}
		if qf.pprofAddr != "" {
			// The blank net/http/pprof import registered its handlers on
			// the default mux; serve them on their own listener so
			// profiling never rides the data-plane port.
			go func() {
				fmt.Printf("serving net/http/pprof on %s/debug/pprof/\n", qf.pprofAddr)
				if err := http.ListenAndServe(qf.pprofAddr, nil); !errors.Is(err, http.ErrServerClosed) {
					fmt.Fprintln(os.Stderr, "lakectl: pprof:", err)
				}
			}()
		}
		fmt.Printf("serving lake REST v1 API on %s under /v1/* (X-Lake-User header selects the user; unversioned routes are deprecated aliases; Prometheus metrics on GET /v1/metrics)\n", addr)
		srv := &http.Server{
			Addr:    addr,
			Handler: lake.HTTPHandler(),
			// Header-read and idle timeouts bound what a slow or stalled
			// client can pin: a connection that never finishes its headers
			// or sits idle on keep-alive is reclaimed.
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		done := make(chan struct{})
		go func() {
			// SIGINT/SIGTERM cancels ctx (signal.NotifyContext in main);
			// drain in-flight requests within the grace window, then exit.
			defer close(done)
			<-ctx.Done()
			sctx, cancel := context.WithTimeout(context.Background(), qf.shutdownGrace)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		// ListenAndServe returns the moment Shutdown is *called*; wait
		// for the drain itself so in-flight streams finish.
		<-done
		return nil
	default:
		usage()
		return nil
	}
}

// streamQuery executes a federated query through the streaming
// pipeline, printing CSV rows as they arrive instead of buffering the
// full result — a LIMIT n query over a huge corpus emits n rows and
// stops, and Ctrl-C aborts between rows. All command flags fold into
// one query.Request; -explain pretty-prints the typed plan and runs
// nothing.
func streamQuery(ctx context.Context, lake *golake.Lake, user, sql string, qf queryFlags) error {
	order, err := parseOrderFlag(qf.order)
	if err != nil {
		return err
	}
	st, err := lake.Query(ctx, user, golake.QueryRequest{
		SQL:        sql,
		Order:      order,
		FanIn:      qf.fanIn,
		BufferRows: qf.bufferRows,
		BatchRows:  qf.batchRows,
		Shards:     qf.shards,
		Explain:    qf.explain,
		Timeout:    qf.timeout,
		MemoryRows: qf.memoryRows,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	if st.ExplainOnly() {
		fmt.Print(st.Plan().String())
		return nil
	}
	w := csv.NewWriter(os.Stdout)
	if err := w.Write(st.Columns()); err != nil {
		return err
	}
	for n := 0; ; n++ {
		row, err := st.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			w.Flush()
			return err
		}
		if err := w.Write(row); err != nil {
			return err
		}
		// Flush in small batches so rows reach the terminal (or a
		// downstream pipe) while the scan is still running.
		if n%64 == 63 {
			w.Flush()
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	if qf.stats {
		es := st.Stats()
		fmt.Fprintf(os.Stderr, "rows out: %d\n", es.RowsOut)
		for _, s := range es.Sources {
			fmt.Fprintf(os.Stderr, "source %s: %d rows pulled, blocked %s\n",
				s.Source, s.Rows, s.Blocked.Round(time.Microsecond))
		}
		for _, sp := range es.Trace {
			fmt.Fprintf(os.Stderr, "span %-14s %s\n", sp.Name, sp.Duration.Round(time.Microsecond))
		}
		if es.SortHeapRows > 0 {
			fmt.Fprintf(os.Stderr, "sort heap high-water: %d rows\n", es.SortHeapRows)
		}
		if es.Batches > 0 {
			fmt.Fprintf(os.Stderr, "columnar batches: %d\n", es.Batches)
		}
	}
	return nil
}

// parseOrderFlag parses the -order passthrough: col[:desc][,col...].
func parseOrderFlag(s string) ([]golake.OrderKey, error) {
	if s == "" {
		return nil, nil
	}
	var keys []golake.OrderKey
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		col, dir, hasDir := strings.Cut(item, ":")
		if col == "" {
			return nil, fmt.Errorf("-order: empty column in %q", s)
		}
		key := golake.OrderKey{Column: col}
		if hasDir {
			switch strings.ToLower(dir) {
			case "desc":
				key.Desc = true
			case "asc":
			default:
				return nil, fmt.Errorf("-order: bad direction %q (want asc or desc)", dir)
			}
		}
		keys = append(keys, key)
	}
	return keys, nil
}

func argK(args []string, i int) int {
	if len(args) > i {
		if k, err := strconv.Atoi(args[i]); err == nil {
			return k
		}
	}
	return 5
}

func profile(lake *golake.Lake) error {
	for _, id := range lake.GEMMS.IDs() {
		obj, err := lake.GEMMS.Object(id)
		if err != nil {
			return err
		}
		fmt.Printf("%s format=%s attrs=%d props=%d\n",
			id, obj.Properties["format"], len(obj.Attributes), len(obj.Properties))
	}
	return nil
}

func catalog(lake *golake.Lake) error {
	for _, id := range lake.Catalog.List() {
		e, err := lake.Catalog.Entry(id)
		if err != nil {
			return err
		}
		fmt.Printf("%s cluster=%s groups=%d\n", e.ID, e.Cluster, len(e.Groups))
	}
	return nil
}

func discover(ctx context.Context, lake *golake.Lake, user, tableName string, k int) error {
	res, err := lake.RelatedTables(ctx, user, tableName, k)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-30s %.3f via %s\n", r.Table, r.Score, r.Via)
	}
	return nil
}

func joinSearch(ctx context.Context, lake *golake.Lake, user, tableName, column string, k int) error {
	t, err := lake.Poly.Rel.Table(tableName)
	if err != nil {
		return err
	}
	res, err := lake.Explore(ctx, user, explore.Request{
		Mode: explore.ModeJoinColumn, Query: t, Column: column, K: k,
	})
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-30s overlap=%.0f\n", r.Table, r.Score)
	}
	return nil
}

// status prints the maintenance snapshot plus, on a persistent lake,
// the durability state (mirrors GET /v1/maintenance). With -metrics it
// also dumps the lake's registry in Prometheus text format — the same
// bytes GET /v1/metrics serves.
func status(lake *golake.Lake, metrics bool) error {
	st := lake.MaintenanceStatus()
	fmt.Printf("maintenance: passes=%d failures=%d covered=%d stale=%v auto=%v\n",
		st.PassesRun, st.Failures, st.Covered, st.Stale, st.Auto)
	if st.LastPass != nil {
		fmt.Printf("last pass: mode=%s datasets=%d tables=%d\n",
			st.LastPass.Mode, st.LastPass.Datasets, st.LastPass.Tables)
	}
	if d := st.Durability; d == nil {
		fmt.Println("durability: off (run with -persist)")
	} else {
		fmt.Printf("durability: backend=%s wal=%dB (%d records) snapshot=%dB\n",
			d.Backend, d.WALBytes, d.WALRecords, d.SnapshotBytes)
		if d.LastSnapshot != nil {
			fmt.Printf("last snapshot: %s\n", d.LastSnapshot.Format(time.RFC3339))
		}
		if r := d.Replay; r != nil {
			fmt.Printf("recovered: %d snapshot datasets + %d wal records (%d skipped, %d torn bytes)\n",
				r.SnapshotDatasets, r.WALRecords, r.WALSkipped, r.TornBytes)
		}
	}
	if metrics {
		return dumpMetrics(lake)
	}
	return nil
}

// dumpMetrics renders the lake's metric registry to stdout.
func dumpMetrics(lake *golake.Lake) error {
	reg := lake.Metrics()
	if reg == nil {
		fmt.Println("metrics: disabled")
		return nil
	}
	return reg.WritePrometheus(os.Stdout)
}

func printRegistry() {
	for _, e := range core.Registry() {
		fmt.Printf("%-12s %-28s %s\n", e.Tier, e.Function, strings.Join(e.Systems, ", "))
	}
}

// demo generates a synthetic corpus, runs the full pipeline and prints
// a compact walkthrough.
func demo(ctx context.Context) error {
	dir, err := os.MkdirTemp("", "golake-demo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	lake, err := golake.Open(dir)
	if err != nil {
		return err
	}
	lake.AddUser("dana", golake.RoleDataScientist)
	c := workload.GenerateCorpus(bench.DefaultCorpusSpec())
	for _, tbl := range c.Tables {
		if _, err := lake.Ingest(ctx, "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "demo", "dana"); err != nil {
			return err
		}
	}
	rep, err := lake.Maintain(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d tables, %d categories, %d RFDs\n",
		rep.Tables, len(rep.Categories), len(rep.RFDs))
	q := c.Tables[0].Name
	res, err := lake.RelatedTables(ctx, "dana", q, 4)
	if err != nil {
		return err
	}
	fmt.Printf("related to %s:\n", q)
	for _, r := range res {
		truth := ""
		if c.Joinable[workload.NewPair(q, r.Table)] {
			truth = " (ground truth ✓)"
		}
		fmt.Printf("  %-30s %.3f via %s%s\n", r.Table, r.Score, r.Via, truth)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lakectl:", err)
	os.Exit(1)
}
