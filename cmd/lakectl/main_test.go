package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// writeDataDir lays out a small raw-file directory for loadLake.
func writeDataDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"orders.csv":    "id,customer,total\n1,alice,10\n2,bob,20\n",
		"customers.csv": "customer,city\nalice,berlin\nbob,paris\n",
		"events.jsonl":  "{\"k\":\"a\"}\n{\"k\":\"b\"}\n",
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadLakeIngestsAndMaintains(t *testing.T) {
	lake, err := loadLake(context.Background(), writeDataDir(t), "cli", 0, 0, 0, false, false, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := lake.Catalog.List(); len(got) != 3 {
		t.Errorf("catalog = %v", got)
	}
	if !lake.Poly.Rel.Has("orders") || !lake.Poly.Rel.Has("customers") {
		t.Error("relational tables missing")
	}
	// Maintenance ran: exploration is available.
	if _, err := lake.RelatedTables(context.Background(), "cli", "orders", 2); err != nil {
		t.Errorf("explore after load: %v", err)
	}
}

func TestDispatchCommands(t *testing.T) {
	lake, err := loadLake(context.Background(), writeDataDir(t), "cli", 0, 0, 0, false, false, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][]string{
		{"profile"},
		{"catalog"},
		{"discover", "orders", "2"},
		{"join", "orders", "customer", "2"},
		{"query", "SELECT id FROM rel:orders WHERE total > 15"},
		{"swamp"},
		{"lineage", "orders.csv"},
	} {
		if err := dispatch(context.Background(), lake, "cli", c[0], c[1:], queryFlags{}); err != nil {
			t.Errorf("dispatch(%v): %v", c, err)
		}
	}
	// Missing-argument errors.
	for _, c := range [][]string{{"discover"}, {"join", "orders"}, {"query"}, {"lineage"}} {
		if err := dispatch(context.Background(), lake, "cli", c[0], c[1:], queryFlags{}); err == nil {
			t.Errorf("dispatch(%v) should fail", c)
		}
	}
}

func TestParseOrderFlag(t *testing.T) {
	keys, err := parseOrderFlag("price:desc, city ,n:asc")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || !keys[0].Desc || keys[0].Column != "price" ||
		keys[1].Desc || keys[1].Column != "city" || keys[2].Desc {
		t.Errorf("keys = %+v", keys)
	}
	if keys, err := parseOrderFlag(""); err != nil || keys != nil {
		t.Errorf("empty flag = %v, %v", keys, err)
	}
	for _, bad := range []string{":desc", "a:sideways", "a,,b"} {
		if _, err := parseOrderFlag(bad); err == nil {
			t.Errorf("parseOrderFlag(%q) should fail", bad)
		}
	}
}

// TestQueryFlagsDispatch drives the query command through the -order,
// -explain and fan-in flags — the one-Request plumbing.
func TestQueryFlagsDispatch(t *testing.T) {
	lake, err := loadLake(context.Background(), writeDataDir(t), "cli", 0, 0, 0, false, false, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, qf := range []queryFlags{
		{order: "total:desc", fanIn: 2, stats: true},
		{explain: true},
		{order: "id", bufferRows: 16},
	} {
		if err := dispatch(context.Background(), lake, "cli",
			"query", []string{"SELECT id, total FROM rel:orders"}, qf); err != nil {
			t.Errorf("dispatch query %+v: %v", qf, err)
		}
	}
	if err := dispatch(context.Background(), lake, "cli",
		"query", []string{"SELECT id FROM rel:orders"}, queryFlags{order: "id:bad"}); err == nil {
		t.Error("bad -order direction should fail")
	}
}

func TestArgK(t *testing.T) {
	if got := argK([]string{"x", "7"}, 1); got != 7 {
		t.Errorf("argK = %d", got)
	}
	if got := argK([]string{"x"}, 1); got != 5 {
		t.Errorf("argK default = %d", got)
	}
	if got := argK([]string{"x", "notanumber"}, 1); got != 5 {
		t.Errorf("argK bad input = %d", got)
	}
}

func TestDemoRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := demo(context.Background()); err != nil {
		t.Fatal(err)
	}
}
