// Command benchreport regenerates the survey's tables and figures as
// empirical reports over synthetic ground-truth corpora.
//
// Usage:
//
//	benchreport [-only table1|table2|table3|fig2|scaling|ablation|
//	             datamaran|modes|pushdown|streaming|fanin|semantic|ekg]
//	benchreport -json [-json-out FILE]
//
// Without -only, every experiment runs in DESIGN.md order. With -json,
// the fan-in (plain and ORDER BY — what default-on fan-in ships),
// streaming, scan-pipeline (scan_row vs scan_batch — the row and
// columnar executions of the same selective scan), ingest-durability
// (WAL off / WAL no-fsync / WAL fsync), metrics-overhead (identical
// drained query with the observability layer on vs WithMetrics(false)),
// admission-overhead (the same drained query bare vs behind a
// generous WithAdmission controller), and federation (the identical
// two-dataset scatter-gather through two remote member lakes over real
// HTTP vs co-located in one lake) benchmarks run through
// testing.Benchmark and their machine-readable results (ns/op,
// allocs/op, rows/s) are written to BENCH_10.json (or -json-out) — the
// in-repo perf trajectory file.
package main

import (
	"flag"
	"fmt"
	"os"

	"golake/internal/bench"
	"golake/internal/workload"
)

func main() {
	only := flag.String("only", "", "run a single experiment")
	jsonOut := flag.Bool("json", false, "write machine-readable benchmark results instead of reports")
	jsonPath := flag.String("json-out", "BENCH_10.json", "output path for -json")
	flag.Parse()
	dir, err := os.MkdirTemp("", "golake-benchreport-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	if *jsonOut {
		results, err := bench.FanInBenchResults(dir + "/benchjson")
		if err != nil {
			fatal(err)
		}
		scan, err := bench.ScanBenchResults(dir + "/scanjson")
		if err != nil {
			fatal(err)
		}
		results = append(results, scan...)
		ingest, err := bench.IngestBenchResults()
		if err != nil {
			fatal(err)
		}
		results = append(results, ingest...)
		overhead, err := bench.MetricsOverheadResults()
		if err != nil {
			fatal(err)
		}
		results = append(results, overhead...)
		adm, err := bench.AdmissionOverheadResults()
		if err != nil {
			fatal(err)
		}
		results = append(results, adm...)
		fed, err := bench.FederationBenchResults()
		if err != nil {
			fatal(err)
		}
		results = append(results, fed...)
		if err := bench.WriteBenchJSON(*jsonPath, results); err != nil {
			fatal(err)
		}
		for _, r := range results {
			fmt.Printf("%-28s %12d ns/op %8d allocs/op %12.0f rows/s\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.RowsPerSec)
		}
		fmt.Println("wrote", *jsonPath)
		return
	}
	if *only == "" {
		out, err := bench.All(dir)
		fmt.Print(out)
		if err != nil {
			fatal(err)
		}
		return
	}
	gens := map[string]func() (*bench.Report, error){
		"table1":    bench.Table1,
		"table2":    bench.Table2,
		"table3":    func() (*bench.Report, error) { return bench.Table3(workload.DefaultSpec(), 4) },
		"fig2":      func() (*bench.Report, error) { return bench.Fig2(dir) },
		"scaling":   func() (*bench.Report, error) { return bench.DiscoveryScaling([]int{20, 40, 80}, 4) },
		"ablation":  func() (*bench.Report, error) { return bench.D3LAblation(4) },
		"datamaran": bench.Datamaran,
		"modes":     func() (*bench.Report, error) { return bench.ExplorationModes(3) },
		"pushdown":  func() (*bench.Report, error) { return bench.Pushdown(dir, 20000) },
		"streaming": func() (*bench.Report, error) { return bench.QueryStreaming(dir, []int{1000, 100000}) },
		"fanin":     func() (*bench.Report, error) { return bench.FanIn([]int{1, 2, 4, 8}) },
		"semantic":  bench.JoinabilityVsSemantic,
		"ekg":       bench.EKGSummary,
	}
	g, ok := gens[*only]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *only))
	}
	rep, err := g()
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
