package lakeerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestWrapKeepsSentinelChain(t *testing.T) {
	sentinel := errors.New("core: unknown user")
	err := Wrap(CodeUnauthorized, fmt.Errorf("%w: mallory", sentinel))
	if !errors.Is(err, sentinel) {
		t.Error("errors.Is lost the sentinel through Wrap")
	}
	if CodeOf(err) != CodeUnauthorized {
		t.Errorf("CodeOf = %q", CodeOf(err))
	}
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeUnauthorized {
		t.Errorf("errors.As = %v, %+v", errors.As(err, &e), e)
	}
}

func TestWrapNil(t *testing.T) {
	if Wrap(CodeNotFound, nil) != nil {
		t.Error("Wrap(nil) should be nil")
	}
	if CodeOf(nil) != "" {
		t.Errorf("CodeOf(nil) = %q", CodeOf(nil))
	}
}

func TestCodeOfFallbacks(t *testing.T) {
	if CodeOf(errors.New("mystery")) != CodeInternal {
		t.Error("unclassified error should map to internal")
	}
	if CodeOf(context.Canceled) != CodeUnavailable {
		t.Error("canceled context should map to unavailable")
	}
	if CodeOf(fmt.Errorf("op: %w", context.DeadlineExceeded)) != CodeUnavailable {
		t.Error("deadline should map to unavailable")
	}
}

func TestOuterClassificationWins(t *testing.T) {
	inner := New(CodeNotFound, "no table")
	outer := Wrap(CodeInvalidQuery, fmt.Errorf("planning: %w", inner))
	if CodeOf(outer) != CodeInvalidQuery {
		t.Errorf("CodeOf = %q, want outer invalid_query", CodeOf(outer))
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		err  error
		pred func(error) bool
	}{
		{New(CodeNotFound, "x"), IsNotFound},
		{New(CodeUnauthorized, "x"), IsUnauthorized},
		{New(CodeInvalidQuery, "x"), IsInvalidQuery},
		{New(CodeConflict, "x"), IsConflict},
		{New(CodeUnavailable, "x"), IsUnavailable},
	}
	for i, c := range cases {
		if !c.pred(c.err) {
			t.Errorf("case %d: predicate rejected its own code", i)
		}
	}
	if IsNotFound(New(CodeConflict, "x")) {
		t.Error("IsNotFound matched conflict")
	}
}

func TestErrorfWrapsThroughFormat(t *testing.T) {
	sentinel := errors.New("base")
	err := Errorf(CodeConflict, "ingest %s: %w", "raw/a.csv", sentinel)
	if !errors.Is(err, sentinel) {
		t.Error("Errorf lost %w wrapping")
	}
	if err.Error() != "ingest raw/a.csv: base" {
		t.Errorf("message = %q", err.Error())
	}
}
