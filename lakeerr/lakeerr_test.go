package lakeerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestWrapKeepsSentinelChain(t *testing.T) {
	sentinel := errors.New("core: unknown user")
	err := Wrap(CodeUnauthorized, fmt.Errorf("%w: mallory", sentinel))
	if !errors.Is(err, sentinel) {
		t.Error("errors.Is lost the sentinel through Wrap")
	}
	if CodeOf(err) != CodeUnauthorized {
		t.Errorf("CodeOf = %q", CodeOf(err))
	}
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeUnauthorized {
		t.Errorf("errors.As = %v, %+v", errors.As(err, &e), e)
	}
}

func TestWrapNil(t *testing.T) {
	if Wrap(CodeNotFound, nil) != nil {
		t.Error("Wrap(nil) should be nil")
	}
	if CodeOf(nil) != "" {
		t.Errorf("CodeOf(nil) = %q", CodeOf(nil))
	}
}

func TestCodeOfFallbacks(t *testing.T) {
	if CodeOf(errors.New("mystery")) != CodeInternal {
		t.Error("unclassified error should map to internal")
	}
	if CodeOf(context.Canceled) != CodeUnavailable {
		t.Error("canceled context should map to unavailable")
	}
	if CodeOf(fmt.Errorf("op: %w", context.DeadlineExceeded)) != CodeDeadlineExceeded {
		t.Error("deadline should map to deadline_exceeded")
	}
}

func TestDeadlineAndResourceCodes(t *testing.T) {
	// A raw expired-context error classifies as deadline_exceeded even
	// without an explicit Wrap — the NDJSON trailer depends on this.
	if !IsDeadlineExceeded(context.DeadlineExceeded) {
		t.Error("bare context.DeadlineExceeded should classify as deadline_exceeded")
	}
	if IsUnavailable(context.DeadlineExceeded) {
		t.Error("deadline must no longer classify as unavailable")
	}
	// Plain cancellation stays unavailable: the client went away, the
	// server was fine.
	if !IsUnavailable(context.Canceled) {
		t.Error("canceled should stay unavailable")
	}
	// An explicit Wrap still wins over the context fallback.
	err := Wrap(CodeResourceExhausted, fmt.Errorf("budget: %w", context.DeadlineExceeded))
	if !IsResourceExhausted(err) || IsDeadlineExceeded(err) {
		t.Errorf("outer resource_exhausted should win, got %q", CodeOf(err))
	}
	if !IsResourceExhausted(New(CodeResourceExhausted, "quota")) {
		t.Error("IsResourceExhausted rejected its own code")
	}
	if !IsDeadlineExceeded(New(CodeDeadlineExceeded, "too slow")) {
		t.Error("IsDeadlineExceeded rejected its own code")
	}
}

func TestOuterClassificationWins(t *testing.T) {
	inner := New(CodeNotFound, "no table")
	outer := Wrap(CodeInvalidQuery, fmt.Errorf("planning: %w", inner))
	if CodeOf(outer) != CodeInvalidQuery {
		t.Errorf("CodeOf = %q, want outer invalid_query", CodeOf(outer))
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		err  error
		pred func(error) bool
	}{
		{New(CodeNotFound, "x"), IsNotFound},
		{New(CodeUnauthorized, "x"), IsUnauthorized},
		{New(CodeInvalidQuery, "x"), IsInvalidQuery},
		{New(CodeConflict, "x"), IsConflict},
		{New(CodeUnavailable, "x"), IsUnavailable},
	}
	for i, c := range cases {
		if !c.pred(c.err) {
			t.Errorf("case %d: predicate rejected its own code", i)
		}
	}
	if IsNotFound(New(CodeConflict, "x")) {
		t.Error("IsNotFound matched conflict")
	}
}

func TestErrorfWrapsThroughFormat(t *testing.T) {
	sentinel := errors.New("base")
	err := Errorf(CodeConflict, "ingest %s: %w", "raw/a.csv", sentinel)
	if !errors.Is(err, sentinel) {
		t.Error("Errorf lost %w wrapping")
	}
	if err.Error() != "ingest raw/a.csv: base" {
		t.Errorf("message = %q", err.Error())
	}
}
