// Package lakeerr defines the typed error taxonomy of the public lake
// API. Every tier returns *Error values (usually wrapping a
// lower-level sentinel), so callers classify failures with errors.As /
// CodeOf instead of matching message substrings, and the REST layer
// maps them onto stable HTTP statuses and a structured envelope.
package lakeerr

import (
	"context"
	"errors"
	"fmt"
)

// Code classifies a lake error. Codes are part of the wire contract:
// the REST v1 envelope carries them verbatim.
type Code string

// The taxonomy. CodeInternal is the fallback for unclassified errors.
const (
	CodeNotFound     Code = "not_found"
	CodeUnauthorized Code = "unauthorized"
	CodeInvalidQuery Code = "invalid_query"
	CodeConflict     Code = "conflict"
	CodeUnavailable  Code = "unavailable"
	CodeInternal     Code = "internal"
	// CodeDeadlineExceeded classifies a query that ran past its
	// deadline (Request.Timeout / "timeout_ms"). Distinct from
	// CodeUnavailable so clients can tell "the server is overloaded"
	// from "my query was too slow for the deadline I set".
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeResourceExhausted classifies admission rejections (quota,
	// rate limit, queue overflow) and memory-budget overruns — the
	// request was well-formed but the resources it needs are not
	// currently grantable. Maps to HTTP 429.
	CodeResourceExhausted Code = "resource_exhausted"
)

// Error is a classified lake error. It wraps the underlying cause, so
// errors.Is against package sentinels keeps working through it.
type Error struct {
	Code Code
	Err  error
}

// Error returns the underlying message; the code is metadata, not
// message decoration.
func (e *Error) Error() string { return e.Err.Error() }

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// New builds a classified error from a plain message.
func New(code Code, msg string) *Error {
	return &Error{Code: code, Err: errors.New(msg)}
}

// Errorf builds a classified error with fmt.Errorf semantics; %w
// wrapping works as usual.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Err: fmt.Errorf(format, args...)}
}

// Wrap classifies an existing error. It is nil-safe and always
// re-tags: the new code becomes the outermost classification, which is
// what CodeOf reports (an inner code stays reachable via errors.As on
// the unwrapped chain but no longer decides the classification).
func Wrap(code Code, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Code: code, Err: err}
}

// CodeOf extracts the classification of err: the code of the outermost
// *Error, CodeDeadlineExceeded for an expired context deadline,
// CodeUnavailable for plain cancellation, and CodeInternal for
// everything else (nil maps to the empty code).
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return CodeDeadlineExceeded
	}
	if errors.Is(err, context.Canceled) {
		return CodeUnavailable
	}
	return CodeInternal
}

// IsNotFound reports whether err is classified CodeNotFound.
func IsNotFound(err error) bool { return CodeOf(err) == CodeNotFound }

// IsUnauthorized reports whether err is classified CodeUnauthorized.
func IsUnauthorized(err error) bool { return CodeOf(err) == CodeUnauthorized }

// IsInvalidQuery reports whether err is classified CodeInvalidQuery.
func IsInvalidQuery(err error) bool { return CodeOf(err) == CodeInvalidQuery }

// IsConflict reports whether err is classified CodeConflict.
func IsConflict(err error) bool { return CodeOf(err) == CodeConflict }

// IsUnavailable reports whether err is classified CodeUnavailable.
func IsUnavailable(err error) bool { return CodeOf(err) == CodeUnavailable }

// IsDeadlineExceeded reports whether err is classified
// CodeDeadlineExceeded.
func IsDeadlineExceeded(err error) bool { return CodeOf(err) == CodeDeadlineExceeded }

// IsResourceExhausted reports whether err is classified
// CodeResourceExhausted.
func IsResourceExhausted(err error) bool { return CodeOf(err) == CodeResourceExhausted }
