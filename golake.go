// Package golake is a from-scratch, stdlib-only Go data lake framework
// reproducing the function-oriented architecture of "Data Lakes: A
// Survey of Functions and Systems" (Hai, Koutras, Quix, Jarke; ICDE
// 2024 extended abstract / arXiv:2106.09592).
//
// The survey classifies a decade of data lake systems into a
// three-tier architecture — ingestion, maintenance, exploration over a
// polystore storage tier (its Fig. 2) — with eleven functions (its
// Table 1). This package is the public facade over one working
// implementation of every function, each following a representative
// published system:
//
//	storage      polystore routing over file/KV/document/graph stores
//	ingestion    metadata extraction (GEMMS, DATAMARAN, Skluma) and
//	             modeling (GEMMS, HANDLE, data vault, Aurum EKG)
//	maintenance  organization (GOODS, DS-kNN, KAYAK, Nargesian, Juneau),
//	             discovery (JOSIE, Aurum, D3L, PEXESO, Juneau, DLN),
//	             integration (Constance, ALITE), enrichment (D4,
//	             DomainNet, RFDs, CoreDB), cleaning (CLAMS,
//	             Auto-Validate), schema evolution (Klettke et al.),
//	             provenance (GOODS/CoreDB/Suriarachchi)
//	exploration  the survey's three query-driven discovery modes and
//	             federated SQL over the polystore (Constance, CoreDB,
//	             Ontario, Squerall)
//
// Every operation takes a context.Context: cancel it and long-running
// maintenance or query work aborts mid-flight. Failures carry typed
// codes from the lakeerr package, so callers classify them with
// lakeerr.CodeOf / errors.As instead of matching message strings.
//
// Quickstart:
//
//	ctx := context.Background()
//	lake, _ := golake.Open(dir, golake.WithMaxResults(1000))
//	lake.AddUser("dana", golake.RoleDataScientist)
//	lake.IngestBatch(ctx, "dana", []golake.IngestItem{
//		{Path: "raw/orders.csv", Data: csvBytes, Source: "erp"},
//	})
//	lake.Maintain(ctx)
//	related, _ := lake.RelatedTables(ctx, "dana", "orders", 5)
//	rows, err := lake.QuerySQL(ctx, "dana", "SELECT id, total FROM rel:orders WHERE total > 10")
//	if lakeerr.IsInvalidQuery(err) { /* bad SQL, not a lake failure */ }
//
// # Querying
//
// Lake.Query is the one federated-query entry point: a structured
// QueryRequest (statement plus typed options) in, a streaming
// RowStream out. Execution is a pull-based iterator pipeline —
// per-source scans feed a union-merge with predicates, projection,
// ORDER BY and LIMIT as stages — so memory stays bounded by rows in
// flight (plus, when sorting under a LIMIT, a top-K heap of at most
// LIMIT rows):
//
//	st, err := lake.Query(ctx, "dana", golake.QueryRequest{
//		SQL:   "SELECT city, price FROM rel:hotels_a, doc:hotels_b WHERE price > 40",
//		Order: []golake.OrderKey{{Column: "price", Desc: true}},
//		Limit: 10,
//	})
//	if err != nil {
//		return err
//	}
//	defer st.Close()
//	for {
//		row, err := st.Next(ctx)
//		if errors.Is(err, io.EOF) {
//			break
//		}
//		if err != nil {
//			return err
//		}
//		use(row) // []string ordered like st.Columns()
//	}
//	fmt.Println(st.Stats()) // per-source rows pulled + time blocked
//
// Fan-in is on by default: member-store sources are drained
// concurrently (one puller per CPU) behind bounded backpressure
// buffers, so wall-clock tracks the slowest source instead of the sum
// of sources. An ORDER BY — in the SQL or via QueryRequest.Order —
// makes the output order deterministic at any width (numeric-aware
// keys plus a whole-row tiebreak); without one, rows interleave in
// arrival order. QueryRequest.FanIn pins the width (1 forces the
// sequential source-concatenation union), WithFanIn pins a lake-wide
// default, and QueryRequest.BufferRows sizes the per-source window.
//
// Queries whose FROM list is entirely relational run on a columnar
// batch pipeline — typed column vectors moved ~1024 rows at a time,
// vectorized filtering, fan-in shipping whole batches — with output
// byte-identical to the row pipeline; any other source mix falls back
// to row mode (the plan says which ran). QueryRequest.BatchRows sizes
// the batches.
//
// Plan introspection rides on the same request: EXPLAIN SELECT ... (or
// QueryRequest.Explain) returns a rowless stream whose Plan() carries
// the per-source access paths, pushed-down predicates, fan-in width
// and sort strategy; every executed stream exposes the same Plan()
// plus live Stats().
//
// QuerySQL remains the materializing collector over the same pipeline.
// The older QueryStream/QueryStreamFanIn methods are deprecated shims
// over Query (they keep their frozen sequential-by-default behavior).
//
// Over REST, POST /v1/query accepts {"sql", "order", "limit", "fanin",
// "buffer_rows", "batch_rows", "explain"} and streams chunked NDJSON when the
// request carries Accept: application/x-ndjson (header line, one JSON
// row per line, a {"stats":{...}} trailer on clean end, a final
// {"error":{...}} line on mid-stream failure). With "explain": true it
// returns {"plan": {...}} instead of rows.
//
// # Distributed federation
//
// A lake can federate other lakes as remote member stores: register
// each member with WithRemoteStore and address its datasets as
// "member:dataset" (or enable WithRemoteRouting to resolve bare names
// through a consistent-hash ring over the members). The remote hop
// speaks the same POST /v1/query NDJSON protocol any client does, with
// predicates, projections, and ORDER BY+LIMIT pushed down to the
// member; to the fan-in machinery a remote lake is just a slow member
// store, so scatter-gather across N members is the ordinary parallel
// union. QueryRequest.Shards additionally range-partitions each local
// relational scan into K cursors drained through the same fan-in.
// Remote failures keep their lakeerr codes end to end, and a connection
// dropped mid-stream surfaces as a typed unavailable error, never a
// silent short result:
//
//	lake, _ := golake.Open(dir,
//		golake.WithRemoteStore("east", "http://east.lake:8080",
//			golake.RemoteOptions{Timeout: 5 * time.Second, Token: eastToken}),
//		golake.WithRemoteStore("west", "http://west.lake:8080",
//			golake.RemoteOptions{Timeout: 5 * time.Second, Token: westToken}))
//	rows, _ := lake.QuerySQL(ctx, "dana",
//		"SELECT city, price FROM east:hotels, west:hotels WHERE price > 40")
//
// Member lakes authenticate the hop with bearer tokens (Lake.AddToken
// registers one; only its sha256 digest is stored) and audit the
// originating user via the forwarded X-Lake-User identity.
//
// # Background maintenance
//
// The manual Maintain call above can be replaced by an always-on
// scheduler, the operating mode of continuously-running catalog
// systems (GOODS-style post-hoc cataloging): open the lake with
// WithAutoMaintain and ingested data becomes explorable on its own —
// no operator in the loop. Passes are incremental, so a new dataset in
// a maintained lake of N costs O(1 dataset) to index, not O(N):
//
//	lake, _ := golake.Open(dir, golake.WithAutoMaintain(5*time.Second))
//	defer lake.Close()
//	lake.AddUser("dana", golake.RoleDataScientist)
//	lake.Ingest(ctx, "raw/orders.csv", csvBytes, "erp", "dana")
//	// ...within an interval the scheduler indexes it:
//	related, _ := lake.RelatedTables(ctx, "dana", "orders", 5)
//
// Lake.MaintenanceStatus snapshots the subsystem (passes run,
// failures, last pass, next firing); Lake.MaintainIncremental runs one
// incremental pass by hand; Lake.TriggerMaintain is the conflict-aware
// variant behind POST /v1/maintenance.
//
// The same surface is served over REST by Lake.HTTPHandler: a
// versioned /v1 API with a structured error envelope (see
// internal/core's route table), including GET/POST /v1/maintenance for
// the maintenance subsystem.
//
// # Durability & recovery
//
// A lake is in-memory by default: Open rebuilds raw-file metadata from
// the data directory but loses users, derived tables, zones, audit
// trails, and index coverage on restart. WithPersistence makes the
// whole logical state durable through a pluggable backend:
//
//	backend, _ := golake.NewLocalBackend(
//		filepath.Join(dir, ".golake"), golake.WithSync(golake.SyncAlways))
//	lake, _ := golake.Open(dir, golake.WithPersistence(backend))
//	defer lake.Close() // flushes a final snapshot
//
// Every mutating operation (user registration, ingest, derive, evict,
// provenance event, maintenance coverage) appends one checksummed
// record to a write-ahead log; when the log outgrows the
// WithSnapshotEvery threshold — and on Close — a snapshot of the full
// logical state is installed atomically and the log truncated. Reopen
// replays snapshot + WAL tail: a crash at any byte boundary loses at
// most the torn tail record (dropped with a logged warning, never a
// failed open), and a previously maintained lake comes back with its
// exploration indexes rebuilt and its first scheduled pass planning
// incrementally rather than re-indexing the corpus. The fsync policy
// is the backend's: SyncAlways makes every record crash-durable,
// SyncNone (the default) leaves flushing to the OS. GET /v1/maintenance
// reports the durability state (backend, WAL size, last snapshot,
// replay stats) alongside the pass counters.
package golake

import (
	"log/slog"
	"time"

	"golake/internal/admission"
	"golake/internal/core"
	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/maintain"
	"golake/internal/obs"
	"golake/internal/persist"
	"golake/internal/query"
	"golake/internal/remote"
	"golake/internal/table"
)

// Lake is an assembled data lake; see core.Lake for the full API.
type Lake = core.Lake

// Role is a lake user role (Sec. 3.3 of the survey).
type Role = core.Role

// User roles.
const (
	RoleDataScientist = core.RoleDataScientist
	RoleCurator       = core.RoleCurator
	RoleGovernance    = core.RoleGovernance
	RoleOperations    = core.RoleOperations
)

// Zones datasets progress through.
const (
	ZoneRaw     = core.ZoneRaw
	ZoneCurated = core.ZoneCurated
	ZoneTrusted = core.ZoneTrusted
)

// Table is the tabular dataset model.
type Table = table.Table

// QueryRequest is the unified federated-query request consumed by
// Lake.Query: one statement plus typed execution options (ORDER BY
// keys, row cap, fan-in width, buffer window, explain).
type QueryRequest = query.Request

// OrderKey is one ORDER BY sort key of a QueryRequest.
type OrderKey = query.OrderKey

// RowStream is the result of Lake.Query: a pull-based row iterator
// (Columns/Next/Close) plus plan introspection (Plan) and live
// per-source execution stats (Stats).
type RowStream = query.RowStream

// QueryPlan is the typed execution plan reported by EXPLAIN and
// RowStream.Plan: per-source access paths, pushed-down predicates,
// fan-in width, sort strategy.
type QueryPlan = query.Plan

// SourcePlan is one FROM item's access path within a QueryPlan.
type SourcePlan = query.SourcePlan

// ExecStats snapshots a stream's execution counters (RowStream.Stats).
type ExecStats = query.ExecStats

// SourceStats is one source's rows-pulled / time-blocked counters.
type SourceStats = query.SourceStats

// RowIterator is the pull-based row stream interface every pipeline
// stage implements; RowStream satisfies it.
type RowIterator = query.RowIterator

// Row is one streamed result record.
type Row = query.Row

// IngestItem is one object of an IngestBatch bulk load.
type IngestItem = core.IngestItem

// ExploreRequest is a query-driven discovery request.
type ExploreRequest = explore.Request

// ExploreResult is one ranked discovery answer.
type ExploreResult = explore.Result

// Exploration modes (Sec. 7.1).
const (
	ModeJoinColumn = explore.ModeJoinColumn
	ModePopulate   = explore.ModePopulate
	ModeTask       = explore.ModeTask
)

// SearchTask selects Juneau-style task-specific relatedness.
type SearchTask = discovery.SearchTask

// Data-science search tasks.
const (
	TaskAugment  = discovery.TaskAugment
	TaskFeatures = discovery.TaskFeatures
	TaskClean    = discovery.TaskClean
)

// MaintenanceReport summarizes one maintenance pass.
type MaintenanceReport = core.MaintenanceReport

// MaintenanceStatus is the maintenance-subsystem snapshot returned by
// Lake.MaintenanceStatus and served by GET /v1/maintenance.
type MaintenanceStatus = maintain.Status

// DurabilityStatus reports the persistence backend's health inside
// MaintenanceStatus (WAL size, last snapshot, open-time replay stats).
type DurabilityStatus = maintain.DurabilityStatus

// ReplayStats summarizes one open-time crash recovery.
type ReplayStats = maintain.ReplayStats

// MetricsRegistry is the lake's metric registry, returned by
// Lake.Metrics (nil with WithMetrics(false)). WritePrometheus renders
// it in the Prometheus text exposition format — the same bytes GET
// /v1/metrics serves.
type MetricsRegistry = obs.Registry

// PersistenceBackend is the pluggable durability store a lake writes
// its WAL and snapshots through; see NewMemoryBackend and
// NewLocalBackend for the built-ins. The interface is storage-agnostic
// — a SQLite- or object-store-backed implementation plugs in the same
// way.
type PersistenceBackend = persist.Backend

// MemoryBackend keeps WAL and snapshot in process memory — durability
// across lake generations sharing the backend value, not across
// process restarts. Useful for tests and as the minimal Backend
// reference implementation.
type MemoryBackend = persist.Memory

// LocalBackend persists WAL and snapshot as files in a local
// directory, with atomic snapshot installation and torn-tail-tolerant
// log recovery.
type LocalBackend = persist.Local

// LocalBackendOption configures NewLocalBackend (see WithSync).
type LocalBackendOption = persist.LocalOption

// SyncPolicy selects when the local backend fsyncs WAL appends.
type SyncPolicy = persist.Sync

// Fsync policies for NewLocalBackend.
const (
	// SyncNone leaves flushing to the OS: fastest, loses recent records
	// on power failure (not on process crash).
	SyncNone = persist.SyncNone
	// SyncAlways fsyncs every WAL append: every acknowledged operation
	// survives power failure.
	SyncAlways = persist.SyncAlways
)

// NewMemoryBackend creates an in-memory persistence backend.
func NewMemoryBackend() *MemoryBackend { return persist.NewMemory() }

// NewLocalBackend creates a directory-backed persistence backend; the
// directory is created if needed. Point it at <lakedir>/.golake — the
// name the file store reserves — to keep a lake and its durability
// files together.
func NewLocalBackend(dir string, opts ...LocalBackendOption) (*LocalBackend, error) {
	return persist.NewLocal(dir, opts...)
}

// WithSync sets the local backend's fsync policy (default SyncNone).
func WithSync(s SyncPolicy) LocalBackendOption { return persist.WithSync(s) }

// Option configures an assembled lake (see WithClock, WithPushdown,
// WithMaxResults, WithLogger, WithAutoMaintain, WithPersistence).
type Option = core.Option

// WithClock substitutes the lake's time source (tests, replays).
func WithClock(clock func() time.Time) Option { return core.WithClock(clock) }

// WithPushdown toggles predicate/projection pushdown in the federated
// query engine (on by default).
func WithPushdown(enabled bool) Option { return core.WithPushdown(enabled) }

// WithMaxResults caps query result rows and exploration K (0 =
// unlimited).
func WithMaxResults(n int) Option { return core.WithMaxResults(n) }

// WithLogger installs a structured logger: one access-log line per
// REST request (request_id included), audit events for query / ingest /
// derive / evict, and persistence + maintenance lifecycle events.
func WithLogger(l *slog.Logger) Option { return core.WithLogger(l) }

// WithMetrics toggles the lake's metric registry (on by default). The
// registry covers the HTTP, query-engine, maintenance, and persistence
// layers and is served in Prometheus text format at GET /v1/metrics;
// Lake.Metrics exposes it in-process. Disabling removes all metric
// bookkeeping and turns the endpoint into a 503.
func WithMetrics(enabled bool) Option { return core.WithMetrics(enabled) }

// WithFanIn pins the lake-wide fan-in default for Lake.Query requests
// that leave QueryRequest.FanIn unset: workers member-store scans
// drained in parallel (1 = sequential union), each buffering roughly
// bufferRows rows ahead of the consumer (0 = default window). Unset,
// requests default to one puller per CPU. Result sets never change
// with the width; without an ORDER BY the interleaving of rows across
// sources does (arrival order), and a LIMIT keeps whichever rows
// arrived first. With an ORDER BY the output is deterministic at any
// width.
func WithFanIn(workers, bufferRows int) Option { return core.WithFanIn(workers, bufferRows) }

// WithAutoMaintain starts a background maintenance scheduler: every
// interval the lake checks for new data and runs an incremental
// maintenance pass, so ingests become explorable without a manual
// Maintain call. Call Lake.Close to stop it.
func WithAutoMaintain(interval time.Duration) Option { return core.WithAutoMaintain(interval) }

// WithPersistence makes the lake durable through the given backend:
// Open replays its snapshot + WAL before serving, every mutating
// operation is logged, and Close flushes a final snapshot. See the
// "Durability & recovery" section of the package documentation.
func WithPersistence(backend PersistenceBackend) Option { return core.WithPersistence(backend) }

// WithSnapshotEvery sets the WAL size (bytes) that triggers a
// snapshot + log truncation (default 4 MiB; 0 disables size-triggered
// snapshots, leaving only the Close-time flush).
func WithSnapshotEvery(walBytes int64) Option { return core.WithSnapshotEvery(walBytes) }

// AdmissionConfig configures the admission controller WithAdmission
// installs: per-user concurrency quotas (MaxConcurrentPerUser) with
// bounded-wait queueing (MaxQueuedPerUser, MaxQueueWait), per-user
// token-bucket rate limits (RatePerSec, Burst), a global in-flight
// ceiling (MaxInFlight), default and maximum query deadlines
// (DefaultTimeout, MaxTimeout) and memory budgets (DefaultMemoryRows,
// MaxMemoryRows), and the Retry-After hint for shed queries. Zero
// values leave each dimension unenforced.
type AdmissionConfig = admission.Config

// WithAdmission places an admission controller in front of every query
// entry point. Shed queries fail fast with typed lakeerr codes —
// resource_exhausted (HTTP 429 plus Retry-After) for per-user quota or
// rate rejections, unavailable (HTTP 503) at the global ceiling — and
// admitted queries inherit the configured default deadline and memory
// budget unless their QueryRequest says otherwise (requests are clamped
// to the configured maximums either way).
func WithAdmission(cfg AdmissionConfig) Option { return core.WithAdmission(cfg) }

// RetryAfterOf extracts the retry hint from a shed-query error, when
// present.
func RetryAfterOf(err error) (time.Duration, bool) { return admission.RetryAfterOf(err) }

// RemoteOptions tunes one remote member store: per-request Timeout,
// ConnectRetries with capped exponential backoff, the bearer Token the
// hop authenticates with, and an overriding http.Client (tests).
type RemoteOptions = remote.Options

// WithRemoteStore federates another golake into this one as a member
// store named name: queries addressing "name:dataset" stream from the
// member's POST /v1/query endpoint with predicates, projections, and
// ORDER BY+LIMIT pushed down. See the "Distributed federation" section
// of the package documentation.
func WithRemoteStore(name, baseURL string, opts RemoteOptions) Option {
	return core.WithRemoteStore(name, baseURL, opts)
}

// WithRemoteRouting routes bare dataset names that resolve to no local
// store through a consistent-hash ring over the registered remote
// members, so callers need not name the member holding a dataset.
func WithRemoteRouting(enabled bool) Option { return core.WithRemoteRouting(enabled) }

// HashRing is the consistent-hash placement helper the router uses;
// exported for planning dataset placement across member lakes.
type HashRing = remote.Ring

// NewHashRing builds a consistent-hash ring over member names with
// vnodes virtual nodes per member (<= 0 uses the default, 64). The same
// member set always yields the same placements, and placements mostly
// survive membership changes.
func NewHashRing(members []string, vnodes int) *HashRing {
	return remote.NewRing(members, vnodes)
}

// Open assembles a data lake rooted at dir.
func Open(dir string, opts ...Option) (*Lake, error) { return core.Open(dir, opts...) }

// OpenWithClock assembles a lake with a custom clock.
//
// Deprecated: use Open(dir, WithClock(clock)).
func OpenWithClock(dir string, clock func() time.Time) (*Lake, error) {
	return core.Open(dir, core.WithClock(clock))
}

// ParseCSV parses CSV text into a Table.
func ParseCSV(name, content string) (*Table, error) { return table.ParseCSV(name, content) }

// ToCSV renders a Table as CSV.
func ToCSV(t *Table) string { return table.ToCSV(t) }
