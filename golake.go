// Package golake is a from-scratch, stdlib-only Go data lake framework
// reproducing the function-oriented architecture of "Data Lakes: A
// Survey of Functions and Systems" (Hai, Koutras, Quix, Jarke; ICDE
// 2024 extended abstract / arXiv:2106.09592).
//
// The survey classifies a decade of data lake systems into a
// three-tier architecture — ingestion, maintenance, exploration over a
// polystore storage tier (its Fig. 2) — with eleven functions (its
// Table 1). This package is the public facade over one working
// implementation of every function, each following a representative
// published system:
//
//	storage      polystore routing over file/KV/document/graph stores
//	ingestion    metadata extraction (GEMMS, DATAMARAN, Skluma) and
//	             modeling (GEMMS, HANDLE, data vault, Aurum EKG)
//	maintenance  organization (GOODS, DS-kNN, KAYAK, Nargesian, Juneau),
//	             discovery (JOSIE, Aurum, D3L, PEXESO, Juneau, DLN),
//	             integration (Constance, ALITE), enrichment (D4,
//	             DomainNet, RFDs, CoreDB), cleaning (CLAMS,
//	             Auto-Validate), schema evolution (Klettke et al.),
//	             provenance (GOODS/CoreDB/Suriarachchi)
//	exploration  the survey's three query-driven discovery modes and
//	             federated SQL over the polystore (Constance, CoreDB,
//	             Ontario, Squerall)
//
// Quickstart:
//
//	lake, _ := golake.Open(dir)
//	lake.AddUser("dana", golake.RoleDataScientist)
//	lake.Ingest("raw/orders.csv", csvBytes, "erp", "dana")
//	lake.Maintain()
//	related, _ := lake.RelatedTables("dana", "orders", 5)
//	rows, _ := lake.QuerySQL("dana", "SELECT id, total FROM rel:orders WHERE total > 10")
package golake

import (
	"time"

	"golake/internal/core"
	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/table"
)

// Lake is an assembled data lake; see core.Lake for the full API.
type Lake = core.Lake

// Role is a lake user role (Sec. 3.3 of the survey).
type Role = core.Role

// User roles.
const (
	RoleDataScientist = core.RoleDataScientist
	RoleCurator       = core.RoleCurator
	RoleGovernance    = core.RoleGovernance
	RoleOperations    = core.RoleOperations
)

// Zones datasets progress through.
const (
	ZoneRaw     = core.ZoneRaw
	ZoneCurated = core.ZoneCurated
	ZoneTrusted = core.ZoneTrusted
)

// Table is the tabular dataset model.
type Table = table.Table

// ExploreRequest is a query-driven discovery request.
type ExploreRequest = explore.Request

// ExploreResult is one ranked discovery answer.
type ExploreResult = explore.Result

// Exploration modes (Sec. 7.1).
const (
	ModeJoinColumn = explore.ModeJoinColumn
	ModePopulate   = explore.ModePopulate
	ModeTask       = explore.ModeTask
)

// SearchTask selects Juneau-style task-specific relatedness.
type SearchTask = discovery.SearchTask

// Data-science search tasks.
const (
	TaskAugment  = discovery.TaskAugment
	TaskFeatures = discovery.TaskFeatures
	TaskClean    = discovery.TaskClean
)

// Open assembles a data lake rooted at dir.
func Open(dir string) (*Lake, error) { return core.Open(dir, nil) }

// OpenWithClock assembles a lake with a custom clock (tests, replays).
func OpenWithClock(dir string, clock func() time.Time) (*Lake, error) {
	return core.Open(dir, clock)
}

// ParseCSV parses CSV text into a Table.
func ParseCSV(name, content string) (*Table, error) { return table.ParseCSV(name, content) }

// ToCSV renders a Table as CSV.
func ToCSV(t *Table) string { return table.ToCSV(t) }
