// Package golake is a from-scratch, stdlib-only Go data lake framework
// reproducing the function-oriented architecture of "Data Lakes: A
// Survey of Functions and Systems" (Hai, Koutras, Quix, Jarke; ICDE
// 2024 extended abstract / arXiv:2106.09592).
//
// The survey classifies a decade of data lake systems into a
// three-tier architecture — ingestion, maintenance, exploration over a
// polystore storage tier (its Fig. 2) — with eleven functions (its
// Table 1). This package is the public facade over one working
// implementation of every function, each following a representative
// published system:
//
//	storage      polystore routing over file/KV/document/graph stores
//	ingestion    metadata extraction (GEMMS, DATAMARAN, Skluma) and
//	             modeling (GEMMS, HANDLE, data vault, Aurum EKG)
//	maintenance  organization (GOODS, DS-kNN, KAYAK, Nargesian, Juneau),
//	             discovery (JOSIE, Aurum, D3L, PEXESO, Juneau, DLN),
//	             integration (Constance, ALITE), enrichment (D4,
//	             DomainNet, RFDs, CoreDB), cleaning (CLAMS,
//	             Auto-Validate), schema evolution (Klettke et al.),
//	             provenance (GOODS/CoreDB/Suriarachchi)
//	exploration  the survey's three query-driven discovery modes and
//	             federated SQL over the polystore (Constance, CoreDB,
//	             Ontario, Squerall)
//
// Every operation takes a context.Context: cancel it and long-running
// maintenance or query work aborts mid-flight. Failures carry typed
// codes from the lakeerr package, so callers classify them with
// lakeerr.CodeOf / errors.As instead of matching message strings.
//
// Quickstart:
//
//	ctx := context.Background()
//	lake, _ := golake.Open(dir, golake.WithMaxResults(1000))
//	lake.AddUser("dana", golake.RoleDataScientist)
//	lake.IngestBatch(ctx, "dana", []golake.IngestItem{
//		{Path: "raw/orders.csv", Data: csvBytes, Source: "erp"},
//	})
//	lake.Maintain(ctx)
//	related, _ := lake.RelatedTables(ctx, "dana", "orders", 5)
//	rows, err := lake.QuerySQL(ctx, "dana", "SELECT id, total FROM rel:orders WHERE total > 10")
//	if lakeerr.IsInvalidQuery(err) { /* bad SQL, not a lake failure */ }
//
// # Streaming queries
//
// Query execution is a pull-based iterator pipeline: per-source scans
// feed a streaming union-merge with predicates, projection and LIMIT
// as stages, so memory stays bounded by rows in flight instead of the
// full federated result. Lake.QueryStream exposes it directly:
//
//	it, err := lake.QueryStream(ctx, "dana", "SELECT id FROM rel:orders LIMIT 10")
//	if err != nil {
//		return err
//	}
//	defer it.Close()
//	for {
//		row, err := it.Next(ctx)
//		if errors.Is(err, io.EOF) {
//			break
//		}
//		if err != nil {
//			return err
//		}
//		use(row) // []string ordered like it.Columns()
//	}
//
// Over REST, POST /v1/query streams chunked NDJSON when the request
// carries Accept: application/x-ndjson (header line, one JSON row per
// line, a final {"error":{...}} line on mid-stream failure).
//
// # Parallel fan-in
//
// By default a federated query drains its member stores sequentially,
// which keeps row order deterministic (source-concatenation order) but
// means one slow store stalls the whole stream. WithFanIn turns on
// concurrent, backpressure-aware fan-in: up to workers source scans are
// opened and drained in parallel, each buffering roughly bufferRows
// rows ahead of the consumer, so wall-clock latency tracks the slowest
// source instead of the sum of sources:
//
//	lake, _ := golake.Open(dir, golake.WithFanIn(8, 256))
//
// Result sets are identical to the sequential union; only the
// interleaving of rows across sources changes (completion order). The
// exception is LIMIT (and the WithMaxResults cap): without an ORDER BY
// there is no defined "first n", so a capped fan-in query keeps
// whichever n rows arrive first — a different subset run to run.
// Cancelling the query context or closing the iterator tears every
// source puller down leak-free. Over REST, the POST /v1/query body
// accepts per-request "fanin" and "buffer_rows" overrides.
//
// # Background maintenance
//
// The manual Maintain call above can be replaced by an always-on
// scheduler, the operating mode of continuously-running catalog
// systems (GOODS-style post-hoc cataloging): open the lake with
// WithAutoMaintain and ingested data becomes explorable on its own —
// no operator in the loop. Passes are incremental, so a new dataset in
// a maintained lake of N costs O(1 dataset) to index, not O(N):
//
//	lake, _ := golake.Open(dir, golake.WithAutoMaintain(5*time.Second))
//	defer lake.Close()
//	lake.AddUser("dana", golake.RoleDataScientist)
//	lake.Ingest(ctx, "raw/orders.csv", csvBytes, "erp", "dana")
//	// ...within an interval the scheduler indexes it:
//	related, _ := lake.RelatedTables(ctx, "dana", "orders", 5)
//
// Lake.MaintenanceStatus snapshots the subsystem (passes run,
// failures, last pass, next firing); Lake.MaintainIncremental runs one
// incremental pass by hand; Lake.TriggerMaintain is the conflict-aware
// variant behind POST /v1/maintenance.
//
// The same surface is served over REST by Lake.HTTPHandler: a
// versioned /v1 API with a structured error envelope (see
// internal/core's route table), including GET/POST /v1/maintenance for
// the maintenance subsystem.
package golake

import (
	"log/slog"
	"time"

	"golake/internal/core"
	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/maintain"
	"golake/internal/query"
	"golake/internal/table"
)

// Lake is an assembled data lake; see core.Lake for the full API.
type Lake = core.Lake

// Role is a lake user role (Sec. 3.3 of the survey).
type Role = core.Role

// User roles.
const (
	RoleDataScientist = core.RoleDataScientist
	RoleCurator       = core.RoleCurator
	RoleGovernance    = core.RoleGovernance
	RoleOperations    = core.RoleOperations
)

// Zones datasets progress through.
const (
	ZoneRaw     = core.ZoneRaw
	ZoneCurated = core.ZoneCurated
	ZoneTrusted = core.ZoneTrusted
)

// Table is the tabular dataset model.
type Table = table.Table

// RowIterator is the pull-based row stream returned by
// Lake.QueryStream: Columns is the header, Next yields one row at a
// time (io.EOF at the end, cancellation honored between rows), Close
// releases the source scans. QuerySQL remains the materializing
// collector over the same pipeline.
type RowIterator = query.RowIterator

// Row is one streamed result record.
type Row = query.Row

// IngestItem is one object of an IngestBatch bulk load.
type IngestItem = core.IngestItem

// ExploreRequest is a query-driven discovery request.
type ExploreRequest = explore.Request

// ExploreResult is one ranked discovery answer.
type ExploreResult = explore.Result

// Exploration modes (Sec. 7.1).
const (
	ModeJoinColumn = explore.ModeJoinColumn
	ModePopulate   = explore.ModePopulate
	ModeTask       = explore.ModeTask
)

// SearchTask selects Juneau-style task-specific relatedness.
type SearchTask = discovery.SearchTask

// Data-science search tasks.
const (
	TaskAugment  = discovery.TaskAugment
	TaskFeatures = discovery.TaskFeatures
	TaskClean    = discovery.TaskClean
)

// MaintenanceReport summarizes one maintenance pass.
type MaintenanceReport = core.MaintenanceReport

// MaintenanceStatus is the maintenance-subsystem snapshot returned by
// Lake.MaintenanceStatus and served by GET /v1/maintenance.
type MaintenanceStatus = maintain.Status

// Option configures an assembled lake (see WithClock, WithPushdown,
// WithMaxResults, WithLogger, WithAutoMaintain).
type Option = core.Option

// WithClock substitutes the lake's time source (tests, replays).
func WithClock(clock func() time.Time) Option { return core.WithClock(clock) }

// WithPushdown toggles predicate/projection pushdown in the federated
// query engine (on by default).
func WithPushdown(enabled bool) Option { return core.WithPushdown(enabled) }

// WithMaxResults caps query result rows and exploration K (0 =
// unlimited).
func WithMaxResults(n int) Option { return core.WithMaxResults(n) }

// WithLogger installs a structured logger for REST request logging.
func WithLogger(l *slog.Logger) Option { return core.WithLogger(l) }

// WithFanIn drains federated queries' member-store scans concurrently:
// up to workers sources in parallel, each buffering roughly bufferRows
// rows ahead of the consumer (0 = default window). Rows arrive in
// completion order; result sets are unchanged, except that a LIMIT (or
// WithMaxResults cap) keeps the first rows by arrival, so the kept
// subset varies run to run. workers <= 1 keeps the sequential,
// ordering-stable union (the default).
func WithFanIn(workers, bufferRows int) Option { return core.WithFanIn(workers, bufferRows) }

// WithAutoMaintain starts a background maintenance scheduler: every
// interval the lake checks for new data and runs an incremental
// maintenance pass, so ingests become explorable without a manual
// Maintain call. Call Lake.Close to stop it.
func WithAutoMaintain(interval time.Duration) Option { return core.WithAutoMaintain(interval) }

// Open assembles a data lake rooted at dir.
func Open(dir string, opts ...Option) (*Lake, error) { return core.Open(dir, opts...) }

// OpenWithClock assembles a lake with a custom clock.
//
// Deprecated: use Open(dir, WithClock(clock)).
func OpenWithClock(dir string, clock func() time.Time) (*Lake, error) {
	return core.Open(dir, core.WithClock(clock))
}

// ParseCSV parses CSV text into a Table.
func ParseCSV(name, content string) (*Table, error) { return table.ParseCSV(name, content) }

// ToCSV renders a Table as CSV.
func ToCSV(t *Table) string { return table.ToCSV(t) }
