package lakehouse

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"golake/internal/table"
)

func mustCSV(t *testing.T, name, csv string) *table.Table {
	t.Helper()
	tbl, err := table.ParseCSV(name, csv)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func newLH(t *testing.T) *Lakehouse {
	t.Helper()
	lh, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return lh
}

func TestCreateReadAppend(t *testing.T) {
	lh := newLH(t)
	orders := mustCSV(t, "orders", "id,total\n1,10\n2,20\n")
	if err := lh.Create(orders); err != nil {
		t.Fatal(err)
	}
	if err := lh.Create(orders); err == nil {
		t.Error("double create should fail")
	}
	got, v, err := lh.Read("orders")
	if err != nil || v != 1 || got.NumRows() != 2 {
		t.Fatalf("Read = %v rows, v%d, %v", got.NumRows(), v, err)
	}
	more := mustCSV(t, "orders", "id,total\n3,30\n")
	v2, err := lh.Append("orders", v, more)
	if err != nil || v2 != 2 {
		t.Fatalf("Append = v%d, %v", v2, err)
	}
	got, _, _ = lh.Read("orders")
	if got.NumRows() != 3 {
		t.Errorf("rows after append = %d", got.NumRows())
	}
	if _, _, err := lh.Read("ghost"); !errors.Is(err, ErrNoTable) {
		t.Errorf("Read ghost = %v", err)
	}
}

func TestOptimisticConcurrencyConflict(t *testing.T) {
	lh := newLH(t)
	_ = lh.Create(mustCSV(t, "t", "a\n1\n"))
	// Two writers both read v1.
	rows := mustCSV(t, "t", "a\n2\n")
	if _, err := lh.Append("t", 1, rows); err != nil {
		t.Fatal(err)
	}
	// Second writer's commit on stale v1 must conflict.
	if _, err := lh.Append("t", 1, rows); !errors.Is(err, ErrConflict) {
		t.Errorf("stale append = %v, want ErrConflict", err)
	}
	// After re-reading the new head, the retry succeeds.
	_, v, _ := lh.Read("t")
	if _, err := lh.Append("t", v, rows); err != nil {
		t.Errorf("retry after re-read: %v", err)
	}
}

func TestSchemaEnforcement(t *testing.T) {
	lh := newLH(t)
	_ = lh.Create(mustCSV(t, "t", "a,b\n1,2\n"))
	bad := mustCSV(t, "t", "a,c\n3,4\n")
	if _, err := lh.Append("t", 1, bad); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("schema mismatch = %v", err)
	}
}

func TestTimeTravel(t *testing.T) {
	lh := newLH(t)
	_ = lh.Create(mustCSV(t, "t", "a\n1\n"))
	v := 1
	for i := 2; i <= 4; i++ {
		var err error
		v, err = lh.Append("t", v, mustCSV(t, "t", fmt.Sprintf("a\n%d\n", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	for version := 1; version <= 4; version++ {
		got, err := lh.ReadAt("t", version)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != version {
			t.Errorf("v%d rows = %d, want %d", version, got.NumRows(), version)
		}
	}
	if _, err := lh.ReadAt("t", 99); !errors.Is(err, ErrNoVersion) {
		t.Errorf("future version = %v", err)
	}
	if _, err := lh.ReadAt("t", 0); !errors.Is(err, ErrNoVersion) {
		t.Errorf("version 0 = %v", err)
	}
}

func TestDeleteCopyOnWrite(t *testing.T) {
	lh := newLH(t)
	_ = lh.Create(mustCSV(t, "t", "id,city\n1,berlin\n2,paris\n3,berlin\n"))
	v, err := lh.Delete("t", 1, func(row map[string]string) bool { return row["city"] == "berlin" })
	if err != nil || v != 2 {
		t.Fatalf("Delete = v%d, %v", v, err)
	}
	got, _, _ := lh.Read("t")
	if got.NumRows() != 1 || got.Row(0)[1] != "paris" {
		t.Errorf("after delete:\n%s", table.ToCSV(got))
	}
	// Time travel still sees the deleted rows.
	old, err := lh.ReadAt("t", 1)
	if err != nil || old.NumRows() != 3 {
		t.Errorf("v1 rows = %d, %v", old.NumRows(), err)
	}
	// Stale delete conflicts.
	if _, err := lh.Delete("t", 1, func(map[string]string) bool { return true }); !errors.Is(err, ErrConflict) {
		t.Errorf("stale delete = %v", err)
	}
}

func TestDataSkipping(t *testing.T) {
	lh := newLH(t)
	_ = lh.Create(mustCSV(t, "m", "v\n1\n2\n3\n"))
	v := 1
	// Files with disjoint ranges: [1-3], [100-102], [200-202].
	for _, base := range []int{100, 200} {
		csv := fmt.Sprintf("v\n%d\n%d\n%d\n", base, base+1, base+2)
		var err error
		v, err = lh.Append("m", v, mustCSV(t, "m", csv))
		if err != nil {
			t.Fatal(err)
		}
	}
	got, skipped, err := lh.ScanWhere("m", "v", 100, 110)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("matched rows = %d, want 3\n%s", got.NumRows(), table.ToCSV(got))
	}
	if skipped != 2 {
		t.Errorf("skipped files = %d, want 2 (the [1-3] and [200-202] files)", skipped)
	}
	if _, _, err := lh.ScanWhere("m", "ghost", 0, 1); err == nil {
		t.Error("unknown column should error")
	}
}

func TestDataSkippingUnsoundColumnNotSkipped(t *testing.T) {
	lh := newLH(t)
	// Mixed column: numeric stats must be disabled, so no skipping.
	_ = lh.Create(mustCSV(t, "m", "v\n1\nabc\n3\n"))
	_, skipped, err := lh.ScanWhere("m", "v", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("mixed column skipped %d files; stats are unsound", skipped)
	}
}

func TestHistory(t *testing.T) {
	lh := newLH(t)
	_ = lh.Create(mustCSV(t, "t", "a\n1\n"))
	_, _ = lh.Append("t", 1, mustCSV(t, "t", "a\n2\n"))
	_, _ = lh.Delete("t", 2, func(row map[string]string) bool { return row["a"] == "1" })
	hist, err := lh.History("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history = %+v", hist)
	}
	ops := []string{hist[0].Operation, hist[1].Operation, hist[2].Operation}
	if ops[0] != "CREATE" || ops[1] != "APPEND" || ops[2] != "DELETE" {
		t.Errorf("ops = %v", ops)
	}
}

func TestRecoverAfterReopen(t *testing.T) {
	dir := t.TempDir()
	lh1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = lh1.Create(mustCSV(t, "t", "a\n1\n"))
	if _, err := lh1.Append("t", 1, mustCSV(t, "t", "a\n2\n")); err != nil {
		t.Fatal(err)
	}
	lh2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := lh2.Version("t")
	if err != nil || v != 2 {
		t.Fatalf("recovered version = %d, %v", v, err)
	}
	got, _, err := lh2.Read("t")
	if err != nil || got.NumRows() != 2 {
		t.Errorf("recovered rows = %d, %v", got.NumRows(), err)
	}
	if names := lh2.Tables(); len(names) != 1 || names[0] != "t" {
		t.Errorf("Tables = %v", names)
	}
}

// Property: after N appends of one row each, version = N+1 and every
// historical version v holds exactly v rows; ScanWhere over the full
// range returns every numeric row.
func TestVersioningProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) > 10 {
			vals = vals[:10]
		}
		lh, err := Open(t.TempDir())
		if err != nil {
			return false
		}
		first, _ := table.ParseCSV("p", "v\n0\n")
		if err := lh.Create(first); err != nil {
			return false
		}
		v := 1
		for _, x := range vals {
			rows, _ := table.ParseCSV("p", fmt.Sprintf("v\n%d\n", x))
			v, err = lh.Append("p", v, rows)
			if err != nil {
				return false
			}
		}
		if v != len(vals)+1 {
			return false
		}
		for ver := 1; ver <= v; ver++ {
			got, err := lh.ReadAt("p", ver)
			if err != nil || got.NumRows() != ver {
				return false
			}
		}
		all, skipped, err := lh.ScanWhere("p", "v", 0, 255)
		return err == nil && skipped == 0 && all.NumRows() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Concurrent writers race on the same base version: exactly one commit
// per version wins, nothing is lost, and retries eventually land every
// append.
func TestConcurrentWritersRetry(t *testing.T) {
	lh := newLH(t)
	if err := lh.Create(mustCSV(t, "t", "a\nseed\n")); err != nil {
		t.Fatal(err)
	}
	const writers = 6
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			rows, _ := table.ParseCSV("t", fmt.Sprintf("a\nw%d\n", w))
			for attempt := 0; attempt < 50; attempt++ {
				_, v, err := lh.Read("t")
				if err != nil {
					done <- err
					return
				}
				if _, err := lh.Append("t", v, rows); err == nil {
					done <- nil
					return
				} else if !errors.Is(err, ErrConflict) {
					done <- err
					return
				}
			}
			done <- errors.New("starved")
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, v, err := lh.Read("t")
	if err != nil {
		t.Fatal(err)
	}
	if v != writers+1 {
		t.Errorf("head = v%d, want v%d", v, writers+1)
	}
	if got.NumRows() != writers+1 {
		t.Errorf("rows = %d, want %d", got.NumRows(), writers+1)
	}
}

func TestVacuumReclaimsAndTruncatesHistory(t *testing.T) {
	lh := newLH(t)
	_ = lh.Create(mustCSV(t, "t", "id,v\n1,10\n2,20\n3,30\n"))
	// Delete rewrites the file: the v1 file becomes orphaned once v1 is
	// outside the retention window.
	v, err := lh.Delete("t", 1, func(row map[string]string) bool { return row["id"] == "2" })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lh.ReadAt("t", 1); err != nil {
		t.Fatalf("pre-vacuum time travel: %v", err)
	}
	removed, err := lh.Vacuum("t", v)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("removed = %d, want 1 orphaned file", removed)
	}
	// Current reads unaffected.
	got, _, err := lh.Read("t")
	if err != nil || got.NumRows() != 2 {
		t.Fatalf("post-vacuum read = %d rows, %v", got.NumRows(), err)
	}
	// Time travel below the checkpoint is gone.
	if _, err := lh.ReadAt("t", 1); !errors.Is(err, ErrNoVersion) {
		t.Errorf("vacuumed version readable: %v", err)
	}
	// History starts at the checkpoint.
	hist, err := lh.History("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Version != v {
		t.Errorf("history = %+v", hist)
	}
	// Appends continue normally after vacuum.
	if _, err := lh.Append("t", v, mustCSV(t, "t", "id,v\n9,90\n")); err != nil {
		t.Errorf("append after vacuum: %v", err)
	}
	// Bad retention bounds.
	if _, err := lh.Vacuum("t", 0); !errors.Is(err, ErrNoVersion) {
		t.Errorf("vacuum v0 = %v", err)
	}
	if _, err := lh.Vacuum("ghost", 1); !errors.Is(err, ErrNoTable) {
		t.Errorf("vacuum ghost = %v", err)
	}
}

func TestVacuumSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	lh1, _ := Open(dir)
	_ = lh1.Create(mustCSV(t, "t", "a\n1\n"))
	v, _ := lh1.Append("t", 1, mustCSV(t, "t", "a\n2\n"))
	if _, err := lh1.Vacuum("t", v); err != nil {
		t.Fatal(err)
	}
	lh2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := lh2.Read("t")
	if err != nil || got.NumRows() != 2 {
		t.Fatalf("reopened read = %v rows, %v", got.NumRows(), err)
	}
	if _, err := lh2.ReadAt("t", 1); !errors.Is(err, ErrNoVersion) {
		t.Errorf("reopened vacuumed version readable: %v", err)
	}
}
