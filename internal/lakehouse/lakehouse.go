// Package lakehouse implements the survey's Sec. 8.3 future direction:
// the Lakehouse paradigm (Delta Lake / Hudi / Iceberg) layered over the
// lake's raw file storage — ACID table storage over immutable data
// files coordinated by a transaction log, in the manner of Delta Lake:
//
//   - every table is a directory of immutable data files plus an
//     ordered log of JSON commit records (add/remove file actions);
//   - writers commit with optimistic concurrency — a commit names the
//     log version it read, and conflicting concurrent commits are
//     rejected for retry;
//   - readers get snapshot isolation and time travel (read any past
//     version);
//   - per-file column statistics (min/max) recorded at commit time
//     drive data skipping, the indexing capability the survey lists as
//     a Lakehouse ingredient ("transaction management, indexing,
//     caching, and metadata management").
package lakehouse

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"golake/internal/storage/filestore"
	"golake/internal/table"
)

// Errors returned by lakehouse tables.
var (
	// ErrConflict signals a concurrent commit at the same version;
	// callers re-read and retry (optimistic concurrency control).
	ErrConflict = errors.New("lakehouse: concurrent commit conflict")
	// ErrNoTable is returned for unknown tables.
	ErrNoTable = errors.New("lakehouse: no such table")
	// ErrNoVersion is returned by time travel past the log.
	ErrNoVersion = errors.New("lakehouse: no such version")
	// ErrSchemaMismatch is returned when appended data does not match
	// the table schema (schema enforcement).
	ErrSchemaMismatch = errors.New("lakehouse: schema mismatch")
)

// ColumnStats are the per-file statistics recorded in the log and used
// for data skipping.
type ColumnStats struct {
	Min string `json:"min"`
	Max string `json:"max"`
	// NumericMin/Max are set when the column parsed numerically.
	NumericMin float64 `json:"nmin"`
	NumericMax float64 `json:"nmax"`
	Numeric    bool    `json:"numeric"`
}

// fileAction is one log entry action.
type fileAction struct {
	// Add names a data file joining the table, with stats.
	Add   string                 `json:"add,omitempty"`
	Stats map[string]ColumnStats `json:"stats,omitempty"`
	Rows  int                    `json:"rows,omitempty"`
	// Remove names a data file leaving the table.
	Remove string `json:"remove,omitempty"`
}

// commit is one atomic log record.
type commit struct {
	Version int          `json:"version"`
	Actions []fileAction `json:"actions"`
	// Schema pins the column names (enforced on append).
	Schema []string `json:"schema,omitempty"`
	// Operation describes the commit for the history view.
	Operation string `json:"operation"`
}

// Lakehouse manages versioned tables over a file store.
type Lakehouse struct {
	fs *filestore.Store

	mu sync.Mutex
	// heads caches the latest version per table.
	heads map[string]int
	// checkpoints holds the earliest replayable version per table
	// (raised above 1 by Vacuum).
	checkpoints map[string]int
}

// Open creates a lakehouse over a directory.
func Open(dir string) (*Lakehouse, error) {
	fs, err := filestore.Open(dir)
	if err != nil {
		return nil, err
	}
	lh := &Lakehouse{fs: fs, heads: map[string]int{}, checkpoints: map[string]int{}}
	// Recover heads and checkpoints (lowest surviving log version)
	// from existing logs.
	for _, info := range fs.List("") {
		parts := strings.Split(info.Path, "/")
		if len(parts) == 3 && parts[1] == "_log" {
			var v int
			if _, err := fmt.Sscanf(parts[2], "%08d.json", &v); err == nil {
				name := parts[0]
				if v > lh.heads[name] {
					lh.heads[name] = v
				}
				if cp, ok := lh.checkpoints[name]; !ok || v < cp {
					lh.checkpoints[name] = v
				}
			}
		}
	}
	return lh, nil
}

// Create creates a table at version 1 with the given initial data.
func (lh *Lakehouse) Create(t *table.Table) error {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	if _, ok := lh.heads[t.Name]; ok {
		return fmt.Errorf("lakehouse: table %s exists", t.Name)
	}
	lh.checkpoints[t.Name] = 1
	c := commit{Version: 1, Schema: t.ColumnNames(), Operation: "CREATE"}
	if t.NumRows() > 0 {
		action, err := lh.writeDataFile(t.Name, 1, t)
		if err != nil {
			return err
		}
		c.Actions = append(c.Actions, action)
	}
	if err := lh.writeCommit(t.Name, c); err != nil {
		return err
	}
	lh.heads[t.Name] = 1
	return nil
}

// Version returns the current (latest) version of a table.
func (lh *Lakehouse) Version(name string) (int, error) {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	v, ok := lh.heads[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return v, nil
}

// Tables lists table names, sorted.
func (lh *Lakehouse) Tables() []string {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	out := make([]string, 0, len(lh.heads))
	for n := range lh.heads {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Append commits new rows on top of readVersion. If another writer
// committed since readVersion, ErrConflict is returned and the caller
// should re-read and retry — Delta Lake's optimistic protocol.
func (lh *Lakehouse) Append(name string, readVersion int, rows *table.Table) (int, error) {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	head, ok := lh.heads[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	if head != readVersion {
		return 0, fmt.Errorf("%w: read v%d, head is v%d", ErrConflict, readVersion, head)
	}
	schema, err := lh.schemaAt(name, head)
	if err != nil {
		return 0, err
	}
	if !sameSchema(schema, rows.ColumnNames()) {
		return 0, fmt.Errorf("%w: table %v vs append %v", ErrSchemaMismatch, schema, rows.ColumnNames())
	}
	next := head + 1
	action, err := lh.writeDataFile(name, next, rows)
	if err != nil {
		return 0, err
	}
	c := commit{Version: next, Actions: []fileAction{action}, Operation: "APPEND"}
	if err := lh.writeCommit(name, c); err != nil {
		return 0, err
	}
	lh.heads[name] = next
	return next, nil
}

// Delete commits a logical delete: rows matching pred are removed by
// rewriting the files that contain them (copy-on-write, as Delta does).
func (lh *Lakehouse) Delete(name string, readVersion int, pred func(row map[string]string) bool) (int, error) {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	head, ok := lh.heads[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	if head != readVersion {
		return 0, fmt.Errorf("%w: read v%d, head is v%d", ErrConflict, readVersion, head)
	}
	files, schema, err := lh.filesAt(name, head)
	if err != nil {
		return 0, err
	}
	next := head + 1
	var actions []fileAction
	for _, f := range files {
		t, err := lh.readDataFile(f.Add)
		if err != nil {
			return 0, err
		}
		names := t.ColumnNames()
		kept := t.Filter(func(row []string) bool {
			m := make(map[string]string, len(names))
			for i, n := range names {
				m[n] = row[i]
			}
			return !pred(m)
		})
		if kept.NumRows() == t.NumRows() {
			continue // file untouched
		}
		actions = append(actions, fileAction{Remove: f.Add})
		if kept.NumRows() > 0 {
			kept.Name = name
			a, err := lh.writeDataFile(name, next, kept)
			if err != nil {
				return 0, err
			}
			actions = append(actions, a)
		}
	}
	_ = schema
	c := commit{Version: next, Actions: actions, Operation: "DELETE"}
	if err := lh.writeCommit(name, c); err != nil {
		return 0, err
	}
	lh.heads[name] = next
	return next, nil
}

// Read returns the table contents at its latest version plus that
// version number (snapshot isolation: concurrent commits do not affect
// the returned data).
func (lh *Lakehouse) Read(name string) (*table.Table, int, error) {
	v, err := lh.Version(name)
	if err != nil {
		return nil, 0, err
	}
	t, err := lh.ReadAt(name, v)
	return t, v, err
}

// ReadAt time-travels: it materializes the table as of the given
// version.
func (lh *Lakehouse) ReadAt(name string, version int) (*table.Table, error) {
	lh.mu.Lock()
	files, schema, err := lh.filesAt(name, version)
	lh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := table.New(name)
	for _, col := range schema {
		out.Columns = append(out.Columns, &table.Column{Name: col})
	}
	for _, f := range files {
		t, err := lh.readDataFile(f.Add)
		if err != nil {
			return nil, err
		}
		for i := 0; i < t.NumRows(); i++ {
			if err := out.AppendRow(t.Row(i)); err != nil {
				return nil, err
			}
		}
	}
	out.InferTypes()
	return out, nil
}

// ScanWhere reads the table at head, skipping every data file whose
// recorded column statistics prove it cannot contain matching rows —
// the Lakehouse data-skipping index. Returns the matching rows and how
// many files were skipped (for observability and benches).
func (lh *Lakehouse) ScanWhere(name, column string, min, max float64) (*table.Table, int, error) {
	lh.mu.Lock()
	head, ok := lh.heads[name]
	if !ok {
		lh.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	files, schema, err := lh.filesAt(name, head)
	lh.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	out := table.New(name)
	for _, col := range schema {
		out.Columns = append(out.Columns, &table.Column{Name: col})
	}
	skipped := 0
	colIdx := -1
	for i, c := range schema {
		if c == column {
			colIdx = i
		}
	}
	if colIdx < 0 {
		return nil, 0, fmt.Errorf("lakehouse: column %q not in schema %v", column, schema)
	}
	for _, f := range files {
		if st, ok := f.Stats[column]; ok && st.Numeric {
			if st.NumericMax < min || st.NumericMin > max {
				skipped++
				continue
			}
		}
		t, err := lh.readDataFile(f.Add)
		if err != nil {
			return nil, 0, err
		}
		c, err := t.Column(column)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < t.NumRows(); i++ {
			if v, ok := parseF(c.Cells[i]); ok && v >= min && v <= max {
				if err := out.AppendRow(t.Row(i)); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	out.InferTypes()
	return out, skipped, nil
}

// Vacuum permanently deletes data files no longer referenced by any
// version >= keepFrom, and truncates time travel below that version —
// Delta Lake's VACUUM retention trade-off: reclaimed storage versus
// lost history. Returns the number of files removed.
func (lh *Lakehouse) Vacuum(name string, keepFrom int) (int, error) {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	head, ok := lh.heads[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	if keepFrom < 1 || keepFrom > head {
		return 0, fmt.Errorf("%w: %s v%d (head v%d)", ErrNoVersion, name, keepFrom, head)
	}
	// Files referenced by any retained version stay.
	retained := map[string]bool{}
	for v := keepFrom; v <= head; v++ {
		files, _, err := lh.filesAt(name, v)
		if err != nil {
			return 0, err
		}
		for _, f := range files {
			retained[f.Add] = true
		}
	}
	removed := 0
	for _, info := range lh.fs.List(name + "/data/") {
		if retained[info.Path] {
			continue
		}
		if err := lh.fs.Delete(info.Path); err != nil {
			return removed, err
		}
		removed++
	}
	// Rewrite commit keepFrom as a checkpoint holding the full retained
	// state, then drop older log entries, so ReadAt(v < keepFrom) is
	// gone but everything from keepFrom on replays as before.
	files, schema, err := lh.filesAt(name, keepFrom)
	if err != nil {
		return removed, err
	}
	cp := commit{Version: keepFrom, Actions: files, Schema: schema, Operation: "VACUUM-CHECKPOINT"}
	if err := lh.writeCommit(name, cp); err != nil {
		return removed, err
	}
	for v := 1; v < keepFrom; v++ {
		_ = lh.fs.Delete(fmt.Sprintf("%s/_log/%08d.json", name, v))
	}
	lh.checkpoints[name] = keepFrom
	return removed, nil
}

// HistoryEntry is one commit in a table's history.
type HistoryEntry struct {
	Version   int
	Operation string
	Files     int
	Rows      int
}

// History lists the commits of a table, oldest first.
func (lh *Lakehouse) History(name string) ([]HistoryEntry, error) {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	head, ok := lh.heads[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	from := lh.checkpoints[name]
	if from < 1 {
		from = 1
	}
	var out []HistoryEntry
	for v := from; v <= head; v++ {
		c, err := lh.readCommit(name, v)
		if err != nil {
			return nil, err
		}
		e := HistoryEntry{Version: v, Operation: c.Operation}
		for _, a := range c.Actions {
			if a.Add != "" {
				e.Files++
				e.Rows += a.Rows
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// --- log and file plumbing ---

func (lh *Lakehouse) writeCommit(name string, c commit) error {
	raw, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("lakehouse: encode commit: %w", err)
	}
	_, err = lh.fs.Put(fmt.Sprintf("%s/_log/%08d.json", name, c.Version), raw)
	return err
}

func (lh *Lakehouse) readCommit(name string, version int) (commit, error) {
	raw, err := lh.fs.Get(fmt.Sprintf("%s/_log/%08d.json", name, version))
	if err != nil {
		return commit{}, fmt.Errorf("%w: %s v%d", ErrNoVersion, name, version)
	}
	var c commit
	if err := json.Unmarshal(raw, &c); err != nil {
		return commit{}, fmt.Errorf("lakehouse: decode commit: %w", err)
	}
	return c, nil
}

// filesAt replays the log up to version and returns live add actions
// and the schema.
func (lh *Lakehouse) filesAt(name string, version int) ([]fileAction, []string, error) {
	head, ok := lh.heads[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	from := lh.checkpoints[name]
	if from < 1 {
		from = 1
	}
	if version < from || version > head {
		return nil, nil, fmt.Errorf("%w: %s v%d (replayable v%d..v%d)", ErrNoVersion, name, version, from, head)
	}
	live := map[string]fileAction{}
	var schema []string
	var order []string
	for v := from; v <= version; v++ {
		c, err := lh.readCommit(name, v)
		if err != nil {
			return nil, nil, err
		}
		if len(c.Schema) > 0 {
			schema = c.Schema
		}
		for _, a := range c.Actions {
			if a.Add != "" {
				live[a.Add] = a
				order = append(order, a.Add)
			}
			if a.Remove != "" {
				delete(live, a.Remove)
			}
		}
	}
	var out []fileAction
	for _, path := range order {
		if a, ok := live[path]; ok {
			out = append(out, a)
			delete(live, path)
		}
	}
	return out, schema, nil
}

func (lh *Lakehouse) schemaAt(name string, version int) ([]string, error) {
	_, schema, err := lh.filesAt(name, version)
	return schema, err
}

// writeDataFile stores rows as an immutable CSV data file and returns
// its add action with column statistics.
func (lh *Lakehouse) writeDataFile(name string, version int, t *table.Table) (fileAction, error) {
	path := fmt.Sprintf("%s/data/v%08d-%d.csv", name, version, len(lh.fs.List(name+"/data/")))
	if _, err := lh.fs.Put(path, []byte(table.ToCSV(t))); err != nil {
		return fileAction{}, err
	}
	stats := map[string]ColumnStats{}
	for _, c := range t.Columns {
		st := ColumnStats{}
		first := true
		numFirst := true
		allNumeric := true
		for _, v := range c.Cells {
			if v == "" {
				continue
			}
			if first || v < st.Min {
				st.Min = v
			}
			if first || v > st.Max {
				st.Max = v
			}
			first = false
			f, ok := parseF(v)
			if !ok {
				allNumeric = false
				continue
			}
			if numFirst || f < st.NumericMin {
				st.NumericMin = f
			}
			if numFirst || f > st.NumericMax {
				st.NumericMax = f
			}
			numFirst = false
		}
		// Numeric skipping bounds are sound only when every non-null
		// value parsed; otherwise a non-numeric cell could be missed.
		st.Numeric = allNumeric && !numFirst
		stats[c.Name] = st
	}
	return fileAction{Add: path, Stats: stats, Rows: t.NumRows()}, nil
}

func (lh *Lakehouse) readDataFile(path string) (*table.Table, error) {
	raw, err := lh.fs.Get(path)
	if err != nil {
		return nil, err
	}
	return table.ParseCSV(path, string(raw))
}

func sameSchema(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseF(s string) (float64, bool) {
	var f float64
	_, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &f)
	return f, err == nil
}
