package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Local is the directory-on-disk Backend: the WAL is one append-only
// file (wal.log), the snapshot a single blob replaced atomically via
// write-to-temp + rename. Point it at a directory of its own — by
// convention `<lakedir>/.golake`, which the lake's filestore skips when
// re-walking its root — and a hard-stopped process recovers everything
// up to the torn tail of its last append.
type Local struct {
	dir  string
	sync Sync

	mu      sync.Mutex
	wal     *os.File
	walSize int64
	closed  bool
}

// LocalOption configures a Local backend.
type LocalOption func(*Local)

// WithSync sets the fsync policy for WAL appends (default SyncNone).
func WithSync(s Sync) LocalOption {
	return func(l *Local) { l.sync = s }
}

const (
	walFile      = "wal.log"
	snapshotFile = "snapshot"
)

// NewLocal opens (creating if needed) a local backend rooted at dir.
func NewLocal(dir string, opts ...LocalOption) (*Local, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	l := &Local{dir: dir}
	for _, opt := range opts {
		opt(l)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("persist: stat wal: %w", err)
	}
	l.wal = f
	l.walSize = st.Size()
	return l, nil
}

// Name implements Backend.
func (l *Local) Name() string { return "local" }

// Dir returns the backing directory.
func (l *Local) Dir() string { return l.dir }

// ReadSnapshot implements Backend.
func (l *Local) ReadSnapshot() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}
	return data, nil
}

// ReadWAL implements Backend.
func (l *Local) ReadWAL() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, walFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: read wal: %w", err)
	}
	return data, nil
}

// AppendWAL implements Backend.
func (l *Local) AppendWAL(frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.wal.Write(frame); err != nil {
		return fmt.Errorf("persist: append wal: %w", err)
	}
	l.walSize += int64(len(frame))
	if l.sync == SyncAlways {
		if err := l.wal.Sync(); err != nil {
			return fmt.Errorf("persist: sync wal: %w", err)
		}
	}
	return nil
}

// Checkpoint implements Backend: the new snapshot is written to a temp
// file, fsynced, renamed over the old one (atomic on POSIX), the
// directory entry synced, and only then is the WAL truncated. A crash
// between rename and truncate leaves WAL records already contained in
// the snapshot; replay treats the resulting conflicts as idempotent
// duplicates, so the order errs on the durable side.
func (l *Local) Checkpoint(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	final := filepath.Join(l.dir, snapshotFile)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	if _, err := f.Write(snapshot); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("persist: checkpoint rename: %w", err)
	}
	syncDir(l.dir)
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("persist: truncate wal: %w", err)
	}
	l.walSize = 0
	if l.sync == SyncAlways {
		if err := l.wal.Sync(); err != nil {
			return fmt.Errorf("persist: sync wal: %w", err)
		}
	}
	return nil
}

// WALSize implements Backend.
func (l *Local) WALSize() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.walSize, nil
}

// SnapshotSize implements Backend.
func (l *Local) SnapshotSize() (int64, error) {
	st, err := os.Stat(filepath.Join(l.dir, snapshotFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("persist: stat snapshot: %w", err)
	}
	return st.Size(), nil
}

// Close implements Backend.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.wal.Close()
}

// syncDir best-effort fsyncs a directory so the rename of a checkpoint
// is itself durable; filesystems that reject directory fsync (some
// network mounts) degrade to the OS's own flush.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
