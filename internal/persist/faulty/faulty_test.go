package faulty

import (
	"errors"
	"testing"
	"time"

	"golake/internal/persist"
)

func TestPassthroughWhenUnprogrammed(t *testing.T) {
	b := New(persist.NewMemory())
	if err := b.AppendWAL([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	wal, err := b.ReadWAL()
	if err != nil || string(wal) != "0123456789" {
		t.Fatalf("wal = %q, %v", wal, err)
	}
	if err := b.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	snap, err := b.ReadSnapshot()
	if err != nil || string(snap) != "snap" {
		t.Fatalf("snapshot = %q, %v", snap, err)
	}
	if sz, _ := b.WALSize(); sz != 0 {
		t.Errorf("wal size after checkpoint = %d", sz)
	}
	if b.Name() != "faulty(memory)" {
		t.Errorf("name = %q", b.Name())
	}
	if b.Injected() != 0 {
		t.Errorf("injected = %d, want 0", b.Injected())
	}
}

func TestFailEveryNthAppend(t *testing.T) {
	b := New(persist.NewMemory())
	b.FailEveryNthAppend(2)
	var fails int
	for i := 0; i < 6; i++ {
		if err := b.AppendWAL([]byte("xy")); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("append %d = %v, want ErrInjected", i, err)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("failed appends = %d, want every 2nd of 6 = 3", fails)
	}
	if b.Appends() != 6 || b.Injected() != 3 {
		t.Errorf("appends/injected = %d/%d", b.Appends(), b.Injected())
	}
	// Only the successful appends reached the inner backend.
	if wal, _ := b.ReadWAL(); len(wal) != 6 {
		t.Errorf("inner wal = %d bytes, want 6", len(wal))
	}
}

func TestFailNextAppendsThenRecover(t *testing.T) {
	b := New(persist.NewMemory())
	b.FailNextAppends(2)
	for i := 0; i < 2; i++ {
		if err := b.AppendWAL([]byte("a")); !errors.Is(err, ErrInjected) {
			t.Fatalf("append %d = %v, want injected", i, err)
		}
	}
	if err := b.AppendWAL([]byte("a")); err != nil {
		t.Fatalf("append after fault budget spent: %v", err)
	}
}

func TestTornWriteLeavesHalfFrame(t *testing.T) {
	b := New(persist.NewMemory())
	b.TornWriteNextAppend()
	frame := []byte("0123456789")
	if err := b.AppendWAL(frame); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append = %v, want injected", err)
	}
	wal, _ := b.ReadWAL()
	if string(wal) != "01234" {
		t.Fatalf("inner wal = %q, want torn first half", wal)
	}
	// One-shot: the next append goes through whole.
	if err := b.AppendWAL(frame); err != nil {
		t.Fatal(err)
	}
	if wal, _ := b.ReadWAL(); len(wal) != 15 {
		t.Errorf("wal = %d bytes, want 15", len(wal))
	}
}

func TestFailCheckpointsAndHeal(t *testing.T) {
	b := New(persist.NewMemory())
	b.FailCheckpoints(true)
	if err := b.Checkpoint([]byte("s")); !errors.Is(err, ErrInjected) {
		t.Fatalf("checkpoint = %v, want injected", err)
	}
	b.Heal()
	if err := b.Checkpoint([]byte("s")); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if err := b.AppendWAL([]byte("a")); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
}

func TestSlowIODelays(t *testing.T) {
	b := New(persist.NewMemory())
	b.SlowIO(20 * time.Millisecond)
	start := time.Now()
	if err := b.AppendWAL([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("append took %v, want >= 20ms of injected latency", d)
	}
	b.Heal()
	start = time.Now()
	_ = b.AppendWAL([]byte("a"))
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("append after heal took %v", d)
	}
}
