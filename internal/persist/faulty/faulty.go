// Package faulty is the persistence half of the chaos harness: a
// persist.Backend decorator that injects storage failures on demand —
// fail every Nth append, fail the next N appends, tear one write in
// half (a crash mid-append), slow every call down, or fail
// checkpoints — so tests can drive the lake's durability layer through
// the failure modes the recovery machinery claims to survive and
// assert the claims hold: shed or failed queries never corrupt state,
// transient WAL failures are retried with backoff, a torn tail is
// dropped on replay instead of failing the open, and a healed backend
// re-admits traffic.
//
// The wrapper is safe for concurrent use and deterministic: fault
// programming happens through explicit calls (no randomness), so a
// chaos test can say exactly which append fails and assert exactly
// what survives.
package faulty

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"golake/internal/persist"
)

// ErrInjected is the failure every programmed fault returns (wrapped
// with the fault kind), so tests can errors.Is for "this was the
// harness, not a real bug".
var ErrInjected = errors.New("faulty: injected fault")

// Backend decorates an inner persist.Backend with programmable faults.
// The zero state injects nothing: every call passes straight through.
type Backend struct {
	inner persist.Backend

	mu sync.Mutex
	// failEveryNth fails appends number n, 2n, 3n, ... (1-based count
	// over the wrapper's lifetime); 0 disables.
	failEveryNth int
	// failNext fails the next failNext appends unconditionally.
	failNext int
	// tornNext makes the next append write only the first half of the
	// frame to the inner backend and then report failure — the on-disk
	// image of a crash mid-append.
	tornNext bool
	// failCheckpoints fails every Checkpoint call.
	failCheckpoints bool
	// slow is added as a sleep before every inner call; 0 disables.
	slow time.Duration

	appends  int
	injected int
}

// New wraps inner with a fault harness that initially injects nothing.
func New(inner persist.Backend) *Backend {
	return &Backend{inner: inner}
}

// FailEveryNthAppend programs appends n, 2n, 3n, ... (counted from the
// wrapper's creation) to fail without reaching the inner backend.
// n <= 0 disables.
func (b *Backend) FailEveryNthAppend(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failEveryNth = n
}

// FailNextAppends programs the next n appends to fail unconditionally.
func (b *Backend) FailNextAppends(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failNext = n
}

// TornWriteNextAppend programs the next append to write half the frame
// and then fail — simulating a crash mid-append. Recovery must drop
// the torn tail, not fail the open.
func (b *Backend) TornWriteNextAppend() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tornNext = true
}

// FailCheckpoints toggles failure of every Checkpoint call.
func (b *Backend) FailCheckpoints(fail bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failCheckpoints = fail
}

// SlowIO adds d of latency before every inner call; 0 restores full
// speed.
func (b *Backend) SlowIO(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.slow = d
}

// Heal clears every programmed fault: the backend behaves like its
// inner backend again. Injected-fault and append counters keep their
// values.
func (b *Backend) Heal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failEveryNth = 0
	b.failNext = 0
	b.tornNext = false
	b.failCheckpoints = false
	b.slow = 0
}

// Injected reports how many faults the harness has fired.
func (b *Backend) Injected() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.injected
}

// Appends reports how many AppendWAL calls the wrapper has seen
// (including ones it failed).
func (b *Backend) Appends() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.appends
}

// dally sleeps the programmed SlowIO latency (outside b.mu).
func (b *Backend) dally() {
	b.mu.Lock()
	d := b.slow
	b.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (b *Backend) Name() string { return "faulty(" + b.inner.Name() + ")" }

func (b *Backend) ReadSnapshot() ([]byte, error) {
	b.dally()
	return b.inner.ReadSnapshot()
}

func (b *Backend) ReadWAL() ([]byte, error) {
	b.dally()
	return b.inner.ReadWAL()
}

// AppendWAL consults the programmed faults in priority order — torn
// write, fail-next, fail-every-Nth — and otherwise delegates.
func (b *Backend) AppendWAL(frame []byte) error {
	b.dally()
	b.mu.Lock()
	b.appends++
	switch {
	case b.tornNext:
		b.tornNext = false
		b.injected++
		b.mu.Unlock()
		// Write the torn prefix through, then report the crash.
		_ = b.inner.AppendWAL(frame[:len(frame)/2])
		return errInjectedf("torn write after %d bytes", len(frame)/2)
	case b.failNext > 0:
		b.failNext--
		b.injected++
		b.mu.Unlock()
		return errInjectedf("append failed (fail-next)")
	case b.failEveryNth > 0 && b.appends%b.failEveryNth == 0:
		b.injected++
		b.mu.Unlock()
		return errInjectedf("append %d failed (every %d)", b.appends, b.failEveryNth)
	}
	b.mu.Unlock()
	return b.inner.AppendWAL(frame)
}

func (b *Backend) Checkpoint(snapshot []byte) error {
	b.dally()
	b.mu.Lock()
	if b.failCheckpoints {
		b.injected++
		b.mu.Unlock()
		return errInjectedf("checkpoint failed")
	}
	b.mu.Unlock()
	return b.inner.Checkpoint(snapshot)
}

func (b *Backend) WALSize() (int64, error) {
	b.dally()
	return b.inner.WALSize()
}

func (b *Backend) SnapshotSize() (int64, error) {
	b.dally()
	return b.inner.SnapshotSize()
}

func (b *Backend) Close() error { return b.inner.Close() }

// errInjectedf wraps ErrInjected with the fault kind.
func errInjectedf(format string, args ...any) error {
	return &injectedError{msg: "faulty: " + fmt.Sprintf(format, args...)}
}

// injectedError carries the fault description and unwraps to
// ErrInjected.
type injectedError struct{ msg string }

func (e *injectedError) Error() string { return e.msg }
func (e *injectedError) Unwrap() error { return ErrInjected }
