package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"kind":"ingest"}`),
		[]byte(""),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var wal []byte
	for _, p := range payloads {
		wal = append(wal, EncodeFrame(p)...)
	}
	got, torn := DecodeFrames(wal)
	if torn != 0 {
		t.Fatalf("torn = %d on an intact log", torn)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestDecodeTornTailEveryByte is the kill-at-every-byte harness: a log
// of N records truncated at every byte boundary inside the tail record
// must recover exactly the N-1 intact records and report the dropped
// tail, never fail.
func TestDecodeTornTailEveryByte(t *testing.T) {
	var wal []byte
	var bounds []int // byte offset where each record's frame ends
	const n = 5
	for i := 0; i < n; i++ {
		wal = append(wal, EncodeFrame([]byte(fmt.Sprintf(`{"rec":%d,"pad":"0123456789"}`, i)))...)
		bounds = append(bounds, len(wal))
	}
	tailStart := bounds[n-2]
	for cut := tailStart; cut <= len(wal); cut++ {
		got, torn := DecodeFrames(wal[:cut])
		wantRecs, wantTorn := n-1, int64(cut-tailStart)
		if cut == len(wal) {
			wantRecs, wantTorn = n, 0
		}
		if len(got) != wantRecs || torn != wantTorn {
			t.Fatalf("cut %d: got %d records torn %d, want %d records torn %d",
				cut, len(got), torn, wantRecs, wantTorn)
		}
	}
}

func TestDecodeCorruptRecordStopsReplay(t *testing.T) {
	var wal []byte
	for i := 0; i < 3; i++ {
		wal = append(wal, EncodeFrame([]byte(fmt.Sprintf(`{"rec":%d}`, i)))...)
	}
	// Flip one payload byte of the middle record: checksum mismatch must
	// stop decoding there, keeping only the first record.
	first := len(EncodeFrame([]byte(`{"rec":0}`)))
	wal[first+frameHeaderLen+2] ^= 0xFF
	got, torn := DecodeFrames(wal)
	if len(got) != 1 {
		t.Fatalf("decoded %d records past corruption, want 1", len(got))
	}
	if torn != int64(len(wal)-first) {
		t.Fatalf("torn = %d, want %d", torn, len(wal)-first)
	}
}

// backends returns a fresh instance of every Backend implementation for
// the shared contract test.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	local, err := NewLocal(filepath.Join(t.TempDir(), "persist"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"memory": NewMemory(), "local": local}
}

func TestBackendContract(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if snap, err := b.ReadSnapshot(); err != nil || snap != nil {
				t.Fatalf("fresh snapshot = %v, %v", snap, err)
			}
			for i := 0; i < 3; i++ {
				if err := b.AppendWAL(EncodeFrame([]byte(fmt.Sprintf("r%d", i)))); err != nil {
					t.Fatal(err)
				}
			}
			wal, err := b.ReadWAL()
			if err != nil {
				t.Fatal(err)
			}
			recs, torn := DecodeFrames(wal)
			if len(recs) != 3 || torn != 0 {
				t.Fatalf("got %d records torn %d", len(recs), torn)
			}
			if sz, _ := b.WALSize(); sz != int64(len(wal)) {
				t.Fatalf("WALSize = %d, want %d", sz, len(wal))
			}
			if err := b.Checkpoint([]byte("snap-1")); err != nil {
				t.Fatal(err)
			}
			if sz, _ := b.WALSize(); sz != 0 {
				t.Fatalf("WALSize after checkpoint = %d", sz)
			}
			snap, err := b.ReadSnapshot()
			if err != nil || string(snap) != "snap-1" {
				t.Fatalf("snapshot = %q, %v", snap, err)
			}
			if sz, _ := b.SnapshotSize(); sz != int64(len("snap-1")) {
				t.Fatalf("SnapshotSize = %d", sz)
			}
			// Records appended after a checkpoint are the new log.
			if err := b.AppendWAL(EncodeFrame([]byte("post"))); err != nil {
				t.Fatal(err)
			}
			wal, _ = b.ReadWAL()
			recs, _ = DecodeFrames(wal)
			if len(recs) != 1 || string(recs[0]) != "post" {
				t.Fatalf("post-checkpoint wal = %q", recs)
			}
		})
	}
}

// TestLocalReopenRecovers reopens a Local directory with a fresh
// instance — the hard-stop path — and with fsync on.
func TestLocalReopenRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "persist")
	b, err := NewLocal(dir, WithSync(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendWAL(EncodeFrame([]byte("after"))); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a hard stop by just reopening the directory.
	b2, err := NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := b2.ReadSnapshot()
	if err != nil || string(snap) != "snap" {
		t.Fatalf("snapshot = %q, %v", snap, err)
	}
	wal, _ := b2.ReadWAL()
	recs, torn := DecodeFrames(wal)
	if len(recs) != 1 || string(recs[0]) != "after" || torn != 0 {
		t.Fatalf("recovered %d records torn %d", len(recs), torn)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b2.AppendWAL(EncodeFrame([]byte("x"))); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := b2.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

// TestLocalCheckpointLeavesNoTemp ensures the atomic-replace protocol
// cleans up after itself and replaces the snapshot in place.
func TestLocalCheckpointLeavesNoTemp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "persist")
	b, err := NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Checkpoint([]byte(fmt.Sprintf("snap-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp snapshot left behind: %v", err)
	}
	snap, _ := b.ReadSnapshot()
	if string(snap) != "snap-2" {
		t.Fatalf("snapshot = %q", snap)
	}
}
