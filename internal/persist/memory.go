package persist

import "sync"

// Memory is an in-process Backend for tests and benchmarks: the
// snapshot and WAL live in byte slices. Close keeps the contents
// readable, so one Memory instance can back successive lake
// generations — the crash-recovery tests hand the same instance to a
// second Open and assert the replayed lake matches.
type Memory struct {
	mu       sync.Mutex
	snapshot []byte
	wal      []byte
}

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// ReadSnapshot implements Backend.
func (m *Memory) ReadSnapshot() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snapshot == nil {
		return nil, nil
	}
	return append([]byte(nil), m.snapshot...), nil
}

// ReadWAL implements Backend.
func (m *Memory) ReadWAL() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return nil, nil
	}
	return append([]byte(nil), m.wal...), nil
}

// AppendWAL implements Backend.
func (m *Memory) AppendWAL(frame []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wal = append(m.wal, frame...)
	return nil
}

// Checkpoint implements Backend.
func (m *Memory) Checkpoint(snapshot []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot = append([]byte(nil), snapshot...)
	m.wal = nil
	return nil
}

// WALSize implements Backend.
func (m *Memory) WALSize() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.wal)), nil
}

// SnapshotSize implements Backend.
func (m *Memory) SnapshotSize() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.snapshot)), nil
}

// Close implements Backend; contents stay readable for a reopen.
func (m *Memory) Close() error { return nil }
