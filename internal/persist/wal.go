package persist

import (
	"encoding/binary"
	"hash/crc32"
)

// Each WAL record is framed as an 8-byte header — payload length then
// CRC32 (IEEE) of the payload, both little-endian — followed by the
// payload. The checksum is what makes recovery torn-write-tolerant: a
// crash mid-append leaves a frame whose length outruns the file or
// whose checksum disagrees, and DecodeFrames stops there instead of
// replaying garbage.
const frameHeaderLen = 8

// EncodeFrame wraps one record payload in the length+CRC32 frame.
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeaderLen:], payload)
	return out
}

// DecodeFrames parses a WAL byte stream back into record payloads. It
// stops at the first incomplete or corrupt frame — a torn tail from a
// crash mid-append — and reports how many trailing bytes it dropped;
// torn == 0 means the log ended exactly on a frame boundary. Decoding
// never fails: a damaged log yields its intact prefix.
func DecodeFrames(data []byte) (payloads [][]byte, torn int64) {
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return payloads, 0
		}
		if rest < frameHeaderLen {
			return payloads, int64(rest)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > rest-frameHeaderLen {
			return payloads, int64(rest)
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, int64(rest)
		}
		payloads = append(payloads, payload)
		off += frameHeaderLen + n
	}
}
