// Package persist is the lake's pluggable durability layer: a byte-level
// Backend contract (write-ahead log + snapshot slots) and the record
// framing the lake's logical WAL rides on. The split mirrors the two
// related systems this subsystem is modeled after — ranger keeps several
// catalog backends (sqlite/json/rest) behind one interface, icebox
// separates its catalog from interchangeable file stores
// (local/memory/minio) — so the two shipped backends (Memory for tests,
// Local for a directory on disk) can later be joined by sqlite or an
// object store without touching the replay logic in core.
//
// The package is deliberately ignorant of what the records mean: the
// lake serializes logical operations (ingest, derive, audit, evict,
// coverage) to JSON, frames them with a length + CRC32 header via
// EncodeFrame, and appends them through AppendWAL. Recovery reads the
// snapshot, then DecodeFrames over the WAL bytes — a torn or corrupt
// tail (a crash mid-append) is detected by the per-record checksum and
// dropped, never fatal.
package persist

import "errors"

// Sync selects the fsync discipline of a durable backend.
type Sync int

const (
	// SyncNone leaves flushing to the OS: an OS crash can lose the WAL
	// tail, but every completed append survives a process crash.
	SyncNone Sync = iota
	// SyncAlways fsyncs after every WAL append — the full-durability
	// setting; BENCH_6.json prices the difference.
	SyncAlways
)

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("persist: backend closed")

// Backend is one durable home for a lake's state: a single snapshot
// slot plus an append-only write-ahead log. Implementations must make
// Checkpoint atomic with respect to crashes — after a crash either the
// old snapshot or the new one is readable, never a torn mix — and
// AppendWAL durable to the degree their Sync policy promises.
//
// All methods must be safe for concurrent use; the lake serializes
// appends against checkpoints itself, but status probes (WALSize) race
// both.
type Backend interface {
	// Name identifies the backend kind ("memory", "local") for status
	// surfaces.
	Name() string
	// ReadSnapshot returns the current snapshot bytes, or (nil, nil)
	// when no snapshot has been checkpointed yet.
	ReadSnapshot() ([]byte, error)
	// ReadWAL returns the full WAL contents, or (nil, nil) when empty.
	ReadWAL() ([]byte, error)
	// AppendWAL appends one framed record to the log.
	AppendWAL(frame []byte) error
	// Checkpoint atomically installs a new snapshot and truncates the
	// WAL: records appended before the call are subsumed by the
	// snapshot, the log restarts empty.
	Checkpoint(snapshot []byte) error
	// WALSize reports the current WAL length in bytes.
	WALSize() (int64, error)
	// SnapshotSize reports the current snapshot length in bytes (0 when
	// none).
	SnapshotSize() (int64, error)
	// Close releases resources. A closed backend rejects writes;
	// backends meant for reuse across lake generations (Memory in
	// tests) may keep their contents readable.
	Close() error
}
