package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

type ctxKey int

const (
	requestIDKey ctxKey = iota
	loggerKey
)

// NewRequestID returns a fresh 16-hex-char request identifier. It is
// random, not sequential, so IDs from restarted or load-balanced
// servers never collide in aggregated logs.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; a fixed
		// fallback keeps the request serviceable rather than panicking
		// in middleware.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stamps the request ID onto the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx, or "" outside a
// request scope.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithLogger stamps a request-scoped logger onto the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the request-scoped logger from ctx, falling back to
// fallback, and to slog's disabled-by-default discard pattern (a
// handler that drops everything) when both are nil — callers can
// always log unconditionally.
func Logger(ctx context.Context, fallback *slog.Logger) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	if fallback != nil {
		return fallback
	}
	return discardLogger
}

// discardLogger drops every record; Logger returns it so call sites
// never need nil checks.
var discardLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
