package obs

import (
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden locks the exact exposition text for one family
// of each type: HELP/TYPE lines, label rendering, cumulative histogram
// buckets with _sum and _count, deterministic child order.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("golake_requests_total", "Requests served.", "route", "class")
	c.With("/v1/query", "2xx").Add(3)
	c.With("/v1/query", "5xx").Inc()
	g := r.Gauge("golake_in_flight", "Requests in flight.")
	g.Set(2)
	h := r.Histogram("golake_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP golake_requests_total Requests served.",
		"# TYPE golake_requests_total counter",
		`golake_requests_total{route="/v1/query",class="2xx"} 3`,
		`golake_requests_total{route="/v1/query",class="5xx"} 1`,
		"# HELP golake_in_flight Requests in flight.",
		"# TYPE golake_in_flight gauge",
		"golake_in_flight 2",
		"# HELP golake_latency_seconds Request latency.",
		"# TYPE golake_latency_seconds histogram",
		`golake_latency_seconds_bucket{le="0.1"} 1`,
		`golake_latency_seconds_bucket{le="1"} 2`,
		`golake_latency_seconds_bucket{le="+Inf"} 3`,
		"golake_latency_seconds_sum 5.55",
		"golake_latency_seconds_count 3",
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping covers the three escaped characters in label
// values and newline escaping in HELP text.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("golake_odd_total", "Line one\nline two.", "path").
		With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP golake_odd_total Line one\nline two.`) {
		t.Errorf("HELP newline not escaped:\n%s", out)
	}
	if !strings.Contains(out, `golake_odd_total{path="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestHistogramBuckets verifies boundary placement: a sample equal to
// a bound lands in that bound's bucket (le is inclusive).
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1: got %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=2: got %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("bucket +Inf: got %d, want 1", got)
	}
	if h.Count() != 3 || h.Sum() != 6 {
		t.Errorf("count/sum: got %d/%v, want 3/6", h.Count(), h.Sum())
	}
}

// TestIdempotentRegistration checks same-shape re-registration returns
// the same underlying metric and mismatched shapes panic.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("golake_x_total", "X.")
	b := r.Counter("golake_x_total", "X.")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on type mismatch")
		}
	}()
	r.Gauge("golake_x_total", "X.")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid metric name")
		}
	}()
	r.Counter("bad name", "nope")
}

// TestConcurrentUse hammers every metric type from many goroutines
// while scraping; run under -race this is the registry's thread-safety
// proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("golake_c_total", "C.", "k")
	g := r.Gauge("golake_g", "G.")
	hv := r.HistogramVec("golake_h_seconds", "H.", nil, "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%4))
			for j := 0; j < 1000; j++ {
				cv.With(key).Inc()
				g.Add(1)
				g.Dec()
				hv.With(key).Observe(float64(j) / 1000)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	var total float64
	for _, k := range []string{"a", "b", "c", "d"} {
		total += cv.With(k).Value()
	}
	if total != 8000 {
		t.Errorf("counter total: got %v, want 8000", total)
	}
	if g.Value() != 0 {
		t.Errorf("gauge: got %v, want 0", g.Value())
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Error("unexpected request ID on fresh context")
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Errorf("RequestID: got %q", got)
	}
	id1, id2 := NewRequestID(), NewRequestID()
	if len(id1) != 16 || id1 == id2 {
		t.Errorf("NewRequestID: got %q, %q", id1, id2)
	}
}

func TestLoggerContext(t *testing.T) {
	ctx := context.Background()
	if Logger(ctx, nil) == nil {
		t.Fatal("Logger returned nil")
	}
	// The discard logger must be safe to use.
	Logger(ctx, nil).Info("dropped")
	var sb strings.Builder
	real := slog.New(slog.NewTextHandler(&sb, nil))
	if Logger(ctx, real) != real {
		t.Error("fallback not returned")
	}
	ctx = WithLogger(ctx, real)
	if Logger(ctx, nil) != real {
		t.Error("ctx logger not returned")
	}
}
