// Package obs is golake's dependency-free observability kernel: a
// registry of counters, gauges, and histograms safe for concurrent use
// (atomic, -race-clean), exposable in the Prometheus text format, plus
// the request-scoped context plumbing (request IDs, loggers) the HTTP
// layer threads through every handler.
//
// The package deliberately mirrors the shape of the Prometheus client
// library — Counter/Gauge/Histogram with *Vec variants keyed by label
// values — without importing anything beyond the standard library, per
// the repo's no-dependency rule. Metric and label names are validated
// at registration and invalid names panic: a bad metric name is a
// programmer error, not a runtime condition.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets for latencies measured
// in seconds: 100µs up to 10s, roughly logarithmic. They bracket both
// the sub-millisecond in-memory query path and multi-second fsync or
// maintenance stalls.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// metricType is the TYPE line vocabulary.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families in registration order and renders
// them as one Prometheus text exposition. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric family: a HELP/TYPE header plus one child
// per distinct label-value combination. Unlabeled metrics are the
// degenerate family with a single child under the empty key.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // *Counter | *Gauge | *Histogram
}

// register returns the family for name, creating it on first use.
// Re-registering with the same shape is idempotent (the existing family
// is returned); re-registering with a different type, label set, or
// bucket layout panics — two call sites disagreeing about a metric's
// shape is a bug worth failing loudly on.
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: metric %s: histogram buckets must be sorted", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]any{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// child returns the metric for one label-value tuple, creating it on
// first use. values must match the family's label arity.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s: got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.typ {
	case typeCounter:
		c = &Counter{}
	case typeGauge:
		c = &Gauge{}
	case typeHistogram:
		c = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Counter registers (or fetches) an unlabeled monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil).child(nil).(*Counter)
}

// CounterVec registers a counter family keyed by label values.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers a gauge family keyed by label values.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled histogram. Nil buckets
// select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, buckets).child(nil).(*Histogram)
}

// HistogramVec registers a histogram family keyed by label values.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, buckets)}
}

// CounterVec fans a counter family out by label values.
type CounterVec struct{ f *family }

// With returns the counter for one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec fans a gauge family out by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec fans a histogram family out by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Counter is a monotonically increasing float64, stored as IEEE bits
// in an atomic word so Add is lock-free and -race-clean.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas panic (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decrease")
	}
	addFloatBits(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { addFloatBits(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets and tracks the
// running sum. Observe is lock-free: one atomic add on the matching
// bucket, one on the count, one CAS loop on the sum bits.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sumBits, v)
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// addFloatBits atomically adds delta to a float64 stored as bits.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE lines, then one
// sample line per child — counters and gauges as-is, histograms as
// cumulative _bucket series plus _sum and _count. Children are sorted
// by label values so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range families {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for i, c := range children {
		var values []string
		if keys[i] != "" || len(f.labels) > 0 {
			values = strings.Split(keys[i], "\x00")
		}
		switch m := c.(type) {
		case *Counter:
			writeSample(b, f.name, f.labels, values, "", "", m.Value())
		case *Gauge:
			writeSample(b, f.name, f.labels, values, "", "", m.Value())
		case *Histogram:
			cum := uint64(0)
			for j, bound := range m.bounds {
				cum += m.counts[j].Load()
				writeSample(b, f.name+"_bucket", f.labels, values, "le", formatLe(bound), float64(cum))
			}
			cum += m.counts[len(m.bounds)].Load()
			writeSample(b, f.name+"_bucket", f.labels, values, "le", "+Inf", float64(cum))
			writeSample(b, f.name+"_sum", f.labels, values, "", "", m.Sum())
			writeSample(b, f.name+"_count", f.labels, values, "", "", float64(m.Count()))
		}
	}
}

// writeSample renders one line: name{labels,extra="v"} value. extraName
// is the histogram "le" label, appended after the family labels.
func writeSample(b *strings.Builder, name string, labels, values []string, extraName, extraVal string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value; integers print without exponent
// noise, everything else in shortest-roundtrip form.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound for the le label.
func formatLe(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline (quotes are
// legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
