package enrich

import (
	"testing"

	"golake/internal/table"
)

func mustCSV(t *testing.T, name, csv string) *table.Table {
	t.Helper()
	tbl, err := table.ParseCSV(name, csv)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestD4DiscoversColorAndCityDomains(t *testing.T) {
	t1 := mustCSV(t, "vehicles", "vehicle_color,plant\nred,berlin\nwhite,munich\nblack,berlin\ngreen,hamburg\n")
	t2 := mustCSV(t, "buildings", "building_color,city\nred,berlin\nwhite,munich\ngray,cologne\ngreen,hamburg\n")
	t3 := mustCSV(t, "clothes", "cloth_color,size\nred,s\nwhite,m\nblue,l\ngreen,xl\n")
	domains := D4([]*table.Table{t1, t2, t3}, DefaultD4Config())
	if len(domains) == 0 {
		t.Fatal("no domains discovered")
	}
	// A color domain should exist containing red/white/green from >= 2
	// columns.
	var colorDomain *Domain
	for i := range domains {
		for _, term := range domains[i].Terms {
			if term == "red" {
				colorDomain = &domains[i]
			}
		}
	}
	if colorDomain == nil {
		t.Fatalf("no color domain in %+v", domains)
	}
	wantTerms := map[string]bool{"red": true, "white": true, "green": true}
	got := map[string]bool{}
	for _, term := range colorDomain.Terms {
		got[term] = true
	}
	for w := range wantTerms {
		if !got[w] {
			t.Errorf("color domain misses %q: %v", w, colorDomain.Terms)
		}
	}
	// Terms below support (blue, gray appear once) are excluded.
	if got["blue"] || got["gray"] {
		t.Errorf("low-support terms leaked into domain: %v", colorDomain.Terms)
	}
	if len(colorDomain.Columns) < 3 {
		t.Errorf("color domain columns = %v", colorDomain.Columns)
	}
}

func TestD4AmbiguousTermInMultipleDomains(t *testing.T) {
	// "apple" appears in fruit columns and brand columns; the two
	// clusters are otherwise disjoint, so apple must land in both
	// domains.
	f1 := mustCSV(t, "f1", "fruit\napple\npear\nplum\ngrape\n")
	f2 := mustCSV(t, "f2", "fruit2\napple\npear\nplum\ncherry\n")
	b1 := mustCSV(t, "b1", "brand\napple\nsamsung\nsony\nnokia\n")
	b2 := mustCSV(t, "b2", "brand2\napple\nsamsung\nsony\nlg\n")
	domains := D4([]*table.Table{f1, f2, b1, b2}, D4Config{MinColumnSim: 0.4, MinSupport: 2, MaxValuesPerColumn: 100})
	got := DomainsOf(domains, "apple")
	if len(got) != 2 {
		t.Fatalf("apple domains = %v, want 2 (domains: %+v)", got, domains)
	}
	if pear := DomainsOf(domains, "pear"); len(pear) != 1 {
		t.Errorf("pear domains = %v, want 1", pear)
	}
}

func TestDomainNetDetectsHomograph(t *testing.T) {
	// Two dense communities (fruit tables, brand tables) sharing only
	// the value "apple".
	f1 := mustCSV(t, "f1", "fruit\napple\npear\nplum\ngrape\nmelon\n")
	f2 := mustCSV(t, "f2", "fruit2\npear\nplum\ngrape\nmelon\napple\n")
	b1 := mustCSV(t, "b1", "brand\napple\nsamsung\nsony\nnokia\nhuawei\n")
	b2 := mustCSV(t, "b2", "brand2\nsamsung\nsony\nnokia\nhuawei\napple\n")
	homs := DomainNet([]*table.Table{f1, f2, b1, b2}, DefaultDomainNetConfig())
	if len(homs) == 0 {
		t.Fatal("no homographs detected")
	}
	if homs[0].Value != "apple" {
		t.Errorf("top homograph = %+v, want apple", homs[0])
	}
	if homs[0].Communities < 2 {
		t.Errorf("apple communities = %d", homs[0].Communities)
	}
	// Unambiguous values are not flagged.
	for _, h := range homs {
		if h.Value == "pear" || h.Value == "samsung" {
			t.Errorf("unambiguous value flagged: %+v", h)
		}
	}
}

func TestDiscoverRFDs(t *testing.T) {
	// city -> country holds except one violating row (Berlin/France).
	tbl := mustCSV(t, "geo", "city,country\nberlin,de\nberlin,de\nberlin,fr\nparis,fr\nparis,fr\nrome,it\n")
	rfds := DiscoverRFDs(tbl, 0.8)
	var dep *RFD
	for i := range rfds {
		if rfds[i].Lhs == "city" && rfds[i].Rhs == "country" {
			dep = &rfds[i]
		}
	}
	if dep == nil {
		t.Fatalf("city~>country not found: %+v", rfds)
	}
	// 5 of 6 rows consistent.
	if dep.Confidence < 0.83 || dep.Confidence > 0.84 {
		t.Errorf("confidence = %v, want ~0.833", dep.Confidence)
	}
	viol, err := RFDViolations(tbl, *dep)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 1 || viol[0] != 2 {
		t.Errorf("violations = %v, want [2]", viol)
	}
}

func TestRFDStrictThresholdExcludesWeakDeps(t *testing.T) {
	tbl := mustCSV(t, "t", "a,b\n1,x\n1,y\n2,x\n2,y\n")
	// a->b holds for only half the rows per group.
	rfds := DiscoverRFDs(tbl, 0.9)
	for _, r := range rfds {
		if r.Lhs == "a" && r.Rhs == "b" {
			t.Errorf("weak dependency reported: %+v", r)
		}
	}
	if got := DiscoverRFDs(table.New("empty"), 0.5); got != nil {
		t.Errorf("empty table RFDs = %v", got)
	}
}

func TestRFDViolationsUnknownColumn(t *testing.T) {
	tbl := mustCSV(t, "t", "a,b\n1,x\n")
	if _, err := RFDViolations(tbl, RFD{Table: "t", Lhs: "ghost", Rhs: "b"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestExtractFeatures(t *testing.T) {
	text := "The customer purchased a car in Berlin Center. The customer paid the price in full. Apple Inc shipped the order."
	kb := MapKB{"berlin center": "kb:berlin-center", "apple inc": "kb:apple"}
	f := ExtractFeatures(text, kb)
	if len(f.Keywords) == 0 || f.Keywords[0] != "customer" {
		t.Errorf("keywords = %v", f.Keywords)
	}
	foundEntity := false
	for _, e := range f.NamedEntities {
		if e == "Berlin Center" {
			foundEntity = true
		}
	}
	if !foundEntity {
		t.Errorf("entities = %v", f.NamedEntities)
	}
	// Synonym expansion for "customer" and "price".
	hasClient := false
	for _, e := range f.Expanded {
		if e == "client" {
			hasClient = true
		}
	}
	if !hasClient {
		t.Errorf("expanded = %v, want client synonym", f.Expanded)
	}
	if f.Links["Berlin Center"] != "kb:berlin-center" {
		t.Errorf("links = %v", f.Links)
	}
	if f.Links["Apple Inc"] != "kb:apple" {
		t.Errorf("links = %v", f.Links)
	}
}

func TestExtractFeaturesNilKB(t *testing.T) {
	f := ExtractFeatures("Plain text without entities", nil)
	if len(f.Links) != 0 {
		t.Errorf("links with nil KB = %v", f.Links)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"cities":  "city",
		"running": "runn",
		"boxes":   "box",
		"cars":    "car",
		"glass":   "glass",
		"car":     "car",
	}
	for in, want := range cases {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}
