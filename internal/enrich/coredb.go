package enrich

import (
	"sort"
	"strings"
	"unicode"

	"golake/internal/sketch"
)

// CoreDB-style semantic enrichment (Sec. 6.4.1): extract features —
// keywords and named entities — from raw text, expand them with
// synonyms/stems, and link them to a knowledge base. The external
// knowledge bases (Google KG, Wikidata) are substituted by a pluggable
// KnowledgeBase interface with an in-memory implementation.

// Features is the extraction result for one document or dataset.
type Features struct {
	Keywords      []string
	NamedEntities []string
	// Expanded adds synonyms and stems of the keywords.
	Expanded []string
	// Links maps an entity to its knowledge-base identifier.
	Links map[string]string
}

// KnowledgeBase resolves an entity mention to an identifier, or
// returns false.
type KnowledgeBase interface {
	Resolve(entity string) (string, bool)
}

// MapKB is a static in-memory knowledge base.
type MapKB map[string]string

// Resolve implements KnowledgeBase.
func (m MapKB) Resolve(entity string) (string, bool) {
	id, ok := m[strings.ToLower(entity)]
	return id, ok
}

// synonyms is a small built-in thesaurus standing in for the synonym
// service CoreDB calls.
var synonyms = map[string][]string{
	"car": {"automobile", "vehicle"}, "city": {"town", "municipality"},
	"price": {"cost", "amount"}, "client": {"customer"},
	"customer": {"client"}, "purchase": {"order", "sale"},
	"illness": {"disease"}, "disease": {"illness"},
}

// ExtractFeatures pulls keywords (frequent informative tokens) and
// named entities (capitalized multi-word spans) from text, expands the
// keywords, and links entities through the knowledge base (nil KB
// skips linking).
func ExtractFeatures(text string, kb KnowledgeBase) Features {
	f := Features{Links: map[string]string{}}
	// Keywords: frequency-ranked informative tokens.
	tf := map[string]int{}
	for _, tok := range sketch.Tokenize(text) {
		if len(tok) >= 3 && !coreStop[tok] {
			tf[tok]++
		}
	}
	var kws []string
	for t := range tf {
		kws = append(kws, t)
	}
	sort.Slice(kws, func(i, j int) bool {
		if tf[kws[i]] != tf[kws[j]] {
			return tf[kws[i]] > tf[kws[j]]
		}
		return kws[i] < kws[j]
	})
	if len(kws) > 10 {
		kws = kws[:10]
	}
	f.Keywords = kws
	// Named entities: consecutive capitalized words.
	f.NamedEntities = namedEntities(text)
	// Expansion: synonyms plus naive stems.
	seen := map[string]struct{}{}
	for _, k := range kws {
		for _, s := range synonyms[k] {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				f.Expanded = append(f.Expanded, s)
			}
		}
		if st := stem(k); st != k {
			if _, ok := seen[st]; !ok {
				seen[st] = struct{}{}
				f.Expanded = append(f.Expanded, st)
			}
		}
	}
	sort.Strings(f.Expanded)
	if kb != nil {
		for _, e := range f.NamedEntities {
			if id, ok := kb.Resolve(e); ok {
				f.Links[e] = id
			}
		}
	}
	return f
}

// namedEntities finds runs of two or more capitalized words — the
// shallow multi-word extraction CoreDB applies. Runs end at lowercase
// words and at sentence punctuation; single capitalized words are
// dropped (they are usually sentence-initial).
func namedEntities(text string) []string {
	words := strings.Fields(text)
	var out []string
	var run []string
	flush := func() {
		if len(run) >= 2 {
			out = append(out, strings.Join(run, " "))
		}
		run = nil
	}
	for _, w := range words {
		trimmed := strings.TrimFunc(w, func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsDigit(r)
		})
		if trimmed == "" {
			flush()
			continue
		}
		r := []rune(trimmed)
		if unicode.IsUpper(r[0]) && len(trimmed) > 1 {
			run = append(run, trimmed)
		} else {
			flush()
			continue
		}
		// Sentence punctuation terminates the run even after a
		// capitalized word ("... Berlin Center. The ...").
		if last := w[len(w)-1]; last == '.' || last == ',' || last == ';' || last == '!' || last == '?' {
			flush()
		}
	}
	flush()
	return dedupeStrings(out)
}

// stem applies a tiny suffix-stripping stemmer (enough for plural and
// gerund forms).
func stem(w string) string {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		return w[:len(w)-3]
	case strings.HasSuffix(w, "es") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && len(w) > 3 && !strings.HasSuffix(w, "ss"):
		return w[:len(w)-1]
	}
	return w
}

var coreStop = map[string]bool{
	"the": true, "and": true, "for": true, "with": true, "that": true,
	"this": true, "from": true, "are": true, "was": true, "were": true,
	"has": true, "have": true, "had": true, "its": true, "their": true,
}
