// Package enrich implements the metadata-enrichment function of the
// maintenance tier (Sec. 6.4): D4's data-driven domain discovery,
// DomainNet's homograph detection via community structure, Constance's
// relaxed-functional-dependency discovery, and CoreDB-style semantic
// feature extraction with knowledge-base tagging hooks.
package enrich

import (
	"fmt"
	"sort"

	"golake/internal/sketch"
	"golake/internal/table"
)

// Domain is one discovered semantic domain: a name and its term set
// (D4 represents each domain by the set of terms that belong to it).
type Domain struct {
	Name  string
	Terms []string
	// Columns lists the contributing "table.column" identifiers.
	Columns []string
}

// D4Config tunes domain discovery.
type D4Config struct {
	// MinColumnSim is the value-overlap threshold for putting two
	// columns in the same domain cluster.
	MinColumnSim float64
	// MinSupport is the minimum number of columns a term must appear
	// in (within a cluster) to enter the domain's term set — D4's
	// robust signal against noise values.
	MinSupport int
	// MaxValuesPerColumn caps the values read per column.
	MaxValuesPerColumn int
}

// DefaultD4Config returns the defaults used in tests and benches.
func DefaultD4Config() D4Config {
	return D4Config{MinColumnSim: 0.3, MinSupport: 2, MaxValuesPerColumn: 2000}
}

// D4 discovers semantic domains data-driven, without external
// knowledge (Ota et al.): textual columns are clustered by value
// overlap (connected components over the column-similarity graph,
// standing in for D4's local-neighborhood expansion), and each
// cluster's robust term set — terms supported by at least MinSupport
// member columns — becomes a domain. A term may appear in several
// domains (ambiguity is preserved: "apple" can be fruit and brand).
func D4(tables []*table.Table, cfg D4Config) []Domain {
	type colEntry struct {
		key    string
		values map[string]struct{}
	}
	var cols []colEntry
	for _, t := range tables {
		for _, c := range t.Columns {
			if c.Kind.Numeric() || c.Kind == table.KindTime {
				continue
			}
			vals := c.DistinctSlice()
			if cfg.MaxValuesPerColumn > 0 && len(vals) > cfg.MaxValuesPerColumn {
				vals = vals[:cfg.MaxValuesPerColumn]
			}
			if len(vals) == 0 {
				continue
			}
			cols = append(cols, colEntry{key: t.Name + "." + c.Name, values: sketch.ToSet(vals)})
		}
	}
	// Union-find over similar columns.
	parent := make([]int, len(cols))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if sketch.ExactJaccard(cols[i].values, cols[j].values) >= cfg.MinColumnSim {
				parent[find(i)] = find(j)
			}
		}
	}
	clusters := map[int][]int{}
	for i := range cols {
		r := find(i)
		clusters[r] = append(clusters[r], i)
	}
	var roots []int
	for r := range clusters {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []Domain
	for di, r := range roots {
		members := clusters[r]
		if len(members) < 2 {
			continue // singleton columns carry no cross-column evidence
		}
		support := map[string]int{}
		for _, ci := range members {
			for v := range cols[ci].values {
				support[v]++
			}
		}
		var terms []string
		for v, s := range support {
			if s >= cfg.MinSupport {
				terms = append(terms, v)
			}
		}
		if len(terms) == 0 {
			continue
		}
		sort.Strings(terms)
		var colKeys []string
		for _, ci := range members {
			colKeys = append(colKeys, cols[ci].key)
		}
		sort.Strings(colKeys)
		out = append(out, Domain{
			Name:    fmt.Sprintf("domain_%02d", di),
			Terms:   terms,
			Columns: colKeys,
		})
	}
	return out
}

// DomainsOf returns the names of the domains containing the term —
// ambiguous terms return more than one.
func DomainsOf(domains []Domain, term string) []string {
	var out []string
	for _, d := range domains {
		for _, t := range d.Terms {
			if t == term {
				out = append(out, d.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
