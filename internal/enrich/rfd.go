package enrich

import (
	"fmt"
	"sort"

	"golake/internal/table"
)

// RFD is one discovered relaxed functional dependency X -> Y
// (Sec. 6.4.2): Y functionally depends on X for at least Confidence of
// the tuples — the relaxation tolerates a fraction of violating rows,
// which is what makes FD discovery usable on inconsistent raw lake
// data (Constance / Caruccio et al.).
type RFD struct {
	// Lhs/Rhs are column names of the same table.
	Table string
	Lhs   string
	Rhs   string
	// Confidence is the fraction of rows consistent with the
	// dependency under the "keep the majority value per group" reading.
	Confidence float64
}

// String renders "t: a ~> b (0.97)".
func (r RFD) String() string {
	return fmt.Sprintf("%s: %s ~> %s (%.2f)", r.Table, r.Lhs, r.Rhs, r.Confidence)
}

// DiscoverRFDs finds all single-attribute relaxed FDs of a table with
// confidence >= minConfidence. Trivial dependencies (key columns that
// determine everything with groups of size one) are kept only when
// nontrivial evidence exists: at least one LHS group with more than one
// row.
func DiscoverRFDs(t *table.Table, minConfidence float64) []RFD {
	var out []RFD
	n := t.NumRows()
	if n == 0 {
		return nil
	}
	for _, lhs := range t.Columns {
		groups := map[string][]int{}
		for i, v := range lhs.Cells {
			groups[v] = append(groups[v], i)
		}
		multi := false
		for _, rows := range groups {
			if len(rows) > 1 {
				multi = true
				break
			}
		}
		if !multi {
			continue
		}
		for _, rhs := range t.Columns {
			if rhs.Name == lhs.Name {
				continue
			}
			consistent := 0
			for _, rows := range groups {
				// Majority value of rhs within the group counts as
				// consistent; the rest are violations.
				freq := map[string]int{}
				for _, ri := range rows {
					freq[rhs.Cells[ri]]++
				}
				best := 0
				for _, c := range freq {
					if c > best {
						best = c
					}
				}
				consistent += best
			}
			conf := float64(consistent) / float64(n)
			if conf >= minConfidence {
				out = append(out, RFD{Table: t.Name, Lhs: lhs.Name, Rhs: rhs.Name, Confidence: conf})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Lhs+out[i].Rhs < out[j].Lhs+out[j].Rhs
	})
	return out
}

// RFDViolations returns the row indexes violating a discovered RFD —
// the rows whose RHS value differs from their LHS group's majority.
// Constance flags exactly these as potentially erroneous (Sec. 6.5.1).
func RFDViolations(t *table.Table, dep RFD) ([]int, error) {
	lhs, err := t.Column(dep.Lhs)
	if err != nil {
		return nil, err
	}
	rhs, err := t.Column(dep.Rhs)
	if err != nil {
		return nil, err
	}
	groups := map[string][]int{}
	for i, v := range lhs.Cells {
		groups[v] = append(groups[v], i)
	}
	var out []int
	for _, rows := range groups {
		freq := map[string]int{}
		for _, ri := range rows {
			freq[rhs.Cells[ri]]++
		}
		var majority string
		best := -1
		var vals []string
		for v := range freq {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			if freq[v] > best {
				majority, best = v, freq[v]
			}
		}
		for _, ri := range rows {
			if rhs.Cells[ri] != majority {
				out = append(out, ri)
			}
		}
	}
	sort.Ints(out)
	return out, nil
}
