package enrich

import (
	"sort"

	"golake/internal/table"
)

// DomainNet (Leventidis et al., Sec. 6.4.1) detects homographs — data
// values like "Apple" that carry different meanings in different
// tables — by building a bipartite network of values and attributes
// and examining its community structure: a value attached to attributes
// from multiple communities is a homograph candidate.
//
// Communities are found with synchronous label propagation over the
// bipartite graph (deterministic: ties break on smaller label).

// Homograph is one detected ambiguous value.
type Homograph struct {
	Value string
	// Communities is the number of distinct attribute communities the
	// value touches.
	Communities int
	// Attributes lists the attributes ("table.column") containing it.
	Attributes []string
}

// DomainNetConfig tunes detection.
type DomainNetConfig struct {
	// Iterations bounds label propagation rounds.
	Iterations int
	// MaxValuesPerColumn caps graph size.
	MaxValuesPerColumn int
}

// DefaultDomainNetConfig returns sane defaults.
func DefaultDomainNetConfig() DomainNetConfig {
	return DomainNetConfig{Iterations: 12, MaxValuesPerColumn: 2000}
}

// DomainNet returns the homographs found in the corpus, sorted by
// descending community count then value.
func DomainNet(tables []*table.Table, cfg DomainNetConfig) []Homograph {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 12
	}
	// Bipartite adjacency: value node <-> attribute node.
	valueAttrs := map[string][]string{}
	attrValues := map[string][]string{}
	for _, t := range tables {
		for _, c := range t.Columns {
			if c.Kind.Numeric() || c.Kind == table.KindTime {
				continue
			}
			attr := t.Name + "." + c.Name
			vals := c.DistinctSlice()
			if cfg.MaxValuesPerColumn > 0 && len(vals) > cfg.MaxValuesPerColumn {
				vals = vals[:cfg.MaxValuesPerColumn]
			}
			for _, v := range vals {
				valueAttrs[v] = append(valueAttrs[v], attr)
				attrValues[attr] = append(attrValues[attr], v)
			}
		}
	}
	// Label propagation: every node starts with its own label; each
	// round adopts the most frequent neighbor label.
	labels := map[string]string{}
	var nodes []string
	for v := range valueAttrs {
		n := "v:" + v
		labels[n] = n
		nodes = append(nodes, n)
	}
	for a := range attrValues {
		n := "a:" + a
		labels[n] = n
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	neighbors := func(n string) []string {
		if len(n) > 2 && n[:2] == "v:" {
			attrs := valueAttrs[n[2:]]
			out := make([]string, len(attrs))
			for i, a := range attrs {
				out[i] = "a:" + a
			}
			return out
		}
		vals := attrValues[n[2:]]
		out := make([]string, len(vals))
		for i, v := range vals {
			out[i] = "v:" + v
		}
		return out
	}
	for it := 0; it < cfg.Iterations; it++ {
		next := make(map[string]string, len(labels))
		changed := false
		for _, n := range nodes {
			freq := map[string]int{}
			for _, nb := range neighbors(n) {
				freq[labels[nb]]++
			}
			best := labels[n]
			bestCount := 0
			var cand []string
			for l := range freq {
				cand = append(cand, l)
			}
			sort.Strings(cand)
			for _, l := range cand {
				if freq[l] > bestCount {
					best, bestCount = l, freq[l]
				}
			}
			next[n] = best
			if best != labels[n] {
				changed = true
			}
		}
		labels = next
		if !changed {
			break
		}
	}
	// A value whose attribute neighbors span several communities is a
	// homograph.
	var out []Homograph
	for v, attrs := range valueAttrs {
		comm := map[string]struct{}{}
		for _, a := range attrs {
			comm[labels["a:"+a]] = struct{}{}
		}
		if len(comm) < 2 {
			continue
		}
		uniq := dedupeStrings(attrs)
		out = append(out, Homograph{Value: v, Communities: len(comm), Attributes: uniq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Communities != out[j].Communities {
			return out[i].Communities > out[j].Communities
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func dedupeStrings(in []string) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, s := range in {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
