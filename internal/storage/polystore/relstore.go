// Package polystore provides integrated access to a hybrid of data
// stores — relational, document, graph, and raw files — following the
// polystore storage tier of Constance and CoreDB (Sec. 4.3 of the
// survey): each ingested dataset is routed to the store matching its
// original data model, with raw files as the fallback, and users may
// override the placement.
package polystore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"golake/internal/table"
)

// ErrNoTable is returned for missing relational tables.
var ErrNoTable = errors.New("polystore: no such table")

// RelStore is an in-process relational store (the MySQL/PostgreSQL
// stand-in): named tables with scan and predicate evaluation. Predicate
// pushdown in the federated query engine lands here.
type RelStore struct {
	mu     sync.RWMutex
	tables map[string]*table.Table
}

// NewRelStore creates an empty relational store.
func NewRelStore() *RelStore {
	return &RelStore{tables: map[string]*table.Table{}}
}

// Create registers (or replaces) a table under its name.
func (r *RelStore) Create(t *table.Table) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tables[t.Name] = t.Clone()
}

// Table returns a deep copy of the named table.
func (r *RelStore) Table(name string) (*table.Table, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t.Clone(), nil
}

// ColumnNames returns the column names of a table without copying its
// data (the federated engine consults this when planning pushdown).
func (r *RelStore) ColumnNames(name string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t.ColumnNames(), nil
}

// Has reports whether a table exists.
func (r *RelStore) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.tables[name]
	return ok
}

// Drop removes a table.
func (r *RelStore) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	delete(r.tables, name)
	return nil
}

// Names returns all table names, sorted.
func (r *RelStore) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for n := range r.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Select scans a table, applying an optional row predicate and column
// projection in the store — the "pushdown" unit of the federated engine.
func (r *RelStore) Select(name string, pred func(row map[string]string) bool, cols []string) (*table.Table, error) {
	r.mu.RLock()
	t, ok := r.tables[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	names := t.ColumnNames()
	filtered := t.Filter(func(row []string) bool {
		if pred == nil {
			return true
		}
		m := make(map[string]string, len(names))
		for i, n := range names {
			m[n] = row[i]
		}
		return pred(m)
	})
	if len(cols) == 0 {
		return filtered, nil
	}
	return filtered.Project(cols...)
}

// CellPredicate is a compiled single-column predicate evaluated inside
// the store during the scan — the unit of predicate pushdown.
type CellPredicate struct {
	Column string
	Match  func(cell string) bool
}

// SelectWhere scans a table with compiled per-column predicates and a
// projection, both evaluated inside the store: predicate columns are
// resolved to indexes once, and only projected columns are copied out.
// This is the fast path the federated engine pushes down to; Select
// remains for callers wanting arbitrary row predicates.
func (r *RelStore) SelectWhere(name string, preds []CellPredicate, cols []string) (*table.Table, error) {
	r.mu.RLock()
	t, ok := r.tables[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	// Resolve predicate and projection columns to indexes once.
	type boundPred struct {
		col   *table.Column
		match func(string) bool
	}
	bound := make([]boundPred, 0, len(preds))
	for _, p := range preds {
		c, err := t.Column(p.Column)
		if err != nil {
			// Predicate on a missing column matches nothing.
			return emptyLike(t, cols), nil
		}
		bound = append(bound, boundPred{col: c, match: p.Match})
	}
	outCols := t.Columns
	if len(cols) > 0 {
		outCols = outCols[:0:0]
		for _, name := range cols {
			c, err := t.Column(name)
			if err != nil {
				continue
			}
			outCols = append(outCols, c)
		}
	}
	out := table.New(t.Name)
	for _, c := range outCols {
		out.Columns = append(out.Columns, &table.Column{Name: c.Name, Kind: c.Kind})
	}
	n := t.NumRows()
rows:
	for i := 0; i < n; i++ {
		for _, bp := range bound {
			if !bp.match(bp.col.Cells[i]) {
				continue rows
			}
		}
		for j, c := range outCols {
			out.Columns[j].Cells = append(out.Columns[j].Cells, c.Cells[i])
		}
	}
	return out, nil
}

func emptyLike(t *table.Table, cols []string) *table.Table {
	out := table.New(t.Name)
	names := cols
	if len(names) == 0 {
		names = t.ColumnNames()
	}
	for _, n := range names {
		out.Columns = append(out.Columns, &table.Column{Name: n})
	}
	return out
}

// Insert appends rows to an existing table.
func (r *RelStore) Insert(name string, rows [][]string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	for _, row := range rows {
		if err := t.AppendRow(row); err != nil {
			return err
		}
	}
	return nil
}
