// Package polystore provides integrated access to a hybrid of data
// stores — relational, document, graph, and raw files — following the
// polystore storage tier of Constance and CoreDB (Sec. 4.3 of the
// survey): each ingested dataset is routed to the store matching its
// original data model, with raw files as the fallback, and users may
// override the placement.
package polystore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"golake/internal/table"
)

// ErrNoTable is returned for missing relational tables.
var ErrNoTable = errors.New("polystore: no such table")

// RelStore is an in-process relational store (the MySQL/PostgreSQL
// stand-in): named tables with scan and predicate evaluation. Predicate
// pushdown in the federated query engine lands here.
type RelStore struct {
	mu     sync.RWMutex
	tables map[string]*table.Table
}

// NewRelStore creates an empty relational store.
func NewRelStore() *RelStore {
	return &RelStore{tables: map[string]*table.Table{}}
}

// Create registers (or replaces) a table under its name.
func (r *RelStore) Create(t *table.Table) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tables[t.Name] = t.Clone()
}

// Table returns a deep copy of the named table.
func (r *RelStore) Table(name string) (*table.Table, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t.Clone(), nil
}

// ColumnNames returns the column names of a table without copying its
// data (the federated engine consults this when planning pushdown).
func (r *RelStore) ColumnNames(name string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t.ColumnNames(), nil
}

// Has reports whether a table exists.
func (r *RelStore) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.tables[name]
	return ok
}

// Drop removes a table.
func (r *RelStore) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	delete(r.tables, name)
	return nil
}

// Names returns all table names, sorted.
func (r *RelStore) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for n := range r.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Select scans a table, applying an optional row predicate and column
// projection in the store — the "pushdown" unit of the federated engine.
func (r *RelStore) Select(name string, pred func(row map[string]string) bool, cols []string) (*table.Table, error) {
	r.mu.RLock()
	t, ok := r.tables[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	names := t.ColumnNames()
	filtered := t.Filter(func(row []string) bool {
		if pred == nil {
			return true
		}
		m := make(map[string]string, len(names))
		for i, n := range names {
			m[n] = row[i]
		}
		return pred(m)
	})
	if len(cols) == 0 {
		return filtered, nil
	}
	return filtered.Project(cols...)
}

// CellPredicate is a compiled single-column predicate evaluated inside
// the store during the scan — the unit of predicate pushdown.
type CellPredicate struct {
	Column string
	Match  func(cell string) bool
}

// SelectWhere scans a table with compiled per-column predicates and a
// projection, both evaluated inside the store: predicate columns are
// resolved to indexes once, and only projected columns are copied out.
// This is the materialized form of ScanWhere; Select remains for
// callers wanting arbitrary row predicates.
func (r *RelStore) SelectWhere(name string, preds []CellPredicate, cols []string) (*table.Table, error) {
	cur, err := r.ScanWhere(name, preds, cols)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	out := table.New(name)
	for i, n := range cur.Columns() {
		out.Columns = append(out.Columns, &table.Column{Name: n, Kind: cur.kinds[i]})
	}
	for {
		row, ok := cur.Next()
		if !ok {
			return out, nil
		}
		for j, v := range row {
			out.Columns[j].Cells = append(out.Columns[j].Cells, v)
		}
	}
}

// Cursor streams matching rows out of one relational table, one Next
// call per row — the store-side scan unit of the streaming query
// pipeline. It reads a snapshot taken at ScanWhere time (captured
// column slices), so a scan is consistent under concurrent Insert and
// Create without holding the store lock while the caller drains it.
type Cursor struct {
	names []string
	kinds []table.Kind
	// cells[j] backs output column j; preds carry their own snapshots
	// so predicate columns need not survive the projection.
	cells [][]string
	preds []boundPredicate
	n, at int
}

type boundPredicate struct {
	cells []string
	match func(string) bool
}

// Columns returns the cursor's output header.
func (c *Cursor) Columns() []string { return c.names }

// Next returns the next matching row, or false when the scan is done.
// Each call allocates one fresh row slice.
func (c *Cursor) Next() ([]string, bool) {
rows:
	for c.at < c.n {
		i := c.at
		c.at++
		for _, bp := range c.preds {
			if !bp.match(bp.cells[i]) {
				continue rows
			}
		}
		row := make([]string, len(c.cells))
		for j, col := range c.cells {
			row[j] = col[i]
		}
		return row, true
	}
	return nil, false
}

// Kinds returns the per-column inferred kinds of the cursor's output,
// aligned with Columns — the type information the columnar pipeline
// attaches to its vectors without re-inferring per batch.
func (c *Cursor) Kinds() []table.Kind { return c.kinds }

// NextBatch returns up to max rows column-wise: cells[j] is the run of
// output column j, n the number of rows (0 when the scan is done).
// This is the store-side batch scan of the columnar pipeline: without
// predicates the runs are zero-copy subslices of the snapshot — no
// cell is copied or re-sliced per row — and with predicates matching
// rows are compacted into fresh runs until max rows match or the
// snapshot ends. The returned runs stay valid after Close (they alias
// or copy the snapshot, which concurrent Inserts never mutate).
func (c *Cursor) NextBatch(max int) (cells [][]string, n int) {
	if max <= 0 {
		max = 1
	}
	if c.at >= c.n {
		return nil, 0
	}
	if len(c.preds) == 0 {
		end := c.at + max
		if end > c.n {
			end = c.n
		}
		cells = make([][]string, len(c.cells))
		for j, col := range c.cells {
			cells[j] = col[c.at:end:end]
		}
		n = end - c.at
		c.at = end
		return cells, n
	}
	cells = make([][]string, len(c.cells))
rows:
	for c.at < c.n && n < max {
		i := c.at
		c.at++
		for _, bp := range c.preds {
			if !bp.match(bp.cells[i]) {
				continue rows
			}
		}
		for j, col := range c.cells {
			cells[j] = append(cells[j], col[i])
		}
		n++
	}
	if n == 0 {
		return nil, 0
	}
	return cells, n
}

// Close releases the snapshot. Idempotent.
func (c *Cursor) Close() error {
	c.at = c.n
	c.cells = nil
	c.preds = nil
	return nil
}

// ScanWhere opens a streaming scan with compiled per-column predicates
// and a projection, both evaluated inside the store as rows are
// pulled. A predicate on a missing column matches nothing (an empty
// cursor keeping the projected header); projected columns that do not
// exist are dropped. Empty cols projects every column.
func (r *RelStore) ScanWhere(name string, preds []CellPredicate, cols []string) (*Cursor, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	n := t.NumRows()
	cur := &Cursor{n: n}
	for _, p := range preds {
		c, err := t.Column(p.Column)
		if err != nil {
			// Predicate on a missing column matches nothing.
			return emptyCursorLike(t, cols), nil
		}
		cur.preds = append(cur.preds, boundPredicate{cells: c.Cells[:n], match: p.Match})
	}
	outCols := t.Columns
	if len(cols) > 0 {
		outCols = outCols[:0:0]
		for _, name := range cols {
			c, err := t.Column(name)
			if err != nil {
				continue
			}
			outCols = append(outCols, c)
		}
	}
	for _, c := range outCols {
		cur.names = append(cur.names, c.Name)
		cur.kinds = append(cur.kinds, c.Kind)
		// Capture the slice header up to the snapshot length: later
		// Inserts append past n (or reallocate) without touching the
		// cells this scan reads.
		cur.cells = append(cur.cells, c.Cells[:n])
	}
	return cur, nil
}

// ScanWhereShards opens the same snapshot scan as ScanWhere split into
// shards range-partitioned cursors: shard k reads rows [k*n/shards,
// (k+1)*n/shards) of the snapshot, so draining all of them through a
// parallel fan-in yields exactly the rows one ScanWhere cursor would —
// the intra-source parallelism unit of large single-table scans. All
// shards alias one snapshot (slice headers captured under the store
// lock once), so the split costs O(shards), not O(rows). shards < 1 is
// treated as 1.
func (r *RelStore) ScanWhereShards(name string, preds []CellPredicate, cols []string, shards int) ([]*Cursor, error) {
	if shards < 1 {
		shards = 1
	}
	base, err := r.ScanWhere(name, preds, cols)
	if err != nil {
		return nil, err
	}
	if shards == 1 {
		return []*Cursor{base}, nil
	}
	out := make([]*Cursor, shards)
	for k := 0; k < shards; k++ {
		start := k * base.n / shards
		end := (k + 1) * base.n / shards
		out[k] = &Cursor{
			names: base.names,
			kinds: base.kinds,
			cells: base.cells,
			preds: base.preds,
			n:     end,
			at:    start,
		}
	}
	return out, nil
}

func emptyCursorLike(t *table.Table, cols []string) *Cursor {
	names := cols
	if len(names) == 0 {
		names = t.ColumnNames()
	}
	return &Cursor{names: names, kinds: make([]table.Kind, len(names))}
}

// Insert appends rows to an existing table.
func (r *RelStore) Insert(name string, rows [][]string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	for _, row := range rows {
		if err := t.AppendRow(row); err != nil {
			return err
		}
	}
	return nil
}
