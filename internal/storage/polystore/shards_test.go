package polystore

import (
	"fmt"
	"strings"
	"testing"

	"golake/internal/table"
)

func shardStore(t *testing.T, rows int) *RelStore {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("id,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i%5)
	}
	tbl, err := table.ParseCSV("t", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelStore()
	r.Create(tbl)
	return r
}

func drainCursor(t *testing.T, c *Cursor) []string {
	t.Helper()
	var out []string
	for {
		row, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, strings.Join(row, "|"))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScanWhereShards pins the range partition: K shard cursors cover
// every row exactly once, in the same order the single cursor yields.
func TestScanWhereShards(t *testing.T) {
	r := shardStore(t, 103) // deliberately not divisible by the widths
	base, err := r.ScanWhere("t", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := drainCursor(t, base)
	for _, k := range []int{1, 2, 7, 103, 200, 0} {
		curs, err := r.ScanWhereShards("t", nil, nil, k)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		var got []string
		for _, c := range curs {
			got = append(got, drainCursor(t, c)...)
		}
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("shards=%d: %d rows, want the %d-row base scan", k, len(got), len(want))
		}
	}
}

// TestScanWhereShardsWithPredicates keeps pushdown correct per shard.
func TestScanWhereShardsWithPredicates(t *testing.T) {
	r := shardStore(t, 60)
	pred := []CellPredicate{{Column: "v", Match: func(s string) bool { return s == "3" }}}
	base, err := r.ScanWhere("t", pred, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	want := drainCursor(t, base)
	curs, err := r.ScanWhereShards("t", pred, []string{"id"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range curs {
		got = append(got, drainCursor(t, c)...)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("sharded filtered scan = %v, want %v", got, want)
	}
}

// TestShardCloseIndependence pins that closing one shard cursor leaves
// its siblings usable (they share snapshot slice headers, not state).
func TestShardCloseIndependence(t *testing.T) {
	r := shardStore(t, 40)
	curs, err := r.ScanWhereShards("t", nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := curs[0].Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range curs[1:] {
		n += len(drainCursor(t, c))
	}
	if n != 30 {
		t.Errorf("rows from surviving shards = %d, want 30", n)
	}
}
