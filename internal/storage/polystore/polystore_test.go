package polystore

import (
	"errors"
	"testing"

	"golake/internal/storage/docstore"
	"golake/internal/storage/filestore"
	"golake/internal/table"
)

func newPoly(t *testing.T) *Poly {
	t.Helper()
	p, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRouteTable(t *testing.T) {
	cases := map[filestore.Format]Target{
		filestore.FormatCSV:    TargetRelational,
		filestore.FormatJSON:   TargetDocument,
		filestore.FormatJSONL:  TargetDocument,
		filestore.FormatXML:    TargetFile,
		filestore.FormatLog:    TargetFile,
		filestore.FormatBinary: TargetFile,
	}
	for f, want := range cases {
		if got := Route(f); got != want {
			t.Errorf("Route(%v) = %v, want %v", f, got, want)
		}
	}
}

func TestIngestCSVGoesRelational(t *testing.T) {
	p := newPoly(t)
	pl, err := p.Ingest("raw/orders.csv", []byte("id,total\n1,9.5\n2,3.25\n"))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Target != TargetRelational || pl.TableName != "orders" {
		t.Fatalf("placement = %+v", pl)
	}
	tbl, err := p.Rel.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tbl.NumRows())
	}
	// Raw bytes are kept too.
	if _, err := p.Files.Get("raw/orders.csv"); err != nil {
		t.Errorf("raw object missing: %v", err)
	}
}

func TestIngestJSONGoesDocument(t *testing.T) {
	p := newPoly(t)
	pl, err := p.Ingest("raw/event.json", []byte(`{"kind":"click","user":"u1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Target != TargetDocument || pl.Collection != "event" {
		t.Fatalf("placement = %+v", pl)
	}
	if got := p.Docs.Collection("event").Count(docstore.Eq("kind", "click")); got != 1 {
		t.Errorf("doc count = %d", got)
	}
}

func TestIngestJSONLAndArray(t *testing.T) {
	p := newPoly(t)
	if _, err := p.Ingest("raw/events.jsonl", []byte("{\"n\":1}\n{\"n\":2}\n{\"n\":3}\n")); err != nil {
		t.Fatal(err)
	}
	if got := p.Docs.Collection("events").Len(); got != 3 {
		t.Errorf("jsonl docs = %d, want 3", got)
	}
	if _, err := p.Ingest("raw/batch.json", []byte(`[{"n":4},{"n":5}]`)); err != nil {
		t.Fatal(err)
	}
	if got := p.Docs.Collection("batch").Len(); got != 2 {
		t.Errorf("array docs = %d, want 2", got)
	}
}

func TestIngestUnparseableCSVFallsBackToFile(t *testing.T) {
	p := newPoly(t)
	pl, err := p.Ingest("raw/broken.csv", []byte("a,b\n1\n")) // ragged
	if err != nil {
		t.Fatal(err)
	}
	if pl.Target != TargetFile {
		t.Errorf("placement = %+v, want file fallback", pl)
	}
	if p.Rel.Has("broken") {
		t.Error("broken table should not be registered")
	}
	if _, err := p.Files.Get("raw/broken.csv"); err != nil {
		t.Error("raw bytes should still be stored")
	}
}

func TestIngestAsGraph(t *testing.T) {
	p := newPoly(t)
	data := []byte(`{"nodes":[{"id":"a","label":"person"},{"id":"b","label":"person"}],
		"edges":[{"from":"a","to":"b","label":"knows"}]}`)
	pl, err := p.IngestAs("raw/social.json", data, TargetGraph)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Target != TargetGraph {
		t.Fatalf("placement = %+v", pl)
	}
	if p.Graph.NumNodes() != 2 || p.Graph.NumEdges() != 1 {
		t.Errorf("graph = %d nodes %d edges", p.Graph.NumNodes(), p.Graph.NumEdges())
	}
}

func TestIngestAsOverridesRouting(t *testing.T) {
	p := newPoly(t)
	// CSV forced into the file-only tier (e.g. a huge stream the user
	// wants raw).
	pl, err := p.IngestAs("raw/huge.csv", []byte("a,b\n1,2\n"), TargetFile)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Target != TargetFile {
		t.Errorf("placement = %+v", pl)
	}
	if p.Rel.Has("huge") {
		t.Error("override ignored: table was created")
	}
}

func TestPlacements(t *testing.T) {
	p := newPoly(t)
	_, _ = p.Ingest("b.csv", []byte("x,y\n1,2\n"))
	_, _ = p.Ingest("a.json", []byte(`{"k":1}`))
	pls := p.Placements()
	if len(pls) != 2 || pls[0].Path != "a.json" || pls[1].Path != "b.csv" {
		t.Errorf("Placements = %+v", pls)
	}
	if _, ok := p.PlacementOf("b.csv"); !ok {
		t.Error("PlacementOf miss")
	}
	if _, ok := p.PlacementOf("nope"); ok {
		t.Error("PlacementOf false hit")
	}
}

func TestRelStoreSelectPushdown(t *testing.T) {
	r := NewRelStore()
	tbl, _ := table.ParseCSV("people", "name,age\nalice,30\nbob,25\ncarol,41\n")
	r.Create(tbl)
	got, err := r.Select("people",
		func(row map[string]string) bool { return row["age"] > "25" },
		[]string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCols() != 1 || got.NumRows() != 2 {
		t.Errorf("Select shape = %dx%d", got.NumCols(), got.NumRows())
	}
	if _, err := r.Select("ghost", nil, nil); !errors.Is(err, ErrNoTable) {
		t.Errorf("Select missing = %v", err)
	}
}

func TestRelStoreSelectWhere(t *testing.T) {
	r := NewRelStore()
	tbl, _ := table.ParseCSV("people", "name,age,city\nalice,30,berlin\nbob,25,paris\ncarol,41,berlin\n")
	r.Create(tbl)
	preds := []CellPredicate{{Column: "city", Match: func(c string) bool { return c == "berlin" }}}
	got, err := r.SelectWhere("people", preds, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || got.NumCols() != 1 {
		t.Fatalf("SelectWhere shape = %dx%d", got.NumCols(), got.NumRows())
	}
	if got.Columns[0].Cells[0] != "alice" || got.Columns[0].Cells[1] != "carol" {
		t.Errorf("rows = %v", got.Columns[0].Cells)
	}
	// Predicate on missing column matches nothing but keeps schema.
	got, err = r.SelectWhere("people", []CellPredicate{{Column: "ghost", Match: func(string) bool { return true }}}, []string{"name"})
	if err != nil || got.NumRows() != 0 || got.NumCols() != 1 {
		t.Errorf("missing pred col = %v rows, %v", got.NumRows(), err)
	}
	// Equivalent to Select with a row predicate.
	viaSelect, _ := r.Select("people",
		func(row map[string]string) bool { return row["city"] == "berlin" }, []string{"name"})
	viaWhere, _ := r.SelectWhere("people", preds, []string{"name"})
	if table.ToCSV(viaSelect) != table.ToCSV(viaWhere) {
		t.Errorf("Select and SelectWhere disagree:\n%s\n%s", table.ToCSV(viaSelect), table.ToCSV(viaWhere))
	}
	if _, err := r.SelectWhere("ghost", nil, nil); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table = %v", err)
	}
}

func TestRelStoreIsolationAndCRUD(t *testing.T) {
	r := NewRelStore()
	tbl, _ := table.ParseCSV("t", "a\n1\n")
	r.Create(tbl)
	tbl.Columns[0].Cells[0] = "mutated"
	got, _ := r.Table("t")
	if got.Columns[0].Cells[0] != "1" {
		t.Error("Create did not copy the table")
	}
	got.Columns[0].Cells[0] = "also-mutated"
	got2, _ := r.Table("t")
	if got2.Columns[0].Cells[0] != "1" {
		t.Error("Table did not return a copy")
	}
	if err := r.Insert("t", [][]string{{"2"}}); err != nil {
		t.Fatal(err)
	}
	got3, _ := r.Table("t")
	if got3.NumRows() != 2 {
		t.Errorf("rows after insert = %d", got3.NumRows())
	}
	if err := r.Insert("t", [][]string{{"x", "y"}}); err == nil {
		t.Error("ragged insert should fail")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "t" {
		t.Errorf("Names = %v", names)
	}
	if err := r.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drop("t"); !errors.Is(err, ErrNoTable) {
		t.Errorf("double drop = %v", err)
	}
}
