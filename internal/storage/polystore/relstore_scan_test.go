package polystore

import (
	"fmt"
	"sync"
	"testing"

	"golake/internal/table"
)

func scanTable(t *testing.T) *RelStore {
	t.Helper()
	r := NewRelStore()
	tbl, err := table.ParseCSV("orders", "id,status,total\n1,open,10\n2,closed,20\n3,open,30\n")
	if err != nil {
		t.Fatal(err)
	}
	r.Create(tbl)
	return r
}

func TestScanWhereStreamsProjectedMatches(t *testing.T) {
	r := scanTable(t)
	cur, err := r.ScanWhere("orders",
		[]CellPredicate{{Column: "status", Match: func(c string) bool { return c == "open" }}},
		[]string{"total"})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []string
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		if len(row) != 1 {
			t.Fatalf("row = %v, want 1 projected cell", row)
		}
		got = append(got, row[0])
	}
	if fmt.Sprint(got) != "[10 30]" {
		t.Errorf("scanned %v, want [10 30]", got)
	}
}

func TestScanWhereMissingPredicateColumnMatchesNothing(t *testing.T) {
	r := scanTable(t)
	cur, err := r.ScanWhere("orders",
		[]CellPredicate{{Column: "ghost", Match: func(string) bool { return true }}},
		[]string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, ok := cur.Next(); ok {
		t.Error("predicate on a missing column must match nothing")
	}
	if cols := cur.Columns(); len(cols) != 1 || cols[0] != "id" {
		t.Errorf("empty cursor header = %v, want the projection", cols)
	}
}

// TestScanWhereSnapshotUnderConcurrentInsert pins the cursor's
// isolation contract: a scan opened before concurrent Inserts sees
// exactly the rows present at open time, and never tears mid-row.
func TestScanWhereSnapshotUnderConcurrentInsert(t *testing.T) {
	r := scanTable(t)
	cur, err := r.ScanWhere("orders", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := r.Insert("orders", [][]string{{fmt.Sprint(100 + i), "new", "0"}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	n := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	wg.Wait()
	if n != 3 {
		t.Errorf("scan saw %d rows, want the 3-row snapshot", n)
	}
}
