package polystore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"golake/internal/storage/docstore"
	"golake/internal/storage/filestore"
	"golake/internal/storage/graphstore"
	"golake/internal/storage/kvstore"
	"golake/internal/table"
)

// Target identifies one member store of the polystore.
type Target string

// The member stores.
const (
	TargetRelational Target = "relational"
	TargetDocument   Target = "document"
	TargetGraph      Target = "graph"
	TargetFile       Target = "file"
)

// Placement records where an ingested object landed.
type Placement struct {
	Path   string
	Format filestore.Format
	Target Target
	// TableName / Collection is set when the object was parsed into a
	// model store.
	TableName  string
	Collection string
}

// Poly bundles the member stores and routes ingested objects. All raw
// bytes always land in Files (the lake keeps originals); parsed forms
// go to the model store chosen by Route or by explicit override —
// exactly Constance's strategy (Sec. 4.3).
type Poly struct {
	Files *filestore.Store
	KV    *kvstore.Store
	Docs  *docstore.Store
	Graph *graphstore.Graph
	Rel   *RelStore

	mu         sync.RWMutex
	placements map[string]Placement
}

// New assembles a polystore over a file store rooted at dir.
func New(dir string) (*Poly, error) {
	fs, err := filestore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Poly{
		Files:      fs,
		KV:         kvstore.New(),
		Docs:       docstore.New(),
		Graph:      graphstore.New(),
		Rel:        NewRelStore(),
		placements: map[string]Placement{},
	}, nil
}

// Route picks the model store for a detected format: tabular data goes
// relational, JSON documents go to the document store, everything else
// stays file-only.
func Route(f filestore.Format) Target {
	switch f {
	case filestore.FormatCSV:
		return TargetRelational
	case filestore.FormatJSON, filestore.FormatJSONL:
		return TargetDocument
	default:
		return TargetFile
	}
}

// Ingest stores the raw object and routes its parsed form to the model
// store chosen by Route. Use IngestAs to override the target.
func (p *Poly) Ingest(path string, data []byte) (Placement, error) {
	info, err := p.Files.Put(path, data)
	if err != nil {
		return Placement{}, err
	}
	return p.place(path, data, info.Format, Route(info.Format))
}

// IngestAs stores the raw object and forces the given target, the
// user-override Constance exposes in its UI.
func (p *Poly) IngestAs(path string, data []byte, target Target) (Placement, error) {
	info, err := p.Files.Put(path, data)
	if err != nil {
		return Placement{}, err
	}
	return p.place(path, data, info.Format, target)
}

func (p *Poly) place(path string, data []byte, format filestore.Format, target Target) (Placement, error) {
	pl := Placement{Path: path, Format: format, Target: TargetFile}
	switch target {
	case TargetRelational:
		t, err := table.ReadCSV(tableName(path), bytes.NewReader(data))
		if err != nil {
			// Unparseable: degrade to file-only, the lake keeps the raw
			// bytes regardless.
			break
		}
		t.Meta["source"] = path
		p.Rel.Create(t)
		pl.Target = TargetRelational
		pl.TableName = t.Name
	case TargetDocument:
		coll := tableName(path)
		n, err := p.ingestJSONDocs(coll, data, format)
		if err != nil || n == 0 {
			break
		}
		pl.Target = TargetDocument
		pl.Collection = coll
	case TargetGraph:
		// Graph ingestion expects JSON {"nodes":[...], "edges":[...]}.
		if err := p.ingestGraphJSON(data); err != nil {
			break
		}
		pl.Target = TargetGraph
	}
	p.mu.Lock()
	p.placements[path] = pl
	p.mu.Unlock()
	return pl, nil
}

func (p *Poly) ingestJSONDocs(coll string, data []byte, format filestore.Format) (int, error) {
	c := p.Docs.Collection(coll)
	if format == filestore.FormatJSONL {
		n := 0
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if _, err := c.InsertJSON([]byte(line)); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var docs []docstore.Doc
		if err := json.Unmarshal(trimmed, &docs); err != nil {
			return 0, err
		}
		for _, d := range docs {
			c.Insert(d)
		}
		return len(docs), nil
	}
	if _, err := c.InsertJSON(trimmed); err != nil {
		return 0, err
	}
	return 1, nil
}

type graphDoc struct {
	Nodes []struct {
		ID    string         `json:"id"`
		Label string         `json:"label"`
		Props map[string]any `json:"props"`
	} `json:"nodes"`
	Edges []struct {
		From  string         `json:"from"`
		To    string         `json:"to"`
		Label string         `json:"label"`
		Props map[string]any `json:"props"`
	} `json:"edges"`
}

func (p *Poly) ingestGraphJSON(data []byte) error {
	var gd graphDoc
	if err := json.Unmarshal(data, &gd); err != nil {
		return fmt.Errorf("polystore: graph json: %w", err)
	}
	if len(gd.Nodes) == 0 {
		return fmt.Errorf("polystore: graph json has no nodes")
	}
	for _, n := range gd.Nodes {
		p.Graph.UpsertNode(n.ID, n.Label, n.Props)
	}
	for _, e := range gd.Edges {
		if _, err := p.Graph.AddEdge(e.From, e.To, e.Label, e.Props); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes an ingested object everywhere it landed: the raw
// bytes, any parsed model-store form, and the placement record. Graph
// placements keep their merged nodes (the graph has no per-source
// attribution to unmerge). Removing an unknown path returns
// filestore.ErrNotFound.
func (p *Poly) Remove(path string) error {
	p.mu.Lock()
	pl, ok := p.placements[path]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", filestore.ErrNotFound, path)
	}
	delete(p.placements, path)
	p.mu.Unlock()
	switch pl.Target {
	case TargetRelational:
		_ = p.Rel.Drop(pl.TableName)
	case TargetDocument:
		_ = p.Docs.Drop(pl.Collection)
	}
	return p.Files.Delete(path)
}

// PlacementOf returns the placement recorded for a path.
func (p *Poly) PlacementOf(path string) (Placement, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	pl, ok := p.placements[path]
	return pl, ok
}

// Placements returns all placements sorted by path.
func (p *Poly) Placements() []Placement {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Placement, 0, len(p.placements))
	for _, pl := range p.placements {
		out = append(out, pl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// DerivedName is the model-store name an ingested path will take:
// "raw/orders.csv" -> "orders". Exposed so callers can detect name
// collisions between distinct paths before ingesting.
func DerivedName(path string) string { return tableName(path) }

// tableName derives a model-store name from an object path:
// "raw/orders.csv" -> "orders".
func tableName(path string) string {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndex(base, "."); i > 0 {
		base = base[:i]
	}
	return base
}
