// Package docstore is an in-process JSON document store, stand-in for
// the MongoDB sink the surveyed polystore lakes (Constance, CoreDB,
// Squerall) route semi-structured data to (Sec. 4.2/4.3). Documents are
// schemaless JSON objects grouped into named collections; queries are
// conjunctive field filters over dotted paths, optionally accelerated
// by hash indexes on equality predicates.
package docstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Errors returned by the store.
var (
	ErrNotFound     = errors.New("docstore: document not found")
	ErrNoCollection = errors.New("docstore: no such collection")
)

// Doc is a parsed JSON object.
type Doc map[string]any

// ID returns the document's "_id" field as a string.
func (d Doc) ID() string {
	id, _ := d["_id"].(string)
	return id
}

// Op is a filter comparison operator.
type Op int

// Supported comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpGt
	OpGte
	OpLt
	OpLte
	OpExists
	OpContains // substring match on string fields
)

// Filter is one predicate on a dotted field path.
type Filter struct {
	Path  string
	Op    Op
	Value any
}

// Eq is shorthand for an equality filter.
func Eq(path string, value any) Filter { return Filter{Path: path, Op: OpEq, Value: value} }

// Collection is a set of documents with optional hash indexes.
type Collection struct {
	name string

	mu      sync.RWMutex
	docs    map[string]Doc
	indexes map[string]map[string][]string // path -> canonical value -> doc IDs
	autoID  int
}

// Store holds named collections.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// New creates an empty document store.
func New() *Store { return &Store{collections: map[string]*Collection{}} }

// Collection returns (creating if needed) the named collection.
func (s *Store) Collection(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	if !ok {
		c = &Collection{name: name, docs: map[string]Doc{}, indexes: map[string]map[string][]string{}}
		s.collections[name] = c
	}
	return c
}

// Collections lists collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.collections))
	for n := range s.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Drop removes a collection; dropping a missing one returns
// ErrNoCollection.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.collections[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoCollection, name)
	}
	delete(s.collections, name)
	return nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Insert adds a document. If it has no "_id", one is assigned.
// The returned string is the document ID.
func (c *Collection) Insert(doc Doc) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := doc.ID()
	if id == "" {
		c.autoID++
		id = fmt.Sprintf("%s-%d", c.name, c.autoID)
		doc["_id"] = id
	}
	if old, ok := c.docs[id]; ok {
		c.unindexLocked(id, old)
	}
	c.docs[id] = doc
	c.indexLocked(id, doc)
	return id
}

// InsertJSON parses and inserts a JSON object.
func (c *Collection) InsertJSON(raw []byte) (string, error) {
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return "", fmt.Errorf("docstore: insert json: %w", err)
	}
	return c.Insert(doc), nil
}

// Get returns the document with the given ID.
func (c *Collection) Get(id string) (Doc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	return d, nil
}

// Delete removes a document by ID.
func (c *Collection) Delete(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	c.unindexLocked(id, d)
	delete(c.docs, id)
	return nil
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// CreateIndex builds a hash index on a dotted path; equality filters on
// that path use it instead of a full scan.
func (c *Collection) CreateIndex(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[path]; ok {
		return
	}
	idx := map[string][]string{}
	for id, d := range c.docs {
		if v, ok := lookup(d, path); ok {
			k := canon(v)
			idx[k] = append(idx[k], id)
		}
	}
	c.indexes[path] = idx
}

func (c *Collection) indexLocked(id string, d Doc) {
	for path, idx := range c.indexes {
		if v, ok := lookup(d, path); ok {
			k := canon(v)
			idx[k] = append(idx[k], id)
		}
	}
}

func (c *Collection) unindexLocked(id string, d Doc) {
	for path, idx := range c.indexes {
		if v, ok := lookup(d, path); ok {
			k := canon(v)
			list := idx[k]
			for i, x := range list {
				if x == id {
					idx[k] = append(list[:i], list[i+1:]...)
					break
				}
			}
		}
	}
}

// Find returns all documents satisfying every filter, ordered by ID.
func (c *Collection) Find(filters ...Filter) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Use an index for the first indexed equality filter, if any.
	var candidates []string
	usedIndex := false
	for _, f := range filters {
		if f.Op != OpEq {
			continue
		}
		if idx, ok := c.indexes[f.Path]; ok {
			candidates = append([]string(nil), idx[canon(f.Value)]...)
			usedIndex = true
			break
		}
	}
	if !usedIndex {
		candidates = make([]string, 0, len(c.docs))
		for id := range c.docs {
			candidates = append(candidates, id)
		}
	}
	var out []Doc
	for _, id := range candidates {
		d, ok := c.docs[id]
		if !ok {
			continue
		}
		if matchesAll(d, filters) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Count returns the number of documents matching the filters.
func (c *Collection) Count(filters ...Filter) int { return len(c.Find(filters...)) }

// All returns every document, ordered by ID.
func (c *Collection) All() []Doc { return c.Find() }

func matchesAll(d Doc, filters []Filter) bool {
	for _, f := range filters {
		if !matches(d, f) {
			return false
		}
	}
	return true
}

func matches(d Doc, f Filter) bool {
	v, ok := lookup(d, f.Path)
	if f.Op == OpExists {
		want, _ := f.Value.(bool)
		return ok == want || (f.Value == nil && ok)
	}
	if !ok {
		return false
	}
	switch f.Op {
	case OpEq:
		return canon(v) == canon(f.Value)
	case OpNe:
		return canon(v) != canon(f.Value)
	case OpContains:
		s, ok1 := v.(string)
		sub, ok2 := f.Value.(string)
		return ok1 && ok2 && strings.Contains(s, sub)
	case OpGt, OpGte, OpLt, OpLte:
		a, okA := toFloat(v)
		b, okB := toFloat(f.Value)
		if !okA || !okB {
			// fall back to string comparison
			sa, sb := canon(v), canon(f.Value)
			switch f.Op {
			case OpGt:
				return sa > sb
			case OpGte:
				return sa >= sb
			case OpLt:
				return sa < sb
			default:
				return sa <= sb
			}
		}
		switch f.Op {
		case OpGt:
			return a > b
		case OpGte:
			return a >= b
		case OpLt:
			return a < b
		default:
			return a <= b
		}
	}
	return false
}

// lookup resolves a dotted path ("a.b.c") inside nested maps; array
// elements are addressed by numeric segments.
func lookup(d Doc, path string) (any, bool) {
	var cur any = map[string]any(d)
	for _, seg := range strings.Split(path, ".") {
		switch node := cur.(type) {
		case map[string]any:
			v, ok := node[seg]
			if !ok {
				return nil, false
			}
			cur = v
		case Doc:
			v, ok := node[seg]
			if !ok {
				return nil, false
			}
			cur = v
		case []any:
			i, err := strconv.Atoi(seg)
			if err != nil || i < 0 || i >= len(node) {
				return nil, false
			}
			cur = node[i]
		default:
			return nil, false
		}
	}
	return cur, true
}

// canon renders a value canonically so that json float64(1) and int(1)
// compare equal.
func canon(v any) string {
	if f, ok := toFloat(v); ok {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case nil:
		return "<nil>"
	default:
		b, _ := json.Marshal(x)
		return string(b)
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}
