package docstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestInsertGetDelete(t *testing.T) {
	s := New()
	c := s.Collection("users")
	id := c.Insert(Doc{"name": "alice", "age": 30.0})
	if id == "" {
		t.Fatal("Insert returned empty ID")
	}
	d, err := c.Get(id)
	if err != nil || d["name"] != "alice" {
		t.Fatalf("Get = %v, %v", d, err)
	}
	if err := c.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v", err)
	}
	if err := c.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
}

func TestExplicitIDUpsert(t *testing.T) {
	s := New()
	c := s.Collection("c")
	c.Insert(Doc{"_id": "x", "v": 1.0})
	c.Insert(Doc{"_id": "x", "v": 2.0})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (upsert)", c.Len())
	}
	d, _ := c.Get("x")
	if d["v"] != 2.0 {
		t.Errorf("v = %v, want 2", d["v"])
	}
}

func TestInsertJSON(t *testing.T) {
	s := New()
	c := s.Collection("j")
	id, err := c.InsertJSON([]byte(`{"kind":"sensor","reading":{"temp":21.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := c.Get(id)
	if v, ok := lookup(d, "reading.temp"); !ok || v != 21.5 {
		t.Errorf("nested lookup = %v, %v", v, ok)
	}
	if _, err := c.InsertJSON([]byte(`not json`)); err == nil {
		t.Error("invalid json should fail")
	}
}

func TestFindFilters(t *testing.T) {
	s := New()
	c := s.Collection("readings")
	for i := 0; i < 10; i++ {
		c.Insert(Doc{"_id": fmt.Sprintf("r%02d", i), "v": float64(i), "tag": map[string]any{"site": fmt.Sprintf("s%d", i%2)}})
	}
	if got := c.Find(Eq("tag.site", "s0")); len(got) != 5 {
		t.Errorf("Eq find = %d docs, want 5", len(got))
	}
	if got := c.Find(Filter{Path: "v", Op: OpGte, Value: 7.0}); len(got) != 3 {
		t.Errorf("Gte find = %d docs, want 3", len(got))
	}
	if got := c.Find(Eq("tag.site", "s1"), Filter{Path: "v", Op: OpLt, Value: 4.0}); len(got) != 2 {
		t.Errorf("conjunctive find = %d docs, want 2", len(got))
	}
	if got := c.Find(Filter{Path: "missing", Op: OpExists, Value: false}); len(got) != 10 {
		t.Errorf("not-exists find = %d docs, want 10", len(got))
	}
	if got := c.Find(Filter{Path: "v", Op: OpExists, Value: true}); len(got) != 10 {
		t.Errorf("exists find = %d, want 10", len(got))
	}
	if got := c.Count(Filter{Path: "v", Op: OpNe, Value: 3.0}); got != 9 {
		t.Errorf("Ne count = %d, want 9", got)
	}
}

func TestContainsFilter(t *testing.T) {
	s := New()
	c := s.Collection("c")
	c.Insert(Doc{"_id": "1", "desc": "sensor data from berlin plant"})
	c.Insert(Doc{"_id": "2", "desc": "sales figures"})
	got := c.Find(Filter{Path: "desc", Op: OpContains, Value: "berlin"})
	if len(got) != 1 || got[0].ID() != "1" {
		t.Errorf("Contains = %v", got)
	}
}

func TestIndexEquivalentToScan(t *testing.T) {
	s := New()
	c := s.Collection("idx")
	for i := 0; i < 100; i++ {
		c.Insert(Doc{"_id": fmt.Sprintf("d%03d", i), "site": fmt.Sprintf("s%d", i%7), "v": float64(i)})
	}
	scan := c.Find(Eq("site", "s3"))
	c.CreateIndex("site")
	indexed := c.Find(Eq("site", "s3"))
	if len(scan) != len(indexed) {
		t.Fatalf("index result %d != scan result %d", len(indexed), len(scan))
	}
	for i := range scan {
		if scan[i].ID() != indexed[i].ID() {
			t.Fatalf("result %d differs: %s vs %s", i, scan[i].ID(), indexed[i].ID())
		}
	}
	// Index stays correct under insert and delete.
	c.Insert(Doc{"_id": "new", "site": "s3"})
	if got := c.Find(Eq("site", "s3")); len(got) != len(scan)+1 {
		t.Errorf("index after insert = %d, want %d", len(got), len(scan)+1)
	}
	_ = c.Delete("new")
	if got := c.Find(Eq("site", "s3")); len(got) != len(scan) {
		t.Errorf("index after delete = %d, want %d", len(got), len(scan))
	}
}

func TestIntFloatEquality(t *testing.T) {
	s := New()
	c := s.Collection("n")
	c.Insert(Doc{"_id": "a", "v": 1.0}) // JSON numbers decode as float64
	if got := c.Find(Eq("v", 1)); len(got) != 1 {
		t.Errorf("int filter should match float64 value, got %d", len(got))
	}
}

func TestArrayPathLookup(t *testing.T) {
	s := New()
	c := s.Collection("a")
	id, err := c.InsertJSON([]byte(`{"tags":["x","y","z"]}`))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := c.Get(id)
	if v, ok := lookup(d, "tags.1"); !ok || v != "y" {
		t.Errorf("array lookup = %v, %v", v, ok)
	}
	if _, ok := lookup(d, "tags.9"); ok {
		t.Error("out-of-range array lookup should fail")
	}
	if _, ok := lookup(d, "tags.x"); ok {
		t.Error("non-numeric array segment should fail")
	}
}

func TestCollectionsAndDrop(t *testing.T) {
	s := New()
	s.Collection("b")
	s.Collection("a")
	got := s.Collections()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Collections = %v", got)
	}
	if err := s.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("a"); !errors.Is(err, ErrNoCollection) {
		t.Errorf("Drop missing = %v", err)
	}
}

// Property: Find(Eq) with an index equals Find(Eq) without, for random
// documents.
func TestIndexScanEquivalenceProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		s := New()
		plain := s.Collection("plain")
		indexed := s.Collection("indexed")
		indexed.CreateIndex("k")
		for i, v := range vals {
			d1 := Doc{"_id": fmt.Sprintf("d%d", i), "k": float64(v % 8)}
			d2 := Doc{"_id": fmt.Sprintf("d%d", i), "k": float64(v % 8)}
			plain.Insert(d1)
			indexed.Insert(d2)
		}
		for k := 0; k < 8; k++ {
			a := plain.Find(Eq("k", float64(k)))
			b := indexed.Find(Eq("k", float64(k)))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].ID() != b[i].ID() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
