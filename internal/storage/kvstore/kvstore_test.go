package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	got, err := s.Get("a")
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	s.Delete("a")
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete err = %v, want ErrNotFound", err)
	}
	if s.Has("a") {
		t.Error("Has after delete = true")
	}
	// Missing key.
	if _, err := s.Get("zzz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing err = %v", err)
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	s := New()
	s.Put("k", []byte("v1"))
	s.Flush()
	s.Put("k", []byte("v2"))
	got, _ := s.Get("k")
	if string(got) != "v2" {
		t.Errorf("Get = %q, want v2 (memtable over segment)", got)
	}
	s.Flush()
	got, _ = s.Get("k")
	if string(got) != "v2" {
		t.Errorf("Get = %q, want v2 (newer segment wins)", got)
	}
}

func TestTombstoneShadowsSegment(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	s.Flush()
	s.Delete("k")
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("tombstone in memtable should shadow segment: %v", err)
	}
	s.Flush()
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("tombstone in newer segment should shadow: %v", err)
	}
	s.Compact()
	if s.Segments() > 1 {
		t.Errorf("Segments after compact = %d", s.Segments())
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("compact resurrected deleted key: %v", err)
	}
}

func TestScanOrderedAndRange(t *testing.T) {
	s := New()
	keys := []string{"b", "a", "d", "c", "e"}
	for _, k := range keys {
		s.Put(k, []byte(k))
	}
	s.Flush()
	s.Put("f", []byte("f")) // in memtable
	all := s.Scan("", "")
	if len(all) != 6 {
		t.Fatalf("Scan all = %d entries, want 6", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key < all[j].Key }) {
		t.Error("Scan result not sorted")
	}
	mid := s.Scan("b", "e")
	if len(mid) != 3 || mid[0].Key != "b" || mid[2].Key != "d" {
		t.Errorf("Scan(b,e) = %v", mid)
	}
}

func TestScanPrefix(t *testing.T) {
	s := New()
	s.Put("dataset/1/meta", []byte("m1"))
	s.Put("dataset/1/prov", []byte("p1"))
	s.Put("dataset/2/meta", []byte("m2"))
	s.Put("other/x", []byte("o"))
	got := s.ScanPrefix("dataset/1/")
	if len(got) != 2 {
		t.Fatalf("ScanPrefix = %d entries, want 2", len(got))
	}
	if got[0].Key != "dataset/1/meta" {
		t.Errorf("first = %q", got[0].Key)
	}
	if keys := s.Keys("dataset/"); len(keys) != 3 {
		t.Errorf("Keys(dataset/) = %v", keys)
	}
	// 0xff prefix edge case: unbounded end.
	s.Put("\xff\xff", []byte("hi"))
	if got := s.ScanPrefix("\xff\xff"); len(got) != 1 {
		t.Errorf("ScanPrefix(0xff) = %v", got)
	}
}

func TestAutoFlushAtLimit(t *testing.T) {
	s := NewWithLimit(10)
	for i := 0; i < 25; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)})
	}
	if s.Segments() < 2 {
		t.Errorf("Segments = %d, want >= 2 after 25 puts with limit 10", s.Segments())
	}
	for i := 0; i < 25; i++ {
		if !s.Has(fmt.Sprintf("k%02d", i)) {
			t.Fatalf("key k%02d lost after auto flush", i)
		}
	}
	if s.Len() != 25 {
		t.Errorf("Len = %d, want 25", s.Len())
	}
}

func TestCompactEmpties(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	s.Delete("a")
	s.Compact()
	if s.Segments() != 0 {
		t.Errorf("Segments after compacting everything away = %d, want 0", s.Segments())
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	v := []byte("abc")
	s.Put("k", v)
	v[0] = 'X'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Error("Put did not copy the value")
	}
	got[0] = 'Y'
	got2, _ := s.Get("k")
	if string(got2) != "abc" {
		t.Error("Get did not copy the value")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewWithLimit(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d/k%d", g, i)
				s.Put(k, []byte(k))
				if _, err := s.Get(k); err != nil {
					t.Errorf("Get(%s): %v", k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", s.Len())
	}
}

// Property: the store behaves like a map under arbitrary sequences of
// put/delete/flush/compact.
func TestStoreMatchesMapModel(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint8
	}
	f := func(ops []op) bool {
		s := NewWithLimit(8)
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key%d", o.Key%16)
			switch o.Kind % 4 {
			case 0, 1:
				v := fmt.Sprintf("v%d", o.Value)
				s.Put(k, []byte(v))
				model[k] = v
			case 2:
				s.Delete(k)
				delete(model, k)
			case 3:
				if o.Value%2 == 0 {
					s.Flush()
				} else {
					s.Compact()
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, err := s.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJoinKey(t *testing.T) {
	if got := JoinKey("dataset", "42", "meta"); got != "dataset/42/meta" {
		t.Errorf("JoinKey = %q", got)
	}
}
