// Package kvstore is an ordered, in-process key-value store modeled on
// the LSM design of Bigtable, the substrate of Google's GOODS catalog
// (Sec. 4.2/6.1.1 of the survey): writes land in a sorted memtable,
// which flushes into immutable sorted segments; reads consult the
// memtable first, then segments newest-to-oldest; deletes write
// tombstones; Compact merges all levels. Ordered prefix and range scans
// are the operations the catalog and provenance layers rely on.
package kvstore

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get for missing or deleted keys.
var ErrNotFound = errors.New("kvstore: key not found")

// DefaultMemtableLimit is the number of entries after which a Put
// triggers an automatic flush into a segment.
const DefaultMemtableLimit = 4096

type entry struct {
	key       string
	value     []byte
	tombstone bool
}

// segment is an immutable sorted run of entries.
type segment struct {
	entries []entry // sorted by key, unique keys
}

func (s *segment) get(key string) (entry, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key >= key })
	if i < len(s.entries) && s.entries[i].key == key {
		return s.entries[i], true
	}
	return entry{}, false
}

// Store is a concurrency-safe ordered KV store.
type Store struct {
	mu            sync.RWMutex
	mem           map[string]entry
	segments      []*segment // oldest first
	memtableLimit int
}

// New creates a store with the default memtable limit.
func New() *Store { return NewWithLimit(DefaultMemtableLimit) }

// NewWithLimit creates a store that flushes the memtable after limit
// entries (limit <= 0 means DefaultMemtableLimit).
func NewWithLimit(limit int) *Store {
	if limit <= 0 {
		limit = DefaultMemtableLimit
	}
	return &Store{mem: map[string]entry{}, memtableLimit: limit}
}

// Put stores a key-value pair. The value slice is copied.
func (s *Store) Put(key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = entry{key: key, value: v}
	if len(s.mem) >= s.memtableLimit {
		s.flushLocked()
	}
}

// Delete removes a key by writing a tombstone. Deleting a missing key
// is a no-op (matching Bigtable semantics).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = entry{key: key, tombstone: true}
	if len(s.mem) >= s.memtableLimit {
		s.flushLocked()
	}
}

// Get returns the value for key or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.mem[key]; ok {
		if e.tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	for i := len(s.segments) - 1; i >= 0; i-- {
		if e, ok := s.segments[i].get(key); ok {
			if e.tombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), e.value...), nil
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	_, err := s.Get(key)
	return err == nil
}

// Flush forces the memtable into a new immutable segment.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Store) flushLocked() {
	if len(s.mem) == 0 {
		return
	}
	entries := make([]entry, 0, len(s.mem))
	for _, e := range s.mem {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	s.segments = append(s.segments, &segment{entries: entries})
	s.mem = map[string]entry{}
}

// Compact merges all segments and the memtable into a single segment,
// dropping tombstones and shadowed versions.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	merged := map[string]entry{}
	for _, seg := range s.segments { // oldest first; later wins
		for _, e := range seg.entries {
			merged[e.key] = e
		}
	}
	entries := make([]entry, 0, len(merged))
	for _, e := range merged {
		if !e.tombstone {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	if len(entries) == 0 {
		s.segments = nil
		return
	}
	s.segments = []*segment{{entries: entries}}
}

// Segments returns the current number of immutable segments.
func (s *Store) Segments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segments)
}

// KV is one scan result.
type KV struct {
	Key   string
	Value []byte
}

// Scan returns all live entries with start <= key < end (end == ""
// means unbounded), in ascending key order.
func (s *Store) Scan(start, end string) []KV {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Merge memtable and segments; newest version wins.
	live := map[string]entry{}
	for _, seg := range s.segments {
		for _, e := range seg.entries {
			if inRange(e.key, start, end) {
				live[e.key] = e
			}
		}
	}
	for k, e := range s.mem {
		if inRange(k, start, end) {
			live[k] = e
		}
	}
	out := make([]KV, 0, len(live))
	for _, e := range live {
		if !e.tombstone {
			out = append(out, KV{Key: e.key, Value: append([]byte(nil), e.value...)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ScanPrefix returns all live entries whose key has the given prefix.
func (s *Store) ScanPrefix(prefix string) []KV {
	if prefix == "" {
		return s.Scan("", "")
	}
	return s.Scan(prefix, prefixEnd(prefix))
}

// Len returns the number of live keys (requires a scan).
func (s *Store) Len() int { return len(s.Scan("", "")) }

func inRange(key, start, end string) bool {
	if key < start {
		return false
	}
	if end != "" && key >= end {
		return false
	}
	return true
}

// prefixEnd returns the smallest string greater than every string with
// the given prefix.
func prefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return "" // all 0xff: unbounded
}

// Keys returns all live keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	kvs := s.ScanPrefix(prefix)
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.Key
	}
	return out
}

// JoinKey composes a multi-part key with '/' separators; the convention
// used by the catalog ("dataset/<id>/meta" etc.).
func JoinKey(parts ...string) string { return strings.Join(parts, "/") }
