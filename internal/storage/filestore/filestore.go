// Package filestore is the lake's raw-file storage tier: a
// directory-backed object store with a format registry, stand-in for the
// HDFS/Azure-Data-Lake-Store file systems the surveyed lakes use
// (Sec. 4.1). Objects are immutable byte blobs addressed by a
// slash-separated logical path; the store records size, a FNV-64a
// checksum and a detected format for every object, which the ingestion
// tier reads instead of re-sniffing files.
package filestore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Format is a coarse file-format label produced by detection.
type Format string

// Formats recognized by the registry. Unknown content maps to
// FormatBinary or FormatText depending on whether it looks like UTF-8
// text.
const (
	FormatCSV    Format = "csv"
	FormatJSON   Format = "json"
	FormatJSONL  Format = "jsonl"
	FormatXML    Format = "xml"
	FormatLog    Format = "log"
	FormatText   Format = "text"
	FormatBinary Format = "binary"
)

// ErrNotFound is returned for missing objects.
var ErrNotFound = errors.New("filestore: object not found")

// PersistDir is the reserved subdirectory name where a lake keeps its
// durability files; the store refuses object paths under it and skips
// it when recovering metadata.
const PersistDir = ".golake"

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	Path     string
	Size     int64
	Checksum uint64
	Format   Format
	Stored   time.Time
}

// Store is a concurrency-safe object store rooted at a directory.
type Store struct {
	root string

	mu   sync.RWMutex
	meta map[string]ObjectInfo
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filestore: open %s: %w", dir, err)
	}
	s := &Store{root: dir, meta: map[string]ObjectInfo{}}
	// Recover metadata for any pre-existing objects. The reserved
	// PersistDir subdirectory holds the lake's durability files (WAL,
	// snapshot), not objects, and is never walked.
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == PersistDir && p != dir {
				return filepath.SkipDir
			}
			return nil
		}
		rel, relErr := filepath.Rel(dir, p)
		if relErr != nil {
			return relErr
		}
		data, readErr := os.ReadFile(p)
		if readErr != nil {
			return readErr
		}
		logical := filepath.ToSlash(rel)
		s.meta[logical] = ObjectInfo{
			Path:     logical,
			Size:     int64(len(data)),
			Checksum: checksum(data),
			Format:   Detect(logical, data),
			Stored:   info.ModTime(),
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("filestore: recover %s: %w", dir, err)
	}
	return s, nil
}

// OpenMemory opens a store in a fresh temporary directory; callers own
// cleanup via os.RemoveAll(Root()). Convenient for tests and examples.
func OpenMemory() (*Store, error) {
	dir, err := os.MkdirTemp("", "golake-filestore-*")
	if err != nil {
		return nil, fmt.Errorf("filestore: tempdir: %w", err)
	}
	return Open(dir)
}

// Root returns the backing directory.
func (s *Store) Root() string { return s.root }

// Put stores data under the logical path, overwriting any previous
// object, and returns its info.
func (s *Store) Put(path string, data []byte) (ObjectInfo, error) {
	clean, err := s.cleanPath(path)
	if err != nil {
		return ObjectInfo{}, err
	}
	full := filepath.Join(s.root, filepath.FromSlash(clean))
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return ObjectInfo{}, fmt.Errorf("filestore: put %s: %w", path, err)
	}
	if err := os.WriteFile(full, data, 0o644); err != nil {
		return ObjectInfo{}, fmt.Errorf("filestore: put %s: %w", path, err)
	}
	info := ObjectInfo{
		Path:     clean,
		Size:     int64(len(data)),
		Checksum: checksum(data),
		Format:   Detect(clean, data),
		Stored:   time.Now(),
	}
	s.mu.Lock()
	s.meta[clean] = info
	s.mu.Unlock()
	return info, nil
}

// Get returns the object bytes.
func (s *Store) Get(path string) ([]byte, error) {
	clean, err := s.cleanPath(path)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	_, ok := s.meta[clean]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	data, err := os.ReadFile(filepath.Join(s.root, filepath.FromSlash(clean)))
	if err != nil {
		return nil, fmt.Errorf("filestore: get %s: %w", path, err)
	}
	return data, nil
}

// Stat returns the recorded info for an object.
func (s *Store) Stat(path string) (ObjectInfo, error) {
	clean, err := s.cleanPath(path)
	if err != nil {
		return ObjectInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.meta[clean]
	if !ok {
		return ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return info, nil
}

// Delete removes an object; deleting a missing object returns
// ErrNotFound.
func (s *Store) Delete(path string) error {
	clean, err := s.cleanPath(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.meta[clean]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(s.meta, clean)
	if err := os.Remove(filepath.Join(s.root, filepath.FromSlash(clean))); err != nil {
		return fmt.Errorf("filestore: delete %s: %w", path, err)
	}
	return nil
}

// List returns the infos of all objects whose path has the given prefix,
// sorted by path.
func (s *Store) List(prefix string) []ObjectInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ObjectInfo
	for p, info := range s.meta {
		if strings.HasPrefix(p, prefix) {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.meta)
}

func (s *Store) cleanPath(p string) (string, error) {
	if strings.Contains(p, "..") {
		return "", fmt.Errorf("filestore: invalid path %q", p)
	}
	clean := filepath.ToSlash(filepath.Clean("/" + p))[1:]
	if clean == "" || clean == "." {
		return "", fmt.Errorf("filestore: invalid path %q", p)
	}
	if clean == PersistDir || strings.HasPrefix(clean, PersistDir+"/") {
		return "", fmt.Errorf("filestore: path %q is reserved for lake persistence", p)
	}
	return clean, nil
}

func checksum(data []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(data)
	return h.Sum64()
}
