package filestore

import (
	"errors"
	"os"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetStatDelete(t *testing.T) {
	s := newStore(t)
	data := []byte("a,b\n1,2\n3,4\n")
	info, err := s.Put("raw/orders.csv", data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if info.Format != FormatCSV {
		t.Errorf("Format = %v, want csv", info.Format)
	}
	if info.Size != int64(len(data)) {
		t.Errorf("Size = %d, want %d", info.Size, len(data))
	}
	got, err := s.Get("raw/orders.csv")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != string(data) {
		t.Errorf("Get = %q, want %q", got, data)
	}
	st, err := s.Stat("raw/orders.csv")
	if err != nil || st.Checksum != info.Checksum {
		t.Errorf("Stat = %+v err=%v", st, err)
	}
	if err := s.Delete("raw/orders.csv"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("raw/orders.csv"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete err = %v, want ErrNotFound", err)
	}
	if err := s.Delete("raw/orders.csv"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete err = %v, want ErrNotFound", err)
	}
}

func TestListPrefix(t *testing.T) {
	s := newStore(t)
	for _, p := range []string{"zone-raw/a.csv", "zone-raw/b.csv", "zone-clean/c.csv"} {
		if _, err := s.Put(p, []byte("x,y\n1,2\n")); err != nil {
			t.Fatal(err)
		}
	}
	raw := s.List("zone-raw/")
	if len(raw) != 2 {
		t.Fatalf("List(zone-raw/) = %d objects, want 2", len(raw))
	}
	if raw[0].Path != "zone-raw/a.csv" || raw[1].Path != "zone-raw/b.csv" {
		t.Errorf("List order = %v", []string{raw[0].Path, raw[1].Path})
	}
	if all := s.List(""); len(all) != 3 {
		t.Errorf("List(all) = %d, want 3", len(all))
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestRecoverExistingObjects(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("x/data.json", []byte(`{"k":1}`)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Stat("x/data.json")
	if err != nil {
		t.Fatalf("Stat after reopen: %v", err)
	}
	if info.Format != FormatJSON {
		t.Errorf("recovered Format = %v, want json", info.Format)
	}
}

func TestInvalidPaths(t *testing.T) {
	s := newStore(t)
	for _, p := range []string{"", ".", "../escape", "a/../../b"} {
		if _, err := s.Put(p, []byte("x")); err == nil {
			t.Errorf("Put(%q) should fail", p)
		}
	}
}

func TestPutOverwrite(t *testing.T) {
	s := newStore(t)
	if _, err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	info, err := s.Put("k", []byte("v2-longer"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 9 {
		t.Errorf("overwrite Size = %d, want 9", info.Size)
	}
	got, _ := s.Get("k")
	if string(got) != "v2-longer" {
		t.Errorf("Get after overwrite = %q", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len after overwrite = %d, want 1", s.Len())
	}
}

func TestDetectFormats(t *testing.T) {
	cases := []struct {
		name string
		data string
		want Format
	}{
		{"d.csv", "a,b\n1,2", FormatCSV},
		{"d.tsv", "a\tb", FormatCSV},
		{"d.json", `{"a":1}`, FormatJSON},
		{"d.json", "{\"a\":1}\n{\"a\":2}\n", FormatJSONL},
		{"d.jsonl", `{"a":1}`, FormatJSONL},
		{"d.xml", "<root/>", FormatXML},
		{"d.log", "[INFO] started", FormatLog},
		{"d.txt", "hello", FormatText},
		{"noext", "a,b,c\n1,2,3\n4,5,6\n", FormatCSV},
		{"noext", `{"k": [1,2]}`, FormatJSON},
		{"noext", "2021-01-01 INFO boot\n2021-01-02 ERROR crash\n", FormatLog},
		{"noext", "<?xml version=\"1.0\"?><a/>", FormatXML},
		{"noext", "free text prose", FormatText},
		{"noext", string([]byte{0xff, 0xfe, 0x00, 0x01}), FormatBinary},
		{"noext", "", FormatText},
	}
	for _, c := range cases {
		if got := Detect(c.name, []byte(c.data)); got != c.want {
			t.Errorf("Detect(%q, %q) = %v, want %v", c.name, c.data, got, c.want)
		}
	}
}

func TestOpenMemory(t *testing.T) {
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(s.Root())
	if _, err := s.Put("a", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("a"); string(got) != "b" {
		t.Errorf("Get = %q, want b", got)
	}
}

// Property: Put then Get returns the same bytes for arbitrary content.
func TestPutGetRoundTripProperty(t *testing.T) {
	s := newStore(t)
	i := 0
	f := func(data []byte) bool {
		i++
		p := "obj/" + string(rune('a'+i%26)) + "x"
		if _, err := s.Put(p, data); err != nil {
			return false
		}
		got, err := s.Get(p)
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
