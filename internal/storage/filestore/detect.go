package filestore

import (
	"encoding/json"
	"path"
	"strings"
	"unicode/utf8"
)

// Detect infers the format of an object from its path extension and,
// when the extension is ambiguous or missing, from a content sniff.
// GEMMS performs exactly this detection step before dispatching a
// format-specific metadata parser (Sec. 5.1).
func Detect(name string, data []byte) Format {
	switch strings.ToLower(path.Ext(name)) {
	case ".csv", ".tsv":
		return FormatCSV
	case ".json":
		// A .json file may actually be JSON-lines.
		if looksJSONL(data) {
			return FormatJSONL
		}
		return FormatJSON
	case ".jsonl", ".ndjson":
		return FormatJSONL
	case ".xml":
		return FormatXML
	case ".log":
		return FormatLog
	case ".txt", ".md":
		return FormatText
	}
	return sniff(data)
}

func sniff(data []byte) Format {
	if len(data) == 0 {
		return FormatText
	}
	if !utf8.Valid(data) {
		return FormatBinary
	}
	trimmed := strings.TrimSpace(string(head(data, 4096)))
	switch {
	case strings.HasPrefix(trimmed, "<?xml"), strings.HasPrefix(trimmed, "<") && strings.Contains(trimmed, ">"):
		return FormatXML
	case strings.HasPrefix(trimmed, "{") || strings.HasPrefix(trimmed, "["):
		if looksJSONL(data) {
			return FormatJSONL
		}
		if json.Valid(data) {
			return FormatJSON
		}
		return FormatText
	case looksCSV(trimmed):
		return FormatCSV
	case looksLog(trimmed):
		return FormatLog
	default:
		return FormatText
	}
}

// looksJSONL reports whether every non-empty line is a standalone JSON
// value and there is more than one such line.
func looksJSONL(data []byte) bool {
	lines := strings.Split(string(head(data, 1<<16)), "\n")
	jsonLines := 0
	for _, ln := range lines {
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		if !json.Valid([]byte(ln)) {
			return false
		}
		jsonLines++
	}
	return jsonLines > 1
}

// looksCSV requires a consistent comma count over the first few lines.
func looksCSV(s string) bool {
	lines := nonEmptyLines(s, 5)
	if len(lines) < 2 {
		return false
	}
	want := strings.Count(lines[0], ",")
	if want == 0 {
		return false
	}
	for _, ln := range lines[1:] {
		if strings.Count(ln, ",") != want {
			return false
		}
	}
	return true
}

// looksLog heuristically detects timestamped or bracketed log lines.
func looksLog(s string) bool {
	lines := nonEmptyLines(s, 5)
	if len(lines) == 0 {
		return false
	}
	hits := 0
	for _, ln := range lines {
		if strings.HasPrefix(ln, "[") || hasLevelToken(ln) {
			hits++
		}
	}
	return hits*2 >= len(lines)
}

func hasLevelToken(ln string) bool {
	for _, lvl := range []string{"INFO", "WARN", "ERROR", "DEBUG", "TRACE", "FATAL"} {
		if strings.Contains(ln, lvl) {
			return true
		}
	}
	return false
}

func nonEmptyLines(s string, max int) []string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		out = append(out, ln)
		if len(out) == max {
			break
		}
	}
	return out
}

func head(data []byte, n int) []byte {
	if len(data) < n {
		return data
	}
	return data[:n]
}
