// Package graphstore is an in-process labeled property graph, stand-in
// for the Neo4j instances the surveyed lakes use: the personal data lake
// stores flattened JSON fragments in it, HANDLE implements its metadata
// model on it, and Juneau keeps workflow/variable graphs in it
// (Sec. 4.2, 5.2, 6.1.3). It supports node/edge CRUD, label and
// property lookup, neighbor traversal, BFS shortest paths and simple
// node-edge-node pattern matching.
package graphstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by the graph.
var (
	ErrNodeNotFound = errors.New("graphstore: node not found")
	ErrEdgeNotFound = errors.New("graphstore: edge not found")
	ErrDuplicateID  = errors.New("graphstore: duplicate node id")
)

// Props is a property bag on nodes and edges.
type Props map[string]any

// clone returns a shallow copy so callers cannot mutate stored state.
func (p Props) clone() Props {
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Node is a labeled vertex.
type Node struct {
	ID    string
	Label string
	Props Props
}

// Edge is a directed labeled edge.
type Edge struct {
	ID    int
	From  string
	To    string
	Label string
	Props Props
}

// Graph is a concurrency-safe directed property graph.
type Graph struct {
	mu     sync.RWMutex
	nodes  map[string]*Node
	out    map[string][]int // node -> edge IDs
	in     map[string][]int
	edges  map[int]*Edge
	nextID int
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		nodes: map[string]*Node{},
		out:   map[string][]int{},
		in:    map[string][]int{},
		edges: map[int]*Edge{},
	}
}

// AddNode inserts a node; duplicate IDs return ErrDuplicateID.
func (g *Graph) AddNode(id, label string, props Props) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	g.nodes[id] = &Node{ID: id, Label: label, Props: props.clone()}
	return nil
}

// UpsertNode inserts or replaces a node, preserving its edges.
func (g *Graph) UpsertNode(id, label string, props Props) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nodes[id] = &Node{ID: id, Label: label, Props: props.clone()}
}

// Node returns a copy of the node.
func (g *Graph) Node(id string) (Node, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, fmt.Errorf("%w: %s", ErrNodeNotFound, id)
	}
	return Node{ID: n.ID, Label: n.Label, Props: n.Props.clone()}, nil
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.nodes[id]
	return ok
}

// SetProp sets one property on a node.
func (g *Graph) SetProp(id, key string, value any) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, id)
	}
	if n.Props == nil {
		n.Props = Props{}
	}
	n.Props[key] = value
	return nil
}

// RemoveNode deletes a node and all incident edges.
func (g *Graph) RemoveNode(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, id)
	}
	for _, eid := range append(append([]int{}, g.out[id]...), g.in[id]...) {
		g.removeEdgeLocked(eid)
	}
	delete(g.nodes, id)
	delete(g.out, id)
	delete(g.in, id)
	return nil
}

// AddEdge inserts a directed edge and returns its ID. Both endpoints
// must exist.
func (g *Graph) AddEdge(from, to, label string, props Props) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[from]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrNodeNotFound, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrNodeNotFound, to)
	}
	g.nextID++
	e := &Edge{ID: g.nextID, From: from, To: to, Label: label, Props: props.clone()}
	g.edges[e.ID] = e
	g.out[from] = append(g.out[from], e.ID)
	g.in[to] = append(g.in[to], e.ID)
	return e.ID, nil
}

// Edge returns a copy of the edge.
func (g *Graph) Edge(id int) (Edge, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	if !ok {
		return Edge{}, fmt.Errorf("%w: %d", ErrEdgeNotFound, id)
	}
	out := *e
	out.Props = e.Props.clone()
	return out, nil
}

// RemoveEdge deletes an edge by ID.
func (g *Graph) RemoveEdge(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.edges[id]; !ok {
		return fmt.Errorf("%w: %d", ErrEdgeNotFound, id)
	}
	g.removeEdgeLocked(id)
	return nil
}

func (g *Graph) removeEdgeLocked(id int) {
	e, ok := g.edges[id]
	if !ok {
		return
	}
	g.out[e.From] = removeInt(g.out[e.From], id)
	g.in[e.To] = removeInt(g.in[e.To], id)
	delete(g.edges, id)
}

func removeInt(list []int, v int) []int {
	for i, x := range list {
		if x == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// NodesByLabel returns copies of all nodes with the label, sorted by ID.
func (g *Graph) NodesByLabel(label string) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Node
	for _, n := range g.nodes {
		if n.Label == label {
			out = append(out, Node{ID: n.ID, Label: n.Label, Props: n.Props.clone()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Nodes returns all node IDs, sorted.
func (g *Graph) Nodes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Direction selects traversal direction.
type Direction int

// Traversal directions.
const (
	Out Direction = iota
	In
	Both
)

// Neighbors returns the IDs of nodes adjacent to id via edges with the
// given label ("" matches any), deduplicated and sorted.
func (g *Graph) Neighbors(id string, dir Direction, label string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := map[string]struct{}{}
	add := func(eids []int, pickTo bool) {
		for _, eid := range eids {
			e := g.edges[eid]
			if label != "" && e.Label != label {
				continue
			}
			if pickTo {
				seen[e.To] = struct{}{}
			} else {
				seen[e.From] = struct{}{}
			}
		}
	}
	if dir == Out || dir == Both {
		add(g.out[id], true)
	}
	if dir == In || dir == Both {
		add(g.in[id], false)
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OutEdges returns copies of the outgoing edges of a node, sorted by ID.
func (g *Graph) OutEdges(id string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for _, eid := range g.out[id] {
		e := g.edges[eid]
		c := *e
		c.Props = e.Props.clone()
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InEdges returns copies of the incoming edges of a node, sorted by ID.
func (g *Graph) InEdges(id string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for _, eid := range g.in[id] {
		e := g.edges[eid]
		c := *e
		c.Props = e.Props.clone()
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ShortestPath returns a minimal-hop node path from src to dst following
// edges per dir, or nil when unreachable. Provenance queries ("how was
// this dataset derived?") are path queries of exactly this shape.
func (g *Graph) ShortestPath(src, dst string, dir Direction) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[src]; !ok {
		return nil
	}
	if _, ok := g.nodes[dst]; !ok {
		return nil
	}
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.neighborsLocked(cur, dir) {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == dst {
				return buildPath(prev, src, dst)
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

func (g *Graph) neighborsLocked(id string, dir Direction) []string {
	seen := map[string]struct{}{}
	if dir == Out || dir == Both {
		for _, eid := range g.out[id] {
			seen[g.edges[eid].To] = struct{}{}
		}
	}
	if dir == In || dir == Both {
		for _, eid := range g.in[id] {
			seen[g.edges[eid].From] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func buildPath(prev map[string]string, src, dst string) []string {
	var rev []string
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Reachable returns all node IDs reachable from src (excluding src)
// following dir, sorted.
func (g *Graph) Reachable(src string, dir Direction) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := map[string]struct{}{src: {}}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.neighborsLocked(cur, dir) {
			if _, ok := seen[nb]; ok {
				continue
			}
			seen[nb] = struct{}{}
			queue = append(queue, nb)
		}
	}
	delete(seen, src)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Triple is one node-edge-node pattern match.
type Triple struct {
	From Node
	Edge Edge
	To   Node
}

// Match returns all (from)-[edge]->(to) triples whose labels equal the
// given ones; empty strings are wildcards. Results are ordered by edge
// ID.
func (g *Graph) Match(fromLabel, edgeLabel, toLabel string) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]int, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []Triple
	for _, id := range ids {
		e := g.edges[id]
		from, to := g.nodes[e.From], g.nodes[e.To]
		if fromLabel != "" && from.Label != fromLabel {
			continue
		}
		if edgeLabel != "" && e.Label != edgeLabel {
			continue
		}
		if toLabel != "" && to.Label != toLabel {
			continue
		}
		ec := *e
		ec.Props = e.Props.clone()
		out = append(out, Triple{
			From: Node{ID: from.ID, Label: from.Label, Props: from.Props.clone()},
			Edge: ec,
			To:   Node{ID: to.ID, Label: to.Label, Props: to.Props.clone()},
		})
	}
	return out
}
