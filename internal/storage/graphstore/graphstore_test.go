package graphstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func buildChain(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		if err := g.AddNode(fmt.Sprintf("n%d", i), "node", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		if _, err := g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), "next", nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNodeCRUD(t *testing.T) {
	g := New()
	if err := g.AddNode("a", "dataset", Props{"rows": 10}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a", "dataset", nil); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate AddNode = %v", err)
	}
	n, err := g.Node("a")
	if err != nil || n.Label != "dataset" || n.Props["rows"] != 10 {
		t.Fatalf("Node = %+v, %v", n, err)
	}
	// Returned props are a copy.
	n.Props["rows"] = 99
	n2, _ := g.Node("a")
	if n2.Props["rows"] != 10 {
		t.Error("Node returned shared props")
	}
	if err := g.SetProp("a", "owner", "ops"); err != nil {
		t.Fatal(err)
	}
	n3, _ := g.Node("a")
	if n3.Props["owner"] != "ops" {
		t.Error("SetProp lost")
	}
	if err := g.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}
	if g.HasNode("a") {
		t.Error("node still present after remove")
	}
	if err := g.RemoveNode("a"); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("double remove = %v", err)
	}
}

func TestEdgeCRUDAndEndpointChecks(t *testing.T) {
	g := New()
	_ = g.AddNode("a", "x", nil)
	_ = g.AddNode("b", "x", nil)
	if _, err := g.AddEdge("a", "missing", "l", nil); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("AddEdge missing dst = %v", err)
	}
	id, err := g.AddEdge("a", "b", "rel", Props{"w": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	e, err := g.Edge(id)
	if err != nil || e.From != "a" || e.To != "b" || e.Props["w"] != 0.5 {
		t.Fatalf("Edge = %+v, %v", e, err)
	}
	if err := g.RemoveEdge(id); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Edge(id); !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("Edge after remove = %v", err)
	}
}

func TestRemoveNodeCascadesEdges(t *testing.T) {
	g := buildChain(t, 3)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.RemoveNode("n1"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("edges not cascaded: %d", g.NumEdges())
	}
	if got := g.Neighbors("n0", Out, ""); len(got) != 0 {
		t.Errorf("dangling neighbor: %v", got)
	}
}

func TestNeighborsDirectionAndLabel(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		_ = g.AddNode(id, "n", nil)
	}
	_, _ = g.AddEdge("a", "b", "likes", nil)
	_, _ = g.AddEdge("a", "c", "owns", nil)
	_, _ = g.AddEdge("d", "a", "likes", nil)
	if got := g.Neighbors("a", Out, ""); len(got) != 2 {
		t.Errorf("Out = %v", got)
	}
	if got := g.Neighbors("a", Out, "likes"); len(got) != 1 || got[0] != "b" {
		t.Errorf("Out likes = %v", got)
	}
	if got := g.Neighbors("a", In, ""); len(got) != 1 || got[0] != "d" {
		t.Errorf("In = %v", got)
	}
	if got := g.Neighbors("a", Both, "likes"); len(got) != 2 {
		t.Errorf("Both likes = %v", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := buildChain(t, 5)
	path := g.ShortestPath("n0", "n4", Out)
	if len(path) != 5 || path[0] != "n0" || path[4] != "n4" {
		t.Errorf("path = %v", path)
	}
	// Unreachable going backwards.
	if p := g.ShortestPath("n4", "n0", Out); p != nil {
		t.Errorf("reverse path = %v, want nil", p)
	}
	// Reachable with Both.
	if p := g.ShortestPath("n4", "n0", Both); len(p) != 5 {
		t.Errorf("Both path = %v", p)
	}
	if p := g.ShortestPath("n0", "n0", Out); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
	if p := g.ShortestPath("n0", "ghost", Out); p != nil {
		t.Errorf("path to missing = %v", p)
	}
	// Shortcut edge shortens the path.
	_, _ = g.AddEdge("n0", "n3", "jump", nil)
	if p := g.ShortestPath("n0", "n4", Out); len(p) != 3 {
		t.Errorf("shortcut path = %v, want length 3", p)
	}
}

func TestReachable(t *testing.T) {
	g := buildChain(t, 4)
	got := g.Reachable("n1", Out)
	if len(got) != 2 || got[0] != "n2" || got[1] != "n3" {
		t.Errorf("Reachable = %v", got)
	}
	if got := g.Reachable("n3", Out); len(got) != 0 {
		t.Errorf("Reachable sink = %v", got)
	}
}

func TestMatchPattern(t *testing.T) {
	g := New()
	_ = g.AddNode("t1", "table", nil)
	_ = g.AddNode("c1", "column", nil)
	_ = g.AddNode("c2", "column", nil)
	_, _ = g.AddEdge("t1", "c1", "has", nil)
	_, _ = g.AddEdge("t1", "c2", "has", nil)
	_, _ = g.AddEdge("c1", "c2", "similar", nil)
	if got := g.Match("table", "has", "column"); len(got) != 2 {
		t.Errorf("Match table-has-column = %d", len(got))
	}
	if got := g.Match("", "similar", ""); len(got) != 1 || got[0].From.ID != "c1" {
		t.Errorf("Match wildcard = %+v", got)
	}
	if got := g.Match("column", "has", ""); len(got) != 0 {
		t.Errorf("Match no hits = %d", len(got))
	}
}

func TestNodesByLabelSorted(t *testing.T) {
	g := New()
	_ = g.AddNode("z", "ds", nil)
	_ = g.AddNode("a", "ds", nil)
	_ = g.AddNode("m", "other", nil)
	got := g.NodesByLabel("ds")
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "z" {
		t.Errorf("NodesByLabel = %+v", got)
	}
	if got := g.Nodes(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Nodes = %v", got)
	}
}

// Property: after arbitrary node/edge insertions, every edge's endpoints
// exist, and NumEdges equals the sum of out-degree.
func TestGraphInvariants(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := New()
		for i := 0; i < 10; i++ {
			_ = g.AddNode(fmt.Sprintf("n%d", i), "n", nil)
		}
		for _, p := range pairs {
			from := fmt.Sprintf("n%d", p[0]%10)
			to := fmt.Sprintf("n%d", p[1]%10)
			if _, err := g.AddEdge(from, to, "e", nil); err != nil {
				return false
			}
		}
		total := 0
		for _, id := range g.Nodes() {
			total += len(g.OutEdges(id))
			for _, e := range g.OutEdges(id) {
				if !g.HasNode(e.From) || !g.HasNode(e.To) {
					return false
				}
			}
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInOutEdges(t *testing.T) {
	g := buildChain(t, 3)
	out := g.OutEdges("n0")
	if len(out) != 1 || out[0].To != "n1" {
		t.Errorf("OutEdges = %+v", out)
	}
	in := g.InEdges("n1")
	if len(in) != 1 || in[0].From != "n0" {
		t.Errorf("InEdges = %+v", in)
	}
}

func TestUpsertNode(t *testing.T) {
	g := buildChain(t, 2)
	g.UpsertNode("n0", "renamed", Props{"x": 1})
	n, _ := g.Node("n0")
	if n.Label != "renamed" {
		t.Errorf("label = %q", n.Label)
	}
	if g.NumEdges() != 1 {
		t.Error("upsert dropped edges")
	}
}
