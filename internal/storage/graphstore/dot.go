package graphstore

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax — GOODS exports its
// provenance metadata to a graph system and visualizes the resulting
// graphs; this is the equivalent export hook. Nodes are grouped by
// label into shapes, edges carry their labels.
func DOT(g *Graph, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", name)
	ids := g.Nodes()
	for _, id := range ids {
		n, err := g.Node(id)
		if err != nil {
			continue
		}
		shape := shapeFor(n.Label)
		fmt.Fprintf(&sb, "  %q [label=%q shape=%s];\n", id, nodeCaption(n), shape)
	}
	// Deterministic edge order: by (from, to, label).
	type edgeRow struct{ from, to, label string }
	var rows []edgeRow
	for _, id := range ids {
		for _, e := range g.OutEdges(id) {
			rows = append(rows, edgeRow{from: e.From, to: e.To, label: e.Label})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].from != rows[j].from {
			return rows[i].from < rows[j].from
		}
		if rows[i].to != rows[j].to {
			return rows[i].to < rows[j].to
		}
		return rows[i].label < rows[j].label
	})
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", r.from, r.to, r.label)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func shapeFor(label string) string {
	switch label {
	case "entity", "data", "dataset":
		return "box"
	case "activity", "module":
		return "ellipse"
	case "metadata", "tag", "version":
		return "note"
	default:
		return "plaintext"
	}
}

func nodeCaption(n Node) string {
	if v, ok := n.Props["name"].(string); ok && v != "" {
		return v
	}
	return n.ID
}
