package evolve

import (
	"testing"

	"golake/internal/workload"
)

func TestExtractEntityType(t *testing.T) {
	docs := []string{`{"id":1,"name":"a"}`, `{"id":2,"name":"b","extra":true}`}
	et, err := ExtractEntityType(0, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(et.Fields) != 3 {
		t.Errorf("fields = %v", et.Fields)
	}
	if len(et.FieldValues["id"]) != 2 {
		t.Errorf("id values = %v", et.FieldValues["id"])
	}
	if _, err := ExtractEntityType(0, []string{"{bad"}); err == nil {
		t.Error("invalid json should error")
	}
}

func TestDiffVersionsAddDelete(t *testing.T) {
	v0, _ := ExtractEntityType(0, []string{`{"a":1,"b":2}`})
	v1, _ := ExtractEntityType(1, []string{`{"a":1,"c":3}`})
	ops := DiffVersions(v0, v1)
	// b deleted (or renamed to c if similar — values differ and names
	// differ, so delete+add).
	kinds := map[string]int{}
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds["add"] != 1 || kinds["delete"] != 1 {
		t.Errorf("ops = %+v", ops)
	}
}

func TestDiffVersionsRenameByValues(t *testing.T) {
	v0, _ := ExtractEntityType(0, []string{`{"id":1,"city":"berlin"}`, `{"id":2,"city":"paris"}`})
	v1, _ := ExtractEntityType(1, []string{`{"id":1,"town":"berlin"}`, `{"id":2,"town":"paris"}`})
	ops := DiffVersions(v0, v1)
	if len(ops) != 1 || ops[0].Kind != "rename" || ops[0].Field != "city" || ops[0].NewField != "town" {
		t.Fatalf("ops = %+v", ops)
	}
	// Perfect value overlap: unambiguous.
	if ops[0].Ambiguous {
		t.Error("full value overlap should not be ambiguous")
	}
}

func TestDiffVersionsRenameByName(t *testing.T) {
	v0, _ := ExtractEntityType(0, []string{`{"city":"x"}`})
	v1, _ := ExtractEntityType(1, []string{`{"city_code":"y"}`})
	ops := DiffVersions(v0, v1)
	if len(ops) != 1 || ops[0].Kind != "rename" {
		t.Fatalf("ops = %+v", ops)
	}
	if !ops[0].Ambiguous {
		t.Error("name-only rename evidence should be ambiguous")
	}
}

func TestValidateOps(t *testing.T) {
	ops := []Operation{
		{FromVersion: 0, Kind: "rename", Field: "a", NewField: "b", Ambiguous: true},
		{FromVersion: 0, Kind: "add", Field: "c"},
	}
	// User rejects the rename.
	out := ValidateOps(ops, func(Operation) bool { return false })
	if len(out) != 3 {
		t.Fatalf("validated ops = %+v", out)
	}
	// User accepts.
	out = ValidateOps(ops, func(Operation) bool { return true })
	if len(out) != 2 || out[0].Kind != "rename" {
		t.Fatalf("accepted ops = %+v", out)
	}
}

func TestHistoryAgainstGeneratedGroundTruth(t *testing.T) {
	spec := workload.SchemaVersionSpec{Versions: 8, DocsPer: 10, Seed: 19}
	vd := workload.GenerateVersions(spec)
	types, ops, err := History(vd.Versions)
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 8 {
		t.Fatalf("types = %d", len(types))
	}
	// Every ground-truth op must be recovered with matching kind and
	// field (renames may be detected as rename or, if evidence is weak,
	// delete+add — count those as recovered too).
	recovered := 0
	for _, want := range vd.Ops {
		found := false
		for _, got := range ops {
			if got.FromVersion != want.FromVersion {
				continue
			}
			switch want.Kind {
			case "add":
				if got.Kind == "add" && got.Field == want.Field {
					found = true
				}
				// A rename detected into this field also explains it.
				if got.Kind == "rename" && got.NewField == want.Field {
					found = true
				}
			case "delete":
				if got.Kind == "delete" && got.Field == want.Field {
					found = true
				}
				if got.Kind == "rename" && got.Field == want.Field {
					found = true
				}
			case "rename":
				if got.Kind == "rename" && got.Field == want.Field && got.NewField == want.NewField {
					found = true
				}
				if got.Kind == "delete" && got.Field == want.Field {
					found = true
				}
			}
		}
		if found {
			recovered++
		}
	}
	rate := float64(recovered) / float64(len(vd.Ops))
	if rate < 0.85 {
		t.Errorf("op recovery = %.2f (%d/%d)\n got: %v\nwant: %v", rate, recovered, len(vd.Ops), ops, vd.Ops)
	}
}

func TestDetectInclusions(t *testing.T) {
	// Orders reference customer ids: orders.cust ⊆ customers.id.
	customers, _ := ExtractEntityType(0, []string{
		`{"id":"c1","city":"berlin"}`, `{"id":"c2","city":"paris"}`, `{"id":"c3","city":"rome"}`,
	})
	orders, _ := ExtractEntityType(1, []string{
		`{"cust":"c1","total":10}`, `{"cust":"c2","total":20}`, `{"cust":"c1","total":30}`,
	})
	inds := DetectInclusions(orders, customers, 1, 1.0)
	found := false
	for _, ind := range inds {
		if len(ind.Lhs) == 1 && ind.Lhs[0] == "cust" && ind.Rhs[0] == "id" && ind.Coverage == 1.0 {
			found = true
		}
	}
	if !found {
		t.Errorf("cust⊆id not detected: %+v", inds)
	}
}

func TestDetectBinaryInclusions(t *testing.T) {
	// The k-ary case: (a,b) pairs of t1 contained in (x,y) pairs of t2.
	t1, _ := ExtractEntityType(0, []string{`{"a":"1","b":"x"}`, `{"a":"2","b":"y"}`})
	t2, _ := ExtractEntityType(1, []string{
		`{"x":"1","y":"x"}`, `{"x":"2","y":"y"}`, `{"x":"3","y":"z"}`,
	})
	inds := DetectInclusions(t1, t2, 2, 1.0)
	foundBinary := false
	for _, ind := range inds {
		if len(ind.Lhs) == 2 {
			foundBinary = true
		}
	}
	if !foundBinary {
		t.Errorf("no binary IND detected: %+v", inds)
	}
}

func TestCombinations(t *testing.T) {
	got := combinations([]string{"a", "b", "c"}, 2)
	if len(got) != 3 {
		t.Errorf("C(3,2) = %d", len(got))
	}
	if combinations([]string{"a"}, 2) != nil {
		t.Error("k > n should be nil")
	}
	if combinations([]string{"a"}, 0) != nil {
		t.Error("k = 0 should be nil")
	}
}
