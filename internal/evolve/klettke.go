// Package evolve implements the schema-evolution function of the
// maintenance tier (Sec. 6.6), following Klettke et al.: entity types
// (the structures of persisted JSON objects) are extracted per loaded
// batch with timestamps; consecutive structure versions are diffed into
// evolution operations (add / delete / rename, with user validation for
// ambiguous alternatives); and k-ary inclusion dependencies are
// detected across entity types of "less normalized" NoSQL data.
package evolve

import (
	"encoding/json"
	"fmt"
	"sort"

	"golake/internal/sketch"
)

// EntityType is the structure of persisted objects in one batch: its
// field set, with the observation interval.
type EntityType struct {
	Version int
	Fields  map[string]bool
	// FieldValues samples values per field for rename detection and
	// inclusion dependencies.
	FieldValues map[string][]string
}

// ExtractEntityType parses a batch of JSON object documents into the
// version's entity type.
func ExtractEntityType(version int, docs []string) (*EntityType, error) {
	et := &EntityType{Version: version, Fields: map[string]bool{}, FieldValues: map[string][]string{}}
	for i, raw := range docs {
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			return nil, fmt.Errorf("evolve: doc %d of version %d: %w", i, version, err)
		}
		for k, v := range m {
			et.Fields[k] = true
			et.FieldValues[k] = append(et.FieldValues[k], fmt.Sprintf("%v", v))
		}
	}
	return et, nil
}

// Operation is one detected schema-evolution step between consecutive
// versions.
type Operation struct {
	FromVersion int
	Kind        string // "add", "delete", "rename"
	Field       string
	NewField    string // rename only
	// Ambiguous marks operations where a delete+add pair could equally
	// be a rename; these are the ones Klettke et al. hand to the user
	// for final validation.
	Ambiguous bool
}

// String renders the operation.
func (o Operation) String() string {
	switch o.Kind {
	case "rename":
		return fmt.Sprintf("v%d: rename %s -> %s", o.FromVersion, o.Field, o.NewField)
	default:
		return fmt.Sprintf("v%d: %s %s", o.FromVersion, o.Kind, o.Field)
	}
}

// DiffVersions detects the operations between two consecutive entity
// type versions. A removed field and an added field are folded into a
// rename when their value samples overlap strongly or their names are
// similar; such folds are marked Ambiguous for user validation.
func DiffVersions(prev, next *EntityType) []Operation {
	var removed, added []string
	for f := range prev.Fields {
		if !next.Fields[f] {
			removed = append(removed, f)
		}
	}
	for f := range next.Fields {
		if !prev.Fields[f] {
			added = append(added, f)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)
	var out []Operation
	usedAdd := map[string]bool{}
	for _, rf := range removed {
		bestAdd := ""
		bestSim := 0.0
		for _, af := range added {
			if usedAdd[af] {
				continue
			}
			sim := renameSimilarity(prev, next, rf, af)
			if sim > bestSim {
				bestSim, bestAdd = sim, af
			}
		}
		if bestAdd != "" && bestSim >= 0.3 {
			usedAdd[bestAdd] = true
			out = append(out, Operation{
				FromVersion: prev.Version, Kind: "rename",
				Field: rf, NewField: bestAdd, Ambiguous: bestSim < 0.7,
			})
			continue
		}
		out = append(out, Operation{FromVersion: prev.Version, Kind: "delete", Field: rf})
	}
	for _, af := range added {
		if !usedAdd[af] {
			out = append(out, Operation{FromVersion: prev.Version, Kind: "add", Field: af})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// renameSimilarity combines value-sample overlap and name similarity
// as rename evidence.
func renameSimilarity(prev, next *EntityType, rf, af string) float64 {
	valSim := sketch.ExactJaccard(
		sketch.ToSet(prev.FieldValues[rf]),
		sketch.ToSet(next.FieldValues[af]),
	)
	nameSim := sketch.LevenshteinSim(rf, af)
	if valSim > nameSim {
		return valSim
	}
	return nameSim
}

// History reconstructs the whole evolution history from a sequence of
// version batches — "uncovering the evolution history of data lakes".
func History(batches [][]string) ([]*EntityType, []Operation, error) {
	var types []*EntityType
	var ops []Operation
	for v, docs := range batches {
		et, err := ExtractEntityType(v, docs)
		if err != nil {
			return nil, nil, err
		}
		types = append(types, et)
		if v > 0 {
			ops = append(ops, DiffVersions(types[v-1], et)...)
		}
	}
	return types, ops, nil
}

// Validator resolves ambiguous operations; Klettke et al. put the user
// in this role. Returning false turns a proposed rename into the
// delete+add pair.
type Validator func(op Operation) bool

// ValidateOps applies the validator to ambiguous operations.
func ValidateOps(ops []Operation, validate Validator) []Operation {
	var out []Operation
	for _, op := range ops {
		if op.Kind == "rename" && op.Ambiguous && !validate(op) {
			out = append(out,
				Operation{FromVersion: op.FromVersion, Kind: "delete", Field: op.Field},
				Operation{FromVersion: op.FromVersion, Kind: "add", Field: op.NewField},
			)
			continue
		}
		out = append(out, op)
	}
	return out
}

// InclusionDependency records that the value combinations of Lhs
// (fields of one entity type) are contained in those of Rhs (fields of
// another) — the k-ary INDs of Klettke et al.
type InclusionDependency struct {
	LhsType int // version/index of the entity type
	Lhs     []string
	RhsType int
	Rhs     []string
	// Coverage is the contained fraction (1.0 = strict IND).
	Coverage float64
}

// DetectInclusions finds k-ary inclusion dependencies between two
// entity types for k in 1..maxK, keeping those with coverage >=
// minCoverage. Field tuples are compared positionally after sorting
// field names.
func DetectInclusions(a, b *EntityType, maxK int, minCoverage float64) []InclusionDependency {
	var out []InclusionDependency
	aFields := sortedFields(a)
	bFields := sortedFields(b)
	for k := 1; k <= maxK; k++ {
		for _, lhs := range combinations(aFields, k) {
			lhsTuples := tuples(a, lhs)
			if len(lhsTuples) == 0 {
				continue
			}
			for _, rhs := range combinations(bFields, k) {
				rhsTuples := tuples(b, rhs)
				if len(rhsTuples) == 0 {
					continue
				}
				cov := sketch.Containment(lhsTuples, rhsTuples)
				if cov >= minCoverage {
					out = append(out, InclusionDependency{
						LhsType: a.Version, Lhs: lhs,
						RhsType: b.Version, Rhs: rhs,
						Coverage: cov,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		return fmt.Sprint(out[i].Lhs, out[i].Rhs) < fmt.Sprint(out[j].Lhs, out[j].Rhs)
	})
	return out
}

func sortedFields(et *EntityType) []string {
	out := make([]string, 0, len(et.Fields))
	for f := range et.Fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// tuples renders the per-document value tuples of the given fields.
func tuples(et *EntityType, fields []string) map[string]struct{} {
	n := -1
	for _, f := range fields {
		vs := et.FieldValues[f]
		if n < 0 || len(vs) < n {
			n = len(vs)
		}
	}
	if n <= 0 {
		return nil
	}
	out := map[string]struct{}{}
	for i := 0; i < n; i++ {
		key := ""
		for _, f := range fields {
			key += et.FieldValues[f][i] + "\x00"
		}
		out[key] = struct{}{}
	}
	return out
}

func combinations(items []string, k int) [][]string {
	if k <= 0 || k > len(items) {
		return nil
	}
	var out [][]string
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) == k {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := start; i < len(items); i++ {
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, nil)
	return out
}
