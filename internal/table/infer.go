package table

import (
	"strconv"
	"strings"
	"time"
)

// timeLayouts are the timestamp formats recognized by type inference,
// tried in order.
var timeLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02",
	"01/02/2006",
	"2006/01/02",
	time.RFC1123,
}

// InferKind infers the dominant type of a cell sequence. A column is
// typed K if at least 95% of its non-null cells parse as K, following
// the tolerant inference used by lake profilers (Skluma, GOODS): raw
// data routinely carries a few mistyped cells.
func InferKind(cells []string) Kind {
	const tolerance = 0.95
	var nonNull, ints, floats, bools, times int
	for _, v := range cells {
		if isNullToken(v) {
			continue
		}
		nonNull++
		s := strings.TrimSpace(v)
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			ints++
			floats++ // every int is a float
			continue
		}
		if _, err := strconv.ParseFloat(s, 64); err == nil {
			floats++
			continue
		}
		if isBoolToken(s) {
			bools++
			continue
		}
		if parseTime(s) {
			times++
		}
	}
	if nonNull == 0 {
		return KindUnknown
	}
	frac := func(n int) float64 { return float64(n) / float64(nonNull) }
	switch {
	case frac(ints) >= tolerance:
		return KindInt
	case frac(floats) >= tolerance:
		return KindFloat
	case frac(bools) >= tolerance:
		return KindBool
	case frac(times) >= tolerance:
		return KindTime
	default:
		return KindString
	}
}

func isBoolToken(s string) bool {
	switch strings.ToLower(s) {
	case "true", "false", "yes", "no", "t", "f":
		return true
	}
	return false
}

func parseTime(s string) bool {
	for _, layout := range timeLayouts {
		if _, err := time.Parse(layout, s); err == nil {
			return true
		}
	}
	return false
}

func parseFloat(s string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return f, err == nil
}
