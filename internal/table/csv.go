package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ReadCSV parses CSV content with a header row into a Table and infers
// column types.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate ourselves for a better error
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: parse csv %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv %q: %w", name, ErrEmpty)
	}
	return FromRows(name, records[0], records[1:])
}

// ParseCSV parses an in-memory CSV string; convenient for tests and
// examples.
func ParseCSV(name, content string) (*Table, error) {
	return ReadCSV(name, strings.NewReader(content))
}

// WriteCSV serializes the table as CSV with a header row.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("table: write csv header: %w", err)
	}
	for i := 0; i < t.NumRows(); i++ {
		if err := cw.Write(t.Row(i)); err != nil {
			return fmt.Errorf("table: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ToCSV renders the table as a CSV string.
func ToCSV(t *Table) string {
	var sb strings.Builder
	_ = WriteCSV(t, &sb)
	return sb.String()
}
