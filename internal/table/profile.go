package table

import (
	"math"
	"sort"
)

// ColumnProfile summarizes a column: the "signatures" Aurum attaches to
// every column and the data-based features DS-kNN and DLN extract.
type ColumnProfile struct {
	Name     string
	Kind     Kind
	Count    int
	Nulls    int
	Distinct int
	// Uniqueness is Distinct / non-null count (1.0 for a key column).
	Uniqueness float64
	// MeanLen is the average string length of non-null cells.
	MeanLen float64
	// Numeric moments; NaN when the column is not numeric.
	Min, Max, Mean, StdDev float64
	// IsKey is true when the column is a candidate key covering >=90%
	// of rows.
	IsKey bool
}

// Profile computes the profile of a column.
func Profile(c *Column) ColumnProfile {
	p := ColumnProfile{
		Name:   c.Name,
		Kind:   c.Kind,
		Count:  c.Len(),
		Nulls:  c.NullCount(),
		Min:    math.NaN(),
		Max:    math.NaN(),
		Mean:   math.NaN(),
		StdDev: math.NaN(),
	}
	p.Distinct = len(c.Distinct())
	nonNull := p.Count - p.Nulls
	if nonNull > 0 {
		p.Uniqueness = float64(p.Distinct) / float64(nonNull)
		total := 0
		for _, v := range c.Cells {
			if !isNullToken(v) {
				total += len(v)
			}
		}
		p.MeanLen = float64(total) / float64(nonNull)
	}
	if c.Kind.Numeric() {
		if xs, frac := c.Floats(); len(xs) > 0 && frac > 0.5 {
			p.Min, p.Max, p.Mean, p.StdDev = moments(xs)
		}
	}
	p.IsKey = c.IsCandidateKey(0.9)
	return p
}

// TableProfile aggregates the per-column profiles of a table.
type TableProfile struct {
	Name    string
	Rows    int
	Columns []ColumnProfile
}

// ProfileTable profiles every column of t.
func ProfileTable(t *Table) TableProfile {
	tp := TableProfile{Name: t.Name, Rows: t.NumRows()}
	for _, c := range t.Columns {
		tp.Columns = append(tp.Columns, Profile(c))
	}
	return tp
}

// moments returns min, max, mean and population standard deviation.
func moments(xs []float64) (min, max, mean, std float64) {
	min, max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(xs)))
	return min, max, mean, std
}

// Quantiles returns the q-quantiles (q >= 2) of xs; xs is not modified.
// Used by distribution-aware discovery features (D3L, RNLIM).
func Quantiles(xs []float64, q int) []float64 {
	if len(xs) == 0 || q < 2 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, q-1)
	for i := 1; i < q; i++ {
		pos := float64(i) / float64(q) * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i-1] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}
