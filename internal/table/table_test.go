package table

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, csvText string) *Table {
	t.Helper()
	tbl, err := ParseCSV("t", csvText)
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	return tbl
}

const sampleCSV = `id,name,age,score,active,joined
1,alice,30,9.5,true,2020-01-02
2,bob,25,7.25,false,2021-03-04
3,carol,41,8.0,true,2019-11-30
4,dave,,6.5,true,2022-05-06
`

func TestParseCSVBasics(t *testing.T) {
	tbl := mustTable(t, sampleCSV)
	if tbl.NumCols() != 6 {
		t.Fatalf("NumCols = %d, want 6", tbl.NumCols())
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("NumRows = %d, want 4", tbl.NumRows())
	}
	want := []string{"id", "name", "age", "score", "active", "joined"}
	got := tbl.ColumnNames()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("column %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTypeInference(t *testing.T) {
	tbl := mustTable(t, sampleCSV)
	cases := map[string]Kind{
		"id":     KindInt,
		"name":   KindString,
		"age":    KindInt, // one null tolerated
		"score":  KindFloat,
		"active": KindBool,
		"joined": KindTime,
	}
	for name, want := range cases {
		c, err := tbl.Column(name)
		if err != nil {
			t.Fatalf("Column(%q): %v", name, err)
		}
		if c.Kind != want {
			t.Errorf("column %q kind = %v, want %v", name, c.Kind, want)
		}
	}
}

func TestInferKindTolerance(t *testing.T) {
	// 97 ints + 2 strings + 1 null: still int under the 95% rule.
	cells := make([]string, 0, 100)
	for i := 0; i < 97; i++ {
		cells = append(cells, "42")
	}
	cells = append(cells, "x", "y", "")
	if k := InferKind(cells); k != KindInt {
		t.Errorf("InferKind = %v, want int", k)
	}
	// 50/50 should fall back to string.
	mixed := append(make([]string, 0), "1", "2", "a", "b")
	if k := InferKind(mixed); k != KindString {
		t.Errorf("InferKind mixed = %v, want string", k)
	}
	if k := InferKind([]string{"", "NULL", "n/a"}); k != KindUnknown {
		t.Errorf("InferKind all-null = %v, want unknown", k)
	}
}

func TestColumnNullsAndDistinct(t *testing.T) {
	c := &Column{Name: "x", Cells: []string{"a", "", "a", "NULL", "b", "n/a"}}
	if got := c.NullCount(); got != 3 {
		t.Errorf("NullCount = %d, want 3", got)
	}
	d := c.Distinct()
	if len(d) != 2 {
		t.Errorf("Distinct size = %d, want 2", len(d))
	}
	ds := c.DistinctSlice()
	if len(ds) != 2 || ds[0] != "a" || ds[1] != "b" {
		t.Errorf("DistinctSlice = %v, want [a b]", ds)
	}
}

func TestCandidateKey(t *testing.T) {
	key := &Column{Name: "id", Cells: []string{"1", "2", "3", "4"}}
	if !key.IsCandidateKey(0.9) {
		t.Error("unique column should be a candidate key")
	}
	dup := &Column{Name: "id", Cells: []string{"1", "2", "2", "4"}}
	if dup.IsCandidateKey(0.9) {
		t.Error("column with duplicates should not be a candidate key")
	}
	sparse := &Column{Name: "id", Cells: []string{"1", "", "", ""}}
	if sparse.IsCandidateKey(0.9) {
		t.Error("mostly-null column should not be a candidate key")
	}
}

func TestProjectAndFilter(t *testing.T) {
	tbl := mustTable(t, sampleCSV)
	p, err := tbl.Project("name", "score")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumCols() != 2 || p.NumRows() != 4 {
		t.Fatalf("Project shape = %dx%d, want 2x4", p.NumCols(), p.NumRows())
	}
	if _, err := tbl.Project("nope"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("Project unknown column err = %v, want ErrNoSuchColumn", err)
	}

	f := tbl.Filter(func(row []string) bool { return row[4] == "true" })
	if f.NumRows() != 3 {
		t.Errorf("Filter rows = %d, want 3", f.NumRows())
	}
}

func TestAppendRowAndRaggedDetection(t *testing.T) {
	tbl := mustTable(t, "a,b\n1,2\n")
	if err := tbl.AppendRow([]string{"3", "4"}); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	if err := tbl.AppendRow([]string{"just-one"}); !errors.Is(err, ErrRagged) {
		t.Errorf("AppendRow ragged err = %v, want ErrRagged", err)
	}
	if _, err := FromRows("t", []string{"a"}, [][]string{{"1", "2"}}); !errors.Is(err, ErrRagged) {
		t.Errorf("FromRows ragged err = %v, want ErrRagged", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := mustTable(t, "a\nx\n")
	cl := tbl.Clone()
	cl.Columns[0].Cells[0] = "mutated"
	cl.Meta["k"] = "v"
	if tbl.Columns[0].Cells[0] != "x" {
		t.Error("Clone shares cell storage with original")
	}
	if _, ok := tbl.Meta["k"]; ok {
		t.Error("Clone shares Meta with original")
	}
}

func TestProfileNumeric(t *testing.T) {
	tbl := mustTable(t, "v\n1\n2\n3\n4\n")
	c, _ := tbl.Column("v")
	p := Profile(c)
	if p.Min != 1 || p.Max != 4 || p.Mean != 2.5 {
		t.Errorf("profile min/max/mean = %v/%v/%v", p.Min, p.Max, p.Mean)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(p.StdDev-wantStd) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", p.StdDev, wantStd)
	}
	if !p.IsKey {
		t.Error("unique int column should profile as key")
	}
	if p.Uniqueness != 1 {
		t.Errorf("Uniqueness = %v, want 1", p.Uniqueness)
	}
}

func TestProfileStringColumnHasNaNMoments(t *testing.T) {
	tbl := mustTable(t, "s\nfoo\nbar\nfoo\n")
	c, _ := tbl.Column("s")
	p := Profile(c)
	if !math.IsNaN(p.Mean) {
		t.Errorf("Mean of string column = %v, want NaN", p.Mean)
	}
	if p.Distinct != 2 {
		t.Errorf("Distinct = %d, want 2", p.Distinct)
	}
	if p.MeanLen != 3 {
		t.Errorf("MeanLen = %v, want 3", p.MeanLen)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	q := Quantiles(xs, 4)
	if len(q) != 3 {
		t.Fatalf("Quantiles len = %d, want 3", len(q))
	}
	if q[1] != 2.5 {
		t.Errorf("median = %v, want 2.5", q[1])
	}
	if Quantiles(nil, 4) != nil {
		t.Error("Quantiles(nil) should be nil")
	}
	if Quantiles(xs, 1) != nil {
		t.Error("Quantiles(q=1) should be nil")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := mustTable(t, sampleCSV)
	out := ToCSV(tbl)
	back, err := ParseCSV("t", out)
	if err != nil {
		t.Fatalf("round trip parse: %v", err)
	}
	if back.NumRows() != tbl.NumRows() || back.NumCols() != tbl.NumCols() {
		t.Fatalf("round trip shape changed: %v vs %v", back, tbl)
	}
	for j, c := range tbl.Columns {
		for i, v := range c.Cells {
			if back.Columns[j].Cells[i] != v {
				t.Fatalf("cell (%d,%d) = %q, want %q", i, j, back.Columns[j].Cells[i], v)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ParseCSV("t", ""); err == nil {
		t.Error("empty csv should error")
	}
	if _, err := ParseCSV("t", "a,b\n1\n"); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged csv err = %v, want ErrRagged", err)
	}
}

// Property: Filter(always true) preserves the table; Filter(always false)
// empties it; projection of all columns preserves the cell matrix.
func TestFilterProjectProperties(t *testing.T) {
	f := func(rowsRaw [][2]string) bool {
		rows := make([][]string, len(rowsRaw))
		for i, r := range rowsRaw {
			rows[i] = []string{r[0], r[1]}
		}
		tbl, err := FromRows("p", []string{"a", "b"}, rows)
		if err != nil {
			return false
		}
		all := tbl.Filter(func([]string) bool { return true })
		if all.NumRows() != tbl.NumRows() {
			return false
		}
		none := tbl.Filter(func([]string) bool { return false })
		if none.NumRows() != 0 {
			return false
		}
		proj, err := tbl.Project("a", "b")
		if err != nil || proj.NumRows() != tbl.NumRows() {
			return false
		}
		for i := 0; i < tbl.NumRows(); i++ {
			for j := range tbl.Columns {
				if proj.Columns[j].Cells[i] != tbl.Columns[j].Cells[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	tbl := mustTable(t, "a,b\n1,2\n")
	if got := tbl.String(); !strings.Contains(got, "2 cols") || !strings.Contains(got, "1 rows") {
		t.Errorf("String() = %q", got)
	}
}
