// Package table provides the tabular dataset model used throughout the
// lake: named columns of string-encoded cells with inferred types,
// column-level statistics, and CSV import/export.
//
// The surveyed discovery systems (JOSIE, Aurum, D3L, Juneau, PEXESO) all
// operate on tables whose cells are treated either as sets of string
// tokens or as numeric samples; Table keeps the raw string encoding and
// exposes typed views on demand.
package table

import (
	"errors"
	"fmt"
	"strings"
)

// Kind is the inferred type of a column.
type Kind int

const (
	// KindUnknown marks a column whose type has not been inferred yet
	// or whose cells are all null.
	KindUnknown Kind = iota
	// KindString is free text.
	KindString
	// KindInt is integer-valued.
	KindInt
	// KindFloat is real-valued (includes integer cells mixed with reals).
	KindFloat
	// KindBool holds true/false values.
	KindBool
	// KindTime holds timestamps in a recognized layout.
	KindTime
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return "unknown"
	}
}

// Numeric reports whether the kind is int or float.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Errors returned by table constructors and accessors.
var (
	ErrNoSuchColumn = errors.New("table: no such column")
	ErrRagged       = errors.New("table: ragged rows")
	ErrEmpty        = errors.New("table: empty input")
)

// Column is a named, typed sequence of string-encoded cells. Empty string
// cells are treated as nulls.
type Column struct {
	Name  string
	Kind  Kind
	Cells []string
}

// Len returns the number of cells (including nulls).
func (c *Column) Len() int { return len(c.Cells) }

// IsNull reports whether cell i is null (empty or a recognized null token).
func (c *Column) IsNull(i int) bool { return isNullToken(c.Cells[i]) }

// NullCount returns the number of null cells.
func (c *Column) NullCount() int {
	n := 0
	for _, v := range c.Cells {
		if isNullToken(v) {
			n++
		}
	}
	return n
}

// Distinct returns the set of distinct non-null cell values.
func (c *Column) Distinct() map[string]struct{} {
	set := make(map[string]struct{}, len(c.Cells))
	for _, v := range c.Cells {
		if !isNullToken(v) {
			set[v] = struct{}{}
		}
	}
	return set
}

// DistinctSlice returns distinct non-null values in first-seen order.
func (c *Column) DistinctSlice() []string {
	seen := make(map[string]struct{}, len(c.Cells))
	out := make([]string, 0, len(c.Cells))
	for _, v := range c.Cells {
		if isNullToken(v) {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Floats returns the numeric interpretation of all non-null cells,
// silently skipping unparseable cells. The second return value is the
// fraction of non-null cells that parsed as numbers.
func (c *Column) Floats() ([]float64, float64) {
	out := make([]float64, 0, len(c.Cells))
	nonNull := 0
	for _, v := range c.Cells {
		if isNullToken(v) {
			continue
		}
		nonNull++
		if f, ok := parseFloat(v); ok {
			out = append(out, f)
		}
	}
	if nonNull == 0 {
		return out, 0
	}
	return out, float64(len(out)) / float64(nonNull)
}

// IsCandidateKey reports whether the column's non-null values are unique
// and cover at least minCoverage of the rows. Aurum and Juneau use this
// signal to detect primary-key / foreign-key candidates.
func (c *Column) IsCandidateKey(minCoverage float64) bool {
	if c.Len() == 0 {
		return false
	}
	distinct := c.Distinct()
	nonNull := c.Len() - c.NullCount()
	if nonNull == 0 || len(distinct) != nonNull {
		return false
	}
	return float64(nonNull)/float64(c.Len()) >= minCoverage
}

// Table is a named collection of equally long columns.
type Table struct {
	Name    string
	Columns []*Column
	// Meta carries free-form descriptive metadata (source path,
	// creator, task description, ...). Keys are lowercase.
	Meta map[string]string
}

// New creates an empty table with the given name.
func New(name string) *Table {
	return &Table{Name: name, Meta: map[string]string{}}
}

// FromRows builds a table from a header and rows. All rows must have
// exactly len(header) fields. Column types are inferred.
func FromRows(name string, header []string, rows [][]string) (*Table, error) {
	if len(header) == 0 {
		return nil, ErrEmpty
	}
	t := New(name)
	for _, h := range header {
		t.Columns = append(t.Columns, &Column{Name: h})
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("%w: row %d has %d fields, want %d", ErrRagged, i, len(row), len(header))
		}
		for j, v := range row {
			t.Columns[j].Cells = append(t.Columns[j].Cells, v)
		}
	}
	t.InferTypes()
	return t, nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Columns) }

// Column returns the column with the given name, or ErrNoSuchColumn.
func (t *Table) Column(name string) (*Column, error) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, name, t.Name)
}

// HasColumn reports whether a column with the given name exists.
func (t *Table) HasColumn(name string) bool {
	_, err := t.Column(name)
	return err == nil
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Row materializes row i as a slice ordered like Columns.
func (t *Table) Row(i int) []string {
	row := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		row[j] = c.Cells[i]
	}
	return row
}

// AppendRow appends one row; the field count must match the column count.
func (t *Table) AppendRow(row []string) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("%w: got %d fields, want %d", ErrRagged, len(row), len(t.Columns))
	}
	for j, v := range row {
		t.Columns[j].Cells = append(t.Columns[j].Cells, v)
	}
	return nil
}

// Project returns a new table with only the named columns, in the given
// order. Unknown names return ErrNoSuchColumn.
func (t *Table) Project(names ...string) (*Table, error) {
	out := New(t.Name)
	for k, v := range t.Meta {
		out.Meta[k] = v
	}
	for _, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cells := make([]string, len(c.Cells))
		copy(cells, c.Cells)
		out.Columns = append(out.Columns, &Column{Name: c.Name, Kind: c.Kind, Cells: cells})
	}
	return out, nil
}

// Filter returns a new table with the rows for which keep returns true.
func (t *Table) Filter(keep func(row []string) bool) *Table {
	out := New(t.Name)
	for k, v := range t.Meta {
		out.Meta[k] = v
	}
	for _, c := range t.Columns {
		out.Columns = append(out.Columns, &Column{Name: c.Name, Kind: c.Kind})
	}
	for i := 0; i < t.NumRows(); i++ {
		row := t.Row(i)
		if keep(row) {
			for j, v := range row {
				out.Columns[j].Cells = append(out.Columns[j].Cells, v)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Name)
	for k, v := range t.Meta {
		out.Meta[k] = v
	}
	for _, c := range t.Columns {
		cells := make([]string, len(c.Cells))
		copy(cells, c.Cells)
		out.Columns = append(out.Columns, &Column{Name: c.Name, Kind: c.Kind, Cells: cells})
	}
	return out
}

// InferTypes infers and sets the Kind of every column.
func (t *Table) InferTypes() {
	for _, c := range t.Columns {
		c.Kind = InferKind(c.Cells)
	}
}

// String renders a compact description such as "orders(5 cols, 120 rows)".
func (t *Table) String() string {
	return fmt.Sprintf("%s(%d cols, %d rows)", t.Name, t.NumCols(), t.NumRows())
}

// nullTokens are cell values treated as missing data.
var nullTokens = map[string]struct{}{
	"": {}, "null": {}, "NULL": {}, "na": {}, "NA": {}, "n/a": {}, "N/A": {}, "nil": {}, "-": {},
}

func isNullToken(v string) bool {
	_, ok := nullTokens[v]
	if ok {
		return true
	}
	_, ok = nullTokens[strings.TrimSpace(v)]
	return ok
}
