package maintain

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestPlannerFirstPassIsFull(t *testing.T) {
	p := NewPlanner()
	plan := p.Plan([]string{"a", "b"})
	if !plan.Full || plan.Reason != "first-pass" {
		t.Fatalf("first plan = %+v, want full first-pass", plan)
	}
	p.Commit(plan, []string{"a", "b"})
	if got := p.CoveredCount(); got != 2 {
		t.Errorf("covered = %d", got)
	}
}

func TestPlannerIncrementalAdditions(t *testing.T) {
	p := NewPlanner()
	p.Commit(p.Plan([]string{"a", "b"}), []string{"a", "b"})
	plan := p.Plan([]string{"a", "b", "c", "d"})
	if plan.Full {
		t.Fatalf("additions-only plan = %+v, want incremental", plan)
	}
	if want := []string{"c", "d"}; !reflect.DeepEqual(plan.New, want) {
		t.Errorf("plan.New = %v, want %v", plan.New, want)
	}
	p.Commit(plan, []string{"a", "b", "c", "d"})
	// Nothing new: an empty incremental plan.
	plan = p.Plan([]string{"a", "b", "c", "d"})
	if plan.Full || len(plan.New) != 0 {
		t.Errorf("steady-state plan = %+v, want empty incremental", plan)
	}
}

func TestPlannerEvictionForcesFull(t *testing.T) {
	p := NewPlanner()
	p.Commit(p.Plan([]string{"a", "b"}), []string{"a", "b"})
	plan := p.Plan([]string{"a", "c"})
	if !plan.Full || plan.Reason != "eviction" {
		t.Fatalf("eviction plan = %+v, want full", plan)
	}
	if want := []string{"b"}; !reflect.DeepEqual(plan.Evicted, want) {
		t.Errorf("evicted = %v, want %v", plan.Evicted, want)
	}
	p.Commit(plan, []string{"a", "c"})
	if plan := p.Plan([]string{"a", "c"}); plan.Full {
		t.Errorf("post-eviction plan = %+v, want incremental", plan)
	}
}

func TestPlannerForceFullClearsAfterCommit(t *testing.T) {
	p := NewPlanner()
	p.Commit(p.Plan([]string{"a"}), []string{"a"})
	p.ForceFull("derive")
	plan := p.Plan([]string{"a", "b"})
	if !plan.Full || plan.Reason != "derive" {
		t.Fatalf("forced plan = %+v", plan)
	}
	// An uncommitted plan keeps the force in place (failed pass).
	if again := p.Plan([]string{"a", "b"}); !again.Full {
		t.Errorf("force dropped without commit: %+v", again)
	}
	p.Commit(plan, []string{"a", "b"})
	if after := p.Plan([]string{"a", "b"}); after.Full {
		t.Errorf("force survived commit: %+v", after)
	}
}

func TestBackoffDelayDoublesAndCaps(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := backoffDelay(base, max, i+1); got != w {
			t.Errorf("backoffDelay(n=%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestJitteredStaysInBand(t *testing.T) {
	d := time.Second
	for _, r := range []float64{0, 0.25, 0.5, 0.999} {
		got := jittered(d, 0.2, func() float64 { return r })
		if got < 800*time.Millisecond || got > 1200*time.Millisecond {
			t.Errorf("jittered(rnd=%v) = %v outside ±20%%", r, got)
		}
	}
	if got := jittered(d, 0, nil); got != d {
		t.Errorf("zero jitter changed delay: %v", got)
	}
}

// fakeTarget scripts staleness and pass outcomes for scheduler tests.
type fakeTarget struct {
	mu sync.Mutex
	// staleFor is how many completed passes it takes until Stale goes
	// false — staleFor=2 simulates an ingest racing the first pass.
	staleFor int
	failLeft int
	passes   int
	started  chan struct{} // closed when the first pass begins
	block    chan struct{} // when non-nil, Pass waits for close or ctx
}

func (f *fakeTarget) Stale() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.passes < f.staleFor
}

func (f *fakeTarget) Pass(ctx context.Context) (PassStats, error) {
	f.mu.Lock()
	if f.started != nil {
		select {
		case <-f.started:
		default:
			close(f.started)
		}
	}
	block := f.block
	f.mu.Unlock()
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return PassStats{}, ctx.Err()
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failLeft > 0 {
		f.failLeft--
		return PassStats{}, errors.New("injected pass failure")
	}
	f.passes++
	return PassStats{Mode: "incremental", Datasets: 1}, nil
}

func (f *fakeTarget) passCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.passes
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testConfig() Config {
	return Config{Interval: 2 * time.Millisecond, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond}
}

func TestSchedulerRunsPassWhenStale(t *testing.T) {
	f := &fakeTarget{staleFor: 1}
	s := NewScheduler(f, testConfig())
	s.Start()
	defer s.Stop()
	waitFor(t, "first pass", func() bool { return f.passCount() >= 1 })
	if f.Stale() {
		t.Error("target still stale after pass")
	}
	if s.NextRun().IsZero() {
		t.Error("NextRun unset after pass")
	}
}

func TestSchedulerIngestDuringPassSchedulesAnotherPass(t *testing.T) {
	// staleFor=2: the first completed pass leaves the target stale (an
	// ingest raced it), so the scheduler must run a second pass rather
	// than losing the update.
	f := &fakeTarget{staleFor: 2}
	s := NewScheduler(f, testConfig())
	s.Start()
	defer s.Stop()
	waitFor(t, "second pass", func() bool { return f.passCount() >= 2 })
	if f.Stale() {
		t.Error("target stale after catch-up pass")
	}
}

func TestSchedulerRetriesFailingPassWithBackoff(t *testing.T) {
	f := &fakeTarget{staleFor: 1, failLeft: 3}
	s := NewScheduler(f, testConfig())
	s.Start()
	defer s.Stop()
	// Three failures must not stop the loop: the pass eventually lands.
	waitFor(t, "pass after retries", func() bool { return f.passCount() >= 1 })
	s.mu.Lock()
	fails := s.consecFails
	s.mu.Unlock()
	if fails != 0 {
		t.Errorf("consecFails = %d after success, want 0 (backoff reset)", fails)
	}
}

func TestSchedulerStopDrainsInFlightPass(t *testing.T) {
	f := &fakeTarget{staleFor: 1, started: make(chan struct{}), block: make(chan struct{})}
	s := NewScheduler(f, Config{Interval: time.Millisecond})
	s.Start()
	<-f.started // a pass is now in flight and blocked
	done := make(chan struct{})
	go func() {
		s.Stop() // must cancel the pass's ctx and wait for the drain
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not drain the in-flight pass")
	}
	if got := f.passCount(); got != 0 {
		t.Errorf("cancelled pass counted as completed: %d", got)
	}
	s.Stop() // idempotent
}

func TestSchedulerStopWithoutStart(t *testing.T) {
	s := NewScheduler(&fakeTarget{}, Config{})
	s.Stop() // no-op, must not block or panic
}

func TestSchedulerTriggerWakesEarly(t *testing.T) {
	f := &fakeTarget{staleFor: 1}
	// A long interval: without Trigger the first check is an hour away.
	s := NewScheduler(f, Config{Interval: time.Hour})
	s.Start()
	defer s.Stop()
	s.Trigger()
	waitFor(t, "triggered pass", func() bool { return f.passCount() >= 1 })
}

func TestPlannerForceDuringPassSurvivesCommit(t *testing.T) {
	p := NewPlanner()
	plan := p.Plan([]string{"a"}) // pass begins from this snapshot
	// A derive lands while the pass is running: the forced rebuild must
	// not be erased by the pass's commit, whose listing predates it.
	p.ForceFull("derive")
	p.Commit(plan, []string{"a"})
	next := p.Plan([]string{"a", "derived"})
	if !next.Full || next.Reason != "derive" {
		t.Fatalf("plan after mid-pass derive = %+v, want full/derive", next)
	}
	p.Commit(next, []string{"a", "derived"})
	if after := p.Plan([]string{"a", "derived"}); after.Full {
		t.Errorf("force survived its own commit: %+v", after)
	}
}

func TestPlannerFullPlanCarriesForceBookkeeping(t *testing.T) {
	p := NewPlanner()
	p.Commit(p.Plan([]string{"a"}), []string{"a"})
	p.ForceFull("derive")
	// An explicitly requested full pass observes the pending force and
	// clears it on commit.
	plan := p.FullPlanAt(p.Snapshot(), "requested", []string{"a", "derived"})
	p.Commit(plan, []string{"a", "derived"})
	if after := p.Plan([]string{"a", "derived"}); after.Full {
		t.Errorf("requested full did not clear observed force: %+v", after)
	}
}

func TestPlannerForceDuringListingSurvivesCommit(t *testing.T) {
	p := NewPlanner()
	p.Commit(p.Plan([]string{"a"}), []string{"a"})
	// The pass snapshots the force counter, then lists datasets; a
	// derive lands in between, so its table is missing from the listing
	// and the forced rebuild must outlive this pass's commit.
	seq := p.Snapshot()
	p.ForceFull("derive")
	plan := p.PlanAt(seq, []string{"a"})
	if !plan.Full || plan.Reason != "derive" {
		t.Fatalf("racing plan = %+v", plan)
	}
	p.Commit(plan, []string{"a"})
	next := p.Plan([]string{"a", "derived"})
	if !next.Full || next.Reason != "derive" {
		t.Fatalf("plan after listing-race derive = %+v, want full/derive", next)
	}
}

func TestPlannerRestoreResumesIncrementally(t *testing.T) {
	p := NewPlanner()
	p.Restore([]string{"a", "b"}, true)
	if want := []string{"a", "b"}; !reflect.DeepEqual(p.Covered(), want) {
		t.Fatalf("Covered = %v, want %v", p.Covered(), want)
	}
	plan := p.Plan([]string{"a", "b", "c"})
	if plan.Full {
		t.Fatalf("post-restore plan = %+v, want incremental", plan)
	}
	if want := []string{"c"}; !reflect.DeepEqual(plan.New, want) {
		t.Errorf("plan.New = %v, want %v", plan.New, want)
	}
}

func TestPlannerRestoreClearsPendingForce(t *testing.T) {
	p := NewPlanner()
	p.ForceFull("derive")
	p.Restore([]string{"a"}, true)
	if plan := p.Plan([]string{"a"}); plan.Full {
		t.Errorf("plan after restore = %+v, want incremental", plan)
	}
}

func TestPlannerRestoreUnprimedStaysFirstPass(t *testing.T) {
	p := NewPlanner()
	p.Restore(nil, false)
	if plan := p.Plan([]string{"a"}); !plan.Full || plan.Reason != "first-pass" {
		t.Errorf("unprimed plan = %+v, want full first-pass", plan)
	}
}

func TestPlannerEvictDropsCoverageWithoutFull(t *testing.T) {
	p := NewPlanner()
	p.Commit(p.Plan([]string{"a", "b"}), []string{"a", "b"})
	p.Evict("b")
	// The dataset is gone from both the listing and coverage: the next
	// plan must not misread that as an untracked eviction.
	plan := p.Plan([]string{"a"})
	if plan.Full || len(plan.New) != 0 {
		t.Fatalf("post-Evict plan = %+v, want empty incremental", plan)
	}
	if got := p.CoveredCount(); got != 1 {
		t.Errorf("covered = %d, want 1", got)
	}
}
