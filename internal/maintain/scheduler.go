package maintain

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// PassStats summarizes one executed maintenance pass on the wire.
type PassStats struct {
	// Mode is "full" or "incremental"; Reason explains a full rebuild.
	Mode   string `json:"mode"`
	Reason string `json:"reason,omitempty"`
	// Datasets is how many datasets this pass (re)indexed; Tables the
	// corpus size after it.
	Datasets   int           `json:"datasets"`
	Tables     int           `json:"tables"`
	Generation uint64        `json:"generation"`
	Duration   time.Duration `json:"duration_ns"`
}

// Status is the maintenance snapshot served over GET /v1/maintenance:
// lake-level pass counters plus, when a scheduler runs, its next firing.
type Status struct {
	// Auto reports whether a background scheduler is attached.
	Auto bool `json:"auto"`
	// Running reports whether a pass is executing right now.
	Running bool `json:"running"`
	// Stale reports whether ingests are waiting for the next pass.
	Stale     bool   `json:"stale"`
	PassesRun uint64 `json:"passes_run"`
	Failures  uint64 `json:"failures"`
	LastError string `json:"last_error,omitempty"`
	// Covered is how many datasets completed passes have indexed.
	Covered  int        `json:"covered"`
	LastPass *PassStats `json:"last_pass,omitempty"`
	// LastPassTime and NextRun are absent until a pass has run /
	// a scheduler is attached.
	LastPassTime *time.Time `json:"last_pass_time,omitempty"`
	NextRun      *time.Time `json:"next_run,omitempty"`
	// Durability is present when a persistence backend is attached.
	Durability *DurabilityStatus `json:"durability,omitempty"`
}

// DurabilityStatus reports the persistence backend's health on the
// maintenance wire: which backend, how much un-checkpointed WAL has
// accumulated, when the last snapshot landed, and what the open-time
// replay did.
type DurabilityStatus struct {
	Backend       string `json:"backend"`
	WALBytes      int64  `json:"wal_bytes"`
	WALRecords    uint64 `json:"wal_records"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	// LastSnapshot is absent until the first checkpoint of this process.
	LastSnapshot *time.Time `json:"last_snapshot,omitempty"`
	// Replay describes what Open recovered; absent when the lake started
	// from an empty backend.
	Replay *ReplayStats `json:"replay,omitempty"`
}

// ReplayStats summarizes one open-time recovery.
type ReplayStats struct {
	// SnapshotDatasets is how many datasets the snapshot restored.
	SnapshotDatasets int `json:"snapshot_datasets"`
	// WALRecords is how many intact log records replayed; WALSkipped how
	// many were idempotent duplicates of snapshot state (a crash between
	// checkpoint rename and log truncation).
	WALRecords uint64 `json:"wal_records"`
	WALSkipped uint64 `json:"wal_skipped"`
	// TornBytes is the size of the corrupt/incomplete log tail dropped by
	// checksum verification; non-zero means the process died mid-append.
	TornBytes int64 `json:"torn_bytes"`
}

// Target is the maintenance surface the scheduler drives. Pass must be
// safe to call concurrently with ingest and exploration; the scheduler
// itself never overlaps its own calls.
type Target interface {
	// Stale reports whether data arrived since the last completed pass.
	Stale() bool
	// Pass runs one maintenance pass (incremental where possible).
	Pass(ctx context.Context) (PassStats, error)
}

// Config tunes the scheduler.
type Config struct {
	// Interval is the debounce between staleness checks: ingests
	// accumulate for up to one interval before a pass covers them all.
	Interval time.Duration
	// RetryBase is the backoff after the first failed pass; it doubles
	// per consecutive failure up to RetryMax. Zero values default to
	// Interval and 10×Interval.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Jitter is the ± fraction applied to every delay so co-located
	// lakes don't run passes in lockstep. Defaults to 0.1.
	Jitter float64
	// Clock is the time source for NextRun reporting (timers always use
	// real time). Defaults to time.Now.
	Clock func() time.Time
	// OnRetry, when set, is called each time a failed pass schedules a
	// backoff retry, with the consecutive-failure count and the chosen
	// delay — the metrics/logging hook for backoff events.
	OnRetry func(consecutive int, delay time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = c.Interval
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 10 * c.Interval
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Scheduler re-runs maintenance passes in the background: every
// interval it checks Target.Stale and, when stale, runs one pass. A
// failing pass is retried with jittered exponential backoff; a
// successful pass resets the backoff. Stop shuts down cleanly, waiting
// for an in-flight pass to observe context cancellation and return.
type Scheduler struct {
	target  Target
	cfg     Config
	trigger chan struct{}
	cancel  context.CancelFunc
	done    chan struct{}

	mu          sync.Mutex
	started     bool
	stopped     bool
	nextRun     time.Time
	consecFails int
}

// NewScheduler creates a stopped scheduler; call Start to launch it.
func NewScheduler(target Target, cfg Config) *Scheduler {
	return &Scheduler{
		target:  target,
		cfg:     cfg.withDefaults(),
		trigger: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

// Start launches the background goroutine. Starting twice is a no-op.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	d := s.withJitter(s.cfg.Interval)
	s.nextRun = s.cfg.Clock().Add(d)
	s.mu.Unlock()
	go s.run(ctx, d)
}

// Stop cancels the scheduler and blocks until its goroutine has
// drained, including any in-flight pass (which sees the cancelled
// context through the lake's ctxErr checks and returns early). Safe to
// call more than once, and a no-op if Start never ran.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	started := s.started
	cancel := s.cancel
	s.stopped = true
	s.mu.Unlock()
	if !started {
		return
	}
	cancel()
	<-s.done
}

// Stopped reports whether the scheduler is not running (Stop was
// called, or Start never was) — status snapshots use it to avoid
// advertising a next firing that will never happen.
func (s *Scheduler) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.started || s.stopped
}

// Trigger requests a staleness check now instead of at the next tick
// (e.g. an operator kick). Non-blocking; coalesces with a pending one.
func (s *Scheduler) Trigger() {
	select {
	case s.trigger <- struct{}{}:
	default:
	}
}

// NextRun reports when the next staleness check fires.
func (s *Scheduler) NextRun() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextRun
}

func (s *Scheduler) run(ctx context.Context, first time.Duration) {
	defer close(s.done)
	timer := time.NewTimer(first)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		case <-s.trigger:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		retry := false
		if s.target.Stale() {
			// An ingest racing this pass bumps the lake's generation
			// past the pass snapshot, so Stale stays true and the next
			// tick schedules another pass — racing ingests are deferred,
			// never lost.
			_, err := s.target.Pass(ctx)
			s.mu.Lock()
			switch {
			case err == nil:
				s.consecFails = 0
			case ctx.Err() != nil:
				// Shutdown mid-pass, not a target failure.
			default:
				s.consecFails++
				retry = true
			}
			s.mu.Unlock()
		}
		if ctx.Err() != nil {
			return
		}
		d := s.withJitter(s.cfg.Interval)
		if retry {
			s.mu.Lock()
			n := s.consecFails
			s.mu.Unlock()
			d = s.withJitter(backoffDelay(s.cfg.RetryBase, s.cfg.RetryMax, n))
			if s.cfg.OnRetry != nil {
				s.cfg.OnRetry(n, d)
			}
		}
		s.mu.Lock()
		s.nextRun = s.cfg.Clock().Add(d)
		s.mu.Unlock()
		timer.Reset(d)
	}
}

func (s *Scheduler) withJitter(d time.Duration) time.Duration {
	return jittered(d, s.cfg.Jitter, rand.Float64)
}

// backoffDelay is base doubled per consecutive failure beyond the
// first, capped at max. n is the consecutive-failure count (>= 1).
func backoffDelay(base, max time.Duration, n int) time.Duration {
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// jittered spreads d by ±frac using rnd in [0,1); delays never drop
// below half of d so backoff stays monotone in spirit.
func jittered(d time.Duration, frac float64, rnd func() float64) time.Duration {
	if frac <= 0 {
		return d
	}
	j := 1 + frac*(2*rnd()-1)
	out := time.Duration(float64(d) * j)
	if out < d/2 {
		out = d / 2
	}
	return out
}
