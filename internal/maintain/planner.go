// Package maintain implements the always-on maintenance subsystem the
// survey's GOODS-style post-hoc cataloging systems run continuously
// (Sec. 6): an incremental maintenance planner that tracks per-dataset
// coverage, so a pass reindexes only datasets ingested since the last
// covered generation, and a background scheduler that watches the
// lake's staleness and re-runs passes automatically — with debounce,
// jittered retry backoff on failure, and clean shutdown.
//
// The package is deliberately lake-agnostic: the planner speaks in
// dataset names, the scheduler in the two-method Target interface, so
// both are unit-testable without assembling a lake and usable by any
// future index owner (e.g. a sharded catalog).
package maintain

import (
	"sort"
	"sync"
)

// Plan describes what one maintenance pass must do.
type Plan struct {
	// Full selects a from-scratch rebuild of every index; Reason says
	// why ("first-pass", "eviction", or a forced reason such as
	// "derive").
	Full   bool
	Reason string
	// New lists the datasets an incremental pass must index — the ones
	// present now but not covered by any previous pass.
	New []string
	// Evicted lists previously covered datasets that have disappeared;
	// non-empty Evicted always forces Full (indexes have no per-dataset
	// delete, so removal means rebuild).
	Evicted []string
	// forceSeq snapshots the planner's force counter at planning time,
	// so Commit can tell whether a ForceFull landed after this plan was
	// computed (a Derive racing the running pass) and must survive the
	// commit.
	forceSeq uint64
}

// Planner tracks which datasets completed maintenance passes have
// covered, and turns the current dataset listing into the cheapest
// correct plan: incremental when only additions happened, full on the
// first pass, after an eviction, or when a caller forced it.
type Planner struct {
	mu       sync.Mutex
	primed   bool // a full pass has committed at least once
	covered  map[string]bool
	force    string // non-empty: next plan is Full with this reason
	forceSeq uint64 // bumped by every ForceFull
}

// NewPlanner creates a planner with no coverage; its first plan is
// always a full pass.
func NewPlanner() *Planner {
	return &Planner{covered: map[string]bool{}}
}

// ForceFull makes the next plan a full rebuild, recording why. Used
// when an index mutation cannot be expressed as an incremental add
// (derived tables shifting corpus statistics, or recovery after a
// failed incremental pass left indexes half-updated).
func (p *Planner) ForceFull(reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.force = reason
	p.forceSeq++
}

// Snapshot returns the current force counter. Callers gathering a
// dataset listing snapshot first and pass the value to PlanAt, so a
// ForceFull that lands while they list (a Derive racing the pass) is
// never cleared by a commit whose listing predates it.
func (p *Planner) Snapshot() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forceSeq
}

// Plan computes the pass plan for the current dataset listing. It does
// not change coverage; call Commit after the pass succeeds. Use PlanAt
// with a pre-listing Snapshot when the listing can race a ForceFull.
func (p *Planner) Plan(current []string) Plan {
	return p.PlanAt(p.Snapshot(), current)
}

// PlanAt is Plan with an explicit force snapshot taken before the
// caller gathered the current listing.
func (p *Planner) PlanAt(seq uint64, current []string) Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.primed {
		return Plan{Full: true, Reason: "first-pass", New: append([]string(nil), current...), forceSeq: seq}
	}
	if p.force != "" {
		return Plan{Full: true, Reason: p.force, New: append([]string(nil), current...), forceSeq: seq}
	}
	cur := make(map[string]bool, len(current))
	var added []string
	for _, name := range current {
		cur[name] = true
		if !p.covered[name] {
			added = append(added, name)
		}
	}
	var evicted []string
	for name := range p.covered {
		if !cur[name] {
			evicted = append(evicted, name)
		}
	}
	sort.Strings(added)
	sort.Strings(evicted)
	if len(evicted) > 0 {
		return Plan{Full: true, Reason: "eviction", New: append([]string(nil), current...), Evicted: evicted, forceSeq: seq}
	}
	return Plan{New: added, forceSeq: seq}
}

// FullPlanAt returns an explicitly requested full-rebuild plan over
// the current listing (the blocking Maintain entry point), with the
// same force bookkeeping as PlanAt.
func (p *Planner) FullPlanAt(seq uint64, reason string, current []string) Plan {
	return Plan{Full: true, Reason: reason, New: append([]string(nil), current...), forceSeq: seq}
}

// Commit records a successfully executed plan: a full pass replaces
// coverage with the current listing, and an incremental pass adds its
// new datasets. A full commit clears a forced rebuild only if the
// force was already visible when the plan was computed — a ForceFull
// that landed mid-pass (Derive racing the pass) names a dataset the
// committed listing predates, so it must survive into the next plan.
func (p *Planner) Commit(plan Plan, current []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if plan.Full {
		p.covered = make(map[string]bool, len(current))
		for _, name := range current {
			p.covered[name] = true
		}
		p.primed = true
		if plan.forceSeq == p.forceSeq {
			p.force = ""
		}
		return
	}
	for _, name := range plan.New {
		p.covered[name] = true
	}
}

// CoveredCount returns how many datasets the completed passes cover.
func (p *Planner) CoveredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.covered)
}

// Covered returns the covered dataset names, sorted. Persistence
// checkpoints serialize this so a reopened lake resumes incrementally.
func (p *Planner) Covered() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.covered))
	for name := range p.covered {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Restore replaces the planner's coverage with a persisted set, as if a
// pass over exactly those datasets had committed. Replay calls it after
// rebuilding indexes from a snapshot or coverage record; with primed
// set, the reopened lake's first pass plans incrementally instead of
// "first-pass" full. Any pending force is cleared — the restored
// coverage is the restored truth.
func (p *Planner) Restore(covered []string, primed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.covered = make(map[string]bool, len(covered))
	for _, name := range covered {
		p.covered[name] = true
	}
	p.primed = primed
	p.force = ""
}

// Evict drops one dataset from coverage without forcing a full rebuild.
// Callers that can delete the dataset from every index incrementally
// (Explorer.Remove and friends) use this so the disappearance is not
// misread by the next Plan as an untracked eviction.
func (p *Planner) Evict(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.covered, name)
}
