// Package core assembles the paper's primary contribution — the
// function-oriented three-tier data lake architecture of Fig. 2 — into
// an executable system: a storage tier (the polystore), an ingestion
// tier (metadata extraction + modeling), a maintenance tier
// (organization, discovery, integration, enrichment, cleaning,
// evolution, provenance), and an exploration tier (query-driven
// discovery + heterogeneous querying), plus the cross-cutting concerns
// the survey calls out: zones, user roles (Sec. 3.3), and the
// swamp-guard metadata checks motivated by the Gartner critique
// (Sec. 2.2).
//
// Every Lake operation takes a context.Context and honors cancellation
// in its long loops, and every failure is classified through the
// lakeerr taxonomy so callers (and the REST layer) dispatch on error
// codes instead of message text.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"golake/internal/admission"
	"golake/internal/clean"
	"golake/internal/discovery"
	"golake/internal/enrich"
	"golake/internal/explore"
	"golake/internal/extract"
	"golake/internal/maintain"
	"golake/internal/metamodel"
	"golake/internal/obs"
	"golake/internal/organize"
	"golake/internal/persist"
	"golake/internal/provenance"
	"golake/internal/query"
	"golake/internal/remote"
	"golake/internal/storage/polystore"
	"golake/internal/table"
	"golake/lakeerr"
)

// Role is a data lake user role (Sec. 3.3).
type Role string

// The user roles of the business data lake scenario.
const (
	RoleDataScientist Role = "data-scientist"
	RoleCurator       Role = "curator"
	RoleGovernance    Role = "governance"
	RoleOperations    Role = "operations"
)

// Zones a dataset progresses through (zone architecture, Sec. 3.1).
const (
	ZoneRaw     = "raw"
	ZoneCurated = "curated"
	ZoneTrusted = "trusted"
)

// Errors returned by the lake. Each sentinel is wrapped in a
// lakeerr.Error carrying its code, so both errors.Is on the sentinel
// and lakeerr.CodeOf on the classification work.
var (
	ErrNoSuchUser    = errors.New("core: unknown user")
	ErrNotAuthorized = errors.New("core: not authorized")
	ErrNotMaintained = errors.New("core: run Maintain before exploring")
	ErrExists        = errors.New("core: dataset already ingested")
)

// Option configures an assembled lake.
type Option func(*options)

type options struct {
	clock         func() time.Time
	pushdown      bool
	maxResults    int
	logger        *slog.Logger
	autoMaintain  time.Duration
	fanIn         query.FanInOptions
	backend       persist.Backend
	snapshotEvery int64
	metricsOff    bool
	admission     admission.Config
	admissionSet  bool
	remotes       []remoteSpec
	routeRemotes  bool
}

// remoteSpec is one WithRemoteStore registration, resolved in Open.
type remoteSpec struct {
	name    string
	baseURL string
	opts    remote.Options
}

// WithClock substitutes the lake's time source (tests, replays).
func WithClock(clock func() time.Time) Option {
	return func(o *options) { o.clock = clock }
}

// WithPushdown toggles predicate/projection pushdown in the federated
// query engine (on by default; the benchmark harness turns it off).
func WithPushdown(enabled bool) Option {
	return func(o *options) { o.pushdown = enabled }
}

// WithMaxResults caps the row count of QuerySQL results and the K of
// exploration requests. Zero means unlimited.
func WithMaxResults(n int) Option {
	return func(o *options) { o.maxResults = n }
}

// WithLogger installs a structured logger; the REST layer's request
// logging middleware uses it. Nil (the default) disables logging.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) { o.logger = l }
}

// WithMetrics toggles the lake's metric registry (on by default): HTTP,
// query, maintenance, and persistence series served at GET /v1/metrics
// in the Prometheus text format and readable through Lake.Metrics.
// Disabling removes the instrumentation fold entirely — the overhead
// benchmark's baseline.
func WithMetrics(enabled bool) Option {
	return func(o *options) { o.metricsOff = !enabled }
}

// WithFanIn pins the lake-wide fan-in default for query requests that
// leave their FanIn unset: up to workers member-store scans are opened
// and drained in parallel (workers = 1 forces the sequential union),
// each buffering roughly bufferRows rows ahead of the consumer (the
// backpressure window, approximate by up to one in-flight batch; 0
// means the default). Without this option, Lake.Query requests default
// to one puller per CPU. Result sets are identical at any width; the
// interleaving of rows across sources is arrival order unless the
// query carries an ORDER BY, which makes the output deterministic.
// The deprecated QueryStream/QueryStreamFanIn shims still read this
// configuration as their frozen sequential-unless-configured default.
func WithFanIn(workers, bufferRows int) Option {
	return func(o *options) {
		o.fanIn = query.FanInOptions{Workers: workers, BufferRows: bufferRows}
	}
}

// WithPersistence attaches a durability backend: every mutating
// operation (ingest, derive, evict, user registration, provenance
// event, maintenance coverage) appends a checksummed record to the
// backend's write-ahead log, a periodic snapshot truncates the log, and
// Open replays snapshot + WAL so a reopened lake — even one that was
// hard-stopped without Close — serves the same query results and
// resumes maintenance incrementally. A torn WAL tail (crash mid-append)
// is detected by per-record checksums and dropped with a warning, never
// a failed open. Close flushes a final snapshot.
func WithPersistence(backend persist.Backend) Option {
	return func(o *options) { o.backend = backend }
}

// WithSnapshotEvery sets the WAL size (bytes) that triggers a
// checkpoint (snapshot + log truncation). Default 4 MiB; zero or
// negative disables size-triggered checkpoints (Close still flushes).
func WithSnapshotEvery(walBytes int64) Option {
	return func(o *options) { o.snapshotEvery = walBytes }
}

// WithAdmission places an admission controller in front of every query
// entry point (Lake.Query and everything that shims onto it, including
// POST /v1/query). The controller enforces, per the config: per-user
// concurrency quotas with bounded-wait queueing, per-user token-bucket
// rate limits, a global in-flight ceiling, and default/maximum query
// deadlines and memory budgets. Rejections are typed lakeerr failures —
// resource_exhausted for quota/rate shedding (HTTP 429 with a
// Retry-After hint), unavailable for global saturation (HTTP 503) — so
// clients can distinguish "back off and retry" from "the lake is
// overloaded". The zero Config admits everything; without this option
// no controller is installed at all.
func WithAdmission(cfg admission.Config) Option {
	return func(o *options) {
		o.admission = cfg
		o.admissionSet = true
	}
}

// WithRemoteStore federates another golake into this one as a member
// store named name: queries addressing "name:dataset" open a streaming
// POST /v1/query against baseURL, with predicates, projections, and
// ORDER BY+LIMIT pushed down as an ordinary SELECT (pushdown follows
// WithPushdown). To the fan-in machinery the remote lake is just a slow
// member store — scatter-gather across N members is the same
// ParallelUnion that drains local scans. Remote failures are typed: the
// member's error envelope keeps its lakeerr code, connect failures
// retry with capped backoff and then classify as unavailable, and a
// connection dropped mid-stream is an unavailable error, never a silent
// short result.
func WithRemoteStore(name, baseURL string, opts remote.Options) Option {
	return func(o *options) {
		o.remotes = append(o.remotes, remoteSpec{name: name, baseURL: baseURL, opts: opts})
	}
}

// WithRemoteRouting enables consistent-hash placement over the
// registered remote members: a bare dataset name that resolves to no
// local store is routed to the member a 64-vnode hash ring assigns it,
// so "SELECT * FROM orders" finds the member holding orders without the
// caller naming it. Placements are deterministic for a given member
// set, and mostly stable when members are added or removed.
func WithRemoteRouting(enabled bool) Option {
	return func(o *options) { o.routeRemotes = enabled }
}

// WithAutoMaintain starts a background maintenance scheduler when the
// lake opens: every interval it checks Stale and, when new data
// arrived, runs an incremental pass — so ingested data becomes
// explorable without an operator calling Maintain. Failed passes retry
// with jittered exponential backoff. Call Close to stop the scheduler.
func WithAutoMaintain(interval time.Duration) Option {
	return func(o *options) { o.autoMaintain = interval }
}

// Lake is one assembled data lake instance.
type Lake struct {
	// Storage tier.
	Poly *polystore.Poly
	// Ingestion-tier metadata models.
	GEMMS  *metamodel.GEMMSModel
	Handle *metamodel.HANDLE
	// Maintenance-tier components.
	Catalog *organize.Catalog
	Tracker *provenance.Tracker
	// Exploration tier.
	Explorer *explore.Explorer
	Engine   *query.Engine

	mu    sync.RWMutex
	users map[string]Role
	// tokens maps sha256-hex bearer-token digests to user names; the
	// plaintext token is never stored. Guarded by mu alongside users.
	tokens map[string]string
	// ingestGen counts ingests; maintainedGen records the ingest
	// generation the last completed Maintain pass covered. Together
	// they make Maintain safe under concurrent ingest: a racing ingest
	// bumps ingestGen past the snapshot, so the lake reports itself
	// stale instead of silently claiming freshness.
	ingestGen     uint64
	maintainedGen uint64
	maintained    bool
	// nameToPath indexes model-store names (relational table, document
	// collection) back to ingest paths, so per-query provenance
	// resolution is O(1) instead of O(placements).
	nameToPath map[string]string
	// pendingPromote accumulates paths ingested since the last
	// maintenance pass, so an incremental pass promotes zones in
	// O(new data) instead of rescanning every placement.
	pendingPromote []string
	// ingestLog / deriveLog record the mutating operations in commit
	// order; the persistence snapshot serializes them (guarded by mu).
	ingestLog []ingestMeta
	deriveLog []deriveMeta

	maintMu  sync.Mutex // serializes Maintain passes
	ingestMu sync.Mutex // makes the duplicate-path check atomic

	// Incremental-maintenance state. planner tracks per-dataset
	// coverage; knn is the persistent DS-kNN categorizer incremental
	// passes extend (both guarded by maintMu). sched is the background
	// scheduler WithAutoMaintain starts (set once in Open, nil without).
	planner *maintain.Planner
	knn     *organize.DSKNN
	sched   *maintain.Scheduler
	// pers is the persistence layer WithPersistence attaches (set once
	// in Open, nil without).
	pers *persister

	// Pass bookkeeping for the maintenance status snapshot (guarded by
	// mu).
	maintRunning  bool
	passesRun     uint64
	maintFailures uint64
	lastMaintErr  string
	lastPass      *maintain.PassStats
	lastPassTime  time.Time

	clock      func() time.Time
	maxResults int
	logger     *slog.Logger
	// metrics is the lake's metric surface (nil with WithMetrics(false));
	// every layer records through its nil-safe observe helpers.
	metrics *lakeMetrics
	// adm is the admission controller WithAdmission installs (nil
	// without — every query is admitted unconditionally).
	adm *admission.Controller
}

// defaultSnapshotEvery is the WAL size that triggers a checkpoint when
// WithSnapshotEvery is not given.
const defaultSnapshotEvery = 4 << 20

// Open assembles a lake rooted at dir. With WithPersistence, the
// backend's snapshot and WAL are replayed before the lake is returned:
// a previously persisted lake resumes with its datasets, users, audit
// trail, and maintenance coverage intact.
func Open(dir string, opts ...Option) (*Lake, error) {
	o := options{pushdown: true, snapshotEvery: defaultSnapshotEvery}
	for _, opt := range opts {
		opt(&o)
	}
	if o.clock == nil {
		o.clock = time.Now
	}
	poly, err := polystore.New(dir)
	if err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeUnavailable, err)
	}
	l := &Lake{
		Poly:       poly,
		GEMMS:      metamodel.NewGEMMS(),
		Handle:     metamodel.NewHANDLE(),
		Catalog:    organize.NewCatalog(o.clock),
		Tracker:    provenance.NewTracker(o.clock),
		Explorer:   explore.NewExplorer(),
		planner:    maintain.NewPlanner(),
		knn:        organize.NewDSKNN(),
		users:      map[string]Role{},
		tokens:     map[string]string{},
		nameToPath: map[string]string{},
		clock:      o.clock,
		maxResults: o.maxResults,
		logger:     o.logger,
	}
	if !o.metricsOff {
		l.metrics = newLakeMetrics()
	}
	if o.admissionSet {
		l.adm = admission.New(o.admission, o.clock)
		if l.metrics != nil {
			l.adm.SetHooks(admission.Hooks{
				Admitted:  l.metrics.observeAdmitted,
				Queued:    l.metrics.observeAdmissionQueued,
				Shed:      func(user, _ string) { l.metrics.observeAdmissionShed(user) },
				Released:  l.metrics.observeAdmissionReleased,
				QueueWait: l.metrics.observeAdmissionWait,
			})
		}
	}
	l.Engine = query.NewEngine(poly)
	l.Engine.PushDown = o.pushdown
	l.Engine.FanIn = o.fanIn
	if len(o.remotes) > 0 {
		l.Engine.Remotes = make(map[string]query.RemoteOpener, len(o.remotes))
		names := make([]string, 0, len(o.remotes))
		for _, rs := range o.remotes {
			c := remote.New(rs.name, rs.baseURL, rs.opts)
			// The observer is nil-safe, so member clients stay wired even
			// with WithMetrics(false).
			c.SetObserver(remoteObserver{m: l.metrics})
			l.Engine.Remotes[rs.name] = c
			names = append(names, rs.name)
		}
		if o.routeRemotes {
			ring := remote.NewRing(names, 0)
			l.Engine.Locate = func(dataset string) (string, bool) { return ring.Locate(dataset) }
		}
	}
	if o.backend != nil {
		l.pers = &persister{backend: o.backend, threshold: o.snapshotEvery}
		if err := l.pers.restore(l); err != nil {
			return nil, err
		}
		// The hook persists every provenance event as an audit record;
		// installed after replay so restored events are not re-appended.
		l.Tracker.SetHook(func(ev provenance.Event) {
			l.persistRecord(&walRecord{Kind: recAudit, Event: &ev})
		})
	}
	if o.autoMaintain > 0 {
		l.sched = maintain.NewScheduler(schedTarget{l}, maintain.Config{
			Interval: o.autoMaintain,
			Clock:    o.clock,
			OnRetry: func(consecutive int, delay time.Duration) {
				l.metrics.observeRetry()
				if l.logger != nil {
					l.logger.Warn("maintenance retry scheduled",
						"consecutive_failures", consecutive, "delay", delay)
				}
			},
		})
		l.sched.Start()
	}
	return l, nil
}

// Close shuts the lake down cleanly: the background maintenance
// scheduler is stopped first and fully drained (an in-flight pass
// observes cancellation and returns), and only then — with maintMu held
// so no pass can slip in between — is the final persistence snapshot
// flushed and the backend closed. Safe to call more than once; a lake
// opened without WithAutoMaintain or WithPersistence closes trivially.
func (l *Lake) Close() error {
	if l.sched != nil {
		l.sched.Stop()
	}
	for _, opener := range l.Engine.Remotes {
		if c, ok := opener.(interface{ CloseIdle() }); ok {
			c.CloseIdle()
		}
	}
	if l.pers != nil {
		l.maintMu.Lock()
		defer l.maintMu.Unlock()
		return l.pers.close(l)
	}
	return nil
}

// schedTarget adapts the Lake to the scheduler's Target interface and
// routes pass outcomes into the configured logger.
type schedTarget struct{ l *Lake }

func (t schedTarget) Stale() bool { return t.l.Stale() }

func (t schedTarget) Pass(ctx context.Context) (maintain.PassStats, error) {
	rep, err := t.l.MaintainIncremental(ctx)
	if err != nil {
		if t.l.logger != nil && ctx.Err() == nil {
			t.l.logger.Warn("maintenance pass failed", "error", err)
		}
		return maintain.PassStats{}, err
	}
	if t.l.logger != nil {
		t.l.logger.Info("maintenance pass",
			"mode", rep.Mode, "datasets", rep.DatasetsReindexed,
			"tables", rep.Tables, "duration", rep.Duration)
	}
	return rep.stats(), nil
}

// AddUser registers a user with a role.
func (l *Lake) AddUser(name string, role Role) {
	l.mu.Lock()
	l.users[name] = role
	l.mu.Unlock()
	l.persistRecord(&walRecord{Kind: recUser, Name: name, Role: string(role)})
}

// AddToken registers a bearer token for an already-registered user.
// Only the token's sha256 digest is kept (and persisted), so neither
// the WAL nor a snapshot ever holds the plaintext. Requests carrying
// "Authorization: Bearer <token>" authenticate as the user; a remote
// member lake configured with the token authenticates federated hops
// the same way, so the remote path is never an auth bypass.
func (l *Lake) AddToken(user, token string) error {
	if _, err := l.roleOf(user); err != nil {
		return err
	}
	if token == "" {
		return lakeerr.Errorf(lakeerr.CodeInvalidQuery, "core: empty bearer token")
	}
	h := hashToken(token)
	l.mu.Lock()
	l.tokens[h] = user
	l.mu.Unlock()
	l.persistRecord(&walRecord{Kind: recToken, Name: user, Token: h})
	return nil
}

// userForToken resolves a bearer token to its registered user.
func (l *Lake) userForToken(token string) (string, bool) {
	h := hashToken(token)
	l.mu.RLock()
	u, ok := l.tokens[h]
	l.mu.RUnlock()
	return u, ok
}

// hashToken is the stored form of a bearer token.
func hashToken(token string) string {
	sum := sha256.Sum256([]byte(token))
	return hex.EncodeToString(sum[:])
}

// roleOf returns the user's role.
func (l *Lake) roleOf(user string) (Role, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.users[user]
	if !ok {
		return "", lakeerr.Errorf(lakeerr.CodeUnauthorized, "%w: %s", ErrNoSuchUser, user)
	}
	return r, nil
}

// ctxErr classifies a context failure as CodeUnavailable.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return lakeerr.Wrap(lakeerr.CodeUnavailable, err)
	}
	return nil
}

// IngestResult reports where an object landed and what was extracted.
type IngestResult struct {
	Placement polystore.Placement
	Metadata  *extract.Metadata
}

// Ingest runs the full ingestion-tier workflow for one object: store
// raw bytes (routing the parsed form to the matching member store),
// extract metadata, register it in the GEMMS model, map it onto HANDLE
// in the raw zone, catalog it, and record provenance. Re-ingesting an
// existing path is a conflict.
func (l *Lake) Ingest(ctx context.Context, path string, data []byte, source, user string) (*IngestResult, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	// Hold ingestMu across the existence check and the store writes so
	// two concurrent ingests of the same path cannot both pass the
	// check and silently overwrite each other.
	l.ingestMu.Lock()
	res, err := l.ingestLocked(path, data, source, user)
	if err != nil {
		l.ingestMu.Unlock()
		return nil, err
	}
	// The WAL record precedes the provenance event so replay sees the
	// dataset before its audit trail; both land while ingestMu is held,
	// keeping the log in commit order.
	l.persistRecord(&walRecord{Kind: recIngest, Path: path, Data: data, Source: source, User: user})
	l.ingestMu.Unlock()
	l.Tracker.Ingest(path, source, user)
	l.logAudit(ctx, "ingest", path, user)
	return res, nil
}

// ingestLocked runs the ingestion pipeline minus provenance capture and
// WAL append — the shared body of live Ingest and persistence replay.
// ingestMu must be held in live operation.
func (l *Lake) ingestLocked(path string, data []byte, source, user string) (*IngestResult, error) {
	if _, err := l.Catalog.Entry(path); err == nil {
		return nil, lakeerr.Errorf(lakeerr.CodeConflict, "%w: %s", ErrExists, path)
	}
	// Distinct paths sharing a basename would land on the same
	// model-store name and silently clobber each other's table — treat
	// that as a conflict too.
	l.mu.RLock()
	prev, taken := l.nameToPath[polystore.DerivedName(path)]
	l.mu.RUnlock()
	if taken && prev != path {
		return nil, lakeerr.Errorf(lakeerr.CodeConflict,
			"%w: %s collides with %s on name %q", ErrExists, path, prev, polystore.DerivedName(path))
	}
	pl, err := l.Poly.Ingest(path, data)
	if err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	md, err := extract.Extract(path, data)
	if err != nil {
		// Raw bytes stay; metadata extraction failure leaves the
		// object catalogued as swamp-risk (detectable by SwampCheck).
		md = &extract.Metadata{Path: path, Format: pl.Format, Properties: map[string]string{}}
	}
	obj := metamodel.FromExtraction(md)
	l.GEMMS.Register(obj)
	if err := l.Handle.ImportGEMMS(obj, ZoneRaw); err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	if _, err := l.Catalog.Register(path); err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	for k, v := range md.Properties {
		if err := l.Catalog.Annotate(path, organize.GroupContent, k, v); err != nil {
			return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
		}
	}
	if err := l.Catalog.Annotate(path, organize.GroupProvenance, "source", source); err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	l.mu.Lock()
	l.ingestGen++
	l.pendingPromote = append(l.pendingPromote, path)
	l.ingestLog = append(l.ingestLog, ingestMeta{path: path, source: source, user: user})
	if pl.TableName != "" {
		l.nameToPath[pl.TableName] = path
	}
	if pl.Collection != "" {
		l.nameToPath[pl.Collection] = path
	}
	l.mu.Unlock()
	return &IngestResult{Placement: pl, Metadata: md}, nil
}

// IngestItem is one object of a bulk load.
type IngestItem struct {
	Path   string
	Data   []byte
	Source string
}

// IngestBatch ingests items in order, stopping at the first failure or
// cancellation. It returns the results of the items that landed; on
// error the ingested prefix stays in the lake (run Maintain to index
// it) and the error identifies the failing item.
func (l *Lake) IngestBatch(ctx context.Context, user string, items []IngestItem) ([]IngestResult, error) {
	out := make([]IngestResult, 0, len(items))
	for _, it := range items {
		res, err := l.Ingest(ctx, it.Path, it.Data, it.Source, user)
		if err != nil {
			return out, fmt.Errorf("ingest %s: %w", it.Path, err)
		}
		out = append(out, *res)
	}
	return out, nil
}

// MaintenanceReport summarizes one maintenance pass.
type MaintenanceReport struct {
	// Mode is "full" or "incremental"; Reason says why a pass went full
	// ("first-pass", "eviction", "derive", "requested", "recovery").
	Mode   string
	Reason string
	// Tables is the corpus size after the pass; DatasetsReindexed is
	// how many datasets the pass actually profiled and indexed — the
	// incremental win: 1 new dataset in a maintained lake of N costs
	// O(1 dataset), not O(N).
	Tables            int
	DatasetsReindexed int
	Categories        map[int][]string
	RFDs              []enrich.RFD
	IndexedCols       int
	// CleanViolations counts CLAMS constraint violations found in the
	// datasets this pass profiled (cleaning-function triage input).
	CleanViolations int
	// Generation is the ingest generation this pass covered; Stale
	// reports whether new ingests arrived while the pass ran (the next
	// pass covers them).
	Generation uint64
	Stale      bool
	// Duration is the wall-clock cost of the pass.
	Duration time.Duration
}

// stats projects the report onto the wire-level pass summary.
func (r *MaintenanceReport) stats() maintain.PassStats {
	return maintain.PassStats{
		Mode: r.Mode, Reason: r.Reason,
		Datasets: r.DatasetsReindexed, Tables: r.Tables,
		Generation: r.Generation, Duration: r.Duration,
	}
}

// Maintain runs a full maintenance pass over all relational datasets:
// rebuilds the exploration indexes, categorizes datasets (DS-kNN),
// discovers relaxed FDs, flags cleaning candidates (CLAMS), and
// promotes profiled datasets to the curated zone. Concurrent passes
// serialize; ingests racing the pass are detected via the ingest
// generation and surface as Stale in the report rather than being
// silently claimed as indexed. Prefer MaintainIncremental unless a
// from-scratch rebuild is the point.
func (l *Lake) Maintain(ctx context.Context) (*MaintenanceReport, error) {
	l.maintMu.Lock()
	defer l.maintMu.Unlock()
	return l.maintainLocked(ctx, true)
}

// MaintainIncremental runs the cheapest correct maintenance pass:
// datasets ingested since the last covered generation are indexed
// incrementally — O(new data) instead of O(lake) — while the first
// pass, evictions, derived tables, and recovery after a failed pass
// fall back to a full rebuild. This is what the background scheduler
// runs.
func (l *Lake) MaintainIncremental(ctx context.Context) (*MaintenanceReport, error) {
	l.maintMu.Lock()
	defer l.maintMu.Unlock()
	return l.maintainLocked(ctx, false)
}

// TriggerMaintain runs an incremental pass unless one is already in
// flight, in which case it reports a conflict instead of queueing.
// On conflict with auto-maintenance enabled, the scheduler is kicked
// so any data the running pass misses is covered right after it
// drains, not an interval later. This is the POST /v1/maintenance
// entry point.
func (l *Lake) TriggerMaintain(ctx context.Context) (*MaintenanceReport, error) {
	if !l.maintMu.TryLock() {
		if l.sched != nil {
			l.sched.Trigger()
		}
		return nil, lakeerr.Errorf(lakeerr.CodeConflict, "core: a maintenance pass is already running")
	}
	defer l.maintMu.Unlock()
	return l.maintainLocked(ctx, false)
}

// maintainLocked executes one pass and updates the status bookkeeping;
// maintMu must be held.
func (l *Lake) maintainLocked(ctx context.Context, wantFull bool) (*MaintenanceReport, error) {
	start := time.Now()
	l.mu.Lock()
	l.maintRunning = true
	l.mu.Unlock()
	rep, err := l.runPass(ctx, wantFull)
	l.mu.Lock()
	l.maintRunning = false
	if err != nil {
		l.maintFailures++
		l.lastMaintErr = err.Error()
	} else {
		rep.Duration = time.Since(start)
		l.passesRun++
		l.lastMaintErr = ""
		stats := rep.stats()
		l.lastPass = &stats
		l.lastPassTime = l.clock()
	}
	l.mu.Unlock()
	if err != nil {
		l.metrics.observeMaintPass("", 0, 0, true)
	} else {
		l.metrics.observeMaintPass(rep.Mode, rep.Duration, rep.DatasetsReindexed, false)
	}
	if err == nil {
		// Checkpoint the planner coverage so a reopened lake resumes
		// incrementally instead of re-running this pass from scratch.
		l.persistCoverage()
	}
	return rep, err
}

// runPass plans and executes one maintenance pass; maintMu must be
// held.
func (l *Lake) runPass(ctx context.Context, wantFull bool) (*MaintenanceReport, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	// Snapshot the planner's force counter before anything else: a
	// Derive landing after this point keeps its forced rebuild across
	// this pass's commit (its table may be missing from our listing).
	forceSeq := l.planner.Snapshot()
	// Snapshot the generation and drain the pending zone promotions
	// together: ingests racing the pass land after this point and stay
	// pending for the next one.
	l.mu.Lock()
	gen := l.ingestGen
	pending := l.pendingPromote
	l.pendingPromote = nil
	l.mu.Unlock()
	// A failed pass gives its drained promotions back so the recovery
	// pass still covers them.
	restorePending := func() {
		l.mu.Lock()
		l.pendingPromote = append(pending, l.pendingPromote...)
		l.mu.Unlock()
	}
	tables, err := l.relationalTables()
	if err != nil {
		restorePending()
		return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	names := make([]string, len(tables))
	byName := make(map[string]*table.Table, len(tables))
	for i, t := range tables {
		names[i] = t.Name
		byName[t.Name] = t
	}
	plan := l.planner.PlanAt(forceSeq, names)
	if wantFull && !plan.Full {
		plan = l.planner.FullPlanAt(forceSeq, "requested", names)
	}
	var rep *MaintenanceReport
	var ex *explore.Explorer
	if plan.Full {
		// The full pass rescans every placement for zone promotion, a
		// superset of the drained pending paths.
		rep, ex, err = l.fullPass(ctx, tables)
	} else {
		fresh := make([]*table.Table, len(plan.New))
		for i, name := range plan.New {
			fresh[i] = byName[name]
		}
		rep, err = l.incrementalPass(ctx, len(tables), fresh, pending)
	}
	if err != nil {
		restorePending()
		if !plan.Full {
			// An aborted incremental pass may have left the live
			// indexes half-updated; rebuild from scratch next time.
			l.planner.ForceFull("recovery")
		}
		return nil, err
	}
	rep.Mode = "incremental"
	if plan.Full {
		rep.Mode = "full"
	}
	rep.Reason = plan.Reason
	rep.Generation = gen
	l.planner.Commit(plan, names)
	l.mu.Lock()
	if ex != nil {
		l.Explorer = ex
	}
	l.maintained = true
	if gen > l.maintainedGen {
		l.maintainedGen = gen
	}
	rep.Stale = l.ingestGen > l.maintainedGen
	l.mu.Unlock()
	return rep, nil
}

// fullPass rebuilds every index from scratch. It indexes into a fresh
// Explorer and returns it for runPass to swap in atomically with the
// generation bookkeeping: in-flight Explore calls keep reading the
// previous index instead of racing the rebuild.
func (l *Lake) fullPass(ctx context.Context, tables []*table.Table) (*MaintenanceReport, *explore.Explorer, error) {
	rep := &MaintenanceReport{Tables: len(tables), DatasetsReindexed: len(tables)}
	ex := explore.NewExplorer()
	if err := ex.Index(tables); err != nil {
		return nil, nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	knn := organize.NewDSKNN()
	for _, t := range tables {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, err
		}
		knn.Add(t)
		rep.IndexedCols += t.NumCols()
	}
	rep.Categories = knn.Categories()
	for _, t := range tables {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, err
		}
		rep.RFDs = append(rep.RFDs, enrich.DiscoverRFDs(t, 0.95)...)
		rep.CleanViolations += cleanViolations(t)
	}
	if err := l.promoteCurated(ctx); err != nil {
		return nil, nil, err
	}
	l.knn = knn
	return rep, ex, nil
}

// incrementalPass indexes only the fresh datasets into the live
// structures: the Explorer adds them under its internal lock (readers
// keep answering), DS-kNN classifies them against the existing
// categories, RFD/clean profiling runs per new dataset only, and zone
// promotion covers just the drained pending ingests — every step is
// O(new data), not O(lake).
func (l *Lake) incrementalPass(ctx context.Context, corpusSize int, fresh []*table.Table, pending []string) (*MaintenanceReport, error) {
	rep := &MaintenanceReport{Tables: corpusSize, DatasetsReindexed: len(fresh)}
	l.mu.RLock()
	ex := l.Explorer
	l.mu.RUnlock()
	if err := ex.Add(fresh...); err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	for _, t := range fresh {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		l.knn.Add(t)
		rep.IndexedCols += t.NumCols()
		rep.RFDs = append(rep.RFDs, enrich.DiscoverRFDs(t, 0.95)...)
		rep.CleanViolations += cleanViolations(t)
	}
	rep.Categories = l.knn.Categories()
	if err := l.promotePaths(ctx, pending); err != nil {
		return nil, err
	}
	return rep, nil
}

// promoteCurated moves every dataset with extracted metadata into the
// curated zone — the full pass's O(placements) rescan.
func (l *Lake) promoteCurated(ctx context.Context) error {
	paths := make([]string, 0)
	for _, pl := range l.Poly.Placements() {
		paths = append(paths, pl.Path)
	}
	return l.promotePaths(ctx, paths)
}

// promotePaths promotes the given datasets into the curated zone when
// they carry extracted metadata. Idempotent (zone moves are map
// updates); datasets without metadata stay raw and are re-audited by
// SwampAudit instead.
func (l *Lake) promotePaths(ctx context.Context, paths []string) error {
	for _, path := range paths {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if _, err := l.GEMMS.Object(path); err == nil {
			_ = l.Handle.MoveZone(path, ZoneCurated)
		}
	}
	return nil
}

// cleanViolations runs the CLAMS cleaning-function triage over one
// dataset: discover functional denial constraints from the data and
// count the triples violating them.
func cleanViolations(t *table.Table) int {
	return len(clean.RankViolations(t, clean.DiscoverConstraints(t, 0.9)))
}

// MaintenanceStatus snapshots the maintenance subsystem: pass counters
// and the last pass summary, plus the scheduler's next firing when
// auto-maintenance is on.
func (l *Lake) MaintenanceStatus() maintain.Status {
	l.mu.RLock()
	st := maintain.Status{
		Running:   l.maintRunning,
		Stale:     l.staleLocked(),
		PassesRun: l.passesRun,
		Failures:  l.maintFailures,
		LastError: l.lastMaintErr,
	}
	if l.lastPass != nil {
		cp := *l.lastPass
		st.LastPass = &cp
	}
	if !l.lastPassTime.IsZero() {
		tt := l.lastPassTime
		st.LastPassTime = &tt
	}
	l.mu.RUnlock()
	st.Covered = l.planner.CoveredCount()
	// A closed lake's scheduler will never fire again; report it as
	// manual mode instead of advertising a stale next-run time.
	if l.sched != nil && !l.sched.Stopped() {
		st.Auto = true
		if nr := l.sched.NextRun(); !nr.IsZero() {
			st.NextRun = &nr
		}
	}
	if l.pers != nil {
		st.Durability = l.pers.status()
	}
	return st
}

// Stale reports whether ingests have happened since the last completed
// maintenance pass (or no pass has run at all).
func (l *Lake) Stale() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.staleLocked()
}

// staleLocked is the staleness definition; l.mu must be held.
func (l *Lake) staleLocked() bool {
	return !l.maintained || l.ingestGen > l.maintainedGen
}

func (l *Lake) relationalTables() ([]*table.Table, error) {
	var out []*table.Table
	for _, name := range l.Poly.Rel.Names() {
		t, err := l.Poly.Rel.Table(name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// capK bounds an exploration K by the configured maximum.
func (l *Lake) capK(k int) int {
	if l.maxResults > 0 && (k <= 0 || k > l.maxResults) {
		return l.maxResults
	}
	return k
}

// Explore answers a query-driven discovery request on behalf of a
// user; any registered role may explore.
func (l *Lake) Explore(ctx context.Context, user string, req explore.Request) ([]explore.Result, error) {
	if _, err := l.roleOf(user); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	l.mu.RLock()
	ok := l.maintained
	ex := l.Explorer
	l.mu.RUnlock()
	if !ok {
		return nil, lakeerr.Wrap(lakeerr.CodeUnavailable, ErrNotMaintained)
	}
	req.K = l.capK(req.K)
	res, err := ex.Explore(req)
	if err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeInvalidQuery, err)
	}
	return res, nil
}

// Query executes a federated query described by one structured
// request — statement plus typed options (ORDER BY keys, row cap,
// fan-in width, buffer window, explain) — on behalf of a user, and is
// the single entry point every other query method shims onto. The
// returned stream is pull-based (header from Columns, one row per
// Next, cancellation honored between rows) and carries introspection:
// Plan() is the typed execution plan, Stats() the live per-source
// execution counters (rows pulled, time blocked).
//
// Fan-in is on by default: with Request.FanIn zero and no lake-level
// WithFanIn configuration, member-store scans are drained with one
// puller per CPU, and an ORDER BY sort stage keeps the output order
// deterministic at any width. FanIn: 1 forces the sequential union.
// WithMaxResults composes with the statement's LIMIT and the request's
// Limit — the strictest cap wins and bounds the top-K sort heap, not
// just the rows returned. An explain request (Request.Explain or an
// EXPLAIN statement) plans without executing and records no access.
// Row-level failures carry lakeerr codes; the caller must Close the
// stream.
func (l *Lake) Query(ctx context.Context, user string, req query.Request) (*query.RowStream, error) {
	if _, err := l.roleOf(user); err != nil {
		l.metrics.observeRejected()
		return nil, err
	}
	if l.maxResults > 0 {
		req.Limit = query.CombineLimit(req.Limit, l.maxResults)
	}
	// Stamp the caller's identity so remote hops forward it (X-Lake-User)
	// and member lakes audit the originating user, not a proxy identity.
	req.User = user
	// Admission: acquire a slot (or get shed) before any engine work,
	// and fold the controller's default/maximum deadline and memory
	// budget into the request.
	release := func() {}
	if l.adm != nil {
		ticket, err := l.adm.Admit(ctx, user)
		if err != nil {
			l.metrics.observeRejected()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Caller gave up while queued: classify the bare context
				// error like any other cancellation.
				return nil, classifyQueryErr(err)
			}
			// Shed/saturation errors are already typed lakeerr failures
			// carrying Retry-After; re-wrapping would bury the code.
			return nil, err
		}
		release = ticket.Release
		req.Timeout = l.adm.EffectiveTimeout(req.Timeout)
		req.MemoryRows = l.adm.EffectiveMemoryRows(req.MemoryRows)
	}
	// Deadline: bound the open context (tears pullers down) and stamp
	// the stream (deterministic typed error from Next even when the
	// per-call context lacks the deadline).
	cancel := context.CancelFunc(func() {})
	var deadline time.Time
	if req.Timeout > 0 {
		deadline = time.Now().Add(req.Timeout)
		ctx, cancel = context.WithDeadline(ctx, deadline)
	}
	st, err := l.Engine.Query(ctx, req)
	if err != nil {
		cancel()
		release()
		l.metrics.observeRejected()
		return nil, classifyQueryErr(err)
	}
	st.ErrMap = classifyQueryErr
	if !deadline.IsZero() {
		st.SetDeadline(deadline)
	}
	st.OnClose(cancel)
	st.OnClose(release)
	if st.ExplainOnly() && st.Plan().Analyzed == nil {
		// Planning reads catalog shape, not data: nothing to audit, and
		// nothing executes — hand the admission slot back immediately
		// (Release is idempotent, so the OnClose hook firing again is
		// harmless).
		cancel()
		release()
		return st, nil
	}
	if l.metrics != nil {
		// Fold the final execution counters into the registry when the
		// consumer closes the stream — the point where Stats is final.
		// An EXPLAIN ANALYZE already ran to completion inside the
		// engine; fold its analyzed stats immediately instead.
		if a := st.Plan().Analyzed; a != nil {
			l.metrics.observeQuery(st.Plan(), *a, false)
		} else {
			st.OnClose(func() {
				l.metrics.observeQuery(st.Plan(), st.Stats(), st.Err() != nil)
			})
			// Batch-mode streams additionally report each batch's size
			// and fill ratio as it moves through the pipeline.
			if st.BatchMode() {
				st.OnBatch(l.metrics.observeBatch)
			}
		}
	}
	// The engine already parsed the statement; the plan's source list
	// drives the audit trail.
	for _, sp := range st.Plan().Sources {
		if sp.Store == "remote" {
			// The member lake owns the dataset and records the access
			// itself (the forwarded X-Lake-User keeps the audit on the
			// originating user); a local provenance row would invent an
			// entity this lake has never ingested.
			continue
		}
		name := sp.Source
		if _, rest, ok := strings.Cut(sp.Source, ":"); ok {
			name = rest
		}
		// Queries address model-store names; provenance entities are
		// ingest paths. Resolve through the placement index so the
		// audit trail stays on the dataset.
		l.mu.RLock()
		entity, ok := l.nameToPath[name]
		l.mu.RUnlock()
		if !ok {
			entity = name
		}
		_ = l.Tracker.Query(entity, "sql", user)
		l.logAudit(ctx, "query", entity, user)
	}
	return st, nil
}

// logAudit emits one audit event through the structured logger — the
// request-scoped one when the context carries it (already tagged with
// request_id by the middleware), so the audit row joins its HTTP
// access-log line on request_id.
func (l *Lake) logAudit(ctx context.Context, action, entity, user string) {
	obs.Logger(ctx, l.logger).Info("audit", "action", action, "entity", entity, "user", user)
}

// QuerySQL executes a federated query and materializes the full
// result. It is the thin collector over Query: rows are pulled through
// the streaming pipeline into one table, so the WithMaxResults cap
// bounds the work done, not just the rows returned. Like every Query
// request, fan-in is on by default — multi-source results without an
// ORDER BY arrive in arrival order, not source-concatenation order;
// add an ORDER BY (or open the lake WithFanIn(1, 0)) where row order
// matters. EXPLAIN statements have no row result here; use Query.
func (l *Lake) QuerySQL(ctx context.Context, user, sql string) (*table.Table, error) {
	st, err := l.Query(ctx, user, query.Request{SQL: sql})
	if err != nil {
		return nil, err
	}
	if err := rejectExplain(st); err != nil {
		return nil, err
	}
	t, err := query.Collect(ctx, st)
	if err != nil {
		return nil, classifyQueryErr(err)
	}
	return t, nil
}

// rejectExplain fails row-shaped entry points handed an EXPLAIN
// statement: silently returning zero rows would read as an empty
// result, and the pre-Request API surfaced a parse error here.
func rejectExplain(st *query.RowStream) error {
	if !st.ExplainOnly() {
		return nil
	}
	_ = st.Close()
	return lakeerr.Errorf(lakeerr.CodeInvalidQuery,
		"core: EXPLAIN has no row result on this endpoint; use Lake.Query and read Plan()")
}

// QueryStream opens a federated query as a pull-based row stream with
// the lake's configured fan-in (sequential when WithFanIn is unset —
// the frozen pre-Request default, not the CPU-wide one).
//
// Deprecated: use Query, which carries the statement and its execution
// options in one query.Request and returns plan/stats introspection.
func (l *Lake) QueryStream(ctx context.Context, user, sql string) (query.RowIterator, error) {
	return l.QueryStreamFanIn(ctx, user, sql, l.Engine.FanIn)
}

// QueryStreamFanIn is QueryStream with a per-query fan-in override.
//
// Deprecated: use Query with Request.FanIn/BufferRows.
func (l *Lake) QueryStreamFanIn(ctx context.Context, user, sql string, opts query.FanInOptions) (query.RowIterator, error) {
	fanIn := opts.Workers
	if fanIn <= 1 {
		// The legacy contract: no explicit width means sequential, not
		// the Request path's CPU-wide default.
		fanIn = 1
	}
	st, err := l.Query(ctx, user, query.Request{SQL: sql, FanIn: fanIn, BufferRows: opts.BufferRows})
	if err != nil {
		return nil, err
	}
	if err := rejectExplain(st); err != nil {
		return nil, err
	}
	return st, nil
}

// classifyQueryErr maps engine failures onto the taxonomy: syntax
// errors are invalid queries, missing sources/tables are not-found,
// a blown memory budget is resource-exhausted, a missed deadline is
// deadline-exceeded, and cancellation is unavailable. An error already
// carrying a classification — the remote client decodes member error
// envelopes into typed errors — passes through so the member's verdict
// (unauthorized, not_found, unavailable, ...) survives the hop.
func classifyQueryErr(err error) error {
	var typed *lakeerr.Error
	if errors.As(err, &typed) {
		return err
	}
	switch {
	case errors.Is(err, query.ErrSyntax):
		return lakeerr.Wrap(lakeerr.CodeInvalidQuery, err)
	case errors.Is(err, query.ErrUnknownSource), errors.Is(err, polystore.ErrNoTable):
		return lakeerr.Wrap(lakeerr.CodeNotFound, err)
	case errors.Is(err, query.ErrBudgetExceeded):
		return lakeerr.Wrap(lakeerr.CodeResourceExhausted, err)
	case errors.Is(err, context.DeadlineExceeded):
		return lakeerr.Wrap(lakeerr.CodeDeadlineExceeded, err)
	case errors.Is(err, context.Canceled):
		return lakeerr.Wrap(lakeerr.CodeUnavailable, err)
	default:
		return lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
}

// Metadata returns the GEMMS metadata object of a dataset.
func (l *Lake) Metadata(ctx context.Context, id string) (*metamodel.MetadataObject, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	obj, err := l.GEMMS.Object(id)
	if err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeNotFound, err)
	}
	return obj, nil
}

// Audit returns the access log of an entity; only the governance role
// may audit (Sec. 3.3's governance, risk and compliance team).
func (l *Lake) Audit(ctx context.Context, user, entity string) ([]provenance.Event, error) {
	role, err := l.roleOf(user)
	if err != nil {
		return nil, err
	}
	if role != RoleGovernance {
		return nil, lakeerr.Errorf(lakeerr.CodeUnauthorized, "%w: %s needs %s role", ErrNotAuthorized, user, RoleGovernance)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return l.Tracker.AccessLog(entity), nil
}

// Annotate attaches a semantic term to a dataset element; only
// curators (information curators of Sec. 3.3) may annotate.
func (l *Lake) Annotate(ctx context.Context, user, dataset, element, term string) error {
	role, err := l.roleOf(user)
	if err != nil {
		return err
	}
	if role != RoleCurator {
		return lakeerr.Errorf(lakeerr.CodeUnauthorized, "%w: %s needs %s role", ErrNotAuthorized, user, RoleCurator)
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := l.GEMMS.Annotate(dataset, element, term); err != nil {
		return lakeerr.Wrap(lakeerr.CodeNotFound, err)
	}
	return nil
}

// SwampReport is the result of the swamp-guard check: without metadata
// and governance a lake degenerates into a data swamp (Gartner,
// Sec. 2.2).
type SwampReport struct {
	Datasets int
	// WithMetadata counts datasets with a registered metadata object.
	WithMetadata int
	// Swamp lists datasets lacking metadata.
	Swamp []string
}

// Healthy reports whether every dataset carries metadata.
func (r SwampReport) Healthy() bool { return len(r.Swamp) == 0 }

// SwampAudit audits metadata coverage across the lake.
func (l *Lake) SwampAudit(ctx context.Context) (SwampReport, error) {
	if err := ctxErr(ctx); err != nil {
		return SwampReport{}, err
	}
	return l.swampCheck(), nil
}

// SwampCheck audits metadata coverage across the lake.
//
// Deprecated: use SwampAudit, which takes a context like every other
// Lake operation.
func (l *Lake) SwampCheck() SwampReport { return l.swampCheck() }

func (l *Lake) swampCheck() SwampReport {
	rep := SwampReport{Swamp: []string{}}
	for _, pl := range l.Poly.Placements() {
		rep.Datasets++
		if obj, err := l.GEMMS.Object(pl.Path); err == nil && hasRealMetadata(obj) {
			rep.WithMetadata++
		} else {
			rep.Swamp = append(rep.Swamp, pl.Path)
		}
	}
	sort.Strings(rep.Swamp)
	return rep
}

// hasRealMetadata reports whether extraction produced more than the
// trivial size/format properties: a schema, a structure tree, semantic
// tags, or content properties.
func hasRealMetadata(obj *metamodel.MetadataObject) bool {
	if len(obj.Attributes) > 0 || obj.Structure != nil || len(obj.Semantics) > 0 {
		return true
	}
	for k := range obj.Properties {
		if k != "size" && k != "format" {
			return true
		}
	}
	return false
}

// RelatedTables is a convenience shortcut to populate-mode exploration.
// The role check runs before the table lookup so unregistered callers
// cannot probe which tables exist.
func (l *Lake) RelatedTables(ctx context.Context, user, tableName string, k int) ([]explore.Result, error) {
	if _, err := l.roleOf(user); err != nil {
		return nil, err
	}
	t, err := l.Poly.Rel.Table(tableName)
	if err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeNotFound, err)
	}
	return l.Explore(ctx, user, explore.Request{Mode: explore.ModePopulate, Query: t, K: k})
}

// Lineage answers upstream provenance for a dataset.
func (l *Lake) Lineage(ctx context.Context, entity string) ([]string, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	up, err := l.Tracker.Upstream(entity)
	if err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeNotFound, err)
	}
	return up, nil
}

// Derive records a derivation and stores the derived table
// relationally, keeping provenance consistent with storage. Deriving
// onto an existing table name is a conflict.
func (l *Lake) Derive(ctx context.Context, user, activity string, inputs []string, output *table.Table) error {
	if _, err := l.roleOf(user); err != nil {
		return err
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	// Share ingestMu with Ingest so a concurrent ingest cannot slip a
	// same-named table in between the existence check and the Create.
	l.ingestMu.Lock()
	if err := l.deriveLocked(activity, user, inputs, output); err != nil {
		l.ingestMu.Unlock()
		return err
	}
	l.persistRecord(&walRecord{
		Kind: recDerive, Name: output.Name, Activity: activity, User: user,
		Inputs: inputs, CSV: table.ToCSV(output),
	})
	l.ingestMu.Unlock()
	if err := l.Tracker.Derive(activity, "lake", user, inputs, output.Name); err != nil {
		return lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	l.logAudit(ctx, "derive", output.Name, user)
	return nil
}

// deriveLocked stores a derived table and updates the bookkeeping —
// the shared body of live Derive and persistence replay (which rebuilds
// the lineage edges from audit records instead of Tracker.Derive).
// ingestMu must be held in live operation.
func (l *Lake) deriveLocked(activity, user string, inputs []string, output *table.Table) error {
	if l.Poly.Rel.Has(output.Name) {
		return lakeerr.Errorf(lakeerr.CodeConflict, "%w: table %s", ErrExists, output.Name)
	}
	l.mu.RLock()
	prev, taken := l.nameToPath[output.Name]
	l.mu.RUnlock()
	// The name index also covers document collections, which Rel.Has
	// cannot see — deriving onto one would corrupt its provenance
	// resolution.
	if taken && prev != output.Name {
		return lakeerr.Errorf(lakeerr.CodeConflict,
			"%w: name %q already maps to %s", ErrExists, output.Name, prev)
	}
	l.Poly.Rel.Create(output)
	l.mu.Lock()
	// Register the derived table under its own name so Ingest's
	// collision guard also protects it from basename clashes, and bump
	// the ingest generation: the new table is unindexed until the next
	// Maintain pass, so the lake is stale.
	l.nameToPath[output.Name] = output.Name
	l.ingestGen++
	l.deriveLog = append(l.deriveLog, deriveMeta{
		name: output.Name, activity: activity, user: user,
		inputs: append([]string(nil), inputs...),
	})
	l.mu.Unlock()
	// Derived tables are query outputs over already-indexed data; their
	// columns shift the corpus statistics the discovery indexes were
	// trained on (D3L's corpus-trained embeddings, Juneau provenance),
	// so the next pass rebuilds from scratch instead of approximating
	// an incremental add.
	l.planner.ForceFull("derive")
	return nil
}

// Evict removes an ingested dataset from the lake: raw bytes, parsed
// model-store form, catalog entry, metadata graph, and its contribution
// to the discovery indexes. The index updates are in-place, so the next
// maintenance pass stays incremental — eviction no longer forces a full
// rebuild. Only curators and operations may evict; the removal is
// recorded in provenance as a discard event and in the WAL.
func (l *Lake) Evict(ctx context.Context, user, path string) error {
	role, err := l.roleOf(user)
	if err != nil {
		return err
	}
	if role != RoleCurator && role != RoleOperations {
		return lakeerr.Errorf(lakeerr.CodeUnauthorized,
			"%w: %s needs %s or %s role", ErrNotAuthorized, user, RoleCurator, RoleOperations)
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	// ingestMu serializes against a re-ingest of the same path; maintMu
	// keeps a maintenance pass from indexing the dataset mid-removal.
	l.ingestMu.Lock()
	l.maintMu.Lock()
	if err := l.evictLocked(path); err != nil {
		l.maintMu.Unlock()
		l.ingestMu.Unlock()
		return err
	}
	l.persistRecord(&walRecord{Kind: recEvict, Path: path, User: user})
	l.maintMu.Unlock()
	l.ingestMu.Unlock()
	l.Tracker.Discard(path, "lake", user)
	l.logAudit(ctx, "evict", path, user)
	return nil
}

// evictLocked removes the dataset everywhere — the shared body of live
// Evict and persistence replay. In live operation ingestMu and maintMu
// must both be held; replay runs it before the lake is shared, lockless.
func (l *Lake) evictLocked(path string) error {
	pl, ok := l.Poly.PlacementOf(path)
	if !ok {
		return lakeerr.Errorf(lakeerr.CodeNotFound, "core: no dataset at %s", path)
	}
	name := pl.TableName
	if name == "" {
		name = pl.Collection
	}
	if err := l.Poly.Remove(path); err != nil {
		return lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	l.Catalog.Remove(path)
	l.GEMMS.Remove(path)
	l.Handle.Remove(path)
	l.mu.Lock()
	if name != "" {
		delete(l.nameToPath, name)
	}
	kept := l.ingestLog[:0]
	for _, m := range l.ingestLog {
		if m.path != path {
			kept = append(kept, m)
		}
	}
	l.ingestLog = kept
	pend := l.pendingPromote[:0]
	for _, p := range l.pendingPromote {
		if p != path {
			pend = append(pend, p)
		}
	}
	l.pendingPromote = pend
	ex := l.Explorer
	l.mu.Unlock()
	if name != "" {
		// In-place index removal: the Explorer, the planner's coverage,
		// and DS-kNN each drop the dataset so the next pass does not fall
		// back to a full rebuild. No generation bump — nothing new needs
		// indexing.
		ex.Remove(name)
		l.planner.Evict(name)
		l.knn.Remove(name)
	}
	return nil
}

// TaskSearch is a convenience shortcut for Juneau-style task
// exploration.
func (l *Lake) TaskSearch(ctx context.Context, user, tableName string, task discovery.SearchTask, k int) ([]explore.Result, error) {
	if _, err := l.roleOf(user); err != nil {
		return nil, err
	}
	t, err := l.Poly.Rel.Table(tableName)
	if err != nil {
		return nil, lakeerr.Wrap(lakeerr.CodeNotFound, err)
	}
	return l.Explore(ctx, user, explore.Request{Mode: explore.ModeTask, Query: t, Task: task, K: k})
}
