// Package core assembles the paper's primary contribution — the
// function-oriented three-tier data lake architecture of Fig. 2 — into
// an executable system: a storage tier (the polystore), an ingestion
// tier (metadata extraction + modeling), a maintenance tier
// (organization, discovery, integration, enrichment, cleaning,
// evolution, provenance), and an exploration tier (query-driven
// discovery + heterogeneous querying), plus the cross-cutting concerns
// the survey calls out: zones, user roles (Sec. 3.3), and the
// swamp-guard metadata checks motivated by the Gartner critique
// (Sec. 2.2).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"golake/internal/discovery"
	"golake/internal/enrich"
	"golake/internal/explore"
	"golake/internal/extract"
	"golake/internal/metamodel"
	"golake/internal/organize"
	"golake/internal/provenance"
	"golake/internal/query"
	"golake/internal/storage/polystore"
	"golake/internal/table"
)

// Role is a data lake user role (Sec. 3.3).
type Role string

// The user roles of the business data lake scenario.
const (
	RoleDataScientist Role = "data-scientist"
	RoleCurator       Role = "curator"
	RoleGovernance    Role = "governance"
	RoleOperations    Role = "operations"
)

// Zones a dataset progresses through (zone architecture, Sec. 3.1).
const (
	ZoneRaw     = "raw"
	ZoneCurated = "curated"
	ZoneTrusted = "trusted"
)

// Errors returned by the lake.
var (
	ErrNoSuchUser    = errors.New("core: unknown user")
	ErrNotAuthorized = errors.New("core: not authorized")
	ErrNotMaintained = errors.New("core: run Maintain before exploring")
)

// Lake is one assembled data lake instance.
type Lake struct {
	// Storage tier.
	Poly *polystore.Poly
	// Ingestion-tier metadata models.
	GEMMS  *metamodel.GEMMSModel
	Handle *metamodel.HANDLE
	// Maintenance-tier components.
	Catalog *organize.Catalog
	Tracker *provenance.Tracker
	// Exploration tier.
	Explorer *explore.Explorer
	Engine   *query.Engine

	mu         sync.RWMutex
	users      map[string]Role
	maintained bool
	clock      func() time.Time
}

// Open assembles a lake rooted at dir. clock may be nil.
func Open(dir string, clock func() time.Time) (*Lake, error) {
	poly, err := polystore.New(dir)
	if err != nil {
		return nil, err
	}
	if clock == nil {
		clock = time.Now
	}
	l := &Lake{
		Poly:     poly,
		GEMMS:    metamodel.NewGEMMS(),
		Handle:   metamodel.NewHANDLE(),
		Catalog:  organize.NewCatalog(clock),
		Tracker:  provenance.NewTracker(clock),
		Explorer: explore.NewExplorer(),
		users:    map[string]Role{},
		clock:    clock,
	}
	l.Engine = query.NewEngine(poly)
	return l, nil
}

// AddUser registers a user with a role.
func (l *Lake) AddUser(name string, role Role) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.users[name] = role
}

// roleOf returns the user's role.
func (l *Lake) roleOf(user string) (Role, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.users[user]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoSuchUser, user)
	}
	return r, nil
}

// IngestResult reports where an object landed and what was extracted.
type IngestResult struct {
	Placement polystore.Placement
	Metadata  *extract.Metadata
}

// Ingest runs the full ingestion-tier workflow for one object: store
// raw bytes (routing the parsed form to the matching member store),
// extract metadata, register it in the GEMMS model, map it onto HANDLE
// in the raw zone, catalog it, and record provenance.
func (l *Lake) Ingest(path string, data []byte, source, user string) (*IngestResult, error) {
	pl, err := l.Poly.Ingest(path, data)
	if err != nil {
		return nil, err
	}
	md, err := extract.Extract(path, data)
	if err != nil {
		// Raw bytes stay; metadata extraction failure leaves the
		// object catalogued as swamp-risk (detectable by SwampCheck).
		md = &extract.Metadata{Path: path, Format: pl.Format, Properties: map[string]string{}}
	}
	obj := metamodel.FromExtraction(md)
	l.GEMMS.Register(obj)
	if err := l.Handle.ImportGEMMS(obj, ZoneRaw); err != nil {
		return nil, err
	}
	if _, err := l.Catalog.Register(path); err != nil {
		return nil, err
	}
	for k, v := range md.Properties {
		if err := l.Catalog.Annotate(path, organize.GroupContent, k, v); err != nil {
			return nil, err
		}
	}
	if err := l.Catalog.Annotate(path, organize.GroupProvenance, "source", source); err != nil {
		return nil, err
	}
	l.Tracker.Ingest(path, source, user)
	return &IngestResult{Placement: pl, Metadata: md}, nil
}

// MaintenanceReport summarizes one maintenance pass.
type MaintenanceReport struct {
	Tables      int
	Categories  map[int][]string
	RFDs        []enrich.RFD
	IndexedCols int
}

// Maintain runs the maintenance tier over all relational datasets:
// builds the exploration indexes, categorizes datasets (DS-kNN),
// discovers relaxed FDs, and promotes profiled datasets to the curated
// zone.
func (l *Lake) Maintain() (*MaintenanceReport, error) {
	tables, err := l.relationalTables()
	if err != nil {
		return nil, err
	}
	rep := &MaintenanceReport{Tables: len(tables)}
	if err := l.Explorer.Index(tables); err != nil {
		return nil, err
	}
	knn := organize.NewDSKNN()
	for _, t := range tables {
		knn.Add(t)
		rep.IndexedCols += t.NumCols()
	}
	rep.Categories = knn.Categories()
	for _, t := range tables {
		rep.RFDs = append(rep.RFDs, enrich.DiscoverRFDs(t, 0.95)...)
	}
	// Zone promotion for every dataset that has metadata.
	for _, pl := range l.Poly.Placements() {
		if _, err := l.GEMMS.Object(pl.Path); err == nil {
			_ = l.Handle.MoveZone(pl.Path, ZoneCurated)
		}
	}
	l.mu.Lock()
	l.maintained = true
	l.mu.Unlock()
	return rep, nil
}

func (l *Lake) relationalTables() ([]*table.Table, error) {
	var out []*table.Table
	for _, name := range l.Poly.Rel.Names() {
		t, err := l.Poly.Rel.Table(name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Explore answers a query-driven discovery request on behalf of a
// user; any registered role may explore.
func (l *Lake) Explore(user string, req explore.Request) ([]explore.Result, error) {
	if _, err := l.roleOf(user); err != nil {
		return nil, err
	}
	l.mu.RLock()
	ok := l.maintained
	l.mu.RUnlock()
	if !ok {
		return nil, ErrNotMaintained
	}
	return l.Explorer.Explore(req)
}

// QuerySQL executes a federated query on behalf of a user and records
// the access in provenance.
func (l *Lake) QuerySQL(user, sql string) (*table.Table, error) {
	if _, err := l.roleOf(user); err != nil {
		return nil, err
	}
	res, err := l.Engine.ExecuteSQL(sql)
	if err != nil {
		return nil, err
	}
	q, _ := query.Parse(sql)
	if q != nil {
		for _, src := range q.Sources {
			name := trimPrefix(src)
			// Queries address model-store names; provenance entities
			// are ingest paths. Resolve through the recorded
			// placements so the audit trail stays on the dataset.
			entity := name
			for _, pl := range l.Poly.Placements() {
				if pl.TableName == name || pl.Collection == name {
					entity = pl.Path
					break
				}
			}
			_ = l.Tracker.Query(entity, "sql", user)
		}
	}
	return res, nil
}

func trimPrefix(src string) string {
	for i := 0; i < len(src); i++ {
		if src[i] == ':' {
			return src[i+1:]
		}
	}
	return src
}

// Audit returns the access log of an entity; only the governance role
// may audit (Sec. 3.3's governance, risk and compliance team).
func (l *Lake) Audit(user, entity string) ([]provenance.Event, error) {
	role, err := l.roleOf(user)
	if err != nil {
		return nil, err
	}
	if role != RoleGovernance {
		return nil, fmt.Errorf("%w: %s needs %s role", ErrNotAuthorized, user, RoleGovernance)
	}
	return l.Tracker.AccessLog(entity), nil
}

// Annotate attaches a semantic term to a dataset element; only
// curators (information curators of Sec. 3.3) may annotate.
func (l *Lake) Annotate(user, dataset, element, term string) error {
	role, err := l.roleOf(user)
	if err != nil {
		return err
	}
	if role != RoleCurator {
		return fmt.Errorf("%w: %s needs %s role", ErrNotAuthorized, user, RoleCurator)
	}
	return l.GEMMS.Annotate(dataset, element, term)
}

// SwampReport is the result of the swamp-guard check: without metadata
// and governance a lake degenerates into a data swamp (Gartner,
// Sec. 2.2).
type SwampReport struct {
	Datasets int
	// WithMetadata counts datasets with a registered metadata object.
	WithMetadata int
	// Swamp lists datasets lacking metadata.
	Swamp []string
}

// Healthy reports whether every dataset carries metadata.
func (r SwampReport) Healthy() bool { return len(r.Swamp) == 0 }

// SwampCheck audits metadata coverage across the lake.
func (l *Lake) SwampCheck() SwampReport {
	rep := SwampReport{}
	for _, pl := range l.Poly.Placements() {
		rep.Datasets++
		if obj, err := l.GEMMS.Object(pl.Path); err == nil && hasRealMetadata(obj) {
			rep.WithMetadata++
		} else {
			rep.Swamp = append(rep.Swamp, pl.Path)
		}
	}
	sort.Strings(rep.Swamp)
	return rep
}

// hasRealMetadata reports whether extraction produced more than the
// trivial size/format properties: a schema, a structure tree, semantic
// tags, or content properties.
func hasRealMetadata(obj *metamodel.MetadataObject) bool {
	if len(obj.Attributes) > 0 || obj.Structure != nil || len(obj.Semantics) > 0 {
		return true
	}
	for k := range obj.Properties {
		if k != "size" && k != "format" {
			return true
		}
	}
	return false
}

// RelatedTables is a convenience shortcut to task-mode exploration.
func (l *Lake) RelatedTables(user, tableName string, k int) ([]explore.Result, error) {
	t, err := l.Poly.Rel.Table(tableName)
	if err != nil {
		return nil, err
	}
	return l.Explore(user, explore.Request{Mode: explore.ModePopulate, Query: t, K: k})
}

// Lineage answers upstream provenance for a dataset.
func (l *Lake) Lineage(entity string) ([]string, error) { return l.Tracker.Upstream(entity) }

// Derive records a derivation and stores the derived table
// relationally, keeping provenance consistent with storage.
func (l *Lake) Derive(user, activity string, inputs []string, output *table.Table) error {
	if _, err := l.roleOf(user); err != nil {
		return err
	}
	l.Poly.Rel.Create(output)
	return l.Tracker.Derive(activity, "lake", user, inputs, output.Name)
}

// TaskSearch is a convenience shortcut for Juneau-style task
// exploration.
func (l *Lake) TaskSearch(user, tableName string, task discovery.SearchTask, k int) ([]explore.Result, error) {
	t, err := l.Poly.Rel.Table(tableName)
	if err != nil {
		return nil, err
	}
	return l.Explore(user, explore.Request{Mode: explore.ModeTask, Query: t, Task: task, K: k})
}
