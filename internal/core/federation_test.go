package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"golake/internal/persist"
	"golake/internal/query"
	"golake/internal/remote"
	"golake/lakeerr"
)

// memberLake opens a lake holding one relational table named tableName
// and serves its REST API from an httptest server; user "dana" is
// registered.
func memberLake(t *testing.T, tableName string, rows, mod int) (*Lake, *httptest.Server) {
	t.Helper()
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	l.AddUser("dana", RoleDataScientist)
	var csv strings.Builder
	csv.WriteString("city,price\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csv, "%s%d,%d\n", tableName, i, i%mod)
	}
	if _, err := l.Ingest(context.Background(), "raw/"+tableName+".csv", []byte(csv.String()), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	return l, srv
}

// federatedLake opens a lake with east/west member stores over the two
// servers plus any extra options.
func federatedLake(t *testing.T, east, west string, opts ...Option) *Lake {
	t.Helper()
	opts = append([]Option{
		WithRemoteStore("east", east, remote.Options{Timeout: 10 * time.Second}),
		WithRemoteStore("west", west, remote.Options{Timeout: 10 * time.Second}),
	}, opts...)
	l, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	l.AddUser("dana", RoleDataScientist)
	return l
}

func collectRows(t *testing.T, st *query.RowStream) []string {
	t.Helper()
	var out []string
	for {
		row, err := st.Next(context.Background())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, strings.Join(row, "|"))
	}
	_ = st.Close()
	return out
}

// TestFederationByteIdentity is the tentpole acceptance check: a
// scatter-gather over two remote member lakes returns byte-identical
// results to the same query over local copies, at several fan-in
// widths, ordered and unordered.
func TestFederationByteIdentity(t *testing.T) {
	_, eastSrv := memberLake(t, "hotels_a", 300, 97)
	_, westSrv := memberLake(t, "hotels_b", 250, 89)
	fed := federatedLake(t, eastSrv.URL, westSrv.URL)

	// The local reference lake holds both datasets itself.
	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = local.Close() })
	local.AddUser("dana", RoleDataScientist)
	for _, spec := range []struct {
		name      string
		rows, mod int
	}{{"hotels_a", 300, 97}, {"hotels_b", 250, 89}} {
		var csv strings.Builder
		csv.WriteString("city,price\n")
		for i := 0; i < spec.rows; i++ {
			fmt.Fprintf(&csv, "%s%d,%d\n", spec.name, i, i%spec.mod)
		}
		if _, err := local.Ingest(context.Background(), "raw/"+spec.name+".csv", []byte(csv.String()), "erp", "dana"); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	const where = " WHERE price > 40"
	// Ordered: the output must match byte for byte at any width.
	ordered := query.Request{
		SQL:   "SELECT city, price FROM rel:hotels_a, rel:hotels_b" + where + " ORDER BY price DESC, city",
		Limit: 200,
	}
	lst, err := local.Query(ctx, "dana", ordered)
	if err != nil {
		t.Fatal(err)
	}
	wantOrdered := collectRows(t, lst)
	if len(wantOrdered) == 0 {
		t.Fatal("fixture returned no rows")
	}
	// Unordered: the row set must match.
	lst2, err := local.Query(ctx, "dana", query.Request{SQL: "SELECT city, price FROM rel:hotels_a, rel:hotels_b" + where})
	if err != nil {
		t.Fatal(err)
	}
	wantSet := collectRows(t, lst2)
	sort.Strings(wantSet)

	for _, fanin := range []int{1, 4, 8} {
		req := ordered
		req.SQL = "SELECT city, price FROM east:hotels_a, west:hotels_b" + where + " ORDER BY price DESC, city"
		req.FanIn = fanin
		st, err := fed.Query(ctx, "dana", req)
		if err != nil {
			t.Fatalf("fanin=%d: %v", fanin, err)
		}
		if got := collectRows(t, st); strings.Join(got, "\n") != strings.Join(wantOrdered, "\n") {
			t.Errorf("fanin=%d: ordered federated result diverged from local (%d vs %d rows)", fanin, len(got), len(wantOrdered))
		}
		st2, err := fed.Query(ctx, "dana", query.Request{
			SQL: "SELECT city, price FROM east:hotels_a, west:hotels_b" + where, FanIn: fanin,
		})
		if err != nil {
			t.Fatalf("fanin=%d unordered: %v", fanin, err)
		}
		got := collectRows(t, st2)
		sort.Strings(got)
		if strings.Join(got, "\n") != strings.Join(wantSet, "\n") {
			t.Errorf("fanin=%d: federated row set diverged from local (%d vs %d rows)", fanin, len(got), len(wantSet))
		}
	}
}

// TestFederationExplain pins the plan surface: remote sources show a
// remote access path naming the member and its URL, with the pushed-
// down predicates and projection listed.
func TestFederationExplain(t *testing.T) {
	_, eastSrv := memberLake(t, "hotels_a", 50, 7)
	_, westSrv := memberLake(t, "hotels_b", 50, 7)
	fed := federatedLake(t, eastSrv.URL, westSrv.URL)
	st, err := fed.Query(context.Background(), "dana", query.Request{
		SQL:     "SELECT city FROM east:hotels_a, west:hotels_b WHERE price > 40",
		Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	plan := st.Plan()
	if len(plan.Sources) != 2 {
		t.Fatalf("sources = %+v", plan.Sources)
	}
	for i, member := range []string{"east", "west"} {
		sp := plan.Sources[i]
		if sp.Store != "remote" {
			t.Errorf("source %d store = %q, want remote", i, sp.Store)
		}
		if !strings.Contains(sp.Access, "remote lake "+member) {
			t.Errorf("source %d access = %q, want remote lake %s", i, sp.Access, member)
		}
		if len(sp.Pushdown) != 1 || !strings.Contains(sp.Pushdown[0], "price") {
			t.Errorf("source %d pushdown = %v", i, sp.Pushdown)
		}
		if len(sp.Project) == 0 {
			t.Errorf("source %d pushes no projection", i)
		}
	}
	// EXPLAIN plans without executing: no remote request was made that
	// could have audited anything locally.
	if log := fed.Tracker.AccessLog("hotels_a"); len(log) != 0 {
		t.Errorf("explain audited: %v", log)
	}
}

// TestFederationPushdownExecutes checks the member actually receives
// the narrowed statement: with pushdown on, the member's audit log sees
// the forwarded originating user, and results match pushdown off.
func TestFederationPushdownAndAudit(t *testing.T) {
	eastLake, eastSrv := memberLake(t, "hotels_a", 80, 13)
	_, westSrv := memberLake(t, "hotels_b", 80, 13)
	fed := federatedLake(t, eastSrv.URL, westSrv.URL)
	st, err := fed.Query(context.Background(), "dana", query.Request{
		SQL: "SELECT city FROM east:hotels_a WHERE price > 5 ORDER BY city LIMIT 10",
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := collectRows(t, st)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// The member audited the originating user (identity forwarded via
	// X-Lake-User), against its own ingest path.
	log := eastLake.Tracker.AccessLog("raw/hotels_a.csv")
	var sawQuery bool
	for _, ev := range log {
		if ev.Kind == "query" && ev.User == "dana" {
			sawQuery = true
		}
	}
	if !sawQuery {
		t.Errorf("member audit log = %+v, want a query by dana", log)
	}
	// The federating lake records no local provenance for the remote
	// dataset — the member owns it.
	if log := fed.Tracker.AccessLog("hotels_a"); len(log) != 0 {
		t.Errorf("federating lake audited a remote dataset: %v", log)
	}
}

// TestFederationRemoteErrors pins typed error propagation: the member's
// classification survives the hop.
func TestFederationRemoteErrors(t *testing.T) {
	_, eastSrv := memberLake(t, "hotels_a", 10, 3)
	_, westSrv := memberLake(t, "hotels_b", 10, 3)
	fed := federatedLake(t, eastSrv.URL, westSrv.URL)
	ctx := context.Background()

	// Unknown dataset on the member: not_found end to end.
	_, err := fed.QuerySQL(ctx, "dana", "SELECT city FROM east:no_such_table")
	if lakeerr.CodeOf(err) != lakeerr.CodeNotFound {
		t.Errorf("unknown remote dataset: %v (code %s), want not_found", err, lakeerr.CodeOf(err))
	}

	// Unknown member locally: not_found before any network hop.
	_, err = fed.QuerySQL(ctx, "dana", "SELECT city FROM nowhere:hotels_a")
	if lakeerr.CodeOf(err) != lakeerr.CodeNotFound {
		t.Errorf("unknown member: %v (code %s), want not_found", err, lakeerr.CodeOf(err))
	}

	// A user the member does not know: the forwarded identity is
	// rejected by the member — the federated hop is not an auth bypass.
	fed.AddUser("eve", RoleDataScientist)
	_, err = fed.QuerySQL(ctx, "eve", "SELECT city FROM east:hotels_a")
	if lakeerr.CodeOf(err) != lakeerr.CodeUnauthorized {
		t.Errorf("unregistered-on-member user: %v (code %s), want unauthorized", err, lakeerr.CodeOf(err))
	}

	// A dead member: typed unavailable after retries, not a hang or a
	// silent empty result.
	deadSrv := httptest.NewServer(nil)
	deadURL := deadSrv.URL
	deadSrv.Close()
	fed2, err := Open(t.TempDir(),
		WithRemoteStore("gone", deadURL, remote.Options{ConnectRetries: 1, RetryBackoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fed2.Close() })
	fed2.AddUser("dana", RoleDataScientist)
	_, err = fed2.QuerySQL(ctx, "dana", "SELECT city FROM gone:hotels_a")
	if lakeerr.CodeOf(err) != lakeerr.CodeUnavailable {
		t.Errorf("dead member: %v (code %s), want unavailable", err, lakeerr.CodeOf(err))
	}
}

// TestFederationRouting pins the consistent-hash Locate hook: with
// routing on, a bare dataset name that lives on no local store resolves
// to a member lake.
func TestFederationRouting(t *testing.T) {
	_, eastSrv := memberLake(t, "hotels_a", 40, 7)
	fed, err := Open(t.TempDir(),
		WithRemoteStore("east", eastSrv.URL, remote.Options{}),
		WithRemoteRouting(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fed.Close() })
	fed.AddUser("dana", RoleDataScientist)
	got, err := fed.QuerySQL(context.Background(), "dana", "SELECT city FROM hotels_a ORDER BY city LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 5 {
		t.Errorf("routed query rows = %d, want 5", got.NumRows())
	}
}

// TestBearerTokenAuth drives the HTTP middleware directly: a registered
// token authenticates as its user (outranking X-Lake-User), an unknown
// or malformed credential is a typed 403, and tokenless requests keep
// the X-Lake-User convention.
func TestBearerTokenAuth(t *testing.T) {
	l, srv := memberLake(t, "hotels_a", 10, 3)
	l.AddUser("gov", RoleGovernance)
	if err := l.AddToken("gov", "gov-token-1"); err != nil {
		t.Fatal(err)
	}
	if err := l.AddToken("ghost", "x"); lakeerr.CodeOf(err) != lakeerr.CodeUnauthorized {
		t.Errorf("AddToken for unknown user: %v", err)
	}

	get := func(path string, hdr map[string]string) (*http.Response, map[string]any) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp, body
	}

	// The audit endpoint needs the governance role: X-Lake-User alone
	// claiming "gov" works (the header convention), and so does the
	// bearer token with a contradictory X-Lake-User — the token wins.
	resp, _ := get("/v1/audit?entity=raw/hotels_a.csv", map[string]string{"X-Lake-User": "gov"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("X-Lake-User gov: status %d", resp.StatusCode)
	}
	resp, _ = get("/v1/audit?entity=raw/hotels_a.csv", map[string]string{
		"Authorization": "Bearer gov-token-1", "X-Lake-User": "dana",
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("bearer token should outrank X-Lake-User: status %d", resp.StatusCode)
	}

	// Unknown and malformed credentials: typed unauthorized, not a
	// fallthrough to the spoofable header.
	for _, auth := range []string{"Bearer wrong", "Basic Zm9vOmJhcg==", "Bearer "} {
		resp, body := get("/v1/audit?entity=raw/hotels_a.csv", map[string]string{
			"Authorization": auth, "X-Lake-User": "gov",
		})
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("auth %q: status %d, want 403", auth, resp.StatusCode)
			continue
		}
		envel, _ := body["error"].(map[string]any)
		if envel["code"] != string(lakeerr.CodeUnauthorized) {
			t.Errorf("auth %q: error envelope = %v", auth, body)
		}
	}
}

// TestFederationBearerToken pins the credential-forwarding satellite: a
// member that does not know the federating lake's users accepts the hop
// only when the remote store is configured with a valid bearer token.
func TestFederationBearerToken(t *testing.T) {
	member, memberSrv := memberLake(t, "hotels_a", 30, 7)
	member.AddUser("svc", RoleDataScientist)
	if err := member.AddToken("svc", "fed-secret"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Without a token, the forwarded user "ruth" is unknown to the
	// member: unauthorized.
	noToken, err := Open(t.TempDir(), WithRemoteStore("east", memberSrv.URL, remote.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = noToken.Close() })
	noToken.AddUser("ruth", RoleDataScientist)
	_, err = noToken.QuerySQL(ctx, "ruth", "SELECT city FROM east:hotels_a")
	if lakeerr.CodeOf(err) != lakeerr.CodeUnauthorized {
		t.Fatalf("tokenless hop: %v (code %s), want unauthorized", err, lakeerr.CodeOf(err))
	}

	// With the token, the hop authenticates as "svc" regardless of the
	// forwarded X-Lake-User.
	withToken, err := Open(t.TempDir(),
		WithRemoteStore("east", memberSrv.URL, remote.Options{Token: "fed-secret"}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = withToken.Close() })
	withToken.AddUser("ruth", RoleDataScientist)
	got, err := withToken.QuerySQL(ctx, "ruth", "SELECT city FROM east:hotels_a ORDER BY city LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("tokened hop rows = %d, want 3", got.NumRows())
	}

	// A wrong token fails typed, even though the member would accept
	// the X-Lake-User fallback without any Authorization header.
	badToken, err := Open(t.TempDir(),
		WithRemoteStore("east", memberSrv.URL, remote.Options{Token: "stale"}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = badToken.Close() })
	badToken.AddUser("dana", RoleDataScientist)
	_, err = badToken.QuerySQL(ctx, "dana", "SELECT city FROM east:hotels_a")
	if lakeerr.CodeOf(err) != lakeerr.CodeUnauthorized {
		t.Errorf("wrong token: %v (code %s), want unauthorized", err, lakeerr.CodeOf(err))
	}
}

// TestTokenPersistence pins WAL + snapshot coverage of the token
// registry: a reopened lake still resolves its bearer tokens.
func TestTokenPersistence(t *testing.T) {
	mem := persist.NewMemory()
	dir := t.TempDir()
	l, err := Open(dir, WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("svc", RoleDataScientist)
	if err := l.AddToken("svc", "durable-token"); err != nil {
		t.Fatal(err)
	}
	// WAL-only replay (no Close): the record path.
	l2, err := Open(t.TempDir(), WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := l2.userForToken("durable-token"); !ok || u != "svc" {
		t.Errorf("after WAL replay: user = %q, %v", u, ok)
	}
	// Snapshot replay: Close checkpoints, reopen restores from snapshot.
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(t.TempDir(), WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if u, ok := l3.userForToken("durable-token"); !ok || u != "svc" {
		t.Errorf("after snapshot replay: user = %q, %v", u, ok)
	}
	if _, ok := l3.userForToken("never-registered"); ok {
		t.Error("unknown token resolved after replay")
	}
}

// TestFederationCancelNoGoroutineLeak pins leak-free teardown: early
// Close and context cancellation mid-stream release every remote stream
// and shard cursor.
func TestFederationCancelNoGoroutineLeak(t *testing.T) {
	_, eastSrv := memberLake(t, "hotels_a", 2000, 97)
	_, westSrv := memberLake(t, "hotels_b", 2000, 89)
	before := runtime.NumGoroutine()
	fed := federatedLake(t, eastSrv.URL, westSrv.URL)
	for i := 0; i < 5; i++ {
		// Early Close after a few rows.
		st, err := fed.Query(context.Background(), "dana", query.Request{
			SQL: "SELECT city, price FROM east:hotels_a, west:hotels_b", FanIn: 8, BufferRows: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
		_ = st.Close()
		// Context cancellation mid-stream, sharded local scan included.
		ctx, cancel := context.WithCancel(context.Background())
		st2, err := fed.Query(ctx, "dana", query.Request{
			SQL: "SELECT city FROM east:hotels_a", FanIn: 4, Shards: 4,
		})
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		_, _ = st2.Next(ctx)
		cancel()
		_ = st2.Close()
	}
	// Close drops the remote clients' pooled keep-alive connections;
	// everything else must already have unwound on its own.
	if err := fed.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestHTTPShardsKnob drives the REST shards knob: valid widths return
// the identical row set, out-of-range widths are invalid queries.
func TestHTTPShardsKnob(t *testing.T) {
	_, srv := memberLake(t, "hotels_a", 120, 11)
	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/query", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Lake-User", "dana")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}
	resp, base := post(`{"sql":"SELECT city FROM rel:hotels_a ORDER BY city"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base query: %d %s", resp.StatusCode, base)
	}
	resp, sharded := post(`{"sql":"SELECT city FROM rel:hotels_a ORDER BY city","shards":4,"fanin":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded query: %d %s", resp.StatusCode, sharded)
	}
	var a, b struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(base, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sharded, &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) == 0 || fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
		t.Errorf("sharded HTTP rows diverged: %d vs %d", len(b.Rows), len(a.Rows))
	}
	for _, bad := range []string{
		`{"sql":"SELECT city FROM rel:hotels_a","shards":-1}`,
		`{"sql":"SELECT city FROM rel:hotels_a","shards":9999}`,
	} {
		resp, body := post(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}
}
