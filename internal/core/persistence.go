package core

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"golake/internal/explore"
	"golake/internal/maintain"
	"golake/internal/organize"
	"golake/internal/persist"
	"golake/internal/provenance"
	"golake/internal/table"
	"golake/lakeerr"
)

// The lake's durability rides on logical WAL records: each mutating
// operation appends one JSON record describing the operation (not the
// resulting state), and recovery replays them through the same code
// paths that executed them live. A periodic snapshot of the full
// logical state truncates the log; crash recovery is snapshot + WAL
// tail, with duplicate records (a crash between snapshot install and
// log truncation) skipped idempotently.
const (
	recUser     = "user"
	recToken    = "token"
	recIngest   = "ingest"
	recDerive   = "derive"
	recAudit    = "audit"
	recEvict    = "evict"
	recCoverage = "coverage"
)

// walRecord is one logical WAL entry. Kind selects which fields are
// meaningful.
type walRecord struct {
	Kind string `json:"kind"`
	// ingest / evict: the dataset path; ingest carries the raw bytes.
	Path   string `json:"path,omitempty"`
	Data   []byte `json:"data,omitempty"`
	Source string `json:"source,omitempty"`
	User   string `json:"user,omitempty"`
	// user: registered name + role.
	Name string `json:"name,omitempty"`
	Role string `json:"role,omitempty"`
	// token: the sha256-hex digest of a bearer token registered for the
	// user in Name (the plaintext never reaches the log).
	Token string `json:"token,omitempty"`
	// derive: the activity, its inputs, and the output table as CSV
	// (Name is the output table name).
	Activity string   `json:"activity,omitempty"`
	Inputs   []string `json:"inputs,omitempty"`
	CSV      string   `json:"csv,omitempty"`
	// audit: one provenance event.
	Event *provenance.Event `json:"event,omitempty"`
	// coverage: the committed maintenance state after a pass.
	Covered    []string `json:"covered,omitempty"`
	Promoted   []string `json:"promoted,omitempty"`
	Pending    []string `json:"pending,omitempty"`
	Generation uint64   `json:"generation,omitempty"`
}

// lakeSnapshot is the full logical state a checkpoint serializes. It
// stores operations' inputs (raw bytes, derivation CSVs), not index
// structures: restore re-runs the ingest/derive pipelines and rebuilds
// the exploration indexes from the restored coverage, so the snapshot
// format survives index-implementation changes.
type lakeSnapshot struct {
	Version  int               `json:"version"`
	Users    map[string]string `json:"users,omitempty"`
	// Tokens maps bearer-token digests to user names.
	Tokens   map[string]string `json:"tokens,omitempty"`
	Datasets []snapDataset     `json:"datasets,omitempty"`
	Derived  []snapDerived     `json:"derived,omitempty"`
	// Zones records non-raw zone assignments (path -> zone).
	Zones  map[string]string  `json:"zones,omitempty"`
	Events []provenance.Event `json:"events,omitempty"`
	// Covered + Maintained restore the planner so the first pass after
	// reopen is incremental.
	Covered       []string `json:"covered,omitempty"`
	Maintained    bool     `json:"maintained"`
	IngestGen     uint64   `json:"ingest_gen"`
	MaintainedGen uint64   `json:"maintained_gen"`
	Pending       []string `json:"pending,omitempty"`
}

type snapDataset struct {
	Path   string `json:"path"`
	Source string `json:"source,omitempty"`
	User   string `json:"user,omitempty"`
	Data   []byte `json:"data"`
}

type snapDerived struct {
	Name     string   `json:"name"`
	Activity string   `json:"activity,omitempty"`
	User     string   `json:"user,omitempty"`
	Inputs   []string `json:"inputs,omitempty"`
	CSV      string   `json:"csv"`
}

// ingestMeta / deriveMeta are the in-memory operation logs the snapshot
// builder serializes (guarded by Lake.mu, appended in commit order).
type ingestMeta struct {
	path, source, user string
}

type deriveMeta struct {
	name, activity, user string
	inputs               []string
}

// persister owns the lake's persistence backend: it serializes WAL
// appends against checkpoints (so a record can neither be lost between
// a snapshot build and the log truncation nor duplicated without the
// replay noticing), triggers a checkpoint when the log outgrows the
// configured threshold, and carries the durability status counters.
type persister struct {
	backend   persist.Backend
	threshold int64

	mu           sync.Mutex
	closed       bool
	walRecords   uint64
	lastSnapshot time.Time
	replay       *maintain.ReplayStats
}

func (p *persister) warn(l *Lake, msg string, args ...any) {
	lg := l.logger
	if lg == nil {
		lg = slog.Default()
	}
	lg.Warn(msg, args...)
}

// walRetry bounds the transient-failure retry loop of append: up to
// walRetries re-attempts, sleeping backoffDelay-style (base doubled per
// attempt, capped) between them. The delays are short because append
// runs inline on the mutating operation's goroutine.
const (
	walRetries   = 3
	walRetryBase = 2 * time.Millisecond
	walRetryMax  = 20 * time.Millisecond
)

// append frames one record onto the WAL and checkpoints if the log
// crossed the snapshot threshold. A failed append is retried with
// capped exponential backoff (the same shape as the maintenance
// scheduler's backoffDelay) — transient backend faults, the
// fail-every-Nth kind the chaos harness injects, recover without
// losing the record. Only after the retries run out does the failure
// degrade to a logged warning and a dropped-record counter bump — the
// in-memory lake stays correct, it just loses crash durability for
// that record.
func (p *persister) append(l *Lake, rec *walRecord) {
	payload, err := json.Marshal(rec)
	if err != nil {
		p.warn(l, "persist: encode wal record", "kind", rec.Kind, "error", err)
		return
	}
	frame := persist.EncodeFrame(payload)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	start := time.Now()
	appendErr := p.backend.AppendWAL(frame)
	for attempt := 1; appendErr != nil && attempt <= walRetries; attempt++ {
		l.metrics.observeWALRetry()
		delay := walRetryBase << (attempt - 1)
		if delay > walRetryMax {
			delay = walRetryMax
		}
		time.Sleep(delay)
		appendErr = p.backend.AppendWAL(frame)
	}
	if appendErr != nil {
		l.metrics.observeWALDropped()
		p.warn(l, "persist: append wal record dropped after retries",
			"kind", rec.Kind, "retries", walRetries, "error", appendErr)
		return
	}
	l.metrics.observeWALAppend(len(frame), time.Since(start))
	p.walRecords++
	if p.threshold > 0 {
		if sz, err := p.backend.WALSize(); err == nil && sz >= p.threshold {
			if err := p.checkpointLocked(l); err != nil {
				p.warn(l, "persist: checkpoint", "error", err)
			}
		}
	}
}

// checkpoint builds and installs a snapshot, truncating the WAL.
func (p *persister) checkpoint(l *Lake) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return persist.ErrClosed
	}
	return p.checkpointLocked(l)
}

// checkpointLocked requires p.mu. It may take l.mu (shared) and the
// component stores' own locks, but never ingestMu or maintMu — callers
// may hold either.
func (p *persister) checkpointLocked(l *Lake) error {
	start := time.Now()
	snap, err := l.buildSnapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	if err := p.backend.Checkpoint(data); err != nil {
		return err
	}
	p.walRecords = 0
	p.lastSnapshot = l.clock()
	l.metrics.observeCheckpoint(time.Since(start))
	if l.logger != nil {
		l.logger.Info("persist: checkpoint",
			"snapshot_bytes", len(data), "duration", time.Since(start))
	}
	return nil
}

// close flushes a final snapshot and closes the backend. Idempotent.
func (p *persister) close(l *Lake) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	cpErr := p.checkpointLocked(l)
	p.closed = true
	closeErr := p.backend.Close()
	if cpErr != nil {
		return cpErr
	}
	return closeErr
}

// status snapshots the durability counters for MaintenanceStatus.
func (p *persister) status() *maintain.DurabilityStatus {
	p.mu.Lock()
	st := &maintain.DurabilityStatus{
		Backend:    p.backend.Name(),
		WALRecords: p.walRecords,
	}
	if !p.lastSnapshot.IsZero() {
		t := p.lastSnapshot
		st.LastSnapshot = &t
	}
	if p.replay != nil {
		cp := *p.replay
		st.Replay = &cp
	}
	p.mu.Unlock()
	if sz, err := p.backend.WALSize(); err == nil {
		st.WALBytes = sz
	}
	if sz, err := p.backend.SnapshotSize(); err == nil {
		st.SnapshotBytes = sz
	}
	return st
}

// buildSnapshot serializes the lake's logical state. It takes l.mu
// shared plus the component stores' own locks; never ingestMu or
// maintMu.
func (l *Lake) buildSnapshot() (*lakeSnapshot, error) {
	l.mu.RLock()
	snap := &lakeSnapshot{
		Version:       1,
		Users:         make(map[string]string, len(l.users)),
		Tokens:        make(map[string]string, len(l.tokens)),
		Maintained:    l.maintained,
		IngestGen:     l.ingestGen,
		MaintainedGen: l.maintainedGen,
		Pending:       append([]string(nil), l.pendingPromote...),
		Zones:         map[string]string{},
	}
	for name, role := range l.users {
		snap.Users[name] = string(role)
	}
	for digest, user := range l.tokens {
		snap.Tokens[digest] = user
	}
	ingests := append([]ingestMeta(nil), l.ingestLog...)
	derives := append([]deriveMeta(nil), l.deriveLog...)
	l.mu.RUnlock()
	for _, in := range ingests {
		data, err := l.Poly.Files.Get(in.path)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot %s: %w", in.path, err)
		}
		snap.Datasets = append(snap.Datasets, snapDataset{Path: in.path, Source: in.source, User: in.user, Data: data})
		if z, err := l.Handle.Zone(in.path); err == nil && z != ZoneRaw {
			snap.Zones[in.path] = z
		}
	}
	for _, d := range derives {
		t, err := l.Poly.Rel.Table(d.name)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot derived %s: %w", d.name, err)
		}
		snap.Derived = append(snap.Derived, snapDerived{
			Name: d.name, Activity: d.activity, User: d.user,
			Inputs: append([]string(nil), d.inputs...), CSV: table.ToCSV(t),
		})
	}
	snap.Events = l.Tracker.Events()
	snap.Covered = l.planner.Covered()
	return snap, nil
}

// restore replays snapshot + WAL into a freshly assembled (still
// private) lake. A torn or corrupt WAL tail is dropped with a warning,
// never fatal; duplicate records left by a crash between snapshot
// install and log truncation are skipped idempotently. Only backend I/O
// failures and a corrupt snapshot blob (impossible under the atomic
// checkpoint protocol) abort the open.
func (p *persister) restore(l *Lake) error {
	snapBytes, err := p.backend.ReadSnapshot()
	if err != nil {
		return lakeerr.Wrap(lakeerr.CodeUnavailable, err)
	}
	rs := maintain.ReplayStats{}
	snapMaxSeq := 0
	replayed := false
	if len(snapBytes) > 0 {
		replayed = true
		var snap lakeSnapshot
		if err := json.Unmarshal(snapBytes, &snap); err != nil {
			return lakeerr.Errorf(lakeerr.CodeInternal, "core: corrupt snapshot: %v", err)
		}
		snapMaxSeq = l.applySnapshot(p, &snap, &rs)
	}
	walBytes, err := p.backend.ReadWAL()
	if err != nil {
		return lakeerr.Wrap(lakeerr.CodeUnavailable, err)
	}
	frames, torn := persist.DecodeFrames(walBytes)
	rs.TornBytes = torn
	if torn > 0 {
		p.warn(l, "persist: dropped torn wal tail", "bytes", torn)
	}
	if len(frames) > 0 {
		replayed = true
	}
	for _, payload := range frames {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A framed-but-unparseable record: count it skipped instead of
			// failing the open; the frame checksum says the bytes are what
			// was written, so this is a version skew, not corruption.
			p.warn(l, "persist: undecodable wal record", "error", err)
			rs.WALRecords++
			rs.WALSkipped++
			continue
		}
		rs.WALRecords++
		if !l.applyRecord(p, &rec, snapMaxSeq) {
			rs.WALSkipped++
		}
	}
	l.rebuildIndexesFromCoverage()
	if replayed {
		p.mu.Lock()
		p.replay = &rs
		p.mu.Unlock()
		l.metrics.observeReplay(rs.SnapshotDatasets, int(rs.WALRecords), int(rs.WALSkipped), rs.TornBytes)
		if l.logger != nil {
			l.logger.Info("persist: replayed",
				"snapshot_datasets", rs.SnapshotDatasets,
				"wal_records", rs.WALRecords,
				"wal_skipped", rs.WALSkipped,
				"torn_bytes", rs.TornBytes)
		}
	}
	// Compact what was just replayed so the next open starts from a
	// snapshot instead of re-replaying an ever-growing log.
	if len(frames) > 0 {
		if err := p.checkpoint(l); err != nil {
			p.warn(l, "persist: post-replay checkpoint", "error", err)
		}
	}
	return nil
}

// applySnapshot restores the serialized logical state; returns the
// highest provenance sequence number it injected so WAL audit records
// already contained in the snapshot can be recognized as duplicates.
func (l *Lake) applySnapshot(p *persister, snap *lakeSnapshot, rs *maintain.ReplayStats) int {
	for name, role := range snap.Users {
		l.users[name] = Role(role)
	}
	for digest, user := range snap.Tokens {
		l.tokens[digest] = user
	}
	for _, d := range snap.Datasets {
		if _, err := l.ingestApply(d.Path, d.Data, d.Source, d.User); err != nil {
			p.warn(l, "persist: replay snapshot dataset", "path", d.Path, "error", err)
			continue
		}
		rs.SnapshotDatasets++
	}
	for _, d := range snap.Derived {
		if err := l.deriveApply(d.Name, d.Activity, d.User, d.Inputs, d.CSV); err != nil {
			p.warn(l, "persist: replay snapshot derived", "name", d.Name, "error", err)
		}
	}
	for path, zone := range snap.Zones {
		_ = l.Handle.MoveZone(path, zone)
	}
	maxSeq := 0
	for _, ev := range snap.Events {
		l.Tracker.Inject(ev)
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
	}
	l.planner.Restore(snap.Covered, snap.Maintained)
	l.maintained = snap.Maintained
	l.ingestGen = snap.IngestGen
	l.maintainedGen = snap.MaintainedGen
	l.pendingPromote = append([]string(nil), snap.Pending...)
	return maxSeq
}

// applyRecord replays one WAL record; the false return marks an
// idempotent skip (duplicate of snapshot state), not a failure.
func (l *Lake) applyRecord(p *persister, rec *walRecord, snapMaxSeq int) bool {
	switch rec.Kind {
	case recUser:
		l.users[rec.Name] = Role(rec.Role)
		return true
	case recToken:
		l.tokens[rec.Token] = rec.Name
		return true
	case recIngest:
		if _, err := l.ingestApply(rec.Path, rec.Data, rec.Source, rec.User); err != nil {
			if lakeerr.CodeOf(err) == lakeerr.CodeConflict {
				return false // already restored by the snapshot
			}
			p.warn(l, "persist: replay ingest", "path", rec.Path, "error", err)
			return false
		}
		return true
	case recDerive:
		if err := l.deriveApply(rec.Name, rec.Activity, rec.User, rec.Inputs, rec.CSV); err != nil {
			if lakeerr.CodeOf(err) == lakeerr.CodeConflict {
				return false
			}
			p.warn(l, "persist: replay derive", "name", rec.Name, "error", err)
			return false
		}
		return true
	case recAudit:
		if rec.Event == nil {
			return false
		}
		if rec.Event.Seq <= snapMaxSeq {
			return false // the snapshot's event log already has it
		}
		l.Tracker.Inject(*rec.Event)
		return true
	case recEvict:
		if err := l.evictApply(rec.Path); err != nil {
			if lakeerr.CodeOf(err) == lakeerr.CodeNotFound {
				return false
			}
			p.warn(l, "persist: replay evict", "path", rec.Path, "error", err)
			return false
		}
		return true
	case recCoverage:
		l.planner.Restore(rec.Covered, true)
		for _, path := range rec.Promoted {
			_ = l.Handle.MoveZone(path, ZoneCurated)
		}
		l.maintained = true
		l.maintainedGen = rec.Generation
		l.pendingPromote = append([]string(nil), rec.Pending...)
		return true
	default:
		p.warn(l, "persist: unknown wal record kind", "kind", rec.Kind)
		return false
	}
}

// ingestApply replays one ingest through the live pipeline without
// re-recording provenance (audit records replay separately) or
// re-appending to the WAL. Called only during restore, before the lake
// is shared, so the ingest lock discipline is not needed.
func (l *Lake) ingestApply(path string, data []byte, source, user string) (*IngestResult, error) {
	return l.ingestLocked(path, data, source, user)
}

// deriveApply replays one derivation from its serialized CSV.
func (l *Lake) deriveApply(name, activity, user string, inputs []string, csv string) error {
	t, err := table.ParseCSV(name, csv)
	if err != nil {
		return lakeerr.Errorf(lakeerr.CodeInternal, "core: replay derived table %s: %v", name, err)
	}
	return l.deriveLocked(activity, user, inputs, t)
}

// evictApply replays one eviction.
func (l *Lake) evictApply(path string) error {
	return l.evictLocked(path)
}

// rebuildIndexesFromCoverage reconstructs the exploration indexes and
// the DS-kNN categorizer over the restored planner coverage, so a
// reopened, previously maintained lake answers Explore immediately and
// its first scheduled pass plans incrementally. Runs at the end of
// restore — one code path whether the coverage came from the snapshot
// or from a WAL coverage record. DS-kNN category numbering may differ
// from the original pass order (tables arrive sorted here); the next
// full rebuild squares that up.
func (l *Lake) rebuildIndexesFromCoverage() {
	if !l.maintained {
		return
	}
	var tables []*table.Table
	covered := make(map[string]bool)
	for _, name := range l.planner.Covered() {
		covered[name] = true
		if t, err := l.Poly.Rel.Table(name); err == nil {
			tables = append(tables, t)
		}
	}
	ex := explore.NewExplorer()
	if err := ex.Index(tables); err == nil {
		l.Explorer = ex
	}
	knn := organize.NewDSKNN()
	for _, t := range tables {
		knn.Add(t)
	}
	l.knn = knn
	// A derivation that landed after the last committed pass has no
	// coverage; live operation would have left a pending ForceFull, which
	// planner.Restore cleared — reinstate it.
	l.mu.RLock()
	derives := append([]deriveMeta(nil), l.deriveLog...)
	l.mu.RUnlock()
	for _, d := range derives {
		if !covered[d.name] {
			l.planner.ForceFull("derive")
			break
		}
	}
}

// persistRecord appends one WAL record when persistence is configured.
// Call sites sit outside l.mu and the component stores' locks (the
// record may trigger a snapshot build); ingestMu/maintMu are safe to
// hold.
func (l *Lake) persistRecord(rec *walRecord) {
	if l.pers == nil {
		return
	}
	l.pers.append(l, rec)
}

// persistCoverage appends the committed maintenance state after a
// successful pass; maintMu must be held (it serializes passes, so the
// coverage written is the coverage committed).
func (l *Lake) persistCoverage() {
	if l.pers == nil {
		return
	}
	l.mu.RLock()
	gen := l.maintainedGen
	pending := append([]string(nil), l.pendingPromote...)
	l.mu.RUnlock()
	l.persistRecord(&walRecord{
		Kind:       recCoverage,
		Covered:    l.planner.Covered(),
		Promoted:   l.Handle.DataInZone(ZoneCurated),
		Pending:    pending,
		Generation: gen,
	})
}
