package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"golake/internal/explore"
	"golake/internal/persist"
	"golake/internal/storage/filestore"
	"golake/internal/table"
	"golake/lakeerr"
)

// openPersistent opens a lake over dir backed by a fresh local
// persistence backend rooted at dir/.golake — the same layout lakectl
// uses. Each call makes a new backend handle, so reopening after a
// "hard stop" (abandoning a lake without Close) works like a process
// restart.
func openPersistent(t *testing.T, dir string, opts ...Option) *Lake {
	t.Helper()
	b, err := persist.NewLocal(filepath.Join(dir, filestore.PersistDir))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, append([]Option{WithPersistence(b)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestPersistHardStopReopenServesIdenticalQuery is the headline
// recovery property: ingest + maintain, hard-stop the process (no
// Close, so no final snapshot), reopen from the WAL alone, and the
// reopened lake serves byte-identical query results and plans its
// first maintenance pass incrementally.
func TestPersistHardStopReopenServesIdenticalQuery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l := openPersistent(t, dir)
	l.AddUser("dana", RoleDataScientist)
	l.AddUser("carl", RoleCurator)
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n3,15\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/users.csv", []byte("id,name\n1,ann\n2,bo\n3,cy\n"), "crm", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := l.QuerySQL(ctx, "dana", "SELECT id, total FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := table.ToCSV(want)

	// Hard stop: l is abandoned without Close.
	re := openPersistent(t, dir)
	defer re.Close()
	got, err := re.QuerySQL(ctx, "dana", "SELECT id, total FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if gotCSV := table.ToCSV(got); gotCSV != wantCSV {
		t.Errorf("reopened query = %q, want byte-identical %q", gotCSV, wantCSV)
	}
	st := re.MaintenanceStatus()
	if st.Durability == nil {
		t.Fatal("no durability status on a persistent lake")
	}
	if st.Durability.Replay == nil || st.Durability.Replay.WALRecords == 0 {
		t.Errorf("replay stats = %+v, want WAL records replayed", st.Durability.Replay)
	}
	// The coverage checkpoint written after Maintain must make the first
	// pass after reopen incremental — only the new dataset is indexed.
	if _, err := re.Ingest(ctx, "raw/extra.csv", []byte("id,v\n1,2\n2,3\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	rep, err := re.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "incremental" {
		t.Errorf("first pass after reopen = %s (%s), want incremental", rep.Mode, rep.Reason)
	}
	if rep.DatasetsReindexed != 1 {
		t.Errorf("reindexed %d datasets, want 1", rep.DatasetsReindexed)
	}
}

func TestPersistCleanCloseReopenResumesIncrementally(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l := openPersistent(t, dir)
	l.AddUser("dana", RoleDataScientist)
	for name, csv := range map[string]string{
		"orders": "id,total\n1,10\n2,20\n3,15\n4,8\n",
		"users":  "id,name\n1,ann\n2,bo\n3,cy\n4,dee\n",
		"items":  "sku,qty\na,1\nb,2\n",
	} {
		if _, err := l.Ingest(ctx, "raw/"+name+".csv", []byte(csv), "src", "dana"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := openPersistent(t, dir)
	defer re.Close()
	st := re.MaintenanceStatus()
	if st.Durability == nil || st.Durability.Replay == nil {
		t.Fatal("no replay stats after reopen")
	}
	if st.Durability.Replay.SnapshotDatasets != 3 {
		t.Errorf("snapshot datasets = %d, want 3", st.Durability.Replay.SnapshotDatasets)
	}
	// Exploration answers immediately from the indexes rebuilt out of
	// the restored coverage — no maintenance pass needed first.
	q, err := re.Poly.Rel.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	res, err := re.Explore(ctx, "dana", explore.Request{Mode: explore.ModeJoinColumn, Query: q, Column: "id", K: 5})
	if err != nil {
		t.Fatalf("explore before first pass: %v", err)
	}
	if len(res) == 0 {
		t.Error("explore found nothing; index not rebuilt from coverage")
	}
	if _, err := re.Ingest(ctx, "raw/extra.csv", []byte("id,v\n1,2\n"), "src", "dana"); err != nil {
		t.Fatal(err)
	}
	rep, err := re.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "incremental" || rep.DatasetsReindexed != 1 {
		t.Errorf("pass = %s/%d reindexed (%s), want incremental/1", rep.Mode, rep.DatasetsReindexed, rep.Reason)
	}
}

func TestPersistTornWALTailDroppedNotFatal(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l := openPersistent(t, dir)
	l.AddUser("dana", RoleDataScientist)
	if _, err := l.Ingest(ctx, "raw/a.csv", []byte("x,y\n1,2\n"), "src", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/b.csv", []byte("x,z\n1,3\n"), "src", "dana"); err != nil {
		t.Fatal(err)
	}
	// Hard stop, then tear the WAL tail as a crashed partial write
	// would.
	walPath := filepath.Join(dir, filestore.PersistDir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}
	re := openPersistent(t, dir)
	defer re.Close()
	st := re.MaintenanceStatus()
	if st.Durability == nil || st.Durability.Replay == nil || st.Durability.Replay.TornBytes == 0 {
		t.Errorf("replay = %+v, want torn bytes reported", st.Durability.Replay)
	}
	// The torn record was the tail (b's audit event); both datasets
	// themselves survived.
	for _, p := range []string{"raw/a.csv", "raw/b.csv"} {
		if _, ok := re.Poly.PlacementOf(p); !ok {
			t.Errorf("%s lost in torn-tail recovery", p)
		}
	}
}

// TestPersistKillAtEveryWALByte is the kill-at-every-record harness:
// the WAL of a small lake is truncated at every frame boundary and at
// every byte offset inside the tail record, and each truncation must
// reopen cleanly with exactly the datasets whose ingest records
// survived complete — the torn tail is dropped, never fatal.
func TestPersistKillAtEveryWALByte(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l := openPersistent(t, dir)
	l.AddUser("dana", RoleDataScientist)
	if _, err := l.Ingest(ctx, "raw/a.csv", []byte("x,y\n1,2\n"), "src", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/b.csv", []byte("x,z\n1,3\n"), "src", "dana"); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, filestore.PersistDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	var ends []int
	for off := 0; off+8 <= len(wal); {
		n := int(binary.LittleEndian.Uint32(wal[off:]))
		if off+8+n > len(wal) {
			break
		}
		off += 8 + n
		ends = append(ends, off)
	}
	if len(ends) < 3 || ends[len(ends)-1] != len(wal) {
		t.Fatalf("unexpected wal shape: %d frames over %d bytes", len(ends), len(wal))
	}
	cuts := append([]int{0}, ends[:len(ends)-1]...)
	for c := ends[len(ends)-2] + 1; c <= len(wal); c++ {
		cuts = append(cuts, c)
	}
	for _, cut := range cuts {
		// A fresh directory holding only the truncated WAL: replay alone
		// must reconstruct the lake.
		cdir := t.TempDir()
		pdir := filepath.Join(cdir, filestore.PersistDir)
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pdir, "wal.log"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantIngests := 0
		frames, _ := persist.DecodeFrames(wal[:cut])
		for _, payload := range frames {
			var rec struct {
				Kind string `json:"kind"`
			}
			if json.Unmarshal(payload, &rec) == nil && rec.Kind == "ingest" {
				wantIngests++
			}
		}
		re := openPersistent(t, cdir) // Fatal inside if the open fails
		if got := len(re.Poly.Placements()); got != wantIngests {
			t.Errorf("cut at %d/%d: %d datasets recovered, want %d", cut, len(wal), got, wantIngests)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
	}
}

func TestPersistMemoryBackendKeepsDerivedAndAudit(t *testing.T) {
	ctx := context.Background()
	mem := persist.NewMemory()
	l, err := Open(t.TempDir(), WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	l.AddUser("gov", RoleGovernance)
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,30\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	derived, _ := table.ParseCSV("big_orders", "id,total\n2,30\n")
	if err := l.Derive(ctx, "dana", "filter_big", []string{"raw/orders.csv"}, derived); err != nil {
		t.Fatal(err)
	}
	if _, err := l.QuerySQL(ctx, "dana", "SELECT id FROM orders"); err != nil {
		t.Fatal(err)
	}
	wantAudit, err := l.Audit(ctx, "gov", "raw/orders.csv")
	if err != nil {
		t.Fatal(err)
	}
	wantDerived := table.ToCSV(derived)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The memory backend survives Close readable, standing in for a
	// shared remote store across lake generations.
	re, err := Open(t.TempDir(), WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.roleOf("dana"); err != nil {
		t.Errorf("user lost: %v", err)
	}
	got, err := re.Poly.Rel.Table("big_orders")
	if err != nil {
		t.Fatalf("derived table lost: %v", err)
	}
	if table.ToCSV(got) != wantDerived {
		t.Errorf("derived table = %q, want %q", table.ToCSV(got), wantDerived)
	}
	up, err := re.Lineage(ctx, "big_orders")
	if err != nil || len(up) != 1 || up[0] != "raw/orders.csv" {
		t.Errorf("lineage = %v, %v", up, err)
	}
	gotAudit, err := re.Audit(ctx, "gov", "raw/orders.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAudit) != len(wantAudit) {
		t.Fatalf("audit trail = %d events, want %d", len(gotAudit), len(wantAudit))
	}
	for i := range wantAudit {
		w, g := wantAudit[i], gotAudit[i]
		if g.Kind != w.Kind || g.User != w.User || g.Seq != w.Seq || !g.At.Equal(w.At) {
			t.Errorf("audit[%d] = %+v, want %+v", i, g, w)
		}
	}
}

func TestPersistEvictSurvivesReplay(t *testing.T) {
	ctx := context.Background()
	mem := persist.NewMemory()
	l, err := Open(t.TempDir(), WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	l.AddUser("carl", RoleCurator)
	for _, p := range []string{"raw/a.csv", "raw/b.csv"} {
		if _, err := l.Ingest(ctx, p, []byte("x,y\n1,2\n"), "src", "dana"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Evict(ctx, "carl", "raw/a.csv"); err != nil {
		t.Fatal(err)
	}
	// Hard stop: the eviction exists only as a WAL record.
	re, err := Open(t.TempDir(), WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Poly.PlacementOf("raw/a.csv"); ok {
		t.Error("evicted dataset came back after replay")
	}
	if _, ok := re.Poly.PlacementOf("raw/b.csv"); !ok {
		t.Error("surviving dataset lost")
	}
}

func TestEvictKeepsMaintenanceIncremental(t *testing.T) {
	ctx := context.Background()
	l := testLake(t)
	for name, csv := range map[string]string{
		"orders": "id,total\n1,10\n2,20\n3,15\n4,8\n",
		"users":  "id,name\n1,ann\n2,bo\n3,cy\n4,dee\n",
		"items":  "sku,qty\na,1\nb,2\n",
	} {
		if _, err := l.Ingest(ctx, "raw/"+name+".csv", []byte(csv), "src", "dana"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Evict(ctx, "carl", "raw/users.csv"); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Poly.PlacementOf("raw/users.csv"); ok {
		t.Error("placement survived eviction")
	}
	if l.Poly.Rel.Has("users") {
		t.Error("table survived eviction")
	}
	if _, err := l.Catalog.Entry("raw/users.csv"); err == nil {
		t.Error("catalog entry survived eviction")
	}
	if _, err := l.GEMMS.Object("raw/users.csv"); err == nil {
		t.Error("metadata survived eviction")
	}
	// The whole point of incremental eviction: the next pass must not
	// fall back to a full rebuild.
	rep, err := l.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "incremental" {
		t.Errorf("pass after evict = %s (%s), want incremental", rep.Mode, rep.Reason)
	}
	if rep.DatasetsReindexed != 0 {
		t.Errorf("reindexed %d datasets after evict, want 0", rep.DatasetsReindexed)
	}
	q, err := l.Poly.Rel.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Explore(ctx, "dana", explore.Request{Mode: explore.ModeJoinColumn, Query: q, Column: "id", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Table == "users" {
			t.Error("evicted table still in exploration index")
		}
	}
	// Data scientists cannot evict; unknown paths are NotFound.
	if err := l.Evict(ctx, "dana", "raw/orders.csv"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("unauthorized evict = %v", err)
	}
	if err := l.Evict(ctx, "carl", "raw/nope.csv"); lakeerr.CodeOf(err) != lakeerr.CodeNotFound {
		t.Errorf("missing evict = %v", err)
	}
}

// TestCloseMidPassDrainsScheduler closes the lake while the 1ms
// auto-maintenance scheduler is mid-flight over freshly ingested data:
// Close must drain the pass before the final snapshot, the final
// snapshot must carry every ingest, and a second Close is a no-op.
func TestCloseMidPassDrainsScheduler(t *testing.T) {
	ctx := context.Background()
	mem := persist.NewMemory()
	l, err := Open(t.TempDir(), WithPersistence(mem), WithAutoMaintain(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := l.Ingest(ctx, fmt.Sprintf("raw/t%d_%d.csv", i, j), []byte("id,v\n1,2\n"), "src", "dana"); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	// Passes fire every millisecond, so Close almost certainly lands
	// mid-pass; it must block on the drain, not race it.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	re, err := Open(t.TempDir(), WithPersistence(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Poly.Placements()); got != 20 {
		t.Errorf("recovered %d datasets, want 20", got)
	}
}

func TestHTTPDurabilityStatusAndEvict(t *testing.T) {
	ctx := context.Background()
	l, err := Open(t.TempDir(), WithPersistence(persist.NewMemory()))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.AddUser("dana", RoleDataScientist)
	l.AddUser("carl", RoleCurator)
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/maintenance")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Durability *struct {
			Backend    string `json:"backend"`
			WALRecords uint64 `json:"wal_records"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Durability == nil || st.Durability.Backend != "memory" {
		t.Fatalf("durability over HTTP = %+v, want memory backend", st.Durability)
	}
	if st.Durability.WALRecords == 0 {
		t.Error("wal_records = 0, want the ingest counted")
	}

	del := func(path, user string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/datasets?path="+path, nil)
		if user != "" {
			req.Header.Set("X-Lake-User", user)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := del("raw/orders.csv", "dana"); resp.StatusCode != http.StatusForbidden {
		t.Errorf("evict as data scientist = %d, want 403", resp.StatusCode)
	}
	if resp := del("", "carl"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("evict without path = %d, want 400", resp.StatusCode)
	}
	if resp := del("raw/orders.csv", "carl"); resp.StatusCode != http.StatusOK {
		t.Errorf("evict as curator = %d, want 200", resp.StatusCode)
	}
	if _, ok := l.Poly.PlacementOf("raw/orders.csv"); ok {
		t.Error("dataset survived HTTP eviction")
	}
	if resp := del("raw/orders.csv", "carl"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double evict = %d, want 404", resp.StatusCode)
	}
}
