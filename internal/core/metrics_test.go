package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"golake/internal/persist"
)

// metricsLake builds a lake with every instrumented layer exercised:
// a memory persistence backend (WAL series), two ingested datasets, a
// completed maintenance pass, and an HTTP server in front.
func metricsLake(t *testing.T) (*Lake, *httptest.Server) {
	t.Helper()
	l, err := Open(t.TempDir(), WithPersistence(persist.NewMemory()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/payments.csv", []byte("id,amount\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	return l, srv
}

func scrape(t *testing.T, srv *httptest.Server) (*http.Response, string) {
	t.Helper()
	resp, body := get(t, srv, "/v1/metrics", "")
	return resp, string(body)
}

func TestMetricsEndpointCoversAllLayers(t *testing.T) {
	_, srv := metricsLake(t)
	// One executed query so the engine series have samples.
	resp, _ := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT id FROM rel:orders"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	resp, body := scrape(t, srv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	// One representative series per instrumented layer.
	for _, want := range []string{
		// HTTP middleware.
		`golake_http_requests_total{route="/v1/query",method="POST",class="2xx"} 1`,
		`golake_http_request_duration_seconds_bucket{route="/v1/query",le="+Inf"} 1`,
		"golake_http_in_flight_requests 1", // the scrape itself
		// Query engine, folded at stream close.
		`golake_query_total{outcome="ok"} 1`,
		"golake_query_rows_out_total 2",
		`golake_query_source_rows_total{source="rel:orders"} 2`,
		"golake_query_fanin_width_count 1",
		// Maintenance.
		`golake_maintenance_passes_total{mode="full"} 1`,
		"golake_maintenance_datasets_reindexed_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing series %q in scrape:\n%s", want, body)
		}
	}
	// Persistence: user records, ingests, and audit events all append,
	// so pin the counters to nonzero rather than an exact record count.
	for _, prefix := range []string{
		"golake_wal_appends_total ",
		"golake_wal_appended_bytes_total ",
		"golake_wal_append_duration_seconds_count ",
	} {
		line := grepLines(body, prefix)
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Errorf("WAL series %q absent or zero: %q", prefix, line)
		}
	}
	// Every exposed family carries HELP and TYPE headers.
	for _, fam := range []string{
		"golake_http_requests_total", "golake_query_total",
		"golake_maintenance_passes_total", "golake_wal_appends_total",
	} {
		if !strings.Contains(body, "# HELP "+fam+" ") ||
			!strings.Contains(body, "# TYPE "+fam+" counter") {
			t.Errorf("family %s missing HELP/TYPE headers", fam)
		}
	}
}

func TestMetricsDisabledReturns503(t *testing.T) {
	l, err := Open(t.TempDir(), WithMetrics(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	if l.Metrics() != nil {
		t.Fatal("Metrics() should be nil with WithMetrics(false)")
	}
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	resp, body := get(t, srv, "/v1/metrics", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, srv := metricsLake(t)
	// Generated when absent — and unique per request.
	resp1, _ := get(t, srv, "/v1/datasets", "dana")
	resp2, _ := get(t, srv, "/v1/datasets", "dana")
	id1, id2 := resp1.Header.Get("X-Request-ID"), resp2.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Errorf("generated request IDs = %q, %q", id1, id2)
	}
	// Honored when the client supplies one.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/datasets", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("echoed request ID = %q", got)
	}
}

func TestMetricsRouteLabelsAreBounded(t *testing.T) {
	_, srv := metricsLake(t)
	// Probing paths must not mint per-path label values.
	for i := 0; i < 3; i++ {
		resp, _ := get(t, srv, fmt.Sprintf("/no/such/path/%d", i), "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("probe status = %d", resp.StatusCode)
		}
	}
	_, body := scrape(t, srv)
	if !strings.Contains(body, `golake_http_requests_total{route="unmatched",method="GET",class="4xx"} 3`) {
		t.Errorf("probes not folded into the unmatched route:\n%s", body)
	}
	if strings.Contains(body, "no/such/path") {
		t.Error("raw request path leaked into metric labels")
	}
}

func TestExplainAnalyzeOverHTTP(t *testing.T) {
	_, srv := metricsLake(t)
	resp, body := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"EXPLAIN ANALYZE SELECT id FROM rel:orders"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out struct {
		Plan struct {
			Analyzed *struct {
				RowsOut int64 `json:"rows_out"`
				Trace   []struct {
					Name       string `json:"name"`
					DurationNs int64  `json:"duration_ns"`
				} `json:"trace"`
			} `json:"analyzed"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("body = %s (%v)", body, err)
	}
	if out.Plan.Analyzed == nil {
		t.Fatalf("no analyzed stats in plan: %s", body)
	}
	if out.Plan.Analyzed.RowsOut != 2 {
		t.Errorf("analyzed rows_out = %d", out.Plan.Analyzed.RowsOut)
	}
	names := map[string]bool{}
	for _, sp := range out.Plan.Analyzed.Trace {
		names[sp.Name] = true
	}
	for _, want := range []string{"plan", "open-sources", "execute"} {
		if !names[want] {
			t.Errorf("analyzed trace missing span %q (have %v)", want, names)
		}
	}
	// The analyze body flag is the same capability without SQL syntax.
	resp, body = do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT id FROM rel:orders","analyze":true}`)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"analyzed"`) {
		t.Errorf("analyze flag: status = %d, body %s", resp.StatusCode, body)
	}
}

func TestNDJSONTrailerCarriesTraceSpans(t *testing.T) {
	_, srv := metricsLake(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/query",
		strings.NewReader(`{"sql":"SELECT id FROM rel:orders"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last json.RawMessage
	for dec.More() {
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		last = line
	}
	var trailer struct {
		Stats *struct {
			Trace []struct {
				Name string `json:"name"`
			} `json:"trace"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(last, &trailer); err != nil || trailer.Stats == nil {
		t.Fatalf("last NDJSON line is not a stats trailer: %s (%v)", last, err)
	}
	names := map[string]bool{}
	for _, sp := range trailer.Stats.Trace {
		names[sp.Name] = true
	}
	for _, want := range []string{"plan", "open-sources", "execute", "serialize"} {
		if !names[want] {
			t.Errorf("trailer trace missing span %q (have %v)", want, names)
		}
	}
}

// TestConcurrentScrapes hammers /v1/metrics while queries and ingests
// are in flight; run with -race this pins the registry's and the
// middleware's concurrency safety end to end.
func TestConcurrentScrapes(t *testing.T) {
	l, srv := metricsLake(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, _ := scrape(t, srv)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape status = %d", resp.StatusCode)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, _ := do(t, srv, http.MethodPost, "/v1/query", "dana",
					`{"sql":"SELECT id FROM rel:orders","fanin":2}`)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status = %d", resp.StatusCode)
					return
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				path := fmt.Sprintf("raw/scrape_%d_%d.csv", g, i)
				if _, err := l.Ingest(context.Background(), path,
					[]byte("id,v\n1,a\n"), "gen", "dana"); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// The final scrape must parse as exposition text and account for
	// every query the workload ran.
	_, body := scrape(t, srv)
	if !strings.Contains(body, `golake_query_total{outcome="ok"} 40`) {
		t.Errorf("query outcome counter wrong after workload:\n%s", grepLines(body, "golake_query_total"))
	}
}

// grepLines filters exposition text down to lines mentioning substr,
// keeping failure output readable.
func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
