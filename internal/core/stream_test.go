package core

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"golake/internal/query"
	"golake/internal/table"
	"golake/lakeerr"
)

// bigTableLake registers a wide relational table directly in the
// polystore (bypassing ingestion, which is not under test) so
// streaming behavior is observable at a size exceeding socket buffers.
func bigTableLake(t *testing.T, rows int) *Lake {
	t.Helper()
	l := testLake(t)
	big := table.New("big")
	big.Columns = []*table.Column{{Name: "id"}, {Name: "payload"}}
	for i := 0; i < rows; i++ {
		_ = big.AppendRow([]string{fmt.Sprint(i), "payload-0123456789abcdef-0123456789abcdef"})
	}
	l.Poly.Rel.Create(big)
	return l
}

func TestV1QueryNDJSONFramingRoundTrip(t *testing.T) {
	srv := apiLake(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/query",
		strings.NewReader(`{"sql":"SELECT id, total FROM rel:orders"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing header line")
	}
	var header struct {
		Columns []string `json:"columns"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil || len(header.Columns) != 2 {
		t.Fatalf("header line = %q (%v)", sc.Text(), err)
	}
	var rows [][]string
	sawStats := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) > 0 && line[0] == '{' {
			// Object lines after the header are trailers: the clean-end
			// stats object (or an in-band error, which this query must
			// not produce).
			var trailer struct {
				Stats *query.ExecStats `json:"stats"`
				Error *errBody         `json:"error"`
			}
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("trailer line = %q (%v)", line, err)
			}
			if trailer.Error != nil {
				t.Fatalf("unexpected error trailer: %s", line)
			}
			if trailer.Stats == nil || len(trailer.Stats.Sources) != 1 || trailer.Stats.RowsOut != 2 {
				t.Fatalf("stats trailer = %s", line)
			}
			sawStats = true
			continue
		}
		var row []string
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("row line = %q (%v)", sc.Text(), err)
		}
		if len(row) != len(header.Columns) {
			t.Fatalf("row %v does not match header %v", row, header.Columns)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("streamed %d rows, want 2", len(rows))
	}
	if !sawStats {
		t.Error("clean NDJSON stream ended without a stats trailer")
	}
	// The same query over the default JSON envelope must agree.
	_, body := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT id, total FROM rel:orders"}`)
	var env struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(env.Columns) != fmt.Sprint(header.Columns) || fmt.Sprint(env.Rows) != fmt.Sprint(rows) {
		t.Errorf("NDJSON %v %v disagrees with JSON envelope %v %v",
			header.Columns, rows, env.Columns, env.Rows)
	}
}

// TestNDJSONStreamsBeforeHandlerFinishes is the incremental-delivery
// guarantee: the client reads the first row while the handler is still
// writing the rest of a multi-megabyte result.
func TestNDJSONStreamsBeforeHandlerFinishes(t *testing.T) {
	l := bigTableLake(t, 100000) // ~4 MB on the wire, well past socket buffers
	var handlerDone atomic.Bool
	inner := l.HTTPHandler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(w, r)
		handlerDone.Store(true)
	}))
	defer srv.Close()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/query",
		strings.NewReader(`{"sql":"SELECT id, payload FROM rel:big"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	if _, err := r.ReadString('\n'); err != nil { // header
		t.Fatal(err)
	}
	first, err := r.ReadString('\n') // first row
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(first, "[") {
		t.Fatalf("first row line = %q", first)
	}
	if handlerDone.Load() {
		t.Fatal("handler finished before the client read the first row: response was buffered, not streamed")
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
}

// failingIterator streams a few rows, then breaks — the mid-stream
// failure case.
type failingIterator struct {
	rows int
	err  error
}

func (f *failingIterator) Columns() []string { return []string{"a"} }

func (f *failingIterator) Next(ctx context.Context) ([]string, error) {
	if f.rows == 0 {
		return nil, f.err
	}
	f.rows--
	return []string{"x"}, nil
}

func (f *failingIterator) Close() error { return nil }

func TestNDJSONMidStreamErrorEmitsTrailerLine(t *testing.T) {
	rec := httptest.NewRecorder()
	it := &failingIterator{rows: 2, err: lakeerr.Errorf(lakeerr.CodeUnavailable, "store went away")}
	streamNDJSON(rec, context.Background(), query.RowIterator(it), nil)
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 4 { // header + 2 rows + trailer
		t.Fatalf("lines = %q", lines)
	}
	var trailer struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &trailer); err != nil {
		t.Fatalf("trailer = %q (%v)", lines[3], err)
	}
	if trailer.Error.Code != "unavailable" || !strings.Contains(trailer.Error.Message, "store went away") {
		t.Errorf("trailer = %+v", trailer.Error)
	}
	// The stream already committed a 200; the failure is in-band only.
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}

// TestLegacyQueryAliasNeverStreams pins the alias contract: the
// deprecated POST /query keeps its pre-v1 JSON wire shape even when
// the request's Accept header mentions NDJSON.
func TestLegacyQueryAliasNeverStreams(t *testing.T) {
	srv := apiLake(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/query",
		strings.NewReader(`{"sql":"SELECT id FROM rel:orders"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("legacy Content-Type = %q, want application/json", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var env struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(body, &env); err != nil || len(env.Rows) != 2 {
		t.Errorf("legacy query body = %s (%v), want the JSON envelope", body, err)
	}
}

func TestNDJSONOpenErrorKeepsEnvelope(t *testing.T) {
	srv := apiLake(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/query",
		strings.NewReader(`{"sql":"SELECT * FROM rel:ghost"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 before the stream commits", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if code, _ := envelope(t, body); code != "not_found" {
		t.Errorf("code = %q", code)
	}
}

// TestQueryStreamCancellationReleasesCleanly covers the streaming API
// contract under cancellation: Next surfaces a typed unavailable
// error, Close is clean, and no goroutines are left behind (the
// pipeline is pull-based — nothing to leak, pinned here under -race).
func TestQueryStreamCancellationReleasesCleanly(t *testing.T) {
	l := bigTableLake(t, 10000)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	it, err := l.QueryStream(ctx, "dana", "SELECT id FROM rel:big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(ctx); err != nil {
		t.Fatalf("first row: %v", err)
	}
	cancel()
	if _, err := it.Next(ctx); lakeerr.CodeOf(err) != lakeerr.CodeUnavailable {
		t.Fatalf("Next after cancel = %v, want unavailable", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines %d -> %d after canceled stream", before, after)
	}
}

func TestQueryStreamHonorsMaxResults(t *testing.T) {
	l, err := Open(t.TempDir(), WithMaxResults(5))
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	big := table.New("big")
	big.Columns = []*table.Column{{Name: "id"}}
	for i := 0; i < 1000; i++ {
		_ = big.AppendRow([]string{fmt.Sprint(i)})
	}
	l.Poly.Rel.Create(big)
	it, err := l.QueryStream(context.Background(), "dana", "SELECT id FROM rel:big")
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		_, err := it.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5 {
		t.Errorf("streamed %d rows, want the WithMaxResults cap of 5", n)
	}
}

// TestV1DatasetsCursorStableUnderConcurrentIngest is the reason
// cursors exist: an ingest landing between two pages shifts offsets
// but must not make the cursor walk repeat or skip datasets.
func TestV1DatasetsCursorStableUnderConcurrentIngest(t *testing.T) {
	srv := apiLake(t) // raw/orders.csv, raw/payments.csv
	_, body := get(t, srv, "/v1/datasets?limit=1", "dana")
	var pg struct {
		Items []struct {
			ID string `json:"id"`
		} `json:"items"`
		NextCursor string `json:"next_cursor"`
	}
	if err := json.Unmarshal(body, &pg); err != nil || len(pg.Items) != 1 {
		t.Fatalf("page 1 = %s (%v)", body, err)
	}
	if pg.Items[0].ID != "raw/orders.csv" || pg.NextCursor == "" {
		t.Fatalf("page 1 = %+v", pg)
	}
	// A new dataset sorting before the cursor lands mid-walk.
	resp, _ := do(t, srv, http.MethodPost, "/v1/datasets", "dana",
		`{"path":"raw/aaa.csv","content":"id\n1\n"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	_, body = get(t, srv, "/v1/datasets?limit=1&cursor="+pg.NextCursor, "dana")
	var pg2 struct {
		Items []struct {
			ID string `json:"id"`
		} `json:"items"`
		Total int `json:"total"`
	}
	if err := json.Unmarshal(body, &pg2); err != nil || len(pg2.Items) != 1 {
		t.Fatalf("page 2 = %s (%v)", body, err)
	}
	if pg2.Items[0].ID != "raw/payments.csv" {
		t.Errorf("cursor page repeated/skipped: got %q, want raw/payments.csv", pg2.Items[0].ID)
	}
	if pg2.Total != 3 {
		t.Errorf("total = %d, want 3 after the concurrent ingest", pg2.Total)
	}
	// The offset walk, by contrast, re-serves orders.csv after the
	// shift — the instability cursors remove.
	_, body = get(t, srv, "/v1/datasets?limit=1&offset=1", "dana")
	if err := json.Unmarshal(body, &pg2); err != nil || len(pg2.Items) != 1 {
		t.Fatalf("offset page = %s (%v)", body, err)
	}
	if pg2.Items[0].ID != "raw/orders.csv" {
		t.Errorf("offset page = %q (expected the shifted duplicate)", pg2.Items[0].ID)
	}
}

func TestV1CursorValidation(t *testing.T) {
	srv := apiLake(t)
	// Undecodable cursors are invalid queries.
	resp, body := get(t, srv, "/v1/datasets?cursor=%21%21%21", "dana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status = %d", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "invalid_query" {
		t.Errorf("code = %q", code)
	}
	// A positional cursor does not address the keyset-paged listing.
	pos := "cDox" // base64url("p:1")
	resp, _ = get(t, srv, "/v1/datasets?cursor="+pos, "dana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cross-listing cursor status = %d", resp.StatusCode)
	}
}

func TestV1AuditCursorPagination(t *testing.T) {
	srv := apiLake(t)
	// Two queries log two access events on orders.
	for i := 0; i < 2; i++ {
		resp, _ := do(t, srv, http.MethodPost, "/v1/query", "dana", `{"sql":"SELECT id FROM rel:orders"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status = %d", resp.StatusCode)
		}
	}
	var seen int
	cursor := ""
	for hops := 0; hops < 10; hops++ {
		path := "/v1/audit?entity=raw/orders.csv&limit=1"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		_, body := get(t, srv, path, "gov")
		var pg struct {
			Items      []json.RawMessage `json:"items"`
			NextCursor string            `json:"next_cursor"`
		}
		if err := json.Unmarshal(body, &pg); err != nil {
			t.Fatalf("audit page = %s (%v)", body, err)
		}
		seen += len(pg.Items)
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
	}
	if seen < 2 {
		t.Errorf("cursor walk saw %d audit events, want >= 2", seen)
	}
}

func TestLegacyAliasSuccessorLinks(t *testing.T) {
	srv := apiLake(t)
	aliases := []struct{ method, path, user, body, successor string }{
		{http.MethodGet, "/datasets", "dana", "", "/v1/datasets"},
		{http.MethodGet, "/metadata?id=raw/orders.csv", "dana", "", "/v1/metadata"},
		{http.MethodGet, "/related?table=orders&k=2", "dana", "", "/v1/related"},
		{http.MethodPost, "/query", "dana", `{"sql":"SELECT id FROM rel:orders"}`, "/v1/query"},
		{http.MethodGet, "/lineage?entity=raw/orders.csv", "dana", "", "/v1/lineage"},
		{http.MethodGet, "/audit?entity=raw/orders.csv", "gov", "", "/v1/audit"},
		{http.MethodGet, "/swamp", "dana", "", "/v1/swamp"},
	}
	for _, a := range aliases {
		resp, _ := do(t, srv, a.method, a.path, a.user, a.body)
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s %s: missing Deprecation header", a.method, a.path)
		}
		link := resp.Header.Get("Link")
		if !strings.Contains(link, "<"+a.successor+">") || !strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("%s %s: Link = %q, want successor %s", a.method, a.path, link, a.successor)
		}
	}
}

// TestWriteErrNeverFiresAfterPartialBody pins the envelope-integrity
// rule: once a handler has started the body, writeErr is a no-op
// rather than interleaving an error object into the partial payload.
func TestWriteErrNeverFiresAfterPartialBody(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	_, _ = sw.Write([]byte(`{"columns":["a"],`))
	req := httptest.NewRequest(http.MethodGet, "/v1/datasets", nil)
	writeErr(sw, req, lakeerr.Errorf(lakeerr.CodeInternal, "boom"))
	if got := rec.Body.String(); got != `{"columns":["a"],` {
		t.Errorf("body after late writeErr = %q, want the partial body untouched", got)
	}
}

// TestRecoverMidStreamPanicEmitsNDJSONTrailer covers the panic path of
// the audit: a handler dying mid-NDJSON terminates the stream with the
// trailer error line instead of a second status line or silence.
func TestRecoverMidStreamPanicEmitsNDJSONTrailer(t *testing.T) {
	l := testLake(t)
	h := l.recoverMW(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ndjsonContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("{\"columns\":[\"a\"]}\n"))
		panic("mid-stream")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/query", nil))
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"error"`) || !strings.Contains(last, "internal") {
		t.Errorf("stream after panic = %q, want a trailer error line", rec.Body.String())
	}
}
