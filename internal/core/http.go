package core

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/maintain"
	"golake/internal/table"
	"golake/lakeerr"
)

// HTTPHandler exposes the lake over a versioned REST API, the
// external-application interface Constance and CoreDB provide
// (Sec. 7.2). The acting user comes from the X-Lake-User header; role
// checks apply as in the Go API. Every request runs through a
// middleware chain (panic recovery, request logging via WithLogger,
// user resolution), and every failure is rendered as the structured
// envelope {"error":{"code","message"}} with the code drawn from the
// lakeerr taxonomy.
//
//	GET  /v1/datasets?limit=&offset=     paginated catalog entries
//	POST /v1/datasets                    ingest one object (JSON body)
//	GET  /v1/metadata?id=PATH            one GEMMS metadata object
//	GET  /v1/related?table=NAME&k=5      populate-mode discovery
//	POST /v1/explore                     any discovery mode (JSON body)
//	POST /v1/query                       body: {"sql": ...}; JSON rows
//	GET  /v1/lineage?entity=NAME         upstream provenance, paginated
//	GET  /v1/audit?entity=NAME           access log (governance role)
//	GET  /v1/swamp                       metadata-coverage report
//	GET  /v1/maintenance                 maintenance status snapshot
//	POST /v1/maintenance                 run a pass now (409 if running)
//
// The unversioned routes of the first release (/datasets, /metadata,
// /related, /query, /lineage, /audit, /swamp) remain as deprecated
// aliases: same semantics and pre-v1 wire shapes (flat arrays, flat
// {"error": "message"} failures), plus a Deprecation header pointing
// at the /v1 successor.
func (l *Lake) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/datasets", l.handleDatasetsV1)
	mux.HandleFunc("POST /v1/datasets", l.handleIngest)
	mux.HandleFunc("GET /v1/metadata", l.handleMetadata)
	mux.HandleFunc("GET /v1/related", l.handleRelated)
	mux.HandleFunc("POST /v1/explore", l.handleExplore)
	mux.HandleFunc("POST /v1/query", l.handleQuery)
	mux.HandleFunc("GET /v1/lineage", l.handleLineageV1)
	mux.HandleFunc("GET /v1/audit", l.handleAuditV1)
	mux.HandleFunc("GET /v1/swamp", l.handleSwamp)
	mux.HandleFunc("GET /v1/maintenance", l.handleMaintenanceStatus)
	mux.HandleFunc("POST /v1/maintenance", l.handleMaintenanceTrigger)
	// Deprecated pre-v1 aliases.
	mux.HandleFunc("GET /datasets", deprecated("/v1/datasets", l.handleDatasetsLegacy))
	mux.HandleFunc("GET /metadata", deprecated("/v1/metadata", l.handleMetadata))
	mux.HandleFunc("GET /related", deprecated("/v1/related", l.handleRelated))
	mux.HandleFunc("POST /query", deprecated("/v1/query", l.handleQuery))
	mux.HandleFunc("GET /lineage", deprecated("/v1/lineage", l.handleLineageLegacy))
	mux.HandleFunc("GET /audit", deprecated("/v1/audit", l.handleAuditLegacy))
	mux.HandleFunc("GET /swamp", deprecated("/v1/swamp", l.handleSwamp))
	return l.recoverMW(l.logMW(mux))
}

type ctxKey int

// legacyKey marks requests arriving through a deprecated alias, so
// writeErr keeps the pre-v1 flat error wire shape for them.
const legacyKey ctxKey = iota

// deprecated marks a legacy alias route with the Deprecation header
// and a Link to its versioned successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r.WithContext(context.WithValue(r.Context(), legacyKey, true)))
	}
}

// recoverMW turns handler panics into a structured internal error
// instead of a dropped connection.
func (l *Lake) recoverMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if l.logger != nil {
					l.logger.Error("panic", "method", r.Method, "path", r.URL.Path, "panic", rec)
				}
				// legacyKey is attached inside the mux, below this
				// middleware — recover by path so alias routes keep
				// their flat error shape even on panic.
				if !strings.HasPrefix(r.URL.Path, "/v1/") {
					r = r.WithContext(context.WithValue(r.Context(), legacyKey, true))
				}
				writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInternal, "internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusWriter records the status code for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// logMW logs one line per request when a logger is configured.
func (l *Lake) logMW(next http.Handler) http.Handler {
	if l.logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		l.logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"user", userOf(r), "status", sw.status,
			"duration", time.Since(start))
	})
}

func userOf(r *http.Request) string {
	if u := r.Header.Get("X-Lake-User"); u != "" {
		return u
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errEnvelope is the v1 error wire shape.
type errEnvelope struct {
	Error errBody `json:"error"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeErr maps a classified error onto its HTTP status and the
// structured envelope. Classification comes from the lakeerr taxonomy
// (errors.As under the hood) — never from message text. Requests
// through deprecated aliases keep the pre-v1 flat {"error": "msg"}
// shape.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	code := lakeerr.CodeOf(err)
	if r != nil && r.Context().Value(legacyKey) != nil {
		writeJSON(w, httpStatus(code), map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, httpStatus(code), errEnvelope{Error: errBody{
		Code:    string(code),
		Message: err.Error(),
	}})
}

func httpStatus(code lakeerr.Code) int {
	switch code {
	case lakeerr.CodeNotFound:
		return http.StatusNotFound
	case lakeerr.CodeUnauthorized:
		return http.StatusForbidden
	case lakeerr.CodeInvalidQuery:
		return http.StatusBadRequest
	case lakeerr.CodeConflict:
		return http.StatusConflict
	case lakeerr.CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// orEmpty keeps empty lists encoding as [] instead of null.
func orEmpty[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}

// page is the paginated v1 list envelope.
type page[T any] struct {
	Items  []T `json:"items"`
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

const (
	defaultPageLimit = 50
	maxPageLimit     = 1000
)

// parsePage reads limit/offset query parameters, applying the default
// and maximum bounds. Malformed or negative values are invalid
// queries, not silent defaults; an explicit limit=0 is honored (an
// empty page carrying only the total).
func parsePage(r *http.Request) (limit, offset int, err error) {
	limit = defaultPageLimit
	if s := r.URL.Query().Get("limit"); s != "" {
		limit, err = strconv.Atoi(s)
		if err != nil || limit < 0 {
			return 0, 0, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "bad limit %q", s)
		}
		if limit > maxPageLimit {
			limit = maxPageLimit
		}
	}
	if s := r.URL.Query().Get("offset"); s != "" {
		offset, err = strconv.Atoi(s)
		if err != nil || offset < 0 {
			return 0, 0, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "bad offset %q", s)
		}
	}
	return limit, offset, nil
}

// paginate slices items into the page envelope.
func paginate[T any](items []T, limit, offset int) page[T] {
	total := len(items)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	return page[T]{Items: orEmpty(items[offset:end]), Total: total, Limit: limit, Offset: offset}
}

// datasetEntry is one catalog row on the wire.
type datasetEntry struct {
	ID      string `json:"id"`
	Cluster string `json:"cluster"`
}

func (l *Lake) listDatasets() []datasetEntry {
	out := []datasetEntry{}
	for _, id := range l.Catalog.List() {
		e, err := l.Catalog.Entry(id)
		if err != nil {
			continue
		}
		out = append(out, datasetEntry{ID: e.ID, Cluster: e.Cluster})
	}
	return out
}

func (l *Lake) handleDatasetsV1(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, paginate(l.listDatasets(), limit, offset))
}

func (l *Lake) handleDatasetsLegacy(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, l.listDatasets())
}

// ingestRequest is the POST /v1/datasets body.
type ingestRequest struct {
	Path    string `json:"path"`
	Source  string `json:"source"`
	Content string `json:"content"`
}

func (l *Lake) handleIngest(w http.ResponseWriter, r *http.Request) {
	user := userOf(r)
	if _, err := l.roleOf(user); err != nil {
		writeErr(w, r, err)
		return
	}
	var body ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Path == "" {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "ingest: body needs path and content"))
		return
	}
	if body.Source == "" {
		body.Source = "http"
	}
	res, err := l.Ingest(r.Context(), body.Path, []byte(body.Content), body.Source, user)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"path":   res.Placement.Path,
		"store":  res.Placement.Target,
		"format": res.Placement.Format,
	})
}

func (l *Lake) handleMetadata(w http.ResponseWriter, r *http.Request) {
	obj, err := l.Metadata(r.Context(), r.URL.Query().Get("id"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         obj.ID,
		"properties": obj.Properties,
		"attributes": obj.Attributes,
		"semantics":  obj.Semantics,
	})
}

func (l *Lake) handleRelated(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	if k <= 0 {
		k = 5
	}
	res, err := l.RelatedTables(r.Context(), userOf(r), name, k)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(res))
}

// exploreRequest is the POST /v1/explore body. Mode selects the
// survey's discovery mode: "join-column" (needs column), "populate",
// or "task" (optional task: augment, features, clean).
type exploreRequest struct {
	Mode   string `json:"mode"`
	Table  string `json:"table"`
	Column string `json:"column"`
	Task   string `json:"task"`
	K      int    `json:"k"`
}

func (l *Lake) handleExplore(w http.ResponseWriter, r *http.Request) {
	// Authenticate before resolving the table, so unregistered callers
	// cannot use the 404/403 difference as an existence oracle.
	user := userOf(r)
	if _, err := l.roleOf(user); err != nil {
		writeErr(w, r, err)
		return
	}
	var body exploreRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Table == "" {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: body needs mode and table"))
		return
	}
	req := explore.Request{K: body.K, Column: body.Column}
	switch body.Mode {
	case "join-column":
		req.Mode = explore.ModeJoinColumn
		if body.Column == "" {
			writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: join-column mode needs column"))
			return
		}
	case "populate", "":
		req.Mode = explore.ModePopulate
	case "task":
		req.Mode = explore.ModeTask
		switch body.Task {
		case "augment", "":
			req.Task = discovery.TaskAugment
		case "features":
			req.Task = discovery.TaskFeatures
		case "clean":
			req.Task = discovery.TaskClean
		default:
			writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: unknown task %q", body.Task))
			return
		}
	default:
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: unknown mode %q", body.Mode))
		return
	}
	t, err := l.Poly.Rel.Table(body.Table)
	if err != nil {
		writeErr(w, r, lakeerr.Wrap(lakeerr.CodeNotFound, err))
		return
	}
	req.Query = t
	res, err := l.Explore(r.Context(), userOf(r), req)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(res))
}

func (l *Lake) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.SQL == "" {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: bad request body"))
		return
	}
	res, err := l.QuerySQL(r.Context(), userOf(r), body.SQL)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, tableJSON(res))
}

// tableJSON renders a table as {columns: [...], rows: [[...], ...]}.
func tableJSON(t *table.Table) map[string]any {
	rows := make([][]string, 0, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		rows = append(rows, t.Row(i))
	}
	return map[string]any{"columns": orEmpty(t.ColumnNames()), "rows": rows}
}

func (l *Lake) lineageOf(r *http.Request) ([]string, error) {
	return l.Lineage(r.Context(), r.URL.Query().Get("entity"))
}

func (l *Lake) handleLineageV1(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	up, err := l.lineageOf(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, paginate(up, limit, offset))
}

func (l *Lake) handleLineageLegacy(w http.ResponseWriter, r *http.Request) {
	up, err := l.lineageOf(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(up))
}

func (l *Lake) handleAuditV1(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	events, err := l.Audit(r.Context(), userOf(r), r.URL.Query().Get("entity"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, paginate(events, limit, offset))
}

func (l *Lake) handleAuditLegacy(w http.ResponseWriter, r *http.Request) {
	events, err := l.Audit(r.Context(), userOf(r), r.URL.Query().Get("entity"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(events))
}

func (l *Lake) handleSwamp(w http.ResponseWriter, r *http.Request) {
	rep, err := l.SwampAudit(r.Context())
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (l *Lake) handleMaintenanceStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, l.MaintenanceStatus())
}

// handleMaintenanceTrigger runs one synchronous incremental pass on
// behalf of a registered user. A pass already in flight is a conflict
// (409) rather than a queue: the running pass — or the scheduler's
// next tick — already covers the data.
func (l *Lake) handleMaintenanceTrigger(w http.ResponseWriter, r *http.Request) {
	if _, err := l.roleOf(userOf(r)); err != nil {
		writeErr(w, r, err)
		return
	}
	rep, err := l.TriggerMaintain(r.Context())
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// Same wire projection as the status endpoint's last_pass, plus
	// whether ingests raced the pass.
	writeJSON(w, http.StatusOK, struct {
		maintain.PassStats
		Stale bool `json:"stale"`
	}{rep.stats(), rep.Stale})
}
