package core

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"golake/internal/admission"
	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/maintain"
	"golake/internal/obs"
	"golake/internal/query"
	"golake/internal/table"
	"golake/lakeerr"
)

// HTTPHandler exposes the lake over a versioned REST API, the
// external-application interface Constance and CoreDB provide
// (Sec. 7.2). The acting user comes from bearer credentials when the
// request carries "Authorization: Bearer <token>" (tokens registered
// with AddToken; an unknown token is a typed unauthorized rejection,
// never a fallthrough), and from the X-Lake-User header otherwise; role
// checks apply as in the Go API. Every request runs through a
// middleware chain (panic recovery, request logging via WithLogger,
// bearer resolution, user resolution), and every failure is rendered as
// the structured envelope {"error":{"code","message"}} with the code
// drawn from the lakeerr taxonomy.
//
//	DELETE /v1/datasets?path=PATH        evict a dataset (curator/operations)
//	GET  /v1/datasets?cursor=&limit=     paginated catalog entries
//	POST /v1/datasets                    ingest one object (JSON body)
//	GET  /v1/metadata?id=PATH            one GEMMS metadata object
//	GET  /v1/related?table=NAME&k=5      populate-mode discovery
//	POST /v1/explore                     any discovery mode (JSON body)
//	POST /v1/query                       body: {"sql", "order", "limit",
//	                                     "fanin", "buffer_rows",
//	                                     "batch_rows", "timeout_ms",
//	                                     "memory_rows", "explain"};
//	                                     JSON rows + stats,
//	                                     the typed plan when explaining,
//	                                     or chunked NDJSON streaming
//	                                     with Accept: application/x-ndjson
//	GET  /v1/lineage?entity=NAME         upstream provenance, paginated
//	GET  /v1/audit?entity=NAME           access log (governance role)
//	GET  /v1/swamp                       metadata-coverage report
//	GET  /v1/maintenance                 maintenance status snapshot
//	POST /v1/maintenance                 run a pass now (409 if running)
//
// List endpoints paginate with an opaque cursor (next_cursor in the
// envelope); limit/offset remain as deprecated aliases of the first
// release.
//
// The unversioned routes of the first release (/datasets, /metadata,
// /related, /query, /lineage, /audit, /swamp) remain as deprecated
// aliases: same semantics and pre-v1 wire shapes (flat arrays, flat
// {"error": "message"} failures), plus a Deprecation header pointing
// at the /v1 successor.
func (l *Lake) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/datasets", l.handleDatasetsV1)
	mux.HandleFunc("POST /v1/datasets", l.handleIngest)
	mux.HandleFunc("DELETE /v1/datasets", l.handleEvict)
	mux.HandleFunc("GET /v1/metadata", l.handleMetadata)
	mux.HandleFunc("GET /v1/related", l.handleRelated)
	mux.HandleFunc("POST /v1/explore", l.handleExplore)
	mux.HandleFunc("POST /v1/query", l.handleQuery)
	mux.HandleFunc("GET /v1/lineage", l.handleLineageV1)
	mux.HandleFunc("GET /v1/audit", l.handleAuditV1)
	mux.HandleFunc("GET /v1/swamp", l.handleSwamp)
	mux.HandleFunc("GET /v1/maintenance", l.handleMaintenanceStatus)
	mux.HandleFunc("POST /v1/maintenance", l.handleMaintenanceTrigger)
	mux.HandleFunc("GET /v1/metrics", l.handleMetrics)
	// Deprecated pre-v1 aliases.
	mux.HandleFunc("GET /datasets", deprecated("/v1/datasets", l.handleDatasetsLegacy))
	mux.HandleFunc("GET /metadata", deprecated("/v1/metadata", l.handleMetadata))
	mux.HandleFunc("GET /related", deprecated("/v1/related", l.handleRelated))
	mux.HandleFunc("POST /query", deprecated("/v1/query", l.handleQuery))
	mux.HandleFunc("GET /lineage", deprecated("/v1/lineage", l.handleLineageLegacy))
	mux.HandleFunc("GET /audit", deprecated("/v1/audit", l.handleAuditLegacy))
	mux.HandleFunc("GET /swamp", deprecated("/v1/swamp", l.handleSwamp))
	return l.recoverMW(l.obsMW(mux))
}

type ctxKey int

const (
	// legacyKey marks requests arriving through a deprecated alias, so
	// writeErr keeps the pre-v1 flat error wire shape for them.
	legacyKey ctxKey = iota
	// authUserKey carries the bearer-token-resolved user; it outranks
	// the spoofable X-Lake-User header in userOf.
	authUserKey
)

// authMW resolves bearer credentials: a request carrying
// "Authorization: Bearer <token>" acts as the token's registered user
// (resolved through the hashed-token registry), an unknown or malformed
// credential is rejected with a typed unauthorized error, and a request
// without an Authorization header falls through to the X-Lake-User
// convention unchanged. Sitting inside obsMW keeps rejected probes in
// the metrics and access log.
func (l *Lake) authMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		auth := r.Header.Get("Authorization")
		if auth == "" {
			next.ServeHTTP(w, r)
			return
		}
		// legacyKey is attached inside the mux, below this middleware —
		// reject by path so alias routes keep their flat error shape.
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			r = r.WithContext(context.WithValue(r.Context(), legacyKey, true))
		}
		token, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok || strings.TrimSpace(token) == "" {
			writeErr(w, r, lakeerr.Errorf(lakeerr.CodeUnauthorized, "auth: Authorization must be a bearer token"))
			return
		}
		user, ok := l.userForToken(strings.TrimSpace(token))
		if !ok {
			writeErr(w, r, lakeerr.Errorf(lakeerr.CodeUnauthorized, "auth: unknown bearer token"))
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), authUserKey, user)))
	})
}

// deprecated marks a legacy alias route with the Deprecation header
// and a Link to its versioned successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r.WithContext(context.WithValue(r.Context(), legacyKey, true)))
	}
}

// recoverMW turns handler panics into a structured internal error
// instead of a dropped connection. It wraps the response writer so a
// panic after the body started — e.g. mid-stream — never appends an
// error envelope to a partial payload: an NDJSON stream gets the
// trailer error line, anything else is left truncated (the client sees
// the broken body, not a corrupted one).
func (l *Lake) recoverMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				if l.logger != nil {
					l.logger.Error("panic", "method", r.Method, "path", r.URL.Path, "panic", rec)
				}
				// legacyKey is attached inside the mux, below this
				// middleware — recover by path so alias routes keep
				// their flat error shape even on panic.
				if !strings.HasPrefix(r.URL.Path, "/v1/") {
					r = r.WithContext(context.WithValue(r.Context(), legacyKey, true))
				}
				err := lakeerr.Errorf(lakeerr.CodeInternal, "internal error")
				if sw.started && strings.HasPrefix(sw.Header().Get("Content-Type"), ndjsonContentType) {
					writeNDJSONError(sw, err)
					return
				}
				writeErr(sw, r, err)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter records the status code for request logging and whether
// the response body has started, so error paths know when sending an
// envelope is no longer possible.
type statusWriter struct {
	http.ResponseWriter
	status  int
	started bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.started {
		s.status = code
		s.started = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	s.started = true
	return s.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so chunked streaming works
// through the middleware chain.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// obsMW is the observability middleware: it stamps every request with
// a request ID (honoring an incoming X-Request-ID, echoing it back on
// the response), attaches a request-scoped logger to the context so
// deeper layers — audit events included — log lines joinable on
// request_id, records the HTTP metric series, and emits one structured
// access-log line per request when a logger is configured.
func (l *Lake) obsMW(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, wrapped := w.(*statusWriter)
		if !wrapped {
			sw = &statusWriter{ResponseWriter: w, status: http.StatusOK}
		}
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		sw.Header().Set("X-Request-ID", id)
		ctx := obs.WithRequestID(r.Context(), id)
		if l.logger != nil {
			ctx = obs.WithLogger(ctx, l.logger.With("request_id", id))
		}
		r = r.WithContext(ctx)
		route := routeOf(mux, r)
		start := time.Now()
		if m := l.metrics; m != nil {
			m.httpInFlight.Inc()
			defer m.httpInFlight.Dec()
		}
		next := l.authMW(mux)
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if m := l.metrics; m != nil {
			m.httpRequests.With(route, r.Method, statusClass(sw.status)).Inc()
			m.httpDuration.With(route).Observe(elapsed.Seconds())
		}
		if l.logger != nil {
			l.logger.Info("request",
				"method", r.Method, "path", r.URL.Path,
				"route", route, "user", userOf(r),
				"status", sw.status, "duration", elapsed,
				"request_id", id)
		}
	})
}

// routeOf recovers the matched route pattern for metric labels — the
// registered pattern, not the raw path, so label cardinality stays
// bounded no matter what paths clients probe.
func routeOf(mux *http.ServeMux, r *http.Request) string {
	_, pattern := mux.Handler(r)
	if pattern == "" {
		return "unmatched"
	}
	// Patterns read "METHOD /path"; the method is its own label.
	if _, path, ok := strings.Cut(pattern, " "); ok {
		return path
	}
	return pattern
}

// statusClass buckets a status code into its class label ("2xx"...).
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// handleMetrics serves the metric registry in the Prometheus text
// exposition format (GET /v1/metrics).
func (l *Lake) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := l.Metrics()
	if reg == nil {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeUnavailable, "metrics: disabled on this lake (WithMetrics(false))"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = reg.WritePrometheus(w)
}

func userOf(r *http.Request) string {
	if u, ok := r.Context().Value(authUserKey).(string); ok && u != "" {
		return u
	}
	if u := r.Header.Get("X-Lake-User"); u != "" {
		return u
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errEnvelope is the v1 error wire shape.
type errEnvelope struct {
	Error errBody `json:"error"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeErr maps a classified error onto its HTTP status and the
// structured envelope. Classification comes from the lakeerr taxonomy
// (errors.As under the hood) — never from message text. Requests
// through deprecated aliases keep the pre-v1 flat {"error": "msg"}
// shape. Once the response body has started, the envelope can no
// longer be framed — writeErr becomes a no-op instead of interleaving
// an error object into a partial payload (streaming handlers emit
// their own in-band trailer).
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	if sw, ok := w.(*statusWriter); ok && sw.started {
		return
	}
	code := lakeerr.CodeOf(err)
	// Load-shedding rejections carry a retry hint; surface it as the
	// standard header so well-behaved clients back off before retrying.
	if ra, ok := admission.RetryAfterOf(err); ok {
		secs := int(ra / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	if r != nil && r.Context().Value(legacyKey) != nil {
		writeJSON(w, httpStatus(code), map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, httpStatus(code), errEnvelope{Error: errBody{
		Code:    string(code),
		Message: err.Error(),
	}})
}

func httpStatus(code lakeerr.Code) int {
	switch code {
	case lakeerr.CodeNotFound:
		return http.StatusNotFound
	case lakeerr.CodeUnauthorized:
		return http.StatusForbidden
	case lakeerr.CodeInvalidQuery:
		return http.StatusBadRequest
	case lakeerr.CodeConflict:
		return http.StatusConflict
	case lakeerr.CodeResourceExhausted:
		return http.StatusTooManyRequests
	case lakeerr.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case lakeerr.CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// orEmpty keeps empty lists encoding as [] instead of null.
func orEmpty[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}

// page is the paginated v1 list envelope. NextCursor, when present, is
// the opaque token of the following page; clients should prefer it
// over computing offsets (limit/offset remain supported but are
// deprecated — offsets shift under concurrent ingest, cursors do not).
type page[T any] struct {
	Items      []T    `json:"items"`
	Total      int    `json:"total"`
	Limit      int    `json:"limit"`
	Offset     int    `json:"offset"`
	NextCursor string `json:"next_cursor,omitempty"`
}

const (
	defaultPageLimit = 50
	maxPageLimit     = 1000
)

// pageParams are the decoded pagination inputs of one list request.
// Cursor is the decoded opaque payload ("" when absent); when set it
// takes precedence over Offset.
type pageParams struct {
	limit, offset int
	cursor        string
}

// parsePage reads limit/offset/cursor query parameters, applying the
// default and maximum bounds. Malformed or negative values are invalid
// queries, not silent defaults; an explicit limit=0 is honored (an
// empty page carrying only the total).
func parsePage(r *http.Request) (pageParams, error) {
	p := pageParams{limit: defaultPageLimit}
	var err error
	if s := r.URL.Query().Get("limit"); s != "" {
		p.limit, err = strconv.Atoi(s)
		if err != nil || p.limit < 0 {
			return pageParams{}, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "bad limit %q", s)
		}
		if p.limit > maxPageLimit {
			p.limit = maxPageLimit
		}
	}
	if s := r.URL.Query().Get("offset"); s != "" {
		p.offset, err = strconv.Atoi(s)
		if err != nil || p.offset < 0 {
			return pageParams{}, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "bad offset %q", s)
		}
	}
	if s := r.URL.Query().Get("cursor"); s != "" {
		p.cursor, err = decodeCursor(s)
		if err != nil {
			return pageParams{}, err
		}
	}
	return p, nil
}

// Cursor payloads are one of two forms behind the base64 opacity:
// "k:<key>" resumes a keyset walk strictly after key (stable under
// concurrent writes for sorted listings: datasets, lineage), "p:<pos>"
// resumes a positional walk (append-only listings: audit logs).
const (
	cursorKeyset     = "k:"
	cursorPositional = "p:"
)

func encodeCursor(payload string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(payload))
}

func decodeCursor(s string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return "", lakeerr.Errorf(lakeerr.CodeInvalidQuery, "bad cursor %q", s)
	}
	payload := string(raw)
	if !strings.HasPrefix(payload, cursorKeyset) && !strings.HasPrefix(payload, cursorPositional) {
		return "", lakeerr.Errorf(lakeerr.CodeInvalidQuery, "bad cursor %q", s)
	}
	return payload, nil
}

// paginateKeyset pages key-sorted items, resuming strictly after the
// cursor's key — a new item landing before the cursor shifts offsets
// but never repeats or skips what keyset pages already covered. Pages
// link forward through keyset next-cursors even when the first page
// was addressed by offset, so clients migrate off offsets by following
// next_cursor once.
func paginateKeyset[T any](items []T, key func(T) string, p pageParams) (page[T], error) {
	total := len(items)
	start := p.offset
	if p.cursor != "" {
		after, ok := strings.CutPrefix(p.cursor, cursorKeyset)
		if !ok {
			return page[T]{}, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "cursor does not address this listing")
		}
		start = sort.Search(total, func(i int) bool { return key(items[i]) > after })
	}
	if start > total {
		start = total
	}
	end := start + p.limit
	if end > total {
		end = total
	}
	pg := page[T]{Items: orEmpty(items[start:end]), Total: total, Limit: p.limit, Offset: start}
	if end < total && end > start {
		pg.NextCursor = encodeCursor(cursorKeyset + key(items[end-1]))
	}
	return pg, nil
}

// paginatePositional pages items by position, carrying the resume
// point in the cursor; appropriate for append-only listings where
// positions are stable.
func paginatePositional[T any](items []T, p pageParams) (page[T], error) {
	total := len(items)
	start := p.offset
	if p.cursor != "" {
		pos, ok := strings.CutPrefix(p.cursor, cursorPositional)
		if !ok {
			return page[T]{}, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "cursor does not address this listing")
		}
		n, err := strconv.Atoi(pos)
		if err != nil || n < 0 {
			return page[T]{}, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "bad cursor position")
		}
		start = n
	}
	if start > total {
		start = total
	}
	end := start + p.limit
	if end > total {
		end = total
	}
	pg := page[T]{Items: orEmpty(items[start:end]), Total: total, Limit: p.limit, Offset: start}
	if end < total && end > start {
		pg.NextCursor = encodeCursor(cursorPositional + strconv.Itoa(end))
	}
	return pg, nil
}

// datasetEntry is one catalog row on the wire.
type datasetEntry struct {
	ID      string `json:"id"`
	Cluster string `json:"cluster"`
}

func (l *Lake) listDatasets() []datasetEntry {
	out := []datasetEntry{}
	for _, id := range l.Catalog.List() {
		e, err := l.Catalog.Entry(id)
		if err != nil {
			continue
		}
		out = append(out, datasetEntry{ID: e.ID, Cluster: e.Cluster})
	}
	return out
}

func (l *Lake) handleDatasetsV1(w http.ResponseWriter, r *http.Request) {
	p, err := parsePage(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// Catalog listings are ID-sorted, so dataset pages walk the keyset:
	// concurrent ingests shift offsets but not cursors.
	pg, err := paginateKeyset(l.listDatasets(), func(e datasetEntry) string { return e.ID }, p)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, pg)
}

func (l *Lake) handleDatasetsLegacy(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, l.listDatasets())
}

// ingestRequest is the POST /v1/datasets body.
type ingestRequest struct {
	Path    string `json:"path"`
	Source  string `json:"source"`
	Content string `json:"content"`
}

func (l *Lake) handleIngest(w http.ResponseWriter, r *http.Request) {
	user := userOf(r)
	if _, err := l.roleOf(user); err != nil {
		writeErr(w, r, err)
		return
	}
	var body ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Path == "" {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "ingest: body needs path and content"))
		return
	}
	if body.Source == "" {
		body.Source = "http"
	}
	res, err := l.Ingest(r.Context(), body.Path, []byte(body.Content), body.Source, user)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"path":   res.Placement.Path,
		"store":  res.Placement.Target,
		"format": res.Placement.Format,
	})
}

// handleEvict removes a dataset (DELETE /v1/datasets?path=...). Role
// enforcement (curator or operations) lives in Lake.Evict.
func (l *Lake) handleEvict(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	if path == "" {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "evict: path parameter required"))
		return
	}
	if err := l.Evict(r.Context(), userOf(r), path); err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"evicted": path})
}

func (l *Lake) handleMetadata(w http.ResponseWriter, r *http.Request) {
	obj, err := l.Metadata(r.Context(), r.URL.Query().Get("id"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         obj.ID,
		"properties": obj.Properties,
		"attributes": obj.Attributes,
		"semantics":  obj.Semantics,
	})
}

func (l *Lake) handleRelated(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	if k <= 0 {
		k = 5
	}
	res, err := l.RelatedTables(r.Context(), userOf(r), name, k)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(res))
}

// exploreRequest is the POST /v1/explore body. Mode selects the
// survey's discovery mode: "join-column" (needs column), "populate",
// or "task" (optional task: augment, features, clean).
type exploreRequest struct {
	Mode   string `json:"mode"`
	Table  string `json:"table"`
	Column string `json:"column"`
	Task   string `json:"task"`
	K      int    `json:"k"`
}

func (l *Lake) handleExplore(w http.ResponseWriter, r *http.Request) {
	// Authenticate before resolving the table, so unregistered callers
	// cannot use the 404/403 difference as an existence oracle.
	user := userOf(r)
	if _, err := l.roleOf(user); err != nil {
		writeErr(w, r, err)
		return
	}
	var body exploreRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Table == "" {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: body needs mode and table"))
		return
	}
	req := explore.Request{K: body.K, Column: body.Column}
	switch body.Mode {
	case "join-column":
		req.Mode = explore.ModeJoinColumn
		if body.Column == "" {
			writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: join-column mode needs column"))
			return
		}
	case "populate", "":
		req.Mode = explore.ModePopulate
	case "task":
		req.Mode = explore.ModeTask
		switch body.Task {
		case "augment", "":
			req.Task = discovery.TaskAugment
		case "features":
			req.Task = discovery.TaskFeatures
		case "clean":
			req.Task = discovery.TaskClean
		default:
			writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: unknown task %q", body.Task))
			return
		}
	default:
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "explore: unknown mode %q", body.Mode))
		return
	}
	t, err := l.Poly.Rel.Table(body.Table)
	if err != nil {
		writeErr(w, r, lakeerr.Wrap(lakeerr.CodeNotFound, err))
		return
	}
	req.Query = t
	res, err := l.Explore(r.Context(), userOf(r), req)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(res))
}

// ndjsonContentType selects chunked streaming on POST /v1/query via
// the Accept header.
const ndjsonContentType = "application/x-ndjson"

// ndjsonFlushEvery bounds how many rows may sit in the response buffer
// before a chunk is flushed to the client.
const ndjsonFlushEvery = 64

// Per-request fan-in bounds: a request may widen concurrency only up to
// these caps, so one query cannot ask the server for unbounded
// goroutines or buffer memory. batch_rows is capped for the same
// reason — a batch is materialized per source, so its size bounds
// per-query memory.
const (
	maxQueryFanIn      = 64
	maxQueryBufferRows = 1 << 16
	maxQueryBatchRows  = 1 << 16
	maxQueryShards     = 64
)

// queryRequest is the POST /v1/query body: one statement plus the
// typed execution options of query.Request. fanin/buffer_rows absent
// means the lake default (fan-in on, one puller per CPU, unless
// WithFanIn pinned a width); fanin 1 forces the sequential union.
// batch_rows sizes the columnar pipeline's batches (absent = the lake
// default; ignored on queries that fall back to row mode). shards
// range-partitions each relational scan into that many cursors drained
// through the same fan-in (absent or 1 = one cursor per table). order
// entries sort the result ({"column": ..., "desc": ...}); explain
// returns the typed plan instead of executing. timeout_ms bounds the
// query's wall-clock time and memory_rows its buffered-row footprint —
// both are clamped by the lake's admission configuration (absent = the
// admission defaults; ignored without WithAdmission).
type queryRequest struct {
	SQL   string `json:"sql"`
	Order []struct {
		Column string `json:"column"`
		Desc   bool   `json:"desc"`
	} `json:"order"`
	Limit      int  `json:"limit"`
	Explain    bool `json:"explain"`
	Analyze    bool `json:"analyze"`
	FanIn      *int `json:"fanin"`
	BufferRows *int `json:"buffer_rows"`
	BatchRows  *int `json:"batch_rows"`
	Shards     *int `json:"shards"`
	TimeoutMS  *int `json:"timeout_ms"`
	MemoryRows *int `json:"memory_rows"`
}

// request validates the body against the server-side caps and builds
// the typed query.Request.
func (b queryRequest) request() (query.Request, error) {
	req := query.Request{SQL: b.SQL, Limit: b.Limit, Explain: b.Explain, Analyze: b.Analyze}
	if b.Limit < 0 {
		return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: limit must be >= 0")
	}
	for _, k := range b.Order {
		if k.Column == "" {
			return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: order entries need a column")
		}
		req.Order = append(req.Order, query.OrderKey{Column: k.Column, Desc: k.Desc})
	}
	if b.FanIn != nil {
		if *b.FanIn < 0 || *b.FanIn > maxQueryFanIn {
			return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: fanin must be 0..%d", maxQueryFanIn)
		}
		req.FanIn = *b.FanIn
	}
	if b.BufferRows != nil {
		if *b.BufferRows < 0 || *b.BufferRows > maxQueryBufferRows {
			return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: buffer_rows must be 0..%d", maxQueryBufferRows)
		}
		req.BufferRows = *b.BufferRows
	}
	if b.BatchRows != nil {
		if *b.BatchRows < 0 || *b.BatchRows > maxQueryBatchRows {
			return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: batch_rows must be 0..%d", maxQueryBatchRows)
		}
		req.BatchRows = *b.BatchRows
	}
	if b.Shards != nil {
		if *b.Shards < 0 || *b.Shards > maxQueryShards {
			return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: shards must be 0..%d", maxQueryShards)
		}
		req.Shards = *b.Shards
	}
	if b.TimeoutMS != nil {
		if *b.TimeoutMS < 0 {
			return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: timeout_ms must be >= 0")
		}
		req.Timeout = time.Duration(*b.TimeoutMS) * time.Millisecond
	}
	if b.MemoryRows != nil {
		if *b.MemoryRows < 0 {
			return req, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: memory_rows must be >= 0")
		}
		req.MemoryRows = *b.MemoryRows
	}
	return req, nil
}

func (l *Lake) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body queryRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.SQL == "" {
		writeErr(w, r, lakeerr.Errorf(lakeerr.CodeInvalidQuery, "query: bad request body"))
		return
	}
	// The Request knobs are a /v1 capability, like NDJSON streaming:
	// deprecated aliases keep their frozen pre-v1 semantics — ignored
	// unknown fields and the sequential union — exactly as they always
	// did.
	if r.Context().Value(legacyKey) != nil {
		l.handleQueryLegacy(w, r, body.SQL)
		return
	}
	req, err := body.request()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// Open the stream before committing to either wire shape, so
	// resolution failures (bad SQL, unknown sources, auth) still get a
	// proper status code and error envelope. The branches consume the
	// same stream; they differ only in framing.
	st, err := l.Query(r.Context(), userOf(r), req)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if st.ExplainOnly() {
		_ = st.Close()
		writeJSON(w, http.StatusOK, map[string]any{"plan": st.Plan()})
		return
	}
	if strings.Contains(r.Header.Get("Accept"), ndjsonContentType) {
		streamNDJSON(w, r.Context(), st, st.Stats)
		return
	}
	res, err := query.Collect(r.Context(), st)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	serStart := time.Now()
	out := tableJSON(res)
	st.AddSpan("serialize", time.Since(serStart))
	out["stats"] = st.Stats()
	writeJSON(w, http.StatusOK, out)
}

// handleQueryLegacy serves the deprecated /query alias with its frozen
// pre-v1 semantics: sequential union (unless WithFanIn), JSON envelope
// only, no Request knobs.
func (l *Lake) handleQueryLegacy(w http.ResponseWriter, r *http.Request, sql string) {
	it, err := l.QueryStream(r.Context(), userOf(r), sql)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	res, err := query.Collect(r.Context(), it)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, tableJSON(res))
}

// batchStreamer is the columnar face a stream may expose (RowStream
// does, when the engine picked the batch pipeline end-to-end).
type batchStreamer interface {
	BatchOutput() bool
	NextBatch(ctx context.Context) (*query.Batch, error)
}

// streamNDJSON writes a query stream as chunked NDJSON: a header
// object {"columns":[...]}, then one JSON array per row, flushed every
// ndjsonFlushEvery rows so the first rows reach the client while the
// scan is still running. A mid-stream failure terminates the stream
// with a final {"error":{...}} line instead of a silent truncation; a
// cleanly-ended stream terminates with a {"stats":{...}} trailer
// carrying the per-source execution counters when the caller supplies
// them — clients distinguish rows (arrays) from the header and
// trailers (objects) by the first byte of each line. Time spent
// encoding rows onto the wire is accumulated into the stream's
// "serialize" trace span (when the iterator carries one) so the stats
// trailer accounts for it.
//
// A stream with a columnar face is drained batch-wise: each batch's
// vectors are walked through one reused scratch row instead of
// materializing a fresh []string per row. The wire bytes are identical
// either way — each line is still the JSON array of the row's cells.
func streamNDJSON(w http.ResponseWriter, ctx context.Context, st query.RowIterator, stats func() query.ExecStats) {
	defer st.Close()
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	var serialize time.Duration
	encode := func(v any) error {
		start := time.Now()
		err := enc.Encode(v)
		serialize += time.Since(start)
		return err
	}
	if err := encode(map[string]any{"columns": orEmpty(st.Columns())}); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	n := 0
	emit := func(row []string) (ok bool) {
		if err := encode(row); err != nil {
			// The client is gone; nobody is left to read a trailer.
			return false
		}
		n++
		if n%ndjsonFlushEvery == 0 && flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if bs, ok := st.(batchStreamer); ok && bs.BatchOutput() {
		scratch := make([]string, len(st.Columns()))
		for {
			b, err := bs.NextBatch(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				writeNDJSONError(w, err)
				return
			}
			for i, bn := 0, b.Len(); i < bn; i++ {
				b.CopyRow(scratch, i)
				if !emit(scratch) {
					return
				}
			}
		}
	} else {
		for {
			row, err := st.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				writeNDJSONError(w, err)
				return
			}
			if !emit(row) {
				return
			}
		}
	}
	if sa, ok := st.(interface {
		AddSpan(string, time.Duration)
	}); ok {
		sa.AddSpan("serialize", serialize)
	}
	if stats != nil {
		_ = enc.Encode(map[string]any{"stats": stats()})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// writeNDJSONError emits the in-band trailer error line of a broken
// stream (the NDJSON analogue of the error envelope).
func writeNDJSONError(w http.ResponseWriter, err error) {
	_ = json.NewEncoder(w).Encode(errEnvelope{Error: errBody{
		Code:    string(lakeerr.CodeOf(err)),
		Message: err.Error(),
	}})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// tableJSON renders a table as {columns: [...], rows: [[...], ...]}.
func tableJSON(t *table.Table) map[string]any {
	rows := make([][]string, 0, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		rows = append(rows, t.Row(i))
	}
	return map[string]any{"columns": orEmpty(t.ColumnNames()), "rows": rows}
}

func (l *Lake) lineageOf(r *http.Request) ([]string, error) {
	return l.Lineage(r.Context(), r.URL.Query().Get("entity"))
}

func (l *Lake) handleLineageV1(w http.ResponseWriter, r *http.Request) {
	p, err := parsePage(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	up, err := l.lineageOf(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// Upstream listings come back sorted, so pages walk the keyset: a
	// derivation recorded mid-walk shifts positions but not cursors.
	pg, err := paginateKeyset(up, func(e string) string { return e }, p)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, pg)
}

func (l *Lake) handleLineageLegacy(w http.ResponseWriter, r *http.Request) {
	up, err := l.lineageOf(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(up))
}

func (l *Lake) handleAuditV1(w http.ResponseWriter, r *http.Request) {
	p, err := parsePage(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	events, err := l.Audit(r.Context(), userOf(r), r.URL.Query().Get("entity"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	pg, err := paginatePositional(events, p)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, pg)
}

func (l *Lake) handleAuditLegacy(w http.ResponseWriter, r *http.Request) {
	events, err := l.Audit(r.Context(), userOf(r), r.URL.Query().Get("entity"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, orEmpty(events))
}

func (l *Lake) handleSwamp(w http.ResponseWriter, r *http.Request) {
	rep, err := l.SwampAudit(r.Context())
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (l *Lake) handleMaintenanceStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, l.MaintenanceStatus())
}

// handleMaintenanceTrigger runs one synchronous incremental pass on
// behalf of a registered user. A pass already in flight is a conflict
// (409) rather than a queue: the running pass — or the scheduler's
// next tick — already covers the data.
func (l *Lake) handleMaintenanceTrigger(w http.ResponseWriter, r *http.Request) {
	if _, err := l.roleOf(userOf(r)); err != nil {
		writeErr(w, r, err)
		return
	}
	rep, err := l.TriggerMaintain(r.Context())
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// Same wire projection as the status endpoint's last_pass, plus
	// whether ingests raced the pass.
	writeJSON(w, http.StatusOK, struct {
		maintain.PassStats
		Stale bool `json:"stale"`
	}{rep.stats(), rep.Stale})
}
