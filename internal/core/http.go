package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"golake/internal/explore"
	"golake/internal/table"
)

// HTTPHandler exposes the lake over REST, the external-application
// interface Constance and CoreDB provide (Sec. 7.2): dataset listing,
// metadata retrieval, related-dataset search, federated queries,
// provenance and the swamp report. The acting user comes from the
// X-Lake-User header; role checks apply as in the Go API.
//
//	GET  /datasets                     list catalog entries
//	GET  /metadata?id=PATH             one GEMMS metadata object
//	GET  /related?table=NAME&k=5       query-driven discovery
//	POST /query                        body: SQL; result: JSON rows
//	GET  /lineage?entity=NAME          upstream provenance
//	GET  /audit?entity=NAME            access log (governance role)
//	GET  /swamp                        metadata-coverage report
func (l *Lake) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /datasets", l.handleDatasets)
	mux.HandleFunc("GET /metadata", l.handleMetadata)
	mux.HandleFunc("GET /related", l.handleRelated)
	mux.HandleFunc("POST /query", l.handleQuery)
	mux.HandleFunc("GET /lineage", l.handleLineage)
	mux.HandleFunc("GET /audit", l.handleAudit)
	mux.HandleFunc("GET /swamp", l.handleSwamp)
	return mux
}

func userOf(r *http.Request) string {
	if u := r.Header.Get("X-Lake-User"); u != "" {
		return u
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unknown user"), strings.Contains(msg, "not authorized"):
		status = http.StatusForbidden
	case strings.Contains(msg, "no such"), strings.Contains(msg, "unknown"):
		status = http.StatusNotFound
	case strings.Contains(msg, "query:"):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": msg})
}

func (l *Lake) handleDatasets(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID      string `json:"id"`
		Cluster string `json:"cluster"`
	}
	var out []entry
	for _, id := range l.Catalog.List() {
		e, err := l.Catalog.Entry(id)
		if err != nil {
			continue
		}
		out = append(out, entry{ID: e.ID, Cluster: e.Cluster})
	}
	writeJSON(w, http.StatusOK, out)
}

func (l *Lake) handleMetadata(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	obj, err := l.GEMMS.Object(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         obj.ID,
		"properties": obj.Properties,
		"attributes": obj.Attributes,
		"semantics":  obj.Semantics,
	})
}

func (l *Lake) handleRelated(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	if k <= 0 {
		k = 5
	}
	res, err := l.RelatedTables(userOf(r), name, k)
	if err != nil {
		writeErr(w, err)
		return
	}
	if res == nil {
		res = []explore.Result{}
	}
	writeJSON(w, http.StatusOK, res)
}

func (l *Lake) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.SQL == "" {
		writeErr(w, fmt.Errorf("query: bad request body"))
		return
	}
	res, err := l.QuerySQL(userOf(r), body.SQL)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tableJSON(res))
}

// tableJSON renders a table as {columns: [...], rows: [[...], ...]}.
func tableJSON(t *table.Table) map[string]any {
	rows := make([][]string, 0, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		rows = append(rows, t.Row(i))
	}
	return map[string]any{"columns": t.ColumnNames(), "rows": rows}
}

func (l *Lake) handleLineage(w http.ResponseWriter, r *http.Request) {
	up, err := l.Lineage(r.URL.Query().Get("entity"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if up == nil {
		up = []string{}
	}
	writeJSON(w, http.StatusOK, up)
}

func (l *Lake) handleAudit(w http.ResponseWriter, r *http.Request) {
	events, err := l.Audit(userOf(r), r.URL.Query().Get("entity"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, events)
}

func (l *Lake) handleSwamp(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, l.SwampCheck())
}
