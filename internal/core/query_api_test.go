package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"golake/internal/query"
	"golake/lakeerr"
)

// TestLakeQueryOrderByDeterministicAcrossWidths is the Lake-level
// acceptance pin: ORDER BY output is byte-identical at fan-in 1, 2, 4
// and 8 over a heterogeneous federation (run under -race in CI).
func TestLakeQueryOrderByDeterministicAcrossWidths(t *testing.T) {
	l := fanInLake(t)
	ctx := context.Background()
	const sql = "SELECT city, price FROM rel:hotels_rel, doc:hotels_doc WHERE price > 20 ORDER BY price DESC, city LIMIT 40"
	render := func(st *query.RowStream) string {
		t.Helper()
		var sb strings.Builder
		for {
			row, err := st.Next(ctx)
			if err != nil {
				break
			}
			sb.WriteString(strings.Join(row, "|") + "\n")
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	var want string
	for _, w := range []int{1, 2, 4, 8} {
		st, err := l.Query(ctx, "dana", query.Request{SQL: sql, FanIn: w})
		if err != nil {
			t.Fatalf("fanin=%d: %v", w, err)
		}
		got := render(st)
		if !strings.Contains(got, "|") {
			t.Fatalf("fanin=%d produced no rows", w)
		}
		if w == 1 {
			want = got
		} else if got != want {
			t.Errorf("fanin=%d output differs from sequential", w)
		}
	}
}

// TestLakeQueryStatsAndProvenance: Stats reports per-source pulls, and
// the access lands in the audit trail exactly like the legacy path.
func TestLakeQueryStatsAndProvenance(t *testing.T) {
	l := fanInLake(t)
	l.AddUser("gov", RoleGovernance)
	ctx := context.Background()
	st, err := l.Query(ctx, "dana", query.Request{
		SQL: "SELECT city FROM rel:hotels_rel, doc:hotels_doc",
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := st.Next(ctx); err != nil {
			break
		}
		n++
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("rows = %d, want 600", n)
	}
	es := st.Stats()
	if es.RowsOut != 600 || len(es.Sources) != 2 {
		t.Fatalf("stats = %+v", es)
	}
	for _, s := range es.Sources {
		if s.Rows != 300 {
			t.Errorf("source %s pulled %d rows, want 300", s.Source, s.Rows)
		}
	}
	log, err := l.Audit(ctx, "gov", "raw/hotels_rel.csv")
	if err != nil {
		t.Fatal(err)
	}
	sawQuery := false
	for _, ev := range log {
		if ev.Kind == "query" {
			sawQuery = true
		}
	}
	if !sawQuery {
		t.Errorf("query not recorded in provenance: %+v", log)
	}
}

// TestLakeQueryMaxResultsBoundsTopK: the WithMaxResults cap composes
// into the sort's top-K bound, visible in the plan.
func TestLakeQueryMaxResultsBoundsTopK(t *testing.T) {
	l, err := Open(t.TempDir(), WithMaxResults(5))
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	var csv strings.Builder
	csv.WriteString("id,v\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&csv, "r%d,%d\n", i, i)
	}
	if _, err := l.Ingest(ctx, "raw/nums.csv", []byte(csv.String()), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	st, err := l.Query(ctx, "dana", query.Request{SQL: "SELECT id, v FROM rel:nums ORDER BY v DESC"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Plan().Sort; got != "top-k heap (k=5)" {
		t.Errorf("plan sort = %q, want the max-results bound", got)
	}
	n := 0
	last := ""
	for {
		row, err := st.Next(ctx)
		if err != nil {
			break
		}
		last = row[1]
		n++
	}
	if n != 5 || last != "95" {
		t.Errorf("rows = %d (last v = %s), want the 5 largest", n, last)
	}
}

// TestLakeQueryExplainRecordsNoAccess: explain-only requests plan
// without touching data or the audit trail.
func TestLakeQueryExplainRecordsNoAccess(t *testing.T) {
	l := fanInLake(t)
	l.AddUser("gov", RoleGovernance)
	ctx := context.Background()
	st, err := l.Query(ctx, "dana", query.Request{SQL: "SELECT city FROM rel:hotels_rel", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.ExplainOnly() || st.Plan() == nil {
		t.Fatal("explain request did not return a plan-only stream")
	}
	if _, err := st.Next(ctx); err == nil {
		t.Error("explain stream yielded rows")
	}
	log, err := l.Audit(ctx, "gov", "raw/hotels_rel.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range log {
		if ev.Kind == "query" {
			t.Errorf("explain recorded a query access: %+v", ev)
		}
	}
}

// TestLakeQueryTypedErrors: the unified entry point classifies
// failures exactly like the legacy methods.
func TestLakeQueryTypedErrors(t *testing.T) {
	l := fanInLake(t)
	ctx := context.Background()
	errOf := func(_ *query.RowStream, err error) error { return err }
	cases := []struct {
		name string
		err  error
		code lakeerr.Code
	}{
		{"unknown user", errOf(l.Query(ctx, "mallory", query.Request{SQL: "SELECT city FROM rel:hotels_rel"})), lakeerr.CodeUnauthorized},
		{"bad sql", errOf(l.Query(ctx, "dana", query.Request{SQL: "SELEKT x"})), lakeerr.CodeInvalidQuery},
		{"unknown source", errOf(l.Query(ctx, "dana", query.Request{SQL: "SELECT * FROM rel:ghost"})), lakeerr.CodeNotFound},
		{"explain unknown source", errOf(l.Query(ctx, "dana", query.Request{SQL: "EXPLAIN SELECT * FROM rel:ghost"})), lakeerr.CodeNotFound},
	}
	for _, tc := range cases {
		if lakeerr.CodeOf(tc.err) != tc.code {
			t.Errorf("%s: code = %v (%v), want %v", tc.name, lakeerr.CodeOf(tc.err), tc.err, tc.code)
		}
	}
}

// TestExplainRejectedOnRowShapedEndpoints: QuerySQL, the deprecated
// stream shims, and the legacy /query alias reject EXPLAIN instead of
// returning a silent empty result.
func TestExplainRejectedOnRowShapedEndpoints(t *testing.T) {
	l := fanInLake(t)
	ctx := context.Background()
	const sql = "EXPLAIN SELECT city FROM rel:hotels_rel"
	if _, err := l.QuerySQL(ctx, "dana", sql); lakeerr.CodeOf(err) != lakeerr.CodeInvalidQuery {
		t.Errorf("QuerySQL explain = %v, want invalid_query", err)
	}
	if _, err := l.QueryStream(ctx, "dana", sql); lakeerr.CodeOf(err) != lakeerr.CodeInvalidQuery {
		t.Errorf("QueryStream explain = %v, want invalid_query", err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()
	resp, data := do(t, srv, http.MethodPost, "/query", "dana", `{"sql":"`+sql+`"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("legacy alias explain: status = %d (%s), want 400", resp.StatusCode, data)
	}
}

// TestV1QueryOrderAndLimitBody: the order/limit knobs on POST
// /v1/query sort the JSON result.
func TestV1QueryOrderAndLimitBody(t *testing.T) {
	srv := fanInServer(t)
	resp, data := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT city, price FROM rel:hotels_rel, doc:hotels_doc","order":[{"column":"price","desc":true},{"column":"city"}],"limit":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Columns []string        `json:"columns"`
		Rows    [][]string      `json:"rows"`
		Stats   query.ExecStats `json:"stats"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("rows = %v", out.Rows)
	}
	for i := 1; i < len(out.Rows); i++ {
		if out.Rows[i][1] > out.Rows[i-1][1] {
			t.Errorf("rows not descending by price: %v", out.Rows)
		}
	}
	if len(out.Stats.Sources) != 2 || out.Stats.Sources[0].Rows+out.Stats.Sources[1].Rows != 600 {
		t.Errorf("stats = %+v", out.Stats)
	}
	// Malformed order entries are invalid queries.
	resp, data = do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT city FROM rel:hotels_rel","order":[{"desc":true}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty order column: status = %d (%s)", resp.StatusCode, data)
	}
}

// TestV1QueryExplain: "explain": true (and an EXPLAIN statement)
// return the typed plan instead of rows.
func TestV1QueryExplain(t *testing.T) {
	srv := fanInServer(t)
	for _, body := range []string{
		`{"sql":"SELECT city FROM rel:hotels_rel, doc:hotels_doc ORDER BY city LIMIT 2","explain":true,"fanin":2}`,
		`{"sql":"EXPLAIN SELECT city FROM rel:hotels_rel, doc:hotels_doc ORDER BY city LIMIT 2","fanin":2}`,
	} {
		resp, data := do(t, srv, http.MethodPost, "/v1/query", "dana", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", body, resp.StatusCode, data)
		}
		var out struct {
			Plan *query.Plan `json:"plan"`
			Rows [][]string  `json:"rows"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Plan == nil || len(out.Rows) != 0 {
			t.Fatalf("explain response = %s", data)
		}
		if out.Plan.FanIn != 2 || out.Plan.Sort != "top-k heap (k=2)" || len(out.Plan.Sources) != 2 {
			t.Errorf("plan = %+v", out.Plan)
		}
		if out.Plan.Sources[0].Store != "rel" || out.Plan.Sources[1].Store != "doc" {
			t.Errorf("source stores = %+v", out.Plan.Sources)
		}
	}
}

// TestV1QueryDefaultFanInSequentialOverride: fanin 1 in the body
// forces the sequential plan even though the default fans in.
func TestV1QueryDefaultFanInSequentialOverride(t *testing.T) {
	srv := fanInServer(t)
	resp, data := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"EXPLAIN SELECT city FROM rel:hotels_rel, doc:hotels_doc","fanin":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Plan *query.Plan `json:"plan"`
	}
	if err := json.Unmarshal(data, &out); err != nil || out.Plan == nil {
		t.Fatalf("body = %s (%v)", data, err)
	}
	if out.Plan.FanIn != 1 {
		t.Errorf("fanin=1 plan width = %d", out.Plan.FanIn)
	}
}
