package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"golake/internal/admission"
	"golake/internal/persist"
	"golake/internal/persist/faulty"
	"golake/internal/query"
	"golake/internal/storage/filestore"
	"golake/internal/table"
	"golake/lakeerr"
)

// chaosLake opens a lake over a fault-injecting wrapper around a local
// persistence backend rooted in dir, seeded with one maintained
// dataset.
func chaosLake(t *testing.T, dir string, opts ...Option) (*Lake, *faulty.Backend) {
	t.Helper()
	inner, err := persist.NewLocal(filepath.Join(dir, filestore.PersistDir))
	if err != nil {
		t.Fatal(err)
	}
	f := faulty.New(inner)
	l, err := Open(dir, append([]Option{WithPersistence(f)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n3,15\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	return l, f
}

// TestChaosWALFaultsUnderConcurrentIngestAndQuery: with every 3rd WAL
// append failing, concurrent ingest and query traffic completes
// without a single lost ack — the append retry machinery absorbs the
// transient faults — and a hard-stopped reopen serves byte-identical
// results with every acked dataset present.
func TestChaosWALFaultsUnderConcurrentIngestAndQuery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l, f := chaosLake(t, dir)
	f.FailEveryNthAppend(3)

	const writers, perWriter, readers, queries = 4, 5, 4, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				path := fmt.Sprintf("raw/chaos_%d_%d.csv", w, i)
				if _, err := l.Ingest(ctx, path, []byte("id,v\n1,2\n2,3\n"), "erp", "dana"); err != nil {
					t.Errorf("ingest %s under WAL faults: %v", path, err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				if _, err := l.QuerySQL(ctx, "dana", "SELECT id, total FROM orders ORDER BY id"); err != nil {
					t.Errorf("query under WAL faults: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if f.Injected() == 0 {
		t.Fatal("harness injected no faults; the test exercised nothing")
	}
	want, err := l.QuerySQL(ctx, "dana", "SELECT id, total FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}

	// Hard stop (no Close, no final snapshot): reopen from WAL alone.
	re := openPersistent(t, dir)
	defer re.Close()
	got, err := re.QuerySQL(ctx, "dana", "SELECT id, total FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if table.ToCSV(got) != table.ToCSV(want) {
		t.Errorf("reopened query differs:\n got %q\nwant %q", table.ToCSV(got), table.ToCSV(want))
	}
	// No partial acks: every ingest that returned success is present.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			path := fmt.Sprintf("raw/chaos_%d_%d.csv", w, i)
			if _, err := re.Metadata(ctx, path); err != nil {
				t.Errorf("acked dataset %s missing after reopen: %v", path, err)
			}
		}
	}
}

// TestChaosTornWriteTailDroppedOnReopen: a crash mid-append leaves
// half a frame at the WAL tail; reopen drops the torn tail instead of
// failing, and everything before it is intact.
func TestChaosTornWriteTailDroppedOnReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l, f := chaosLake(t, dir)
	_ = l // hard-stopped below; the torn tail goes in behind its back

	// Simulate the crash image directly through the harness: half of
	// one framed record, then nothing.
	f.TornWriteNextAppend()
	frame := persist.EncodeFrame([]byte(`{"kind":"ingest","path":"raw/lost.csv"}`))
	if err := f.AppendWAL(frame); err == nil {
		t.Fatal("torn append should report failure")
	}

	re := openPersistent(t, dir)
	defer re.Close()
	if _, err := re.Metadata(ctx, "raw/orders.csv"); err != nil {
		t.Errorf("pre-crash dataset lost: %v", err)
	}
	got, err := re.QuerySQL(ctx, "dana", "SELECT id, total FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("reopened rows = %d, want 3", got.NumRows())
	}
}

// TestChaosCheckpointFailureDegradesAndHeals: failing checkpoints
// never fail the mutating operation — the WAL keeps growing — and once
// the backend heals, the next threshold crossing checkpoints fine and
// the lake reopens from the snapshot.
func TestChaosCheckpointFailureDegradesAndHeals(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// Threshold 1 byte: every append crosses it and tries a checkpoint.
	l, f := chaosLake(t, dir, WithSnapshotEvery(1))
	f.FailCheckpoints(true)
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("raw/deg_%d.csv", i)
		if _, err := l.Ingest(ctx, path, []byte("id,v\n1,2\n"), "erp", "dana"); err != nil {
			t.Fatalf("ingest with failing checkpoints: %v", err)
		}
	}
	if f.Injected() == 0 {
		t.Fatal("no checkpoint faults fired")
	}
	f.Heal()
	// The recovered backend re-admits traffic: the next ingest
	// checkpoints successfully.
	if _, err := l.Ingest(ctx, "raw/healed.csv", []byte("id,v\n1,2\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.SnapshotSize(); sz == 0 {
		t.Error("no snapshot after heal; checkpoint did not recover")
	}
	re := openPersistent(t, dir)
	defer re.Close()
	for _, path := range []string{"raw/orders.csv", "raw/deg_0.csv", "raw/deg_2.csv", "raw/healed.csv"} {
		if _, err := re.Metadata(ctx, path); err != nil {
			t.Errorf("dataset %s missing after reopen: %v", path, err)
		}
	}
}

// TestChaosShedQueriesNeverCorruptState: load shedding under a
// one-slot quota combined with WAL faults leaves persisted state
// fully consistent — shed queries touch nothing, acked ingests all
// survive reopen.
func TestChaosShedQueriesNeverCorruptState(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l, f := chaosLake(t, dir, WithAdmission(admission.Config{MaxConcurrentPerUser: 1}))
	f.FailEveryNthAppend(2)

	// Hold the user's only slot so every further query sheds.
	st, err := l.Query(ctx, "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := l.Query(ctx, "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
			if !lakeerr.IsResourceExhausted(err) {
				t.Errorf("held-slot query = %v, want resource_exhausted", err)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("raw/shed_%d.csv", i)
			if _, err := l.Ingest(ctx, path, []byte("id,v\n1,2\n"), "erp", "dana"); err != nil {
				t.Errorf("ingest during shedding: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := openPersistent(t, dir)
	defer re.Close()
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("raw/shed_%d.csv", i)
		if _, err := re.Metadata(ctx, path); err != nil {
			t.Errorf("acked dataset %s missing after reopen: %v", path, err)
		}
	}
	got, err := re.QuerySQL(ctx, "dana", "SELECT id, total FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("reopened rows = %d, want 3", got.NumRows())
	}
}
