package core

import (
	"fmt"

	"golake/internal/clean"
	"golake/internal/discovery"
	"golake/internal/enrich"
	"golake/internal/evolve"
	"golake/internal/extract"
	"golake/internal/integrate"
	"golake/internal/metamodel"
	"golake/internal/organize"
	"golake/internal/provenance"
	"golake/internal/query"
	"golake/internal/table"
	"golake/internal/workload"
)

// Tier is a functional tier of the Fig. 2 architecture.
type Tier string

// The three functional tiers.
const (
	TierIngestion   Tier = "ingestion"
	TierMaintenance Tier = "maintenance"
	TierExploration Tier = "exploration"
)

// FunctionEntry reifies one row group of Table 1: a function, the tier
// it belongs to, the surveyed systems it covers, the package
// implementing it here, and a runnable exercise of the implementation.
type FunctionEntry struct {
	Tier     Tier
	Function string
	Systems  []string
	Package  string
	// Run exercises the function on a small fixture and returns a
	// one-line result summary; the Table 1 bench sweeps over these.
	Run func() (string, error)
}

// Registry returns the Table 1 classification with runnable entries —
// tiers (when), functions (what), systems (who), implementations
// (how). The order follows the survey's Table 1.
func Registry() []FunctionEntry {
	fixture := func() []*table.Table {
		c := workload.GenerateCorpus(workload.CorpusSpec{
			NumTables: 8, JoinGroups: 2, RowsPerTable: 50,
			ExtraCols: 1, KeyVocab: 80, KeySample: 45, Seed: 5,
		})
		return c.Tables
	}
	return []FunctionEntry{
		{
			Tier: TierIngestion, Function: "metadata extraction",
			Systems: []string{"GEMMS", "DATAMARAN", "Skluma"},
			Package: "internal/extract",
			Run: func() (string, error) {
				md, err := extract.Extract("demo.csv", []byte("id,city\n1,berlin\n2,paris\n"))
				if err != nil {
					return "", err
				}
				gl := workload.GenerateLog(workload.LogSpec{Templates: 3, Records: 120, NoiseRate: 0.05, Seed: 2})
				tpls := extract.Datamaran(gl.Content, extract.DefaultDatamaranConfig())
				sk, err := extract.Skluma("demo.csv", []byte("id,city\n1,berlin\n2,paris\n"))
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("schema=%d cols, log templates=%d, keywords=%d",
					len(md.Schema), len(tpls), len(sk.Keywords)), nil
			},
		},
		{
			Tier: TierIngestion, Function: "metadata modeling",
			Systems: []string{"GEMMS", "HANDLE", "data vault", "Diamantini et al.", "Aurum EKG", "Sawadogo et al."},
			Package: "internal/metamodel",
			Run: func() (string, error) {
				md, err := extract.Extract("demo.csv", []byte("id,city\n1,berlin\n2,paris\n"))
				if err != nil {
					return "", err
				}
				obj := metamodel.FromExtraction(md)
				g := metamodel.NewGEMMS()
				g.Register(obj)
				h := metamodel.NewHANDLE()
				if err := h.ImportGEMMS(obj, ZoneRaw); err != nil {
					return "", err
				}
				v := metamodel.NewVault()
				t, _ := table.ParseCSV("demo", "id,city\n1,berlin\n2,paris\n")
				if err := v.LoadTable(t, "id"); err != nil {
					return "", err
				}
				return fmt.Sprintf("gemms objects=%d, handle nodes=%d, vault tables=%d",
					len(g.IDs()), h.Graph().NumNodes(), len(v.ToRelational())), nil
			},
		},
		{
			Tier: TierMaintenance, Function: "dataset organization",
			Systems: []string{"GOODS", "DS-Prox/DS-kNN", "KAYAK", "Nargesian et al.", "RONIN", "Juneau"},
			Package: "internal/organize",
			Run: func() (string, error) {
				tables := fixture()
				knn := organize.NewDSKNN()
				for _, t := range tables {
					knn.Add(t)
				}
				nav := organize.NewNavDAG(4)
				nav.Build(tables)
				return fmt.Sprintf("dsknn categories=%d, navdag leaves=%d, P(find)=%.2f",
					len(knn.Categories()), len(nav.Leaves()), nav.MeanDiscoveryProbability()), nil
			},
		},
		{
			Tier: TierMaintenance, Function: "related dataset discovery",
			Systems: []string{"Aurum", "Brackenbury et al.", "JOSIE", "D3L", "Juneau", "PEXESO", "RNLIM", "DLN"},
			Package: "internal/discovery",
			Run: func() (string, error) {
				tables := fixture()
				j := discovery.NewJOSIE()
				if err := j.Index(tables); err != nil {
					return "", err
				}
				res := j.RelatedTables(tables[0], 3)
				return fmt.Sprintf("josie top-3 for %s: %v", tables[0].Name, res), nil
			},
		},
		{
			Tier: TierMaintenance, Function: "data integration",
			Systems: []string{"Constance", "ALITE"},
			Package: "internal/integrate",
			Run: func() (string, error) {
				a, _ := table.ParseCSV("a", "city,price\nberlin,10\nparis,20\n")
				b, _ := table.ParseCSV("b", "city,rating\nberlin,4\nrome,5\n")
				tables := []*table.Table{a, b}
				clusters := integrate.Cluster(tables, integrate.MatchAll(tables, integrate.DefaultMatchConfig()))
				fd := integrate.FullDisjunction(tables, clusters)
				return fmt.Sprintf("clusters=%d, full disjunction=%d rows", len(clusters), fd.NumRows()), nil
			},
		},
		{
			Tier: TierMaintenance, Function: "metadata enrichment",
			Systems: []string{"CoreDB", "D4", "DomainNet", "Constance", "GOODS"},
			Package: "internal/enrich",
			Run: func() (string, error) {
				tables := fixture()
				domains := enrich.D4(tables, enrich.DefaultD4Config())
				f := enrich.ExtractFeatures("The customer ordered from Berlin Plant today", nil)
				return fmt.Sprintf("d4 domains=%d, features keywords=%d entities=%d",
					len(domains), len(f.Keywords), len(f.NamedEntities)), nil
			},
		},
		{
			Tier: TierMaintenance, Function: "data cleaning",
			Systems: []string{"CLAMS", "Constance", "Auto-Validate"},
			Package: "internal/clean",
			Run: func() (string, error) {
				t, _ := table.ParseCSV("geo", "city,country\nberlin,de\nberlin,de\nberlin,fr\nparis,fr\n")
				ranked := clean.RankViolations(t, clean.DiscoverConstraints(t, 0.7))
				rule := clean.InferRule([]string{"a-1", "b-2", "c-3"}, 0.01)
				return fmt.Sprintf("violations=%d, rule patterns=%d", len(ranked), len(rule.Patterns)), nil
			},
		},
		{
			Tier: TierMaintenance, Function: "schema evolution",
			Systems: []string{"Klettke et al."},
			Package: "internal/evolve",
			Run: func() (string, error) {
				vd := workload.GenerateVersions(workload.SchemaVersionSpec{Versions: 5, DocsPer: 6, Seed: 3})
				_, ops, err := evolve.History(vd.Versions)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("versions=%d, detected ops=%d", len(vd.Versions), len(ops)), nil
			},
		},
		{
			Tier: TierMaintenance, Function: "data provenance",
			Systems: []string{"IBM tool", "Suriarachchi et al.", "GOODS", "CoreDB", "Juneau"},
			Package: "internal/provenance",
			Run: func() (string, error) {
				tr := provenance.NewTracker(nil)
				tr.Ingest("raw", "flume", "ops")
				if err := tr.Derive("job", "spark", "ops", []string{"raw"}, "out"); err != nil {
					return "", err
				}
				up, err := tr.Upstream("out")
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("events=%d, upstream(out)=%v", len(tr.Events()), up), nil
			},
		},
		{
			Tier: TierExploration, Function: "query-driven data discovery",
			Systems: []string{"JOSIE", "D3L", "Juneau", "Aurum"},
			Package: "internal/explore",
			Run: func() (string, error) {
				tables := fixture()
				a := discovery.NewAurum()
				if err := a.Index(tables); err != nil {
					return "", err
				}
				res := a.RelatedTables(tables[0], 3)
				return fmt.Sprintf("aurum top-3: %v (ekg %d cols, %d edges)",
					res, a.EKG().NumColumns(), a.EKG().NumEdges()), nil
			},
		},
		{
			Tier: TierExploration, Function: "heterogeneous data querying",
			Systems: []string{"Constance", "CoreDB", "Ontario", "Squerall"},
			Package: "internal/query",
			Run: func() (string, error) {
				if _, err := query.Parse("SELECT a FROM rel:t WHERE x = 'y' LIMIT 3"); err != nil {
					return "", err
				}
				return "parser + federated engine over 4 member stores", nil
			},
		},
	}
}
