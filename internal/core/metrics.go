package core

import (
	"sync"
	"time"

	"golake/internal/obs"
	"golake/internal/query"
)

// fanInBuckets bracket the plan's effective union width (1 =
// sequential) up to the request cap.
var fanInBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// heapRowBuckets bracket the sort stage's heap high-water mark.
var heapRowBuckets = []float64{10, 100, 1000, 10000, 100000, 1000000}

// batchRowBuckets bracket the logical rows per columnar batch, up to
// the request cap on batch_rows.
var batchRowBuckets = []float64{1, 8, 64, 256, 512, 1024, 4096, 16384, 65536}

// fillRatioBuckets bracket how full each columnar batch is relative to
// the configured batch size (1.0 = every batch at capacity; low values
// signal selective filters or fragmented sources).
var fillRatioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1}

// queueWaitBuckets bracket the time a query spends queued for an
// admission slot, in seconds.
var queueWaitBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10}

// admissionUserCardinality caps the distinct user label values the
// per-user admission series may hold; users beyond the first N fold
// into "other", so a tenant sweep cannot blow the exposition up.
const admissionUserCardinality = 10

// lakeMetrics is the lake's metric surface: one obs.Registry plus the
// pre-registered series every layer records into. All series share the
// golake_ prefix; /v1/metrics renders the registry.
type lakeMetrics struct {
	reg *obs.Registry

	// HTTP middleware.
	httpRequests *obs.CounterVec // route, method, class
	httpDuration *obs.HistogramVec
	httpInFlight *obs.Gauge

	// Query engine, folded from RowStream.Stats at stream close.
	queryTotal      *obs.CounterVec // outcome: ok | error | rejected
	queryRowsOut    *obs.Counter
	queryFanIn      *obs.Histogram
	querySourceRows *obs.CounterVec // source
	querySourceBlkd *obs.CounterVec // source
	querySortHeap   *obs.Histogram
	queryBatchRows  *obs.Histogram
	queryBatchFill  *obs.Histogram

	// Admission control, per user (bounded cardinality: the first
	// admissionUserCardinality users keep their own label, the rest
	// fold into "other").
	admAdmitted  *obs.CounterVec // user
	admQueued    *obs.CounterVec // user
	admShed      *obs.CounterVec // user
	admQueueWait *obs.Histogram
	admInFlight  *obs.GaugeVec // user
	admUserMu    sync.Mutex
	admUsers     map[string]bool

	// Maintenance.
	maintPasses   *obs.CounterVec // mode
	maintFailures *obs.Counter
	maintDuration *obs.Histogram
	maintDatasets *obs.Counter
	maintRetries  *obs.Counter

	// Remote federation: per-member client telemetry, recorded through
	// the remote.Observer the lake installs on each member client.
	remoteRequests *obs.CounterVec // member, outcome
	remoteRows     *obs.CounterVec // member
	remoteRetries  *obs.CounterVec // member
	remoteDuration *obs.HistogramVec

	// Persistence.
	walAppends      *obs.Counter
	walAppendBytes  *obs.Counter
	walAppendDur    *obs.Histogram
	walRetries      *obs.Counter
	walDropped      *obs.Counter
	checkpoints     *obs.Counter
	checkpointDur   *obs.Histogram
	replaySnapshot  *obs.Gauge
	replayWALRecs   *obs.Gauge
	replayWALSkip   *obs.Gauge
	replayTornBytes *obs.Gauge
}

func newLakeMetrics() *lakeMetrics {
	r := obs.NewRegistry()
	return &lakeMetrics{
		reg: r,
		httpRequests: r.CounterVec("golake_http_requests_total",
			"HTTP requests served, by route, method, and status class.",
			"route", "method", "class"),
		httpDuration: r.HistogramVec("golake_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil, "route"),
		httpInFlight: r.Gauge("golake_http_in_flight_requests",
			"HTTP requests currently being served."),
		queryTotal: r.CounterVec("golake_query_total",
			"Queries by outcome: ok, error (failed mid-stream), rejected (refused before opening).",
			"outcome"),
		queryRowsOut: r.Counter("golake_query_rows_out_total",
			"Rows delivered to query consumers, after sort and limit."),
		queryFanIn: r.Histogram("golake_query_fanin_width",
			"Effective fan-in width per executed query (1 = sequential union).",
			fanInBuckets),
		querySourceRows: r.CounterVec("golake_query_source_rows_total",
			"Rows pulled from each member source across all queries.", "source"),
		querySourceBlkd: r.CounterVec("golake_query_source_blocked_seconds_total",
			"Seconds the pipeline spent blocked waiting on each member source.", "source"),
		querySortHeap: r.Histogram("golake_query_sort_heap_rows",
			"Sort-stage heap high-water mark per sorted query, in rows.",
			heapRowBuckets),
		queryBatchRows: r.Histogram("golake_query_batch_rows",
			"Logical rows per columnar batch moved by the batch pipeline.",
			batchRowBuckets),
		queryBatchFill: r.Histogram("golake_query_batch_fill_ratio",
			"Per-batch fill ratio (logical rows / configured batch size) of the columnar pipeline.",
			fillRatioBuckets),
		admAdmitted: r.CounterVec("golake_admission_admitted_total",
			"Queries admitted by the scheduler, by user (top-N users; the rest fold into \"other\").",
			"user"),
		admQueued: r.CounterVec("golake_admission_queued_total",
			"Queries that waited in the admission queue before a decision, by user.",
			"user"),
		admShed: r.CounterVec("golake_admission_shed_total",
			"Queries rejected by admission control (quota, rate, queue overflow, saturation), by user.",
			"user"),
		admQueueWait: r.Histogram("golake_admission_queue_wait_seconds",
			"Time queries spent queued for an admission slot, in seconds.",
			queueWaitBuckets),
		admInFlight: r.GaugeVec("golake_admission_in_flight",
			"Admitted queries currently executing, by user.",
			"user"),
		admUsers: map[string]bool{},
		maintPasses: r.CounterVec("golake_maintenance_passes_total",
			"Completed maintenance passes by mode (full, incremental).", "mode"),
		maintFailures: r.Counter("golake_maintenance_failures_total",
			"Maintenance passes that failed."),
		maintDuration: r.Histogram("golake_maintenance_pass_duration_seconds",
			"Maintenance pass duration in seconds.", nil),
		maintDatasets: r.Counter("golake_maintenance_datasets_reindexed_total",
			"Datasets (re)indexed by maintenance passes."),
		maintRetries: r.Counter("golake_maintenance_retries_total",
			"Scheduler retries after failed passes (backoff events)."),
		remoteRequests: r.CounterVec("golake_remote_requests_total",
			"Remote member-lake queries by member and outcome (ok, aborted, or the failure's error code).",
			"member", "outcome"),
		remoteRows: r.CounterVec("golake_remote_rows_total",
			"Rows streamed in from each remote member lake.", "member"),
		remoteRetries: r.CounterVec("golake_remote_retries_total",
			"Connect retries against each remote member lake.", "member"),
		remoteDuration: r.HistogramVec("golake_remote_request_duration_seconds",
			"Remote query duration (open through stream end) in seconds, by member.",
			nil, "member"),
		walAppends: r.Counter("golake_wal_appends_total",
			"Records appended to the write-ahead log."),
		walAppendBytes: r.Counter("golake_wal_appended_bytes_total",
			"Bytes appended to the write-ahead log, framing included."),
		walAppendDur: r.Histogram("golake_wal_append_duration_seconds",
			"WAL append latency in seconds; with fsync-per-record this is the fsync latency.",
			nil),
		walRetries: r.Counter("golake_wal_append_retries_total",
			"WAL appends retried after a transient backend failure."),
		walDropped: r.Counter("golake_wal_dropped_records_total",
			"WAL records dropped after exhausting append retries (durability degraded for those records)."),
		checkpoints: r.Counter("golake_checkpoints_total",
			"Snapshot checkpoints taken (WAL truncations)."),
		checkpointDur: r.Histogram("golake_checkpoint_duration_seconds",
			"Checkpoint (snapshot + truncate) duration in seconds.", nil),
		replaySnapshot: r.Gauge("golake_replay_snapshot_datasets",
			"Datasets restored from the snapshot at the last open."),
		replayWALRecs: r.Gauge("golake_replay_wal_records",
			"WAL records replayed at the last open."),
		replayWALSkip: r.Gauge("golake_replay_wal_skipped_records",
			"WAL records skipped as unparseable at the last open."),
		replayTornBytes: r.Gauge("golake_replay_torn_bytes",
			"Bytes dropped from a torn WAL tail at the last open."),
	}
}

// observeQuery folds one finished stream's stats into the registry:
// outcome, rows out, fan-in width, per-source counters, and the sort
// heap high-water. Called from the stream's close hook.
func (m *lakeMetrics) observeQuery(plan *query.Plan, st query.ExecStats, failed bool) {
	if m == nil {
		return
	}
	outcome := "ok"
	if failed {
		outcome = "error"
	}
	m.queryTotal.With(outcome).Inc()
	m.queryRowsOut.Add(float64(st.RowsOut))
	if plan != nil {
		m.queryFanIn.Observe(float64(plan.FanIn))
	}
	for _, s := range st.Sources {
		if s.Rows > 0 {
			m.querySourceRows.With(s.Source).Add(float64(s.Rows))
		}
		if s.Blocked > 0 {
			m.querySourceBlkd.With(s.Source).Add(s.Blocked.Seconds())
		}
	}
	if st.SortHeapRows > 0 {
		m.querySortHeap.Observe(float64(st.SortHeapRows))
	}
}

// observeBatch records one columnar batch moving through a query
// pipeline: its logical row count and how full it is relative to the
// configured batch size. Installed as the stream's OnBatch hook, so it
// runs on the consumer's goroutine per batch — both series are plain
// histogram observations, cheap enough for that cadence.
func (m *lakeMetrics) observeBatch(rows, capacity int) {
	if m == nil {
		return
	}
	m.queryBatchRows.Observe(float64(rows))
	if capacity > 0 {
		m.queryBatchFill.Observe(float64(rows) / float64(capacity))
	}
}

// observeRejected counts a query refused before a stream opened (parse
// failure, unknown source, authorization).
func (m *lakeMetrics) observeRejected() {
	if m == nil {
		return
	}
	m.queryTotal.With("rejected").Inc()
}

// admissionUser resolves the bounded-cardinality user label: the first
// admissionUserCardinality distinct users keep their own label, later
// ones fold into "other". The mapping is sticky, so a user's inc and
// dec always hit the same series.
func (m *lakeMetrics) admissionUser(user string) string {
	if m == nil {
		return user
	}
	m.admUserMu.Lock()
	defer m.admUserMu.Unlock()
	if m.admUsers[user] {
		return user
	}
	if len(m.admUsers) < admissionUserCardinality {
		m.admUsers[user] = true
		return user
	}
	return "other"
}

// observeAdmitted records one admitted query and bumps its user's
// in-flight gauge.
func (m *lakeMetrics) observeAdmitted(user string) {
	if m == nil {
		return
	}
	u := m.admissionUser(user)
	m.admAdmitted.With(u).Inc()
	m.admInFlight.With(u).Add(1)
}

// observeAdmissionQueued records one query entering the wait queue.
func (m *lakeMetrics) observeAdmissionQueued(user string) {
	if m == nil {
		return
	}
	m.admQueued.With(m.admissionUser(user)).Inc()
}

// observeAdmissionShed records one load-shedding rejection.
func (m *lakeMetrics) observeAdmissionShed(user string) {
	if m == nil {
		return
	}
	m.admShed.With(m.admissionUser(user)).Inc()
}

// observeAdmissionReleased decrements the user's in-flight gauge when
// an admitted query finishes.
func (m *lakeMetrics) observeAdmissionReleased(user string) {
	if m == nil {
		return
	}
	m.admInFlight.With(m.admissionUser(user)).Add(-1)
}

// observeAdmissionWait records the time one query spent queued.
func (m *lakeMetrics) observeAdmissionWait(d time.Duration) {
	if m == nil {
		return
	}
	m.admQueueWait.Observe(d.Seconds())
}

// observeMaintPass records one completed (or failed) maintenance pass.
func (m *lakeMetrics) observeMaintPass(mode string, d time.Duration, datasets int, failed bool) {
	if m == nil {
		return
	}
	if failed {
		m.maintFailures.Inc()
		return
	}
	m.maintPasses.With(mode).Inc()
	m.maintDuration.Observe(d.Seconds())
	m.maintDatasets.Add(float64(datasets))
}

// observeWALAppend records one WAL append.
func (m *lakeMetrics) observeWALAppend(bytes int, d time.Duration) {
	if m == nil {
		return
	}
	m.walAppends.Inc()
	m.walAppendBytes.Add(float64(bytes))
	m.walAppendDur.Observe(d.Seconds())
}

// observeWALRetry records one retried WAL append.
func (m *lakeMetrics) observeWALRetry() {
	if m == nil {
		return
	}
	m.walRetries.Inc()
}

// observeWALDropped records one record dropped after retries ran out.
func (m *lakeMetrics) observeWALDropped() {
	if m == nil {
		return
	}
	m.walDropped.Inc()
}

// observeCheckpoint records one snapshot checkpoint.
func (m *lakeMetrics) observeCheckpoint(d time.Duration) {
	if m == nil {
		return
	}
	m.checkpoints.Inc()
	m.checkpointDur.Observe(d.Seconds())
}

// observeReplay records the crash-recovery stats of the last open.
func (m *lakeMetrics) observeReplay(snapshotDatasets, walRecords, walSkipped int, tornBytes int64) {
	if m == nil {
		return
	}
	m.replaySnapshot.Set(float64(snapshotDatasets))
	m.replayWALRecs.Set(float64(walRecords))
	m.replayWALSkip.Set(float64(walSkipped))
	m.replayTornBytes.Set(float64(tornBytes))
}

// observeRetry records one scheduler backoff event.
func (m *lakeMetrics) observeRetry() {
	if m == nil {
		return
	}
	m.maintRetries.Inc()
}

// remoteObserver adapts the lake's metrics to the remote.Observer
// contract; a nil receiver (metrics disabled) observes nothing, so the
// member clients stay wired unconditionally.
type remoteObserver struct{ m *lakeMetrics }

func (o remoteObserver) RemoteRequest(member, outcome string, d time.Duration) {
	if o.m == nil {
		return
	}
	o.m.remoteRequests.With(member, outcome).Inc()
	o.m.remoteDuration.With(member).Observe(d.Seconds())
}

func (o remoteObserver) RemoteRows(member string, n int64) {
	if o.m == nil {
		return
	}
	o.m.remoteRows.With(member).Add(float64(n))
}

func (o remoteObserver) RemoteRetry(member string) {
	if o.m == nil {
		return
	}
	o.m.remoteRetries.With(member).Inc()
}

// Metrics exposes the lake's metric registry, or nil when metrics are
// disabled (WithMetrics(false)).
func (l *Lake) Metrics() *obs.Registry {
	if l.metrics == nil {
		return nil
	}
	return l.metrics.reg
}
