package core

import (
	"errors"
	"testing"
	"time"

	"golake/internal/discovery"
	"golake/internal/table"
	"golake/internal/workload"
)

func testLake(t *testing.T) *Lake {
	t.Helper()
	t0 := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	n := 0
	l, err := Open(t.TempDir(), func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	l.AddUser("carl", RoleCurator)
	l.AddUser("gov", RoleGovernance)
	return l
}

func ingestCorpus(t *testing.T, l *Lake) *workload.Corpus {
	t.Helper()
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 8, JoinGroups: 2, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 80, KeySample: 50, Seed: 31,
	})
	for _, tbl := range c.Tables {
		if _, err := l.Ingest("raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "generator", "dana"); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestIngestFullWorkflow(t *testing.T) {
	l := testLake(t)
	res, err := l.Ingest("raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana")
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.TableName != "orders" {
		t.Errorf("placement = %+v", res.Placement)
	}
	// GEMMS has the object.
	obj, err := l.GEMMS.Object("raw/orders.csv")
	if err != nil || obj.Attributes["total"] == "" {
		t.Errorf("GEMMS object = %+v, %v", obj, err)
	}
	// HANDLE has it in the raw zone.
	if got := l.Handle.DataInZone(ZoneRaw); len(got) != 1 {
		t.Errorf("raw zone = %v", got)
	}
	// Catalog entry with content group.
	e, err := l.Catalog.Entry("raw/orders.csv")
	if err != nil || e.Groups["content"]["rows"] != "2" {
		t.Errorf("catalog = %+v, %v", e, err)
	}
	// Provenance ingest event.
	if log := l.Tracker.AccessLog("raw/orders.csv"); len(log) != 1 {
		t.Errorf("provenance log = %+v", log)
	}
}

func TestMaintainAndExplore(t *testing.T) {
	l := testLake(t)
	c := ingestCorpus(t, l)
	// Exploring before maintenance fails.
	if _, err := l.RelatedTables("dana", c.Tables[0].Name, 3); !errors.Is(err, ErrNotMaintained) {
		t.Errorf("pre-maintenance explore = %v", err)
	}
	rep, err := l.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 8 {
		t.Errorf("maintained tables = %d", rep.Tables)
	}
	if len(rep.Categories) != 2 {
		t.Errorf("categories = %v", rep.Categories)
	}
	// Exploration finds ground-truth related tables.
	res, err := l.RelatedTables("dana", c.Tables[0].Name, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range res {
		if r.Via == "populate" && c.Joinable[workload.NewPair(c.Tables[0].Name, r.Table)] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("explore quality: %+v", res)
	}
	// Task search works too.
	if _, err := l.TaskSearch("dana", c.Tables[0].Name, discovery.TaskAugment, 3); err != nil {
		t.Errorf("TaskSearch: %v", err)
	}
	// Zones promoted.
	if got := l.Handle.DataInZone(ZoneCurated); len(got) != 8 {
		t.Errorf("curated zone = %d datasets", len(got))
	}
}

func TestAccessControl(t *testing.T) {
	l := testLake(t)
	ingestCorpus(t, l)
	if _, err := l.Maintain(); err != nil {
		t.Fatal(err)
	}
	// Unknown user cannot query.
	if _, err := l.QuerySQL("mallory", "SELECT * FROM file:raw/"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unknown user query = %v", err)
	}
	// Data scientist cannot audit.
	if _, err := l.Audit("dana", "raw/x"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("non-governance audit = %v", err)
	}
	// Governance can audit.
	if _, err := l.Audit("gov", "raw/x"); err != nil {
		t.Errorf("governance audit = %v", err)
	}
	// Only curators annotate.
	if err := l.Annotate("dana", "raw/x", "", "term"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("non-curator annotate = %v", err)
	}
}

func TestQuerySQLRecordsProvenance(t *testing.T) {
	l := testLake(t)
	if _, err := l.Ingest("raw/orders.csv", []byte("id,total\n1,10\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	res, err := l.QuerySQL("dana", "SELECT id FROM rel:orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("rows = %d", res.NumRows())
	}
	// "orders" is not a provenance entity (the path is), so the query
	// event lands only if entity known; ensure no panic and audit path
	// works end to end.
	log, err := l.Audit("gov", "raw/orders.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Error("no provenance for ingested dataset")
	}
}

func TestSwampCheck(t *testing.T) {
	l := testLake(t)
	if _, err := l.Ingest("raw/good.csv", []byte("a,b\n1,2\n"), "src", "dana"); err != nil {
		t.Fatal(err)
	}
	// A binary blob yields no schema: swamp candidate.
	if _, err := l.Ingest("raw/blob.bin", []byte{0xff, 0xfe, 0x01}, "src", "dana"); err != nil {
		t.Fatal(err)
	}
	rep := l.SwampCheck()
	if rep.Datasets != 2 || rep.WithMetadata != 1 {
		t.Errorf("swamp report = %+v", rep)
	}
	if rep.Healthy() {
		t.Error("lake with metadata-less blob should be unhealthy")
	}
	if len(rep.Swamp) != 1 || rep.Swamp[0] != "raw/blob.bin" {
		t.Errorf("swamp list = %v", rep.Swamp)
	}
}

func TestDeriveAndLineage(t *testing.T) {
	l := testLake(t)
	if _, err := l.Ingest("raw/orders.csv", []byte("id,total\n1,10\n2,30\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	derived, _ := table.ParseCSV("big_orders", "id,total\n2,30\n")
	if err := l.Derive("dana", "filter_big", []string{"raw/orders.csv"}, derived); err != nil {
		t.Fatal(err)
	}
	up, err := l.Lineage("big_orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || up[0] != "raw/orders.csv" {
		t.Errorf("lineage = %v", up)
	}
	if !l.Poly.Rel.Has("big_orders") {
		t.Error("derived table not stored")
	}
	// Unknown user cannot derive.
	if err := l.Derive("mallory", "x", nil, derived); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unknown derive = %v", err)
	}
}

func TestRegistryRunsEveryFunction(t *testing.T) {
	entries := Registry()
	if len(entries) != 11 {
		t.Fatalf("registry entries = %d, want 11 (the functions of Table 1)", len(entries))
	}
	tiers := map[Tier]int{}
	for _, e := range entries {
		tiers[e.Tier]++
		out, err := e.Run()
		if err != nil {
			t.Errorf("%s/%s failed: %v", e.Tier, e.Function, err)
		}
		if out == "" {
			t.Errorf("%s/%s returned empty summary", e.Tier, e.Function)
		}
		if len(e.Systems) == 0 || e.Package == "" {
			t.Errorf("%s/%s lacks classification data", e.Tier, e.Function)
		}
	}
	if tiers[TierIngestion] != 2 || tiers[TierMaintenance] != 7 || tiers[TierExploration] != 2 {
		t.Errorf("tier distribution = %v, want 2/7/2 as in Table 1", tiers)
	}
}

func TestIngestUnparseableStillStored(t *testing.T) {
	l := testLake(t)
	res, err := l.Ingest("raw/bad.csv", []byte("a,b\n1\n"), "src", "dana")
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Target != "file" {
		t.Errorf("placement = %+v", res.Placement)
	}
	if _, err := l.Poly.Files.Get("raw/bad.csv"); err != nil {
		t.Error("raw bytes lost")
	}
}
