package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/table"
	"golake/internal/workload"
	"golake/lakeerr"
)

func testLake(t *testing.T) *Lake {
	t.Helper()
	t0 := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	n := 0
	l, err := Open(t.TempDir(), WithClock(func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}))
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	l.AddUser("carl", RoleCurator)
	l.AddUser("gov", RoleGovernance)
	return l
}

func ingestCorpus(t *testing.T, l *Lake) *workload.Corpus {
	t.Helper()
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 8, JoinGroups: 2, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 80, KeySample: 50, Seed: 31,
	})
	for _, tbl := range c.Tables {
		if _, err := l.Ingest(context.Background(), "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "generator", "dana"); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestIngestFullWorkflow(t *testing.T) {
	l := testLake(t)
	res, err := l.Ingest(context.Background(), "raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana")
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.TableName != "orders" {
		t.Errorf("placement = %+v", res.Placement)
	}
	// GEMMS has the object.
	obj, err := l.GEMMS.Object("raw/orders.csv")
	if err != nil || obj.Attributes["total"] == "" {
		t.Errorf("GEMMS object = %+v, %v", obj, err)
	}
	// HANDLE has it in the raw zone.
	if got := l.Handle.DataInZone(ZoneRaw); len(got) != 1 {
		t.Errorf("raw zone = %v", got)
	}
	// Catalog entry with content group.
	e, err := l.Catalog.Entry("raw/orders.csv")
	if err != nil || e.Groups["content"]["rows"] != "2" {
		t.Errorf("catalog = %+v, %v", e, err)
	}
	// Provenance ingest event.
	if log := l.Tracker.AccessLog("raw/orders.csv"); len(log) != 1 {
		t.Errorf("provenance log = %+v", log)
	}
}

func TestMaintainAndExplore(t *testing.T) {
	l := testLake(t)
	c := ingestCorpus(t, l)
	// Exploring before maintenance fails.
	if _, err := l.RelatedTables(context.Background(), "dana", c.Tables[0].Name, 3); !errors.Is(err, ErrNotMaintained) {
		t.Errorf("pre-maintenance explore = %v", err)
	}
	rep, err := l.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 8 {
		t.Errorf("maintained tables = %d", rep.Tables)
	}
	if len(rep.Categories) != 2 {
		t.Errorf("categories = %v", rep.Categories)
	}
	// Exploration finds ground-truth related tables.
	res, err := l.RelatedTables(context.Background(), "dana", c.Tables[0].Name, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range res {
		if r.Via == "populate" && c.Joinable[workload.NewPair(c.Tables[0].Name, r.Table)] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("explore quality: %+v", res)
	}
	// Task search works too.
	if _, err := l.TaskSearch(context.Background(), "dana", c.Tables[0].Name, discovery.TaskAugment, 3); err != nil {
		t.Errorf("TaskSearch: %v", err)
	}
	// Zones promoted.
	if got := l.Handle.DataInZone(ZoneCurated); len(got) != 8 {
		t.Errorf("curated zone = %d datasets", len(got))
	}
}

func TestAccessControl(t *testing.T) {
	l := testLake(t)
	ingestCorpus(t, l)
	if _, err := l.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Unknown user cannot query.
	if _, err := l.QuerySQL(context.Background(), "mallory", "SELECT * FROM file:raw/"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unknown user query = %v", err)
	}
	// Data scientist cannot audit.
	if _, err := l.Audit(context.Background(), "dana", "raw/x"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("non-governance audit = %v", err)
	}
	// Governance can audit.
	if _, err := l.Audit(context.Background(), "gov", "raw/x"); err != nil {
		t.Errorf("governance audit = %v", err)
	}
	// Only curators annotate.
	if err := l.Annotate(context.Background(), "dana", "raw/x", "", "term"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("non-curator annotate = %v", err)
	}
}

func TestQuerySQLRecordsProvenance(t *testing.T) {
	l := testLake(t)
	if _, err := l.Ingest(context.Background(), "raw/orders.csv", []byte("id,total\n1,10\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	res, err := l.QuerySQL(context.Background(), "dana", "SELECT id FROM rel:orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("rows = %d", res.NumRows())
	}
	// "orders" is not a provenance entity (the path is), so the query
	// event lands only if entity known; ensure no panic and audit path
	// works end to end.
	log, err := l.Audit(context.Background(), "gov", "raw/orders.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Error("no provenance for ingested dataset")
	}
}

func TestSwampCheck(t *testing.T) {
	l := testLake(t)
	if _, err := l.Ingest(context.Background(), "raw/good.csv", []byte("a,b\n1,2\n"), "src", "dana"); err != nil {
		t.Fatal(err)
	}
	// A binary blob yields no schema: swamp candidate.
	if _, err := l.Ingest(context.Background(), "raw/blob.bin", []byte{0xff, 0xfe, 0x01}, "src", "dana"); err != nil {
		t.Fatal(err)
	}
	rep := l.SwampCheck()
	if rep.Datasets != 2 || rep.WithMetadata != 1 {
		t.Errorf("swamp report = %+v", rep)
	}
	if rep.Healthy() {
		t.Error("lake with metadata-less blob should be unhealthy")
	}
	if len(rep.Swamp) != 1 || rep.Swamp[0] != "raw/blob.bin" {
		t.Errorf("swamp list = %v", rep.Swamp)
	}
}

func TestDeriveAndLineage(t *testing.T) {
	l := testLake(t)
	if _, err := l.Ingest(context.Background(), "raw/orders.csv", []byte("id,total\n1,10\n2,30\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	derived, _ := table.ParseCSV("big_orders", "id,total\n2,30\n")
	if err := l.Derive(context.Background(), "dana", "filter_big", []string{"raw/orders.csv"}, derived); err != nil {
		t.Fatal(err)
	}
	up, err := l.Lineage(context.Background(), "big_orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || up[0] != "raw/orders.csv" {
		t.Errorf("lineage = %v", up)
	}
	if !l.Poly.Rel.Has("big_orders") {
		t.Error("derived table not stored")
	}
	// Unknown user cannot derive.
	if err := l.Derive(context.Background(), "mallory", "x", nil, derived); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unknown derive = %v", err)
	}
}

func TestRegistryRunsEveryFunction(t *testing.T) {
	entries := Registry()
	if len(entries) != 11 {
		t.Fatalf("registry entries = %d, want 11 (the functions of Table 1)", len(entries))
	}
	tiers := map[Tier]int{}
	for _, e := range entries {
		tiers[e.Tier]++
		out, err := e.Run()
		if err != nil {
			t.Errorf("%s/%s failed: %v", e.Tier, e.Function, err)
		}
		if out == "" {
			t.Errorf("%s/%s returned empty summary", e.Tier, e.Function)
		}
		if len(e.Systems) == 0 || e.Package == "" {
			t.Errorf("%s/%s lacks classification data", e.Tier, e.Function)
		}
	}
	if tiers[TierIngestion] != 2 || tiers[TierMaintenance] != 7 || tiers[TierExploration] != 2 {
		t.Errorf("tier distribution = %v, want 2/7/2 as in Table 1", tiers)
	}
}

func TestIngestUnparseableStillStored(t *testing.T) {
	l := testLake(t)
	res, err := l.Ingest(context.Background(), "raw/bad.csv", []byte("a,b\n1\n"), "src", "dana")
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Target != "file" {
		t.Errorf("placement = %+v", res.Placement)
	}
	if _, err := l.Poly.Files.Get("raw/bad.csv"); err != nil {
		t.Error("raw bytes lost")
	}
}

// trippingCtx reports cancellation only after trip Err() calls,
// deterministically simulating a context canceled mid-operation.
type trippingCtx struct {
	context.Context
	calls int
	trip  int
}

func (c *trippingCtx) Err() error {
	c.calls++
	if c.calls > c.trip {
		return context.Canceled
	}
	return nil
}

func TestMaintainCanceledMidFlight(t *testing.T) {
	l := testLake(t)
	ingestCorpus(t, l)
	ctx := &trippingCtx{Context: context.Background(), trip: 3}
	if _, err := l.Maintain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight Maintain = %v, want canceled", err)
	}
	// The pass never completed, so the lake still refuses exploration.
	if !l.Stale() {
		t.Error("aborted Maintain should leave the lake stale")
	}
	if _, err := l.Explore(context.Background(), "dana", explore.Request{}); !errors.Is(err, ErrNotMaintained) {
		t.Errorf("explore after aborted Maintain = %v", err)
	}
}

func TestQuerySQLCanceledMidFlight(t *testing.T) {
	l := testLake(t)
	if _, err := l.Ingest(context.Background(), "raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	// Cancel during the merge loop, after the role check passed.
	ctx := &trippingCtx{Context: context.Background(), trip: 1}
	_, err := l.QuerySQL(ctx, "dana", "SELECT id FROM rel:orders")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight QuerySQL = %v, want canceled", err)
	}
	if !lakeerr.IsUnavailable(err) {
		t.Errorf("canceled query code = %v", lakeerr.CodeOf(err))
	}
	// A pre-canceled context also aborts.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.QuerySQL(pre, "dana", "SELECT id FROM rel:orders"); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled QuerySQL = %v", err)
	}
	if _, err := l.Maintain(pre); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled Maintain = %v", err)
	}
}

func TestIngestBatch(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	res, err := l.IngestBatch(ctx, "dana", []IngestItem{
		{Path: "raw/a.csv", Data: []byte("x,y\n1,2\n"), Source: "s"},
		{Path: "raw/b.csv", Data: []byte("x,z\n1,3\n"), Source: "s"},
	})
	if err != nil || len(res) != 2 {
		t.Fatalf("batch = %d results, %v", len(res), err)
	}
	// A duplicate mid-batch stops at the conflict, keeping the prefix.
	res, err = l.IngestBatch(ctx, "dana", []IngestItem{
		{Path: "raw/c.csv", Data: []byte("x\n1\n"), Source: "s"},
		{Path: "raw/a.csv", Data: []byte("x\n1\n"), Source: "s"},
		{Path: "raw/d.csv", Data: []byte("x\n1\n"), Source: "s"},
	})
	if !lakeerr.IsConflict(err) || !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate batch err = %v", err)
	}
	if len(res) != 1 || res[0].Placement.Path != "raw/c.csv" {
		t.Errorf("batch prefix = %+v", res)
	}
	// A canceled context ingests nothing.
	pre, cancel := context.WithCancel(ctx)
	cancel()
	res, err = l.IngestBatch(pre, "dana", []IngestItem{{Path: "raw/e.csv", Data: []byte("x\n1\n")}})
	if len(res) != 0 || !lakeerr.IsUnavailable(err) {
		t.Errorf("canceled batch = %d results, %v", len(res), err)
	}
}

func TestMaintainGenerations(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	if !l.Stale() {
		t.Error("fresh lake should be stale (never maintained)")
	}
	if _, err := l.Ingest(ctx, "raw/a.csv", []byte("x,y\n1,2\n"), "s", "dana"); err != nil {
		t.Fatal(err)
	}
	rep, err := l.Maintain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale || l.Stale() {
		t.Errorf("maintained lake reports stale (rep=%v lake=%v)", rep.Stale, l.Stale())
	}
	if rep.Generation != 1 {
		t.Errorf("generation = %d", rep.Generation)
	}
	// New ingest marks the lake stale again until the next pass.
	if _, err := l.Ingest(ctx, "raw/b.csv", []byte("x,z\n1,3\n"), "s", "dana"); err != nil {
		t.Fatal(err)
	}
	if !l.Stale() {
		t.Error("ingest after Maintain should mark the lake stale")
	}
	if rep, err = l.Maintain(ctx); err != nil || rep.Stale {
		t.Errorf("second pass = %+v, %v", rep, err)
	}
}

func TestMaintainSafeUnderConcurrentIngest(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	ingestCorpus(t, l)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if _, err := l.Ingest(ctx, fmt.Sprintf("raw/conc%d.csv", i), []byte("x,y\n1,2\n"), "s", "dana"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	// Concurrent passes serialize; racing ingests either land in the
	// snapshot or flip the staleness flag — never vanish.
	for i := 0; i < 3; i++ {
		if _, err := l.Maintain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rep, err := l.Maintain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale || l.Stale() {
		t.Error("final pass after ingests quiesced should not be stale")
	}
	if rep.Tables != 28 {
		t.Errorf("final pass tables = %d, want 28", rep.Tables)
	}
}

func TestOpenOptions(t *testing.T) {
	ctx := context.Background()
	l, err := Open(t.TempDir(), WithMaxResults(2), WithPushdown(false))
	if err != nil {
		t.Fatal(err)
	}
	if l.Engine.PushDown {
		t.Error("WithPushdown(false) ignored")
	}
	l.AddUser("dana", RoleDataScientist)
	if _, err := l.Ingest(ctx, "raw/nums.csv", []byte("n\n1\n2\n3\n4\n5\n"), "s", "dana"); err != nil {
		t.Fatal(err)
	}
	res, err := l.QuerySQL(ctx, "dana", "SELECT n FROM rel:nums")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("WithMaxResults rows = %d, want 2", res.NumRows())
	}
}

func TestTypedErrorTaxonomy(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
		want lakeerr.Code
	}{
		{"unknown user", errOf(l.QuerySQL(ctx, "mallory", "SELECT * FROM rel:orders")), lakeerr.CodeUnauthorized},
		{"non-governance audit", errOf(l.Audit(ctx, "dana", "raw/orders.csv")), lakeerr.CodeUnauthorized},
		{"explore unmaintained", errOf(l.RelatedTables(ctx, "dana", "orders", 2)), lakeerr.CodeUnavailable},
		{"missing metadata", errOf(l.Metadata(ctx, "ghost")), lakeerr.CodeNotFound},
		{"missing lineage", errOf(l.Lineage(ctx, "ghost")), lakeerr.CodeNotFound},
		{"bad sql", errOf(l.QuerySQL(ctx, "dana", "SELEKT x")), lakeerr.CodeInvalidQuery},
		{"unknown source", errOf(l.QuerySQL(ctx, "dana", "SELECT * FROM rel:ghost")), lakeerr.CodeNotFound},
		{"duplicate ingest", errOf(l.Ingest(ctx, "raw/orders.csv", []byte("x\n1\n"), "s", "dana")), lakeerr.CodeConflict},
	}
	for _, tc := range cases {
		if got := lakeerr.CodeOf(tc.err); got != tc.want {
			t.Errorf("%s: code = %q (%v), want %q", tc.name, got, tc.err, tc.want)
		}
	}
}

// errOf discards a value, keeping the error — for table-driven code
// checks over methods with different result types.
func errOf[T any](_ T, err error) error { return err }

func TestExploreDuringMaintainNoRace(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	c := ingestCorpus(t, l)
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	// Explore continuously while maintenance passes rebuild the index:
	// the swap-on-completion design must keep readers on a consistent
	// index (run with -race to catch regressions).
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
				if _, err := l.RelatedTables(ctx, "dana", c.Tables[0].Name, 2); err != nil {
					done <- err
					return
				}
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := l.Maintain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("explore during maintain: %v", err)
	}
}

func TestIngestBasenameCollisionConflict(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	// A different path mapping onto the same model-store name must not
	// silently clobber the first table.
	_, err := l.Ingest(ctx, "backup/orders.csv", []byte("id,total\n9,99\n"), "erp", "dana")
	if !lakeerr.IsConflict(err) {
		t.Fatalf("basename collision = %v, want conflict", err)
	}
	res, err := l.QuerySQL(ctx, "dana", "SELECT id FROM rel:orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)[0] != "1" {
		t.Errorf("original table clobbered: %v", res.Row(0))
	}
}

func TestIngestCannotClobberDerivedTable(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,30\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	derived, _ := table.ParseCSV("big_orders", "id,total\n2,30\n")
	if err := l.Derive(ctx, "dana", "filter_big", []string{"raw/orders.csv"}, derived); err != nil {
		t.Fatal(err)
	}
	// Ingesting a path whose derived name matches the derived table
	// must conflict, not overwrite it.
	_, err := l.Ingest(ctx, "raw/big_orders.csv", []byte("id\n7\n"), "erp", "dana")
	if !lakeerr.IsConflict(err) {
		t.Fatalf("ingest over derived table = %v, want conflict", err)
	}
	res, err := l.QuerySQL(ctx, "dana", "SELECT total FROM rel:big_orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)[0] != "30" {
		t.Errorf("derived table clobbered: %+v", res.Row(0))
	}
}

func TestDeriveRespectsNameIndexAndStaleness(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/clicks.jsonl", []byte("{\"u\":\"a\"}\n"), "s", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	// Deriving onto a name held by a document collection is a conflict.
	clash, _ := table.ParseCSV("clicks", "x\n1\n")
	if err := l.Derive(ctx, "dana", "act", nil, clash); !lakeerr.IsConflict(err) {
		t.Fatalf("derive onto collection name = %v, want conflict", err)
	}
	// A fresh derivation marks the lake stale until the next pass.
	fresh, _ := table.ParseCSV("derived_ok", "x\n1\n")
	if err := l.Derive(ctx, "dana", "act", nil, fresh); err != nil {
		t.Fatal(err)
	}
	if !l.Stale() {
		t.Error("derive should mark the lake stale (new table is unindexed)")
	}
	if rep, err := l.Maintain(ctx); err != nil || rep.Stale || l.Stale() {
		t.Errorf("post-derive Maintain = %+v, %v, stale=%v", rep, err, l.Stale())
	}
}

func TestMaintainIncrementalReindexesOnlyNewDataset(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	c := ingestCorpus(t, l)
	// First pass has no coverage: full rebuild over the whole corpus.
	rep, err := l.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "full" || rep.Reason != "first-pass" || rep.DatasetsReindexed != len(c.Tables) {
		t.Fatalf("first pass = %q/%q datasets=%d, want full/first-pass/%d",
			rep.Mode, rep.Reason, rep.DatasetsReindexed, len(c.Tables))
	}
	// One new dataset into a maintained lake of N: the incremental pass
	// must reindex exactly that one dataset, not the whole lake.
	extra := table.ToCSV(c.Tables[0])
	if _, err := l.Ingest(ctx, "raw/extra.csv", []byte(extra), "generator", "dana"); err != nil {
		t.Fatal(err)
	}
	rep, err = l.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "incremental" || rep.DatasetsReindexed != 1 {
		t.Fatalf("incremental pass = %q datasets=%d, want incremental/1", rep.Mode, rep.DatasetsReindexed)
	}
	if rep.Tables != len(c.Tables)+1 {
		t.Errorf("corpus size = %d, want %d", rep.Tables, len(c.Tables)+1)
	}
	if l.Stale() {
		t.Error("lake stale after incremental pass")
	}
	// The incrementally indexed dataset is fully explorable: it shares
	// its content with c.Tables[0], so its partners must surface.
	res, err := l.RelatedTables(ctx, "dana", "extra", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no discovery results for incrementally indexed dataset")
	}
	// Steady state: nothing new, the pass is an O(1) no-op.
	rep, err = l.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "incremental" || rep.DatasetsReindexed != 0 {
		t.Errorf("steady-state pass = %q datasets=%d, want incremental/0", rep.Mode, rep.DatasetsReindexed)
	}
}

func TestMaintainIncrementalFullRebuildAfterDerive(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	c := ingestCorpus(t, l)
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	out := table.New("derived_pick")
	src, err := l.Poly.Rel.Table(c.Tables[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	out.Columns = src.Columns[:1]
	if err := l.Derive(ctx, "dana", "select", []string{c.Tables[0].Name}, out); err != nil {
		t.Fatal(err)
	}
	rep, err := l.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "full" || rep.Reason != "derive" {
		t.Errorf("post-derive pass = %q/%q, want full/derive", rep.Mode, rep.Reason)
	}
	if rep.DatasetsReindexed != len(c.Tables)+1 {
		t.Errorf("datasets = %d, want %d", rep.DatasetsReindexed, len(c.Tables)+1)
	}
}

func TestMaintainIsAlwaysFull(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	c := ingestCorpus(t, l)
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/extra.csv", []byte(table.ToCSV(c.Tables[0])), "generator", "dana"); err != nil {
		t.Fatal(err)
	}
	rep, err := l.Maintain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "full" || rep.Reason != "requested" || rep.DatasetsReindexed != len(c.Tables)+1 {
		t.Errorf("explicit Maintain = %q/%q datasets=%d, want a requested full rebuild",
			rep.Mode, rep.Reason, rep.DatasetsReindexed)
	}
}

func TestMaintenanceStatusCounters(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	st := l.MaintenanceStatus()
	if st.Auto || !st.Stale || st.PassesRun != 0 || st.LastPass != nil {
		t.Fatalf("fresh status = %+v", st)
	}
	c := ingestCorpus(t, l)
	if _, err := l.MaintainIncremental(ctx); err != nil {
		t.Fatal(err)
	}
	st = l.MaintenanceStatus()
	if st.PassesRun != 1 || st.Stale || st.LastPass == nil || st.Covered != len(c.Tables) {
		t.Fatalf("post-pass status = %+v", st)
	}
	if st.LastPass.Mode != "full" || st.LastPassTime == nil {
		t.Errorf("last pass = %+v time=%v", st.LastPass, st.LastPassTime)
	}
	// A failed pass increments Failures and records the error.
	pre, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := l.MaintainIncremental(pre); err == nil {
		t.Fatal("canceled pass should fail")
	}
	st = l.MaintenanceStatus()
	if st.Failures != 1 || st.LastError == "" {
		t.Errorf("post-failure status = %+v", st)
	}
	// The next successful pass clears the error but keeps the count.
	if _, err := l.MaintainIncremental(ctx); err != nil {
		t.Fatal(err)
	}
	st = l.MaintenanceStatus()
	if st.Failures != 1 || st.LastError != "" || st.PassesRun != 2 {
		t.Errorf("recovered status = %+v", st)
	}
}

func TestTriggerMaintainConflictsWhileRunning(t *testing.T) {
	l := testLake(t)
	ingestCorpus(t, l)
	// Simulate an in-flight pass by holding the pass lock.
	l.maintMu.Lock()
	_, err := l.TriggerMaintain(context.Background())
	l.maintMu.Unlock()
	if !lakeerr.IsConflict(err) {
		t.Fatalf("trigger during pass = %v, want conflict", err)
	}
	// With the lock free it runs normally.
	rep, err := l.TriggerMaintain(context.Background())
	if err != nil || rep.Mode != "full" {
		t.Errorf("trigger = %+v, %v", rep, err)
	}
}

func TestSwampAuditHonorsContext(t *testing.T) {
	l := testLake(t)
	ingestCorpus(t, l)
	rep, err := l.SwampAudit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if legacy := l.SwampCheck(); rep.Datasets != legacy.Datasets || rep.WithMetadata != legacy.WithMetadata {
		t.Errorf("SwampAudit %+v != SwampCheck %+v", rep, legacy)
	}
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.SwampAudit(pre); !lakeerr.IsUnavailable(err) {
		t.Errorf("canceled SwampAudit = %v", err)
	}
}

// TestAutoMaintainMakesIngestExplorable is the subsystem's reason to
// exist: with WithAutoMaintain, ingested data becomes explorable with
// no manual Maintain call.
func TestAutoMaintainMakesIngestExplorable(t *testing.T) {
	l, err := Open(t.TempDir(), WithAutoMaintain(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if st := l.MaintenanceStatus(); !st.Auto {
		t.Fatal("status does not report auto-maintenance")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := l.RelatedTables(ctx, "dana", "orders", 2); err == nil {
			break
		} else if !errors.Is(err, ErrNotMaintained) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("ingest never became explorable under auto-maintenance")
		}
		time.Sleep(time.Millisecond)
	}
	// A second ingest is picked up incrementally by the scheduler:
	// staleness clears without any manual pass, and the new dataset is
	// discoverable as a corpus member (not just as a query).
	if _, err := l.Ingest(ctx, "raw/payments.csv", []byte("id,amount\n1,5\n2,6\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	for l.Stale() {
		if time.Now().After(deadline) {
			t.Fatal("second ingest never covered by the scheduler")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := l.RelatedTables(ctx, "dana", "orders", 2)
	if err != nil {
		t.Fatal(err)
	}
	foundPayments := false
	for _, r := range res {
		if r.Table == "payments" {
			foundPayments = true
		}
	}
	if !foundPayments {
		t.Errorf("incrementally indexed payments not discoverable from orders: %+v", res)
	}
	st := l.MaintenanceStatus()
	if st.PassesRun < 2 || st.NextRun == nil {
		t.Errorf("scheduler status = %+v", st)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	auto, err := Open(t.TempDir(), WithAutoMaintain(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := auto.Close(); err != nil {
		t.Fatal(err)
	}
	if err := auto.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTriggerConflictKicksScheduler: a POST that conflicts with a
// running pass must kick the scheduler so the racing data is covered
// right after the pass drains — not a full interval (here: an hour)
// later.
func TestTriggerConflictKicksScheduler(t *testing.T) {
	l, err := Open(t.TempDir(), WithAutoMaintain(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	// Simulate an in-flight pass, conflict against it, then release.
	l.maintMu.Lock()
	if _, err := l.TriggerMaintain(ctx); !lakeerr.IsConflict(err) {
		l.maintMu.Unlock()
		t.Fatalf("trigger during pass = %v, want conflict", err)
	}
	l.maintMu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for l.Stale() {
		if time.Now().After(deadline) {
			t.Fatal("kicked scheduler never covered the lake (would have waited an hour)")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMaintenanceStatusAfterClose(t *testing.T) {
	l, err := Open(t.TempDir(), WithAutoMaintain(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st := l.MaintenanceStatus(); !st.Auto {
		t.Fatal("open lake should report auto-maintenance")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed scheduler never fires again: the snapshot must not
	// advertise it.
	st := l.MaintenanceStatus()
	if st.Auto || st.NextRun != nil {
		t.Errorf("post-Close status = %+v, want manual mode with no next run", st)
	}
}

// TestIncrementalPassPromotesZones: zone promotion in an incremental
// pass covers just-ingested datasets — including non-relational ones
// that add no table to the discovery corpus — without rescanning the
// lake.
func TestIncrementalPassPromotesZones(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	c := ingestCorpus(t, l)
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	curated := len(l.Handle.DataInZone(ZoneCurated))
	if curated != len(c.Tables) {
		t.Fatalf("curated after full pass = %d", curated)
	}
	if _, err := l.Ingest(ctx, "raw/extra.csv", []byte(table.ToCSV(c.Tables[0])), "generator", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/events.jsonl", []byte("{\"user\":\"a\",\"n\":1}\n{\"user\":\"b\",\"n\":2}\n"), "generator", "dana"); err != nil {
		t.Fatal(err)
	}
	rep, err := l.MaintainIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Only the CSV joined the discovery corpus, but both datasets moved
	// to the curated zone.
	if rep.Mode != "incremental" || rep.DatasetsReindexed != 1 {
		t.Fatalf("pass = %q datasets=%d", rep.Mode, rep.DatasetsReindexed)
	}
	if got := len(l.Handle.DataInZone(ZoneCurated)); got != curated+2 {
		t.Errorf("curated after incremental pass = %d, want %d", got, curated+2)
	}
}
