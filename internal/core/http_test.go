package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func apiLake(t *testing.T) *httptest.Server {
	t.Helper()
	l := testLake(t)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/payments.csv", []byte("id,amount\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	return srv
}

func do(t *testing.T, srv *httptest.Server, method, path, user, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.Header.Set("X-Lake-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, srv *httptest.Server, path, user string) (*http.Response, []byte) {
	t.Helper()
	return do(t, srv, http.MethodGet, path, user, "")
}

// envelope decodes the v1 error wire shape.
func envelope(t *testing.T, body []byte) (code, message string) {
	t.Helper()
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error envelope = %s (%v)", body, err)
	}
	return e.Error.Code, e.Error.Message
}

// pageOf decodes the v1 paginated list envelope with raw items.
type pageOf struct {
	Items  []json.RawMessage `json:"items"`
	Total  int               `json:"total"`
	Limit  int               `json:"limit"`
	Offset int               `json:"offset"`
}

func TestV1DatasetsPagination(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/v1/datasets", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var pg pageOf
	if err := json.Unmarshal(body, &pg); err != nil {
		t.Fatal(err)
	}
	if pg.Total != 2 || len(pg.Items) != 2 || pg.Limit != defaultPageLimit || pg.Offset != 0 {
		t.Errorf("page = total %d items %d limit %d offset %d", pg.Total, len(pg.Items), pg.Limit, pg.Offset)
	}
	// limit/offset window.
	_, body = get(t, srv, "/v1/datasets?limit=1&offset=1", "dana")
	if err := json.Unmarshal(body, &pg); err != nil {
		t.Fatal(err)
	}
	if pg.Total != 2 || len(pg.Items) != 1 || pg.Offset != 1 {
		t.Errorf("windowed page = %+v", pg)
	}
	// Offset past the end yields an empty (not null) items array.
	_, body = get(t, srv, "/v1/datasets?offset=99", "dana")
	if !strings.Contains(string(body), `"items":[]`) {
		t.Errorf("past-end page should encode items as []: %s", body)
	}
}

func TestV1PaginationBounds(t *testing.T) {
	srv := apiLake(t)
	for _, path := range []string{
		"/v1/datasets?limit=-1",
		"/v1/datasets?limit=x",
		"/v1/datasets?offset=-2",
		"/v1/lineage?entity=raw/orders.csv&limit=nope",
		"/v1/audit?entity=raw/orders.csv&offset=-1",
	} {
		resp, body := get(t, srv, path, "gov")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if code, _ := envelope(t, body); code != "invalid_query" {
			t.Errorf("%s code = %q", path, code)
		}
	}
	// A huge limit clamps instead of failing.
	resp, _ := get(t, srv, "/v1/datasets?limit=999999", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("clamped limit status = %d", resp.StatusCode)
	}
	// An explicit limit=0 is honored: empty page, real total.
	resp, body := get(t, srv, "/v1/datasets?limit=0", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit=0 status = %d", resp.StatusCode)
	}
	var pg pageOf
	if err := json.Unmarshal(body, &pg); err != nil || len(pg.Items) != 0 || pg.Total != 2 {
		t.Errorf("limit=0 page = %s (%v)", body, err)
	}
}

func TestV1Ingestion(t *testing.T) {
	srv := apiLake(t)
	resp, body := do(t, srv, http.MethodPost, "/v1/datasets", "dana",
		`{"path":"raw/refunds.csv","source":"erp","content":"id,amt\n1,5\n"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status = %d: %s", resp.StatusCode, body)
	}
	var created map[string]any
	if err := json.Unmarshal(body, &created); err != nil || created["store"] != "relational" {
		t.Errorf("created = %s (%v)", body, err)
	}
	// Re-ingesting the same path is a conflict.
	resp, body = do(t, srv, http.MethodPost, "/v1/datasets", "dana",
		`{"path":"raw/refunds.csv","source":"erp","content":"id,amt\n1,5\n"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("conflict status = %d", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "conflict" {
		t.Errorf("conflict code = %q", code)
	}
	// Unknown users cannot ingest.
	resp, body = do(t, srv, http.MethodPost, "/v1/datasets", "mallory",
		`{"path":"raw/x.csv","content":"a\n1\n"}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("unknown ingest status = %d", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "unauthorized" {
		t.Errorf("unknown ingest code = %q", code)
	}
	// Bad body.
	resp, _ = do(t, srv, http.MethodPost, "/v1/datasets", "dana", `{"content":"no path"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", resp.StatusCode)
	}
	// The new dataset is queryable after maintenance... but even before,
	// it shows in the catalog listing.
	_, body = get(t, srv, "/v1/datasets?limit=10", "dana")
	if !strings.Contains(string(body), "raw/refunds.csv") {
		t.Errorf("ingested dataset missing from listing: %s", body)
	}
}

func TestV1Metadata(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/v1/metadata?id=raw/orders.csv", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metadata status = %d", resp.StatusCode)
	}
	var md map[string]any
	if err := json.Unmarshal(body, &md); err != nil {
		t.Fatal(err)
	}
	attrs, _ := md["attributes"].(map[string]any)
	if attrs["total"] != "int" {
		t.Errorf("attributes = %v", attrs)
	}
	resp, body = get(t, srv, "/v1/metadata?id=ghost", "dana")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing metadata status = %d", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "not_found" {
		t.Errorf("missing metadata code = %q", code)
	}
}

func TestV1ExploreAllModes(t *testing.T) {
	srv := apiLake(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"join-column", `{"mode":"join-column","table":"orders","column":"id","k":3}`},
		{"populate", `{"mode":"populate","table":"orders","k":3}`},
		{"task", `{"mode":"task","table":"orders","task":"augment","k":3}`},
	} {
		resp, body := do(t, srv, http.MethodPost, "/v1/explore", "dana", tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d: %s", tc.name, resp.StatusCode, body)
		}
		var res []map[string]any
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		found := false
		for _, r := range res {
			if r["Table"] == "payments" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: payments not found: %s", tc.name, body)
		}
	}
}

func TestV1ExploreValidation(t *testing.T) {
	srv := apiLake(t)
	cases := []struct {
		body   string
		user   string
		status int
		code   string
	}{
		{`{"mode":"warp","table":"orders"}`, "dana", http.StatusBadRequest, "invalid_query"},
		{`{"mode":"join-column","table":"orders"}`, "dana", http.StatusBadRequest, "invalid_query"},
		{`{"mode":"task","table":"orders","task":"destroy"}`, "dana", http.StatusBadRequest, "invalid_query"},
		{`not json`, "dana", http.StatusBadRequest, "invalid_query"},
		{`{"mode":"populate","table":"ghost"}`, "dana", http.StatusNotFound, "not_found"},
		{`{"mode":"populate","table":"orders"}`, "mallory", http.StatusForbidden, "unauthorized"},
		// Auth runs before the table lookup: an unregistered user must
		// not learn whether a table exists from the 403/404 difference.
		{`{"mode":"populate","table":"ghost"}`, "mallory", http.StatusForbidden, "unauthorized"},
	}
	for _, tc := range cases {
		resp, body := do(t, srv, http.MethodPost, "/v1/explore", tc.user, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("explore %s as %s: status = %d, want %d", tc.body, tc.user, resp.StatusCode, tc.status)
			continue
		}
		if code, _ := envelope(t, body); code != tc.code {
			t.Errorf("explore %s: code = %q, want %q", tc.body, code, tc.code)
		}
	}
}

func TestV1QueryAndTypedErrors(t *testing.T) {
	srv := apiLake(t)
	resp, body := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT id FROM rel:orders WHERE total > 15"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	var qr struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0] != "2" {
		t.Errorf("query result = %+v", qr)
	}
	// The typed-error contract, one scenario per taxonomy code.
	cases := []struct {
		name, body, user string
		status           int
		code             string
	}{
		{"syntax", `{"sql":"SELEKT id FROM rel:orders"}`, "dana", http.StatusBadRequest, "invalid_query"},
		{"empty body", `not json`, "dana", http.StatusBadRequest, "invalid_query"},
		{"unknown source", `{"sql":"SELECT * FROM rel:ghost"}`, "dana", http.StatusNotFound, "not_found"},
		{"unknown prefix", `{"sql":"SELECT * FROM bad:orders"}`, "dana", http.StatusNotFound, "not_found"},
		{"unknown user", `{"sql":"SELECT * FROM rel:orders"}`, "mallory", http.StatusForbidden, "unauthorized"},
	}
	for _, tc := range cases {
		resp, body := do(t, srv, http.MethodPost, "/v1/query", tc.user, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		code, msg := envelope(t, body)
		if code != tc.code || msg == "" {
			t.Errorf("%s: envelope = %q %q, want code %q", tc.name, code, msg, tc.code)
		}
	}
}

func TestV1LineageAndAudit(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/v1/lineage?entity=raw/orders.csv", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lineage status = %d", resp.StatusCode)
	}
	var pg pageOf
	if err := json.Unmarshal(body, &pg); err != nil || pg.Total != 0 || pg.Items == nil {
		t.Errorf("lineage = %s (%v)", body, err)
	}
	resp, body = get(t, srv, "/v1/lineage?entity=ghost", "dana")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing lineage status = %d", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "not_found" {
		t.Errorf("missing lineage code = %q", code)
	}
	// Audit: role-gated, paginated.
	resp, body = get(t, srv, "/v1/audit?entity=raw/orders.csv", "dana")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("non-governance audit status = %d", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "unauthorized" {
		t.Errorf("non-governance audit code = %q", code)
	}
	resp, body = get(t, srv, "/v1/audit?entity=raw/orders.csv&limit=1", "gov")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("governance audit status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pg); err != nil || pg.Total < 1 || len(pg.Items) != 1 {
		t.Errorf("audit page = %s (%v)", body, err)
	}
}

func TestV1SwampAndEmptyLists(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/v1/swamp", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swamp status = %d", resp.StatusCode)
	}
	var rep SwampReport
	if err := json.Unmarshal(body, &rep); err != nil || rep.Datasets != 2 {
		t.Errorf("swamp = %s", body)
	}
	// A healthy lake's swamp list encodes as [], not null.
	if !strings.Contains(string(body), `"Swamp":[]`) {
		t.Errorf("swamp list should encode as []: %s", body)
	}
	// An empty lake's list endpoints all encode [] too.
	empty := testLake(t)
	esrv := httptest.NewServer(empty.HTTPHandler())
	defer esrv.Close()
	for _, path := range []string{"/datasets", "/lineage?entity="} {
		_, body := get(t, esrv, path, "dana")
		s := strings.TrimSpace(string(body))
		if path == "/datasets" && s != "[]" {
			t.Errorf("legacy %s on empty lake = %q, want []", path, s)
		}
	}
}

func TestLegacyAliasRoutes(t *testing.T) {
	srv := apiLake(t)
	// Legacy routes keep their original wire shapes and statuses, plus
	// a Deprecation header pointing at the v1 successor.
	resp, body := get(t, srv, "/datasets", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy datasets status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy datasets missing Deprecation header")
	}
	if !strings.Contains(resp.Header.Get("Link"), "/v1/datasets") {
		t.Errorf("legacy Link = %q", resp.Header.Get("Link"))
	}
	var entries []map[string]string
	if err := json.Unmarshal(body, &entries); err != nil || len(entries) != 2 {
		t.Fatalf("legacy datasets = %s (%v)", body, err)
	}
	// Flat arrays, not pagination envelopes.
	resp, body = get(t, srv, "/lineage?entity=raw/orders.csv", "dana")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("legacy lineage = %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, srv, "/audit?entity=raw/orders.csv", "gov")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("legacy audit status = %d", resp.StatusCode)
	}
	// Statuses still derive from the typed taxonomy.
	checks := []struct {
		method, path, user, body string
		status                   int
	}{
		{http.MethodGet, "/metadata?id=ghost", "dana", "", http.StatusNotFound},
		{http.MethodGet, "/related?table=orders&k=2", "dana", "", http.StatusOK},
		{http.MethodGet, "/related?table=orders", "mallory", "", http.StatusForbidden},
		{http.MethodGet, "/audit?entity=raw/orders.csv", "dana", "", http.StatusForbidden},
		{http.MethodPost, "/query", "dana", `not json`, http.StatusBadRequest},
		{http.MethodGet, "/swamp", "dana", "", http.StatusOK},
		{http.MethodGet, "/lineage?entity=ghost", "dana", "", http.StatusNotFound},
	}
	for _, c := range checks {
		resp, _ := do(t, srv, c.method, c.path, c.user, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("legacy %s %s as %q: status = %d, want %d", c.method, c.path, c.user, resp.StatusCode, c.status)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("legacy %s missing Deprecation header", c.path)
		}
	}
	// Legacy failures keep the pre-v1 flat {"error": "msg"} shape.
	_, body = get(t, srv, "/metadata?id=ghost", "dana")
	var flat map[string]string
	if err := json.Unmarshal(body, &flat); err != nil || flat["error"] == "" {
		t.Errorf("legacy error shape = %s (%v), want flat string", body, err)
	}
}

func TestHTTPRelatedThroughV1(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/v1/related?table=orders&k=2", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("related status = %d: %s", resp.StatusCode, body)
	}
	var res []map[string]any
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r["Table"] == "payments" {
			found = true
		}
	}
	if !found {
		t.Errorf("payments not related: %s", body)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	l := testLake(t)
	// Wrap a panicking handler in the lake's middleware chain.
	h := l.recoverMW(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	// A v1 path gets the structured envelope.
	resp, err := http.Get(srv.URL + "/v1/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic status = %d", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "internal" {
		t.Errorf("panic code = %q", code)
	}
	// A legacy path keeps the flat pre-v1 error shape even on panic.
	resp2, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ = io.ReadAll(resp2.Body)
	var flat map[string]string
	if err := json.Unmarshal(body, &flat); err != nil || flat["error"] == "" {
		t.Errorf("legacy panic shape = %s (%v), want flat string", body, err)
	}
}

func TestNoStringMatchingLeftInStatusMapping(t *testing.T) {
	// Guard against regressions to substring-based error
	// classification: an error whose message *mentions* "unknown user"
	// but is typed not_found must map to 404, not 403.
	srv := apiLake(t)
	resp, _ := get(t, srv, "/v1/metadata?id=unknown%20user", "dana")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d: classification is reading message text", resp.StatusCode)
	}
}

// Exercise ingestion + explore over HTTP end to end: POST a dataset,
// maintain through the Go API, then discover it via POST /v1/explore.
func TestV1IngestThenExploreRoundTrip(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()
	resp, body := do(t, srv, http.MethodPost, "/v1/datasets", "dana",
		`{"path":"raw/payments.csv","source":"erp","content":"id,amount\n1,10\n2,20\n"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status = %d: %s", resp.StatusCode, body)
	}
	if !l.Stale() {
		t.Error("lake should be stale after HTTP ingest")
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, srv, http.MethodPost, "/v1/explore", "dana",
		`{"mode":"populate","table":"payments","k":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "orders") {
		t.Errorf("orders not discovered from HTTP-ingested payments: %s", body)
	}
}

func TestV1MaintenanceStatusEndpoint(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/v1/maintenance", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		Auto      bool   `json:"auto"`
		Running   bool   `json:"running"`
		Stale     bool   `json:"stale"`
		PassesRun uint64 `json:"passes_run"`
		LastPass  *struct {
			Mode     string `json:"mode"`
			Datasets int    `json:"datasets"`
		} `json:"last_pass"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Auto || st.Running || st.Stale || st.PassesRun != 1 {
		t.Errorf("status = %+v", st)
	}
	if st.LastPass == nil || st.LastPass.Mode != "full" || st.LastPass.Datasets != 2 {
		t.Errorf("last pass = %+v", st.LastPass)
	}
}

func TestV1MaintenanceTrigger(t *testing.T) {
	l := testLake(t)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	// Unregistered callers may not trigger passes.
	resp, _ := do(t, srv, http.MethodPost, "/v1/maintenance", "ghost", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unregistered trigger = %d", resp.StatusCode)
	}
	// First trigger runs the first-pass full rebuild.
	resp, body := do(t, srv, http.MethodPost, "/v1/maintenance", "dana", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trigger = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Mode     string `json:"mode"`
		Datasets int    `json:"datasets"`
		Stale    bool   `json:"stale"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "full" || out.Datasets != 1 || out.Stale {
		t.Errorf("first trigger = %+v", out)
	}
	// Second trigger finds nothing new: an O(1) incremental pass.
	_, body = do(t, srv, http.MethodPost, "/v1/maintenance", "dana", "")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "incremental" || out.Datasets != 0 {
		t.Errorf("second trigger = %+v", out)
	}
}

func TestV1MaintenanceTriggerConflictsWhileRunning(t *testing.T) {
	l := testLake(t)
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	// Hold the pass lock to simulate an in-flight pass.
	l.maintMu.Lock()
	resp, body := do(t, srv, http.MethodPost, "/v1/maintenance", "dana", "")
	l.maintMu.Unlock()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trigger during pass = %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "conflict" {
		t.Errorf("error code = %q, want conflict", env.Error.Code)
	}
}

// TestAutoMaintainHTTPIngestExplorable is the serve-mode acceptance
// path: a dataset ingested over REST becomes explorable over REST with
// no manual maintenance anywhere.
func TestAutoMaintainHTTPIngestExplorable(t *testing.T) {
	l, err := Open(t.TempDir(), WithAutoMaintain(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	l.AddUser("dana", RoleDataScientist)
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	for path, csv := range map[string]string{
		"raw/orders.csv":   `id,total\n1,10\n2,20\n`,
		"raw/payments.csv": `id,amount\n1,5\n2,6\n`,
	} {
		body := `{"path":"` + path + `","content":"` + csv + `"}`
		resp, data := do(t, srv, http.MethodPost, "/v1/datasets", "dana", body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("ingest %s = %d: %s", path, resp.StatusCode, data)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data := get(t, srv, "/v1/related?table=orders&k=2", "dana")
		if resp.StatusCode == http.StatusOK {
			var res []struct {
				Table string `json:"Table"`
			}
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatal(err)
			}
			found := false
			for _, r := range res {
				if r.Table == "payments" {
					found = true
				}
			}
			if found {
				break
			}
		} else if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("related = %d: %s", resp.StatusCode, data)
		}
		if time.Now().After(deadline) {
			t.Fatal("HTTP-ingested dataset never became explorable under auto-maintenance")
		}
		time.Sleep(time.Millisecond)
	}
	_, data := get(t, srv, "/v1/maintenance", "")
	var st struct {
		Auto      bool   `json:"auto"`
		PassesRun uint64 `json:"passes_run"`
		NextRun   string `json:"next_run"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Auto || st.PassesRun == 0 || st.NextRun == "" {
		t.Errorf("maintenance status = %+v", st)
	}
}
