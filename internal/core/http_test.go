package core

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func apiLake(t *testing.T) *httptest.Server {
	t.Helper()
	l := testLake(t)
	if _, err := l.Ingest("raw/orders.csv", []byte("id,total\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest("raw/payments.csv", []byte("id,amount\n1,10\n2,20\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Maintain(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *httptest.Server, path, user string) (*http.Response, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if user != "" {
		req.Header.Set("X-Lake-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(sb.String())
}

func TestHTTPDatasetsAndMetadata(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/datasets", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var entries []map[string]string
	if err := json.Unmarshal(body, &entries); err != nil || len(entries) != 2 {
		t.Fatalf("datasets = %s (%v)", body, err)
	}
	resp, body = get(t, srv, "/metadata?id=raw/orders.csv", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metadata status = %d", resp.StatusCode)
	}
	var md map[string]any
	if err := json.Unmarshal(body, &md); err != nil {
		t.Fatal(err)
	}
	attrs, _ := md["attributes"].(map[string]any)
	if attrs["total"] != "int" {
		t.Errorf("attributes = %v", attrs)
	}
	if resp, _ := get(t, srv, "/metadata?id=ghost", "dana"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing metadata status = %d", resp.StatusCode)
	}
}

func TestHTTPRelatedAndQuery(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/related?table=orders&k=2", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("related status = %d: %s", resp.StatusCode, body)
	}
	var res []map[string]any
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r["Table"] == "payments" {
			found = true
		}
	}
	if !found {
		t.Errorf("payments not related: %s", body)
	}
	// POST /query.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query",
		strings.NewReader(`{"sql":"SELECT id FROM rel:orders WHERE total > 15"}`))
	req.Header.Set("X-Lake-User", "dana")
	qresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var qr struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0] != "2" {
		t.Errorf("query result = %+v", qr)
	}
}

func TestHTTPAccessControl(t *testing.T) {
	srv := apiLake(t)
	// Unknown user cannot search.
	if resp, _ := get(t, srv, "/related?table=orders", "mallory"); resp.StatusCode != http.StatusForbidden {
		t.Errorf("unknown user status = %d", resp.StatusCode)
	}
	// Audit requires the governance role.
	if resp, _ := get(t, srv, "/audit?entity=raw/orders.csv", "dana"); resp.StatusCode != http.StatusForbidden {
		t.Errorf("non-governance audit status = %d", resp.StatusCode)
	}
	resp, body := get(t, srv, "/audit?entity=raw/orders.csv", "gov")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("governance audit status = %d: %s", resp.StatusCode, body)
	}
}

func TestHTTPLineageAndSwamp(t *testing.T) {
	srv := apiLake(t)
	resp, body := get(t, srv, "/lineage?entity=raw/orders.csv", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lineage status = %d", resp.StatusCode)
	}
	var up []string
	if err := json.Unmarshal(body, &up); err != nil || len(up) != 0 {
		t.Errorf("lineage = %s", body)
	}
	resp, body = get(t, srv, "/swamp", "dana")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swamp status = %d", resp.StatusCode)
	}
	var rep SwampReport
	if err := json.Unmarshal(body, &rep); err != nil || rep.Datasets != 2 {
		t.Errorf("swamp = %s", body)
	}
	if resp, _ := get(t, srv, "/lineage?entity=ghost", "dana"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing lineage status = %d", resp.StatusCode)
	}
}

func TestHTTPBadQuery(t *testing.T) {
	srv := apiLake(t)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(`not json`))
	req.Header.Set("X-Lake-User", "dana")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", resp.StatusCode)
	}
}
