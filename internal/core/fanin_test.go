package core

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"golake/internal/query"
)

// fanInLake assembles a lake with parallel fan-in on and three member
// stores holding overlapping datasets.
func fanInLake(t *testing.T, opts ...Option) *Lake {
	t.Helper()
	l, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	var csv strings.Builder
	csv.WriteString("city,price\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&csv, "c%d,%d\n", i, i%97)
	}
	if _, err := l.Ingest(ctx, "raw/hotels_rel.csv", []byte(csv.String()), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	var jsonl strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&jsonl, "{\"city\":\"d%d\",\"price\":%d}\n", i, i%89)
	}
	if _, err := l.Ingest(ctx, "raw/hotels_doc.jsonl", []byte(jsonl.String()), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	return l
}

func collectSorted(t *testing.T, it query.RowIterator) []string {
	t.Helper()
	var out []string
	ctx := context.Background()
	for {
		row, err := it.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, strings.Join(row, "|"))
	}
	_ = it.Close()
	sort.Strings(out)
	return out
}

// TestLakeWithFanInMatchesSequential pins end-to-end equivalence at the
// Lake level: WithFanIn changes interleaving, never the result set.
func TestLakeWithFanInMatchesSequential(t *testing.T) {
	seqLake := fanInLake(t)
	parLake := fanInLake(t, WithFanIn(8, 64))
	const sql = "SELECT city, price FROM rel:hotels_rel, doc:hotels_doc WHERE price > 40"
	ctx := context.Background()
	seqIt, err := seqLake.QueryStream(ctx, "dana", sql)
	if err != nil {
		t.Fatal(err)
	}
	want := collectSorted(t, seqIt)
	if len(want) == 0 {
		t.Fatal("fixture returned no rows")
	}
	parIt, err := parLake.QueryStream(ctx, "dana", sql)
	if err != nil {
		t.Fatal(err)
	}
	got := collectSorted(t, parIt)
	if len(got) != len(want) {
		t.Fatalf("parallel fan-in returned %d rows, sequential %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: parallel %q, sequential %q", i, got[i], want[i])
		}
	}
	// The per-query override must win over the lake default both ways.
	overrideIt, err := seqLake.QueryStreamFanIn(ctx, "dana", sql, query.FanInOptions{Workers: 4, BufferRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectSorted(t, overrideIt); len(got) != len(want) {
		t.Fatalf("per-query fan-in override returned %d rows, want %d", len(got), len(want))
	}
}

// fanInServer serves a fan-in fixture lake over the REST API.
func fanInServer(t *testing.T) *httptest.Server {
	t.Helper()
	l := fanInLake(t)
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	return srv
}

// TestV1QueryPerRequestFanInNDJSON drives the request-body fanin knob
// through NDJSON streaming: full result set, valid framing.
func TestV1QueryPerRequestFanInNDJSON(t *testing.T) {
	srv := fanInServer(t)
	body := `{"sql":"SELECT city, price FROM rel:hotels_rel, doc:hotels_doc","fanin":8,"buffer_rows":64}`
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing header line")
	}
	rows := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) > 0 && line[0] == '{' {
			// The only object allowed after the header is the clean-end
			// stats trailer; an error trailer fails the test.
			var trailer struct {
				Stats *query.ExecStats `json:"stats"`
			}
			if err := json.Unmarshal(line, &trailer); err != nil || trailer.Stats == nil {
				t.Fatalf("unexpected object line (error trailer?): %s", line)
			}
			if sc.Scan() {
				t.Fatalf("stats trailer was not the final line; next: %s", sc.Bytes())
			}
			break
		}
		var row []string
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("row line %q: %v", line, err)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 600 {
		t.Fatalf("streamed %d rows with fanin=8, want 600", rows)
	}
}

// TestV1QueryFanInValidation: out-of-range knobs are invalid queries,
// not silent clamps, on both the JSON and NDJSON paths.
func TestV1QueryFanInValidation(t *testing.T) {
	srv := fanInServer(t)
	for _, body := range []string{
		`{"sql":"SELECT city FROM rel:hotels_rel","fanin":-1}`,
		`{"sql":"SELECT city FROM rel:hotels_rel","fanin":10000}`,
		`{"sql":"SELECT city FROM rel:hotels_rel","buffer_rows":-5}`,
		`{"sql":"SELECT city FROM rel:hotels_rel","buffer_rows":99999999}`,
	} {
		resp, data := do(t, srv, http.MethodPost, "/v1/query", "dana", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", body, resp.StatusCode, data)
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != "invalid_query" {
			t.Errorf("%s: envelope = %s (%v)", body, data, err)
		}
	}
}

// TestLegacyQueryAliasIgnoresFanInKnobs: the deprecated /query alias
// keeps its frozen pre-v1 semantics — the fanin/buffer_rows fields are
// ignored exactly as unknown fields always were, even at values the v1
// route would reject.
func TestLegacyQueryAliasIgnoresFanInKnobs(t *testing.T) {
	srv := fanInServer(t)
	resp, data := do(t, srv, http.MethodPost, "/query", "dana",
		`{"sql":"SELECT city FROM rel:hotels_rel","fanin":10000,"buffer_rows":-1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy alias rejected ignored fields: %d %s", resp.StatusCode, data)
	}
	var out struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &out); err != nil || len(out.Rows) != 300 {
		t.Fatalf("legacy alias rows = %d (%v), want 300", len(out.Rows), err)
	}
}

// TestV1QueryFanInJSONPath: the override also applies to the plain JSON
// (materializing) response shape.
func TestV1QueryFanInJSONPath(t *testing.T) {
	srv := fanInServer(t)
	resp, data := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT city, price FROM rel:hotels_rel, doc:hotels_doc","fanin":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 600 {
		t.Fatalf("got %d rows with fanin=4, want 600", len(out.Rows))
	}
}

// TestQueryStreamFanInCancelReleases: cancelling a fanned-in stream
// mid-flight must not leak pullers (guarded by -race + the WaitGroup in
// Close) and must surface a classified error.
func TestQueryStreamFanInCancelReleases(t *testing.T) {
	l := fanInLake(t, WithFanIn(8, 16))
	ctx, cancel := context.WithCancel(context.Background())
	it, err := l.QueryStream(ctx, "dana", "SELECT city FROM rel:hotels_rel, doc:hotels_doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := it.Next(ctx); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("stream did not observe cancellation")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}
