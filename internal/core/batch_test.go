package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// batchLake assembles a lake over relational-only sources — the
// federation the columnar pipeline serves end to end. disableBatch
// forces the row pipeline on the same data, for byte-identity
// comparisons.
func batchLake(t *testing.T, disableBatch bool) (*Lake, *httptest.Server) {
	t.Helper()
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	var a, b strings.Builder
	a.WriteString("city,price\n")
	b.WriteString("city,price,stars\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&a, "a%d,%d\n", i, i%97)
		fmt.Fprintf(&b, "b%d,%d,%d\n", i, i%89, i%5)
	}
	if _, err := l.Ingest(ctx, "raw/hotels_a.csv", []byte(a.String()), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ingest(ctx, "raw/hotels_b.csv", []byte(b.String()), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	l.Engine.DisableBatch = disableBatch
	srv := httptest.NewServer(l.HTTPHandler())
	t.Cleanup(srv.Close)
	return l, srv
}

// ndjsonQuery POSTs a query with Accept: application/x-ndjson and
// returns the raw body split into lines.
func ndjsonQuery(t *testing.T, srv *httptest.Server, body string) (int, []string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.Split(strings.TrimRight(string(data), "\n"), "\n")
}

// TestV1QueryBatchRowsValidation: out-of-range batch_rows is an
// invalid query (400), not a silent clamp — mirroring the fan-in
// knobs.
func TestV1QueryBatchRowsValidation(t *testing.T) {
	_, srv := batchLake(t, false)
	for _, body := range []string{
		`{"sql":"SELECT city FROM rel:hotels_a","batch_rows":-1}`,
		`{"sql":"SELECT city FROM rel:hotels_a","batch_rows":9999999}`,
	} {
		resp, data := do(t, srv, http.MethodPost, "/v1/query", "dana", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", body, resp.StatusCode, data)
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != "invalid_query" {
			t.Errorf("%s: envelope = %s (%v)", body, data, err)
		}
	}
	// In-range values pass through.
	resp, data := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT city FROM rel:hotels_a","batch_rows":64}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch_rows=64: status = %d (%s)", resp.StatusCode, data)
	}
}

// TestV1QueryBatchNDJSONByteIdentity pins the serialization contract:
// the NDJSON a batch-mode stream produces is byte-identical to the row
// pipeline's, at every batch size — only the stats trailer (timings)
// may differ.
func TestV1QueryBatchNDJSONByteIdentity(t *testing.T) {
	_, rowSrv := batchLake(t, true)
	_, batchSrv := batchLake(t, false)
	for _, sql := range []string{
		"SELECT city, price FROM rel:hotels_a, rel:hotels_b WHERE price > 40",
		"SELECT * FROM rel:hotels_a, rel:hotels_b",
		"SELECT city, stars FROM rel:hotels_a, rel:hotels_b LIMIT 700",
	} {
		code, wantLines := ndjsonQuery(t, rowSrv, fmt.Sprintf(`{"sql":%q}`, sql))
		if code != http.StatusOK {
			t.Fatalf("%s: row status = %d", sql, code)
		}
		for _, batchRows := range []int{1, 7, 1024} {
			body := fmt.Sprintf(`{"sql":%q,"batch_rows":%d}`, sql, batchRows)
			code, gotLines := ndjsonQuery(t, batchSrv, body)
			if code != http.StatusOK {
				t.Fatalf("%s batch_rows=%d: status = %d", sql, batchRows, code)
			}
			if len(gotLines) != len(wantLines) {
				t.Fatalf("%s batch_rows=%d: %d lines, want %d", sql, batchRows, len(gotLines), len(wantLines))
			}
			// Everything but the final stats trailer must match byte for
			// byte; an error trailer anywhere fails the length check above
			// or the comparison here.
			for i := 0; i < len(wantLines)-1; i++ {
				if gotLines[i] != wantLines[i] {
					t.Fatalf("%s batch_rows=%d: line %d = %q, want %q", sql, batchRows, i, gotLines[i], wantLines[i])
				}
			}
		}
	}
}

// TestMetricsBatchSeries: an executed batch-mode query shows up in the
// golake_query_batch_rows / _fill_ratio histograms on the next scrape.
func TestMetricsBatchSeries(t *testing.T) {
	_, srv := batchLake(t, false)
	resp, _ := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT city FROM rel:hotels_a, rel:hotels_b","batch_rows":64}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	_, body := scrape(t, srv)
	for _, want := range []string{
		"# TYPE golake_query_batch_rows histogram",
		"# TYPE golake_query_batch_fill_ratio histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in scrape:\n%s", want, grepLines(body, "golake_query_batch"))
		}
	}
	// 600 rows at 64 rows/batch is at least 10 batches observed.
	if strings.Contains(body, "golake_query_batch_rows_count 0") {
		t.Errorf("batch histogram has no samples:\n%s", grepLines(body, "golake_query_batch"))
	}
}

// TestQuerySQLBatchMatchesRow: the materializing QuerySQL entry point
// (the Collect bridge) returns identical tables from both pipelines.
func TestQuerySQLBatchMatchesRow(t *testing.T) {
	rowLake, _ := batchLake(t, true)
	colLake, _ := batchLake(t, false)
	ctx := context.Background()
	const sql = "SELECT city, price FROM rel:hotels_a, rel:hotels_b WHERE price > 40"
	want, err := rowLake.QuerySQL(ctx, "dana", sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := colLake.QuerySQL(ctx, "dana", sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("columns = %d, want %d", len(got.Columns), len(want.Columns))
	}
	for j := range want.Columns {
		if got.Columns[j].Name != want.Columns[j].Name {
			t.Fatalf("column %d = %q, want %q", j, got.Columns[j].Name, want.Columns[j].Name)
		}
		if fmt.Sprint(got.Columns[j].Cells) != fmt.Sprint(want.Columns[j].Cells) {
			t.Errorf("column %q cells differ", want.Columns[j].Name)
		}
	}
}
