package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"golake/internal/admission"
	"golake/internal/query"
	"golake/lakeerr"
)

// admissionLake builds a maintained two-dataset lake fronted by an
// admission controller with the given config.
func admissionLake(t *testing.T, cfg admission.Config) *Lake {
	t.Helper()
	l, err := Open(t.TempDir(), WithAdmission(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	l.AddUser("dana", RoleDataScientist)
	ctx := context.Background()
	if _, err := l.Ingest(ctx, "raw/orders.csv", []byte("id,total\n1,10\n2,20\n3,15\n"), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	return l
}

// leakCheck fails the test if the goroutine count has not returned to
// its baseline shortly after the test body finishes.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

// TestLakeQueryAdmissionQuota: with a one-slot quota, a second query
// is shed with a typed resource_exhausted error carrying a Retry-After
// hint, and releasing the slot re-admits the user.
func TestLakeQueryAdmissionQuota(t *testing.T) {
	l := admissionLake(t, admission.Config{MaxConcurrentPerUser: 1})
	ctx := context.Background()
	st, err := l.Query(ctx, "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Query(ctx, "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
	if !lakeerr.IsResourceExhausted(err) {
		t.Fatalf("second query = %v, want resource_exhausted", err)
	}
	if !errors.Is(err, admission.ErrShed) {
		t.Errorf("shed error should wrap ErrShed: %v", err)
	}
	if ra, ok := admission.RetryAfterOf(err); !ok || ra <= 0 {
		t.Errorf("RetryAfterOf = %v, %v", ra, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := l.Query(ctx, "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
	if err != nil {
		t.Fatalf("query after release: %v", err)
	}
	_ = st2.Close()
}

// TestLakeQueryAdmissionDefaults: the controller's default timeout and
// memory budget fold into the request and surface on the plan.
func TestLakeQueryAdmissionDefaults(t *testing.T) {
	l := admissionLake(t, admission.Config{
		DefaultTimeout:    5 * time.Second,
		DefaultMemoryRows: 1000,
	})
	st, err := l.Query(context.Background(), "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if p := st.Plan(); p.Timeout != 5*time.Second || p.MemoryRows != 1000 {
		t.Errorf("plan timeout/budget = %v/%d, want 5s/1000", p.Timeout, p.MemoryRows)
	}
}

// TestLakeQueryBudgetResourceExhausted: a blown per-query memory
// budget surfaces as a typed resource_exhausted stream error.
func TestLakeQueryBudgetResourceExhausted(t *testing.T) {
	l := admissionLake(t, admission.Config{})
	st, err := l.Query(context.Background(), "dana", query.Request{
		SQL:        "SELECT id FROM rel:orders ORDER BY id",
		MemoryRows: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var lastErr error
	for {
		_, err := st.Next(context.Background())
		if err != nil {
			lastErr = err
			break
		}
	}
	if !lakeerr.IsResourceExhausted(lastErr) {
		t.Fatalf("stream error = %v, want resource_exhausted", lastErr)
	}
	if !errors.Is(lastErr, query.ErrBudgetExceeded) {
		t.Errorf("should wrap ErrBudgetExceeded: %v", lastErr)
	}
}

// TestHTTPBurstShedsWith429: the acceptance scenario over the wire.
// Quota 2 concurrent per user with a 2-deep queue; a burst of 16
// concurrent queries (held running by the fault hook) yields exactly 2
// running + 2 queued, the remaining 12 shed as HTTP 429 with a
// Retry-After header, and the held queries complete once unblocked.
// No goroutines leak.
func TestHTTPBurstShedsWith429(t *testing.T) {
	leakCheck(t)
	l := admissionLake(t, admission.Config{
		MaxConcurrentPerUser: 2,
		MaxQueuedPerUser:     2,
		MaxQueueWait:         30 * time.Second,
		RetryAfter:           2 * time.Second,
	})
	// Hold every running query on its first row until released, so the
	// burst observes a stable saturated state.
	block := make(chan struct{})
	l.Engine.Fault = func(stage string) error {
		if stage == "next" {
			<-block
		}
		return nil
	}
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()

	const burst = 16
	type outcome struct {
		status     int
		retryAfter string
		body       string
	}
	results := make(chan outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/query",
				strings.NewReader(`{"sql":"SELECT id FROM rel:orders"}`))
			req.Header.Set("X-Lake-User", "dana")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results <- outcome{status: -1}
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 512)
			n, _ := resp.Body.Read(buf)
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), string(buf[:n])}
		}()
	}
	// Everything admitted or queued is blocked on the fault hook, so
	// exactly burst - (quota + queue depth) requests come back shed.
	var shed []outcome
	for len(shed) < burst-4 {
		o := <-results
		if o.status != http.StatusTooManyRequests {
			t.Fatalf("early response status = %d (%s), want 429", o.status, o.body)
		}
		shed = append(shed, o)
	}
	for _, o := range shed {
		if o.retryAfter == "" {
			t.Error("429 without Retry-After header")
		}
		if !strings.Contains(o.body, string(lakeerr.CodeResourceExhausted)) {
			t.Errorf("429 body lacks typed code: %s", o.body)
		}
	}
	if g := l.adm.InFlight(); g != 2 {
		t.Errorf("in-flight during saturation = %d, want exactly 2", g)
	}
	close(block)
	wg.Wait()
	close(results)
	var ok int
	for o := range results {
		if o.status == http.StatusOK {
			ok++
		}
	}
	if ok != 4 {
		t.Errorf("completed queries = %d, want 4 (2 running + 2 queued)", ok)
	}
}

// TestHTTPGlobalSaturation503: at the global in-flight ceiling the
// server sheds with 503 Service Unavailable (plus Retry-After), not
// the per-user 429.
func TestHTTPGlobalSaturation503(t *testing.T) {
	leakCheck(t)
	l := admissionLake(t, admission.Config{MaxInFlight: 1})
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()
	st, err := l.Query(context.Background(), "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT id FROM rel:orders"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	if code, _ := envelope(t, body); code != string(lakeerr.CodeUnavailable) {
		t.Errorf("code = %q, want unavailable", code)
	}
	_ = st.Close()
	resp, _ = do(t, srv, http.MethodPost, "/v1/query", "dana",
		`{"sql":"SELECT id FROM rel:orders"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after drain status = %d, want 200 (traffic re-admitted)", resp.StatusCode)
	}
}

// TestNDJSONDeadlineTrailer: a deadline that expires mid-stream is
// framed as the typed in-band trailer {"error":{"code":
// "deadline_exceeded"}} — the HTTP status is already committed, so the
// code travels in the NDJSON tail.
func TestNDJSONDeadlineTrailer(t *testing.T) {
	l := admissionLake(t, admission.Config{})
	// Slow each pull past the timeout, so the deadline expires after
	// the header is on the wire but before the stream completes.
	l.Engine.Fault = func(stage string) error {
		if stage == "next" {
			time.Sleep(30 * time.Millisecond)
		}
		return nil
	}
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/query",
		strings.NewReader(`{"sql":"SELECT id FROM rel:orders","timeout_ms":10}`))
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", ndjsonContentType)
	resp, body := doRaw(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream committed before expiry)", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"code":"deadline_exceeded"`) {
		t.Fatalf("trailer = %q (full body %q), want typed deadline_exceeded error", last, body)
	}
	if !strings.Contains(lines[0], "columns") {
		t.Errorf("header line = %s", lines[0])
	}
}

// TestNDJSONBudgetTrailer: the same in-band framing for a blown memory
// budget — the trailer carries resource_exhausted.
func TestNDJSONBudgetTrailer(t *testing.T) {
	l := admissionLake(t, admission.Config{})
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/query",
		strings.NewReader(`{"sql":"SELECT id FROM rel:orders ORDER BY id","memory_rows":1}`))
	req.Header.Set("X-Lake-User", "dana")
	req.Header.Set("Accept", ndjsonContentType)
	resp, body := doRaw(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if last := lines[len(lines)-1]; !strings.Contains(last, `"code":"resource_exhausted"`) {
		t.Fatalf("trailer = %s, want typed resource_exhausted error", last)
	}
}

// doRaw performs one prepared request and slurps the body.
func doRaw(t *testing.T, req *http.Request) (*http.Response, string) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// TestQueryRequestTimeoutAndBudgetValidation: the wire-level knobs
// reject negatives and map onto the typed request.
func TestQueryRequestTimeoutAndBudgetValidation(t *testing.T) {
	neg := -1
	if _, err := (queryRequest{SQL: "SELECT 1", TimeoutMS: &neg}).request(); !lakeerr.IsInvalidQuery(err) {
		t.Errorf("negative timeout_ms = %v, want invalid_query", err)
	}
	if _, err := (queryRequest{SQL: "SELECT 1", MemoryRows: &neg}).request(); !lakeerr.IsInvalidQuery(err) {
		t.Errorf("negative memory_rows = %v, want invalid_query", err)
	}
	ms, rows := 1500, 4096
	req, err := (queryRequest{SQL: "SELECT 1", TimeoutMS: &ms, MemoryRows: &rows}).request()
	if err != nil {
		t.Fatal(err)
	}
	if req.Timeout != 1500*time.Millisecond || req.MemoryRows != 4096 {
		t.Errorf("request = timeout %v memory %d", req.Timeout, req.MemoryRows)
	}
}

// TestAdmissionMetricsBoundedCardinality: per-user admission series
// fold users beyond the cap into "other", so the exposition stays
// bounded no matter how many tenants hit the endpoint.
func TestAdmissionMetricsBoundedCardinality(t *testing.T) {
	m := newLakeMetrics()
	for _, u := range []string{"u1", "u2", "u3"} {
		m.observeAdmitted(u)
		m.observeAdmissionReleased(u)
	}
	for i := 0; i < 30; i++ {
		m.observeAdmissionShed(strings.Repeat("x", i+1))
	}
	distinct := map[string]bool{}
	m.admUserMu.Lock()
	for u := range m.admUsers {
		distinct[u] = true
	}
	m.admUserMu.Unlock()
	if len(distinct) > admissionUserCardinality {
		t.Fatalf("tracked users = %d, want <= %d", len(distinct), admissionUserCardinality)
	}
	// A user seen before the cap keeps its own label afterwards.
	if got := m.admissionUser("u2"); got != "u2" {
		t.Errorf("sticky label = %q", got)
	}
	if got := m.admissionUser(strings.Repeat("y", 40)); got != "other" {
		t.Errorf("overflow label = %q, want other", got)
	}
}

// TestAdmissionMetricsExposed: an admitted and a shed query show up in
// the Prometheus exposition with the user label.
func TestAdmissionMetricsExposed(t *testing.T) {
	l := admissionLake(t, admission.Config{MaxConcurrentPerUser: 1})
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()
	st, err := l.Query(context.Background(), "dana", query.Request{SQL: "SELECT id FROM rel:orders"})
	if err != nil {
		t.Fatal(err)
	}
	// Shed one while the slot is held.
	if _, err := l.Query(context.Background(), "dana", query.Request{SQL: "SELECT id FROM rel:orders"}); err == nil {
		t.Fatal("expected shed")
	}
	_, body := scrape(t, srv)
	for _, want := range []string{
		`golake_admission_admitted_total{user="dana"} 1`,
		`golake_admission_shed_total{user="dana"} 1`,
		`golake_admission_in_flight{user="dana"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	_ = st.Close()
	_, body = scrape(t, srv)
	if !strings.Contains(body, `golake_admission_in_flight{user="dana"} 0`) {
		t.Error("in-flight gauge not decremented after release")
	}
}
