package sketch

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// LSHIndex is a banding locality-sensitive hash index over MinHash
// signatures. Two items whose signatures agree on all rows of at least
// one band become candidate pairs. Aurum builds its enterprise knowledge
// graph edges from exactly this candidacy test, turning the O(n^2)
// all-pairs comparison into a linear scan (Sec. 6.2.1 of the survey).
type LSHIndex struct {
	bands int
	rows  int

	mu      sync.RWMutex
	buckets []map[uint64][]string // per band: bucket hash -> item keys
	sigs    map[string]*MinHash
}

// NewLSHIndex creates an index for signatures of length bands*rows.
// The candidate threshold is approximately (1/bands)^(1/rows).
func NewLSHIndex(bands, rows int) *LSHIndex {
	if bands <= 0 || rows <= 0 {
		panic(fmt.Sprintf("sketch: invalid LSH shape %dx%d", bands, rows))
	}
	idx := &LSHIndex{
		bands:   bands,
		rows:    rows,
		buckets: make([]map[uint64][]string, bands),
		sigs:    make(map[string]*MinHash),
	}
	for i := range idx.buckets {
		idx.buckets[i] = make(map[uint64][]string)
	}
	return idx
}

// SignatureLen returns the required MinHash length (bands*rows).
func (x *LSHIndex) SignatureLen() int { return x.bands * x.rows }

// Add inserts an item with its signature. The signature length must
// equal SignatureLen.
func (x *LSHIndex) Add(key string, sig *MinHash) error {
	if sig.K() != x.SignatureLen() {
		return fmt.Errorf("sketch: signature length %d, want %d", sig.K(), x.SignatureLen())
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.sigs[key]; ok {
		x.removeLocked(key)
	}
	x.sigs[key] = sig
	for b := 0; b < x.bands; b++ {
		h := bandHash(sig.Signature()[b*x.rows : (b+1)*x.rows])
		x.buckets[b][h] = append(x.buckets[b][h], key)
	}
	return nil
}

// Remove deletes an item from the index; unknown keys are a no-op.
// Aurum re-signatures a column only when its values drift past a
// threshold, which maps to Remove+Add here.
func (x *LSHIndex) Remove(key string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.removeLocked(key)
}

func (x *LSHIndex) removeLocked(key string) {
	sig, ok := x.sigs[key]
	if !ok {
		return
	}
	delete(x.sigs, key)
	for b := 0; b < x.bands; b++ {
		h := bandHash(sig.Signature()[b*x.rows : (b+1)*x.rows])
		list := x.buckets[b][h]
		for i, k := range list {
			if k == key {
				x.buckets[b][h] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(x.buckets[b][h]) == 0 {
			delete(x.buckets[b], h)
		}
	}
}

// Len returns the number of indexed items.
func (x *LSHIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.sigs)
}

// Candidate is a query result: an item key plus its estimated Jaccard
// similarity to the query signature.
type Candidate struct {
	Key     string
	Jaccard float64
}

// Query returns all items sharing at least one band bucket with the
// query signature, with estimated Jaccard >= minJaccard, sorted by
// descending similarity. The query key itself (if indexed) is excluded
// when skipSelf is non-empty and equal to the candidate.
func (x *LSHIndex) Query(sig *MinHash, minJaccard float64, skipSelf string) []Candidate {
	x.mu.RLock()
	defer x.mu.RUnlock()
	seen := map[string]struct{}{}
	var out []Candidate
	for b := 0; b < x.bands; b++ {
		h := bandHash(sig.Signature()[b*x.rows : (b+1)*x.rows])
		for _, key := range x.buckets[b][h] {
			if key == skipSelf {
				continue
			}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			est := sig.Jaccard(x.sigs[key])
			if est >= minJaccard {
				out = append(out, Candidate{Key: key, Jaccard: est})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Jaccard != out[j].Jaccard {
			return out[i].Jaccard > out[j].Jaccard
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Keys returns all indexed keys in sorted order.
func (x *LSHIndex) Keys() []string {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]string, 0, len(x.sigs))
	for k := range x.sigs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func bandHash(rows []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range rows {
		buf[0] = byte(r)
		buf[1] = byte(r >> 8)
		buf[2] = byte(r >> 16)
		buf[3] = byte(r >> 24)
		buf[4] = byte(r >> 32)
		buf[5] = byte(r >> 40)
		buf[6] = byte(r >> 48)
		buf[7] = byte(r >> 56)
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}
