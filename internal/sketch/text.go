package sketch

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// QGrams returns the multiset of character q-grams of s (lowercased),
// padded with q-1 leading/trailing '#'. D3L uses q-gram profiles of
// attribute names as one of its five relatedness features.
func QGrams(s string, q int) []string {
	if q <= 0 {
		q = 3
	}
	pad := strings.Repeat("#", q-1)
	padded := pad + strings.ToLower(s) + pad
	runes := []rune(padded)
	if len(runes) < q {
		return nil
	}
	out := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		out = append(out, string(runes[i:i+q]))
	}
	return out
}

// Tokenize splits text into lowercase word tokens, treating any
// non-alphanumeric rune as a separator.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// TermFreq counts token occurrences.
func TermFreq(tokens []string) map[string]float64 {
	tf := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}

// TFIDF holds document frequencies over a corpus of token multisets and
// produces TF-IDF weighted vectors. Aurum represents column-name
// signatures this way before cosine comparison.
type TFIDF struct {
	df   map[string]int
	docs int
}

// NewTFIDF builds document frequencies from a corpus; each document is a
// token slice.
func NewTFIDF(corpus [][]string) *TFIDF {
	t := &TFIDF{df: map[string]int{}}
	for _, doc := range corpus {
		t.docs++
		seen := map[string]struct{}{}
		for _, tok := range doc {
			if _, ok := seen[tok]; ok {
				continue
			}
			seen[tok] = struct{}{}
			t.df[tok]++
		}
	}
	return t
}

// Vector returns the TF-IDF weight map for a document.
func (t *TFIDF) Vector(doc []string) map[string]float64 {
	tf := TermFreq(doc)
	out := make(map[string]float64, len(tf))
	for tok, f := range tf {
		df := t.df[tok]
		idf := math.Log(float64(t.docs+1) / float64(df+1))
		out[tok] = f * idf
	}
	return out
}

// CosineSparse computes cosine similarity between sparse weight maps.
func CosineSparse(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for k, va := range a {
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Cosine computes cosine similarity between dense vectors of equal length.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Euclidean computes the Euclidean distance between dense vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// WeightedEuclidean computes sqrt(sum w_i*(a_i-b_i)^2); D3L combines its
// five per-feature distances this way, with weights learned from labeled
// pairs.
func WeightedEuclidean(a, b, w []float64) float64 {
	if len(a) != len(b) || len(a) != len(w) {
		return math.Inf(1)
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += w[i] * d * d
	}
	return math.Sqrt(ss)
}

// KolmogorovSmirnov computes the two-sample KS statistic
// sup_x |F_a(x) - F_b(x)| over empirical CDFs. D3L and RNLIM use it to
// compare numeric attribute distributions. Returns 1 for empty input.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// RegexPattern generalizes a value into a character-class pattern:
// runs of letters become "a+", digits "9+", everything else kept
// verbatim. DATAMARAN-style structure templates and D3L's format
// feature both build on this generalization, as does Auto-Validate's
// pattern language.
func RegexPattern(s string) string {
	var sb strings.Builder
	var prev rune
	for _, r := range s {
		var class rune
		switch {
		case unicode.IsLetter(r):
			class = 'a'
		case unicode.IsDigit(r):
			class = '9'
		default:
			class = r
		}
		if class == prev && (class == 'a' || class == '9') {
			continue // collapse runs
		}
		if class == 'a' {
			sb.WriteString("a+")
		} else if class == '9' {
			sb.WriteString("9+")
		} else {
			sb.WriteRune(class)
		}
		prev = class
	}
	return sb.String()
}

// Levenshtein computes the edit distance between two strings. DS-kNN
// compares dataset feature strings with it.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes edit distance to a similarity in [0,1].
func LevenshteinSim(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	m := len([]rune(a))
	if n := len([]rune(b)); n > m {
		m = n
	}
	return 1 - float64(d)/float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
