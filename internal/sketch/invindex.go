package sketch

import (
	"sort"
	"sync"
)

// InvertedIndex maps distinct set values to the IDs of the sets that
// contain them. JOSIE's exact top-k overlap search is built on such an
// index: candidate sets are discovered by walking the posting lists of
// the query's values (Sec. 6.2.1).
type InvertedIndex struct {
	mu       sync.RWMutex
	postings map[string][]string // value -> sorted set IDs
	sizes    map[string]int      // set ID -> cardinality
}

// NewInvertedIndex creates an empty index.
func NewInvertedIndex() *InvertedIndex {
	return &InvertedIndex{postings: map[string][]string{}, sizes: map[string]int{}}
}

// Add indexes a set under the given ID. Re-adding an ID replaces it.
func (ix *InvertedIndex) Add(id string, values map[string]struct{}) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.sizes[id]; ok {
		ix.removeLocked(id)
	}
	ix.sizes[id] = len(values)
	for v := range values {
		list := ix.postings[v]
		pos := sort.SearchStrings(list, id)
		list = append(list, "")
		copy(list[pos+1:], list[pos:])
		list[pos] = id
		ix.postings[v] = list
	}
}

// Remove deletes a set from the index.
func (ix *InvertedIndex) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *InvertedIndex) removeLocked(id string) {
	delete(ix.sizes, id)
	for v, list := range ix.postings {
		pos := sort.SearchStrings(list, id)
		if pos < len(list) && list[pos] == id {
			ix.postings[v] = append(list[:pos], list[pos+1:]...)
			if len(ix.postings[v]) == 0 {
				delete(ix.postings, v)
			}
		}
	}
}

// Len returns the number of indexed sets.
func (ix *InvertedIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sizes)
}

// SetSize returns the cardinality of an indexed set (0 if unknown).
func (ix *InvertedIndex) SetSize(id string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.sizes[id]
}

// OverlapResult is one ranked answer of a top-k overlap query.
type OverlapResult struct {
	ID      string
	Overlap int
}

// TopKOverlap returns the k indexed sets with the largest exact
// intersection with the query set, excluding skipSelf. Ties break by ID
// for determinism. This is the JOSIE primitive: exact top-k overlap set
// similarity without a user-supplied threshold.
func (ix *InvertedIndex) TopKOverlap(query map[string]struct{}, k int, skipSelf string) []OverlapResult {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	counts := map[string]int{}
	for v := range query {
		for _, id := range ix.postings[v] {
			if id != skipSelf {
				counts[id]++
			}
		}
	}
	out := make([]OverlapResult, 0, len(counts))
	for id, c := range counts {
		out = append(out, OverlapResult{ID: id, Overlap: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// PostingLen returns the posting-list length for a value; JOSIE's cost
// model uses it to decide between probing postings and reading sets.
func (ix *InvertedIndex) PostingLen(value string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[value])
}

// Values returns the number of distinct indexed values.
func (ix *InvertedIndex) Values() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}
