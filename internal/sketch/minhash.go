// Package sketch implements the similarity machinery shared by the
// surveyed discovery systems: MinHash signatures and LSH indexes
// (Aurum, D3L, Juneau), q-gram and TF-IDF representations (D3L),
// inverted indexes over set values (JOSIE), random-projection cosine
// sketches (D3L embeddings), and the Kolmogorov-Smirnov statistic
// (D3L, RNLIM numeric-domain matching).
package sketch

import (
	"hash/fnv"
	"math"
)

// MinHash is a fixed-size signature of a set of strings whose
// coordinate-wise collision probability estimates Jaccard similarity.
type MinHash struct {
	sig []uint64
}

// hashPair derives k pairwise-independent-ish hash values from one FNV
// base hash using the standard (a*h + b) trick over a 61-bit prime.
const mersenne61 = (1 << 61) - 1

// seeds for the affine family; generated once per process deterministically.
func affineParams(k int) (as, bs []uint64) {
	as = make([]uint64, k)
	bs = make([]uint64, k)
	// xorshift64 with fixed seed: deterministic across runs so that
	// signatures computed at ingestion time remain comparable later.
	x := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < k; i++ {
		as[i] = next()%(mersenne61-1) + 1
		bs[i] = next() % mersenne61
	}
	return as, bs
}

var paramCache = map[int][2][]uint64{}

func params(k int) ([]uint64, []uint64) {
	if p, ok := paramCache[k]; ok {
		return p[0], p[1]
	}
	a, b := affineParams(k)
	paramCache[k] = [2][]uint64{a, b}
	return a, b
}

// NewMinHash computes a k-coordinate MinHash signature of the given set.
// k must be positive; typical values are 64-256.
func NewMinHash(k int, values []string) *MinHash {
	if k <= 0 {
		k = 128
	}
	as, bs := params(k)
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, v := range values {
		h := fnv.New64a()
		_, _ = h.Write([]byte(v))
		base := h.Sum64() % mersenne61
		for i := 0; i < k; i++ {
			hv := (as[i]*base + bs[i]) % mersenne61
			if hv < sig[i] {
				sig[i] = hv
			}
		}
	}
	return &MinHash{sig: sig}
}

// K returns the signature length.
func (m *MinHash) K() int { return len(m.sig) }

// Signature exposes the raw signature values (read-only by convention).
func (m *MinHash) Signature() []uint64 { return m.sig }

// Jaccard estimates the Jaccard similarity between the two sets
// underlying the signatures. Both signatures must have the same length.
func (m *MinHash) Jaccard(o *MinHash) float64 {
	if len(m.sig) != len(o.sig) || len(m.sig) == 0 {
		return 0
	}
	match := 0
	for i := range m.sig {
		if m.sig[i] == o.sig[i] {
			match++
		}
	}
	return float64(match) / float64(len(m.sig))
}

// ExactJaccard computes |A∩B| / |A∪B| over string sets.
func ExactJaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for v := range small {
		if _, ok := large[v]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Overlap computes |A∩B|, the raw overlap similarity used by JOSIE.
func Overlap(a, b map[string]struct{}) int {
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for v := range small {
		if _, ok := large[v]; ok {
			inter++
		}
	}
	return inter
}

// Containment computes |A∩B| / |A|: how much of A is covered by B.
// Used for PK-FK candidate detection and unionability.
func Containment(a, b map[string]struct{}) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(Overlap(a, b)) / float64(len(a))
}

// ToSet converts a slice to a set.
func ToSet(values []string) map[string]struct{} {
	s := make(map[string]struct{}, len(values))
	for _, v := range values {
		s[v] = struct{}{}
	}
	return s
}
