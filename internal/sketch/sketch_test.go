package sketch

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func setOf(vs ...string) map[string]struct{} { return ToSet(vs) }

func TestExactJaccard(t *testing.T) {
	a := setOf("a", "b", "c")
	b := setOf("b", "c", "d")
	if got := ExactJaccard(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := ExactJaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	if got := ExactJaccard(nil, nil); got != 0 {
		t.Errorf("empty Jaccard = %v, want 0", got)
	}
}

func TestOverlapAndContainment(t *testing.T) {
	a := setOf("a", "b", "c", "d")
	b := setOf("c", "d", "e")
	if got := Overlap(a, b); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if got := Containment(b, a); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("Containment = %v, want 2/3", got)
	}
	if got := Containment(nil, a); got != 0 {
		t.Errorf("Containment(empty) = %v, want 0", got)
	}
}

func TestMinHashEstimatesJaccard(t *testing.T) {
	mk := func(n, offset int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("v%d", i+offset)
		}
		return out
	}
	// |A|=1000, |B|=1000, overlap 500 -> J = 500/1500 = 1/3.
	a := mk(1000, 0)
	b := mk(1000, 500)
	sa := NewMinHash(256, a)
	sb := NewMinHash(256, b)
	est := sa.Jaccard(sb)
	want := 1.0 / 3.0
	if math.Abs(est-want) > 0.1 {
		t.Errorf("MinHash Jaccard estimate = %v, want about %v", est, want)
	}
	// Identical sets estimate 1 exactly.
	if got := sa.Jaccard(NewMinHash(256, a)); got != 1 {
		t.Errorf("identical-set estimate = %v, want 1", got)
	}
	// Disjoint sets estimate near 0.
	c := mk(1000, 5000)
	if got := sa.Jaccard(NewMinHash(256, c)); got > 0.05 {
		t.Errorf("disjoint-set estimate = %v, want near 0", got)
	}
}

func TestMinHashDeterminism(t *testing.T) {
	vals := []string{"x", "y", "z"}
	s1 := NewMinHash(64, vals)
	s2 := NewMinHash(64, vals)
	for i := range s1.Signature() {
		if s1.Signature()[i] != s2.Signature()[i] {
			t.Fatal("MinHash signatures are not deterministic")
		}
	}
}

func TestMinHashMismatchedLengths(t *testing.T) {
	a := NewMinHash(64, []string{"a"})
	b := NewMinHash(128, []string{"a"})
	if got := a.Jaccard(b); got != 0 {
		t.Errorf("mismatched-length Jaccard = %v, want 0", got)
	}
}

func TestLSHIndexFindsSimilarItems(t *testing.T) {
	idx := NewLSHIndex(16, 8) // 128-long signatures, threshold ~0.71... actually (1/16)^(1/8)=0.707
	base := make([]string, 200)
	for i := range base {
		base[i] = fmt.Sprintf("t%d", i)
	}
	near := append(append([]string{}, base[:190]...), "x1", "x2") // J ~ 0.90
	far := []string{"q1", "q2", "q3", "q4", "q5"}                 // J ~ 0
	if err := idx.Add("base", NewMinHash(128, base)); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add("near", NewMinHash(128, near)); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add("far", NewMinHash(128, far)); err != nil {
		t.Fatal(err)
	}
	got := idx.Query(NewMinHash(128, base), 0.5, "base")
	if len(got) != 1 || got[0].Key != "near" {
		t.Fatalf("Query = %+v, want [near]", got)
	}
	if got[0].Jaccard < 0.6 {
		t.Errorf("near Jaccard = %v, want > 0.6", got[0].Jaccard)
	}
}

func TestLSHRemoveAndReAdd(t *testing.T) {
	idx := NewLSHIndex(8, 4)
	sig := NewMinHash(32, []string{"a", "b", "c"})
	if err := idx.Add("k", sig); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d, want 1", idx.Len())
	}
	idx.Remove("k")
	if idx.Len() != 0 {
		t.Fatalf("Len after remove = %d, want 0", idx.Len())
	}
	if got := idx.Query(sig, 0, ""); len(got) != 0 {
		t.Errorf("Query after remove = %v, want empty", got)
	}
	// Re-add under same key twice: no duplicates.
	_ = idx.Add("k", sig)
	_ = idx.Add("k", sig)
	if idx.Len() != 1 {
		t.Errorf("Len after double add = %d, want 1", idx.Len())
	}
}

func TestLSHAddWrongLength(t *testing.T) {
	idx := NewLSHIndex(8, 4)
	if err := idx.Add("k", NewMinHash(16, []string{"a"})); err == nil {
		t.Error("expected error for wrong signature length")
	}
}

func TestQGrams(t *testing.T) {
	gs := QGrams("ab", 3)
	want := []string{"##a", "#ab", "ab#", "b##"}
	if len(gs) != len(want) {
		t.Fatalf("QGrams = %v, want %v", gs, want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("gram %d = %q, want %q", i, gs[i], want[i])
		}
	}
	if got := QGrams("", 3); len(got) != 2 {
		// "####" has 2 trigrams... padding is "##"+""+"##" = "####", 2 grams
		t.Errorf("QGrams empty = %v (len %d), want 2 grams", got, len(got))
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World_42! foo-bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTFIDFRanksDistinctiveTokens(t *testing.T) {
	corpus := [][]string{
		{"the", "cat", "sat"},
		{"the", "dog", "sat"},
		{"the", "cat", "ran"},
	}
	tfidf := NewTFIDF(corpus)
	v := tfidf.Vector([]string{"the", "cat"})
	if v["cat"] <= v["the"] {
		t.Errorf("idf should downweight common tokens: cat=%v the=%v", v["cat"], v["the"])
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := Cosine([]float64{1, 2}, []float64{2, 4}); math.Abs(got-1) > 1e-9 {
		t.Errorf("parallel cosine = %v, want 1", got)
	}
	if got := Cosine([]float64{1}, []float64{1, 2}); got != 0 {
		t.Errorf("length mismatch cosine = %v, want 0", got)
	}
	a := map[string]float64{"x": 1, "y": 2}
	b := map[string]float64{"x": 2, "y": 4}
	if got := CosineSparse(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("sparse parallel cosine = %v, want 1", got)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if got := KolmogorovSmirnov(same, same); got != 0 {
		t.Errorf("KS(same,same) = %v, want 0", got)
	}
	a := []float64{1, 2, 3}
	b := []float64{100, 200, 300}
	if got := KolmogorovSmirnov(a, b); got != 1 {
		t.Errorf("KS(disjoint ranges) = %v, want 1", got)
	}
	if got := KolmogorovSmirnov(nil, a); got != 1 {
		t.Errorf("KS(empty) = %v, want 1", got)
	}
}

func TestRegexPattern(t *testing.T) {
	cases := map[string]string{
		"abc123":     "a+9+",
		"2021-01-02": "9+-9+-9+",
		"ERR[42]":    "a+[9+]",
		"":           "",
		"a1b2":       "a+9+a+9+",
	}
	for in, want := range cases {
		if got := RegexPattern(in); got != want {
			t.Errorf("RegexPattern(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.d {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
	if got := LevenshteinSim("same", "same"); got != 1 {
		t.Errorf("LevenshteinSim same = %v, want 1", got)
	}
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("LevenshteinSim empty = %v, want 1", got)
	}
}

func TestInvertedIndexTopK(t *testing.T) {
	ix := NewInvertedIndex()
	ix.Add("s1", setOf("a", "b", "c"))
	ix.Add("s2", setOf("b", "c", "d"))
	ix.Add("s3", setOf("x", "y"))
	got := ix.TopKOverlap(setOf("a", "b", "c"), 2, "")
	if len(got) != 2 {
		t.Fatalf("TopK = %v, want 2 results", got)
	}
	if got[0].ID != "s1" || got[0].Overlap != 3 {
		t.Errorf("top result = %+v, want s1/3", got[0])
	}
	if got[1].ID != "s2" || got[1].Overlap != 2 {
		t.Errorf("second result = %+v, want s2/2", got[1])
	}
	// Self exclusion.
	got = ix.TopKOverlap(setOf("a", "b", "c"), 2, "s1")
	if len(got) != 1 || got[0].ID != "s2" {
		t.Errorf("TopK skipSelf = %v, want [s2]", got)
	}
}

func TestInvertedIndexRemoveAndReplace(t *testing.T) {
	ix := NewInvertedIndex()
	ix.Add("s1", setOf("a", "b"))
	ix.Add("s1", setOf("c"))
	if ix.SetSize("s1") != 1 {
		t.Errorf("SetSize after replace = %d, want 1", ix.SetSize("s1"))
	}
	if got := ix.TopKOverlap(setOf("a"), 5, ""); len(got) != 0 {
		t.Errorf("old values still indexed: %v", got)
	}
	ix.Remove("s1")
	if ix.Len() != 0 || ix.Values() != 0 {
		t.Errorf("index not empty after remove: len=%d values=%d", ix.Len(), ix.Values())
	}
}

// Property: for random sets, TopKOverlap's reported overlap equals the
// exact intersection size, and results are sorted by descending overlap.
func TestInvertedIndexOverlapProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		ix := NewInvertedIndex()
		sets := make([]map[string]struct{}, 0, len(raw))
		for i, bs := range raw {
			s := map[string]struct{}{}
			for _, b := range bs {
				s[fmt.Sprintf("v%d", b%32)] = struct{}{}
			}
			sets = append(sets, s)
			ix.Add(fmt.Sprintf("s%d", i), s)
		}
		if len(sets) == 0 {
			return true
		}
		q := sets[0]
		res := ix.TopKOverlap(q, 0, "")
		for i, r := range res {
			var idx int
			if _, err := fmt.Sscanf(r.ID, "s%d", &idx); err != nil {
				return false
			}
			if r.Overlap != Overlap(q, sets[idx]) {
				return false
			}
			if i > 0 && res[i-1].Overlap < r.Overlap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MinHash Jaccard estimate is within 0.2 of exact Jaccard for
// random medium-size sets with 256 hash functions.
func TestMinHashAccuracyProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := 300 + int(seed)
		a := make([]string, 0, n)
		b := make([]string, 0, n)
		shift := int(seed) % 200
		for i := 0; i < n; i++ {
			a = append(a, fmt.Sprintf("e%d", i))
			b = append(b, fmt.Sprintf("e%d", i+shift))
		}
		exact := ExactJaccard(ToSet(a), ToSet(b))
		est := NewMinHash(256, a).Jaccard(NewMinHash(256, b))
		return math.Abs(exact-est) < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWeightedEuclidean(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Euclidean(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	w := []float64{1, 0}
	if got := WeightedEuclidean(a, b, w); math.Abs(got-3) > 1e-9 {
		t.Errorf("WeightedEuclidean = %v, want 3", got)
	}
	if got := Euclidean([]float64{1}, b); !math.IsInf(got, 1) {
		t.Errorf("length mismatch should be +Inf, got %v", got)
	}
}
