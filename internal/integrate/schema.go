package integrate

import (
	"fmt"
	"sort"
	"strings"

	"golake/internal/metamodel"
	"golake/internal/table"
)

// IntegratedAttribute is one attribute of the integrated schema, with
// its per-table source columns — the schema mapping Constance
// generates after matching (Sec. 6.3).
type IntegratedAttribute struct {
	// Name is the chosen representative name.
	Name string
	// Sources maps table name -> source column name.
	Sources map[string]string
}

// IntegratedSchema is the partial integration result over a selected
// subset of tables.
type IntegratedSchema struct {
	Tables     []string
	Attributes []IntegratedAttribute
}

// BuildIntegratedSchema derives an integrated schema from the column
// clusters: each cluster spanning at least minTables distinct tables
// becomes one integrated attribute named after the most frequent source
// column name (ties broken lexicographically).
func BuildIntegratedSchema(tables []*table.Table, clusters [][]metamodel.ColumnRef, minTables int) *IntegratedSchema {
	if minTables < 1 {
		minTables = 1
	}
	s := &IntegratedSchema{}
	for _, t := range tables {
		s.Tables = append(s.Tables, t.Name)
	}
	sort.Strings(s.Tables)
	inSelection := map[string]bool{}
	for _, n := range s.Tables {
		inSelection[n] = true
	}
	for _, cluster := range clusters {
		srcs := map[string]string{}
		nameFreq := map[string]int{}
		for _, ref := range cluster {
			if !inSelection[ref.Table] {
				continue
			}
			if _, dup := srcs[ref.Table]; !dup {
				srcs[ref.Table] = ref.Column
			}
			nameFreq[ref.Column]++
		}
		if len(srcs) < minTables {
			continue
		}
		var names []string
		for n := range nameFreq {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if nameFreq[names[i]] != nameFreq[names[j]] {
				return nameFreq[names[i]] > nameFreq[names[j]]
			}
			return names[i] < names[j]
		})
		s.Attributes = append(s.Attributes, IntegratedAttribute{Name: names[0], Sources: srcs})
	}
	sort.Slice(s.Attributes, func(i, j int) bool { return s.Attributes[i].Name < s.Attributes[j].Name })
	return s
}

// Attribute returns the integrated attribute with the given name.
func (s *IntegratedSchema) Attribute(name string) (IntegratedAttribute, bool) {
	for _, a := range s.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return IntegratedAttribute{}, false
}

// AttributeNames lists integrated attribute names in order.
func (s *IntegratedSchema) AttributeNames() []string {
	out := make([]string, len(s.Attributes))
	for i, a := range s.Attributes {
		out[i] = a.Name
	}
	return out
}

// SubQuery is one rewritten per-source query: the source table, the
// source columns to project (aligned with the integrated attributes
// requested), and a pushed-down predicate.
type SubQuery struct {
	Table string
	// Columns maps integrated attribute -> source column ("" when the
	// source lacks the attribute; the result column is null-padded).
	Columns map[string]string
	// Predicate filters source rows (nil = all); it receives the
	// source row keyed by source column names.
	Predicate func(row map[string]string) bool
}

// Rewrite translates a query against the integrated schema (requested
// attributes + optional predicate on one integrated attribute) into one
// subquery per source table — Constance's query rewriting step. Tables
// lacking every requested attribute are skipped.
func (s *IntegratedSchema) Rewrite(attrs []string, predAttr, predValue string) ([]SubQuery, error) {
	for _, a := range attrs {
		if _, ok := s.Attribute(a); !ok {
			return nil, fmt.Errorf("integrate: unknown integrated attribute %q", a)
		}
	}
	var out []SubQuery
	for _, tbl := range s.Tables {
		cols := map[string]string{}
		covered := 0
		for _, a := range attrs {
			ia, _ := s.Attribute(a)
			src, ok := ia.Sources[tbl]
			if ok {
				covered++
				cols[a] = src
			} else {
				cols[a] = ""
			}
		}
		if covered == 0 {
			continue
		}
		sq := SubQuery{Table: tbl, Columns: cols}
		if predAttr != "" {
			ia, ok := s.Attribute(predAttr)
			if !ok {
				return nil, fmt.Errorf("integrate: unknown predicate attribute %q", predAttr)
			}
			src, hasPred := ia.Sources[tbl]
			if hasPred {
				want := predValue
				sq.Predicate = func(row map[string]string) bool { return row[src] == want }
			} else {
				// Source cannot evaluate the predicate: it contributes
				// no certain answers under the integrated semantics.
				continue
			}
		}
		out = append(out, sq)
	}
	return out, nil
}

// Execute runs the subqueries over in-memory tables and merges results
// into one integrated table, resolving per-attribute conflicts by
// keeping the first non-null value — Constance's merge step.
func Execute(subqueries []SubQuery, lookup func(name string) (*table.Table, error), attrs []string) (*table.Table, error) {
	out := table.New("integrated")
	for _, a := range attrs {
		out.Columns = append(out.Columns, &table.Column{Name: a})
	}
	for _, sq := range subqueries {
		src, err := lookup(sq.Table)
		if err != nil {
			return nil, fmt.Errorf("integrate: source %s: %w", sq.Table, err)
		}
		names := src.ColumnNames()
		for i := 0; i < src.NumRows(); i++ {
			row := src.Row(i)
			m := make(map[string]string, len(names))
			for j, n := range names {
				m[n] = row[j]
			}
			if sq.Predicate != nil && !sq.Predicate(m) {
				continue
			}
			rec := make([]string, len(attrs))
			for j, a := range attrs {
				if srcCol := sq.Columns[a]; srcCol != "" {
					rec[j] = m[srcCol]
				}
			}
			if err := out.AppendRow(rec); err != nil {
				return nil, err
			}
		}
	}
	out.InferTypes()
	return out, nil
}

// String renders the integrated schema compactly, e.g.
// "city<-{a.city,b.town} price<-{a.price}".
func (s *IntegratedSchema) String() string {
	var parts []string
	for _, a := range s.Attributes {
		var srcs []string
		for t, c := range a.Sources {
			srcs = append(srcs, t+"."+c)
		}
		sort.Strings(srcs)
		parts = append(parts, fmt.Sprintf("%s<-{%s}", a.Name, strings.Join(srcs, ",")))
	}
	return strings.Join(parts, " ")
}
