// Package integrate implements the data-integration function of the
// maintenance tier (Sec. 6.3): Constance's pipeline — schema matching,
// integrated schema generation, schema mappings, and query rewriting
// with conflict resolution — and ALITE's holistic integration of
// discovered tables via column clustering and Full Disjunction.
package integrate

import (
	"sort"

	"golake/internal/metamodel"
	"golake/internal/sketch"
	"golake/internal/table"
)

// Correspondence is one schema-matching result: two columns judged
// semantically related, with the combined confidence.
type Correspondence struct {
	A, B metamodel.ColumnRef
	Sim  float64
}

// MatchConfig tunes the matcher.
type MatchConfig struct {
	// MinSim is the acceptance threshold on combined similarity.
	MinSim float64
	// NameWeight/InstanceWeight combine the two evidence kinds; they
	// need not sum to 1 (normalized internally).
	NameWeight     float64
	InstanceWeight float64
}

// DefaultMatchConfig mirrors Constance's default matcher behaviour:
// both name and instance evidence, moderate threshold.
func DefaultMatchConfig() MatchConfig {
	return MatchConfig{MinSim: 0.4, NameWeight: 0.5, InstanceWeight: 0.5}
}

// MatchColumns scores one column pair on name similarity (q-gram
// Jaccard and Levenshtein) and instance overlap (value Jaccard), with a
// type-compatibility gate.
func MatchColumns(a, b *table.Column, cfg MatchConfig) float64 {
	if a.Kind.Numeric() != b.Kind.Numeric() && a.Kind != table.KindUnknown && b.Kind != table.KindUnknown {
		return 0
	}
	nameSim := 0.5*sketch.ExactJaccard(
		sketch.ToSet(sketch.QGrams(a.Name, 3)),
		sketch.ToSet(sketch.QGrams(b.Name, 3)),
	) + 0.5*sketch.LevenshteinSim(a.Name, b.Name)
	instSim := sketch.ExactJaccard(a.Distinct(), b.Distinct())
	den := cfg.NameWeight + cfg.InstanceWeight
	if den == 0 {
		return 0
	}
	avg := (cfg.NameWeight*nameSim + cfg.InstanceWeight*instSim) / den
	// One strong matcher suffices (with a penalty for missing
	// corroboration) — the standard max-combination of multi-matcher
	// systems; homonyms/synonyms make either signal alone unreliable
	// only near the threshold.
	best := nameSim
	if instSim > best {
		best = instSim
	}
	if s := 0.85 * best; s > avg {
		return s
	}
	return avg
}

// Match computes the correspondences between two tables: the best
// partner per column, kept when above threshold, stable under order.
func Match(a, b *table.Table, cfg MatchConfig) []Correspondence {
	var out []Correspondence
	for _, ca := range a.Columns {
		bestSim := 0.0
		var best *table.Column
		for _, cb := range b.Columns {
			if sim := MatchColumns(ca, cb, cfg); sim > bestSim {
				bestSim = sim
				best = cb
			}
		}
		if best != nil && bestSim >= cfg.MinSim {
			out = append(out, Correspondence{
				A:   metamodel.ColumnRef{Table: a.Name, Column: ca.Name},
				B:   metamodel.ColumnRef{Table: b.Name, Column: best.Name},
				Sim: bestSim,
			})
		}
	}
	return out
}

// MatchAll computes pairwise correspondences across a set of tables.
func MatchAll(tables []*table.Table, cfg MatchConfig) []Correspondence {
	var out []Correspondence
	for i := 0; i < len(tables); i++ {
		for j := i + 1; j < len(tables); j++ {
			out = append(out, Match(tables[i], tables[j], cfg)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].A.String()+out[i].B.String() < out[j].A.String()+out[j].B.String()
	})
	return out
}

// Cluster groups columns into attribute clusters: connected components
// of the correspondence graph. ALITE's holistic matching does exactly
// this before computing the Full Disjunction; Constance's integrated
// schema derives one attribute per cluster.
func Cluster(tables []*table.Table, corrs []Correspondence) [][]metamodel.ColumnRef {
	parent := map[metamodel.ColumnRef]metamodel.ColumnRef{}
	var find func(x metamodel.ColumnRef) metamodel.ColumnRef
	find = func(x metamodel.ColumnRef) metamodel.ColumnRef {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	union := func(a, b metamodel.ColumnRef) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, t := range tables {
		for _, c := range t.Columns {
			ref := metamodel.ColumnRef{Table: t.Name, Column: c.Name}
			parent[ref] = ref
		}
	}
	for _, co := range corrs {
		if _, ok := parent[co.A]; !ok {
			parent[co.A] = co.A
		}
		if _, ok := parent[co.B]; !ok {
			parent[co.B] = co.B
		}
		union(co.A, co.B)
	}
	groups := map[metamodel.ColumnRef][]metamodel.ColumnRef{}
	for ref := range parent {
		root := find(ref)
		groups[root] = append(groups[root], ref)
	}
	var out [][]metamodel.ColumnRef
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i].String() < members[j].String() })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].String() < out[j][0].String() })
	return out
}
