package integrate

import (
	"strings"
	"testing"
	"testing/quick"

	"golake/internal/metamodel"
	"golake/internal/table"
)

func mustCSV(t *testing.T, name, csv string) *table.Table {
	t.Helper()
	tbl, err := table.ParseCSV(name, csv)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMatchColumnsSignals(t *testing.T) {
	a := &table.Column{Name: "city", Kind: table.KindString, Cells: []string{"berlin", "paris"}}
	b := &table.Column{Name: "city", Kind: table.KindString, Cells: []string{"berlin", "rome"}}
	c := &table.Column{Name: "amount", Kind: table.KindFloat, Cells: []string{"1.5", "2.5"}}
	cfg := DefaultMatchConfig()
	if sim := MatchColumns(a, b, cfg); sim < 0.5 {
		t.Errorf("same-name overlapping columns sim = %v", sim)
	}
	// Type gate: string vs numeric never match.
	if sim := MatchColumns(a, c, cfg); sim != 0 {
		t.Errorf("cross-type sim = %v, want 0", sim)
	}
}

func TestMatchFindsCorrespondences(t *testing.T) {
	a := mustCSV(t, "hotels_a", "city,price\nberlin,100\nparis,150\nrome,90\n")
	b := mustCSV(t, "hotels_b", "town,price\nberlin,110\nparis,140\nlyon,80\n")
	corrs := Match(a, b, DefaultMatchConfig())
	// price<->price must match; city<->town via instances.
	foundPrice, foundCity := false, false
	for _, c := range corrs {
		if c.A.Column == "price" && c.B.Column == "price" {
			foundPrice = true
		}
		if c.A.Column == "city" && c.B.Column == "town" {
			foundCity = true
		}
	}
	if !foundPrice {
		t.Errorf("price correspondence missing: %+v", corrs)
	}
	if !foundCity {
		t.Errorf("city/town correspondence missing: %+v", corrs)
	}
}

func TestClusterConnectedComponents(t *testing.T) {
	a := mustCSV(t, "a", "city,price\nberlin,1\n")
	b := mustCSV(t, "b", "town,cost\nberlin,1\n")
	corrs := []Correspondence{
		{A: metamodel.ColumnRef{Table: "a", Column: "city"}, B: metamodel.ColumnRef{Table: "b", Column: "town"}, Sim: 0.9},
	}
	clusters := Cluster([]*table.Table{a, b}, corrs)
	// {a.city,b.town}, {a.price}, {b.cost} -> 3 clusters.
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d: %v", len(clusters), clusters)
	}
	var sizes []int
	for _, c := range clusters {
		sizes = append(sizes, len(c))
	}
	two := 0
	for _, s := range sizes {
		if s == 2 {
			two++
		}
	}
	if two != 1 {
		t.Errorf("cluster sizes = %v, want exactly one pair", sizes)
	}
}

func TestIntegratedSchemaAndRewrite(t *testing.T) {
	a := mustCSV(t, "a", "city,price\nberlin,100\nparis,150\nrome,90\n")
	b := mustCSV(t, "b", "town,price\nberlin,110\nparis,140\nlyon,80\n")
	tables := []*table.Table{a, b}
	corrs := MatchAll(tables, DefaultMatchConfig())
	clusters := Cluster(tables, corrs)
	schema := BuildIntegratedSchema(tables, clusters, 2)
	// Two shared attributes: city-ish and price.
	if len(schema.Attributes) != 2 {
		t.Fatalf("integrated attrs = %v", schema.AttributeNames())
	}
	if _, ok := schema.Attribute("price"); !ok {
		t.Errorf("no price attribute: %v", schema.AttributeNames())
	}
	// Rewrite a selection over all attrs with a predicate on the city
	// attribute.
	cityAttr := schema.AttributeNames()[0]
	if cityAttr == "price" {
		cityAttr = schema.AttributeNames()[1]
	}
	subs, err := schema.Rewrite([]string{cityAttr, "price"}, cityAttr, "berlin")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subqueries = %d, want 2", len(subs))
	}
	lookup := func(name string) (*table.Table, error) {
		for _, tb := range tables {
			if tb.Name == name {
				return tb, nil
			}
		}
		return nil, table.ErrNoSuchColumn
	}
	res, err := Execute(subs, lookup, []string{cityAttr, "price"})
	if err != nil {
		t.Fatal(err)
	}
	// berlin appears in both sources.
	if res.NumRows() != 2 {
		t.Errorf("result rows = %d, want 2:\n%s", res.NumRows(), table.ToCSV(res))
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Row(i)[0] != "berlin" {
			t.Errorf("row %d = %v", i, res.Row(i))
		}
	}
}

func TestRewriteSkipsSourcesWithoutPredicate(t *testing.T) {
	a := mustCSV(t, "a", "city,price\nberlin,100\n")
	b := mustCSV(t, "b", "price\n90\n") // no city column
	tables := []*table.Table{a, b}
	schema := BuildIntegratedSchema(tables, Cluster(tables, MatchAll(tables, DefaultMatchConfig())), 1)
	subs, err := schema.Rewrite([]string{"price"}, "city", "berlin")
	if err != nil {
		t.Fatal(err)
	}
	for _, sq := range subs {
		if sq.Table == "b" {
			t.Error("source b cannot evaluate city predicate and must be skipped")
		}
	}
	if _, err := schema.Rewrite([]string{"ghost"}, "", ""); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestFullDisjunctionTextbook(t *testing.T) {
	// Classic 3-table FD example: chains connect via shared attributes.
	r := mustCSV(t, "r", "a,b\n1,2\n")
	s := mustCSV(t, "s", "b,c\n2,3\n")
	u := mustCSV(t, "u", "c,d\n9,10\n")
	tables := []*table.Table{r, s, u}
	// Align columns by name across tables.
	var corrs []Correspondence
	corrs = append(corrs,
		Correspondence{A: metamodel.ColumnRef{Table: "r", Column: "b"}, B: metamodel.ColumnRef{Table: "s", Column: "b"}, Sim: 1},
		Correspondence{A: metamodel.ColumnRef{Table: "s", Column: "c"}, B: metamodel.ColumnRef{Table: "u", Column: "c"}, Sim: 1},
	)
	clusters := Cluster(tables, corrs)
	fd := FullDisjunction(tables, clusters)
	// Expected: {a:1,b:2,c:3} (r joins s), {c:9,d:10} (u dangles).
	if fd.NumRows() != 2 {
		t.Fatalf("FD rows = %d, want 2:\n%s", fd.NumRows(), table.ToCSV(fd))
	}
	csv := table.ToCSV(fd)
	if !strings.Contains(csv, "1,2,3,") {
		t.Errorf("joined tuple missing:\n%s", csv)
	}
	if !strings.Contains(csv, ",,9,10") {
		t.Errorf("dangling tuple missing:\n%s", csv)
	}
}

func TestFullDisjunctionTransitiveChain(t *testing.T) {
	// Chained joins across three tables must connect transitively.
	r := mustCSV(t, "r", "a,b\nx,k1\n")
	s := mustCSV(t, "s", "b,c\nk1,k2\n")
	u := mustCSV(t, "u", "c,d\nk2,z\n")
	tables := []*table.Table{r, s, u}
	corrs := []Correspondence{
		{A: metamodel.ColumnRef{Table: "r", Column: "b"}, B: metamodel.ColumnRef{Table: "s", Column: "b"}, Sim: 1},
		{A: metamodel.ColumnRef{Table: "s", Column: "c"}, B: metamodel.ColumnRef{Table: "u", Column: "c"}, Sim: 1},
	}
	fd := FullDisjunction(tables, Cluster(tables, corrs))
	if fd.NumRows() != 1 {
		t.Fatalf("FD rows = %d, want 1 fully chained tuple:\n%s", fd.NumRows(), table.ToCSV(fd))
	}
	row := fd.Row(0)
	joined := strings.Join(row, ",")
	for _, want := range []string{"x", "k1", "k2", "z"} {
		if !strings.Contains(joined, want) {
			t.Errorf("chained tuple lacks %q: %v", want, row)
		}
	}
}

func TestFullDisjunctionConflictingTuplesStaySeparate(t *testing.T) {
	a := mustCSV(t, "a", "k,v\n1,x\n")
	b := mustCSV(t, "b", "k,v\n1,y\n") // same key, conflicting v
	tables := []*table.Table{a, b}
	corrs := []Correspondence{
		{A: metamodel.ColumnRef{Table: "a", Column: "k"}, B: metamodel.ColumnRef{Table: "b", Column: "k"}, Sim: 1},
		{A: metamodel.ColumnRef{Table: "a", Column: "v"}, B: metamodel.ColumnRef{Table: "b", Column: "v"}, Sim: 1},
	}
	fd := FullDisjunction(tables, Cluster(tables, corrs))
	if fd.NumRows() != 2 {
		t.Errorf("conflicting tuples merged: %d rows\n%s", fd.NumRows(), table.ToCSV(fd))
	}
}

func TestFullDisjunctionSubsumptionDedupe(t *testing.T) {
	a := mustCSV(t, "a", "k,v\n1,x\n")
	b := mustCSV(t, "b", "k\n1\n") // strictly less information
	tables := []*table.Table{a, b}
	corrs := []Correspondence{
		{A: metamodel.ColumnRef{Table: "a", Column: "k"}, B: metamodel.ColumnRef{Table: "b", Column: "k"}, Sim: 1},
	}
	fd := FullDisjunction(tables, Cluster(tables, corrs))
	if fd.NumRows() != 1 {
		t.Errorf("subsumed tuple kept: %d rows\n%s", fd.NumRows(), table.ToCSV(fd))
	}
}

// Property: the FD always contains at least as much information as the
// largest input (no tuple vanishes), and never exceeds the sum of
// input rows.
func TestFullDisjunctionCardinalityBounds(t *testing.T) {
	f := func(ks []uint8) bool {
		if len(ks) == 0 {
			return true
		}
		if len(ks) > 12 {
			ks = ks[:12]
		}
		rowsA := "k,v\n"
		rowsB := "k,w\n"
		for i, k := range ks {
			if i%2 == 0 {
				rowsA += itoa(int(k%8)) + ",a" + itoa(i) + "\n"
			} else {
				rowsB += itoa(int(k%8)) + ",b" + itoa(i) + "\n"
			}
		}
		a, err := table.ParseCSV("a", rowsA)
		if err != nil {
			return false
		}
		b, err := table.ParseCSV("b", rowsB)
		if err != nil {
			return false
		}
		tables := []*table.Table{a, b}
		corrs := []Correspondence{
			{A: metamodel.ColumnRef{Table: "a", Column: "k"}, B: metamodel.ColumnRef{Table: "b", Column: "k"}, Sim: 1},
		}
		fd := FullDisjunction(tables, Cluster(tables, corrs))
		total := a.NumRows() + b.NumRows()
		return fd.NumRows() >= 1 && fd.NumRows() <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestIntegratedSchemaString(t *testing.T) {
	a := mustCSV(t, "a", "city\nberlin\n")
	b := mustCSV(t, "b", "city\nparis\n")
	tables := []*table.Table{a, b}
	schema := BuildIntegratedSchema(tables, Cluster(tables, MatchAll(tables, DefaultMatchConfig())), 2)
	if got := schema.String(); !strings.Contains(got, "city<-{a.city,b.city}") {
		t.Errorf("String = %q", got)
	}
}
