package integrate

import (
	"sort"

	"golake/internal/metamodel"
	"golake/internal/table"
)

// ALITE (Khatiwada et al., Sec. 6.3) integrates the tables returned by
// dataset discovery: columns are aligned holistically (here: the
// connected-component clusters of Cluster, standing in for the
// embedding-based hierarchical clustering over TURL vectors), renamed
// to one attribute per cluster, and combined by Full Disjunction — the
// associative generalization of the natural outer join that preserves
// every tuple and maximally connects tuples agreeing on shared
// attributes.

// FullDisjunction computes the full disjunction of the given tables
// under the attribute alignment induced by clusters. The result has
// one column per cluster that covers any input column, named after the
// cluster representative (most frequent source column name).
func FullDisjunction(tables []*table.Table, clusters [][]metamodel.ColumnRef) *table.Table {
	attrOf, attrNames := alignment(clusters)
	// Convert every input tuple into a sparse record over integrated
	// attributes.
	var records []map[string]string
	for _, t := range tables {
		names := t.ColumnNames()
		for i := 0; i < t.NumRows(); i++ {
			rec := map[string]string{}
			row := t.Row(i)
			for j, col := range names {
				attr, ok := attrOf[metamodel.ColumnRef{Table: t.Name, Column: col}]
				if !ok {
					continue
				}
				if row[j] != "" {
					rec[attr] = row[j]
				}
			}
			if len(rec) > 0 {
				records = append(records, rec)
			}
		}
	}
	// Iteratively merge records that join: they share at least one
	// attribute with equal values and conflict on none. Repeat until a
	// fixpoint — the naive but exact FD computation (ALITE optimizes
	// this; the result set is the same).
	merged := fdFixpoint(records)
	// Render as a table.
	out := table.New("full_disjunction")
	for _, a := range attrNames {
		out.Columns = append(out.Columns, &table.Column{Name: a})
	}
	sort.Slice(merged, func(i, j int) bool { return recKey(merged[i], attrNames) < recKey(merged[j], attrNames) })
	for _, rec := range merged {
		row := make([]string, len(attrNames))
		for i, a := range attrNames {
			row[i] = rec[a]
		}
		_ = out.AppendRow(row)
	}
	out.InferTypes()
	return out
}

// alignment maps every clustered column to its integrated attribute
// name and returns the ordered attribute list.
func alignment(clusters [][]metamodel.ColumnRef) (map[metamodel.ColumnRef]string, []string) {
	attrOf := map[metamodel.ColumnRef]string{}
	var attrNames []string
	for _, cluster := range clusters {
		freq := map[string]int{}
		for _, ref := range cluster {
			freq[ref.Column]++
		}
		var names []string
		for n := range freq {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if freq[names[i]] != freq[names[j]] {
				return freq[names[i]] > freq[names[j]]
			}
			return names[i] < names[j]
		})
		rep := names[0]
		// Disambiguate duplicate representatives across clusters.
		base, n := rep, 1
		for contains(attrNames, rep) {
			n++
			rep = base + "_" + string(rune('0'+n))
		}
		attrNames = append(attrNames, rep)
		for _, ref := range cluster {
			attrOf[ref] = rep
		}
	}
	sort.Strings(attrNames)
	return attrOf, attrNames
}

// fdFixpoint merges joinable records until no merge applies.
func fdFixpoint(records []map[string]string) []map[string]string {
	work := append([]map[string]string(nil), records...)
	for {
		mergedAny := false
		var next []map[string]string
		used := make([]bool, len(work))
		for i := 0; i < len(work); i++ {
			if used[i] {
				continue
			}
			cur := cloneRec(work[i])
			for j := i + 1; j < len(work); j++ {
				if used[j] {
					continue
				}
				if joinable(cur, work[j]) {
					for k, v := range work[j] {
						cur[k] = v
					}
					used[j] = true
					mergedAny = true
				}
			}
			next = append(next, cur)
		}
		work = next
		if !mergedAny {
			return dedupe(work)
		}
	}
}

// joinable reports whether two sparse records share at least one equal
// attribute value and disagree on none.
func joinable(a, b map[string]string) bool {
	shared := false
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if va != vb {
				return false
			}
			shared = true
		}
	}
	return shared
}

func cloneRec(r map[string]string) map[string]string {
	out := make(map[string]string, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// dedupe drops records subsumed by (equal to or contained in) another.
func dedupe(recs []map[string]string) []map[string]string {
	var out []map[string]string
	for i, r := range recs {
		sub := false
		for j, o := range recs {
			if i == j {
				continue
			}
			if subsumes(o, r) && (!subsumes(r, o) || j < i) {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, r)
		}
	}
	return out
}

// subsumes reports whether a contains every key-value of b.
func subsumes(a, b map[string]string) bool {
	if len(b) > len(a) {
		return false
	}
	for k, v := range b {
		if av, ok := a[k]; !ok || av != v {
			return false
		}
	}
	return true
}

func recKey(r map[string]string, attrs []string) string {
	key := ""
	for _, a := range attrs {
		key += r[a] + "\x00"
	}
	return key
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
