package embed

import (
	"math"
	"testing"

	"golake/internal/sketch"
)

func TestSameDomainValuesEmbedClose(t *testing.T) {
	m := NewModel(64)
	colors := []string{"red", "green", "blue", "red", "green"}
	cities := []string{"berlin", "paris", "delft", "aachen"}
	// Feed several columns per domain so co-occurrence statistics form.
	for i := 0; i < 5; i++ {
		m.AddColumn(colors)
		m.AddColumn(cities)
	}
	// Mixed column to give shared context noise.
	m.AddColumn([]string{"red", "berlin"})

	sameDomain := m.Similarity("red", "green")
	crossDomain := m.Similarity("red", "paris")
	if sameDomain <= crossDomain {
		t.Errorf("same-domain sim %v should exceed cross-domain sim %v", sameDomain, crossDomain)
	}
}

func TestIdenticalValuesMaxSimilarity(t *testing.T) {
	m := NewModel(32)
	m.AddColumn([]string{"alpha", "beta"})
	if got := m.Similarity("alpha", "alpha"); math.Abs(got-1) > 1e-9 {
		t.Errorf("self similarity = %v, want 1", got)
	}
}

func TestUnknownTokensAreDeterministic(t *testing.T) {
	m := NewModel(32)
	v1 := m.Vector("never-seen-token")
	v2 := m.Vector("never-seen-token")
	if got := sketch.Cosine(v1, v2); math.Abs(got-1) > 1e-9 {
		t.Errorf("unknown token not deterministic: cos = %v", got)
	}
	other := m.Vector("different-unknown")
	if got := sketch.Cosine(v1, other); got > 0.9 {
		t.Errorf("different unknown tokens too similar: %v", got)
	}
}

func TestColumnVectorIsUnit(t *testing.T) {
	m := NewModel(48)
	m.AddColumn([]string{"a", "b", "c"})
	m.AddColumn([]string{"x", "y", "z"})
	v := m.ColumnVector([]string{"a", "b"})
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	if math.Abs(math.Sqrt(ss)-1) > 1e-9 {
		t.Errorf("column vector norm = %v, want 1", math.Sqrt(ss))
	}
}

func TestColumnVectorSimilarColumnsAlign(t *testing.T) {
	m := NewModel(64)
	fruits1 := []string{"apple", "pear", "plum", "grape"}
	fruits2 := []string{"apple", "pear", "cherry", "grape"}
	nums := []string{"one", "two", "three", "four"}
	for i := 0; i < 4; i++ {
		m.AddColumn(fruits1)
		m.AddColumn(fruits2)
		m.AddColumn(nums)
	}
	simFruit := sketch.Cosine(m.ColumnVector(fruits1), m.ColumnVector(fruits2))
	simCross := sketch.Cosine(m.ColumnVector(fruits1), m.ColumnVector(nums))
	if simFruit <= simCross {
		t.Errorf("fruit/fruit sim %v should exceed fruit/nums sim %v", simFruit, simCross)
	}
}

func TestMultiTokenValueAveraging(t *testing.T) {
	m := NewModel(32)
	m.AddColumn([]string{"new york", "new jersey"})
	m.AddColumn([]string{"red", "green", "blue"})
	v := m.Vector("new york")
	if len(v) != 32 {
		t.Fatalf("vector dim = %d, want 32", len(v))
	}
	// "new york" should be more similar to "new" than a random word is,
	// because it contains that token.
	simShared := sketch.Cosine(v, m.Vector("new"))
	simOther := sketch.Cosine(v, m.Vector("zzz-unrelated"))
	if simShared <= simOther {
		t.Errorf("shared-token sim %v should exceed unrelated sim %v", simShared, simOther)
	}
}

func TestEmptyValueVector(t *testing.T) {
	m := NewModel(16)
	v := m.Vector("  ,,  ")
	for _, x := range v {
		if x != 0 {
			t.Fatalf("vector of empty token set should be zero, got %v", v)
		}
	}
}

func TestDefaultDim(t *testing.T) {
	m := NewModel(0)
	if m.Dim != 64 {
		t.Errorf("default Dim = %d, want 64", m.Dim)
	}
}
