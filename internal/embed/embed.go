// Package embed provides similarity-preserving vector representations of
// lake values without external models. The surveyed systems lean on
// pre-trained embeddings — D3L uses word embeddings, PEXESO
// high-dimensional vectors, RNLIM and ALITE BERT/TURL — none of which is
// available offline. This package substitutes a distributional model
// computed from the lake itself: values that co-occur in the same column
// receive nearby vectors (positive pointwise mutual information over
// column contexts, folded into a fixed dimension by a deterministic
// random projection). The substitution preserves the property the
// discovery and integration algorithms rely on: values drawn from the
// same semantic domain embed close together.
package embed

import (
	"hash/fnv"
	"math"

	"golake/internal/sketch"
)

// Model maps values to dense vectors of dimension Dim.
type Model struct {
	Dim int

	// cooc[value][context] counts how often value appeared in a column
	// whose context (column identifier) is context.
	cooc       map[string]map[int]float64
	contextCnt []float64
	total      float64
	vecCache   map[string][]float64
}

// NewModel creates an empty model with the given output dimension
// (default 64 when dim <= 0).
func NewModel(dim int) *Model {
	if dim <= 0 {
		dim = 64
	}
	return &Model{
		Dim:      dim,
		cooc:     map[string]map[int]float64{},
		vecCache: map[string][]float64{},
	}
}

// AddColumn feeds one column of values into the co-occurrence model.
// Each column is one context; tokens inside values share that context.
func (m *Model) AddColumn(values []string) {
	ctx := len(m.contextCnt)
	m.contextCnt = append(m.contextCnt, 0)
	for _, v := range values {
		for _, tok := range sketch.Tokenize(v) {
			row := m.cooc[tok]
			if row == nil {
				row = map[int]float64{}
				m.cooc[tok] = row
			}
			row[ctx]++
			m.contextCnt[ctx]++
			m.total++
		}
	}
	// New data invalidates cached vectors.
	m.vecCache = map[string][]float64{}
}

// Vector returns the embedding of a single token (lowercased). Unknown
// tokens get a deterministic hash-based vector so that equal unknown
// strings still match each other.
func (m *Model) Vector(token string) []float64 {
	toks := sketch.Tokenize(token)
	if len(toks) == 1 {
		return m.tokenVector(toks[0])
	}
	// Multi-token values average their token vectors.
	out := make([]float64, m.Dim)
	if len(toks) == 0 {
		return out
	}
	for _, t := range toks {
		v := m.tokenVector(t)
		for i := range out {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(toks))
	}
	return out
}

func (m *Model) tokenVector(tok string) []float64 {
	if v, ok := m.vecCache[tok]; ok {
		return v
	}
	row, known := m.cooc[tok]
	out := make([]float64, m.Dim)
	if !known || m.total == 0 {
		out = hashVector(tok, m.Dim)
		m.vecCache[tok] = out
		return out
	}
	// PPMI weights folded through a deterministic random projection:
	// out += ppmi(tok, ctx) * proj(ctx).
	var rowSum float64
	for _, c := range row {
		rowSum += c
	}
	for ctx, c := range row {
		pxy := c / m.total
		px := rowSum / m.total
		py := m.contextCnt[ctx] / m.total
		if px == 0 || py == 0 {
			continue
		}
		pmi := math.Log(pxy / (px * py))
		if pmi <= 0 {
			continue
		}
		p := projection(ctx, m.Dim)
		for i := range out {
			out[i] += pmi * p[i]
		}
	}
	normalize(out)
	if isZero(out) {
		// PPMI degenerates (e.g. a token spread evenly over every
		// context, or a single-context model). Fall back to the hash
		// vector so identical values still embed identically.
		out = hashVector(tok, m.Dim)
	}
	m.vecCache[tok] = out
	return out
}

// hashVector is a deterministic pseudo-random unit vector derived from
// the token bytes, used when no distributional signal is available.
func hashVector(tok string, dim int) []float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(tok))
	x := h.Sum64() | 1
	out := make([]float64, dim)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = float64(int64(x%2000)-1000) / 1000.0
	}
	normalize(out)
	return out
}

func isZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// ColumnVector embeds a whole column as the normalized mean of its
// value vectors. This is how D3L and ALITE summarize attributes.
func (m *Model) ColumnVector(values []string) []float64 {
	out := make([]float64, m.Dim)
	n := 0
	for _, v := range values {
		vec := m.Vector(v)
		for i := range out {
			out[i] += vec[i]
		}
		n++
	}
	if n > 0 {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	normalize(out)
	return out
}

// Similarity is the cosine similarity of the two embeddings.
func (m *Model) Similarity(a, b string) float64 {
	return sketch.Cosine(m.Vector(a), m.Vector(b))
}

// projection returns a deterministic ±1/sqrt(dim) random projection row
// for a context id (sparse Achlioptas-style projection).
func projection(ctx, dim int) []float64 {
	out := make([]float64, dim)
	x := uint64(ctx)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	scale := 1 / math.Sqrt(float64(dim))
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if x&1 == 0 {
			out[i] = scale
		} else {
			out[i] = -scale
		}
	}
	return out
}

func normalize(v []float64) {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	if ss == 0 {
		return
	}
	n := math.Sqrt(ss)
	for i := range v {
		v[i] /= n
	}
}
