package metamodel

import (
	"errors"
	"testing"
	"time"

	"golake/internal/extract"
	"golake/internal/table"
)

func sampleObject(t *testing.T) *MetadataObject {
	t.Helper()
	md, err := extract.Extract("raw/orders.csv", []byte("id,total,city\n1,9.5,berlin\n2,3.0,paris\n"))
	if err != nil {
		t.Fatal(err)
	}
	return FromExtraction(md)
}

func TestGEMMSRegisterAndFind(t *testing.T) {
	m := NewGEMMS()
	obj := sampleObject(t)
	m.Register(obj)
	got, err := m.Object("raw/orders.csv")
	if err != nil {
		t.Fatal(err)
	}
	if got.Attributes["total"] != "float" {
		t.Errorf("attribute type = %q", got.Attributes["total"])
	}
	if ids := m.FindByProperty("format", "csv"); len(ids) != 1 {
		t.Errorf("FindByProperty = %v", ids)
	}
	if ids := m.FindByAttribute("city"); len(ids) != 1 {
		t.Errorf("FindByAttribute = %v", ids)
	}
	if ids := m.FindByAttribute("ghost"); len(ids) != 0 {
		t.Errorf("FindByAttribute ghost = %v", ids)
	}
	if _, err := m.Object("nope"); !errors.Is(err, ErrNoObject) {
		t.Errorf("Object missing = %v", err)
	}
}

func TestGEMMSAnnotateAndSemanticSearch(t *testing.T) {
	m := NewGEMMS()
	m.Register(sampleObject(t))
	if err := m.Annotate("raw/orders.csv", "city", "schema.org/City"); err != nil {
		t.Fatal(err)
	}
	if ids := m.FindBySemantic("schema.org/City"); len(ids) != 1 {
		t.Errorf("FindBySemantic = %v", ids)
	}
	if err := m.Annotate("ghost", "", "x"); !errors.Is(err, ErrNoObject) {
		t.Errorf("Annotate missing = %v", err)
	}
}

func TestHANDLEZonesAndMetadata(t *testing.T) {
	h := NewHANDLE()
	if err := h.AddData("ds1", "raw"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddData("ds2", "curated"); err != nil {
		t.Fatal(err)
	}
	z, err := h.Zone("ds1")
	if err != nil || z != "raw" {
		t.Errorf("Zone = %q, %v", z, err)
	}
	if err := h.MoveZone("ds1", "curated"); err != nil {
		t.Fatal(err)
	}
	if got := h.DataInZone("curated"); len(got) != 2 {
		t.Errorf("DataInZone = %v", got)
	}
	mid, err := h.AttachMetadata("ds1", "provenance")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetProperty(mid, "source", "sensor-17"); err != nil {
		t.Fatal(err)
	}
	entries := h.MetadataOf("ds1")
	if len(entries) != 1 || entries[0].Category != "provenance" {
		t.Fatalf("MetadataOf = %+v", entries)
	}
	if entries[0].Props["source"] != "sensor-17" {
		t.Errorf("props = %v", entries[0].Props)
	}
	if _, err := h.AttachMetadata("ghost", "x"); err == nil {
		t.Error("AttachMetadata on missing data should fail")
	}
}

func TestHANDLEImportGEMMS(t *testing.T) {
	h := NewHANDLE()
	obj := sampleObject(t)
	obj.Semantics["city"] = []string{"schema.org/City"}
	if err := h.ImportGEMMS(obj, "raw"); err != nil {
		t.Fatal(err)
	}
	// Dataset node plus one element node per attribute.
	if got := h.DataInZone("raw"); len(got) != 1 {
		t.Errorf("DataInZone = %v", got)
	}
	md := h.MetadataOf(obj.ID)
	if len(md) == 0 {
		t.Fatal("no metadata imported")
	}
	// Attribute-level schema metadata exists at fine granularity.
	attrMD := h.MetadataOf(obj.ID + "#total")
	if len(attrMD) != 1 || attrMD[0].Props["type"] != "float" {
		t.Errorf("attribute metadata = %+v", attrMD)
	}
	cityMD := h.MetadataOf(obj.ID + "#city")
	foundSem := false
	for _, e := range cityMD {
		if e.Category == "semantics" {
			foundSem = true
		}
	}
	if !foundSem {
		t.Errorf("city semantics missing: %+v", cityMD)
	}
}

func TestVaultLoadAndRelational(t *testing.T) {
	v := NewVault()
	orders, _ := table.ParseCSV("orders", "order_id,customer,total\no1,alice,9.5\no2,bob,3.0\n")
	custs, _ := table.ParseCSV("customers", "cust_id,city\nalice,berlin\nbob,paris\n")
	if err := v.LoadTable(orders, "order_id"); err != nil {
		t.Fatal(err)
	}
	if err := v.LoadTable(custs, "cust_id"); err != nil {
		t.Fatal(err)
	}
	if err := v.LinkHubs("placed", "customers", "alice", "orders", "o1"); err != nil {
		t.Fatal(err)
	}
	hub, ok := v.Hub("orders")
	if !ok || len(hub.Keys) != 2 {
		t.Fatalf("hub = %+v", hub)
	}
	sat, ok := v.Satellite("orders_sat")
	if !ok || len(sat.Attributes) != 2 {
		t.Fatalf("satellite = %+v", sat)
	}
	rel := v.ToRelational()
	// 2 hubs + 1 link + 2 satellites = 5 tables.
	if len(rel) != 5 {
		t.Fatalf("relational tables = %d, want 5", len(rel))
	}
	names := map[string]bool{}
	for _, tb := range rel {
		names[tb.Name] = true
	}
	for _, want := range []string{"hub_orders", "hub_customers", "link_placed", "sat_orders_sat", "sat_customers_sat"} {
		if !names[want] {
			t.Errorf("missing table %s in %v", want, names)
		}
	}
}

func TestVaultIncrementalLoadIdempotentKeys(t *testing.T) {
	v := NewVault()
	t1, _ := table.ParseCSV("d", "k,v\na,1\nb,2\n")
	t2, _ := table.ParseCSV("d", "k,v\nb,20\nc,3\n")
	_ = v.LoadTable(t1, "k")
	_ = v.LoadTable(t2, "k")
	hub, _ := v.Hub("d")
	if len(hub.Keys) != 3 {
		t.Errorf("keys = %v, want 3 distinct", hub.Keys)
	}
	sat, _ := v.Satellite("d_sat")
	if sat.Rows["b"][0] != "20" {
		t.Errorf("satellite latest value = %v, want 20", sat.Rows["b"])
	}
}

func TestVaultErrors(t *testing.T) {
	v := NewVault()
	t1, _ := table.ParseCSV("d", "k,v\na,1\n")
	if err := v.LoadTable(t1, "ghost"); err == nil {
		t.Error("unknown key column should fail")
	}
	_ = v.LoadTable(t1, "k")
	if err := v.LoadTable(t1, "v"); err == nil {
		t.Error("re-keying a hub should fail")
	}
	if err := v.LinkHubs("l", "d", "a", "ghost", "x"); err == nil {
		t.Error("link to unknown hub should fail")
	}
}

func TestEKGRelateAndNeighbors(t *testing.T) {
	g := NewEKG()
	a := ColumnRef{"t1", "id"}
	b := ColumnRef{"t2", "user_id"}
	c := ColumnRef{"t3", "uid"}
	g.Relate(a, b, "content", 0.9)
	g.Relate(a, c, "content", 0.4)
	g.Relate(a, b, "pkfk", 0.95)
	if g.NumColumns() != 3 {
		t.Errorf("columns = %d", g.NumColumns())
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	nbs := g.Neighbors(a, "content", 0)
	if len(nbs) != 2 || Other(nbs[0], a) != b {
		t.Errorf("neighbors = %+v", nbs)
	}
	if nbs := g.Neighbors(a, "content", 0.5); len(nbs) != 1 {
		t.Errorf("weight-filtered neighbors = %+v", nbs)
	}
	// Updating an edge keeps one edge.
	g.Relate(a, b, "content", 0.7)
	if g.NumEdges() != 3 {
		t.Errorf("edges after update = %d", g.NumEdges())
	}
}

func TestEKGRemoveRelations(t *testing.T) {
	g := NewEKG()
	a, b := ColumnRef{"t1", "x"}, ColumnRef{"t2", "y"}
	g.Relate(a, b, "content", 0.8)
	g.RemoveRelations(a)
	if g.NumEdges() != 0 {
		t.Errorf("edges = %d after remove", g.NumEdges())
	}
	if nbs := g.Neighbors(b, "", 0); len(nbs) != 0 {
		t.Errorf("stale adjacency: %+v", nbs)
	}
}

func TestEKGPathBetween(t *testing.T) {
	g := NewEKG()
	a, b, c := ColumnRef{"t1", "a"}, ColumnRef{"t2", "b"}, ColumnRef{"t3", "c"}
	g.Relate(a, b, "content", 0.9)
	g.Relate(b, c, "content", 0.9)
	path := g.PathBetween(a, c, 0.5)
	if len(path) != 3 || path[1] != b {
		t.Errorf("path = %v", path)
	}
	if p := g.PathBetween(a, c, 0.95); p != nil {
		t.Errorf("high-threshold path = %v, want nil", p)
	}
	if p := g.PathBetween(a, a, 0); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
	if p := g.PathBetween(a, ColumnRef{"ghost", "x"}, 0); p != nil {
		t.Errorf("missing node path = %v", p)
	}
}

func TestEKGHyperedgesAndTableQuery(t *testing.T) {
	g := NewEKG()
	t1a, t1b := ColumnRef{"t1", "a"}, ColumnRef{"t1", "b"}
	t2a := ColumnRef{"t2", "a"}
	t3a := ColumnRef{"t3", "a"}
	g.AddHyperedge("t1", []ColumnRef{t1a, t1b})
	g.AddHyperedge("t2", []ColumnRef{t2a})
	g.AddHyperedge("t3", []ColumnRef{t3a})
	g.Relate(t1a, t2a, "content", 0.9)
	g.Relate(t1b, t3a, "content", 0.3)
	got := g.TablesRelated("t1", 0.2)
	if len(got) != 2 || got[0].Table != "t2" || got[1].Table != "t3" {
		t.Errorf("TablesRelated = %+v", got)
	}
	if got := g.TablesRelated("t1", 0.5); len(got) != 1 {
		t.Errorf("filtered TablesRelated = %+v", got)
	}
	if got := g.TablesRelated("ghost", 0); got != nil {
		t.Errorf("missing hyperedge = %+v", got)
	}
	if members, ok := g.Hyperedge("t1"); !ok || len(members) != 2 {
		t.Errorf("Hyperedge = %v, %v", members, ok)
	}
	if names := g.Hyperedges(); len(names) != 3 {
		t.Errorf("Hyperedges = %v", names)
	}
}

func TestGoldmdFeatures(t *testing.T) {
	now := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	m := NewGoldmd(func() time.Time { return now })
	if err := m.AddDataset("d1"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDataset("d2"); err != nil {
		t.Fatal(err)
	}
	// Semantic enrichment.
	_ = m.Enrich("d1", "iot")
	_ = m.Enrich("d1", "sensor")
	if tags := m.Tags("d1"); len(tags) != 2 || tags[0] != "iot" {
		t.Errorf("Tags = %v", tags)
	}
	// Indexing.
	m.Index("d1", "temperature", "berlin")
	m.Index("d2", "berlin")
	if got := m.Search("berlin"); len(got) != 2 {
		t.Errorf("Search = %v", got)
	}
	if got := m.Search("ghost"); len(got) != 0 {
		t.Errorf("Search ghost = %v", got)
	}
	// Links.
	if err := m.LinkSimilar("d1", "d2", 0.8); err != nil {
		t.Fatal(err)
	}
	if got := m.SimilarTo("d2"); len(got) != 1 || got[0] != "d1" {
		t.Errorf("SimilarTo = %v", got)
	}
	// Polymorphism.
	_ = m.AddRepresentation("d1", "d1-clean", "cleaned")
	_ = m.AddRepresentation("d1", "d1-agg", "aggregated")
	if got := m.Representations("d1"); len(got) != 2 {
		t.Errorf("Representations = %v", got)
	}
	// Versioning.
	v1, _ := m.AddVersion("d1")
	v2, _ := m.AddVersion("d1")
	if v1 != 1 || v2 != 2 {
		t.Errorf("versions = %d, %d", v1, v2)
	}
	if got := m.Versions("d1"); len(got) != 2 || got[1] != 2 {
		t.Errorf("Versions = %v", got)
	}
	// Usage tracking.
	_ = m.LogUsage("d1", "alice", "query")
	_ = m.LogUsage("d1", "bob", "export")
	if got := m.UsageCount("d1"); got != 2 {
		t.Errorf("UsageCount = %d", got)
	}
}
