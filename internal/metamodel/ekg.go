package metamodel

import (
	"fmt"
	"sort"
	"sync"
)

// EKG is Aurum's enterprise knowledge graph (Sec. 5.2.3/6.2.1): a
// hypergraph whose nodes are dataset attributes (columns), whose
// weighted edges record relationships between columns (content
// similarity, PK-FK candidates), and whose hyperedges group arbitrary
// node sets at coarser granularity (most commonly: all columns of one
// table).
type EKG struct {
	mu         sync.RWMutex
	nodes      map[ColumnRef]bool
	edges      map[ekgKey]*EKGEdge
	adj        map[ColumnRef][]ekgKey
	hyperedges map[string][]ColumnRef
}

// ColumnRef identifies one attribute of one dataset.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders "table.column".
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// EKGEdge is a weighted, labeled relationship between two columns.
type EKGEdge struct {
	A, B   ColumnRef
	Label  string
	Weight float64
}

type ekgKey struct {
	a, b  ColumnRef
	label string
}

func newKey(a, b ColumnRef, label string) ekgKey {
	if b.Table < a.Table || (b.Table == a.Table && b.Column < a.Column) {
		a, b = b, a
	}
	return ekgKey{a: a, b: b, label: label}
}

// NewEKG creates an empty enterprise knowledge graph.
func NewEKG() *EKG {
	return &EKG{
		nodes:      map[ColumnRef]bool{},
		edges:      map[ekgKey]*EKGEdge{},
		adj:        map[ColumnRef][]ekgKey{},
		hyperedges: map[string][]ColumnRef{},
	}
}

// AddColumn registers a column node.
func (g *EKG) AddColumn(ref ColumnRef) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nodes[ref] = true
}

// NumColumns returns the node count.
func (g *EKG) NumColumns() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the edge count.
func (g *EKG) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// Relate adds (or updates) an undirected weighted edge between two
// columns; both endpoints are registered implicitly.
func (g *EKG) Relate(a, b ColumnRef, label string, weight float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nodes[a] = true
	g.nodes[b] = true
	k := newKey(a, b, label)
	if e, ok := g.edges[k]; ok {
		e.Weight = weight
		return
	}
	g.edges[k] = &EKGEdge{A: k.a, B: k.b, Label: label, Weight: weight}
	g.adj[a] = append(g.adj[a], k)
	g.adj[b] = append(g.adj[b], k)
}

// RemoveRelations drops all edges incident to a column (Aurum refreshes
// a column's edges when its data drifts past the update threshold).
func (g *EKG) RemoveRelations(ref ColumnRef) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, k := range g.adj[ref] {
		delete(g.edges, k)
		other := k.a
		if other == ref {
			other = k.b
		}
		g.adj[other] = removeKey(g.adj[other], k)
	}
	delete(g.adj, ref)
}

func removeKey(list []ekgKey, k ekgKey) []ekgKey {
	for i, x := range list {
		if x == k {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Neighbors returns the edges incident to ref with the given label
// ("" = any) and weight >= minWeight, sorted by descending weight.
func (g *EKG) Neighbors(ref ColumnRef, label string, minWeight float64) []EKGEdge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []EKGEdge
	seen := map[ekgKey]bool{}
	for _, k := range g.adj[ref] {
		if seen[k] {
			continue
		}
		seen[k] = true
		e, ok := g.edges[k]
		if !ok {
			continue
		}
		if label != "" && e.Label != label {
			continue
		}
		if e.Weight < minWeight {
			continue
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return other(out[i], ref).String() < other(out[j], ref).String()
	})
	return out
}

func other(e EKGEdge, ref ColumnRef) ColumnRef {
	if e.A == ref {
		return e.B
	}
	return e.A
}

// Other returns the endpoint of e that is not ref.
func Other(e EKGEdge, ref ColumnRef) ColumnRef { return other(e, ref) }

// AddHyperedge groups a set of columns under a name (e.g. a table
// grouping all its columns, or a user-defined topic).
func (g *EKG) AddHyperedge(name string, members []ColumnRef) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cp := append([]ColumnRef(nil), members...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].String() < cp[j].String() })
	g.hyperedges[name] = cp
	for _, m := range cp {
		g.nodes[m] = true
	}
}

// Hyperedge returns the members of a named hyperedge.
func (g *EKG) Hyperedge(name string) ([]ColumnRef, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m, ok := g.hyperedges[name]
	if !ok {
		return nil, false
	}
	return append([]ColumnRef(nil), m...), true
}

// Hyperedges lists hyperedge names, sorted.
func (g *EKG) Hyperedges() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.hyperedges))
	for n := range g.hyperedges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PathBetween finds a shortest chain of related columns from a to b
// following edges with weight >= minWeight — Aurum's discovery path
// primitive.
func (g *EKG) PathBetween(a, b ColumnRef, minWeight float64) []ColumnRef {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if !g.nodes[a] || !g.nodes[b] {
		return nil
	}
	if a == b {
		return []ColumnRef{a}
	}
	prev := map[ColumnRef]ColumnRef{a: a}
	queue := []ColumnRef{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var nbs []ColumnRef
		for _, k := range g.adj[cur] {
			e, ok := g.edges[k]
			if !ok || e.Weight < minWeight {
				continue
			}
			nbs = append(nbs, other(*e, cur))
		}
		sort.Slice(nbs, func(i, j int) bool { return nbs[i].String() < nbs[j].String() })
		for _, nb := range nbs {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == b {
				return buildRefPath(prev, a, b)
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

func buildRefPath(prev map[ColumnRef]ColumnRef, a, b ColumnRef) []ColumnRef {
	var rev []ColumnRef
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	out := make([]ColumnRef, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// TablesRelated returns, for a query table's hyperedge, the tables
// reachable through at least one column edge with weight >= minWeight,
// with the strongest edge weight per table, sorted descending.
func (g *EKG) TablesRelated(tableName string, minWeight float64) []TableScore {
	members, ok := g.Hyperedge(tableName)
	if !ok {
		return nil
	}
	best := map[string]float64{}
	for _, col := range members {
		for _, e := range g.Neighbors(col, "", minWeight) {
			o := other(e, col)
			if o.Table == tableName {
				continue
			}
			if e.Weight > best[o.Table] {
				best[o.Table] = e.Weight
			}
		}
	}
	out := make([]TableScore, 0, len(best))
	for t, w := range best {
		out = append(out, TableScore{Table: t, Score: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table < out[j].Table
	})
	return out
}

// TableScore is a ranked related-table result.
type TableScore struct {
	Table string
	Score float64
}

// String renders "table(0.87)".
func (s TableScore) String() string { return fmt.Sprintf("%s(%.2f)", s.Table, s.Score) }
