package metamodel

import (
	"fmt"
	"sort"
	"time"

	"golake/internal/storage/graphstore"
)

// Goldmd implements the evolution-oriented metadata model of Sawadogo
// et al. (Sec. 5.2.3): an attributed graph covering their six metadata
// management features — semantic enrichment (tags), data indexing
// (term index), link generation (similarity/parent-child edges), data
// polymorphism (multiple transformed representations of one dataset),
// data versioning, and usage tracking (logs).
type Goldmd struct {
	g *graphstore.Graph
	// termIndex maps an index term to dataset IDs.
	termIndex map[string][]string
	clock     func() time.Time
}

// NewGoldmd creates an empty model. clock may be nil (wall clock).
func NewGoldmd(clock func() time.Time) *Goldmd {
	if clock == nil {
		clock = time.Now
	}
	return &Goldmd{g: graphstore.New(), termIndex: map[string][]string{}, clock: clock}
}

// AddDataset registers a dataset node.
func (m *Goldmd) AddDataset(id string) error {
	return m.g.AddNode("ds:"+id, "dataset", graphstore.Props{"created": m.clock()})
}

// Enrich attaches a semantic tag to a dataset (feature: semantic
// enrichment).
func (m *Goldmd) Enrich(id, tag string) error {
	tid := "tag:" + tag
	if !m.g.HasNode(tid) {
		_ = m.g.AddNode(tid, "tag", nil)
	}
	_, err := m.g.AddEdge("ds:"+id, tid, "taggedWith", nil)
	return err
}

// Tags returns the semantic tags of a dataset, sorted.
func (m *Goldmd) Tags(id string) []string {
	var out []string
	for _, nb := range m.g.Neighbors("ds:"+id, graphstore.Out, "taggedWith") {
		out = append(out, nb[len("tag:"):])
	}
	sort.Strings(out)
	return out
}

// Index adds a term to the keyword index for a dataset (feature: data
// indexing).
func (m *Goldmd) Index(id string, terms ...string) {
	for _, t := range terms {
		m.termIndex[t] = append(m.termIndex[t], id)
	}
}

// Search returns dataset IDs indexed under the term, sorted and
// deduplicated.
func (m *Goldmd) Search(term string) []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range m.termIndex[term] {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// LinkSimilar records a similarity link between two datasets (feature:
// link generation and conservation).
func (m *Goldmd) LinkSimilar(a, b string, similarity float64) error {
	_, err := m.g.AddEdge("ds:"+a, "ds:"+b, "similarTo", graphstore.Props{"sim": similarity})
	return err
}

// SimilarTo returns datasets linked as similar to id (either
// direction), sorted.
func (m *Goldmd) SimilarTo(id string) []string {
	nbs := m.g.Neighbors("ds:"+id, graphstore.Both, "similarTo")
	out := make([]string, 0, len(nbs))
	for _, nb := range nbs {
		out = append(out, nb[len("ds:"):])
	}
	sort.Strings(out)
	return out
}

// AddRepresentation records a transformed form of a dataset (feature:
// data polymorphism), e.g. a cleaned or aggregated copy.
func (m *Goldmd) AddRepresentation(id, repID, kind string) error {
	rid := "rep:" + repID
	if err := m.g.AddNode(rid, "representation", graphstore.Props{"kind": kind}); err != nil {
		return err
	}
	_, err := m.g.AddEdge(rid, "ds:"+id, "representationOf", nil)
	return err
}

// Representations lists the representation IDs of a dataset, sorted.
func (m *Goldmd) Representations(id string) []string {
	nbs := m.g.Neighbors("ds:"+id, graphstore.In, "representationOf")
	out := make([]string, 0, len(nbs))
	for _, nb := range nbs {
		out = append(out, nb[len("rep:"):])
	}
	sort.Strings(out)
	return out
}

// AddVersion appends a new version node to a dataset's version chain
// (feature: data versioning) and returns the version number.
func (m *Goldmd) AddVersion(id string) (int, error) {
	versions := m.Versions(id)
	n := len(versions) + 1
	vid := fmt.Sprintf("ver:%s:%d", id, n)
	if err := m.g.AddNode(vid, "version", graphstore.Props{"n": n, "at": m.clock()}); err != nil {
		return 0, err
	}
	if _, err := m.g.AddEdge(vid, "ds:"+id, "versionOf", nil); err != nil {
		return 0, err
	}
	return n, nil
}

// Versions returns the version numbers of a dataset in order.
func (m *Goldmd) Versions(id string) []int {
	var out []int
	for _, e := range m.g.InEdges("ds:" + id) {
		if e.Label != "versionOf" {
			continue
		}
		n, err := m.g.Node(e.From)
		if err != nil {
			continue
		}
		if v, ok := n.Props["n"].(int); ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// LogUsage appends a usage event for a dataset (feature: usage
// tracking).
func (m *Goldmd) LogUsage(id, user, action string) error {
	lid := fmt.Sprintf("log:%s:%d", id, m.g.NumNodes())
	if err := m.g.AddNode(lid, "log", graphstore.Props{"user": user, "action": action, "at": m.clock()}); err != nil {
		return err
	}
	_, err := m.g.AddEdge(lid, "ds:"+id, "usageOf", nil)
	return err
}

// UsageCount returns the number of logged usage events for a dataset.
func (m *Goldmd) UsageCount(id string) int {
	n := 0
	for _, e := range m.g.InEdges("ds:" + id) {
		if e.Label == "usageOf" {
			n++
		}
	}
	return n
}
