package metamodel

import (
	"fmt"
	"sort"

	"golake/internal/table"
)

// The data vault conceptual model (Sec. 5.2.2): hubs carry business
// keys, links carry many-to-many relationships between hubs, and
// satellites carry descriptive attributes of hubs or links. Nogueira et
// al. show the conceptual model transforms into relational and
// document-oriented logical models; ToRelational implements the
// relational transformation.

// Hub represents a business concept identified by a business key.
type Hub struct {
	Name string
	// BusinessKey is the attribute holding the concept's identifier.
	BusinessKey string
	// Keys are the distinct business key values loaded so far.
	Keys []string
}

// Link is a many-to-many relationship among hubs.
type Link struct {
	Name string
	Hubs []string
	// Rows are tuples of business keys, one per linked hub.
	Rows [][]string
}

// Satellite holds descriptive attributes for a hub.
type Satellite struct {
	Name string
	Hub  string
	// Attributes are the descriptive column names.
	Attributes []string
	// Rows map: business key -> attribute values (latest load wins).
	Rows map[string][]string
}

// Vault is a data vault model instance.
type Vault struct {
	hubs       map[string]*Hub
	links      map[string]*Link
	satellites map[string]*Satellite
}

// NewVault creates an empty vault.
func NewVault() *Vault {
	return &Vault{
		hubs:       map[string]*Hub{},
		links:      map[string]*Link{},
		satellites: map[string]*Satellite{},
	}
}

// LoadTable models one table into the vault: a hub on keyCol, plus a
// satellite with the remaining columns. Re-loading appends new keys
// (idempotent for existing ones) — the incremental loading pattern
// Giebler et al. describe for manufacturing data.
func (v *Vault) LoadTable(t *table.Table, keyCol string) error {
	kc, err := t.Column(keyCol)
	if err != nil {
		return err
	}
	hub, ok := v.hubs[t.Name]
	if !ok {
		hub = &Hub{Name: t.Name, BusinessKey: keyCol}
		v.hubs[t.Name] = hub
	}
	if hub.BusinessKey != keyCol {
		return fmt.Errorf("metamodel: hub %s keyed on %s, not %s", t.Name, hub.BusinessKey, keyCol)
	}
	known := map[string]bool{}
	for _, k := range hub.Keys {
		known[k] = true
	}
	satName := t.Name + "_sat"
	sat, ok := v.satellites[satName]
	if !ok {
		var attrs []string
		for _, c := range t.Columns {
			if c.Name != keyCol {
				attrs = append(attrs, c.Name)
			}
		}
		sat = &Satellite{Name: satName, Hub: t.Name, Attributes: attrs, Rows: map[string][]string{}}
		v.satellites[satName] = sat
	}
	for i := 0; i < t.NumRows(); i++ {
		key := kc.Cells[i]
		if key == "" {
			continue
		}
		if !known[key] {
			hub.Keys = append(hub.Keys, key)
			known[key] = true
		}
		var vals []string
		for _, attr := range sat.Attributes {
			c, err := t.Column(attr)
			if err != nil {
				return err
			}
			vals = append(vals, c.Cells[i])
		}
		sat.Rows[key] = vals
	}
	return nil
}

// LinkHubs records a relationship tuple between two hubs.
func (v *Vault) LinkHubs(name, hubA, keyA, hubB, keyB string) error {
	if _, ok := v.hubs[hubA]; !ok {
		return fmt.Errorf("metamodel: unknown hub %s", hubA)
	}
	if _, ok := v.hubs[hubB]; !ok {
		return fmt.Errorf("metamodel: unknown hub %s", hubB)
	}
	l, ok := v.links[name]
	if !ok {
		l = &Link{Name: name, Hubs: []string{hubA, hubB}}
		v.links[name] = l
	}
	l.Rows = append(l.Rows, []string{keyA, keyB})
	return nil
}

// Hub returns a hub by name.
func (v *Vault) Hub(name string) (*Hub, bool) {
	h, ok := v.hubs[name]
	return h, ok
}

// Satellite returns a satellite by name.
func (v *Vault) Satellite(name string) (*Satellite, bool) {
	s, ok := v.satellites[name]
	return s, ok
}

// Link returns a link by name.
func (v *Vault) Link(name string) (*Link, bool) {
	l, ok := v.links[name]
	return l, ok
}

// ToRelational renders the vault as relational tables: one table per
// hub (key column), per link (one column per hub), and per satellite
// (key + attributes) — the physical-model transformation of Nogueira
// et al.
func (v *Vault) ToRelational() []*table.Table {
	var out []*table.Table
	hubNames := sortedKeys(v.hubs)
	for _, hn := range hubNames {
		h := v.hubs[hn]
		rows := make([][]string, len(h.Keys))
		for i, k := range h.Keys {
			rows[i] = []string{k}
		}
		t, _ := table.FromRows("hub_"+h.Name, []string{h.BusinessKey}, rows)
		out = append(out, t)
	}
	for _, ln := range sortedKeys(v.links) {
		l := v.links[ln]
		t, _ := table.FromRows("link_"+l.Name, l.Hubs, l.Rows)
		out = append(out, t)
	}
	for _, sn := range sortedKeys(v.satellites) {
		s := v.satellites[sn]
		hub := v.hubs[s.Hub]
		header := append([]string{hub.BusinessKey}, s.Attributes...)
		var rows [][]string
		for _, k := range hub.Keys {
			if vals, ok := s.Rows[k]; ok {
				rows = append(rows, append([]string{k}, vals...))
			}
		}
		t, _ := table.FromRows("sat_"+s.Name, header, rows)
		out = append(out, t)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
