package metamodel

import (
	"fmt"
	"sort"

	"golake/internal/storage/graphstore"
)

// HANDLE implements the HANDLE generic metadata model (Eichler et al.):
// three abstract entities — data, metadata, property — realized as a
// labeled property graph, with zone assignment (HANDLE adapts the zone
// architecture) and metadata at arbitrary granularity (whole dataset or
// single attribute).
type HANDLE struct {
	g *graphstore.Graph
}

// Node labels and edge labels of the HANDLE graph realization.
const (
	handleData     = "data"
	handleMetadata = "metadata"
	handleProperty = "property"

	edgeDescribes   = "describes"
	edgeHasProperty = "hasProperty"
	edgePartOf      = "partOf"
)

// NewHANDLE creates an empty HANDLE model on a fresh graph.
func NewHANDLE() *HANDLE { return &HANDLE{g: graphstore.New()} }

// Graph exposes the underlying property graph (HANDLE is "implemented
// in Neo4j" in the paper; ours lives on graphstore).
func (h *HANDLE) Graph() *graphstore.Graph { return h.g }

// AddData registers a data entity (dataset) in a zone.
func (h *HANDLE) AddData(id, zone string) error {
	return h.g.AddNode(dataID(id), handleData, graphstore.Props{"zone": zone})
}

// AddDataElement registers a finer-grained data entity (e.g. one
// attribute) belonging to a parent dataset — HANDLE's granularity
// feature.
func (h *HANDLE) AddDataElement(parentID, elementID string) error {
	id := dataID(parentID + "#" + elementID)
	if err := h.g.AddNode(id, handleData, graphstore.Props{"element": elementID}); err != nil {
		return err
	}
	_, err := h.g.AddEdge(id, dataID(parentID), edgePartOf, nil)
	return err
}

// AttachMetadata creates a metadata entity describing a data entity
// (dataset or element) and returns the metadata node ID. Category is
// free-form ("schema", "provenance", ...), matching HANDLE's
// categorization flexibility.
func (h *HANDLE) AttachMetadata(dataNodeID, category string) (string, error) {
	target := dataID(dataNodeID)
	if !h.g.HasNode(target) {
		return "", fmt.Errorf("%w: %s", graphstore.ErrNodeNotFound, dataNodeID)
	}
	mid := fmt.Sprintf("md:%s:%s:%d", dataNodeID, category, h.g.NumNodes())
	if err := h.g.AddNode(mid, handleMetadata, graphstore.Props{"category": category}); err != nil {
		return "", err
	}
	if _, err := h.g.AddEdge(mid, target, edgeDescribes, nil); err != nil {
		return "", err
	}
	return mid, nil
}

// SetProperty attaches a property (key-value) entity to a metadata
// entity.
func (h *HANDLE) SetProperty(metadataID, key string, value any) error {
	pid := fmt.Sprintf("prop:%s:%s", metadataID, key)
	h.g.UpsertNode(pid, handleProperty, graphstore.Props{"key": key, "value": value})
	if _, err := h.g.AddEdge(metadataID, pid, edgeHasProperty, nil); err != nil {
		return err
	}
	return nil
}

// Zone returns the zone of a dataset.
func (h *HANDLE) Zone(id string) (string, error) {
	n, err := h.g.Node(dataID(id))
	if err != nil {
		return "", err
	}
	z, _ := n.Props["zone"].(string)
	return z, nil
}

// MoveZone reassigns a dataset's zone (datasets progress through zones
// as they are cleaned and validated).
func (h *HANDLE) MoveZone(id, zone string) error {
	return h.g.SetProp(dataID(id), "zone", zone)
}

// DataInZone lists dataset IDs in a zone, sorted.
func (h *HANDLE) DataInZone(zone string) []string {
	var out []string
	for _, n := range h.g.NodesByLabel(handleData) {
		if z, _ := n.Props["zone"].(string); z == zone {
			out = append(out, n.ID[len("data:"):])
		}
	}
	sort.Strings(out)
	return out
}

// Remove deletes a dataset and its whole HANDLE subgraph: the data
// node, its element nodes, every metadata entity describing any of
// them, and those entities' property nodes. Removing an unregistered
// dataset is a no-op.
func (h *HANDLE) Remove(id string) {
	root := dataID(id)
	if !h.g.HasNode(root) {
		return
	}
	// Collect the data nodes first (root + elements), then the metadata
	// and property entities hanging off each.
	data := []string{root}
	for _, e := range h.g.InEdges(root) {
		if e.Label == edgePartOf {
			data = append(data, e.From)
		}
	}
	var doomed []string
	for _, d := range data {
		for _, e := range h.g.InEdges(d) {
			if e.Label != edgeDescribes {
				continue
			}
			for _, pe := range h.g.OutEdges(e.From) {
				if pe.Label == edgeHasProperty {
					doomed = append(doomed, pe.To)
				}
			}
			doomed = append(doomed, e.From)
		}
	}
	for _, n := range append(doomed, data...) {
		_ = h.g.RemoveNode(n)
	}
}

// MetadataEntry is one resolved metadata record with its properties.
type MetadataEntry struct {
	ID       string
	Category string
	Props    map[string]any
}

// MetadataOf returns all metadata entities describing a data entity,
// with their properties resolved, sorted by ID.
func (h *HANDLE) MetadataOf(dataNodeID string) []MetadataEntry {
	var out []MetadataEntry
	for _, e := range h.g.InEdges(dataID(dataNodeID)) {
		if e.Label != edgeDescribes {
			continue
		}
		mn, err := h.g.Node(e.From)
		if err != nil {
			continue
		}
		entry := MetadataEntry{ID: mn.ID, Props: map[string]any{}}
		entry.Category, _ = mn.Props["category"].(string)
		for _, pe := range h.g.OutEdges(mn.ID) {
			if pe.Label != edgeHasProperty {
				continue
			}
			pn, err := h.g.Node(pe.To)
			if err != nil {
				continue
			}
			key, _ := pn.Props["key"].(string)
			entry.Props[key] = pn.Props["value"]
		}
		out = append(out, entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ImportGEMMS maps a GEMMS metadata object onto HANDLE entities — the
// paper notes the GEMMS model elements can be mapped to HANDLE.
func (h *HANDLE) ImportGEMMS(obj *MetadataObject, zone string) error {
	if err := h.AddData(obj.ID, zone); err != nil {
		return err
	}
	mid, err := h.AttachMetadata(obj.ID, "properties")
	if err != nil {
		return err
	}
	for k, v := range obj.Properties {
		if err := h.SetProperty(mid, k, v); err != nil {
			return err
		}
	}
	for attr, typ := range obj.Attributes {
		if err := h.AddDataElement(obj.ID, attr); err != nil {
			return err
		}
		amid, err := h.AttachMetadata(obj.ID+"#"+attr, "schema")
		if err != nil {
			return err
		}
		if err := h.SetProperty(amid, "type", typ); err != nil {
			return err
		}
	}
	for element, terms := range obj.Semantics {
		target := obj.ID
		if element != "" {
			target = obj.ID + "#" + element
		}
		smid, err := h.AttachMetadata(target, "semantics")
		if err != nil {
			return err
		}
		for i, term := range terms {
			if err := h.SetProperty(smid, fmt.Sprintf("term%d", i), term); err != nil {
				return err
			}
		}
	}
	return nil
}

func dataID(id string) string {
	if len(id) >= 5 && id[:5] == "data:" {
		return id
	}
	return "data:" + id
}
