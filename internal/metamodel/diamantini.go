package metamodel

import (
	"sort"

	"golake/internal/sketch"
	"golake/internal/storage/graphstore"
)

// NetworkModel implements the network-based metadata model of
// Diamantini et al. (Sec. 5.2.3): sources contribute nodes for their
// fields (XML/JSON elements, table attributes) with business names and
// descriptions, connected by labeled arcs; nodes are merged across
// sources based on lexical similarity; nodes can be linked to external
// semantic knowledge; and thematic views — subgraphs around a topic of
// business interest, akin to data marts — are extracted on demand.
type NetworkModel struct {
	g *graphstore.Graph
	// merged maps an absorbed node ID to its representative.
	merged map[string]string
}

// NewNetworkModel creates an empty model.
func NewNetworkModel() *NetworkModel {
	return &NetworkModel{g: graphstore.New(), merged: map[string]string{}}
}

// Graph exposes the underlying graph.
func (m *NetworkModel) Graph() *graphstore.Graph { return m.g }

// AddSource contributes a source and its fields: one node per field,
// labeled "field", linked to a "source" node via hasField arcs.
// Descriptions feed the lexical merge.
func (m *NetworkModel) AddSource(source string, fields map[string]string) error {
	sid := "src:" + source
	if !m.g.HasNode(sid) {
		if err := m.g.AddNode(sid, "source", nil); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(fields))
	for f := range fields {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		fid := "field:" + source + "." + f
		if err := m.g.AddNode(fid, "field", graphstore.Props{
			"name":        f,
			"description": fields[f],
			"source":      source,
		}); err != nil {
			return err
		}
		if _, err := m.g.AddEdge(sid, fid, "hasField", nil); err != nil {
			return err
		}
	}
	return nil
}

// resolve follows merge links to the representative node.
func (m *NetworkModel) resolve(id string) string {
	for {
		rep, ok := m.merged[id]
		if !ok {
			return id
		}
		id = rep
	}
}

// MergeSimilar merges field nodes across sources whose names or
// descriptions are lexically similar (Levenshtein and token overlap),
// adding sameAs arcs and electing one representative. Returns the
// number of merges performed.
func (m *NetworkModel) MergeSimilar(minSim float64) (int, error) {
	fields := m.g.NodesByLabel("field")
	merges := 0
	for i := 0; i < len(fields); i++ {
		for j := i + 1; j < len(fields); j++ {
			a, b := fields[i], fields[j]
			if m.resolve(a.ID) == m.resolve(b.ID) {
				continue
			}
			srcA, _ := a.Props["source"].(string)
			srcB, _ := b.Props["source"].(string)
			if srcA == srcB {
				continue // merging happens across sources
			}
			if fieldSimilarity(a, b) < minSim {
				continue
			}
			repA, repB := m.resolve(a.ID), m.resolve(b.ID)
			if _, err := m.g.AddEdge(repB, repA, "sameAs", nil); err != nil {
				return merges, err
			}
			m.merged[repB] = repA
			merges++
		}
	}
	return merges, nil
}

func fieldSimilarity(a, b graphstore.Node) float64 {
	nameA, _ := a.Props["name"].(string)
	nameB, _ := b.Props["name"].(string)
	descA, _ := a.Props["description"].(string)
	descB, _ := b.Props["description"].(string)
	nameSim := sketch.LevenshteinSim(nameA, nameB)
	descSim := sketch.ExactJaccard(
		sketch.ToSet(sketch.Tokenize(descA)),
		sketch.ToSet(sketch.Tokenize(descB)),
	)
	if nameSim > descSim {
		return nameSim
	}
	return descSim
}

// LinkSemantic attaches an external knowledge reference (e.g. a
// DBpedia URI) to a field's representative node.
func (m *NetworkModel) LinkSemantic(source, field, uri string) error {
	id := m.resolve("field:" + source + "." + field)
	return m.g.SetProp(id, "semantic", uri)
}

// ThematicView extracts the subgraph of business interest around a
// topic: every representative field whose name, description or
// semantic link mentions a topic token, plus the sources providing
// it — the survey's "thematic views of interest to the business,
// similar to data marts".
type ThematicView struct {
	Topic   string
	Fields  []string // representative field node IDs
	Sources []string
}

// ExtractView builds the thematic view for a topic.
func (m *NetworkModel) ExtractView(topic string) ThematicView {
	toks := sketch.ToSet(sketch.Tokenize(topic))
	view := ThematicView{Topic: topic}
	seenField := map[string]bool{}
	seenSource := map[string]bool{}
	for _, n := range m.g.NodesByLabel("field") {
		rep := m.resolve(n.ID)
		if seenField[rep] {
			continue
		}
		text := ""
		for _, k := range []string{"name", "description", "semantic"} {
			if v, ok := n.Props[k].(string); ok {
				text += " " + v
			}
		}
		if sketch.Overlap(toks, sketch.ToSet(sketch.Tokenize(text))) == 0 {
			continue
		}
		seenField[rep] = true
		view.Fields = append(view.Fields, rep)
		// Sources of every merged member flow into the view.
		for _, member := range m.membersOf(rep) {
			node, err := m.g.Node(member)
			if err != nil {
				continue
			}
			if src, ok := node.Props["source"].(string); ok && !seenSource[src] {
				seenSource[src] = true
				view.Sources = append(view.Sources, src)
			}
		}
	}
	sort.Strings(view.Fields)
	sort.Strings(view.Sources)
	return view
}

// membersOf returns the representative plus every node merged into it.
func (m *NetworkModel) membersOf(rep string) []string {
	out := []string{rep}
	for id := range m.merged {
		if m.resolve(id) == rep {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Representatives returns the current representative field node IDs,
// sorted.
func (m *NetworkModel) Representatives() []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range m.g.NodesByLabel("field") {
		rep := m.resolve(n.ID)
		if !seen[rep] {
			seen[rep] = true
			out = append(out, rep)
		}
	}
	sort.Strings(out)
	return out
}
