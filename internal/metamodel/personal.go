package metamodel

import (
	"encoding/json"
	"fmt"
	"sort"

	"golake/internal/storage/graphstore"
)

// PersonalLake implements the personal data lake of Walker & Alrehamy
// (Sec. 4.2): heterogeneous personal data fragments produced by
// user-web interaction are serialized to JSON, flattened into the
// property graph, and categorized into the paper's four kinds — raw
// data, metadata, additional semantics, and fragment identifiers. The
// graph store stands in for Neo4j.
type PersonalLake struct {
	g    *graphstore.Graph
	next int
}

// NewPersonalLake creates an empty personal lake.
func NewPersonalLake() *PersonalLake { return &PersonalLake{g: graphstore.New()} }

// Graph exposes the underlying property graph.
func (p *PersonalLake) Graph() *graphstore.Graph { return p.g }

// StoreFragment ingests one JSON data fragment from a source
// application and returns the fragment identifier. The JSON object is
// flattened: every scalar leaf becomes a raw-data node attached to the
// fragment node; source and size become metadata nodes.
func (p *PersonalLake) StoreFragment(source string, raw []byte) (string, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("metamodel: personal fragment: %w", err)
	}
	p.next++
	fid := fmt.Sprintf("frag:%d", p.next)
	if err := p.g.AddNode(fid, "fragment", graphstore.Props{"source": source}); err != nil {
		return "", err
	}
	// Metadata category.
	mid := fid + ":meta"
	if err := p.g.AddNode(mid, "metadata", graphstore.Props{"source": source, "bytes": len(raw)}); err != nil {
		return "", err
	}
	if _, err := p.g.AddEdge(fid, mid, "hasMetadata", nil); err != nil {
		return "", err
	}
	// Raw-data category: flattened leaves.
	if err := p.flatten(fid, "$", v); err != nil {
		return "", err
	}
	return fid, nil
}

func (p *PersonalLake) flatten(fid, path string, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := p.flatten(fid, path+"."+k, x[k]); err != nil {
				return err
			}
		}
	case []any:
		for i, el := range x {
			if err := p.flatten(fid, fmt.Sprintf("%s[%d]", path, i), el); err != nil {
				return err
			}
		}
	default:
		nid := fmt.Sprintf("%s:%s", fid, path)
		if err := p.g.AddNode(nid, "rawdata", graphstore.Props{
			"path":  path,
			"value": fmt.Sprintf("%v", x),
		}); err != nil {
			return err
		}
		if _, err := p.g.AddEdge(fid, nid, "hasData", nil); err != nil {
			return err
		}
	}
	return nil
}

// AddSemantics attaches an additional-semantics node to a fragment
// (user tags, inferred context).
func (p *PersonalLake) AddSemantics(fragmentID, term string) error {
	if !p.g.HasNode(fragmentID) {
		return fmt.Errorf("%w: %s", graphstore.ErrNodeNotFound, fragmentID)
	}
	sid := fragmentID + ":sem:" + term
	p.g.UpsertNode(sid, "semantics", graphstore.Props{"term": term})
	_, err := p.g.AddEdge(fragmentID, sid, "hasSemantics", nil)
	return err
}

// Fragments lists fragment IDs, optionally filtered by source, sorted.
func (p *PersonalLake) Fragments(source string) []string {
	var out []string
	for _, n := range p.g.NodesByLabel("fragment") {
		if source != "" {
			if s, _ := n.Props["source"].(string); s != source {
				continue
			}
		}
		out = append(out, n.ID)
	}
	sort.Strings(out)
	return out
}

// FindByValue returns the fragments containing a raw-data leaf with
// the given value — the schema-less lookup a personal lake serves
// ("which apps have my email address?").
func (p *PersonalLake) FindByValue(value string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range p.g.NodesByLabel("rawdata") {
		if v, _ := n.Props["value"].(string); v != value {
			continue
		}
		for _, frag := range p.g.Neighbors(n.ID, graphstore.In, "hasData") {
			if !seen[frag] {
				seen[frag] = true
				out = append(out, frag)
			}
		}
	}
	sort.Strings(out)
	return out
}

// FindBySemanticTerm returns fragments annotated with the term.
func (p *PersonalLake) FindBySemanticTerm(term string) []string {
	var out []string
	for _, n := range p.g.NodesByLabel("semantics") {
		if tv, _ := n.Props["term"].(string); tv != term {
			continue
		}
		out = append(out, p.g.Neighbors(n.ID, graphstore.In, "hasSemantics")...)
	}
	sort.Strings(out)
	return out
}

// Leaves returns the flattened (path, value) pairs of a fragment,
// sorted by path.
func (p *PersonalLake) Leaves(fragmentID string) [][2]string {
	var out [][2]string
	for _, nid := range p.g.Neighbors(fragmentID, graphstore.Out, "hasData") {
		n, err := p.g.Node(nid)
		if err != nil {
			continue
		}
		path, _ := n.Props["path"].(string)
		value, _ := n.Props["value"].(string)
		out = append(out, [2]string{path, value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
