package metamodel

import (
	"strings"
	"testing"
)

func buildNetwork(t *testing.T) *NetworkModel {
	t.Helper()
	m := NewNetworkModel()
	if err := m.AddSource("crm", map[string]string{
		"customer_name": "full name of the customer",
		"city":          "customer city of residence",
		"revenue":       "yearly revenue from this customer",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource("erp", map[string]string{
		"customer_nam": "name of the customer",
		"plant":        "manufacturing plant location",
		"turnover":     "yearly revenue from this customer",
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNetworkMergeSimilar(t *testing.T) {
	m := buildNetwork(t)
	before := len(m.Representatives())
	if before != 6 {
		t.Fatalf("representatives before merge = %d", before)
	}
	merges, err := m.MergeSimilar(0.75)
	if err != nil {
		t.Fatal(err)
	}
	if merges < 2 {
		t.Fatalf("merges = %d, want >= 2 (customer_name~customer_nam, revenue~turnover by description)", merges)
	}
	after := len(m.Representatives())
	if after != before-merges {
		t.Errorf("representatives after merge = %d, want %d", after, before-merges)
	}
}

func TestNetworkSameSourceNotMerged(t *testing.T) {
	m := NewNetworkModel()
	_ = m.AddSource("s", map[string]string{
		"name":  "the name",
		"names": "the name",
	})
	merges, err := m.MergeSimilar(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if merges != 0 {
		t.Errorf("same-source fields merged: %d", merges)
	}
}

func TestThematicView(t *testing.T) {
	m := buildNetwork(t)
	if _, err := m.MergeSimilar(0.75); err != nil {
		t.Fatal(err)
	}
	if err := m.LinkSemantic("crm", "city", "dbpedia.org/City"); err != nil {
		t.Fatal(err)
	}
	view := m.ExtractView("customer revenue")
	if len(view.Fields) == 0 {
		t.Fatal("empty thematic view")
	}
	// The revenue representative is in the view, and both sources
	// contribute (turnover merged into revenue).
	hasRevenue := false
	for _, f := range view.Fields {
		if strings.Contains(f, "revenue") || strings.Contains(f, "turnover") {
			hasRevenue = true
		}
	}
	if !hasRevenue {
		t.Errorf("view fields = %v", view.Fields)
	}
	if len(view.Sources) != 2 {
		t.Errorf("view sources = %v, want both crm and erp", view.Sources)
	}
	// An unrelated topic yields an empty or small view.
	empty := m.ExtractView("zebra astronomy")
	if len(empty.Fields) != 0 {
		t.Errorf("unrelated view = %+v", empty)
	}
}

func TestLinkSemanticFollowsMerges(t *testing.T) {
	m := buildNetwork(t)
	_, _ = m.MergeSimilar(0.75)
	// Linking through the absorbed field must land on the representative.
	if err := m.LinkSemantic("erp", "customer_nam", "dbpedia.org/Person"); err != nil {
		t.Fatal(err)
	}
	view := m.ExtractView("person")
	if len(view.Fields) != 1 {
		t.Errorf("semantic-linked view = %+v", view)
	}
}
