// Package metamodel implements the ingestion-tier metadata modeling
// function (Sec. 5.2 of the survey), one representative per method
// family: the GEMMS generic metamodel (content / structure / semantics
// separation), the HANDLE generic model (data - metadata - property on
// a graph), the data vault conceptual model (hubs, links, satellites),
// Aurum's enterprise knowledge graph hypergraph, and the
// evolution-oriented graph model of Sawadogo et al.
package metamodel

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"golake/internal/extract"
)

// ErrNoObject is returned for unknown metadata objects.
var ErrNoObject = errors.New("metamodel: no such metadata object")

// MetadataObject is the GEMMS unit of metadata for one dataset. It
// separates general properties (key-value), structural metadata (the
// inferred tree or tabular schema), and semantic metadata (ontology
// terms attached to named elements).
type MetadataObject struct {
	ID string
	// Properties holds general metadata such as file size or header
	// fields, as key-value pairs.
	Properties map[string]string
	// Structure is the structural metadata tree (nil for tabular data).
	Structure *extract.TreeNode
	// Attributes lists tabular attribute names with their types
	// (empty for hierarchical data).
	Attributes map[string]string
	// Semantics maps an element name ("" for the whole dataset) to
	// attached ontology terms.
	Semantics map[string][]string
}

// GEMMSModel stores metadata objects and answers property/semantic
// lookups; the "extensible metamodel" of the GEMMS system.
type GEMMSModel struct {
	mu      sync.RWMutex
	objects map[string]*MetadataObject
}

// NewGEMMS creates an empty model.
func NewGEMMS() *GEMMSModel {
	return &GEMMSModel{objects: map[string]*MetadataObject{}}
}

// Register stores the metadata object for a dataset, replacing any
// previous version.
func (m *GEMMSModel) Register(obj *MetadataObject) {
	if obj.Properties == nil {
		obj.Properties = map[string]string{}
	}
	if obj.Semantics == nil {
		obj.Semantics = map[string][]string{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[obj.ID] = obj
}

// Remove deletes a dataset's metadata object; unknown IDs are a no-op.
func (m *GEMMSModel) Remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, id)
}

// FromExtraction converts an extraction result into a metadata object,
// the ingestion-time handoff between extractor and metamodel.
func FromExtraction(md *extract.Metadata) *MetadataObject {
	obj := &MetadataObject{
		ID:         md.Path,
		Properties: map[string]string{},
		Structure:  md.Tree,
		Attributes: map[string]string{},
		Semantics:  map[string][]string{},
	}
	for k, v := range md.Properties {
		obj.Properties[k] = v
	}
	for _, col := range md.Schema {
		obj.Attributes[col.Name] = col.Kind.String()
	}
	for _, tag := range md.SemanticTags {
		obj.Semantics[""] = append(obj.Semantics[""], tag)
	}
	return obj
}

// Object returns the metadata object for a dataset.
func (m *GEMMSModel) Object(id string) (*MetadataObject, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	obj, ok := m.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoObject, id)
	}
	return obj, nil
}

// IDs returns all registered dataset IDs, sorted.
func (m *GEMMSModel) IDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.objects))
	for id := range m.objects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Annotate attaches an ontology term to an element of a dataset
// ("" element = the whole dataset).
func (m *GEMMSModel) Annotate(id, element, term string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	obj, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoObject, id)
	}
	obj.Semantics[element] = append(obj.Semantics[element], term)
	return nil
}

// FindByProperty returns the IDs of objects whose property key equals
// value, sorted.
func (m *GEMMSModel) FindByProperty(key, value string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for id, obj := range m.objects {
		if obj.Properties[key] == value {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// FindBySemantic returns the IDs of objects with the given ontology
// term on any element, sorted.
func (m *GEMMSModel) FindBySemantic(term string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for id, obj := range m.objects {
		for _, terms := range obj.Semantics {
			if containsStr(terms, term) {
				out = append(out, id)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// FindByAttribute returns the IDs of objects having an attribute with
// the given name, sorted.
func (m *GEMMSModel) FindByAttribute(name string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for id, obj := range m.objects {
		if _, ok := obj.Attributes[name]; ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
