package metamodel

import (
	"testing"
)

func TestPersonalLakeStoreAndFlatten(t *testing.T) {
	p := NewPersonalLake()
	fid, err := p.StoreFragment("mailapp", []byte(`{
		"from": "alice@example.org",
		"subject": "hello",
		"attachments": [{"name": "a.pdf"}, {"name": "b.png"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	leaves := p.Leaves(fid)
	if len(leaves) != 4 {
		t.Fatalf("leaves = %v", leaves)
	}
	if leaves[0][0] != "$.attachments[0].name" || leaves[0][1] != "a.pdf" {
		t.Errorf("first leaf = %v", leaves[0])
	}
	if _, err := p.StoreFragment("x", []byte("{bad")); err == nil {
		t.Error("invalid fragment should fail")
	}
}

func TestPersonalLakeFindByValue(t *testing.T) {
	p := NewPersonalLake()
	f1, _ := p.StoreFragment("mailapp", []byte(`{"from":"alice@example.org"}`))
	f2, _ := p.StoreFragment("shop", []byte(`{"account":{"email":"alice@example.org"}}`))
	_, _ = p.StoreFragment("fitness", []byte(`{"steps":9000}`))
	got := p.FindByValue("alice@example.org")
	if len(got) != 2 || got[0] != f1 || got[1] != f2 {
		t.Errorf("FindByValue = %v", got)
	}
	if got := p.FindByValue("nobody"); len(got) != 0 {
		t.Errorf("miss = %v", got)
	}
}

func TestPersonalLakeSemanticsAndSources(t *testing.T) {
	p := NewPersonalLake()
	f1, _ := p.StoreFragment("mailapp", []byte(`{"subject":"invoice 42"}`))
	_, _ = p.StoreFragment("shop", []byte(`{"order":"42"}`))
	if err := p.AddSemantics(f1, "finance"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSemantics("ghost", "x"); err == nil {
		t.Error("semantics on missing fragment should fail")
	}
	if got := p.FindBySemanticTerm("finance"); len(got) != 1 || got[0] != f1 {
		t.Errorf("FindBySemanticTerm = %v", got)
	}
	if got := p.Fragments("mailapp"); len(got) != 1 {
		t.Errorf("Fragments(mailapp) = %v", got)
	}
	if got := p.Fragments(""); len(got) != 2 {
		t.Errorf("Fragments(all) = %v", got)
	}
	// Metadata category exists per fragment.
	md := p.Graph().Neighbors(f1, 0 /* Out */, "hasMetadata")
	if len(md) != 1 {
		t.Errorf("metadata nodes = %v", md)
	}
}
