package clean

import (
	"sort"

	"golake/internal/sketch"
)

// Auto-Validate (Song & He, Sec. 6.5.2) infers data-validation rules
// from machine-generated string columns without supervision: the rule
// is a small set of generalization patterns that covers (almost) all
// historically observed values; a future batch whose violation rate
// exceeds what the rule allows signals a significant data change. Rule
// inference balances false-positive-rate minimization (the rule must
// accept legitimate future values) against quality-issue preservation
// (it must stay tight enough to catch drift).

// ValidationRule is a learned set of accepted value patterns.
type ValidationRule struct {
	// Patterns are accepted character-class generalizations.
	Patterns map[string]struct{}
	// TrainCoverage is the fraction of training values the rule
	// accepts.
	TrainCoverage float64
	// ExpectedFPR is the estimated false-positive rate on clean data
	// (the training residual mass).
	ExpectedFPR float64
}

// InferRule learns a validation rule from training values: patterns
// are ranked by support and greedily added until at least
// 1-targetFPR of the training mass is covered — the optimization
// trade-off of the paper in its greedy form. Rare patterns stay
// outside the rule so genuine drift remains detectable.
func InferRule(values []string, targetFPR float64) ValidationRule {
	rule := ValidationRule{Patterns: map[string]struct{}{}}
	if len(values) == 0 {
		return rule
	}
	support := map[string]int{}
	for _, v := range values {
		support[sketch.RegexPattern(v)]++
	}
	type ps struct {
		pattern string
		count   int
	}
	ranked := make([]ps, 0, len(support))
	for p, c := range support {
		ranked = append(ranked, ps{p, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].pattern < ranked[j].pattern
	})
	covered := 0
	total := len(values)
	for _, e := range ranked {
		if float64(covered)/float64(total) >= 1-targetFPR {
			break
		}
		rule.Patterns[e.pattern] = struct{}{}
		covered += e.count
	}
	rule.TrainCoverage = float64(covered) / float64(total)
	rule.ExpectedFPR = 1 - rule.TrainCoverage
	return rule
}

// Accepts reports whether a single value matches the rule.
func (r ValidationRule) Accepts(v string) bool {
	_, ok := r.Patterns[sketch.RegexPattern(v)]
	return ok
}

// ValidateBatch returns the violation rate of a new batch under the
// rule and whether the batch should be flagged: flagged when the
// violation rate exceeds the rule's expected false-positive rate by
// slack (drift detection for downstream pipelines).
func (r ValidationRule) ValidateBatch(values []string, slack float64) (violationRate float64, flagged bool) {
	if len(values) == 0 {
		return 0, false
	}
	bad := 0
	for _, v := range values {
		if !r.Accepts(v) {
			bad++
		}
	}
	violationRate = float64(bad) / float64(len(values))
	return violationRate, violationRate > r.ExpectedFPR+slack
}
