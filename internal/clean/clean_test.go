package clean

import (
	"fmt"
	"strings"
	"testing"

	"golake/internal/table"
)

func mustCSV(t *testing.T, name, csv string) *table.Table {
	t.Helper()
	tbl, err := table.ParseCSV(name, csv)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTablesToTriples(t *testing.T) {
	tbl := mustCSV(t, "t", "a,b\n1,x\n2,y\n")
	triples := TablesToTriples(tbl)
	if len(triples) != 4 {
		t.Fatalf("triples = %d, want 4", len(triples))
	}
	if triples[0].Subject != "t/0" || triples[0].Predicate != "a" || triples[0].Object != "1" {
		t.Errorf("first triple = %+v", triples[0])
	}
}

func TestDiscoverConstraintsAndRankViolations(t *testing.T) {
	// city determines country; row 2 violates (berlin->fr).
	tbl := mustCSV(t, "geo", "city,country\nberlin,de\nberlin,de\nberlin,fr\nparis,fr\nparis,fr\nrome,it\n")
	constraints := DiscoverConstraints(tbl, 0.8)
	if len(constraints) == 0 {
		t.Fatal("no constraints discovered")
	}
	found := false
	for _, c := range constraints {
		if c.Determinant == "city" && c.Dependent == "country" {
			found = true
		}
	}
	if !found {
		t.Fatalf("city->country missing: %+v", constraints)
	}
	ranked := RankViolations(tbl, constraints)
	if len(ranked) == 0 {
		t.Fatal("no violations ranked")
	}
	// The dirty cell (geo/2, country, fr) must be among the top ranked.
	top := ranked[0]
	if !strings.HasPrefix(top.Triple.Subject, "geo/2") {
		t.Errorf("top violation = %+v, want row 2", top)
	}
}

func TestCleanWithOracle(t *testing.T) {
	tbl := mustCSV(t, "geo", "city,country\nberlin,de\nberlin,de\nberlin,fr\nparis,fr\nparis,fr\n")
	constraints := DiscoverConstraints(tbl, 0.7)
	ranked := RankViolations(tbl, constraints)
	// Oracle confirms removal only of the bad country cell.
	oracle := func(tr Triple) bool {
		return tr.Predicate == "country" && tr.Object == "fr" && strings.HasPrefix(tr.Subject, "geo/2")
	}
	cleaned, removed := CleanWithOracle(tbl, ranked, oracle)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	col, _ := cleaned.Column("country")
	if col.Cells[2] != "" {
		t.Errorf("dirty cell not blanked: %q", col.Cells[2])
	}
	// Original untouched.
	orig, _ := tbl.Column("country")
	if orig.Cells[2] != "fr" {
		t.Error("original table mutated")
	}
}

func TestCleanWithOracleRejectsAll(t *testing.T) {
	tbl := mustCSV(t, "t", "a,b\n1,x\n1,y\n1,x\n")
	ranked := RankViolations(tbl, DiscoverConstraints(tbl, 0.5))
	_, removed := CleanWithOracle(tbl, ranked, func(Triple) bool { return false })
	if removed != 0 {
		t.Errorf("removed = %d with rejecting oracle", removed)
	}
}

func TestInferRuleCoversDominantPatterns(t *testing.T) {
	var values []string
	for i := 0; i < 95; i++ {
		values = append(values, fmt.Sprintf("ID-%04d", i))
	}
	for i := 0; i < 5; i++ {
		values = append(values, fmt.Sprintf("legacy_%d", i))
	}
	rule := InferRule(values, 0.02)
	// Dominant "ID-9999" pattern must be accepted.
	if !rule.Accepts("ID-1234") {
		t.Error("dominant pattern rejected")
	}
	// The rule should NOT include the rare legacy pattern when 2% FPR
	// already covered by the dominant one... dominant covers 95%, so
	// greedy adds legacy too to reach 98%.
	if !rule.Accepts("legacy_9") {
		t.Error("second pattern needed for 98% coverage was not added")
	}
	if rule.Accepts("totally-different 42 42") {
		t.Error("unseen pattern accepted")
	}
	if rule.TrainCoverage < 0.98 {
		t.Errorf("coverage = %v", rule.TrainCoverage)
	}
}

func TestValidateBatchDriftDetection(t *testing.T) {
	var train []string
	for i := 0; i < 100; i++ {
		train = append(train, fmt.Sprintf("2024-01-%02d", i%28+1))
	}
	rule := InferRule(train, 0.01)
	// Clean batch: same format.
	clean := []string{"2024-05-01", "2024-05-02"}
	rate, flagged := rule.ValidateBatch(clean, 0.05)
	if rate != 0 || flagged {
		t.Errorf("clean batch rate/flag = %v/%v", rate, flagged)
	}
	// Drifted batch: format changed upstream.
	drifted := []string{"05/01/2024x", "05/02/2024x", "2024-05-03"}
	rate, flagged = rule.ValidateBatch(drifted, 0.05)
	if !flagged {
		t.Errorf("drifted batch not flagged (rate %v)", rate)
	}
	if rate < 0.6 {
		t.Errorf("drift rate = %v, want ~2/3", rate)
	}
}

func TestValidateBatchEmptyAndEmptyRule(t *testing.T) {
	rule := InferRule(nil, 0.01)
	if rate, flagged := rule.ValidateBatch(nil, 0.05); rate != 0 || flagged {
		t.Errorf("empty rule/batch = %v/%v", rate, flagged)
	}
	if rule.Accepts("anything") {
		t.Error("empty rule accepts values")
	}
}
