// Package clean implements the data-cleaning function of the
// maintenance tier (Sec. 6.5): CLAMS-style constraint-based error
// detection with hypergraph ranking and user validation, Constance's
// RFD-violation cleaning, and Auto-Validate's unsupervised inference of
// pattern-based validation rules for machine-generated data.
package clean

import (
	"fmt"
	"sort"

	"golake/internal/enrich"
	"golake/internal/table"
)

// Triple is one RDF-style fact; CLAMS operates on triples extracted
// from the heterogeneous lake data.
type Triple struct {
	Subject   string
	Predicate string
	Object    string
}

// String renders "(s, p, o)".
func (t Triple) String() string { return fmt.Sprintf("(%s, %s, %s)", t.Subject, t.Predicate, t.Object) }

// TablesToTriples flattens a table into triples: (rowID, column,
// value), the extraction step CLAMS applies before constraint
// discovery.
func TablesToTriples(t *table.Table) []Triple {
	var out []Triple
	for i := 0; i < t.NumRows(); i++ {
		subj := fmt.Sprintf("%s/%d", t.Name, i)
		for _, c := range t.Columns {
			out = append(out, Triple{Subject: subj, Predicate: c.Name, Object: c.Cells[i]})
		}
	}
	return out
}

// DiscoveredConstraint is a functional denial constraint discovered
// from the data itself: determinant predicate -> dependent predicate
// with the observed confidence.
type DiscoveredConstraint struct {
	Determinant string
	Dependent   string
	Confidence  float64
}

// DiscoverConstraints finds functional denial constraints from triples
// by reconstructing the implied relation and running relaxed FD
// discovery — CLAMS "automatically detects such constraints by
// discovering possible schemata from the data and corresponding
// constraints".
func DiscoverConstraints(t *table.Table, minConfidence float64) []DiscoveredConstraint {
	var out []DiscoveredConstraint
	for _, rfd := range enrich.DiscoverRFDs(t, minConfidence) {
		out = append(out, DiscoveredConstraint{
			Determinant: rfd.Lhs,
			Dependent:   rfd.Rhs,
			Confidence:  rfd.Confidence,
		})
	}
	return out
}

// Violation is one triple with its violation count from the CLAMS
// hypergraph: each violated constraint instance is a hyperedge over
// the participating triples; the triple's score is the number of
// hyperedges covering it.
type Violation struct {
	Triple     Triple
	Violations int
}

// RankViolations builds the violation hypergraph for the discovered
// functional constraints and ranks triples by how many constraint
// instances they participate in — the candidates CLAMS presents to the
// user, dirtiest first.
func RankViolations(t *table.Table, constraints []DiscoveredConstraint) []Violation {
	counts := map[Triple]int{}
	for _, dc := range constraints {
		lhs, err := t.Column(dc.Determinant)
		if err != nil {
			continue
		}
		rhs, err := t.Column(dc.Dependent)
		if err != nil {
			continue
		}
		groups := map[string][]int{}
		for i, v := range lhs.Cells {
			groups[v] = append(groups[v], i)
		}
		for gv, rows := range groups {
			freq := map[string]int{}
			for _, ri := range rows {
				freq[rhs.Cells[ri]]++
			}
			var majority string
			best := -1
			var vals []string
			for v := range freq {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				if freq[v] > best {
					majority, best = v, freq[v]
				}
			}
			for _, ri := range rows {
				if rhs.Cells[ri] != majority {
					// The violating hyperedge covers both cells of the
					// row involved in the constraint.
					subj := fmt.Sprintf("%s/%d", t.Name, ri)
					counts[Triple{Subject: subj, Predicate: dc.Dependent, Object: rhs.Cells[ri]}]++
					counts[Triple{Subject: subj, Predicate: dc.Determinant, Object: gv}]++
				}
			}
		}
	}
	out := make([]Violation, 0, len(counts))
	for tr, n := range counts {
		out = append(out, Violation{Triple: tr, Violations: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Violations != out[j].Violations {
			return out[i].Violations > out[j].Violations
		}
		return out[i].Triple.String() < out[j].Triple.String()
	})
	return out
}

// Oracle answers CLAMS's user-validation question: should this
// candidate dirty triple be removed? Scripted oracles replace the
// human-in-the-loop in tests and benches.
type Oracle func(t Triple) bool

// CleanWithOracle removes the cells whose violating triples the oracle
// confirms, blanking them in a copy of the table. Returns the cleaned
// table and how many cells were blanked.
func CleanWithOracle(t *table.Table, ranked []Violation, oracle Oracle) (*table.Table, int) {
	out := t.Clone()
	removed := 0
	for _, v := range ranked {
		if !oracle(v.Triple) {
			continue
		}
		var row int
		if n, err := fmt.Sscanf(lastSegment(v.Triple.Subject), "%d", &row); n != 1 || err != nil {
			continue
		}
		col, err := out.Column(v.Triple.Predicate)
		if err != nil || row >= col.Len() {
			continue
		}
		if col.Cells[row] == v.Triple.Object {
			col.Cells[row] = ""
			removed++
		}
	}
	return out, removed
}

func lastSegment(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}
