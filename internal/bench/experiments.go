package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"golake/internal/core"
	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/extract"
	"golake/internal/lakehouse"
	"golake/internal/metamodel"
	"golake/internal/organize"
	"golake/internal/query"
	"golake/internal/sketch"
	"golake/internal/storage/polystore"
	"golake/internal/table"
	"golake/internal/workload"
)

// DefaultCorpusSpec is the shared benchmark corpus: 40 tables in 8
// joinable groups, a scale every discoverer handles in seconds.
func DefaultCorpusSpec() workload.CorpusSpec { return workload.DefaultSpec() }

// Discoverers instantiates the Table 3 systems in survey order. The
// DLN instance is returned untrained; TrainDLN completes it.
func Discoverers() []discovery.Discoverer {
	return []discovery.Discoverer{
		discovery.NewAurum(),
		discovery.NewJOSIE(),
		discovery.NewD3L(),
		discovery.NewJuneau(discovery.TaskAugment),
		discovery.NewPEXESO(),
		discovery.NewRNLIM(),
		discovery.NewDLN(),
	}
}

// discovererMeta carries the static Table 3 columns per system.
var discovererMeta = map[string][2]string{
	"Aurum":     {"value overlap, names, PK-FK", "MinHash+LSH -> EKG hypergraph"},
	"JOSIE":     {"instance value overlap", "inverted index, exact top-k"},
	"D3L":       {"names, values, embeddings, formats, distributions", "5-dim weighted Euclidean + LSH"},
	"Juneau":    {"values, schema, keys, provenance, metadata", "multi-signal task weighting"},
	"PEXESO":    {"textual instance values", "vector similarity + grid pruning"},
	"RNLIM":     {"table+attr names, types, value domains", "relationship labeling (NLI substitute)"},
	"DLN":       {"names, uniqueness, types, samples", "classifiers from join query logs"},
	"D3L+human": {"algorithmic scores + human triage", "uncertainty band -> annotator (90% acc.)"},
}

// EvalDiscoverer indexes the corpus and scores top-k quality against
// joinable ground truth, returning precision@k, recall@k, index time
// and mean per-query latency.
func EvalDiscoverer(d discovery.Discoverer, c *workload.Corpus, k int) (p, r float64, indexTime, queryTime time.Duration, err error) {
	start := time.Now()
	if err = d.Index(c.Tables); err != nil {
		return 0, 0, 0, 0, err
	}
	if dln, ok := d.(*discovery.DLN); ok {
		dln.Train(workload.JoinQueryLog(c, 0, 3))
	}
	indexTime = time.Since(start)
	results := map[string][]string{}
	var queries []string
	qStart := time.Now()
	for _, tbl := range c.Tables {
		queries = append(queries, tbl.Name)
		var names []string
		for _, ts := range d.RelatedTables(tbl, k) {
			names = append(names, ts.Table)
		}
		results[tbl.Name] = names
	}
	queryTime = time.Since(qStart) / time.Duration(len(c.Tables))
	rel := func(q, cand string) bool { return c.Joinable[workload.NewPair(q, cand)] }
	tot := func(q string) int {
		n := 0
		for pr := range c.Joinable {
			if pr.A == q || pr.B == q {
				n++
			}
		}
		return n
	}
	p, r = workload.TopKQuality(queries, results, k, rel, tot)
	return p, r, indexTime, queryTime, nil
}

// Table1 regenerates the survey's Table 1 — the tier/function/system
// classification — by running every registered function implementation.
func Table1() (*Report, error) {
	rep := &Report{
		Title:  "Table 1: Classification of data lake solutions based on functions",
		Header: []string{"Tier", "Function", "Systems (reproduced families)", "Run result"},
	}
	for _, e := range core.Registry() {
		out, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", e.Tier, e.Function, err)
		}
		rep.Add(string(e.Tier), e.Function, strings.Join(e.Systems, ", "), out)
	}
	rep.Note("every function executed against its implementing package; 11 functions, 3 tiers as in the survey")
	return rep, nil
}

// Table2 regenerates the survey's Table 2 — the comparison of
// DAG-based dataset organization approaches — building all four DAG
// flavors on one workload and reporting their semantics plus measured
// structure.
func Table2() (*Report, error) {
	rep := &Report{
		Title:  "Table 2: Comparison of DAG-based dataset organization approaches",
		Header: []string{"System", "Function", "Node", "Edge", "Measured"},
	}
	// KAYAK pipeline + task dependency, with the time-to-insight
	// preview measured on a real profiling primitive over a large
	// table.
	var big strings.Builder
	big.WriteString("v,w\n")
	for i := 0; i < 50000; i++ {
		fmt.Fprintf(&big, "%d,x%d\n", i, i%321)
	}
	bigT, err := table.ParseCSV("big", big.String())
	if err != nil {
		return nil, err
	}
	prim := organize.ProfilePrimitive(bigT, 200)
	stages, err := prim.TaskDAG().Stages()
	if err != nil {
		return nil, err
	}
	pl := organize.NewPipeline()
	pl.Add(prim)
	ins := organize.NewPrimitive("insert")
	ins.AddTask("t", func(bool) (string, error) { return "", nil })
	pl.Add(ins)
	_ = pl.After(prim.Name, "insert")
	plStages, err := pl.DAG().Stages()
	if err != nil {
		return nil, err
	}
	rep.Add("KAYAK (pipeline)", "represent data preparation pipelines",
		"primitives", "execution order",
		fmt.Sprintf("%d primitives in %d sequential stages", len(pl.DAG().Nodes()), len(plStages)))
	parallel := 0
	for _, s := range stages {
		if len(s) > 1 {
			parallel += len(s)
		}
	}
	start := time.Now()
	if _, err := prim.Execute(true); err != nil {
		return nil, err
	}
	previewTime := time.Since(start)
	start = time.Now()
	if _, err := prim.Execute(false); err != nil {
		return nil, err
	}
	exactTime := time.Since(start)
	rep.Add("KAYAK (task dependency)", "parallelize atomic tasks",
		"atomic tasks", "execution order",
		fmt.Sprintf("%d tasks, %d stages, %d parallelizable; preview %s vs exact %s (50k rows)",
			len(prim.TaskDAG().Nodes()), len(stages), parallel,
			previewTime.Round(time.Microsecond), exactTime.Round(time.Millisecond)))
	// Nargesian organization.
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 16, JoinGroups: 4, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, Seed: 11,
	})
	nav := organize.NewNavDAG(4)
	start = time.Now()
	nav.Build(c.Tables)
	buildTime := time.Since(start)
	rep.Add("Nargesian et al.", "semantic navigation",
		"attribute sets", "containment",
		fmt.Sprintf("%d leaves, mean P(find)=%.2f, built in %s",
			len(nav.Leaves()), nav.MeanDiscoveryProbability(), buildTime.Round(time.Millisecond)))
	// Juneau variable dependency.
	base, err := table.ParseCSV("base", "a,b\n1,2\n3,4\n5,6\n7,8\n")
	if err != nil {
		return nil, err
	}
	nb := workload.GenerateNotebook(base, 5, 3)
	wg := organize.NewWorkflowGraph()
	if err := wg.FromNotebook(nb); err != nil {
		return nil, err
	}
	adj := wg.ProvenanceSimilarity("base", "base_v1")
	far := wg.ProvenanceSimilarity("base", "base_v5")
	rep.Add("Juneau (variable dependency)", "table relatedness via workflows",
		"notebook variables", "functions (labels)",
		fmt.Sprintf("%d steps; sim(adjacent)=%.2f > sim(distant)=%.2f", len(nb.Steps), adj, far))
	rep.Note("node/edge semantics match the survey's Table 2; measured column comes from running each structure")
	return rep, nil
}

// Table3 regenerates the survey's Table 3 — the comparison of related
// dataset discovery approaches — empirically: every system indexes the
// same corpus and is scored against joinability ground truth.
func Table3(spec workload.CorpusSpec, k int) (*Report, error) {
	variant := "easy corpus"
	if spec.AnonymousNames {
		variant = "hard corpus: anonymous names, thin overlap"
	}
	rep := &Report{
		Title: fmt.Sprintf("Table 3: Related dataset discovery (%d tables, %d groups, top-%d; %s)",
			spec.NumTables, spec.JoinGroups, k, variant),
		Header: []string{"System", "Relatedness criteria", "Technique", "P@k", "R@k", "Index", "Query/table"},
	}
	c := workload.GenerateCorpus(spec)
	systems := Discoverers()
	// Brackenbury et al.: human-in-the-loop triage over an algorithmic
	// ranking; the human is a deterministic scripted annotator that
	// answers correctly 90% of the time (DESIGN.md substitution).
	systems = append(systems, humanInLoop(c, spec.Seed))
	for _, d := range systems {
		p, r, it, qt, err := EvalDiscoverer(d, c, k)
		if err != nil {
			return nil, err
		}
		meta := discovererMeta[d.Name()]
		rep.Add(d.Name(), meta[0], meta[1],
			fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", r),
			it.Round(time.Millisecond).String(), qt.Round(time.Microsecond).String())
	}
	rep.Note("criteria/technique columns reproduce the survey's Table 3; P/R measured on seeded ground truth")
	if spec.AnonymousNames {
		rep.Note("hard variant: anonymous column names + thin key overlap — threshold-free exact search (JOSIE) and multi-feature ranking (D3L) stay accurate, thresholded LSH candidacy (Aurum) degrades, matching the robustness claims of Sec. 6.2.1/6.2.5")
	}
	return rep, nil
}

// humanInLoop builds the Brackenbury et al. row: D3L triaged by a
// scripted annotator that consults ground truth but errs on 10% of
// consultations (deterministically, by hash of the pair).
func humanInLoop(c *workload.Corpus, seed int64) discovery.Discoverer {
	n := 0
	oracle := func(q string, ts metamodel.TableScore) bool {
		n++
		correct := c.Joinable[workload.NewPair(q, ts.Table)]
		// Deterministic 10% error rate.
		if (int64(n)*2654435761+seed)%10 == 0 {
			return !correct
		}
		return correct
	}
	h := discovery.NewHumanInLoop(discovery.NewD3L(), oracle)
	h.AcceptAbove = 0.5
	h.RejectBelow = 0.05
	return h
}

// HardSpec is a corpus that separates the Table 3 systems: anonymous
// column names (no name signal), thin key overlap and noise.
func HardSpec() workload.CorpusSpec {
	return workload.CorpusSpec{
		NumTables: 40, JoinGroups: 8, RowsPerTable: 120,
		ExtraCols: 2, KeyVocab: 500, KeySample: 80, NoiseRate: 0.1,
		AnonymousNames: true, Seed: 42,
	}
}

// Fig2 runs the end-to-end three-tier pipeline and reports per-tier
// outcomes and timings — the architecture of the survey's Fig. 2 as an
// executable workflow.
func Fig2(dir string) (*Report, error) {
	rep := &Report{
		Title:  "Fig. 2: Function-oriented three-tier architecture, end to end",
		Header: []string{"Tier", "Functions exercised", "Outcome", "Time"},
	}
	lake, err := core.Open(dir)
	if err != nil {
		return nil, err
	}
	lake.AddUser("dana", core.RoleDataScientist)
	lake.AddUser("gov", core.RoleGovernance)
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 16, JoinGroups: 4, RowsPerTable: 80,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, Seed: 7,
	})
	// Ingestion tier.
	start := time.Now()
	for _, tbl := range c.Tables {
		if _, err := lake.Ingest(context.Background(), "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "generator", "dana"); err != nil {
			return nil, err
		}
	}
	ingestTime := time.Since(start)
	swamp, err := lake.SwampAudit(context.Background())
	if err != nil {
		return nil, err
	}
	rep.Add("storage+ingestion", "polystore routing, extraction, modeling, cataloging",
		fmt.Sprintf("%d datasets, %d with metadata", swamp.Datasets, swamp.WithMetadata),
		ingestTime.Round(time.Millisecond).String())
	// Maintenance tier.
	start = time.Now()
	mrep, err := lake.Maintain(context.Background())
	if err != nil {
		return nil, err
	}
	maintainTime := time.Since(start)
	rep.Add("maintenance", "indexing, organization, RFD enrichment, zoning",
		fmt.Sprintf("%d tables, %d categories, %d RFDs", mrep.Tables, len(mrep.Categories), len(mrep.RFDs)),
		maintainTime.Round(time.Millisecond).String())
	// Exploration tier.
	start = time.Now()
	q := c.Tables[0]
	res, err := lake.Explore(context.Background(), "dana", explore.Request{Mode: explore.ModePopulate, Query: c.ByName(q.Name), K: 3})
	if err != nil {
		return nil, err
	}
	hits := 0
	for _, r := range res {
		if c.Joinable[workload.NewPair(q.Name, r.Table)] {
			hits++
		}
	}
	sqlRes, err := lake.QuerySQL(context.Background(), "dana",
		fmt.Sprintf("SELECT %s FROM rel:%s LIMIT 5", c.KeyColumn[q.Name], q.Name))
	if err != nil {
		return nil, err
	}
	exploreTime := time.Since(start)
	rep.Add("exploration", "query-driven discovery, federated SQL",
		fmt.Sprintf("%d/%d related hits, %d SQL rows", hits, len(res), sqlRes.NumRows()),
		exploreTime.Round(time.Millisecond).String())
	return rep, nil
}

// DiscoveryScaling sweeps corpus size and reports index/query time per
// system — the survey's Sec. 6.2.1 claims: Aurum's linear profiling,
// JOSIE's scalability.
func DiscoveryScaling(sizes []int, k int) (*Report, error) {
	rep := &Report{
		Title:  "Sec. 6.2.1: discovery scalability sweep",
		Header: []string{"Tables", "System", "P@k", "Index", "Query/table"},
	}
	for _, n := range sizes {
		spec := workload.CorpusSpec{
			NumTables: n, JoinGroups: n / 5, RowsPerTable: 100,
			ExtraCols: 1, KeyVocab: 300, KeySample: 100, NoiseRate: 0.02, Seed: 42,
		}
		c := workload.GenerateCorpus(spec)
		for _, d := range []discovery.Discoverer{discovery.NewAurum(), discovery.NewJOSIE(), discovery.NewD3L()} {
			p, _, it, qt, err := EvalDiscoverer(d, c, k)
			if err != nil {
				return nil, err
			}
			rep.Add(fmt.Sprintf("%d", n), d.Name(), fmt.Sprintf("%.2f", p),
				it.Round(time.Millisecond).String(), qt.Round(time.Microsecond).String())
		}
	}
	rep.Note("index time should grow near-linearly with table count for LSH-based systems")
	return rep, nil
}

// D3LAblation removes one feature at a time from D3L and reports
// quality — the survey's claim that D3L's accuracy comes from
// combining five signal dimensions.
func D3LAblation(k int) (*Report, error) {
	rep := &Report{
		Title:  "Sec. 6.2.1: D3L feature ablation",
		Header: []string{"Configuration", "P@k", "R@k"},
	}
	// Anonymous column names: every table exposes c0..cN, so the name
	// feature is uninformative (even misleading) and the ablation shows
	// which data-driven features carry the signal.
	spec := workload.CorpusSpec{
		NumTables: 20, JoinGroups: 4, RowsPerTable: 80,
		ExtraCols: 2, KeyVocab: 150, KeySample: 80, NoiseRate: 0.05,
		AnonymousNames: true, Seed: 13,
	}
	c := workload.GenerateCorpus(spec)
	names := []string{"name", "value", "embedding", "format", "distribution"}
	run := func(label string, weights [5]float64) error {
		d := discovery.NewD3L()
		d.Weights = weights
		p, r, _, _, err := EvalDiscoverer(d, c, k)
		if err != nil {
			return err
		}
		rep.Add(label, fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", r))
		return nil
	}
	if err := run("all five features", [5]float64{1, 1, 1, 1, 1}); err != nil {
		return nil, err
	}
	for i, n := range names {
		w := [5]float64{1, 1, 1, 1, 1}
		w[i] = 0
		if err := run("without "+n, w); err != nil {
			return nil, err
		}
	}
	for i, n := range names {
		var w [5]float64
		w[i] = 1
		if err := run("only "+n, w); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// Datamaran sweeps noise rate and reports template recovery — the
// survey's Sec. 5.1 claim of high unsupervised extraction accuracy on
// log corpora.
func Datamaran() (*Report, error) {
	rep := &Report{
		Title:  "Sec. 5.1: DATAMARAN structure extraction accuracy",
		Header: []string{"Templates", "Records", "Noise", "Recovered", "Extracted", "Time"},
	}
	for _, noise := range []float64{0, 0.05, 0.15, 0.3} {
		spec := workload.LogSpec{Templates: 5, Records: 600, NoiseRate: noise, Seed: 9}
		gl := workload.GenerateLog(spec)
		start := time.Now()
		tpls := extract.Datamaran(gl.Content, extract.DefaultDatamaranConfig())
		dur := time.Since(start)
		truth := truthPatterns(gl)
		rec := extract.TemplateRecovery(tpls, truth)
		rep.Add(fmt.Sprintf("%d", spec.Templates), fmt.Sprintf("%d", spec.Records),
			fmt.Sprintf("%.0f%%", noise*100), fmt.Sprintf("%.2f", rec),
			fmt.Sprintf("%d", len(tpls)), dur.Round(time.Millisecond).String())
	}
	rep.Note("recovery = fraction of ground-truth record structures matched exactly, no supervision")
	return rep, nil
}

// truthPatterns regenerates the expected generalized pattern sequences
// from the ground-truth record layout of a generated log.
func truthPatterns(gl *workload.GeneratedLog) [][]string {
	lines := strings.Split(strings.TrimRight(gl.Content, "\n"), "\n")
	var truth [][]string
	seen := map[int]bool{}
	li := 0
	for _, tid := range gl.RecordTemplates {
		tpl := gl.Templates[tid]
		if !seen[tid] {
			var pats []string
			for j := range tpl.Lines {
				pats = append(pats, sketch.RegexPattern(lines[li+j]))
			}
			truth = append(truth, pats)
			seen[tid] = true
		}
		li += len(tpl.Lines)
		for li < len(lines) && strings.HasPrefix(lines[li], "# noise") {
			li++
		}
	}
	return truth
}

// ExplorationModes scores the three Sec. 7.1 exploration modes on one
// corpus.
func ExplorationModes(k int) (*Report, error) {
	rep := &Report{
		Title:  "Sec. 7.1: exploration input/output modes",
		Header: []string{"Mode", "Input", "Mean hits@k", "Query/table"},
	}
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 16, JoinGroups: 4, RowsPerTable: 80,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, NoiseRate: 0.02, Seed: 29,
	})
	e := explore.NewExplorer()
	if err := e.Index(c.Tables); err != nil {
		return nil, err
	}
	modes := []struct {
		mode  explore.Mode
		label string
		input string
	}{
		{explore.ModeJoinColumn, "1: joinable on column (JOSIE)", "table + column"},
		{explore.ModePopulate, "2: populate table (D3L)", "table"},
		{explore.ModeTask, "3: task-specific (Juneau)", "table + task"},
	}
	for _, m := range modes {
		var hits, total int
		start := time.Now()
		for _, tbl := range c.Tables {
			req := explore.Request{Mode: m.mode, Query: tbl, K: k, Column: c.KeyColumn[tbl.Name], Task: discovery.TaskAugment}
			res, err := e.Explore(req)
			if err != nil {
				return nil, err
			}
			for _, r := range res {
				total++
				if c.Joinable[workload.NewPair(tbl.Name, r.Table)] {
					hits++
				}
			}
		}
		dur := time.Since(start) / time.Duration(len(c.Tables))
		frac := 0.0
		if total > 0 {
			frac = float64(hits) / float64(total)
		}
		rep.Add(m.label, m.input, fmt.Sprintf("%.2f", frac), dur.Round(time.Microsecond).String())
	}
	return rep, nil
}

// Pushdown measures federated query latency with and without predicate
// pushdown — the optimization Constance and Ontario describe in
// Sec. 7.2.
func Pushdown(dir string, rows int) (*Report, error) {
	rep := &Report{
		Title:  "Sec. 7.2: federated querying with/without predicate pushdown",
		Header: []string{"Query", "Pushdown", "Rows", "Latency"},
	}
	p, err := polystore.New(dir)
	if err != nil {
		return nil, err
	}
	var csv strings.Builder
	csv.WriteString("id,site,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csv, "%d,s%d,%d\n", i, i%50, i%997)
	}
	if _, err := p.Ingest("raw/big.csv", []byte(csv.String())); err != nil {
		return nil, err
	}
	var jsonl strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&jsonl, "{\"site\":\"s%d\",\"v\":%d}\n", i%50, i%997)
	}
	if _, err := p.Ingest("raw/events.jsonl", []byte(jsonl.String())); err != nil {
		return nil, err
	}
	queries := []string{
		"SELECT id FROM rel:big WHERE site = 's7'",
		"SELECT site FROM doc:events WHERE v > 900",
	}
	for _, sql := range queries {
		for _, push := range []bool{true, false} {
			e := query.NewEngine(p)
			e.PushDown = push
			start := time.Now()
			var got *table.Table
			for i := 0; i < 5; i++ {
				got, err = e.ExecuteSQL(context.Background(), sql)
				if err != nil {
					return nil, err
				}
			}
			dur := time.Since(start) / 5
			rep.Add(sql, fmt.Sprintf("%v", push), fmt.Sprintf("%d", got.NumRows()),
				dur.Round(time.Microsecond).String())
		}
	}
	rep.Note("pushdown evaluates predicates inside member stores; identical results, lower central cost")
	return rep, nil
}

// JoinabilityVsSemantic contrasts JOSIE's exact-overlap search with
// PEXESO's semantic matching on disjoint-but-related vocabularies —
// the Sec. 6.2.3 motivation for semantic joinability.
func JoinabilityVsSemantic() (*Report, error) {
	rep := &Report{
		Title:  "Sec. 6.2.3: exact vs semantic joinability",
		Header: []string{"System", "Exact-overlap pair found", "Semantic-only pair found"},
	}
	// Exact pair: a/b share values. Semantic pair: c/d share vocabulary
	// context but no values.
	a, _ := table.ParseCSV("a", "color\nred\ngreen\nblue\nyellow\n")
	b, _ := table.ParseCSV("b", "colour\nred\ngreen\nblue\npurple\n")
	cTbl, _ := table.ParseCSV("c", "shade\ncrimson\nscarlet\nruby\nmaroon\n")
	d, _ := table.ParseCSV("d", "tone\ncrimson avec\nscarlet avec\nruby avec\nmaroon avec\n")
	corpus := []*table.Table{a, b, cTbl, d}
	find := func(disc discovery.Discoverer, q *table.Table, want string) bool {
		for _, ts := range disc.RelatedTables(q, 2) {
			if ts.Table == want {
				return true
			}
		}
		return false
	}
	j := discovery.NewJOSIE()
	if err := j.Index(corpus); err != nil {
		return nil, err
	}
	px := discovery.NewPEXESO()
	px.Tau = 0.65
	px.JoinabilityThreshold = 0.4
	if err := px.Index(corpus); err != nil {
		return nil, err
	}
	rep.Add("JOSIE", fmt.Sprintf("%v", find(j, a, "b")), fmt.Sprintf("%v", find(j, cTbl, "d")))
	rep.Add("PEXESO", fmt.Sprintf("%v", find(px, a, "b")), fmt.Sprintf("%v", find(px, cTbl, "d")))
	rep.Note("semantic-only pair shares tokens through multi-token values, not whole cell values")
	return rep, nil
}

// EKGSummary reports the knowledge-graph shape Aurum builds on the
// default corpus (Sec. 5.2.3).
func EKGSummary() (*Report, error) {
	rep := &Report{
		Title:  "Sec. 5.2.3: Aurum enterprise knowledge graph",
		Header: []string{"Metric", "Value"},
	}
	c := workload.GenerateCorpus(DefaultCorpusSpec())
	a := discovery.NewAurum()
	start := time.Now()
	if err := a.Index(c.Tables); err != nil {
		return nil, err
	}
	dur := time.Since(start)
	g := a.EKG()
	rep.Add("columns (nodes)", fmt.Sprintf("%d", g.NumColumns()))
	rep.Add("edges", fmt.Sprintf("%d", g.NumEdges()))
	rep.Add("hyperedges (tables)", fmt.Sprintf("%d", len(g.Hyperedges())))
	rep.Add("build time", dur.Round(time.Millisecond).String())
	// Path primitive between two related key columns.
	names := c.TableNames()
	var pathLen int
	for p := range c.Joinable {
		from := metamodel.ColumnRef{Table: p.A, Column: c.KeyColumn[p.A]}
		to := metamodel.ColumnRef{Table: p.B, Column: c.KeyColumn[p.B]}
		if path := g.PathBetween(from, to, 0.3); path != nil {
			pathLen = len(path)
			break
		}
	}
	rep.Add("sample discovery path length", fmt.Sprintf("%d", pathLen))
	_ = names
	return rep, nil
}

// LakehouseReport exercises the Sec. 8.3 future direction — ACID table
// storage with time travel and data skipping over the lake's file
// store — and reports transactional behaviour plus the skipping win.
func LakehouseReport(dir string, filesN, rowsPer int) (*Report, error) {
	rep := &Report{
		Title:  "Sec. 8.3: Lakehouse — transactions, time travel, data skipping",
		Header: []string{"Capability", "Result"},
	}
	lh, err := lakehouse.Open(dir)
	if err != nil {
		return nil, err
	}
	// Build a table of filesN files with disjoint value ranges.
	mk := func(base int) *table.Table {
		var sb strings.Builder
		sb.WriteString("id,v\n")
		for i := 0; i < rowsPer; i++ {
			fmt.Fprintf(&sb, "%d,%d\n", base+i, base+i)
		}
		t, _ := table.ParseCSV("metrics", sb.String())
		return t
	}
	if err := lh.Create(mk(0)); err != nil {
		return nil, err
	}
	v := 1
	for f := 1; f < filesN; f++ {
		v, err = lh.Append("metrics", v, mk(f*10000))
		if err != nil {
			return nil, err
		}
	}
	rep.Add("commits", fmt.Sprintf("%d versions, head v%d", v, v))
	// Optimistic concurrency: a stale writer conflicts.
	if _, err := lh.Append("metrics", 1, mk(999999)); err != nil {
		rep.Add("optimistic concurrency", "stale commit rejected: "+firstLine(err.Error()))
	} else {
		rep.Add("optimistic concurrency", "FAILED: stale commit accepted")
	}
	// Time travel.
	old, err := lh.ReadAt("metrics", 1)
	if err != nil {
		return nil, err
	}
	now, _, err := lh.Read("metrics")
	if err != nil {
		return nil, err
	}
	rep.Add("time travel", fmt.Sprintf("v1=%d rows, head=%d rows", old.NumRows(), now.NumRows()))
	// Data skipping: range query touching one file.
	start := time.Now()
	got, skipped, err := lh.ScanWhere("metrics", "v", 10000, 10000+float64(rowsPer)-1)
	if err != nil {
		return nil, err
	}
	skipDur := time.Since(start)
	rep.Add("data skipping", fmt.Sprintf("%d/%d files skipped, %d rows in %s",
		skipped, filesN, got.NumRows(), skipDur.Round(time.Microsecond)))
	return rep, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// QueryStreaming compares the row-iterator query pipeline against the
// materialize-then-truncate execution model it replaced, on a LIMIT 10
// query per corpus size: the streamed cost must stay flat while the
// materialized cost grows with the corpus.
func QueryStreaming(dir string, sizes []int) (*Report, error) {
	rep := &Report{
		Title:  "Streaming query pipeline: LIMIT 10 latency vs corpus size",
		Header: []string{"Corpus rows", "Execution", "Rows out", "Latency"},
	}
	for _, rows := range sizes {
		e, err := BigEngine(fmt.Sprintf("%s/stream-%d", dir, rows), rows)
		if err != nil {
			return nil, err
		}
		const reps = 5
		run := func(label string, exec func() (*table.Table, error)) error {
			start := time.Now()
			var got *table.Table
			for i := 0; i < reps; i++ {
				var err error
				if got, err = exec(); err != nil {
					return err
				}
			}
			dur := time.Since(start) / reps
			rep.Add(fmt.Sprint(rows), label, fmt.Sprint(got.NumRows()),
				dur.Round(time.Microsecond).String())
			return nil
		}
		err = run("stream (LIMIT as stage)", func() (*table.Table, error) {
			return e.ExecuteSQL(context.Background(), "SELECT id FROM rel:big LIMIT 10")
		})
		if err != nil {
			return nil, err
		}
		err = run("materialize, then truncate", func() (*table.Table, error) {
			full, err := e.ExecuteSQL(context.Background(), "SELECT id FROM rel:big")
			if err != nil {
				return nil, err
			}
			n := 0
			return full.Filter(func([]string) bool { n++; return n <= 10 }), nil
		})
		if err != nil {
			return nil, err
		}
	}
	rep.Note("the pull-based pipeline stops the scan after LIMIT rows, so cost is O(limit); the old model paid O(corpus) before truncating")
	return rep, nil
}

// MaintenanceIncremental measures the incremental-maintenance win: a
// lake of N maintained datasets receives 1 new dataset; the
// incremental pass must reindex only that dataset (O(new data)) while
// the full rebuild re-profiles everything (O(lake)). The speedup is
// the scaling argument behind background auto-maintenance: per-ingest
// cost stays flat as the lake grows.
func MaintenanceIncremental(dir string, sizes []int) (*Report, error) {
	rep := &Report{
		Title:  "Maintenance: incremental reindexing vs full rebuild (1 new dataset into N maintained)",
		Header: []string{"Tables", "Reindexed", "Incremental", "Full rebuild", "Speedup"},
	}
	for _, n := range sizes {
		lake, err := core.Open(fmt.Sprintf("%s/maint-%d", dir, n))
		if err != nil {
			return nil, err
		}
		lake.AddUser("dana", core.RoleDataScientist)
		c := workload.GenerateCorpus(workload.CorpusSpec{
			NumTables: n, JoinGroups: n / 5, RowsPerTable: 100,
			ExtraCols: 1, KeyVocab: 300, KeySample: 100, Seed: 17,
		})
		ctx := context.Background()
		for _, tbl := range c.Tables {
			if _, err := lake.Ingest(ctx, "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "generator", "dana"); err != nil {
				return nil, err
			}
		}
		if _, err := lake.Maintain(ctx); err != nil {
			return nil, err
		}
		// One new dataset: the incremental pass covers it alone.
		if _, err := lake.Ingest(ctx, "raw/fresh_one.csv", []byte(table.ToCSV(c.Tables[0])), "generator", "dana"); err != nil {
			return nil, err
		}
		start := time.Now()
		inc, err := lake.MaintainIncremental(ctx)
		if err != nil {
			return nil, err
		}
		incTime := time.Since(start)
		if inc.Mode != "incremental" || inc.DatasetsReindexed != 1 {
			return nil, fmt.Errorf("bench: incremental pass reindexed %d datasets in mode %q", inc.DatasetsReindexed, inc.Mode)
		}
		// The comparison baseline: a forced full rebuild of the same
		// corpus.
		start = time.Now()
		full, err := lake.Maintain(ctx)
		if err != nil {
			return nil, err
		}
		fullTime := time.Since(start)
		speedup := float64(fullTime) / float64(incTime)
		rep.Add(fmt.Sprintf("%d", full.Tables),
			fmt.Sprintf("%d vs %d", inc.DatasetsReindexed, full.DatasetsReindexed),
			incTime.Round(time.Microsecond).String(),
			fullTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup))
	}
	rep.Note("incremental pass indexes only datasets ingested since the covered generation; full rebuild re-profiles the whole corpus")
	return rep, nil
}

// LSHShapeAblation sweeps the LSH banding shape (bands x rows at fixed
// signature length) and reports discovery quality and candidate
// counts — the precision/recall knob behind Aurum and D3L that
// DESIGN.md calls out as a design choice.
func LSHShapeAblation() (*Report, error) {
	rep := &Report{
		Title:  "Design ablation: LSH banding shape (128-bit signatures)",
		Header: []string{"Bands x Rows", "approx threshold", "Mean candidates", "P@4", "R@4"},
	}
	// Key overlap tuned so pairwise Jaccard lands around 0.33 — between
	// the soft and strict shape thresholds.
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 24, JoinGroups: 6, RowsPerTable: 160,
		ExtraCols: 1, KeyVocab: 300, KeySample: 150, NoiseRate: 0.05, Seed: 51,
	})
	shapes := [][2]int{{64, 2}, {32, 4}, {16, 8}}
	for _, shape := range shapes {
		bands, rows := shape[0], shape[1]
		idx := sketch.NewLSHIndex(bands, rows)
		sigs := map[string]*sketch.MinHash{}
		for _, t := range c.Tables {
			col, err := t.Column(c.KeyColumn[t.Name])
			if err != nil {
				return nil, err
			}
			sig := sketch.NewMinHash(idx.SignatureLen(), col.DistinctSlice())
			sigs[t.Name] = sig
			if err := idx.Add(t.Name, sig); err != nil {
				return nil, err
			}
		}
		var totalCands int
		results := map[string][]string{}
		var queries []string
		for _, t := range c.Tables {
			queries = append(queries, t.Name)
			cands := idx.Query(sigs[t.Name], 0, t.Name)
			totalCands += len(cands)
			var names []string
			for _, cd := range cands {
				names = append(names, cd.Key)
			}
			if len(names) > 4 {
				names = names[:4]
			}
			results[t.Name] = names
		}
		rel := func(q, cand string) bool { return c.Joinable[workload.NewPair(q, cand)] }
		tot := func(q string) int {
			n := 0
			for pr := range c.Joinable {
				if pr.A == q || pr.B == q {
					n++
				}
			}
			return n
		}
		p, r := workload.TopKQuality(queries, results, 4, rel, tot)
		thresh := math.Pow(1/float64(bands), 1/float64(rows))
		rep.Add(fmt.Sprintf("%dx%d", bands, rows), fmt.Sprintf("%.2f", thresh),
			fmt.Sprintf("%.1f", float64(totalCands)/float64(len(c.Tables))),
			fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", r))
	}
	rep.Note("more bands -> lower collision threshold -> more candidates (recall) at more comparisons (cost)")
	return rep, nil
}

// All runs every experiment and concatenates the reports — what
// cmd/benchreport prints.
func All(dir string) (string, error) {
	var sb strings.Builder
	type gen func() (*Report, error)
	gens := []gen{
		Table1,
		Table2,
		func() (*Report, error) { return Table3(DefaultCorpusSpec(), 4) },
		func() (*Report, error) { return Table3(HardSpec(), 4) },
		func() (*Report, error) { return Fig2(dir + "/fig2") },
		func() (*Report, error) { return DiscoveryScaling([]int{20, 40, 80}, 4) },
		func() (*Report, error) { return D3LAblation(4) },
		Datamaran,
		func() (*Report, error) { return ExplorationModes(3) },
		func() (*Report, error) { return Pushdown(dir+"/pushdown", 20000) },
		JoinabilityVsSemantic,
		EKGSummary,
		func() (*Report, error) { return LakehouseReport(dir+"/lakehouse", 8, 2000) },
		LSHShapeAblation,
		func() (*Report, error) { return MaintenanceIncremental(dir+"/maintenance", []int{20, 40, 80}) },
		func() (*Report, error) { return QueryStreaming(dir+"/streaming", []int{1000, 100000}) },
		func() (*Report, error) { return FanIn([]int{1, 2, 4, 8}) },
	}
	for _, g := range gens {
		rep, err := g()
		if err != nil {
			return sb.String(), err
		}
		sb.WriteString(rep.String())
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}
