package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"

	"golake/internal/core"
	"golake/internal/query"
	"golake/internal/table"
	"golake/internal/workload"
)

// The metrics-overhead benchmark corpus: a few mid-size tables so the
// query hot path dominates and the per-row metric bookkeeping is the
// only variable between configurations.
const (
	obsBenchTables = 4
	obsBenchRows   = 500
)

// MetricsOverheadResults measures the cost of the observability layer
// on the query hot path: the identical drained query — per-source
// metering, trace spans, and the close-time registry fold — run on a
// lake with metrics enabled versus WithMetrics(false). The acceptance
// bar for the trajectory file is single-digit-percent overhead.
func MetricsOverheadResults() ([]BenchResult, error) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: obsBenchTables, JoinGroups: 2, RowsPerTable: obsBenchRows,
		ExtraCols: 1, KeyVocab: 60, KeySample: 40, Seed: 23,
	})
	var out []BenchResult
	for _, cfg := range []struct {
		name    string
		metrics bool
	}{
		{name: "query_metrics_on", metrics: true},
		{name: "query_metrics_off"},
	} {
		cfg := cfg
		dir, err := os.MkdirTemp("", "golake-obsbench-*")
		if err != nil {
			return nil, err
		}
		l, err := core.Open(dir, core.WithMetrics(cfg.metrics))
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		ctx := context.Background()
		l.AddUser("bench", core.RoleDataScientist)
		for _, t := range c.Tables {
			if _, err := l.Ingest(ctx, "raw/"+t.Name+".csv", []byte(table.ToCSV(t)), "bench", "bench"); err != nil {
				l.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		if _, err := l.Maintain(ctx); err != nil {
			l.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		sql := "SELECT id FROM rel:" + c.Tables[0].Name
		// As elsewhere in this package, b.Fatal only kills the bench
		// goroutine, so failures re-surface as errors instead of zero
		// rows in the trajectory file.
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := l.Query(ctx, "bench", query.Request{SQL: sql})
				if err != nil {
					benchErr = fmt.Errorf("%s: %w", cfg.name, err)
					b.Fatal(err)
				}
				n := 0
				for {
					_, err := st.Next(ctx)
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						benchErr = fmt.Errorf("%s: %w", cfg.name, err)
						b.Fatal(err)
					}
					n++
				}
				if err := st.Close(); err != nil {
					benchErr = fmt.Errorf("%s: %w", cfg.name, err)
					b.Fatal(err)
				}
				if n != obsBenchRows {
					benchErr = fmt.Errorf("%s: drained %d rows, want %d", cfg.name, n, obsBenchRows)
					b.Fatalf("drained %d rows, want %d", n, obsBenchRows)
				}
			}
		})
		l.Close()
		os.RemoveAll(dir)
		if benchErr != nil {
			return nil, benchErr
		}
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", cfg.name)
		}
		out = append(out, benchResult(cfg.name, obsBenchRows, r))
	}
	return out, nil
}
