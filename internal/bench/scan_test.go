package bench

import (
	"context"
	"testing"
)

// BenchmarkScanRow measures the row-at-a-time pipeline on the scan
// benchmark query (the DisableBatch escape hatch) — the baseline the
// scan_batch trajectory row is compared against.
func BenchmarkScanRow(b *testing.B) {
	rowEng, _, err := ScanEngines(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	want := scanBenchHits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := DrainScan(ctx, rowEng)
		if err != nil {
			b.Fatal(err)
		}
		if n != want {
			b.Fatalf("drained %d rows, want %d", n, want)
		}
	}
}

// BenchmarkScanBatch measures the columnar batch pipeline on the same
// query, corpus, and store — the tentpole's headline number.
func BenchmarkScanBatch(b *testing.B) {
	_, batchEng, err := ScanEngines(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	want := scanBenchHits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := DrainScan(ctx, batchEng)
		if err != nil {
			b.Fatal(err)
		}
		if n != want {
			b.Fatalf("drained %d rows, want %d", n, want)
		}
	}
}

// TestScanBenchAgreement pins the two pipelines to the same output
// cardinality on the shared corpus — the invariant that makes the
// scan_row/scan_batch trajectory rows comparable.
func TestScanBenchAgreement(t *testing.T) {
	rowEng, batchEng, err := ScanEngines(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want := scanBenchHits()
	if n, err := DrainScan(ctx, rowEng); err != nil || n != want {
		t.Fatalf("row pipeline: n=%d err=%v, want %d", n, err, want)
	}
	if n, err := DrainScan(ctx, batchEng); err != nil || n != want {
		t.Fatalf("batch pipeline: n=%d err=%v, want %d", n, err, want)
	}
}
