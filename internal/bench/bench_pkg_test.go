package bench

import (
	"strings"
	"testing"

	"golake/internal/workload"
)

func TestReportRendering(t *testing.T) {
	r := &Report{Title: "T", Header: []string{"a", "bb"}}
	r.Add("1", "2")
	r.Note("n %d", 5)
	out := r.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "note: n 5") {
		t.Errorf("render = %q", out)
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 11 {
		t.Errorf("rows = %d, want 11 functions", len(rep.Rows))
	}
}

func TestTable2(t *testing.T) {
	rep, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Errorf("rows = %d, want the 4 DAG approaches", len(rep.Rows))
	}
}

func TestTable3SmallCorpus(t *testing.T) {
	spec := workload.CorpusSpec{
		NumTables: 12, JoinGroups: 3, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, NoiseRate: 0.02, Seed: 42,
	}
	rep, err := Table3(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 systems (7 automatic + human-in-loop)", len(rep.Rows))
	}
	// Every system should reach decent precision on this easy corpus.
	for _, row := range rep.Rows {
		if row[3] < "0.70" {
			t.Errorf("%s P@k = %s, want >= 0.70", row[0], row[3])
		}
	}
}

func TestFig2(t *testing.T) {
	rep, err := Fig2(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d, want 3 tiers", len(rep.Rows))
	}
}

func TestDatamaranReport(t *testing.T) {
	rep, err := Datamaran()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Errorf("rows = %d", len(rep.Rows))
	}
	// Zero-noise recovery should be high.
	if rep.Rows[0][3] < "0.80" {
		t.Errorf("zero-noise recovery = %s", rep.Rows[0][3])
	}
}

func TestExplorationModesReport(t *testing.T) {
	rep, err := ExplorationModes(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d", len(rep.Rows))
	}
}

func TestPushdownReport(t *testing.T) {
	rep, err := Pushdown(t.TempDir(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Errorf("rows = %d", len(rep.Rows))
	}
	// Row pairs must return identical row counts (semantics preserved).
	if rep.Rows[0][2] != rep.Rows[1][2] || rep.Rows[2][2] != rep.Rows[3][2] {
		t.Errorf("pushdown changed results: %+v", rep.Rows)
	}
}

func TestJoinabilityVsSemantic(t *testing.T) {
	rep, err := JoinabilityVsSemantic()
	if err != nil {
		t.Fatal(err)
	}
	// JOSIE finds the exact pair but not the semantic-only pair;
	// PEXESO finds both.
	var josie, pexeso []string
	for _, row := range rep.Rows {
		if row[0] == "JOSIE" {
			josie = row
		}
		if row[0] == "PEXESO" {
			pexeso = row
		}
	}
	if josie[1] != "true" || josie[2] != "false" {
		t.Errorf("JOSIE row = %v", josie)
	}
	if pexeso[1] != "true" || pexeso[2] != "true" {
		t.Errorf("PEXESO row = %v", pexeso)
	}
}

func TestLakehouseReport(t *testing.T) {
	rep, err := LakehouseReport(t.TempDir(), 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
	for _, row := range rep.Rows {
		if strings.Contains(row[1], "FAILED") {
			t.Errorf("capability failed: %v", row)
		}
	}
	// 3 of 4 files must be skipped for the single-file range.
	if !strings.Contains(rep.Rows[3][1], "3/4 files skipped") {
		t.Errorf("skipping row = %v", rep.Rows[3])
	}
}

func TestLSHShapeAblation(t *testing.T) {
	rep, err := LSHShapeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Recall must decrease as the threshold rises (softer -> stricter).
	if rep.Rows[0][4] < rep.Rows[2][4] {
		t.Errorf("recall ordering wrong: soft %s vs strict %s", rep.Rows[0][4], rep.Rows[2][4])
	}
}

func TestEKGSummary(t *testing.T) {
	rep, err := EKGSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Errorf("rows = %d", len(rep.Rows))
	}
}

func TestMaintenanceIncrementalReport(t *testing.T) {
	rep, err := MaintenanceIncremental(t.TempDir(), []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The incremental pass covers 1 dataset while the rebuild covers
	// the whole corpus.
	if rep.Rows[0][1] != "1 vs 11" || rep.Rows[1][1] != "1 vs 21" {
		t.Errorf("reindexed columns = %q, %q", rep.Rows[0][1], rep.Rows[1][1])
	}
}
