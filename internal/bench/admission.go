package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"golake/internal/admission"
	"golake/internal/core"
	"golake/internal/query"
	"golake/internal/table"
	"golake/internal/workload"
)

// The admission-overhead benchmark corpus mirrors the metrics one: a
// few mid-size tables so the query hot path dominates and the
// admission fold (admit + effective-limit clamps + deadline context +
// per-row budget accounting) is the only variable.
const (
	admBenchTables = 4
	admBenchRows   = 500
)

// AdmissionOverheadResults prices the admission-controlled serving
// path: the identical drained query run on a bare lake versus one
// behind WithAdmission with a generous quota, deadline, and memory
// budget — the configuration where every query is admitted, so the
// measurement isolates the control overhead (slot bookkeeping, token
// refill, context deadline, budget charge/release per buffered row)
// rather than shedding. The acceptance bar for the trajectory file is
// overhead within noise of the uncontrolled path.
func AdmissionOverheadResults() ([]BenchResult, error) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: admBenchTables, JoinGroups: 2, RowsPerTable: admBenchRows,
		ExtraCols: 1, KeyVocab: 60, KeySample: 40, Seed: 29,
	})
	var out []BenchResult
	for _, cfg := range []struct {
		name string
		opts []core.Option
	}{
		{name: "query_admission_off"},
		{name: "query_admission_on", opts: []core.Option{
			core.WithAdmission(admission.Config{
				MaxConcurrentPerUser: 64,
				RatePerSec:           1e9,
				MaxQueueWait:         time.Second,
				DefaultTimeout:       time.Minute,
				DefaultMemoryRows:    1 << 20,
			}),
		}},
	} {
		cfg := cfg
		dir, err := os.MkdirTemp("", "golake-admbench-*")
		if err != nil {
			return nil, err
		}
		l, err := core.Open(dir, cfg.opts...)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		ctx := context.Background()
		l.AddUser("bench", core.RoleDataScientist)
		for _, t := range c.Tables {
			if _, err := l.Ingest(ctx, "raw/"+t.Name+".csv", []byte(table.ToCSV(t)), "bench", "bench"); err != nil {
				l.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		if _, err := l.Maintain(ctx); err != nil {
			l.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		sql := "SELECT id FROM rel:" + c.Tables[0].Name
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := l.Query(ctx, "bench", query.Request{SQL: sql})
				if err != nil {
					benchErr = fmt.Errorf("%s: %w", cfg.name, err)
					b.Fatal(err)
				}
				n := 0
				for {
					_, err := st.Next(ctx)
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						benchErr = fmt.Errorf("%s: %w", cfg.name, err)
						b.Fatal(err)
					}
					n++
				}
				if err := st.Close(); err != nil {
					benchErr = fmt.Errorf("%s: %w", cfg.name, err)
					b.Fatal(err)
				}
				if n != admBenchRows {
					benchErr = fmt.Errorf("%s: drained %d rows, want %d", cfg.name, n, admBenchRows)
					b.Fatalf("drained %d rows, want %d", n, admBenchRows)
				}
			}
		})
		l.Close()
		os.RemoveAll(dir)
		if benchErr != nil {
			return nil, benchErr
		}
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", cfg.name)
		}
		out = append(out, benchResult(cfg.name, admBenchRows, r))
	}
	return out, nil
}
