package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"golake/internal/query"
	"golake/internal/storage/polystore"
	"golake/internal/table"
)

// The synthetic slow-store federation behind the fan-in benchmarks:
// seven ordinary sources and one whose per-row latency is 10× higher
// (the stand-in for a remote or overloaded member store). Sequential
// union pays the sum of the source durations; parallel fan-in pays
// roughly the slowest source.
// Delays are multiples of a millisecond so time.Sleep granularity does
// not silently flatten the fast/slow ratio.
const (
	fanInFastSources = 7
	fanInFastRows    = 200
	fanInFastDelay   = time.Millisecond
	fanInSlowRows    = 20
	fanInSlowDelay   = 10 * fanInFastDelay
)

// fanInTotalRows is the federation's total row count (rows/s metric).
const fanInTotalRows = fanInFastSources*fanInFastRows + fanInSlowRows

// SlowSource is a synthetic member-store scan with a fixed per-row
// latency. Rows are pre-materialized so the source itself allocates
// nothing per Next — the allocations a benchmark sees are the union
// stage's own.
type SlowSource struct {
	cols  []string
	rows  []query.Row
	delay time.Duration
	pos   int
}

// NewSlowSource builds a single-column source of n rows with the given
// per-row latency.
func NewSlowSource(prefix string, n int, delay time.Duration) *SlowSource {
	rows := make([]query.Row, n)
	for i := range rows {
		rows[i] = query.Row{fmt.Sprintf("%s%d", prefix, i)}
	}
	return &SlowSource{cols: []string{"v"}, rows: rows, delay: delay}
}

// Columns implements query.RowIterator.
func (s *SlowSource) Columns() []string { return s.cols }

// Next implements query.RowIterator, sleeping the per-row latency.
func (s *SlowSource) Next(ctx context.Context) (query.Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close implements query.RowIterator.
func (s *SlowSource) Close() error {
	s.rows = nil
	return nil
}

// SlowFederation builds the benchmark federation fresh (iterators are
// single-use): fanInFastSources ordinary sources plus one 10×-slower
// one.
func SlowFederation() []query.RowIterator {
	sources := make([]query.RowIterator, 0, fanInFastSources+1)
	for i := 0; i < fanInFastSources; i++ {
		sources = append(sources, NewSlowSource(fmt.Sprintf("f%d_", i), fanInFastRows, fanInFastDelay))
	}
	sources = append(sources, NewSlowSource("slow_", fanInSlowRows, fanInSlowDelay))
	return sources
}

// BigEngine builds a query engine over one rows-row relational table
// ("big": id/site/v) backed by a polystore in dir — the shared corpus
// of the streaming benchmarks (go-test benches, the QueryStreaming
// report, and the -json trajectory), so they all measure the same
// table shape.
func BigEngine(dir string, rows int) (*query.Engine, error) {
	p, err := polystore.New(dir)
	if err != nil {
		return nil, err
	}
	big := table.New("big")
	big.Columns = []*table.Column{{Name: "id"}, {Name: "site"}, {Name: "v"}}
	for i := 0; i < rows; i++ {
		if err := big.AppendRow([]string{fmt.Sprint(i), fmt.Sprintf("s%d", i%50), fmt.Sprint(i % 997)}); err != nil {
			return nil, err
		}
	}
	p.Rel.Create(big)
	return query.NewEngine(p), nil
}

// DrainFanIn unions the federation at the given fan-in width and drains
// it, returning the row count — the shared experiment body of the
// BenchmarkUnionParallel go-test bench, the FanIn report, and the -json
// trajectory results, so the three cannot silently measure different
// things.
func DrainFanIn(workers int) (int, error) {
	ctx := context.Background()
	it := query.ParallelUnion(ctx, SlowFederation(), nil, query.FanInOptions{Workers: workers})
	defer it.Close()
	return drainCount(ctx, it)
}

// DrainFanInOrdered is DrainFanIn with an ORDER BY sort stage over the
// union — the configuration that lets fan-in default on: deterministic
// output at any width, at the cost of buffering the result for the
// sort. The BENCH_5 trajectory compares it against PR 4's sequential
// (unsorted) baseline.
func DrainFanInOrdered(workers int) (int, error) {
	ctx := context.Background()
	it := query.Sort(
		query.ParallelUnion(ctx, SlowFederation(), nil, query.FanInOptions{Workers: workers}),
		[]query.OrderKey{{Column: "v"}}, 0)
	defer it.Close()
	return drainCount(ctx, it)
}

func drainCount(ctx context.Context, it query.RowIterator) (int, error) {
	n := 0
	for {
		_, err := it.Next(ctx)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// FanIn measures the parallel fan-in win on the slow-store federation:
// wall-clock per width versus the sequential union (fan-in 1), which
// pays the sum of the sources while parallel fan-in pays roughly the
// slowest one.
func FanIn(widths []int) (*Report, error) {
	rep := &Report{
		Title: fmt.Sprintf("Parallel fan-in: %d sources (one 10x slower per row), bounded buffers",
			fanInFastSources+1),
		Header: []string{"Fan-in", "Rows", "Wall-clock", "vs sequential"},
	}
	const reps = 3
	var seqDur time.Duration
	for _, w := range widths {
		start := time.Now()
		var rows int
		for r := 0; r < reps; r++ {
			var err error
			if rows, err = DrainFanIn(w); err != nil {
				return nil, err
			}
		}
		dur := time.Since(start) / reps
		if w <= 1 {
			seqDur = dur
		}
		speedup := "1.0x (baseline)"
		if w > 1 && dur > 0 && seqDur > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(seqDur)/float64(dur))
		}
		rep.Add(fmt.Sprintf("%d", w), fmt.Sprintf("%d", rows),
			dur.Round(time.Millisecond).String(), speedup)
	}
	rep.Note("fan-in 1 is the sequential union (sum of source durations); wider fan-ins overlap the sources' waits behind bounded per-source buffers, so wall-clock approaches the slowest source")
	return rep, nil
}

// BenchResult is one machine-readable benchmark row of the perf
// trajectory file (BENCH_4.json and successors).
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	RowsPerSec  float64 `json:"rows_per_s"`
}

// benchResult projects a testing benchmark run onto the wire row.
func benchResult(name string, rowsPerOp int, r testing.BenchmarkResult) BenchResult {
	ns := r.NsPerOp()
	rps := 0.0
	if ns > 0 {
		rps = float64(rowsPerOp) * float64(time.Second) / float64(ns)
	}
	return BenchResult{Name: name, NsPerOp: ns, AllocsPerOp: r.AllocsPerOp(), RowsPerSec: rps}
}

// FanInBenchResults runs the fan-in and streaming benchmarks through
// testing.Benchmark and returns their machine-readable results — what
// cmd/benchreport -json serializes. dir is a scratch directory for the
// backing polystore (the caller owns its lifecycle).
func FanInBenchResults(dir string) ([]BenchResult, error) {
	var out []BenchResult
	// b.Fatal inside testing.Benchmark only aborts the bench goroutine —
	// the call returns a zero result instead of an error — so failures
	// are re-surfaced here rather than silently written as zero rows
	// into the trajectory file.
	var benchErr error
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		name := fmt.Sprintf("union_parallel/fanin=%d", w)
		if w == 1 {
			name = "union_sequential"
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := DrainFanIn(w)
				if err != nil {
					benchErr = fmt.Errorf("%s: %w", name, err)
					b.Fatal(err)
				}
				if n != fanInTotalRows {
					benchErr = fmt.Errorf("%s: drained %d rows, want %d", name, n, fanInTotalRows)
					b.Fatalf("drained %d rows, want %d", n, fanInTotalRows)
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", name)
		}
		out = append(out, benchResult(name, fanInTotalRows, r))
	}
	// The ordered variants measure what default-on fan-in actually
	// ships — parallel drain + ORDER BY sort stage — against the same
	// sequential baseline, so the trajectory records the cost of
	// determinism alongside the fan-in win.
	for _, w := range []int{1, 4, 8} {
		w := w
		name := fmt.Sprintf("union_parallel_orderby/fanin=%d", w)
		if w == 1 {
			name = "union_sequential_orderby"
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := DrainFanInOrdered(w)
				if err != nil {
					benchErr = fmt.Errorf("%s: %w", name, err)
					b.Fatal(err)
				}
				if n != fanInTotalRows {
					benchErr = fmt.Errorf("%s: drained %d rows, want %d", name, n, fanInTotalRows)
					b.Fatalf("drained %d rows, want %d", n, fanInTotalRows)
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", name)
		}
		out = append(out, benchResult(name, fanInTotalRows, r))
	}
	// The streaming-vs-materialized pair rides along so the trajectory
	// file covers the whole query hot path, not just the union stage.
	e, err := BigEngine(dir, 100000)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	runSQL := func(name, sql string, rowsPerOp int) error {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.ExecuteSQL(ctx, sql); err != nil {
					benchErr = fmt.Errorf("%s: %w", name, err)
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return benchErr
		}
		if r.N == 0 {
			return fmt.Errorf("%s: benchmark did not run", name)
		}
		out = append(out, benchResult(name, rowsPerOp, r))
		return nil
	}
	if err := runSQL("query_stream_limit10_100k", "SELECT id FROM rel:big LIMIT 10", 10); err != nil {
		return nil, err
	}
	if err := runSQL("query_materialize_100k", "SELECT id FROM rel:big", 100000); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBenchJSON writes benchmark results as indented JSON — the
// in-repo perf trajectory format (BENCH_<pr>.json).
func WriteBenchJSON(path string, results []BenchResult) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
