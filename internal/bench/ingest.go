package bench

import (
	"context"
	"fmt"
	"os"
	"testing"

	"golake/internal/core"
	"golake/internal/persist"
	"golake/internal/table"
	"golake/internal/workload"
)

// The ingest-throughput benchmark corpus: a handful of small CSV
// datasets, regenerated identically per configuration so the three
// durability modes ingest the same bytes.
const (
	ingestBenchTables = 8
	ingestBenchRows   = 50
)

// ingestBenchCorpus pre-renders the benchmark datasets once; the
// benchmark loop only pays Ingest, not CSV generation.
func ingestBenchCorpus() []struct{ path, csv string } {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: ingestBenchTables, JoinGroups: 2, RowsPerTable: ingestBenchRows,
		ExtraCols: 1, KeyVocab: 60, KeySample: 40, Seed: 17,
	})
	out := make([]struct{ path, csv string }, len(c.Tables))
	for i, t := range c.Tables {
		out[i] = struct{ path, csv string }{"raw/" + t.Name + ".csv", table.ToCSV(t)}
	}
	return out
}

// IngestBenchResults measures ingest throughput under the three
// durability configurations — no persistence, WAL without fsync, WAL
// with per-record fsync — so the trajectory file records what crash
// durability costs on the ingest path. Each iteration opens a fresh
// lake over a fresh directory (setup off the clock) and ingests the
// shared corpus.
func IngestBenchResults() ([]BenchResult, error) {
	corpus := ingestBenchCorpus()
	rowsPerOp := ingestBenchTables * ingestBenchRows
	configs := []struct {
		name string
		sync persist.Sync
		wal  bool
	}{
		{name: "ingest_nowal"},
		{name: "ingest_wal_nosync", wal: true, sync: persist.SyncNone},
		{name: "ingest_wal_fsync", wal: true, sync: persist.SyncAlways},
	}
	var out []BenchResult
	for _, cfg := range configs {
		cfg := cfg
		// As in FanInBenchResults: b.Fatal only kills the bench
		// goroutine, so failures are re-surfaced as errors instead of
		// zero rows in the trajectory file.
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "golake-ingestbench-*")
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				var opts []core.Option
				if cfg.wal {
					backend, err := persist.NewLocal(dir+"/.golake", persist.WithSync(cfg.sync))
					if err != nil {
						benchErr = err
						b.Fatal(err)
					}
					opts = append(opts, core.WithPersistence(backend))
				}
				l, err := core.Open(dir, opts...)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				l.AddUser("bench", core.RoleDataScientist)
				b.StartTimer()
				for _, d := range corpus {
					if _, err := l.Ingest(ctx, d.path, []byte(d.csv), "bench", "bench"); err != nil {
						benchErr = fmt.Errorf("%s: %w", cfg.name, err)
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := l.Close(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
				os.RemoveAll(dir)
				b.StartTimer()
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", cfg.name)
		}
		out = append(out, benchResult(cfg.name, rowsPerOp, r))
	}
	return out, nil
}
