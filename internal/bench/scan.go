package bench

import (
	"context"
	"fmt"
	"io"
	"testing"

	"golake/internal/query"
)

// The scan benchmark corpus and query: a selective predicate over a
// wide scan, the shape the columnar batch pipeline targets. The same
// engine, query, and row counts back the go-test benches
// (BenchmarkScan*) and the -json trajectory rows (scan_row /
// scan_batch), so both measure the same work.
const (
	scanBenchRows = 200000
	scanBenchSQL  = "SELECT id, v FROM rel:big WHERE v > 400"
)

// scanBenchHits is the query's output cardinality over scanBenchRows
// rows of the BigEngine corpus (v = i % 997, predicate v > 400).
func scanBenchHits() int {
	n := 0
	for i := 0; i < scanBenchRows; i++ {
		if i%997 > 400 {
			n++
		}
	}
	return n
}

// ScanEngines builds the row-mode and batch-mode engines for the scan
// benchmarks over a shared 200k-row corpus: same polystore, same
// table, only the execution pipeline differs. dir is a scratch
// directory for the backing store (the caller owns its lifecycle).
func ScanEngines(dir string) (row, batch *query.Engine, err error) {
	batch, err = BigEngine(dir, scanBenchRows)
	if err != nil {
		return nil, nil, err
	}
	row = query.NewEngine(batch.Poly)
	row.DisableBatch = true
	return row, batch, nil
}

// DrainScan runs the scan benchmark query through the engine's
// streaming pipeline and returns the output row count — the shared
// experiment body of the scan_row/scan_batch trajectory rows and the
// BenchmarkScan* go-test benches. A stream with a columnar face is
// drained batch-wise through one reused scratch row, the same shape
// the NDJSON serializer uses, so the benchmark measures the pipeline
// rather than a per-row adapter it would never run through.
func DrainScan(ctx context.Context, e *query.Engine) (int, error) {
	st, err := e.Query(ctx, query.Request{SQL: scanBenchSQL})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	n := 0
	if st.BatchOutput() {
		scratch := make([]string, len(st.Columns()))
		for {
			b, err := st.NextBatch(ctx)
			if err == io.EOF {
				return n, nil
			}
			if err != nil {
				return n, err
			}
			for i, bn := 0, b.Len(); i < bn; i++ {
				b.CopyRow(scratch, i)
				n++
			}
		}
	}
	for {
		_, err := st.Next(ctx)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// ScanBenchResults runs the row-versus-columnar scan benchmarks
// through testing.Benchmark and returns their machine-readable
// results. rows/s is normalized on rows scanned (scanBenchRows), not
// rows returned: the pipelines do the same scan work per op and the
// trajectory metric tracks scan throughput.
func ScanBenchResults(dir string) ([]BenchResult, error) {
	rowEng, batchEng, err := ScanEngines(dir)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	want := scanBenchHits()
	var out []BenchResult
	var benchErr error
	run := func(name string, e *query.Engine) error {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := DrainScan(ctx, e)
				if err != nil {
					benchErr = fmt.Errorf("%s: %w", name, err)
					b.Fatal(err)
				}
				if n != want {
					benchErr = fmt.Errorf("%s: drained %d rows, want %d", name, n, want)
					b.Fatalf("drained %d rows, want %d", n, want)
				}
			}
		})
		if benchErr != nil {
			return benchErr
		}
		if r.N == 0 {
			return fmt.Errorf("%s: benchmark did not run", name)
		}
		out = append(out, benchResult(name, scanBenchRows, r))
		return nil
	}
	if err := run("scan_row", rowEng); err != nil {
		return nil, err
	}
	if err := run("scan_batch", batchEng); err != nil {
		return nil, err
	}
	return out, nil
}
