package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"golake/internal/core"
	"golake/internal/query"
	"golake/internal/remote"
)

// The federation benchmark corpus: two member datasets of fedBenchRows
// rows each, queried with a selective predicate so pushdown matters —
// the members filter before a byte crosses the wire.
const (
	fedBenchRows = 20000
	fedBenchMod  = 997
	fedBenchSQL  = "WHERE v > 500"
)

// fedBenchCSV renders one member's dataset.
func fedBenchCSV(prefix string) []byte {
	var sb strings.Builder
	sb.WriteString("id,site,v\n")
	for i := 0; i < fedBenchRows; i++ {
		fmt.Fprintf(&sb, "%s%d,s%d,%d\n", prefix, i, i%50, i%fedBenchMod)
	}
	return []byte(sb.String())
}

// fedBenchLake opens a scratch lake and ingests the named datasets.
// The caller cleans up via the returned func.
func fedBenchLake(datasets []string, opts ...core.Option) (*core.Lake, func(), error) {
	dir, err := os.MkdirTemp("", "golake-fedbench-*")
	if err != nil {
		return nil, nil, err
	}
	l, err := core.Open(dir, opts...)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() { l.Close(); os.RemoveAll(dir) }
	l.AddUser("bench", core.RoleDataScientist)
	for _, ds := range datasets {
		if _, err := l.Ingest(context.Background(), "raw/"+ds+".csv", fedBenchCSV(ds), "bench", "bench"); err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	return l, cleanup, nil
}

// drainLakeQuery runs one SQL statement and counts the rows.
func drainLakeQuery(ctx context.Context, l *core.Lake, sql string, fanIn int) (int, error) {
	st, err := l.Query(ctx, "bench", query.Request{SQL: sql, FanIn: fanIn})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	n := 0
	for {
		_, err := st.Next(ctx)
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// FederationBenchResults prices the distributed hop: the identical
// two-dataset scatter-gather drained through two remote member lakes
// (real HTTP servers, NDJSON streams, predicate pushdown) versus the
// same datasets co-located in one lake. The pair makes the federation
// tax — JSON framing, the network stack, per-member sub-queries —
// visible in the perf trajectory next to the local baseline it rides
// on.
func FederationBenchResults() ([]BenchResult, error) {
	ctx := context.Background()

	// Local baseline: both datasets in one lake.
	local, cleanupLocal, err := fedBenchLake([]string{"fed_a", "fed_b"})
	if err != nil {
		return nil, err
	}
	defer cleanupLocal()

	// Two member lakes, one dataset each, served over real HTTP.
	east, cleanupEast, err := fedBenchLake([]string{"fed_a"})
	if err != nil {
		return nil, err
	}
	defer cleanupEast()
	eastSrv := httptest.NewServer(east.HTTPHandler())
	defer eastSrv.Close()
	west, cleanupWest, err := fedBenchLake([]string{"fed_b"})
	if err != nil {
		return nil, err
	}
	defer cleanupWest()
	westSrv := httptest.NewServer(west.HTTPHandler())
	defer westSrv.Close()

	fed, cleanupFed, err := fedBenchLake(nil,
		core.WithRemoteStore("east", eastSrv.URL, remote.Options{Timeout: time.Minute}),
		core.WithRemoteStore("west", westSrv.URL, remote.Options{Timeout: time.Minute}))
	if err != nil {
		return nil, err
	}
	defer cleanupFed()

	localSQL := "SELECT id, v FROM rel:fed_a, rel:fed_b " + fedBenchSQL
	remoteSQL := "SELECT id, v FROM east:fed_a, west:fed_b " + fedBenchSQL
	wantRows, err := drainLakeQuery(ctx, local, localSQL, 8)
	if err != nil {
		return nil, err
	}
	if got, err := drainLakeQuery(ctx, fed, remoteSQL, 8); err != nil {
		return nil, err
	} else if got != wantRows {
		return nil, fmt.Errorf("federation bench: remote drained %d rows, local %d", got, wantRows)
	}

	var out []BenchResult
	// As elsewhere in this package, b.Fatal only kills the bench
	// goroutine, so failures re-surface as errors instead of zero rows
	// in the trajectory file.
	var benchErr error
	for _, cfg := range []struct {
		name string
		l    *core.Lake
		sql  string
	}{
		{"local_federation/fanin=8", local, localSQL},
		{"remote_scatter_gather/fanin=8", fed, remoteSQL},
	} {
		cfg := cfg
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := drainLakeQuery(ctx, cfg.l, cfg.sql, 8)
				if err != nil {
					benchErr = fmt.Errorf("%s: %w", cfg.name, err)
					b.Fatal(err)
				}
				if n != wantRows {
					benchErr = fmt.Errorf("%s: drained %d rows, want %d", cfg.name, n, wantRows)
					b.Fatalf("drained %d rows, want %d", n, wantRows)
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", cfg.name)
		}
		out = append(out, benchResult(cfg.name, wantRows, r))
	}
	return out, nil
}
