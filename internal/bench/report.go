// Package bench is the shared experiment harness behind the root
// bench_test.go and cmd/benchreport: for every table and figure of the
// survey it regenerates the content empirically on synthetic corpora
// with ground truth, producing the same rows the paper reports plus
// the measured quality/performance numbers the survey's prose claims
// (who wins, by roughly what factor).
package bench

import (
	"fmt"
	"strings"
)

// Report is one regenerated table/figure: a title, column header, and
// rows of cells, rendered as aligned text.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (r *Report) Add(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-text note printed under the table.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report with aligned columns.
func (r *Report) String() string {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("== " + r.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}
