// Package workload generates the synthetic evaluation corpora the bench
// harness runs on. The surveyed discovery systems were evaluated on
// corpora we cannot ship — web-table crawls (JOSIE, D3L), 100 GitHub log
// datasets (DATAMARAN), enterprise query logs (DLN) — so this package
// produces seeded equivalents *with exact ground truth*: which table
// pairs are joinable/unionable, which log lines came from which
// template, which cells were dirtied, and which schema operations
// happened between versions. Ground truth is what lets the benches
// report precision/recall, which the original corpora could only
// approximate by manual labeling.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"golake/internal/table"
)

// CorpusSpec parameterizes web-table corpus generation.
type CorpusSpec struct {
	// NumTables is the total number of tables (>= JoinGroups).
	NumTables int
	// JoinGroups is the number of clusters of mutually joinable and
	// unionable tables. Tables in different groups are unrelated.
	JoinGroups int
	// RowsPerTable is the row count of each table.
	RowsPerTable int
	// ExtraCols is the number of distractor columns per table in
	// addition to the key, category and measure columns.
	ExtraCols int
	// KeyVocab is the size of each group's key-value universe; tables
	// in a group sample KeySample values from it, so expected pairwise
	// overlap is KeySample^2/KeyVocab.
	KeyVocab  int
	KeySample int
	// NoiseRate is the probability that a cell is replaced by a random
	// token (dirties the overlap signal).
	NoiseRate float64
	// AnonymousNames replaces the informative group-prefixed column
	// names with per-table opaque names (c0, c1, ...), removing the
	// attribute-name signal; discovery must then rely on values alone.
	AnonymousNames bool
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSpec is a medium corpus suitable for tests.
func DefaultSpec() CorpusSpec {
	return CorpusSpec{
		NumTables:    40,
		JoinGroups:   8,
		RowsPerTable: 120,
		ExtraCols:    2,
		KeyVocab:     400,
		KeySample:    120,
		NoiseRate:    0.02,
		Seed:         42,
	}
}

// Pair is an unordered table-name pair; Key normalizes the order.
type Pair struct{ A, B string }

// NewPair returns the pair in canonical order.
func NewPair(a, b string) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Corpus is a generated table collection plus ground truth.
type Corpus struct {
	Tables []*table.Table
	// Joinable marks ground-truth joinable pairs (same group: their key
	// columns overlap by construction).
	Joinable map[Pair]bool
	// Unionable marks ground-truth unionable pairs (same group: same
	// schema over the same domains).
	Unionable map[Pair]bool
	// GroupOf maps table name -> join group.
	GroupOf map[string]int
	// KeyColumn maps table name -> the name of its key column.
	KeyColumn map[string]string
}

// TableNames returns the generated table names in order.
func (c *Corpus) TableNames() []string {
	out := make([]string, len(c.Tables))
	for i, t := range c.Tables {
		out[i] = t.Name
	}
	return out
}

// ByName returns the table with the given name, or nil.
func (c *Corpus) ByName(name string) *table.Table {
	for _, t := range c.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// GenerateCorpus builds a corpus per the spec. Tables in group g share:
// a key column "g<g>_key" sampling the group key universe, a categorical
// column "g<g>_cat" over the group vocabulary, and a numeric column
// "g<g>_measure" with group-specific distribution. Distractor columns
// use per-table vocabularies, so they should not create cross-table
// relatedness.
func GenerateCorpus(spec CorpusSpec) *Corpus {
	if spec.NumTables <= 0 || spec.JoinGroups <= 0 {
		panic("workload: invalid corpus spec")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	c := &Corpus{
		Joinable:  map[Pair]bool{},
		Unionable: map[Pair]bool{},
		GroupOf:   map[string]int{},
		KeyColumn: map[string]string{},
	}
	groupMembers := make([][]string, spec.JoinGroups)
	for i := 0; i < spec.NumTables; i++ {
		g := i % spec.JoinGroups
		name := fmt.Sprintf("t%03d_g%02d", i, g)
		tbl := genTable(rng, spec, name, g, i)
		keyCol := fmt.Sprintf("g%02d_key", g)
		if spec.AnonymousNames {
			for ci, col := range tbl.Columns {
				col.Name = fmt.Sprintf("c%d", ci)
			}
			keyCol = "c0"
		}
		c.Tables = append(c.Tables, tbl)
		c.GroupOf[name] = g
		c.KeyColumn[name] = keyCol
		groupMembers[g] = append(groupMembers[g], name)
	}
	for _, members := range groupMembers {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				p := NewPair(members[i], members[j])
				c.Joinable[p] = true
				c.Unionable[p] = true
			}
		}
	}
	return c
}

func genTable(rng *rand.Rand, spec CorpusSpec, name string, g, idx int) *table.Table {
	header := []string{
		fmt.Sprintf("g%02d_key", g),
		fmt.Sprintf("g%02d_cat", g),
		fmt.Sprintf("g%02d_measure", g),
	}
	for e := 0; e < spec.ExtraCols; e++ {
		header = append(header, fmt.Sprintf("x%03d_c%d", idx, e))
	}
	// Sample this table's key subset from the group universe.
	sample := spec.KeySample
	if sample > spec.KeyVocab {
		sample = spec.KeyVocab
	}
	perm := rng.Perm(spec.KeyVocab)[:sample]
	keys := make([]string, sample)
	for i, k := range perm {
		keys[i] = fmt.Sprintf("g%02d_id%05d", g, k)
	}
	catVocab := make([]string, 12)
	for i := range catVocab {
		catVocab[i] = fmt.Sprintf("g%02d_cat_%02d", g, i)
	}
	rows := make([][]string, spec.RowsPerTable)
	for r := range rows {
		row := make([]string, len(header))
		row[0] = keys[r%len(keys)]
		row[1] = catVocab[rng.Intn(len(catVocab))]
		row[2] = fmt.Sprintf("%.3f", rng.NormFloat64()*5+float64(g)*10)
		for e := 0; e < spec.ExtraCols; e++ {
			row[3+e] = fmt.Sprintf("x%03d_v%04d", idx, rng.Intn(500))
		}
		// Noise injection.
		for c := range row {
			if rng.Float64() < spec.NoiseRate {
				row[c] = fmt.Sprintf("noise_%06d", rng.Intn(1_000_000))
			}
		}
		rows[r] = row
	}
	tbl, err := table.FromRows(name, header, rows)
	if err != nil {
		panic(fmt.Sprintf("workload: generated ragged table: %v", err))
	}
	tbl.Meta["group"] = fmt.Sprintf("%d", g)
	tbl.Meta["description"] = fmt.Sprintf("synthetic web table, domain group %d", g)
	return tbl
}

// PrecisionRecall scores a predicted pair set against ground truth.
func PrecisionRecall(predicted []Pair, truth map[Pair]bool) (precision, recall float64) {
	if len(predicted) == 0 {
		if len(truth) == 0 {
			return 1, 1
		}
		return 0, 0
	}
	tp := 0
	seen := map[Pair]bool{}
	for _, p := range predicted {
		if seen[p] {
			continue
		}
		seen[p] = true
		if truth[p] {
			tp++
		}
	}
	precision = float64(tp) / float64(len(seen))
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	return precision, recall
}

// TopKQuality scores per-query top-k result lists: for each query table,
// predicted holds the ranked related tables; relevant(q, r) defines
// ground truth. Returns mean precision@k and recall@k over queries.
func TopKQuality(queries []string, results map[string][]string, k int,
	relevant func(q, r string) bool, totalRelevant func(q string) int) (p, r float64) {
	if len(queries) == 0 {
		return 0, 0
	}
	var sumP, sumR float64
	for _, q := range queries {
		res := results[q]
		if len(res) > k {
			res = res[:k]
		}
		hits := 0
		for _, cand := range res {
			if relevant(q, cand) {
				hits++
			}
		}
		if len(res) > 0 {
			sumP += float64(hits) / float64(len(res))
		}
		if tot := totalRelevant(q); tot > 0 {
			den := tot
			if k < den {
				den = k
			}
			sumR += float64(hits) / float64(den)
		}
	}
	return sumP / float64(len(queries)), sumR / float64(len(queries))
}

// DirtySpec controls error injection for cleaning benchmarks.
type DirtySpec struct {
	NullRate float64
	TypoRate float64
	Seed     int64
}

// CellRef addresses one cell.
type CellRef struct {
	Row int
	Col int
}

// Dirty returns a dirtied copy of t plus the ground-truth list of
// corrupted cells. Typos perturb one character; nulls blank the cell.
func Dirty(t *table.Table, spec DirtySpec) (*table.Table, []CellRef) {
	rng := rand.New(rand.NewSource(spec.Seed))
	out := t.Clone()
	var dirt []CellRef
	for ci, col := range out.Columns {
		for ri := range col.Cells {
			switch {
			case rng.Float64() < spec.NullRate:
				col.Cells[ri] = ""
				dirt = append(dirt, CellRef{Row: ri, Col: ci})
			case rng.Float64() < spec.TypoRate && len(col.Cells[ri]) > 1:
				col.Cells[ri] = typo(rng, col.Cells[ri])
				dirt = append(dirt, CellRef{Row: ri, Col: ci})
			}
		}
	}
	return out, dirt
}

func typo(rng *rand.Rand, s string) string {
	b := []byte(s)
	i := rng.Intn(len(b))
	b[i] = byte('a' + rng.Intn(26))
	if string(b) == s {
		b[i] = byte('z' - (b[i] - 'a')) // force a change
	}
	return string(b)
}

// Notebook models a Juneau/KAYAK data-science workflow for organization
// and provenance benchmarks: a chain of derived tables with the
// operation that produced each.
type Notebook struct {
	// Steps[i] derives Tables[i+1] from Tables[i].
	Tables []*table.Table
	Steps  []string
}

// GenerateNotebook derives nSteps tables from base by alternating
// filter/project/append operations; deterministic in seed.
func GenerateNotebook(base *table.Table, nSteps int, seed int64) *Notebook {
	rng := rand.New(rand.NewSource(seed))
	nb := &Notebook{Tables: []*table.Table{base}}
	cur := base
	ops := []string{"filter", "project", "sample"}
	for i := 0; i < nSteps; i++ {
		op := ops[i%len(ops)]
		var next *table.Table
		switch op {
		case "filter":
			cut := rng.Intn(cur.NumRows() + 1)
			n := 0
			next = cur.Filter(func([]string) bool { n++; return n <= cut })
		case "project":
			names := cur.ColumnNames()
			keep := names[:1+rng.Intn(len(names))]
			next, _ = cur.Project(keep...)
		default: // sample every other row
			n := 0
			next = cur.Filter(func([]string) bool { n++; return n%2 == 0 })
		}
		next.Name = fmt.Sprintf("%s_v%d", base.Name, i+1)
		nb.Tables = append(nb.Tables, next)
		nb.Steps = append(nb.Steps, op)
		cur = next
	}
	return nb
}

// JoinQueryLog synthesizes the enterprise query log DLN trains on: each
// entry is a pair of column identifiers ("table.column") that appeared
// together in a JOIN clause. Positive pairs come from ground-truth
// joinable tables in the corpus.
func JoinQueryLog(c *Corpus, maxEntries int, seed int64) [][2]string {
	rng := rand.New(rand.NewSource(seed))
	var pos [][2]string
	for p := range c.Joinable {
		pos = append(pos, [2]string{
			p.A + "." + c.KeyColumn[p.A],
			p.B + "." + c.KeyColumn[p.B],
		})
	}
	// Deterministic order before shuffling (map iteration is random).
	sortPairs(pos)
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	if maxEntries > 0 && len(pos) > maxEntries {
		pos = pos[:maxEntries]
	}
	return pos
}

func sortPairs(ps [][2]string) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b [2]string) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// FormatPair renders "a⋈b" for reports.
func FormatPair(p Pair) string { return strings.Join([]string{p.A, p.B}, "⋈") }
