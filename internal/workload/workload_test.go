package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"golake/internal/sketch"
	"golake/internal/table"
)

func TestGenerateCorpusShape(t *testing.T) {
	spec := DefaultSpec()
	c := GenerateCorpus(spec)
	if len(c.Tables) != spec.NumTables {
		t.Fatalf("tables = %d, want %d", len(c.Tables), spec.NumTables)
	}
	for _, tbl := range c.Tables {
		if tbl.NumRows() != spec.RowsPerTable {
			t.Errorf("%s rows = %d, want %d", tbl.Name, tbl.NumRows(), spec.RowsPerTable)
		}
		if tbl.NumCols() != 3+spec.ExtraCols {
			t.Errorf("%s cols = %d, want %d", tbl.Name, tbl.NumCols(), 3+spec.ExtraCols)
		}
	}
}

func TestCorpusGroundTruthSymmetricAndGrouped(t *testing.T) {
	c := GenerateCorpus(CorpusSpec{
		NumTables: 12, JoinGroups: 3, RowsPerTable: 50,
		ExtraCols: 1, KeyVocab: 100, KeySample: 50, Seed: 1,
	})
	// 12 tables in 3 groups of 4 -> C(4,2)*3 = 18 joinable pairs.
	if len(c.Joinable) != 18 {
		t.Errorf("joinable pairs = %d, want 18", len(c.Joinable))
	}
	for p := range c.Joinable {
		if c.GroupOf[p.A] != c.GroupOf[p.B] {
			t.Errorf("joinable pair crosses groups: %v", p)
		}
	}
}

func TestCorpusKeyOverlapMatchesGroundTruth(t *testing.T) {
	c := GenerateCorpus(CorpusSpec{
		NumTables: 6, JoinGroups: 2, RowsPerTable: 80,
		ExtraCols: 0, KeyVocab: 100, KeySample: 60, NoiseRate: 0, Seed: 9,
	})
	// Same-group tables must share key values; different groups must not.
	var sameOverlap, crossOverlap int
	for i := 0; i < len(c.Tables); i++ {
		for j := i + 1; j < len(c.Tables); j++ {
			a, b := c.Tables[i], c.Tables[j]
			ka, _ := a.Column(c.KeyColumn[a.Name])
			kb, _ := b.Column(c.KeyColumn[b.Name])
			ov := sketch.Overlap(ka.Distinct(), kb.Distinct())
			if c.Joinable[NewPair(a.Name, b.Name)] {
				sameOverlap += ov
				if ov == 0 {
					t.Errorf("joinable pair %s/%s has zero key overlap", a.Name, b.Name)
				}
			} else {
				crossOverlap += ov
				if ov != 0 {
					t.Errorf("non-joinable pair %s/%s overlaps: %d", a.Name, b.Name, ov)
				}
			}
		}
	}
	if sameOverlap == 0 {
		t.Error("no same-group overlap at all")
	}
}

func TestCorpusDeterminism(t *testing.T) {
	s := DefaultSpec()
	a := GenerateCorpus(s)
	b := GenerateCorpus(s)
	for i := range a.Tables {
		if table.ToCSV(a.Tables[i]) != table.ToCSV(b.Tables[i]) {
			t.Fatalf("corpus not deterministic at table %d", i)
		}
	}
}

func TestPrecisionRecall(t *testing.T) {
	truth := map[Pair]bool{NewPair("a", "b"): true, NewPair("c", "d"): true}
	p, r := PrecisionRecall([]Pair{NewPair("a", "b"), NewPair("a", "c")}, truth)
	if p != 0.5 || r != 0.5 {
		t.Errorf("P/R = %v/%v, want 0.5/0.5", p, r)
	}
	p, r = PrecisionRecall(nil, truth)
	if p != 0 || r != 0 {
		t.Errorf("empty predictions P/R = %v/%v", p, r)
	}
	p, r = PrecisionRecall(nil, map[Pair]bool{})
	if p != 1 || r != 1 {
		t.Errorf("empty/empty P/R = %v/%v, want 1/1", p, r)
	}
	// Duplicates count once.
	p, _ = PrecisionRecall([]Pair{NewPair("a", "b"), NewPair("b", "a")}, truth)
	if p != 1 {
		t.Errorf("dup precision = %v, want 1", p)
	}
}

func TestTopKQuality(t *testing.T) {
	queries := []string{"q1"}
	results := map[string][]string{"q1": {"r1", "r2", "r3"}}
	rel := func(q, r string) bool { return r == "r1" || r == "r3" }
	tot := func(q string) int { return 2 }
	p, r := TopKQuality(queries, results, 2, rel, tot)
	if p != 0.5 || r != 0.5 {
		t.Errorf("P@2/R@2 = %v/%v, want 0.5/0.5", p, r)
	}
	p, r = TopKQuality(nil, results, 2, rel, tot)
	if p != 0 || r != 0 {
		t.Errorf("no queries = %v/%v", p, r)
	}
}

func TestDirtyInjection(t *testing.T) {
	tbl, _ := table.ParseCSV("t", "a,b\nfoo,bar\nbaz,qux\nquu,corge\n")
	dirty, refs := Dirty(tbl, DirtySpec{NullRate: 0.5, TypoRate: 0.5, Seed: 3})
	if len(refs) == 0 {
		t.Fatal("no cells dirtied at 50% rates")
	}
	changed := 0
	for ci, col := range dirty.Columns {
		for ri := range col.Cells {
			if col.Cells[ri] != tbl.Columns[ci].Cells[ri] {
				changed++
			}
		}
	}
	if changed != len(refs) {
		t.Errorf("changed cells = %d, ground truth = %d", changed, len(refs))
	}
	// Original untouched.
	if tbl.Columns[0].Cells[0] != "foo" {
		t.Error("Dirty mutated the input table")
	}
}

func TestGenerateLogGroundTruth(t *testing.T) {
	spec := LogSpec{Templates: 3, Records: 100, NoiseRate: 0.1, Seed: 5}
	gl := GenerateLog(spec)
	if len(gl.Templates) != 3 {
		t.Fatalf("templates = %d", len(gl.Templates))
	}
	if len(gl.RecordTemplates) != 100 {
		t.Fatalf("record count = %d", len(gl.RecordTemplates))
	}
	lines := strings.Split(strings.TrimRight(gl.Content, "\n"), "\n")
	if len(lines) < 100 {
		t.Errorf("too few lines: %d", len(lines))
	}
	// All three templates should appear.
	seen := map[int]bool{}
	for _, tid := range gl.RecordTemplates {
		seen[tid] = true
	}
	if len(seen) != 3 {
		t.Errorf("templates used = %v", seen)
	}
	// Determinism.
	gl2 := GenerateLog(spec)
	if gl2.Content != gl.Content {
		t.Error("log generation not deterministic")
	}
}

func TestGenerateVersions(t *testing.T) {
	spec := SchemaVersionSpec{Versions: 6, DocsPer: 5, Seed: 11}
	vd := GenerateVersions(spec)
	if len(vd.Versions) != 6 || len(vd.Ops) != 5 {
		t.Fatalf("versions/ops = %d/%d", len(vd.Versions), len(vd.Ops))
	}
	// Every doc is valid JSON and has exactly the fields of its version.
	for v, docs := range vd.Versions {
		for _, raw := range docs {
			var m map[string]any
			if err := json.Unmarshal([]byte(raw), &m); err != nil {
				t.Fatalf("version %d doc invalid JSON: %v", v, err)
			}
			if len(m) != len(vd.FieldsAt[v]) {
				t.Errorf("version %d doc fields = %d, want %d", v, len(m), len(vd.FieldsAt[v]))
			}
			for f := range m {
				if !vd.FieldsAt[v][f] {
					t.Errorf("version %d doc has unexpected field %q", v, f)
				}
			}
		}
	}
	// Ops are consistent with the field sets.
	for _, op := range vd.Ops {
		before, after := vd.FieldsAt[op.FromVersion], vd.FieldsAt[op.FromVersion+1]
		switch op.Kind {
		case "add":
			if before[op.Field] || !after[op.Field] {
				t.Errorf("bad add op %+v", op)
			}
		case "delete":
			if !before[op.Field] || after[op.Field] {
				t.Errorf("bad delete op %+v", op)
			}
		case "rename":
			if !before[op.Field] || after[op.Field] || !after[op.NewField] {
				t.Errorf("bad rename op %+v", op)
			}
		}
	}
}

func TestGenerateNotebook(t *testing.T) {
	base, _ := table.ParseCSV("base", "a,b\n1,2\n3,4\n5,6\n7,8\n")
	nb := GenerateNotebook(base, 4, 2)
	if len(nb.Tables) != 5 || len(nb.Steps) != 4 {
		t.Fatalf("notebook shape = %d tables %d steps", len(nb.Tables), len(nb.Steps))
	}
	for i, tbl := range nb.Tables[1:] {
		if tbl.Name != "base_v"+string(rune('1'+i)) {
			t.Errorf("step %d table name = %q", i, tbl.Name)
		}
		if tbl.NumRows() > base.NumRows() {
			t.Errorf("derived table grew: %d rows", tbl.NumRows())
		}
	}
}

func TestJoinQueryLog(t *testing.T) {
	c := GenerateCorpus(CorpusSpec{NumTables: 8, JoinGroups: 2, RowsPerTable: 20, KeyVocab: 50, KeySample: 30, Seed: 4})
	log := JoinQueryLog(c, 5, 1)
	if len(log) != 5 {
		t.Fatalf("log entries = %d, want 5", len(log))
	}
	for _, e := range log {
		if !strings.Contains(e[0], ".") || !strings.Contains(e[1], ".") {
			t.Errorf("entry not table.column: %v", e)
		}
	}
	unlimited := JoinQueryLog(c, 0, 1)
	if len(unlimited) != len(c.Joinable) {
		t.Errorf("unlimited log = %d, want %d", len(unlimited), len(c.Joinable))
	}
}

func TestFormatPair(t *testing.T) {
	if got := FormatPair(NewPair("b", "a")); got != "a⋈b" {
		t.Errorf("FormatPair = %q", got)
	}
}
