package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// LogTemplate is one ground-truth record structure of a generated log
// file. Lines lists the per-line skeletons with %d / %s placeholders.
type LogTemplate struct {
	ID    int
	Lines []string
}

// LogSpec controls log-file generation for the DATAMARAN benchmark.
type LogSpec struct {
	// Templates is how many distinct record structures to embed.
	Templates int
	// Records is how many records to emit.
	Records int
	// NoiseRate is the probability of a junk line between records
	// (DATAMARAN must tolerate non-record content).
	NoiseRate float64
	Seed      int64
}

// DefaultLogSpec returns a moderate log workload.
func DefaultLogSpec() LogSpec {
	return LogSpec{Templates: 4, Records: 400, NoiseRate: 0.05, Seed: 7}
}

// GeneratedLog is a synthetic log plus ground truth.
type GeneratedLog struct {
	Content   string
	Templates []LogTemplate
	// LineTemplate maps emitted record index -> template ID.
	RecordTemplates []int
}

// logSkeletons are the multi-line record shapes available to the
// generator, mimicking the machine-generated GitHub logs DATAMARAN was
// evaluated on: records span multiple lines and field values vary.
// Placeholders: %s a word, %d a number, %t a date. Each skeleton
// generalizes to exactly one character-class pattern sequence, which is
// what makes exact ground-truth recovery scoring possible.
var logSkeletons = [][]string{
	{"%t INFO  request user=%s path=/api/%s status=%d"},
	{"%t ERROR %s failed code=%d", "    at module %s line %d"},
	{"[session %d] login user=%s", "[session %d] region=%s latency=%dms"},
	{"txn %d BEGIN", "txn %d WRITE table=%s rows=%d", "txn %d COMMIT"},
	{"%t WARN  disk=%s usage=%d%%"},
	{"event id=%d kind=%s", "  payload bytes=%d checksum=%s"},
}

var logWords = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}

// GenerateLog emits a log file with records drawn from spec.Templates
// distinct skeletons interleaved with noise lines.
func GenerateLog(spec LogSpec) *GeneratedLog {
	if spec.Templates <= 0 || spec.Templates > len(logSkeletons) {
		spec.Templates = len(logSkeletons)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	gl := &GeneratedLog{}
	for i := 0; i < spec.Templates; i++ {
		gl.Templates = append(gl.Templates, LogTemplate{ID: i, Lines: logSkeletons[i]})
	}
	var sb strings.Builder
	for r := 0; r < spec.Records; r++ {
		tid := rng.Intn(spec.Templates)
		gl.RecordTemplates = append(gl.RecordTemplates, tid)
		for _, skel := range gl.Templates[tid].Lines {
			sb.WriteString(fillSkeleton(rng, skel))
			sb.WriteByte('\n')
		}
		if rng.Float64() < spec.NoiseRate {
			sb.WriteString(fmt.Sprintf("# noise %s %d\n", logWords[rng.Intn(len(logWords))], rng.Intn(1000)))
		}
	}
	gl.Content = sb.String()
	return gl
}

// fillSkeleton substitutes %s with a word and %d with a number, keeping
// %% literal.
func fillSkeleton(rng *rand.Rand, skel string) string {
	var sb strings.Builder
	for i := 0; i < len(skel); i++ {
		if skel[i] != '%' || i+1 >= len(skel) {
			sb.WriteByte(skel[i])
			continue
		}
		switch skel[i+1] {
		case 's':
			sb.WriteString(logWords[rng.Intn(len(logWords))])
			i++
		case 't':
			sb.WriteString(fmt.Sprintf("2024-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)))
			i++
		case 'd':
			sb.WriteString(fmt.Sprintf("%d", rng.Intn(100000)))
			i++
		case '%':
			sb.WriteByte('%')
			i++
		default:
			sb.WriteByte(skel[i])
		}
	}
	return sb.String()
}

// SchemaVersionSpec drives JSON entity-version generation for the
// Klettke schema-evolution benchmark.
type SchemaVersionSpec struct {
	Versions int
	DocsPer  int
	Seed     int64
}

// SchemaOp is one ground-truth evolution operation between consecutive
// versions.
type SchemaOp struct {
	FromVersion int
	Kind        string // "add", "delete", "rename"
	Field       string
	NewField    string // for rename
}

// VersionedDocs is a stream of JSON documents per version plus the
// ground-truth operations applied between versions.
type VersionedDocs struct {
	// Versions[i] holds the raw JSON documents of version i.
	Versions [][]string
	Ops      []SchemaOp
	// FieldsAt[i] is the field set of version i.
	FieldsAt []map[string]bool
}

// GenerateVersions produces an evolving JSON entity type: version 0 has
// base fields; each later version randomly adds, deletes or renames one
// field.
func GenerateVersions(spec SchemaVersionSpec) *VersionedDocs {
	rng := rand.New(rand.NewSource(spec.Seed))
	fields := map[string]bool{"id": true, "name": true, "value": true, "ts": true}
	next := 0
	vd := &VersionedDocs{}
	for v := 0; v < spec.Versions; v++ {
		if v > 0 {
			op := evolve(rng, fields, &next)
			op.FromVersion = v - 1
			vd.Ops = append(vd.Ops, op)
		}
		snapshot := map[string]bool{}
		for f := range fields {
			snapshot[f] = true
		}
		vd.FieldsAt = append(vd.FieldsAt, snapshot)
		docs := make([]string, spec.DocsPer)
		for d := range docs {
			docs[d] = renderDoc(rng, fields, v, d)
		}
		vd.Versions = append(vd.Versions, docs)
	}
	return vd
}

func evolve(rng *rand.Rand, fields map[string]bool, next *int) SchemaOp {
	names := make([]string, 0, len(fields))
	for f := range fields {
		if f != "id" { // keep the key stable
			names = append(names, f)
		}
	}
	sortStrings(names)
	switch rng.Intn(3) {
	case 0:
		*next++
		f := fmt.Sprintf("field_%d", *next)
		fields[f] = true
		return SchemaOp{Kind: "add", Field: f}
	case 1:
		if len(names) > 1 {
			f := names[rng.Intn(len(names))]
			delete(fields, f)
			return SchemaOp{Kind: "delete", Field: f}
		}
		*next++
		f := fmt.Sprintf("field_%d", *next)
		fields[f] = true
		return SchemaOp{Kind: "add", Field: f}
	default:
		f := names[rng.Intn(len(names))]
		*next++
		nf := fmt.Sprintf("renamed_%d", *next)
		delete(fields, f)
		fields[nf] = true
		return SchemaOp{Kind: "rename", Field: f, NewField: nf}
	}
}

func renderDoc(rng *rand.Rand, fields map[string]bool, version, idx int) string {
	names := make([]string, 0, len(fields))
	for f := range fields {
		names = append(names, f)
	}
	sortStrings(names)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, f := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		switch f {
		case "id":
			fmt.Fprintf(&sb, "%q:%d", f, version*100000+idx)
		case "value":
			fmt.Fprintf(&sb, "%q:%.2f", f, rng.Float64()*100)
		default:
			fmt.Fprintf(&sb, "%q:%q", f, logWords[rng.Intn(len(logWords))])
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
