package explore

import (
	"errors"
	"testing"

	"golake/internal/discovery"
	"golake/internal/table"
	"golake/internal/workload"
)

func indexedExplorer(t *testing.T) (*Explorer, *workload.Corpus) {
	t.Helper()
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 12, JoinGroups: 3, RowsPerTable: 80,
		ExtraCols: 1, KeyVocab: 120, KeySample: 70, NoiseRate: 0.01, Seed: 23,
	})
	e := NewExplorer()
	if err := e.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	return e, c
}

func TestModeJoinColumn(t *testing.T) {
	e, c := indexedExplorer(t)
	q := c.Tables[0]
	res, err := e.Explore(Request{Mode: ModeJoinColumn, Query: q, Column: c.KeyColumn[q.Name], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %+v", res)
	}
	for _, r := range res {
		if !c.Joinable[workload.NewPair(q.Name, r.Table)] {
			t.Errorf("non-joinable result %+v", r)
		}
		if r.Via != "overlap" {
			t.Errorf("via = %q", r.Via)
		}
	}
	// Unknown column errors.
	if _, err := e.Explore(Request{Mode: ModeJoinColumn, Query: q, Column: "ghost", K: 3}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestModePopulate(t *testing.T) {
	e, c := indexedExplorer(t)
	q := c.Tables[1]
	res, err := e.Explore(Request{Mode: ModePopulate, Query: q, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no populate results")
	}
	hits := 0
	for _, r := range res {
		if r.Via == "populate" && c.Joinable[workload.NewPair(q.Name, r.Table)] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("populate quality too low: %+v", res)
	}
}

func TestModeTask(t *testing.T) {
	e, c := indexedExplorer(t)
	q := c.Tables[2]
	res, err := e.Explore(Request{Mode: ModeTask, Query: q, Task: discovery.TaskAugment, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %+v", res)
	}
	for _, r := range res {
		if !c.Unionable[workload.NewPair(q.Name, r.Table)] {
			t.Errorf("augment result not unionable: %+v", r)
		}
		if r.Via != "augment" {
			t.Errorf("via = %q", r.Via)
		}
	}
}

func TestExploreErrors(t *testing.T) {
	e := NewExplorer()
	tbl, _ := table.ParseCSV("q", "a\n1\n")
	if _, err := e.Explore(Request{Mode: ModePopulate, Query: tbl}); !errors.Is(err, ErrNotIndexed) {
		t.Errorf("unindexed explore = %v", err)
	}
	_ = e.Index([]*table.Table{tbl})
	if _, err := e.Explore(Request{Mode: ModePopulate, Query: nil}); err == nil {
		t.Error("nil query should error")
	}
	if _, err := e.Explore(Request{Mode: Mode(99), Query: tbl}); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestPopulateCoverageExtension(t *testing.T) {
	// Build a tiny corpus where a coverage table exists: q relates to a
	// (shared key values); b joins with a on another column and brings
	// new attributes, but b shares nothing with q.
	q, _ := table.ParseCSV("q", "k,v\nk1,1\nk2,2\nk3,3\n")
	a, _ := table.ParseCSV("a", "k,link\nk1,x1\nk2,x2\nk3,x3\n")
	b, _ := table.ParseCSV("b", "link,extra\nx1,e1\nx2,e2\nx3,e3\n")
	e := NewExplorer()
	if err := e.Index([]*table.Table{q, a, b}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Explore(Request{Mode: ModePopulate, Query: q, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	foundCoverage := false
	for _, r := range res {
		if r.Table == "b" && r.Via == "coverage" {
			foundCoverage = true
		}
	}
	if !foundCoverage {
		t.Errorf("coverage extension missing: %+v", res)
	}
}

func TestAddIndexesIncrementally(t *testing.T) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 12, JoinGroups: 3, RowsPerTable: 80,
		ExtraCols: 1, KeyVocab: 120, KeySample: 70, NoiseRate: 0.01, Seed: 23,
	})
	e := NewExplorer()
	// Index everything except the last table, then add it incrementally.
	last := c.Tables[len(c.Tables)-1]
	if err := e.Index(c.Tables[:len(c.Tables)-1]); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(last); err != nil {
		t.Fatal(err)
	}
	if got := e.Size(); got != len(c.Tables) {
		t.Fatalf("size = %d, want %d", got, len(c.Tables))
	}
	// The added table is discoverable both as a query and as a result.
	res, err := e.Explore(Request{Mode: ModePopulate, Query: last, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results for incrementally added query table")
	}
	var partner *table.Table
	for _, tbl := range c.Tables[:len(c.Tables)-1] {
		if c.Joinable[workload.NewPair(last.Name, tbl.Name)] {
			partner = tbl
			break
		}
	}
	if partner == nil {
		t.Fatal("corpus has no joinable partner for the last table")
	}
	res, err = e.Explore(Request{Mode: ModePopulate, Query: partner, K: len(c.Tables)})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Table == last.Name {
			found = true
		}
	}
	if !found {
		t.Errorf("added table %s not discoverable from %s: %+v", last.Name, partner.Name, res)
	}
}

func TestAddSkipsAlreadyIndexedTables(t *testing.T) {
	a, _ := table.ParseCSV("a", "k\nv1\nv2\n")
	e := NewExplorer()
	if err := e.Index([]*table.Table{a}); err != nil {
		t.Fatal(err)
	}
	// Re-adding must not double-index (a retried pass hits this path).
	if err := e.Add(a); err != nil {
		t.Fatal(err)
	}
	if got := e.Size(); got != 1 {
		t.Errorf("size after duplicate add = %d", got)
	}
}

func TestAddOnEmptyExplorerIndexes(t *testing.T) {
	a, _ := table.ParseCSV("a", "k\nv1\nv2\n")
	e := NewExplorer()
	if err := e.Add(a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Explore(Request{Mode: ModePopulate, Query: a, K: 1}); err != nil {
		t.Errorf("explore after bare Add = %v", err)
	}
}

// TestConcurrentAddAndExplore exercises the shared/exclusive locking:
// exploration keeps answering while tables stream in.
func TestConcurrentAddAndExplore(t *testing.T) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 20, JoinGroups: 4, RowsPerTable: 40,
		ExtraCols: 1, KeyVocab: 100, KeySample: 40, Seed: 7,
	})
	e := NewExplorer()
	if err := e.Index(c.Tables[:4]); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for _, tbl := range c.Tables[4:] {
			if err := e.Add(tbl); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	q := c.Tables[0]
	for i := 0; i < 50; i++ {
		if _, err := e.Explore(Request{Mode: ModePopulate, Query: q, K: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := e.Size(); got != len(c.Tables) {
		t.Errorf("size = %d, want %d", got, len(c.Tables))
	}
}

func TestRemoveDropsTableFromEveryMode(t *testing.T) {
	e, c := indexedExplorer(t)
	victim := c.Tables[1].Name
	e.Remove(victim)
	if got := e.Size(); got != len(c.Tables)-1 {
		t.Errorf("size = %d, want %d", got, len(c.Tables)-1)
	}
	for _, name := range e.Tables() {
		if name == victim {
			t.Fatal("removed table still listed")
		}
	}
	q := c.Tables[0]
	reqs := []Request{
		{Mode: ModeJoinColumn, Query: q, Column: c.KeyColumn[q.Name], K: len(c.Tables)},
		{Mode: ModePopulate, Query: q, K: len(c.Tables)},
		{Mode: ModeTask, Query: q, Task: discovery.TaskAugment, K: len(c.Tables)},
	}
	for _, req := range reqs {
		res, err := e.Explore(req)
		if err != nil {
			t.Fatalf("mode %v: %v", req.Mode, err)
		}
		for _, r := range res {
			if r.Table == victim {
				t.Errorf("mode %v still returns removed table", req.Mode)
			}
		}
	}
	// Removing an unknown table is a no-op, not a panic.
	e.Remove("no-such-table")
	// Removing from a never-indexed explorer is safe too.
	NewExplorer().Remove("x")
}
