package explore

import (
	"errors"
	"testing"

	"golake/internal/discovery"
	"golake/internal/table"
	"golake/internal/workload"
)

func indexedExplorer(t *testing.T) (*Explorer, *workload.Corpus) {
	t.Helper()
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 12, JoinGroups: 3, RowsPerTable: 80,
		ExtraCols: 1, KeyVocab: 120, KeySample: 70, NoiseRate: 0.01, Seed: 23,
	})
	e := NewExplorer()
	if err := e.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	return e, c
}

func TestModeJoinColumn(t *testing.T) {
	e, c := indexedExplorer(t)
	q := c.Tables[0]
	res, err := e.Explore(Request{Mode: ModeJoinColumn, Query: q, Column: c.KeyColumn[q.Name], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %+v", res)
	}
	for _, r := range res {
		if !c.Joinable[workload.NewPair(q.Name, r.Table)] {
			t.Errorf("non-joinable result %+v", r)
		}
		if r.Via != "overlap" {
			t.Errorf("via = %q", r.Via)
		}
	}
	// Unknown column errors.
	if _, err := e.Explore(Request{Mode: ModeJoinColumn, Query: q, Column: "ghost", K: 3}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestModePopulate(t *testing.T) {
	e, c := indexedExplorer(t)
	q := c.Tables[1]
	res, err := e.Explore(Request{Mode: ModePopulate, Query: q, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no populate results")
	}
	hits := 0
	for _, r := range res {
		if r.Via == "populate" && c.Joinable[workload.NewPair(q.Name, r.Table)] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("populate quality too low: %+v", res)
	}
}

func TestModeTask(t *testing.T) {
	e, c := indexedExplorer(t)
	q := c.Tables[2]
	res, err := e.Explore(Request{Mode: ModeTask, Query: q, Task: discovery.TaskAugment, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %+v", res)
	}
	for _, r := range res {
		if !c.Unionable[workload.NewPair(q.Name, r.Table)] {
			t.Errorf("augment result not unionable: %+v", r)
		}
		if r.Via != "augment" {
			t.Errorf("via = %q", r.Via)
		}
	}
}

func TestExploreErrors(t *testing.T) {
	e := NewExplorer()
	tbl, _ := table.ParseCSV("q", "a\n1\n")
	if _, err := e.Explore(Request{Mode: ModePopulate, Query: tbl}); !errors.Is(err, ErrNotIndexed) {
		t.Errorf("unindexed explore = %v", err)
	}
	_ = e.Index([]*table.Table{tbl})
	if _, err := e.Explore(Request{Mode: ModePopulate, Query: nil}); err == nil {
		t.Error("nil query should error")
	}
	if _, err := e.Explore(Request{Mode: Mode(99), Query: tbl}); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestPopulateCoverageExtension(t *testing.T) {
	// Build a tiny corpus where a coverage table exists: q relates to a
	// (shared key values); b joins with a on another column and brings
	// new attributes, but b shares nothing with q.
	q, _ := table.ParseCSV("q", "k,v\nk1,1\nk2,2\nk3,3\n")
	a, _ := table.ParseCSV("a", "k,link\nk1,x1\nk2,x2\nk3,x3\n")
	b, _ := table.ParseCSV("b", "link,extra\nx1,e1\nx2,e2\nx3,e3\n")
	e := NewExplorer()
	if err := e.Index([]*table.Table{q, a, b}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Explore(Request{Mode: ModePopulate, Query: q, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	foundCoverage := false
	for _, r := range res {
		if r.Table == "b" && r.Via == "coverage" {
			foundCoverage = true
		}
	}
	if !foundCoverage {
		t.Errorf("coverage extension missing: %+v", res)
	}
}
