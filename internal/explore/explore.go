// Package explore implements the exploration tier's query-driven data
// discovery (Sec. 7.1 of the survey): the three input/output modes the
// survey identifies —
//
//  1. column mode (JOSIE): given a table T and a column c, return the
//     top-k tables joinable with T on c;
//  2. populate mode (D3L): given a table T, return the top-k tables
//     providing relevant attributes to populate T, extended with
//     tables that join with the result set and improve attribute
//     coverage;
//  3. task mode (Juneau): given T and a data-science task, return the
//     top-k most relevant tables under the task's relatedness measure.
//
// The Explorer shares the discovery indexes built by the maintenance
// tier instead of re-indexing per query.
package explore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"golake/internal/discovery"
	"golake/internal/metamodel"
	"golake/internal/table"
)

// Mode selects the exploration input/output mode.
type Mode int

// The three exploration modes of Sec. 7.1.
const (
	ModeJoinColumn Mode = iota
	ModePopulate
	ModeTask
)

// ErrNotIndexed is returned when the explorer has no corpus.
var ErrNotIndexed = errors.New("explore: corpus not indexed")

// Request is one exploration query.
type Request struct {
	Mode Mode
	// Query is the user-specified table.
	Query *table.Table
	// Column is required for ModeJoinColumn.
	Column string
	// Task is used by ModeTask.
	Task discovery.SearchTask
	// K bounds the result size.
	K int
}

// Result is one ranked exploration answer.
type Result struct {
	Table string
	Score float64
	// Via explains the ranking ("overlap", "populate", "coverage",
	// task name).
	Via string
}

// Explorer serves exploration queries over pre-built indexes. Queries
// and incremental Add calls may run concurrently: reads take the
// internal lock shared, index mutation takes it exclusive.
type Explorer struct {
	mu      sync.RWMutex
	corpus  map[string]*table.Table
	josie   *discovery.JOSIE
	d3l     *discovery.D3L
	juneau  map[discovery.SearchTask]*discovery.Juneau
	indexed bool
}

// NewExplorer creates an empty explorer.
func NewExplorer() *Explorer {
	return &Explorer{
		corpus: map[string]*table.Table{},
		juneau: map[discovery.SearchTask]*discovery.Juneau{},
	}
}

// reset discards every index, leaving the explorer empty.
func (e *Explorer) reset() {
	e.corpus = map[string]*table.Table{}
	e.josie = discovery.NewJOSIE()
	e.d3l = discovery.NewD3L()
	e.juneau = map[discovery.SearchTask]*discovery.Juneau{}
	for _, task := range []discovery.SearchTask{discovery.TaskAugment, discovery.TaskFeatures, discovery.TaskClean} {
		e.juneau[task] = discovery.NewJuneau(task)
	}
}

// Index rebuilds all mode indexes from scratch over the corpus.
func (e *Explorer) Index(tables []*table.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reset()
	return e.addLocked(tables)
}

// Add indexes additional tables incrementally — O(new tables) instead
// of O(corpus) — for maintenance passes covering freshly ingested
// datasets. Tables already indexed are skipped, so a retried pass
// cannot double-index. The D3L embedding model is corpus-trained;
// incremental adds extend it without re-embedding older columns, an
// approximation the next full rebuild squares up.
func (e *Explorer) Add(tables ...*table.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.josie == nil {
		e.reset()
	}
	fresh := make([]*table.Table, 0, len(tables))
	for _, t := range tables {
		if _, ok := e.corpus[t.Name]; !ok {
			fresh = append(fresh, t)
		}
	}
	return e.addLocked(fresh)
}

// addLocked indexes tables into the live structures; e.mu must be held
// exclusively.
func (e *Explorer) addLocked(tables []*table.Table) error {
	for _, t := range tables {
		e.corpus[t.Name] = t
	}
	if err := e.josie.Index(tables); err != nil {
		return err
	}
	if err := e.d3l.Index(tables); err != nil {
		return err
	}
	for _, j := range e.juneau {
		if err := j.Index(tables); err != nil {
			return err
		}
	}
	e.indexed = true
	return nil
}

// Remove deletes one table from the corpus and every mode index — the
// incremental eviction counterpart of Add, so dropping a dataset does
// not force a full rebuild. Removing an unindexed table is a no-op.
func (e *Explorer) Remove(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.josie == nil {
		return
	}
	if _, ok := e.corpus[name]; !ok {
		return
	}
	delete(e.corpus, name)
	e.josie.Remove(name)
	e.d3l.Remove(name)
	for _, j := range e.juneau {
		j.Remove(name)
	}
}

// Tables returns the indexed table names, sorted.
func (e *Explorer) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.corpus))
	for name := range e.corpus {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Size reports how many tables the indexes cover.
func (e *Explorer) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.corpus)
}

// Explore answers a request in its mode.
func (e *Explorer) Explore(req Request) ([]Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.indexed {
		return nil, ErrNotIndexed
	}
	if req.Query == nil {
		return nil, fmt.Errorf("explore: nil query table")
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	switch req.Mode {
	case ModeJoinColumn:
		return e.joinColumn(req.Query, req.Column, k)
	case ModePopulate:
		return e.populate(req.Query, k)
	case ModeTask:
		return e.task(req.Query, req.Task, k)
	default:
		return nil, fmt.Errorf("explore: unknown mode %d", req.Mode)
	}
}

// joinColumn is mode 1: exact top-k joinable tables on one column.
func (e *Explorer) joinColumn(q *table.Table, column string, k int) ([]Result, error) {
	matches, err := e.josie.JoinableColumns(q, column, 4*k)
	if err != nil {
		return nil, err
	}
	best := map[string]float64{}
	for _, m := range matches {
		if m.Score > best[m.Ref.Table] {
			best[m.Ref.Table] = m.Score
		}
	}
	out := rankResults(best, k, "overlap")
	return out, nil
}

// populate is mode 2: D3L-ranked relevant tables, extended with
// coverage-improving joinable tables outside the top-k (the Si
// extension the survey describes for D3L).
func (e *Explorer) populate(q *table.Table, k int) ([]Result, error) {
	top := e.d3l.RelatedTables(q, k)
	out := make([]Result, 0, len(top))
	inTop := map[string]bool{q.Name: true}
	covered := map[string]bool{}
	for _, ts := range top {
		inTop[ts.Table] = true
		out = append(out, Result{Table: ts.Table, Score: ts.Score, Via: "populate"})
		for _, col := range e.corpus[ts.Table].ColumnNames() {
			covered[col] = true
		}
	}
	// Coverage extension: a table not in the top-k that joins with a
	// top-k table and contributes attributes the result set lacks.
	for _, ts := range top {
		member := e.corpus[ts.Table]
		if member == nil {
			continue
		}
		for _, joined := range e.josie.RelatedTables(member, k) {
			if inTop[joined.Table] {
				continue
			}
			cand := e.corpus[joined.Table]
			if cand == nil {
				continue
			}
			adds := 0
			for _, col := range cand.ColumnNames() {
				if !covered[col] {
					adds++
				}
			}
			if adds == 0 {
				continue
			}
			inTop[joined.Table] = true
			for _, col := range cand.ColumnNames() {
				covered[col] = true
			}
			out = append(out, Result{Table: joined.Table, Score: joined.Score, Via: "coverage"})
		}
	}
	return out, nil
}

// task is mode 3: Juneau's task-specific relatedness.
func (e *Explorer) task(q *table.Table, task discovery.SearchTask, k int) ([]Result, error) {
	j, ok := e.juneau[task]
	if !ok {
		return nil, fmt.Errorf("explore: unknown task %d", task)
	}
	via := taskName(task)
	var out []Result
	for _, ts := range j.RelatedTables(q, k) {
		out = append(out, Result{Table: ts.Table, Score: ts.Score, Via: via})
	}
	return out, nil
}

func taskName(task discovery.SearchTask) string {
	switch task {
	case discovery.TaskAugment:
		return "augment"
	case discovery.TaskFeatures:
		return "features"
	default:
		return "clean"
	}
}

func rankResults(scores map[string]float64, k int, via string) []Result {
	out := make([]Result, 0, len(scores))
	for t, s := range scores {
		out = append(out, Result{Table: t, Score: s, Via: via})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table < out[j].Table
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// JoinPaths exposes Aurum-style discovery paths between two tables via
// any shared discovery signal, delegating to an EKG when available.
func JoinPaths(ekg *metamodel.EKG, from, to metamodel.ColumnRef, minWeight float64) []metamodel.ColumnRef {
	return ekg.PathBetween(from, to, minWeight)
}
