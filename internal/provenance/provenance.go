// Package provenance implements the data-provenance function of the
// maintenance tier (Sec. 6.7): a provenance graph over entities
// (datasets) and activities (jobs/queries), event capture across
// heterogeneous processing systems normalized into one model
// (Suriarachchi & Plale's integrated provenance), DAG-based lineage
// queries (GOODS, CoreDB), and per-entity audit trails answering "who
// queried this entity" (CoreDB's temporal provenance).
package provenance

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"golake/internal/storage/graphstore"
)

// EventKind classifies captured provenance events.
type EventKind string

// The normalized event kinds; heterogeneous engines (Hadoop, Storm,
// Spark in the paper's use case) map their native events onto these.
const (
	EventIngest  EventKind = "ingest"
	EventRead    EventKind = "read"
	EventWrite   EventKind = "write"
	EventDerive  EventKind = "derive"
	EventQuery   EventKind = "query"
	EventDiscard EventKind = "discard"
)

// Event is one captured provenance event.
type Event struct {
	Seq      int
	Kind     EventKind
	Entity   string
	Activity string
	// System identifies the engine that emitted the event (the
	// cross-system dimension of integrated provenance).
	System string
	User   string
	At     time.Time
}

// ErrUnknownEntity is returned by queries on unrecorded entities.
var ErrUnknownEntity = errors.New("provenance: unknown entity")

// Tracker is the integrated provenance store: an activity-entity graph
// plus the normalized event log.
type Tracker struct {
	mu     sync.Mutex
	g      *graphstore.Graph
	events []Event
	clock  func() time.Time
	seq    int

	hookMu sync.RWMutex
	hook   func(Event)
}

// SetHook installs a callback fired once per newly captured event, in
// capture order. The lake's persistence layer uses it to append audit
// records to the WAL. The hook runs after the tracker's own lock is
// released, so it may call back into Tracker methods; it must not block
// for long (it is on the Ingest/Derive/Query path).
func (t *Tracker) SetHook(hook func(Event)) {
	t.hookMu.Lock()
	defer t.hookMu.Unlock()
	t.hook = hook
}

// fire delivers captured events to the hook, outside t.mu.
func (t *Tracker) fire(evs []Event) {
	if len(evs) == 0 {
		return
	}
	t.hookMu.RLock()
	hook := t.hook
	t.hookMu.RUnlock()
	if hook == nil {
		return
	}
	for _, ev := range evs {
		hook(ev)
	}
}

// NewTracker creates a tracker; clock may be nil (wall clock).
func NewTracker(clock func() time.Time) *Tracker {
	if clock == nil {
		clock = time.Now
	}
	return &Tracker{g: graphstore.New(), clock: clock}
}

// record appends a normalized event.
func (t *Tracker) record(kind EventKind, entity, activity, system, user string) Event {
	t.seq++
	ev := Event{Seq: t.seq, Kind: kind, Entity: entity, Activity: activity, System: system, User: user, At: t.clock()}
	t.events = append(t.events, ev)
	return ev
}

func (t *Tracker) ensureEntity(id string) {
	if !t.g.HasNode("e:" + id) {
		_ = t.g.AddNode("e:"+id, "entity", nil)
	}
}

func (t *Tracker) ensureActivity(id string) {
	if !t.g.HasNode("a:" + id) {
		_ = t.g.AddNode("a:"+id, "activity", nil)
	}
}

// Ingest records the arrival of a new entity from a source system.
func (t *Tracker) Ingest(entity, system, user string) {
	t.mu.Lock()
	t.ensureEntity(entity)
	ev := t.record(EventIngest, entity, "", system, user)
	t.mu.Unlock()
	t.fire([]Event{ev})
}

// Discard records the removal of an entity from the lake (eviction).
// The graph node stays — lineage outlives the data, so downstream
// entities keep their ancestry — but the audit trail shows who dropped
// it and when.
func (t *Tracker) Discard(entity, system, user string) {
	t.mu.Lock()
	t.ensureEntity(entity)
	ev := t.record(EventDiscard, entity, "", system, user)
	t.mu.Unlock()
	t.fire([]Event{ev})
}

// Derive records that an activity consumed the input entities and
// produced the output entity — the core lineage edge; the provenance
// graph gains input->activity->output edges like GOODS's provenance
// graphs.
func (t *Tracker) Derive(activity, system, user string, inputs []string, output string) error {
	t.mu.Lock()
	t.ensureActivity(activity)
	t.ensureEntity(output)
	var evs []Event
	for _, in := range inputs {
		t.ensureEntity(in)
		if _, err := t.g.AddEdge("e:"+in, "a:"+activity, "usedBy", nil); err != nil {
			t.mu.Unlock()
			return err
		}
		evs = append(evs, t.record(EventRead, in, activity, system, user))
	}
	if _, err := t.g.AddEdge("a:"+activity, "e:"+output, "generated", nil); err != nil {
		t.mu.Unlock()
		return err
	}
	evs = append(evs, t.record(EventWrite, output, activity, system, user))
	evs = append(evs, t.record(EventDerive, output, activity, system, user))
	t.mu.Unlock()
	t.fire(evs)
	return nil
}

// Query records a read-only access (who queried the entity).
func (t *Tracker) Query(entity, system, user string) error {
	t.mu.Lock()
	if !t.g.HasNode("e:" + entity) {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownEntity, entity)
	}
	ev := t.record(EventQuery, entity, "", system, user)
	t.mu.Unlock()
	t.fire([]Event{ev})
	return nil
}

// Inject replays one persisted event into the tracker: the event is
// appended verbatim (its Seq and At are preserved, the sequence counter
// advanced past it) and the graph structure it implies is rebuilt —
// EventRead adds the entity->activity edge, EventWrite the
// activity->entity edge. EventDerive carries no edge of its own (its
// Write twin already did), so injecting a full replayed log never
// duplicates edges. The hook is NOT fired: replay must not re-append
// what the WAL already holds.
func (t *Tracker) Inject(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureEntity(ev.Entity)
	if ev.Activity != "" {
		t.ensureActivity(ev.Activity)
	}
	switch ev.Kind {
	case EventRead:
		_, _ = t.g.AddEdge("e:"+ev.Entity, "a:"+ev.Activity, "usedBy", nil)
	case EventWrite:
		_, _ = t.g.AddEdge("a:"+ev.Activity, "e:"+ev.Entity, "generated", nil)
	}
	t.events = append(t.events, ev)
	if ev.Seq > t.seq {
		t.seq = ev.Seq
	}
}

// Upstream returns the entities the given entity transitively derives
// from, sorted — the lineage question "where did this come from".
func (t *Tracker) Upstream(entity string) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.g.HasNode("e:" + entity) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEntity, entity)
	}
	var out []string
	for _, n := range t.g.Reachable("e:"+entity, graphstore.In) {
		if len(n) > 2 && n[:2] == "e:" {
			out = append(out, n[2:])
		}
	}
	sort.Strings(out)
	return out, nil
}

// Downstream returns the entities transitively derived from the given
// entity, sorted — the impact question "what depends on this".
func (t *Tracker) Downstream(entity string) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.g.HasNode("e:" + entity) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEntity, entity)
	}
	var out []string
	for _, n := range t.g.Reachable("e:"+entity, graphstore.Out) {
		if len(n) > 2 && n[:2] == "e:" {
			out = append(out, n[2:])
		}
	}
	sort.Strings(out)
	return out, nil
}

// Path returns a lineage chain (entities and activities) from ancestor
// to descendant, or nil — GOODS's path-based provenance query.
func (t *Tracker) Path(ancestor, descendant string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	raw := t.g.ShortestPath("e:"+ancestor, "e:"+descendant, graphstore.Out)
	out := make([]string, len(raw))
	for i, n := range raw {
		out[i] = n[2:]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// AccessLog returns the events touching an entity, in order — CoreDB's
// "who queried this entity" audit.
func (t *Tracker) AccessLog(entity string) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, ev := range t.events {
		if ev.Entity == entity {
			out = append(out, ev)
		}
	}
	return out
}

// EventsBySystem groups event counts per emitting system — the
// integration view over heterogeneous engines.
func (t *Tracker) EventsBySystem() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]int{}
	for _, ev := range t.events {
		out[ev.System]++
	}
	return out
}

// Events returns a copy of the full normalized event log.
func (t *Tracker) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// DOT exports the provenance graph in Graphviz syntax, the
// visualization hook GOODS provides for its provenance graphs.
func (t *Tracker) DOT() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return graphstore.DOT(t.g, "provenance")
}

// Activities returns the activities that touched an entity (as reader
// or writer), sorted.
func (t *Tracker) Activities(entity string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := map[string]struct{}{}
	for _, ev := range t.events {
		if ev.Entity == entity && ev.Activity != "" {
			set[ev.Activity] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
