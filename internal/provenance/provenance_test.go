package provenance

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func newTracker() *Tracker {
	t0 := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	n := 0
	return NewTracker(func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	})
}

// buildPipeline models the paper's use case: tweets collected by Flume,
// processed by Hadoop and Spark jobs.
func buildPipeline(t *testing.T) *Tracker {
	t.Helper()
	tr := newTracker()
	tr.Ingest("tweets_raw", "flume", "collector")
	if err := tr.Derive("count_hashtags", "hadoop", "analyst", []string{"tweets_raw"}, "hashtag_counts"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Derive("aggregate_by_cat", "spark", "analyst", []string{"hashtag_counts"}, "category_summary"); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUpstreamDownstream(t *testing.T) {
	tr := buildPipeline(t)
	up, err := tr.Upstream("category_summary")
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 2 || up[0] != "hashtag_counts" || up[1] != "tweets_raw" {
		t.Errorf("Upstream = %v", up)
	}
	down, err := tr.Downstream("tweets_raw")
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 2 {
		t.Errorf("Downstream = %v", down)
	}
	if _, err := tr.Upstream("ghost"); !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("Upstream ghost = %v", err)
	}
}

func TestPathQuery(t *testing.T) {
	tr := buildPipeline(t)
	path := tr.Path("tweets_raw", "category_summary")
	if len(path) != 5 {
		t.Fatalf("path = %v", path)
	}
	if path[0] != "tweets_raw" || path[4] != "category_summary" {
		t.Errorf("path endpoints = %v", path)
	}
	if p := tr.Path("category_summary", "tweets_raw"); p != nil {
		t.Errorf("reverse lineage = %v, want nil", p)
	}
}

func TestAccessLogAndQuery(t *testing.T) {
	tr := buildPipeline(t)
	if err := tr.Query("category_summary", "dashboard", "ceo"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Query("ghost", "dashboard", "ceo"); !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("Query ghost = %v", err)
	}
	log := tr.AccessLog("category_summary")
	// write + derive + query = 3 events.
	if len(log) != 3 {
		t.Fatalf("AccessLog = %+v", log)
	}
	last := log[len(log)-1]
	if last.Kind != EventQuery || last.User != "ceo" {
		t.Errorf("last event = %+v", last)
	}
	// Events are ordered by sequence.
	for i := 1; i < len(log); i++ {
		if log[i].Seq <= log[i-1].Seq {
			t.Error("events out of order")
		}
	}
}

func TestEventsBySystem(t *testing.T) {
	tr := buildPipeline(t)
	got := tr.EventsBySystem()
	if got["flume"] != 1 {
		t.Errorf("flume events = %d", got["flume"])
	}
	if got["hadoop"] != 3 { // read + write + derive
		t.Errorf("hadoop events = %d", got["hadoop"])
	}
	if got["spark"] != 3 {
		t.Errorf("spark events = %d", got["spark"])
	}
}

func TestActivities(t *testing.T) {
	tr := buildPipeline(t)
	acts := tr.Activities("hashtag_counts")
	if len(acts) != 2 {
		t.Fatalf("Activities = %v", acts)
	}
	if acts[0] != "aggregate_by_cat" || acts[1] != "count_hashtags" {
		t.Errorf("Activities = %v", acts)
	}
}

func TestMultiInputDerivation(t *testing.T) {
	tr := newTracker()
	tr.Ingest("a", "s", "u")
	tr.Ingest("b", "s", "u")
	if err := tr.Derive("join", "spark", "u", []string{"a", "b"}, "joined"); err != nil {
		t.Fatal(err)
	}
	up, _ := tr.Upstream("joined")
	if len(up) != 2 {
		t.Errorf("Upstream of join = %v", up)
	}
	events := tr.Events()
	if len(events) != 2+2+2 { // 2 ingests + 2 reads + write+derive
		t.Errorf("events = %d", len(events))
	}
}

func TestDOTExport(t *testing.T) {
	tr := buildPipeline(t)
	dot := tr.DOT()
	for _, want := range []string{"digraph", "tweets_raw", "count_hashtags", "usedBy", "generated"} {
		if !containsStr(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestHookFiresPerEvent(t *testing.T) {
	tr := newTracker()
	var got []Event
	tr.SetHook(func(ev Event) { got = append(got, ev) })
	tr.Ingest("a", "files", "alice")
	if err := tr.Derive("job", "spark", "bob", []string{"a"}, "b"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Query("b", "sql", "carol"); err != nil {
		t.Fatal(err)
	}
	tr.Discard("a", "core", "ops")
	kinds := make([]EventKind, len(got))
	for i, ev := range got {
		kinds[i] = ev.Kind
	}
	want := []EventKind{EventIngest, EventRead, EventWrite, EventDerive, EventQuery, EventDiscard}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("hook kinds = %v, want %v", kinds, want)
	}
	// Hooks may call back into the tracker: firing outside the lock.
	tr.SetHook(func(ev Event) { _ = tr.Events() })
	tr.Ingest("c", "files", "alice")
}

func TestInjectRebuildsGraphWithoutHookOrDuplicateEdges(t *testing.T) {
	src := newTracker()
	src.Ingest("a", "files", "alice")
	if err := src.Derive("job", "spark", "bob", []string{"a"}, "b"); err != nil {
		t.Fatal(err)
	}
	dst := newTracker()
	fired := 0
	dst.SetHook(func(Event) { fired++ })
	for _, ev := range src.Events() {
		dst.Inject(ev)
	}
	if fired != 0 {
		t.Fatalf("hook fired %d times during Inject", fired)
	}
	if !reflect.DeepEqual(dst.Events(), src.Events()) {
		t.Fatalf("events diverge after inject:\n%+v\n%+v", dst.Events(), src.Events())
	}
	up, err := dst.Upstream("b")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a"}; !reflect.DeepEqual(up, want) {
		t.Fatalf("Upstream(b) = %v, want %v", up, want)
	}
	// New events continue past the injected sequence numbers.
	dst.Ingest("c", "files", "alice")
	evs := dst.Events()
	last := evs[len(evs)-1]
	if last.Seq <= evs[len(evs)-2].Seq {
		t.Fatalf("seq did not advance past injected events: %+v", last)
	}
}
