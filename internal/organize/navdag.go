package organize

import (
	"fmt"
	"math"
	"sort"

	"golake/internal/embed"
	"golake/internal/sketch"
	"golake/internal/table"
)

// NavDAG is the data lake organization of Nargesian et al.
// (Sec. 6.1.3): a DAG whose leaf nodes are table attributes, whose
// internal nodes carry topic vectors summarizing their children, and
// whose edges represent containment. Navigation is a Markov process —
// from the current node, the transition probability to a child depends
// only on the similarity between the child's topic vector and the
// query. The organization is built to maximize the probability that
// every attribute can be found.
type NavDAG struct {
	// Branch is the target fan-out of internal nodes.
	Branch int

	model *embed.Model
	root  *NavNode
	// leaves maps attribute key ("table.column") to its leaf.
	leaves map[string]*NavNode
}

// NavNode is one DAG node.
type NavNode struct {
	ID string
	// Table/Column are set on leaves.
	Table, Column string
	// Vector is the topic representation (mean of descendant leaf
	// vectors, unit-normalized).
	Vector   []float64
	Children []*NavNode
}

// IsLeaf reports whether the node is an attribute leaf.
func (n *NavNode) IsLeaf() bool { return len(n.Children) == 0 }

// NewNavDAG creates an organization builder with fan-out branch.
func NewNavDAG(branch int) *NavDAG {
	if branch < 2 {
		branch = 4
	}
	return &NavDAG{Branch: branch, model: embed.NewModel(48), leaves: map[string]*NavNode{}}
}

// Build constructs the organization over all attributes of the corpus
// by agglomerative grouping: leaves are clustered bottom-up into topic
// nodes of about Branch children until a single root remains.
func (d *NavDAG) Build(tables []*table.Table) *NavNode {
	for _, t := range tables {
		for _, c := range t.Columns {
			d.model.AddColumn(c.DistinctSlice())
		}
	}
	var nodes []*NavNode
	for _, t := range tables {
		for _, c := range t.Columns {
			key := t.Name + "." + c.Name
			leaf := &NavNode{
				ID:     key,
				Table:  t.Name,
				Column: c.Name,
				Vector: d.model.ColumnVector(c.DistinctSlice()),
			}
			d.leaves[key] = leaf
			nodes = append(nodes, leaf)
		}
	}
	level := 0
	for len(nodes) > 1 {
		level++
		nodes = d.groupLevel(nodes, level)
	}
	if len(nodes) == 1 {
		d.root = nodes[0]
	} else {
		d.root = &NavNode{ID: "root"}
	}
	return d.root
}

// groupLevel greedily groups nodes into parents of ~Branch children by
// vector similarity: repeatedly seed a group with the first unassigned
// node and pull in its most similar peers.
func (d *NavDAG) groupLevel(nodes []*NavNode, level int) []*NavNode {
	unused := append([]*NavNode(nil), nodes...)
	sort.Slice(unused, func(i, j int) bool { return unused[i].ID < unused[j].ID })
	var parents []*NavNode
	for len(unused) > 0 {
		seed := unused[0]
		unused = unused[1:]
		type scored struct {
			n   *NavNode
			sim float64
		}
		var rest []scored
		for _, n := range unused {
			rest = append(rest, scored{n: n, sim: sketch.Cosine(seed.Vector, n.Vector)})
		}
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].sim != rest[j].sim {
				return rest[i].sim > rest[j].sim
			}
			return rest[i].n.ID < rest[j].n.ID
		})
		take := d.Branch - 1
		if take > len(rest) {
			take = len(rest)
		}
		children := []*NavNode{seed}
		taken := map[*NavNode]bool{}
		for i := 0; i < take; i++ {
			children = append(children, rest[i].n)
			taken[rest[i].n] = true
		}
		var remaining []*NavNode
		for _, n := range unused {
			if !taken[n] {
				remaining = append(remaining, n)
			}
		}
		unused = remaining
		parent := &NavNode{
			ID:       fmt.Sprintf("topic-L%d-%d", level, len(parents)),
			Children: children,
			Vector:   meanVector(children),
		}
		parents = append(parents, parent)
	}
	return parents
}

func meanVector(nodes []*NavNode) []float64 {
	if len(nodes) == 0 {
		return nil
	}
	out := make([]float64, len(nodes[0].Vector))
	for _, n := range nodes {
		for i := range out {
			if i < len(n.Vector) {
				out[i] += n.Vector[i]
			}
		}
	}
	var ss float64
	for i := range out {
		out[i] /= float64(len(nodes))
		ss += out[i] * out[i]
	}
	if ss > 0 {
		norm := math.Sqrt(ss)
		for i := range out {
			out[i] /= norm
		}
	}
	return out
}

// Root returns the organization root (nil before Build).
func (d *NavDAG) Root() *NavNode { return d.root }

// transitionProbs computes the Markov transition distribution over a
// node's children for a query vector: softmax over cosine similarity.
func transitionProbs(query []float64, children []*NavNode) []float64 {
	probs := make([]float64, len(children))
	var sum float64
	for i, ch := range children {
		p := math.Exp(4 * sketch.Cosine(query, ch.Vector))
		probs[i] = p
		sum += p
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// Navigate greedily follows the most probable transitions from the root
// for a keyword query and returns the visited node path ending at a
// leaf.
func (d *NavDAG) Navigate(query string) []*NavNode {
	if d.root == nil {
		return nil
	}
	qv := d.model.Vector(query)
	path := []*NavNode{d.root}
	cur := d.root
	for !cur.IsLeaf() {
		probs := transitionProbs(qv, cur.Children)
		best, bestP := 0, -1.0
		for i, p := range probs {
			if p > bestP {
				best, bestP = i, p
			}
		}
		cur = cur.Children[best]
		path = append(path, cur)
	}
	return path
}

// DiscoveryProbability computes the probability that a navigator
// following the Markov model with the leaf's own vector as the query
// reaches the given attribute — the quantity the organization problem
// maximizes (summed over attributes).
func (d *NavDAG) DiscoveryProbability(attrKey string) float64 {
	leaf, ok := d.leaves[attrKey]
	if !ok || d.root == nil {
		return 0
	}
	var walk func(n *NavNode) float64
	walk = func(n *NavNode) float64 {
		if n == leaf {
			return 1
		}
		if n.IsLeaf() {
			return 0
		}
		probs := transitionProbs(leaf.Vector, n.Children)
		var total float64
		for i, ch := range n.Children {
			total += probs[i] * walk(ch)
		}
		return total
	}
	return walk(d.root)
}

// MeanDiscoveryProbability averages DiscoveryProbability over all
// attributes — the organization-quality objective.
func (d *NavDAG) MeanDiscoveryProbability() float64 {
	if len(d.leaves) == 0 {
		return 0
	}
	keys := make([]string, 0, len(d.leaves))
	for k := range d.leaves {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += d.DiscoveryProbability(k)
	}
	return sum / float64(len(d.leaves))
}

// Leaves returns all attribute keys, sorted.
func (d *NavDAG) Leaves() []string {
	out := make([]string, 0, len(d.leaves))
	for k := range d.leaves {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
