package organize

import (
	"fmt"
	"math"
	"sort"

	"golake/internal/sketch"
	"golake/internal/table"
)

// DSKNN implements the DS-Prox/DS-kNN dataset categorization
// (Alserafi et al., Sec. 6.1.2): every incoming dataset is profiled
// into data-based and metadata-based features; its k nearest already
// categorized neighbors vote on its category; if no neighbor is close
// enough, a fresh category is opened. The resulting similarity graph
// serves as a pre-filter for schema matching.
type DSKNN struct {
	// K is the number of neighbors consulted.
	K int
	// MinSim is the similarity floor below which a neighbor does not
	// count as evidence.
	MinSim float64

	features   map[string]*dsFeatures
	categories map[string]int
	order      []string
	nextCat    int
}

type dsFeatures struct {
	name string
	// featString is the concatenated metadata feature rendering
	// compared with Levenshtein, as in DS-Prox.
	featString string
	// numeric features: [numAttrs, fracNumeric, avgDistinct, avgMeanLen]
	numeric [4]float64
	// attrNames are the exact attribute names; attrTokens their tokens.
	attrNames  map[string]struct{}
	attrTokens map[string]struct{}
	// valueSample is a capped sample of distinct values across columns —
	// the "data-based features" of DS-kNN.
	valueSample map[string]struct{}
}

// NewDSKNN creates an instance with the paper-ish defaults.
func NewDSKNN() *DSKNN {
	return &DSKNN{
		K:          3,
		MinSim:     0.55,
		features:   map[string]*dsFeatures{},
		categories: map[string]int{},
	}
}

func dsProfile(t *table.Table) *dsFeatures {
	f := &dsFeatures{
		name:        t.Name,
		attrNames:   map[string]struct{}{},
		attrTokens:  map[string]struct{}{},
		valueSample: map[string]struct{}{},
	}
	numNumeric := 0
	var totDistinct, totMeanLen float64
	var kinds []string
	for _, c := range t.Columns {
		p := table.Profile(c)
		if c.Kind.Numeric() {
			numNumeric++
		}
		totDistinct += float64(p.Distinct)
		totMeanLen += p.MeanLen
		kinds = append(kinds, c.Kind.String())
		f.attrNames[c.Name] = struct{}{}
		for _, tok := range sketch.Tokenize(c.Name) {
			f.attrTokens[tok] = struct{}{}
		}
		for i, v := range c.DistinctSlice() {
			if i >= 100 {
				break
			}
			f.valueSample[v] = struct{}{}
		}
	}
	n := float64(t.NumCols())
	if n > 0 {
		f.numeric = [4]float64{n, float64(numNumeric) / n, totDistinct / n, totMeanLen / n}
	}
	sort.Strings(kinds)
	f.featString = fmt.Sprintf("%d|%s", t.NumCols(), joinStrings(kinds, ","))
	return f
}

// Similarity combines the Levenshtein similarity of the metadata
// feature strings, attribute-name overlap, numeric feature closeness,
// and the data-based value-sample overlap DS-kNN extracts per column.
func (d *DSKNN) Similarity(a, b *dsFeatures) float64 {
	lev := sketch.LevenshteinSim(a.featString, b.featString)
	attr := 0.7*sketch.ExactJaccard(a.attrNames, b.attrNames) +
		0.3*sketch.ExactJaccard(a.attrTokens, b.attrTokens)
	var num float64
	for i := range a.numeric {
		den := math.Max(math.Abs(a.numeric[i]), math.Abs(b.numeric[i]))
		if den == 0 {
			num += 1
			continue
		}
		num += 1 - math.Abs(a.numeric[i]-b.numeric[i])/den
	}
	num /= float64(len(a.numeric))
	values := sketch.ExactJaccard(a.valueSample, b.valueSample)
	return 0.2*lev + 0.35*attr + 0.2*num + 0.25*values
}

// Add classifies a dataset into an existing or new category and returns
// the assigned category ID — the incremental k-NN step of DS-kNN.
func (d *DSKNN) Add(t *table.Table) int {
	f := dsProfile(t)
	type scored struct {
		name string
		sim  float64
	}
	var neighbors []scored
	for _, name := range d.order {
		neighbors = append(neighbors, scored{name: name, sim: d.Similarity(f, d.features[name])})
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].sim != neighbors[j].sim {
			return neighbors[i].sim > neighbors[j].sim
		}
		return neighbors[i].name < neighbors[j].name
	})
	if len(neighbors) > d.K {
		neighbors = neighbors[:d.K]
	}
	votes := map[int]int{}
	for _, nb := range neighbors {
		if nb.sim >= d.MinSim {
			votes[d.categories[nb.name]]++
		}
	}
	cat := -1
	bestVotes := 0
	for c, v := range votes {
		if v > bestVotes || (v == bestVotes && c < cat) {
			cat, bestVotes = c, v
		}
	}
	if cat < 0 {
		cat = d.nextCat
		d.nextCat++
	}
	d.features[t.Name] = f
	d.categories[t.Name] = cat
	d.order = append(d.order, t.Name)
	return cat
}

// Remove drops a dataset's profile and category assignment. Categories
// opened because of it stay numbered — classification of the remaining
// members is unaffected.
func (d *DSKNN) Remove(name string) {
	if _, ok := d.features[name]; !ok {
		return
	}
	delete(d.features, name)
	delete(d.categories, name)
	kept := d.order[:0]
	for _, n := range d.order {
		if n != name {
			kept = append(kept, n)
		}
	}
	d.order = kept
}

// Category returns the assigned category of a dataset (-1 if unknown).
func (d *DSKNN) Category(name string) int {
	c, ok := d.categories[name]
	if !ok {
		return -1
	}
	return c
}

// Categories returns category -> member datasets, members sorted.
func (d *DSKNN) Categories() map[int][]string {
	out := map[int][]string{}
	for name, c := range d.categories {
		out[c] = append(out[c], name)
	}
	for c := range out {
		sort.Strings(out[c])
	}
	return out
}

// SimilarityEdge is one weighted edge of the dataset similarity graph
// DS-kNN visualizes.
type SimilarityEdge struct {
	A, B string
	Sim  float64
}

// Graph returns all pairwise similarity edges above MinSim, sorted by
// descending similarity.
func (d *DSKNN) Graph() []SimilarityEdge {
	var out []SimilarityEdge
	for i := 0; i < len(d.order); i++ {
		for j := i + 1; j < len(d.order); j++ {
			a, b := d.order[i], d.order[j]
			sim := d.Similarity(d.features[a], d.features[b])
			if sim >= d.MinSim {
				out = append(out, SimilarityEdge{A: a, B: b, Sim: sim})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].A+out[i].B < out[j].A+out[j].B
	})
	return out
}

func joinStrings(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}
