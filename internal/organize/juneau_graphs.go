package organize

import (
	"sort"

	"golake/internal/sketch"
	"golake/internal/storage/graphstore"
	"golake/internal/workload"
)

// WorkflowGraph realizes Juneau's two graph structures (Sec. 6.1.3,
// Table 2): a directed bipartite *workflow graph* with data-object
// nodes and computational-module nodes, and a *variable-dependency
// graph* whose nodes are notebook variables connected by labeled edges
// "output = fn(input)". Provenance similarity between two tables is the
// similarity of their dependency neighborhoods — Juneau's
// subgraph-based relatedness signal.
type WorkflowGraph struct {
	g *graphstore.Graph
}

// Node labels of the bipartite workflow graph.
const (
	labelDataObject = "data"
	labelModule     = "module"
	labelVariable   = "variable"
)

// NewWorkflowGraph creates an empty workflow graph.
func NewWorkflowGraph() *WorkflowGraph {
	return &WorkflowGraph{g: graphstore.New()}
}

// Graph exposes the underlying property graph.
func (w *WorkflowGraph) Graph() *graphstore.Graph { return w.g }

// AddDataObject registers a data-object node (file, table, or cell
// output).
func (w *WorkflowGraph) AddDataObject(id string) {
	w.g.UpsertNode("d:"+id, labelDataObject, nil)
}

// AddModule registers a computational module (code cell) consuming the
// given inputs and producing the outputs — edges run input -> module ->
// output, making the graph bipartite.
func (w *WorkflowGraph) AddModule(id string, inputs, outputs []string) error {
	w.g.UpsertNode("m:"+id, labelModule, nil)
	for _, in := range inputs {
		w.AddDataObject(in)
		if _, err := w.g.AddEdge("d:"+in, "m:"+id, "feeds", nil); err != nil {
			return err
		}
	}
	for _, out := range outputs {
		w.AddDataObject(out)
		if _, err := w.g.AddEdge("m:"+id, "d:"+out, "produces", nil); err != nil {
			return err
		}
	}
	return nil
}

// AddVariableDep records a variable-dependency edge: output was
// computed from input via function fn (the edge label of Table 2).
func (w *WorkflowGraph) AddVariableDep(input, output, fn string) error {
	w.g.UpsertNode("v:"+input, labelVariable, nil)
	w.g.UpsertNode("v:"+output, labelVariable, nil)
	_, err := w.g.AddEdge("v:"+input, "v:"+output, fn, nil)
	return err
}

// FromNotebook loads a generated notebook: each step becomes a module
// and a variable dependency.
func (w *WorkflowGraph) FromNotebook(nb *workload.Notebook) error {
	for i, op := range nb.Steps {
		in := nb.Tables[i].Name
		out := nb.Tables[i+1].Name
		if err := w.AddModule(out+"_step", []string{in}, []string{out}); err != nil {
			return err
		}
		if err := w.AddVariableDep(in, out, op); err != nil {
			return err
		}
	}
	return nil
}

// Derivations returns the data objects transitively derived from id via
// modules, sorted.
func (w *WorkflowGraph) Derivations(id string) []string {
	var out []string
	for _, n := range w.g.Reachable("d:"+id, graphstore.Out) {
		if len(n) > 2 && n[:2] == "d:" {
			out = append(out, n[2:])
		}
	}
	sort.Strings(out)
	return out
}

// Lineage returns the data objects id was derived from, sorted.
func (w *WorkflowGraph) Lineage(id string) []string {
	var out []string
	for _, n := range w.g.Reachable("d:"+id, graphstore.In) {
		if len(n) > 2 && n[:2] == "d:" {
			out = append(out, n[2:])
		}
	}
	sort.Strings(out)
	return out
}

// dependencyNeighborhood collects the variables adjacent to a variable
// in the dependency graph plus incident edge labels.
func (w *WorkflowGraph) dependencyNeighborhood(v string) map[string]struct{} {
	out := map[string]struct{}{}
	for _, e := range w.g.OutEdges("v:" + v) {
		out["->"+e.To] = struct{}{}
		out["fn:"+e.Label] = struct{}{}
	}
	for _, e := range w.g.InEdges("v:" + v) {
		out["<-"+e.From] = struct{}{}
		out["fn:"+e.Label] = struct{}{}
	}
	return out
}

// ProvenanceSimilarity approximates Juneau's variable-dependency
// subgraph similarity: the Jaccard similarity of the two variables'
// dependency neighborhoods (shared neighbor variables and shared
// function labels). Variables connected by a direct edge get a floor of
// 0.5.
func (w *WorkflowGraph) ProvenanceSimilarity(a, b string) float64 {
	na := w.dependencyNeighborhood(a)
	nb := w.dependencyNeighborhood(b)
	sim := sketch.ExactJaccard(na, nb)
	if _, ok := na["->v:"+b]; ok && sim < 0.5 {
		sim = 0.5
	}
	if _, ok := na["<-v:"+b]; ok && sim < 0.5 {
		sim = 0.5
	}
	return sim
}
