package organize

import (
	"errors"
	"fmt"
	"sort"

	"golake/internal/table"
)

// KAYAK (Maccioni & Torlone, Sec. 6.1.3) organizes data-preparation
// work in a lake as two kinds of DAGs (Table 2): a *pipeline* DAG whose
// nodes are primitives (user-facing preparation operations) ordered by
// execution dependencies, and a *task-dependency* DAG whose nodes are
// the atomic tasks composing one primitive, used to run independent
// tasks in parallel. Tasks may return quick approximate previews before
// exact results — KAYAK's time-to-insight trade-off.
var (
	// ErrCycle is returned when an added dependency would create a
	// cycle (the structures must stay acyclic).
	ErrCycle = errors.New("organize: dependency cycle")
	// ErrUnknownNode is returned for dependencies on missing nodes.
	ErrUnknownNode = errors.New("organize: unknown node")
)

// TaskFunc is one atomic task body; approximate selects the preview
// mode.
type TaskFunc func(approximate bool) (string, error)

// DAG is a generic labeled dependency DAG shared by both KAYAK usages.
type DAG struct {
	nodes map[string]bool
	deps  map[string][]string // node -> prerequisites
}

// NewDAG creates an empty DAG.
func NewDAG() *DAG {
	return &DAG{nodes: map[string]bool{}, deps: map[string][]string{}}
}

// AddNode registers a node (idempotent).
func (d *DAG) AddNode(id string) { d.nodes[id] = true }

// AddDep declares that node depends on prereq; both must exist and the
// edge must not create a cycle (i.e. prereq must not already require
// node, directly or transitively).
func (d *DAG) AddDep(node, prereq string) error {
	if !d.nodes[node] || !d.nodes[prereq] {
		return fmt.Errorf("%w: %s or %s", ErrUnknownNode, node, prereq)
	}
	if d.reaches(prereq, node) {
		return fmt.Errorf("%w: %s -> %s", ErrCycle, node, prereq)
	}
	d.deps[node] = append(d.deps[node], prereq)
	return nil
}

// reaches reports whether "to" is reachable from "from" following
// dependency edges (prereq direction).
func (d *DAG) reaches(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, dep := range d.deps[cur] {
			if dep == to {
				return true
			}
			if !seen[dep] {
				seen[dep] = true
				stack = append(stack, dep)
			}
		}
	}
	return false
}

// Stages returns the nodes grouped into parallelizable stages: stage i
// contains every node whose prerequisites are all in stages < i — how
// KAYAK schedules independent atomic tasks concurrently.
func (d *DAG) Stages() ([][]string, error) {
	done := map[string]bool{}
	var stages [][]string
	remaining := len(d.nodes)
	for remaining > 0 {
		var stage []string
		for id := range d.nodes {
			if done[id] {
				continue
			}
			ready := true
			for _, dep := range d.deps[id] {
				if !done[dep] {
					ready = false
					break
				}
			}
			if ready {
				stage = append(stage, id)
			}
		}
		if len(stage) == 0 {
			return nil, fmt.Errorf("%w: unsatisfiable dependencies", ErrCycle)
		}
		sort.Strings(stage)
		for _, id := range stage {
			done[id] = true
		}
		remaining -= len(stage)
		stages = append(stages, stage)
	}
	return stages, nil
}

// Nodes returns all node IDs, sorted.
func (d *DAG) Nodes() []string {
	out := make([]string, 0, len(d.nodes))
	for id := range d.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Deps returns the prerequisites of a node.
func (d *DAG) Deps(node string) []string {
	out := append([]string(nil), d.deps[node]...)
	sort.Strings(out)
	return out
}

// Primitive is one KAYAK data-preparation operation composed of atomic
// tasks.
type Primitive struct {
	Name  string
	tasks map[string]TaskFunc
	dag   *DAG
}

// NewPrimitive creates an empty primitive.
func NewPrimitive(name string) *Primitive {
	return &Primitive{Name: name, tasks: map[string]TaskFunc{}, dag: NewDAG()}
}

// AddTask registers an atomic task.
func (p *Primitive) AddTask(id string, fn TaskFunc) {
	p.tasks[id] = fn
	p.dag.AddNode(id)
}

// After declares task to run after prereq.
func (p *Primitive) After(task, prereq string) error {
	return p.dag.AddDep(task, prereq)
}

// TaskDAG exposes the primitive's task-dependency DAG.
func (p *Primitive) TaskDAG() *DAG { return p.dag }

// Execute runs all tasks stage by stage (tasks inside one stage are
// independent). With approximate=true, tasks produce previews — the
// KAYAK mode that returns an early answer while the exact computation
// would still be running. Returns task results by ID.
func (p *Primitive) Execute(approximate bool) (map[string]string, error) {
	stages, err := p.dag.Stages()
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, stage := range stages {
		for _, id := range stage {
			res, err := p.tasks[id](approximate)
			if err != nil {
				return nil, fmt.Errorf("organize: task %s: %w", id, err)
			}
			out[id] = res
		}
	}
	return out, nil
}

// ProfilePrimitive builds KAYAK's canonical "basic profiling"
// primitive over a concrete table: per-column statistics and distinct
// counts, each task supporting the approximate preview mode (a fixed
// row sample) that gives KAYAK its time-to-insight trade-off — the
// preview answers quickly while the exact computation would still be
// scanning.
func ProfilePrimitive(t *table.Table, sampleRows int) *Primitive {
	if sampleRows <= 0 {
		sampleRows = 100
	}
	p := NewPrimitive("profile:" + t.Name)
	sampled := func() *table.Table {
		n := 0
		return t.Filter(func([]string) bool {
			n++
			return n <= sampleRows
		})
	}
	p.AddTask("stats", func(approx bool) (string, error) {
		src := t
		if approx && t.NumRows() > sampleRows {
			src = sampled()
		}
		prof := table.ProfileTable(src)
		numeric := 0
		for _, c := range prof.Columns {
			if c.Kind.Numeric() {
				numeric++
			}
		}
		return fmt.Sprintf("rows=%d cols=%d numeric=%d", prof.Rows, len(prof.Columns), numeric), nil
	})
	p.AddTask("distinct", func(approx bool) (string, error) {
		src := t
		if approx && t.NumRows() > sampleRows {
			src = sampled()
		}
		total := 0
		for _, c := range src.Columns {
			total += len(c.Distinct())
		}
		suffix := ""
		if approx && t.NumRows() > sampleRows {
			// Scale the sampled distinct count to the full table — the
			// estimator a preview reports.
			total = total * t.NumRows() / src.NumRows()
			suffix = " (estimated)"
		}
		return fmt.Sprintf("distinct~%d%s", total, suffix), nil
	})
	p.AddTask("report", func(bool) (string, error) {
		return "profile of " + t.Name, nil
	})
	_ = p.After("report", "stats")
	_ = p.After("report", "distinct")
	return p
}

// Pipeline is the KAYAK primitive-level DAG: primitives ordered by
// dependencies.
type Pipeline struct {
	primitives map[string]*Primitive
	dag        *DAG
}

// NewPipeline creates an empty pipeline.
func NewPipeline() *Pipeline {
	return &Pipeline{primitives: map[string]*Primitive{}, dag: NewDAG()}
}

// Add registers a primitive.
func (pl *Pipeline) Add(p *Primitive) {
	pl.primitives[p.Name] = p
	pl.dag.AddNode(p.Name)
}

// After declares that primitive runs after prereq.
func (pl *Pipeline) After(name, prereq string) error {
	return pl.dag.AddDep(name, prereq)
}

// DAG exposes the pipeline DAG.
func (pl *Pipeline) DAG() *DAG { return pl.dag }

// Run executes every primitive in dependency order; results are keyed
// "primitive/task".
func (pl *Pipeline) Run(approximate bool) (map[string]string, error) {
	stages, err := pl.dag.Stages()
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, stage := range stages {
		for _, name := range stage {
			res, err := pl.primitives[name].Execute(approximate)
			if err != nil {
				return nil, err
			}
			for tid, r := range res {
				out[name+"/"+tid] = r
			}
		}
	}
	return out, nil
}
