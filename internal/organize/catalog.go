// Package organize implements the dataset-organization function of the
// maintenance tier (Sec. 6.1): the GOODS post-hoc metadata catalog, the
// DS-kNN classification-based organization, the navigation DAG of
// Nargesian et al. with its Markov navigation model, KAYAK's pipeline
// and task-dependency DAGs, and Juneau's workflow and
// variable-dependency graphs — the four DAG flavors of Table 2.
package organize

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"golake/internal/storage/kvstore"
)

// MetadataGroup is one of the six GOODS catalog categories (Sec. 6.1.1).
type MetadataGroup string

// The GOODS metadata groups.
const (
	GroupBasic      MetadataGroup = "basic"
	GroupContent    MetadataGroup = "content"
	GroupProvenance MetadataGroup = "provenance"
	GroupUser       MetadataGroup = "user"
	GroupTeam       MetadataGroup = "team"
	GroupTemporal   MetadataGroup = "temporal"
)

// ErrNoEntry is returned for datasets missing from the catalog.
var ErrNoEntry = errors.New("organize: no catalog entry")

// CatalogEntry is the metadata record of one dataset in the catalog.
type CatalogEntry struct {
	// ID is the dataset identifier (its lake path).
	ID string `json:"id"`
	// Cluster groups versions of the same logical dataset; GOODS
	// clusters by path convention (e.g. dated generations).
	Cluster string `json:"cluster"`
	// Groups holds the six metadata categories as key-value maps.
	Groups map[MetadataGroup]map[string]string `json:"groups"`
	// Registered is the catalog insertion time.
	Registered time.Time `json:"registered"`
}

// Catalog is a GOODS-style post-hoc metadata catalog on the ordered KV
// store: datasets are created first and cataloged afterwards, one entry
// per dataset, organized for prefix scans.
type Catalog struct {
	kv    *kvstore.Store
	clock func() time.Time
}

// NewCatalog creates a catalog on a fresh store. clock may be nil.
func NewCatalog(clock func() time.Time) *Catalog {
	if clock == nil {
		clock = time.Now
	}
	return &Catalog{kv: kvstore.New(), clock: clock}
}

// Register inserts (or refreshes) a dataset entry. The cluster defaults
// to the path with a trailing date/generation segment stripped.
func (c *Catalog) Register(id string) (*CatalogEntry, error) {
	e := &CatalogEntry{
		ID:         id,
		Cluster:    ClusterOf(id),
		Groups:     map[MetadataGroup]map[string]string{},
		Registered: c.clock(),
	}
	if err := c.put(e); err != nil {
		return nil, err
	}
	return e, nil
}

// ClusterOf strips a trailing generation segment (digits, dates) from a
// dataset path, the GOODS version-clustering heuristic.
func ClusterOf(id string) string {
	i := strings.LastIndex(id, "/")
	if i < 0 {
		return id
	}
	last := id[i+1:]
	digits := 0
	for _, r := range last {
		if r >= '0' && r <= '9' || r == '-' || r == '_' {
			digits++
		}
	}
	if len(last) > 0 && digits == len(last) {
		return id[:i]
	}
	return id
}

// Annotate sets one metadata key in a group for a dataset.
func (c *Catalog) Annotate(id string, group MetadataGroup, key, value string) error {
	e, err := c.Entry(id)
	if err != nil {
		return err
	}
	if e.Groups[group] == nil {
		e.Groups[group] = map[string]string{}
	}
	e.Groups[group][key] = value
	return c.put(e)
}

// Entry fetches a dataset's catalog entry.
func (c *Catalog) Entry(id string) (*CatalogEntry, error) {
	raw, err := c.kv.Get("entry/" + id)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEntry, id)
	}
	var e CatalogEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("organize: decode entry %s: %w", id, err)
	}
	return &e, nil
}

func (c *Catalog) put(e *CatalogEntry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("organize: encode entry %s: %w", e.ID, err)
	}
	c.kv.Put("entry/"+e.ID, raw)
	c.kv.Put(fmt.Sprintf("cluster/%s/%s", e.Cluster, e.ID), nil)
	return nil
}

// Remove deletes a dataset's entry and its cluster membership. Removing
// an uncataloged dataset is a no-op.
func (c *Catalog) Remove(id string) {
	if e, err := c.Entry(id); err == nil {
		c.kv.Delete(fmt.Sprintf("cluster/%s/%s", e.Cluster, e.ID))
	}
	c.kv.Delete("entry/" + id)
}

// Versions lists the dataset IDs in a cluster, sorted — the "cluster
// different versions of the same dataset" organization of GOODS.
func (c *Catalog) Versions(cluster string) []string {
	prefix := fmt.Sprintf("cluster/%s/", cluster)
	keys := c.kv.Keys(prefix)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, prefix)
	}
	return out
}

// List returns all dataset IDs in the catalog, sorted.
func (c *Catalog) List() []string {
	keys := c.kv.Keys("entry/")
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, "entry/")
	}
	return out
}

// Search returns the IDs of datasets whose group metadata contains the
// given key=value, sorted. GOODS serves such lookups from its catalog
// rather than the data.
func (c *Catalog) Search(group MetadataGroup, key, value string) []string {
	var out []string
	for _, id := range c.List() {
		e, err := c.Entry(id)
		if err != nil {
			continue
		}
		if g, ok := e.Groups[group]; ok && g[key] == value {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
