package organize

import (
	"testing"

	"golake/internal/workload"
)

func buildRonin(t *testing.T) (*Ronin, *workload.Corpus) {
	t.Helper()
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 12, JoinGroups: 3, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, Seed: 37,
	})
	r, err := NewRonin(c.Tables, 4)
	if err != nil {
		t.Fatal(err)
	}
	return r, c
}

func TestRoninNavigateReachesLeaf(t *testing.T) {
	r, _ := buildRonin(t)
	path := r.Navigate("g00_key")
	if len(path) < 2 {
		t.Fatalf("path = %v", path)
	}
	if !path[len(path)-1].IsLeaf() {
		t.Error("navigation did not reach a leaf")
	}
	if Describe(path) == "" {
		t.Error("empty path description")
	}
}

func TestRoninKeywordSearch(t *testing.T) {
	r, c := buildRonin(t)
	// Column names carry the group tokens ("g00", "key", ...).
	got := r.KeywordSearch("g00 key")
	if len(got) == 0 {
		t.Fatal("no keyword hits")
	}
	for _, name := range got {
		if c.GroupOf[name] != 0 {
			t.Errorf("keyword hit outside group 0: %s", name)
		}
	}
	if got := r.KeywordSearch(""); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := r.KeywordSearch("zebra unrelated"); len(got) != 0 {
		t.Errorf("unrelated query = %v", got)
	}
}

func TestRoninJoinableAndPivot(t *testing.T) {
	r, c := buildRonin(t)
	q := c.Tables[0].Name
	joinable := r.Joinable(q, 3)
	if len(joinable) != 3 {
		t.Fatalf("joinable = %v", joinable)
	}
	for _, name := range joinable {
		if !c.Joinable[workload.NewPair(q, name)] {
			t.Errorf("non-joinable result %s", name)
		}
	}
	// Pivot from a navigated key-attribute leaf.
	path := r.Navigate("g00 key")
	leaf := path[len(path)-1]
	pivoted := r.Pivot(leaf, 3)
	if len(pivoted) == 0 {
		t.Fatalf("pivot from %s returned nothing", leaf.ID)
	}
	// Pivot from a non-leaf is nil.
	if got := r.Pivot(path[0], 3); got != nil {
		t.Errorf("pivot from root = %v", got)
	}
	if got := r.Joinable("ghost", 3); got != nil {
		t.Errorf("joinable ghost = %v", got)
	}
}
