package organize

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"golake/internal/table"
	"golake/internal/workload"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestCatalogRegisterAnnotateSearch(t *testing.T) {
	c := NewCatalog(fixedClock())
	if _, err := c.Register("logs/clicks/2026-06-11"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("logs/clicks/2026-06-12"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("tables/users"); err != nil {
		t.Fatal(err)
	}
	if err := c.Annotate("tables/users", GroupUser, "owner", "ops-team"); err != nil {
		t.Fatal(err)
	}
	if err := c.Annotate("tables/users", GroupContent, "rows", "1000"); err != nil {
		t.Fatal(err)
	}
	e, err := c.Entry("tables/users")
	if err != nil || e.Groups[GroupUser]["owner"] != "ops-team" {
		t.Fatalf("Entry = %+v, %v", e, err)
	}
	if got := c.Search(GroupUser, "owner", "ops-team"); len(got) != 1 || got[0] != "tables/users" {
		t.Errorf("Search = %v", got)
	}
	if got := c.Search(GroupUser, "owner", "nobody"); len(got) != 0 {
		t.Errorf("Search miss = %v", got)
	}
	if err := c.Annotate("ghost", GroupBasic, "k", "v"); !errors.Is(err, ErrNoEntry) {
		t.Errorf("Annotate missing = %v", err)
	}
	if got := c.List(); len(got) != 3 {
		t.Errorf("List = %v", got)
	}
}

func TestCatalogVersionClustering(t *testing.T) {
	c := NewCatalog(fixedClock())
	_, _ = c.Register("logs/clicks/2026-06-11")
	_, _ = c.Register("logs/clicks/2026-06-12")
	_, _ = c.Register("tables/users")
	got := c.Versions("logs/clicks")
	if len(got) != 2 {
		t.Fatalf("Versions = %v", got)
	}
	if got[0] != "logs/clicks/2026-06-11" {
		t.Errorf("first version = %q", got[0])
	}
	// Non-generation paths cluster to themselves.
	if ClusterOf("tables/users") != "tables/users" {
		t.Errorf("ClusterOf(users) = %q", ClusterOf("tables/users"))
	}
	if ClusterOf("a/b/20260612") != "a/b" {
		t.Errorf("ClusterOf(dated) = %q", ClusterOf("a/b/20260612"))
	}
}

func TestDSKNNGroupsSimilarDatasets(t *testing.T) {
	corpus := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 9, JoinGroups: 3, RowsPerTable: 60,
		ExtraCols: 0, KeyVocab: 90, KeySample: 50, Seed: 13,
	})
	d := NewDSKNN()
	for _, tbl := range corpus.Tables {
		d.Add(tbl)
	}
	// Tables in the same corpus group share schema and should land in
	// the same category.
	byGroup := map[int]map[int]bool{}
	for _, tbl := range corpus.Tables {
		g := corpus.GroupOf[tbl.Name]
		if byGroup[g] == nil {
			byGroup[g] = map[int]bool{}
		}
		byGroup[g][d.Category(tbl.Name)] = true
	}
	for g, cats := range byGroup {
		if len(cats) != 1 {
			t.Errorf("corpus group %d split across categories %v", g, cats)
		}
	}
	// Different groups get different categories.
	cats := d.Categories()
	if len(cats) != 3 {
		t.Errorf("categories = %d, want 3", len(cats))
	}
	if d.Category("ghost") != -1 {
		t.Error("unknown dataset should be -1")
	}
}

func TestDSKNNGraphEdges(t *testing.T) {
	a, _ := table.ParseCSV("a", "id,name\n1,x\n2,y\n")
	b, _ := table.ParseCSV("b", "id,name\n3,z\n4,w\n")
	c, _ := table.ParseCSV("c", "lat,lon,alt,speed\n1.0,2.0,3.0,4.0\n5.0,6.0,7.0,8.0\n")
	d := NewDSKNN()
	d.Add(a)
	d.Add(b)
	d.Add(c)
	edges := d.Graph()
	if len(edges) == 0 {
		t.Fatal("no similarity edges")
	}
	if edges[0].A != "a" || edges[0].B != "b" {
		t.Errorf("strongest edge = %+v, want a-b", edges[0])
	}
	for _, e := range edges {
		if (e.A == "c" || e.B == "c") && e.Sim > d.Similarity(d.features["a"], d.features["b"]) {
			t.Errorf("dissimilar dataset c ranked above twin pair: %+v", e)
		}
	}
}

func TestNavDAGBuildAndNavigate(t *testing.T) {
	corpus := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 8, JoinGroups: 2, RowsPerTable: 60,
		ExtraCols: 0, KeyVocab: 80, KeySample: 50, Seed: 17,
	})
	d := NewNavDAG(4)
	root := d.Build(corpus.Tables)
	if root == nil || root.IsLeaf() {
		t.Fatal("no organization built")
	}
	// 8 tables x 3 cols = 24 leaves.
	if got := len(d.Leaves()); got != 24 {
		t.Fatalf("leaves = %d, want 24", got)
	}
	// Navigation ends at a leaf.
	path := d.Navigate("g00_key")
	if len(path) < 2 {
		t.Fatalf("path = %v", path)
	}
	last := path[len(path)-1]
	if !last.IsLeaf() {
		t.Error("navigation did not reach a leaf")
	}
	// Mean discovery probability must beat uniform random leaf choice.
	mp := d.MeanDiscoveryProbability()
	if mp <= 1.0/24 {
		t.Errorf("mean discovery probability = %v, not better than random", mp)
	}
}

func TestNavDAGDiscoveryProbabilitySums(t *testing.T) {
	a, _ := table.ParseCSV("a", "x,y\nfoo,1\nbar,2\n")
	d := NewNavDAG(2)
	d.Build([]*table.Table{a})
	var sum float64
	for _, leaf := range d.Leaves() {
		p := d.DiscoveryProbability(leaf)
		if p < 0 || p > 1 {
			t.Errorf("P(%s) = %v out of range", leaf, p)
		}
		sum += p
	}
	if sum <= 0 {
		t.Error("all discovery probabilities zero")
	}
	if got := d.DiscoveryProbability("ghost.col"); got != 0 {
		t.Errorf("unknown attribute probability = %v", got)
	}
}

func TestKayakPrimitiveStagesAndExecution(t *testing.T) {
	p := NewPrimitive("profile-dataset")
	log := []string{}
	mk := func(name string) TaskFunc {
		return func(approx bool) (string, error) {
			log = append(log, name)
			if approx {
				return name + ":preview", nil
			}
			return name + ":exact", nil
		}
	}
	p.AddTask("load", mk("load"))
	p.AddTask("count", mk("count"))
	p.AddTask("histogram", mk("histogram"))
	p.AddTask("report", mk("report"))
	if err := p.After("count", "load"); err != nil {
		t.Fatal(err)
	}
	if err := p.After("histogram", "load"); err != nil {
		t.Fatal(err)
	}
	if err := p.After("report", "count"); err != nil {
		t.Fatal(err)
	}
	if err := p.After("report", "histogram"); err != nil {
		t.Fatal(err)
	}
	stages, err := p.TaskDAG().Stages()
	if err != nil {
		t.Fatal(err)
	}
	// load | count,histogram | report
	if len(stages) != 3 || len(stages[1]) != 2 {
		t.Fatalf("stages = %v", stages)
	}
	res, err := p.Execute(true)
	if err != nil {
		t.Fatal(err)
	}
	if res["report"] != "report:preview" {
		t.Errorf("approximate result = %q", res["report"])
	}
	res, err = p.Execute(false)
	if err != nil {
		t.Fatal(err)
	}
	if res["report"] != "report:exact" {
		t.Errorf("exact result = %q", res["report"])
	}
}

func TestKayakCycleRejected(t *testing.T) {
	p := NewPrimitive("p")
	noop := func(bool) (string, error) { return "", nil }
	p.AddTask("a", noop)
	p.AddTask("b", noop)
	if err := p.After("b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.After("a", "b"); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle err = %v", err)
	}
	if err := p.After("a", "ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown err = %v", err)
	}
	// Self-dependency is a cycle.
	if err := p.After("a", "a"); !errors.Is(err, ErrCycle) {
		t.Errorf("self-dep err = %v", err)
	}
}

func TestKayakPipeline(t *testing.T) {
	mkPrim := func(name string) *Primitive {
		p := NewPrimitive(name)
		p.AddTask("t", func(bool) (string, error) { return name, nil })
		return p
	}
	pl := NewPipeline()
	pl.Add(mkPrim("insert"))
	pl.Add(mkPrim("profile"))
	pl.Add(mkPrim("joinability"))
	if err := pl.After("profile", "insert"); err != nil {
		t.Fatal(err)
	}
	if err := pl.After("joinability", "profile"); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res["insert/t"] != "insert" {
		t.Errorf("pipeline results = %v", res)
	}
	stages, _ := pl.DAG().Stages()
	if len(stages) != 3 {
		t.Errorf("pipeline stages = %v", stages)
	}
}

func TestWorkflowGraphLineage(t *testing.T) {
	w := NewWorkflowGraph()
	if err := w.AddModule("clean", []string{"raw"}, []string{"cleaned"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddModule("aggregate", []string{"cleaned"}, []string{"summary"}); err != nil {
		t.Fatal(err)
	}
	der := w.Derivations("raw")
	if len(der) != 2 || der[0] != "cleaned" || der[1] != "summary" {
		t.Errorf("Derivations = %v", der)
	}
	lin := w.Lineage("summary")
	if len(lin) != 2 || lin[0] != "cleaned" || lin[1] != "raw" {
		t.Errorf("Lineage = %v", lin)
	}
}

func TestWorkflowGraphProvenanceSimilarity(t *testing.T) {
	base, _ := table.ParseCSV("base", "a,b\n1,2\n3,4\n5,6\n7,8\n")
	nb := workload.GenerateNotebook(base, 3, 5)
	w := NewWorkflowGraph()
	if err := w.FromNotebook(nb); err != nil {
		t.Fatal(err)
	}
	// Adjacent versions share lineage.
	simAdjacent := w.ProvenanceSimilarity("base", "base_v1")
	simDistant := w.ProvenanceSimilarity("base", "base_v3")
	if simAdjacent <= simDistant {
		t.Errorf("adjacent sim %v should exceed distant sim %v", simAdjacent, simDistant)
	}
	if simAdjacent < 0.5 {
		t.Errorf("directly connected variables sim = %v, want >= 0.5", simAdjacent)
	}
	// Unrelated variables have zero similarity.
	if got := w.ProvenanceSimilarity("base", "unrelated"); got != 0 {
		t.Errorf("unrelated sim = %v", got)
	}
}

func TestDAGStagesDetectsUnsatisfiable(t *testing.T) {
	d := NewDAG()
	d.AddNode("a")
	d.AddNode("b")
	// Force a cycle by editing deps directly (AddDep would refuse).
	d.deps["a"] = []string{"b"}
	d.deps["b"] = []string{"a"}
	if _, err := d.Stages(); !errors.Is(err, ErrCycle) {
		t.Errorf("Stages cycle err = %v", err)
	}
}

// Property: at every internal node, Markov transition probabilities
// over children sum to 1 for arbitrary query vectors.
func TestNavDAGTransitionProbabilitiesSum(t *testing.T) {
	corpus := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 6, JoinGroups: 2, RowsPerTable: 40,
		ExtraCols: 1, KeyVocab: 60, KeySample: 40, Seed: 41,
	})
	d := NewNavDAG(3)
	root := d.Build(corpus.Tables)
	var walk func(n *NavNode)
	walk = func(n *NavNode) {
		if n.IsLeaf() {
			return
		}
		probs := transitionProbs(n.Vector, n.Children)
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range at %s", p, n.ID)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probabilities sum to %v at %s", sum, n.ID)
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(root)
}

func TestProfilePrimitiveTimeToInsight(t *testing.T) {
	// Large table: preview samples, exact scans all.
	rows := "v\n"
	for i := 0; i < 5000; i++ {
		rows += fmt.Sprintf("%d\n", i)
	}
	tbl, err := table.ParseCSV("big", rows)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfilePrimitive(tbl, 100)
	exact, err := p.Execute(false)
	if err != nil {
		t.Fatal(err)
	}
	if exact["stats"] != "rows=5000 cols=1 numeric=1" {
		t.Errorf("exact stats = %q", exact["stats"])
	}
	if exact["distinct"] != "distinct~5000" {
		t.Errorf("exact distinct = %q", exact["distinct"])
	}
	approx, err := p.Execute(true)
	if err != nil {
		t.Fatal(err)
	}
	if approx["stats"] != "rows=100 cols=1 numeric=1" {
		t.Errorf("approx stats = %q", approx["stats"])
	}
	if !strings.Contains(approx["distinct"], "estimated") {
		t.Errorf("approx distinct = %q, want estimate marker", approx["distinct"])
	}
	// The estimator scales to the right order of magnitude.
	if !strings.Contains(approx["distinct"], "5000") {
		t.Errorf("estimated distinct = %q, want ~5000", approx["distinct"])
	}
}
