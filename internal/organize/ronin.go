package organize

import (
	"sort"
	"strings"

	"golake/internal/discovery"
	"golake/internal/sketch"
	"golake/internal/table"
)

// Ronin implements RONIN (Ouellette et al., Sec. 6.1.3): a data lake
// exploration surface combining three ways in — navigating the
// organization DAG of Nargesian et al., keyword search over dataset
// metadata, and joinable-dataset search — so a user can alternate
// between browsing and searching ("pivot" between modes, as the demo
// paper shows).
type Ronin struct {
	nav    *NavDAG
	josie  *discovery.JOSIE
	corpus map[string]*table.Table
	// keyword posting lists over table names, column names and meta.
	keywords map[string][]string
}

// NewRonin builds the combined exploration structure over a corpus.
func NewRonin(tables []*table.Table, branch int) (*Ronin, error) {
	r := &Ronin{
		nav:      NewNavDAG(branch),
		josie:    discovery.NewJOSIE(),
		corpus:   map[string]*table.Table{},
		keywords: map[string][]string{},
	}
	r.nav.Build(tables)
	if err := r.josie.Index(tables); err != nil {
		return nil, err
	}
	for _, t := range tables {
		r.corpus[t.Name] = t
		seen := map[string]bool{}
		add := func(tok string) {
			if tok == "" || seen[tok] {
				return
			}
			seen[tok] = true
			r.keywords[tok] = append(r.keywords[tok], t.Name)
		}
		for _, tok := range sketch.Tokenize(t.Name) {
			add(tok)
		}
		for _, c := range t.Columns {
			for _, tok := range sketch.Tokenize(c.Name) {
				add(tok)
			}
		}
		for _, v := range t.Meta {
			for _, tok := range sketch.Tokenize(v) {
				add(tok)
			}
		}
	}
	return r, nil
}

// Navigate descends the organization DAG for a topic query and returns
// the visited path (ending at an attribute leaf).
func (r *Ronin) Navigate(query string) []*NavNode { return r.nav.Navigate(query) }

// KeywordSearch returns the tables whose name, columns or metadata
// mention every keyword, sorted.
func (r *Ronin) KeywordSearch(query string) []string {
	toks := sketch.Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	counts := map[string]int{}
	for _, tok := range toks {
		for _, t := range r.keywords[tok] {
			counts[t]++
		}
	}
	var out []string
	for t, n := range counts {
		if n == len(toks) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Joinable returns the top-k tables joinable with the given table —
// the search pivot after navigation lands on something interesting.
func (r *Ronin) Joinable(tableName string, k int) []string {
	t, ok := r.corpus[tableName]
	if !ok {
		return nil
	}
	var out []string
	for _, ts := range r.josie.RelatedTables(t, k) {
		out = append(out, ts.Table)
	}
	return out
}

// Pivot is RONIN's signature interaction: from a DAG position (an
// attribute leaf reached by navigation), jump to the tables joinable
// on that attribute.
func (r *Ronin) Pivot(leaf *NavNode, k int) []string {
	if leaf == nil || !leaf.IsLeaf() {
		return nil
	}
	t, ok := r.corpus[leaf.Table]
	if !ok {
		return nil
	}
	matches, err := r.josie.JoinableColumns(t, leaf.Column, k)
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, m := range matches {
		if !seen[m.Ref.Table] {
			seen[m.Ref.Table] = true
			out = append(out, m.Ref.Table)
		}
	}
	return out
}

// Describe renders a short description of a DAG path for display.
func Describe(path []*NavNode) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = n.ID
	}
	return strings.Join(parts, " > ")
}
