package discovery

import (
	"testing"

	"golake/internal/metamodel"
	"golake/internal/table"
	"golake/internal/workload"
)

func TestRNLIMLabelsRelationships(t *testing.T) {
	// cities_a/cities_b equivalent; districts contained in cities_a;
	// numbers unrelated.
	citiesA, _ := table.ParseCSV("cities_a", "city\nberlin\nparis\nrome\nmadrid\nlisbon\n")
	citiesB, _ := table.ParseCSV("cities_b", "city\nberlin\nparis\nrome\nmadrid\nvienna\n")
	districts, _ := table.ParseCSV("districts", "city\nberlin\nparis\n")
	numbers, _ := table.ParseCSV("numbers", "n\n1\n2\n3\n")
	r := NewRNLIM()
	if err := r.Index([]*table.Table{citiesA, citiesB, districts, numbers}); err != nil {
		t.Fatal(err)
	}
	ref := func(t, c string) metamodel.ColumnRef { return metamodel.ColumnRef{Table: t, Column: c} }
	if got := r.Label(ref("cities_a", "city"), ref("cities_b", "city")); got != RelEquivalent {
		t.Errorf("cities_a~cities_b = %v, want equivalent", got)
	}
	if got := r.Label(ref("districts", "city"), ref("cities_a", "city")); got != RelContained {
		t.Errorf("districts~cities_a = %v, want contained", got)
	}
	if got := r.Label(ref("cities_a", "city"), ref("numbers", "n")); got != RelUnrelated {
		t.Errorf("cities~numbers = %v, want unrelated (type gate)", got)
	}
	if got := r.Label(ref("ghost", "x"), ref("cities_a", "city")); got != RelUnrelated {
		t.Errorf("unknown column = %v", got)
	}
}

func TestRNLIMRecoversGroundTruth(t *testing.T) {
	c := testCorpus(t)
	p, r := evalDiscoverer(t, NewRNLIM(), c, 3)
	if p < 0.9 || r < 0.9 {
		t.Errorf("RNLIM P@3/R@3 = %.2f/%.2f, want >= 0.9", p, r)
	}
}

func TestRNLIMExplainTable(t *testing.T) {
	a, _ := table.ParseCSV("a", "city,pop\nberlin,3600000\nparis,2100000\nrome,2800000\n")
	b, _ := table.ParseCSV("b", "city,pop\nberlin,3600000\nparis,2100000\nmadrid,3300000\n")
	r := NewRNLIM()
	if err := r.Index([]*table.Table{a, b}); err != nil {
		t.Fatal(err)
	}
	expl := r.ExplainTable(a, "b")
	if len(expl) == 0 {
		t.Fatal("no explanations")
	}
	foundCity := false
	for _, e := range expl {
		if e.A.Column == "city" && e.B.Column == "city" && e.Rel != RelUnrelated {
			foundCity = true
		}
	}
	if !foundCity {
		t.Errorf("city pair not explained: %+v", expl)
	}
}

func TestHumanInLoopTriage(t *testing.T) {
	c := testCorpus(t)
	inner := NewJOSIE()
	asked := map[string]bool{}
	oracle := func(q string, ts metamodel.TableScore) bool {
		asked[q+"/"+ts.Table] = true
		return c.Joinable[workload.NewPair(q, ts.Table)]
	}
	h := NewHumanInLoop(inner, oracle)
	h.AcceptAbove = 1.1 // nothing auto-accepts: everything goes to the oracle
	h.RejectBelow = 0.05
	if err := h.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	if h.Name() != "JOSIE+human" {
		t.Errorf("name = %q", h.Name())
	}
	q := c.Tables[0]
	res := h.RelatedTables(q, 3)
	for _, ts := range res {
		if !c.Joinable[workload.NewPair(q.Name, ts.Table)] {
			t.Errorf("oracle-passed non-related result %+v", ts)
		}
	}
	if h.Asked == 0 {
		t.Error("oracle never consulted despite tight accept band")
	}
}

func TestHumanInLoopAutoBands(t *testing.T) {
	c := testCorpus(t)
	inner := NewJOSIE()
	h := NewHumanInLoop(inner, func(string, metamodel.TableScore) bool {
		t.Error("oracle consulted despite wide accept band")
		return false
	})
	h.AcceptAbove = 0.0 // everything auto-accepted
	if err := h.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	res := h.RelatedTables(c.Tables[0], 3)
	if len(res) != 3 {
		t.Errorf("results = %+v", res)
	}
	if h.Asked != 0 {
		t.Errorf("asked = %d", h.Asked)
	}
}

func TestHumanInLoopNilOracleKeepsUncertain(t *testing.T) {
	c := testCorpus(t)
	h := NewHumanInLoop(NewJOSIE(), nil)
	h.AcceptAbove = 0.99
	if err := h.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	if res := h.RelatedTables(c.Tables[0], 3); len(res) == 0 {
		t.Error("nil oracle should keep uncertain candidates")
	}
}
