package discovery

import (
	"math"
	"sort"

	"golake/internal/embed"
	"golake/internal/metamodel"
	"golake/internal/sketch"
	"golake/internal/table"
)

// Relationship labels RNLIM assigns to an attribute pair.
type Relationship string

// The semantic relationships RNLIM distinguishes — the explainable
// output that sets it apart from score-only discovery (Sec. 6.2.3).
const (
	RelEquivalent Relationship = "equivalent"
	RelContained  Relationship = "contained" // A's domain inside B's
	RelOverlap    Relationship = "overlap"   // related, partial domain overlap
	RelUnrelated  Relationship = "unrelated"
)

// RNLIM implements the Relational Natural Language Inference Model
// (Ramirez et al.) under the offline substitution documented in
// DESIGN.md: the BERT representations of the two signal groups —
// (table name, attribute name) and (data type, value domain) — are
// replaced by the corpus-trained distributional embeddings, and the
// premise/hypothesis inference by explicit domain tests (containment
// both ways, Kolmogorov-Smirnov for numeric domains). What is
// preserved is RNLIM's distinguishing behaviour: it does not just rank
// candidates, it *labels the semantic relationship* of attribute
// pairs.
type RNLIM struct {
	// EquivalentSim is the combined-similarity floor for "equivalent".
	EquivalentSim float64
	// ContainmentFloor is the one-way containment floor for
	// "contained".
	ContainmentFloor float64

	model   *embed.Model
	columns map[string]*rnlimProfile
	tables  map[string][]string
}

type rnlimProfile struct {
	key       string
	nameVec   []float64
	values    map[string]struct{}
	numeric   []float64
	isNumeric bool
}

// NewRNLIM creates an instance with sensible defaults.
func NewRNLIM() *RNLIM {
	return &RNLIM{
		EquivalentSim:    0.7,
		ContainmentFloor: 0.8,
		model:            embed.NewModel(48),
		columns:          map[string]*rnlimProfile{},
		tables:           map[string][]string{},
	}
}

// Name implements Discoverer.
func (r *RNLIM) Name() string { return "RNLIM" }

// Index implements Discoverer.
func (r *RNLIM) Index(tables []*table.Table) error {
	for _, t := range tables {
		for _, c := range t.Columns {
			r.model.AddColumn(textualValues(c, 200))
		}
	}
	for _, t := range tables {
		for _, c := range t.Columns {
			p := r.profile(t.Name, c)
			r.columns[p.key] = p
			r.tables[t.Name] = append(r.tables[t.Name], p.key)
		}
	}
	return nil
}

func (r *RNLIM) profile(tableName string, c *table.Column) *rnlimProfile {
	p := &rnlimProfile{
		key: columnKey(tableName, c.Name),
		// Group 1 of RNLIM's signals: table and attribute names.
		nameVec: r.model.Vector(tableName + " " + c.Name),
		values:  sketch.ToSet(textualValues(c, 500)),
	}
	if c.Kind.Numeric() {
		xs, frac := c.Floats()
		if frac > 0.5 {
			p.numeric = xs
			p.isNumeric = true
		}
	}
	return p
}

// Label classifies the semantic relationship of two attributes.
func (r *RNLIM) Label(a, b metamodel.ColumnRef) Relationship {
	pa, okA := r.columns[columnKey(a.Table, a.Column)]
	pb, okB := r.columns[columnKey(b.Table, b.Column)]
	if !okA || !okB {
		return RelUnrelated
	}
	return r.label(pa, pb)
}

func (r *RNLIM) label(a, b *rnlimProfile) Relationship {
	nameSim := sketch.Cosine(a.nameVec, b.nameVec)
	if nameSim < 0 {
		nameSim = 0
	}
	// Group 2: type and value-domain match.
	var domSim, contAB, contBA float64
	switch {
	case a.isNumeric && b.isNumeric:
		domSim = 1 - sketch.KolmogorovSmirnov(a.numeric, b.numeric)
		contAB, contBA = domSim, domSim
	case a.isNumeric != b.isNumeric:
		return RelUnrelated
	default:
		domSim = sketch.ExactJaccard(a.values, b.values)
		contAB = sketch.Containment(a.values, b.values)
		contBA = sketch.Containment(b.values, a.values)
	}
	combined := 0.4*nameSim + 0.6*domSim
	switch {
	// Strong domain agreement alone implies equivalence (the trained
	// classifier weighs the domain group heavily); otherwise the two
	// signal groups must agree.
	case domSim >= 0.6 || combined >= r.EquivalentSim:
		return RelEquivalent
	case contAB >= r.ContainmentFloor && contBA < r.ContainmentFloor:
		return RelContained
	case contBA >= r.ContainmentFloor && contAB < r.ContainmentFloor:
		return RelContained
	case domSim > 0.1 || (nameSim > 0.6 && domSim > 0):
		return RelOverlap
	default:
		return RelUnrelated
	}
}

// relStrength orders relationships for ranking.
func relStrength(rel Relationship) float64 {
	switch rel {
	case RelEquivalent:
		return 1.0
	case RelContained:
		return 0.75
	case RelOverlap:
		return 0.5
	default:
		return 0
	}
}

// RelatedTables implements Discoverer: a table scores by the strongest
// relationship any of its attributes holds with a query attribute.
func (r *RNLIM) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	best := map[string]float64{}
	for _, c := range query.Columns {
		qp, ok := r.columns[columnKey(query.Name, c.Name)]
		if !ok {
			qp = r.profile(query.Name, c)
		}
		for tbl, keys := range r.tables {
			if tbl == query.Name {
				continue
			}
			for _, key := range keys {
				s := relStrength(r.label(qp, r.columns[key]))
				if s > best[tbl] {
					best[tbl] = s
				}
			}
		}
	}
	for tbl, s := range best {
		if s == 0 {
			delete(best, tbl)
		}
	}
	out := rankTables(best, 0)
	// Strength ties are common (labels are discrete); break by name
	// deterministically and truncate.
	sort.SliceStable(out, func(i, j int) bool {
		if math.Abs(out[i].Score-out[j].Score) > 1e-9 {
			return out[i].Score > out[j].Score
		}
		return out[i].Table < out[j].Table
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// LabeledPairResult is one explained attribute-pair relationship.
type LabeledPairResult struct {
	A, B metamodel.ColumnRef
	Rel  Relationship
}

// ExplainTable labels every attribute pair between the query table and
// a candidate — the "explainable data exploration" output of the
// paper.
func (r *RNLIM) ExplainTable(query *table.Table, candidate string) []LabeledPairResult {
	var out []LabeledPairResult
	for _, c := range query.Columns {
		qp, ok := r.columns[columnKey(query.Name, c.Name)]
		if !ok {
			qp = r.profile(query.Name, c)
		}
		for _, key := range r.tables[candidate] {
			rel := r.label(qp, r.columns[key])
			if rel == RelUnrelated {
				continue
			}
			tbl, col, err := splitKey(key)
			if err != nil {
				continue
			}
			out = append(out, LabeledPairResult{
				A:   metamodel.ColumnRef{Table: query.Name, Column: c.Name},
				B:   metamodel.ColumnRef{Table: tbl, Column: col},
				Rel: rel,
			})
		}
	}
	return out
}
