package discovery

import (
	"fmt"
	"sort"

	"golake/internal/metamodel"
	"golake/internal/sketch"
	"golake/internal/table"
)

// JOSIE implements exact top-k overlap set similarity search for
// joinable-table discovery (Zhu et al., Sec. 6.2.1): every column is a
// set of distinct values in an inverted index; a query column's top-k
// joinable columns are the indexed sets with the largest exact
// intersection — no user-supplied threshold needed. The cost model of
// the paper chooses between probing posting lists and reading candidate
// sets; here the distinguishing behaviours preserved are exactness,
// top-k semantics, and robustness to skewed posting lists (long lists
// are walked once, not per candidate).
type JOSIE struct {
	index *sketch.InvertedIndex
	// cols maps "table.column" -> its distinct set (the "set file" the
	// cost model would read).
	cols map[string]map[string]struct{}
	// tablesOf maps table name -> its column keys.
	tablesOf map[string][]string
	// MaxValuesPerColumn caps indexed set size (0 = unlimited).
	MaxValuesPerColumn int
}

// NewJOSIE creates an unindexed JOSIE instance.
func NewJOSIE() *JOSIE {
	return &JOSIE{
		index:    sketch.NewInvertedIndex(),
		cols:     map[string]map[string]struct{}{},
		tablesOf: map[string][]string{},
	}
}

// Name implements Discoverer.
func (j *JOSIE) Name() string { return "JOSIE" }

// Index implements Discoverer: every column of every table becomes one
// indexed set.
func (j *JOSIE) Index(tables []*table.Table) error {
	for _, t := range tables {
		for _, c := range t.Columns {
			key := columnKey(t.Name, c.Name)
			set := sketch.ToSet(textualValues(c, j.MaxValuesPerColumn))
			j.cols[key] = set
			j.index.Add(key, set)
			j.tablesOf[t.Name] = append(j.tablesOf[t.Name], key)
		}
	}
	return nil
}

// Remove drops every indexed column of one table — the incremental
// eviction path, so removing a dataset does not force a corpus-wide
// re-index.
func (j *JOSIE) Remove(tableName string) {
	for _, key := range j.tablesOf[tableName] {
		j.index.Remove(key)
		delete(j.cols, key)
	}
	delete(j.tablesOf, tableName)
}

// JoinableColumns implements JoinSearcher: exact top-k overlap search
// for one query column.
func (j *JOSIE) JoinableColumns(query *table.Table, column string, k int) ([]ColumnMatch, error) {
	c, err := query.Column(column)
	if err != nil {
		return nil, err
	}
	qset := sketch.ToSet(textualValues(c, j.MaxValuesPerColumn))
	self := columnKey(query.Name, column)
	res := j.index.TopKOverlap(qset, k, self)
	out := make([]ColumnMatch, 0, len(res))
	for _, r := range res {
		tbl, col, err := splitKey(r.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, ColumnMatch{
			Ref:   metamodel.ColumnRef{Table: tbl, Column: col},
			Score: float64(r.Overlap),
		})
	}
	return out, nil
}

// RelatedTables implements Discoverer: a table's relatedness to the
// query is the maximum column-pair overlap, normalized by the query
// column's cardinality.
func (j *JOSIE) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	best := map[string]float64{}
	for _, c := range query.Columns {
		qset := sketch.ToSet(textualValues(c, j.MaxValuesPerColumn))
		if len(qset) == 0 {
			continue
		}
		self := columnKey(query.Name, c.Name)
		// Over-fetch: several columns of one table may hit.
		for _, r := range j.index.TopKOverlap(qset, 4*k, self) {
			tbl, _, err := splitKey(r.ID)
			if err != nil || tbl == query.Name {
				continue
			}
			score := float64(r.Overlap) / float64(len(qset))
			if score > best[tbl] {
				best[tbl] = score
			}
		}
	}
	return rankTables(best, k)
}

func splitKey(key string) (tbl, col string, err error) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("discovery: malformed column key %q", key)
}

// rankTables converts a score map into a sorted, truncated result list.
func rankTables(scores map[string]float64, k int) []metamodel.TableScore {
	out := make([]metamodel.TableScore, 0, len(scores))
	for t, s := range scores {
		out = append(out, metamodel.TableScore{Table: t, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table < out[j].Table
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
