package discovery

import (
	"math"

	"golake/internal/metamodel"
	"golake/internal/sketch"
	"golake/internal/table"
)

// SearchTask selects which relatedness signals Juneau combines — the
// paper keys the feature subset to the data-science task of the search
// (Sec. 6.2.2/7.1).
type SearchTask int

// The data-science search tasks Juneau supports.
const (
	// TaskAugment finds additional training/validation data: rewards
	// schema overlap plus new rows.
	TaskAugment SearchTask = iota
	// TaskFeatures finds tables contributing new attributes for
	// feature engineering: rewards key overlap plus new columns.
	TaskFeatures
	// TaskClean finds cleaner versions of the same data: rewards
	// instance/schema/provenance overlap and fewer nulls.
	TaskClean
)

// Juneau implements multi-signal task-aware relatedness (Zhang & Ives):
// instance overlap, schema overlap, candidate-key match, new-attribute
// and new-instance rates, descriptive-metadata similarity, null-count
// difference, and an optional provenance similarity supplied by the
// workflow-graph layer.
type Juneau struct {
	// Task selects the signal weighting.
	Task SearchTask
	// ProvenanceSim, when non-nil, returns the workflow-graph
	// similarity of two tables in [0,1] (variable-dependency subgraph
	// similarity in the paper).
	ProvenanceSim func(a, b string) float64

	indexed map[string]*juneauProfile
	order   []string
}

type juneauProfile struct {
	name     string
	colNames map[string]struct{}
	colSets  map[string]map[string]struct{}
	keys     map[string]struct{} // candidate key columns
	rows     int
	nullFrac float64
	metaToks map[string]struct{}
}

// NewJuneau creates an instance for the given task.
func NewJuneau(task SearchTask) *Juneau {
	return &Juneau{Task: task, indexed: map[string]*juneauProfile{}}
}

// Name implements Discoverer.
func (j *Juneau) Name() string { return "Juneau" }

// Index implements Discoverer.
func (j *Juneau) Index(tables []*table.Table) error {
	for _, t := range tables {
		p := juneauProfileOf(t)
		j.indexed[t.Name] = p
		j.order = append(j.order, t.Name)
	}
	return nil
}

// Remove drops one table's profile.
func (j *Juneau) Remove(tableName string) {
	if _, ok := j.indexed[tableName]; !ok {
		return
	}
	delete(j.indexed, tableName)
	kept := j.order[:0]
	for _, name := range j.order {
		if name != tableName {
			kept = append(kept, name)
		}
	}
	j.order = kept
}

func juneauProfileOf(t *table.Table) *juneauProfile {
	p := &juneauProfile{
		name:     t.Name,
		colNames: map[string]struct{}{},
		colSets:  map[string]map[string]struct{}{},
		keys:     map[string]struct{}{},
		rows:     t.NumRows(),
		metaToks: map[string]struct{}{},
	}
	totalCells, nullCells := 0, 0
	for _, c := range t.Columns {
		p.colNames[c.Name] = struct{}{}
		p.colSets[c.Name] = c.Distinct()
		if c.IsCandidateKey(0.9) {
			p.keys[c.Name] = struct{}{}
		}
		totalCells += c.Len()
		nullCells += c.NullCount()
	}
	if totalCells > 0 {
		p.nullFrac = float64(nullCells) / float64(totalCells)
	}
	for _, v := range t.Meta {
		for _, tok := range sketch.Tokenize(v) {
			p.metaToks[tok] = struct{}{}
		}
	}
	return p
}

// signals computes the raw relatedness signals between query and
// candidate profiles.
type juneauSignals struct {
	instanceOverlap float64 // best column-pair Jaccard
	schemaOverlap   float64 // column-name Jaccard
	keyMatch        float64 // 1 if a candidate key pair overlaps
	newAttrRate     float64 // candidate attrs absent from query
	newInstanceRate float64 // candidate rows beyond matched values
	metaSim         float64 // descriptive metadata Jaccard
	nullImprovement float64 // positive when candidate has fewer nulls
	provenanceSim   float64
}

func (j *Juneau) signalsFor(q, c *juneauProfile) juneauSignals {
	var s juneauSignals
	s.schemaOverlap = sketch.ExactJaccard(q.colNames, c.colNames)
	// Best instance overlap across shared or all column pairs.
	for _, qs := range q.colSets {
		for _, cs := range c.colSets {
			if sim := sketch.ExactJaccard(qs, cs); sim > s.instanceOverlap {
				s.instanceOverlap = sim
			}
		}
	}
	for qk := range q.keys {
		for ck := range c.keys {
			if sketch.Containment(q.colSets[qk], c.colSets[ck]) >= 0.3 {
				s.keyMatch = 1
			}
		}
	}
	newAttrs := 0
	for name := range c.colNames {
		if _, ok := q.colNames[name]; !ok {
			newAttrs++
		}
	}
	if len(c.colNames) > 0 {
		s.newAttrRate = float64(newAttrs) / float64(len(c.colNames))
	}
	if c.rows > q.rows {
		s.newInstanceRate = math.Min(1, float64(c.rows-q.rows)/float64(q.rows+1))
	}
	s.metaSim = sketch.ExactJaccard(q.metaToks, c.metaToks)
	s.nullImprovement = math.Max(0, q.nullFrac-c.nullFrac)
	if j.ProvenanceSim != nil {
		s.provenanceSim = j.ProvenanceSim(q.name, c.name)
	}
	return s
}

// Score combines signals per the selected task.
func (j *Juneau) score(s juneauSignals) float64 {
	switch j.Task {
	case TaskAugment:
		// Same schema, overlapping domain, more rows.
		return 0.35*s.schemaOverlap + 0.25*s.instanceOverlap +
			0.2*s.newInstanceRate + 0.1*s.metaSim + 0.1*s.provenanceSim
	case TaskFeatures:
		// Joinable keys bringing new attributes.
		return 0.35*s.keyMatch + 0.25*s.newAttrRate +
			0.2*s.instanceOverlap + 0.1*s.schemaOverlap + 0.1*s.provenanceSim
	default: // TaskClean
		// Same data, fewer nulls, shared lineage.
		return 0.3*s.instanceOverlap + 0.25*s.schemaOverlap +
			0.2*s.nullImprovement + 0.15*s.provenanceSim + 0.1*s.metaSim
	}
}

// RelatedTables implements Discoverer.
func (j *Juneau) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	qp, ok := j.indexed[query.Name]
	if !ok {
		qp = juneauProfileOf(query)
	}
	scores := map[string]float64{}
	for _, name := range j.order {
		if name == query.Name {
			continue
		}
		s := j.score(j.signalsFor(qp, j.indexed[name]))
		if s > 0 {
			scores[name] = s
		}
	}
	return rankTables(scores, k)
}
