package discovery

import (
	"math"
	"sort"

	"golake/internal/embed"
	"golake/internal/metamodel"
	"golake/internal/sketch"
	"golake/internal/table"
)

// D3L implements the five-feature discovery of Bogatu et al.
// (Sec. 6.2.1): each column pair is compared on (i) attribute-name
// q-gram similarity, (ii) instance value overlap, (iii) embedding
// cosine, (iv) value-format pattern similarity, and (v) numeric
// distribution similarity (Kolmogorov-Smirnov). The five per-feature
// distances are combined by weighted Euclidean distance in a
// 5-dimensional space; the weights can be trained from labeled related
// pairs. LSH indexes over names and values generate candidates, so
// queries avoid the all-pairs comparison.
type D3L struct {
	// Weights are the 5 feature coefficients (name, value, embedding,
	// format, distribution).
	Weights [5]float64
	// MaxDistance is the combined-distance cutoff for relatedness.
	MaxDistance float64

	embedModel *embed.Model
	nameLSH    *sketch.LSHIndex
	valueLSH   *sketch.LSHIndex
	profiles   map[string]*d3lProfile
	tables     map[string][]string
}

type d3lProfile struct {
	key       string
	nameGrams map[string]struct{}
	values    map[string]struct{}
	vector    []float64
	formats   map[string]struct{}
	numeric   []float64
	isNumeric bool
}

// NewD3L creates a D3L instance with uniform weights.
func NewD3L() *D3L {
	return &D3L{
		Weights:     [5]float64{1, 1, 1, 1, 1},
		MaxDistance: 1.6,
		embedModel:  embed.NewModel(64),
		nameLSH:     sketch.NewLSHIndex(16, 4),
		valueLSH:    sketch.NewLSHIndex(16, 8),
		profiles:    map[string]*d3lProfile{},
		tables:      map[string][]string{},
	}
}

// Name implements Discoverer.
func (d *D3L) Name() string { return "D3L" }

// Index implements Discoverer: profile every column on the five
// features and index names and values in LSH.
func (d *D3L) Index(tables []*table.Table) error {
	// First pass feeds the embedding model (it is corpus-trained).
	for _, t := range tables {
		for _, c := range t.Columns {
			d.embedModel.AddColumn(textualValues(c, 200))
		}
	}
	for _, t := range tables {
		for _, c := range t.Columns {
			p := d.profile(t.Name, c)
			d.profiles[p.key] = p
			d.tables[t.Name] = append(d.tables[t.Name], p.key)
			if err := d.nameLSH.Add(p.key, sketch.NewMinHash(d.nameLSH.SignatureLen(), setSlice(p.nameGrams))); err != nil {
				return err
			}
			if err := d.valueLSH.Add(p.key, sketch.NewMinHash(d.valueLSH.SignatureLen(), setSlice(p.values))); err != nil {
				return err
			}
		}
	}
	return nil
}

// Remove drops every indexed column of one table from the profiles and
// both LSH indexes. The corpus-trained embedding model keeps the evicted
// columns' contribution until the next full rebuild — an accepted
// approximation, squared up when a full pass retrains it.
func (d *D3L) Remove(tableName string) {
	for _, key := range d.tables[tableName] {
		delete(d.profiles, key)
		d.nameLSH.Remove(key)
		d.valueLSH.Remove(key)
	}
	delete(d.tables, tableName)
}

func (d *D3L) profile(tableName string, c *table.Column) *d3lProfile {
	vals := textualValues(c, 0)
	p := &d3lProfile{
		key:       columnKey(tableName, c.Name),
		nameGrams: sketch.ToSet(sketch.QGrams(c.Name, 3)),
		values:    sketch.ToSet(vals),
		vector:    d.embedModel.ColumnVector(capped(vals, 100)),
		formats:   map[string]struct{}{},
	}
	for _, v := range capped(vals, 200) {
		p.formats[sketch.RegexPattern(v)] = struct{}{}
	}
	if c.Kind.Numeric() {
		xs, frac := c.Floats()
		if frac > 0.5 {
			p.numeric = xs
			p.isNumeric = true
		}
	}
	return p
}

// featureDistances returns the 5 per-feature distances in [0,1].
func featureDistances(a, b *d3lProfile) [5]float64 {
	var out [5]float64
	out[0] = 1 - sketch.ExactJaccard(a.nameGrams, b.nameGrams)
	out[1] = 1 - sketch.ExactJaccard(a.values, b.values)
	cos := sketch.Cosine(a.vector, b.vector)
	if cos < 0 {
		cos = 0
	}
	out[2] = 1 - cos
	out[3] = 1 - sketch.ExactJaccard(a.formats, b.formats)
	if a.isNumeric && b.isNumeric {
		out[4] = sketch.KolmogorovSmirnov(a.numeric, b.numeric)
	} else if a.isNumeric != b.isNumeric {
		out[4] = 1
	} else {
		out[4] = 0.5 // both non-numeric: feature uninformative
	}
	return out
}

// Distance is the combined weighted Euclidean distance between two
// indexed columns, normalized by the weight mass so trained and uniform
// weights stay comparable.
func (d *D3L) Distance(a, b *d3lProfile) float64 {
	f := featureDistances(a, b)
	var ss, wsum float64
	for i, w := range d.Weights {
		ss += w * f[i] * f[i]
		wsum += w
	}
	if wsum == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(ss / wsum * 5)
}

// LabeledPair is a training example for weight learning.
type LabeledPair struct {
	A, B    metamodel.ColumnRef
	Related bool
}

// Train fits the feature weights with logistic regression over the
// per-feature distances of labeled pairs (D3L trains a binary
// classifier and reuses its coefficients as distance weights). Pairs
// referencing unindexed columns are skipped.
func (d *D3L) Train(pairs []LabeledPair, epochs int, lr float64) int {
	type example struct {
		f [5]float64
		y float64
	}
	var data []example
	for _, p := range pairs {
		a, okA := d.profiles[columnKey(p.A.Table, p.A.Column)]
		b, okB := d.profiles[columnKey(p.B.Table, p.B.Column)]
		if !okA || !okB {
			continue
		}
		y := 0.0
		if p.Related {
			y = 1
		}
		data = append(data, example{f: featureDistances(a, b), y: y})
	}
	if len(data) == 0 {
		return 0
	}
	// Logistic regression on similarity (1 - distance) per feature.
	w := [5]float64{0, 0, 0, 0, 0}
	bias := 0.0
	for e := 0; e < epochs; e++ {
		for _, ex := range data {
			z := bias
			for i := range w {
				z += w[i] * (1 - ex.f[i])
			}
			pred := 1 / (1 + math.Exp(-z))
			g := pred - ex.y
			bias -= lr * g
			for i := range w {
				w[i] -= lr * g * (1 - ex.f[i])
			}
		}
	}
	// Coefficients become (non-negative) distance weights.
	for i := range w {
		if w[i] < 0.05 {
			w[i] = 0.05
		}
	}
	d.Weights = w
	return len(data)
}

// RelatedTables implements Discoverer: candidate columns come from the
// two LSH indexes; a candidate table's score is the mean, over query
// columns, of 1 - minimal distance to any of its columns.
func (d *D3L) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	perTable := map[string][]float64{}
	nq := 0
	for _, c := range query.Columns {
		qp, ok := d.profiles[columnKey(query.Name, c.Name)]
		if !ok {
			qp = d.profile(query.Name, c)
		}
		nq++
		bestPerTable := map[string]float64{}
		for _, key := range d.candidates(qp) {
			cp := d.profiles[key]
			tbl, _, err := splitKey(key)
			if err != nil || tbl == query.Name {
				continue
			}
			dist := d.Distance(qp, cp)
			if dist > d.MaxDistance {
				continue
			}
			cur, seen := bestPerTable[tbl]
			if !seen || dist < cur {
				bestPerTable[tbl] = dist
			}
		}
		for tbl, dist := range bestPerTable {
			perTable[tbl] = append(perTable[tbl], 1-dist/d.MaxDistance)
		}
	}
	scores := map[string]float64{}
	for tbl, sims := range perTable {
		var sum float64
		for _, s := range sims {
			sum += s
		}
		scores[tbl] = sum / float64(nq)
	}
	return rankTables(scores, k)
}

// candidates unions the LSH buckets of both feature indexes.
func (d *D3L) candidates(p *d3lProfile) []string {
	seen := map[string]struct{}{}
	nameSig := sketch.NewMinHash(d.nameLSH.SignatureLen(), setSlice(p.nameGrams))
	for _, c := range d.nameLSH.Query(nameSig, 0, p.key) {
		seen[c.Key] = struct{}{}
	}
	valSig := sketch.NewMinHash(d.valueLSH.SignatureLen(), setSlice(p.values))
	for _, c := range d.valueLSH.Query(valSig, 0, p.key) {
		seen[c.Key] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// JoinableColumns implements JoinSearcher via the value-overlap feature
// restricted ranking.
func (d *D3L) JoinableColumns(query *table.Table, column string, k int) ([]ColumnMatch, error) {
	c, err := query.Column(column)
	if err != nil {
		return nil, err
	}
	qp, ok := d.profiles[columnKey(query.Name, column)]
	if !ok {
		qp = d.profile(query.Name, c)
	}
	var out []ColumnMatch
	for _, key := range d.candidates(qp) {
		cp := d.profiles[key]
		tbl, col, err := splitKey(key)
		if err != nil || tbl == query.Name {
			continue
		}
		sim := sketch.ExactJaccard(qp.values, cp.values)
		if sim <= 0 {
			continue
		}
		out = append(out, ColumnMatch{Ref: metamodel.ColumnRef{Table: tbl, Column: col}, Score: sim})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Ref.String() < out[j].Ref.String()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func setSlice(s map[string]struct{}) []string {
	out := make([]string, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func capped(vals []string, n int) []string {
	if len(vals) > n {
		return vals[:n]
	}
	return vals
}
