package discovery

import (
	"golake/internal/metamodel"
	"golake/internal/table"
)

// HumanInLoop wraps a Discoverer with the similarity-based triage of
// Brackenbury et al. (Sec. 6.2.1): when the algorithmic score alone is
// not decisive — inside a configurable uncertainty band — a human is
// asked to confirm or reject the candidate; clear accepts and clear
// rejects never reach the human. Scripted oracles replace the human in
// tests and benches.
type HumanInLoop struct {
	// Inner produces the algorithmic ranking.
	Inner Discoverer
	// AcceptAbove auto-accepts candidates scoring at or above this.
	AcceptAbove float64
	// RejectBelow auto-rejects candidates scoring below this.
	RejectBelow float64
	// Oracle answers the uncertain cases; nil keeps uncertain
	// candidates (algorithm-only fallback).
	Oracle func(query string, candidate metamodel.TableScore) bool

	// Asked counts oracle consultations (the human-effort metric).
	Asked int
}

// NewHumanInLoop wraps a discoverer with default thresholds.
func NewHumanInLoop(inner Discoverer, oracle func(string, metamodel.TableScore) bool) *HumanInLoop {
	return &HumanInLoop{Inner: inner, AcceptAbove: 0.6, RejectBelow: 0.1, Oracle: oracle}
}

// Name implements Discoverer.
func (h *HumanInLoop) Name() string { return h.Inner.Name() + "+human" }

// Index implements Discoverer.
func (h *HumanInLoop) Index(tables []*table.Table) error { return h.Inner.Index(tables) }

// RelatedTables implements Discoverer: the inner ranking filtered
// through the accept/ask/reject triage.
func (h *HumanInLoop) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	// Over-fetch so that rejects don't starve the result.
	raw := h.Inner.RelatedTables(query, 3*k)
	var out []metamodel.TableScore
	for _, ts := range raw {
		switch {
		case ts.Score >= h.AcceptAbove:
			out = append(out, ts)
		case ts.Score < h.RejectBelow:
			continue
		default:
			if h.Oracle == nil {
				out = append(out, ts)
				continue
			}
			h.Asked++
			if h.Oracle(query.Name, ts) {
				out = append(out, ts)
			}
		}
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}
